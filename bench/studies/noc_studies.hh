/**
 * @file
 * Shared pieces of the NoC studies. noc_sensitivity, noc_heatmap and
 * placement_contention deliberately draw their workloads from the
 * same mix seeds (and the default config) so that running them in one
 * `cdcs_studies` invocation shares runs via the result cache — one
 * definition keeps that contract (and the link-wait metric the
 * studies report under the same label) from silently drifting.
 */

#ifndef CDCS_BENCH_STUDIES_NOC_STUDIES_HH
#define CDCS_BENCH_STUDIES_NOC_STUDIES_HH

#include <cstdint>

#include "sim/run_result.hh"

namespace cdcs
{

/** Mix seed base of the NoC studies (mix m uses base + m). */
constexpr std::uint64_t nocMixSeedBase = 11000;

/**
 * Flit-weighted mean link wait of one run (cycles): the queueing
 * delay the average flit pays per traversed link, over every link
 * the model tracks (zero for models that track none).
 */
inline double
flitWeightedMeanLinkWait(const RunResult &run)
{
    double wait_flits = 0.0;
    double flits = 0.0;
    for (const NocLinkStat &link : run.nocLinks) {
        wait_flits += link.waitCycles *
            static_cast<double>(link.flits);
        flits += static_cast<double>(link.flits);
    }
    return flits > 0.0 ? wait_flits / flits : 0.0;
}

/**
 * Flit-weighted mean memory-route wait of one run (cycles): the
 * queueing delay the average flit pays on a memory controller's
 * attach link — the controller-port share of the LLC-to-memory
 * route, the signal a memory placement policy can redistribute.
 * Zero for models that track no links.
 */
inline double
flitWeightedMeanMemWait(const RunResult &run)
{
    double wait_flits = 0.0;
    double flits = 0.0;
    for (const NocLinkStat &link : run.nocLinks) {
        if (link.memCtrl < 0)
            continue;
        wait_flits += link.waitCycles *
            static_cast<double>(link.flits);
        flits += static_cast<double>(link.flits);
    }
    return flits > 0.0 ? wait_flits / flits : 0.0;
}

/**
 * Flit-weighted mean far-attach wait of one run (cycles): the
 * queueing delay the average flit pays on a far-memory attach link.
 * Zero with no far tier (no far links exist) and under models that
 * track no links. Near attach links are excluded — memCtrl is set on
 * both tiers' attach links, so filter on the far flag, not memCtrl.
 */
inline double
flitWeightedMeanFarMemWait(const RunResult &run)
{
    double wait_flits = 0.0;
    double flits = 0.0;
    for (const NocLinkStat &link : run.nocLinks) {
        if (!link.far)
            continue;
        wait_flits += link.waitCycles *
            static_cast<double>(link.flits);
        flits += static_cast<double>(link.flits);
    }
    return flits > 0.0 ? wait_flits / flits : 0.0;
}

} // namespace cdcs

#endif // CDCS_BENCH_STUDIES_NOC_STUDIES_HH
