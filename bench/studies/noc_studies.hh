/**
 * @file
 * Shared constants of the NoC studies. noc_sensitivity and
 * noc_heatmap deliberately draw their workloads from the same mix
 * seeds (and the default config) so that running them in one
 * `cdcs_studies` invocation serves the heatmap's runs from the
 * sensitivity study's injection-scale-1 sweep via the result cache —
 * one definition keeps that contract from silently drifting.
 */

#ifndef CDCS_BENCH_STUDIES_NOC_STUDIES_HH
#define CDCS_BENCH_STUDIES_NOC_STUDIES_HH

#include <cstdint>

namespace cdcs
{

/** Mix seed base of the NoC studies (mix m uses base + m). */
constexpr std::uint64_t nocMixSeedBase = 11000;

} // namespace cdcs

#endif // CDCS_BENCH_STUDIES_NOC_STUDIES_HH
