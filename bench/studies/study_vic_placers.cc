/**
 * @file
 * Sec. VI-C, "Alternative thread and data placement schemes": the
 * CDCS heuristics vs. expensive comparators — a simulated-annealing
 * thread placer (standing in for the paper's Gurobi ILP, see
 * DESIGN.md) and recursive-bisection co-placement (standing in for
 * METIS graph partitioning).
 *
 * Paper shape: SA gains ~0.6% and ILP data placement ~0.5% over the
 * CDCS heuristics; graph partitioning does not outperform CDCS (it
 * splits the chip center instead of clustering around it). The
 * comparators also cost orders of magnitude more runtime.
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "vic_placers";
    spec.title = "Sec. VI-C placers";
    spec.paperRef = "CDCS vs SA vs bisection";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        ctx.header();

        std::vector<SchemeSpec> schemes = ctx.lineup();
        {
            SchemeSpec sa = schemeByName("cdcs");
            sa.placer = PlacerKind::Annealed;
            sa.saIterations = static_cast<int>(
                ctx.knob("saIters", "CDCS_SA_ITERS", 5000));
            sa.name = "CDCS+SA";
            schemes.push_back(sa);
        }
        {
            SchemeSpec bisect = schemeByName("cdcs");
            bisect.placer = PlacerKind::Bisection;
            bisect.name = "Bisection";
            schemes.push_back(bisect);
        }

        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, schemes, ctx.mixes,
            [&](int m) { return MixSpec::cpu(32, 9500 + m); });
        ctx.sink.sweep("vic_placers", sweep);
        writeWsSummary(ctx.sink, sweep);

        ctx.sink.printf("\nreconfiguration runtime (avg us per "
                        "invocation, mix 0)\n%-12s %10s %10s %10s\n",
                        "scheme", "alloc", "thread", "data");
        for (std::size_t s = 1; s < schemes.size(); s++) {
            const RuntimeStepTimes &t = sweep.firstRun[s].avgTimes;
            ctx.sink.printf("%-12s %10.1f %10.1f %10.1f\n",
                            schemes[s].name.c_str(), t.allocUs,
                            t.threadPlaceUs, t.dataPlaceUs);
        }
    };
    return spec;
}());

} // anonymous namespace
