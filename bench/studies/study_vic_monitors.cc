/**
 * @file
 * Sec. VI-C, "Geometric monitors": 64-way GMONs vs. conventional
 * UMONs of 64, 256 and 1024 ways.
 *
 *  Part 1 compares miss-curve accuracy against a high-resolution
 *  reference on analytic workloads; Part 2 compares end-to-end
 *  weighted speedup when CDCS runs with each monitor.
 *
 * Paper shape: the 64-way GMON matches a 256-way UMON; 64-way UMONs
 * lose a few percent from poor resolution; huge UMONs gain ~1%.
 */

#include <cmath>

#include "common/rng.hh"
#include "monitor/gmon.hh"
#include "monitor/umon.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

/** RMS error of a monitor's curve vs a reference monitor's curve. */
double
curveRms(const SampledMonitor &monitor, const SampledMonitor &ref,
         double max_x)
{
    const Curve a = monitor.missCurve();
    const Curve b = ref.missCurve();
    const double total = std::max(1.0, b.at(0.0));
    double sum = 0.0;
    int n = 0;
    for (double x = 0.0; x <= max_x; x += max_x / 32) {
        const double d = (a.at(x) - b.at(x)) / total;
        sum += d * d;
        n++;
    }
    return std::sqrt(sum / n);
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "vic_monitors";
    spec.title = "Sec. VI-C monitors: GMON vs UMON";
    spec.paperRef = "curve accuracy + end-to-end WS";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        const std::uint64_t llc_lines = 512 * 1024;
        ctx.sink.printf("== Sec. VI-C monitors: GMON vs UMON ==\n\n");
        ctx.sink.printf("-- curve accuracy (RMS miss-ratio error vs "
                        "2K-way reference, Zipf workload) --\n");

        Gmon gmon(64, llc_lines, 16, 4, 1);
        Umon umon64(64, llc_lines, 16, 2);
        Umon umon256(256, llc_lines, 16, 3);
        Umon umon1k(1024, llc_lines, 16, 4);
        Umon reference(2048, llc_lines, 64, 5);

        Rng rng(9);
        ZipfSampler zipf(300000, 0.6);
        const auto accesses = ctx.cfg.accessesPerThreadEpoch * 64;
        for (std::uint64_t i = 0; i < accesses; i++) {
            const LineAddr a = mix64(zipf.sample(rng)) % 300000;
            gmon.access(a);
            umon64.access(a);
            umon256.access(a);
            umon1k.access(a);
            reference.access(a);
        }
        ctx.sink.printf("%-14s %10s\n", "monitor", "rms");
        ctx.sink.printf("%-14s %10.4f\n", "GMON-64",
                        curveRms(gmon, reference, llc_lines));
        ctx.sink.printf("%-14s %10.4f\n", "UMON-64",
                        curveRms(umon64, reference, llc_lines));
        ctx.sink.printf("%-14s %10.4f\n", "UMON-256",
                        curveRms(umon256, reference, llc_lines));
        ctx.sink.printf("%-14s %10.4f\n", "UMON-1024",
                        curveRms(umon1k, reference, llc_lines));

        ctx.sink.printf("\n-- end-to-end: CDCS weighted speedup with "
                        "each monitor --\n");
        std::vector<SchemeSpec> schemes = {schemeByName("snuca")};
        {
            SchemeSpec s = schemeByName("cdcs");
            s.name = "CDCS/GMON-64";
            schemes.push_back(s);
        }
        for (std::uint32_t ways : {64u, 256u}) {
            SchemeSpec s = schemeByName("cdcs");
            s.monitor = MonitorKind::Umon;
            s.monitorWays = ways;
            s.name = "CDCS/UMON-" + std::to_string(ways);
            schemes.push_back(s);
        }
        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, schemes, ctx.mixes,
            [&](int m) { return MixSpec::cpu(64, 9000 + m); });
        ctx.sink.sweep("vic_monitors", sweep);
        writeWsSummary(ctx.sink, sweep);
    };
    return spec;
}());

} // anonymous namespace
