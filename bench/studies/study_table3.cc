/**
 * @file
 * Table 3 as a study: CPU time of the CDCS reconfiguration steps
 * (capacity allocation, thread placement, data placement) for 16
 * threads / 16 cores, 16 / 64 and 64 / 64 on realistic inputs,
 * reported in Mcycles at the paper's 2 GHz.
 *
 * The runtime reports its own per-step microsecond timings, so this
 * study needs no external benchmarking framework; the legacy
 * google-benchmark harness (bench_table3_runtime) remains for
 * statistically rigorous measurements. Timing output is inherently
 * machine-dependent — this is the one study whose numbers are not
 * byte-reproducible.
 *
 * Paper numbers: 0.72 / 1.46 / 6.49 Mcycles total respectively —
 * ~0.2% of system cycles at a 25 ms period.
 */

#include "common/rng.hh"
#include "mesh/mesh.hh"
#include "nuca/policy.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

/** Build a realistic RuntimeInput for T threads on an NxN mesh. */
RuntimeInput
makeInput(const Mesh &mesh, int threads, std::uint64_t seed)
{
    Rng rng(seed);
    RuntimeInput in;
    in.mesh = &mesh;
    in.numBanks = mesh.numTiles();
    in.banksPerTile = 1;
    in.bankLines = 8192;
    in.allocGranule = 64;
    const int num_vcs = threads + threads / 8 + 2;
    for (int d = 0; d < num_vcs; d++) {
        Curve miss;
        const double total = rng.uniform(1e4, 1e5);
        const double knee = rng.uniform(4096.0, 65536.0);
        miss.addPoint(0.0, total);
        miss.addPoint(knee, total * rng.uniform(0.05, 0.7));
        miss.addPoint(knee * 8, total * 0.04);
        in.missCurves.push_back(miss);
    }
    for (int t = 0; t < threads; t++) {
        std::vector<double> row(num_vcs, 0.0);
        row[t % num_vcs] = rng.uniform(1e4, 1e5);
        row[num_vcs - 2] = rng.uniform(10.0, 1e3);
        row[num_vcs - 1] = rng.uniform(1.0, 50.0);
        in.access.push_back(row);
        in.threadCore.push_back(static_cast<TileId>(t));
    }
    return in;
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "table3";
    spec.title = "Table 3 runtime cost";
    spec.paperRef = "CDCS reconfiguration steps, Mcycles at 2 GHz";
    spec.category = "table";
    spec.defaultMixes = 1;
    spec.run = [](StudyContext &ctx) {
        const int iters = static_cast<int>(
            ctx.knob("table3Iters", "CDCS_TABLE3_ITERS", 5));

        ctx.sink.printf("== Table 3: CDCS reconfiguration runtime "
                        "(%d invocations each, Mcycles at 2 GHz) "
                        "==\n",
                        iters);
        ctx.sink.printf("%-22s %10s %10s %10s %10s\n",
                        "threads/cores", "alloc", "thread", "data",
                        "total");

        const int combos[3][2] = {{16, 4}, {16, 8}, {64, 8}};
        for (const auto &combo : combos) {
            const int threads = combo[0];
            const int dim = combo[1];
            Mesh mesh(dim, dim);
            const RuntimeInput input = makeInput(mesh, threads, 7);
            CdcsRuntime runtime;
            RuntimeStepTimes sums;
            for (int i = 0; i < iters; i++) {
                const RuntimeOutput out = runtime.reconfigure(input);
                sums.allocUs += out.times.allocUs;
                sums.threadPlaceUs += out.times.threadPlaceUs;
                sums.dataPlaceUs += out.times.dataPlaceUs;
            }
            // Microseconds to Mcycles at 2 GHz (2000 cycles / us).
            const double to_mcycles = 2000.0 / 1e6 / iters;
            char label[32];
            std::snprintf(label, sizeof(label), "%d / %d", threads,
                          dim * dim);
            ctx.sink.printf("%-22s %10.2f %10.2f %10.2f %10.2f\n",
                            label, sums.allocUs * to_mcycles,
                            sums.threadPlaceUs * to_mcycles,
                            sums.dataPlaceUs * to_mcycles,
                            sums.totalUs() * to_mcycles);
        }
    };
    return spec;
}());

} // anonymous namespace
