/**
 * @file
 * Contention-aware placement: what feeding the measured NoC link
 * waits into the CDCS runtime's cost model buys. For each injection
 * scale the contended lineup runs twice — once with the placement
 * cost oracle pinned to the paper's flat hop arithmetic
 * (placementCost=zero-load, the control arm) and once pricing
 * placements on the live contention snapshot (placementCost=noc, the
 * default) — and the study reports gmean weighted speedup, average
 * on-chip latency, peak link utilization and the flit-weighted mean
 * link wait for both arms.
 *
 * Expected shape: at low scales the wait quantum suppresses the
 * (noise-level) contention signal and the arms coincide; as links
 * saturate, contention-cost placement steers VCs and threads off the
 * loaded routes and the flit-weighted mean link wait drops below the
 * zero-load-cost arm.
 */

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>

#include "common/stats.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

/** Peak link utilization of one run. */
double
peakLinkUtil(const RunResult &run)
{
    double peak = 0.0;
    for (const NocLinkStat &link : run.nocLinks)
        peak = std::max(peak, link.util);
    return peak;
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "placement_contention";
    spec.title = "Contention-aware placement";
    spec.paperRef =
        "schemes x injection scale, zero-load-cost vs "
        "contention-cost placement";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "rnuca", "jigsaw-r", "cdcs"};
    // Two placement-cost arms re-run the same contended lineup, and
    // the noc-cost arm at matching scales shares runs with
    // noc_sensitivity (same mix seeds) in batched invocations.
    spec.repeatedLineup = true;
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        const double scales[] = {1.0, 2.0, 4.0, 8.0};
        const char *arms[] = {"zero-load", "noc"};
        // sweeps[arm][scale]
        std::vector<std::vector<SweepResult>> sweeps(2);
        for (int arm = 0; arm < 2; arm++) {
            for (double scale : scales) {
                SystemConfig cfg = ctx.cfg;
                cfg.nocModel = "contention";
                cfg.nocInjScale = scale;
                cfg.placementCost = arms[arm];
                sweeps[arm].push_back(ctx.runner.sweep(
                    cfg, schemes, ctx.mixes, mix_of));
                char name[64];
                std::snprintf(name, sizeof(name),
                              "placement_contention_%s_x%g",
                              arms[arm], scale);
                ctx.sink.sweep(name, sweeps[arm].back());
            }
        }

        const auto table = [&](const char *title,
                               auto &&value) {
            ctx.sink.printf("%s\n", title);
            ctx.sink.printf("%-10s %-10s", "inj-scale", "cost");
            for (const SchemeSpec &s : schemes)
                ctx.sink.printf(" %10s", s.name.c_str());
            ctx.sink.printf("\n");
            for (std::size_t i = 0; i < std::size(scales); i++) {
                for (int arm = 0; arm < 2; arm++) {
                    char label[32];
                    std::snprintf(label, sizeof(label), "x%g",
                                  scales[i]);
                    ctx.sink.printf("%-10s %-10s", label,
                                    arms[arm]);
                    for (std::size_t s = 0; s < schemes.size();
                         s++) {
                        ctx.sink.printf(
                            " %10.3f",
                            value(sweeps[arm][i], s));
                    }
                    ctx.sink.printf("\n");
                }
            }
        };

        table("-- gmean weighted speedup over S-NUCA --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.mixes() > 0 ? gmean(sweep.ws[s])
                                           : 0.0;
              });
        ctx.sink.printf("\n");
        table("-- avg on-chip latency of LLC accesses (cycles) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.onChipLat[s];
              });
        ctx.sink.printf("\n");
        table("-- peak link utilization (mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return peakLinkUtil(sweep.firstRun[s]);
              });
        ctx.sink.printf("\n");
        table("-- flit-weighted mean link wait (cycles, mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return flitWeightedMeanLinkWait(sweep.firstRun[s]);
              });
    };
    return spec;
}());

} // anonymous namespace
