/**
 * @file
 * NoC sensitivity: how each scheme's on-chip latency inflates when
 * the network can congest. The paper evaluates at zero load (3-cycle
 * routers, 1-cycle links, Table 2); this study swaps in the
 * contention-aware mesh (noc=contention) and sweeps the
 * injection-rate scale, so CDCS's traffic reduction (Fig. 11d)
 * translates into a latency advantage that grows with load.
 *
 * Expected shape: per-scheme average on-chip latency is monotonically
 * non-decreasing in the injection scale; S-NUCA, with ~3x CDCS's
 * traffic, inflates fastest, so CDCS's weighted speedup over S-NUCA
 * widens as the network loads up. (Strict monotonicity holds with
 * `placementCost=zero-load`; under the default contention-aware
 * placement cost the partitioned runtimes adapt to the measured
 * waits and can dip below the zero-load-placement latency — the
 * effect the placement_contention study isolates.)
 */

#include <cstdio>
#include <string>

#include "common/stats.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "noc_sensitivity";
    spec.title = "NoC sensitivity";
    spec.paperRef = "schemes x injection-rate scale, contention mesh";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "rnuca", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per injection scale.
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        const double scales[] = {1.0, 2.0, 4.0, 8.0};
        std::vector<SweepResult> sweeps;

        SystemConfig zero_load = ctx.cfg;
        zero_load.nocModel = "zero-load";
        sweeps.push_back(ctx.runner.sweep(zero_load, schemes,
                                          ctx.mixes, mix_of));
        ctx.sink.sweep("noc_sensitivity_zero_load", sweeps.back());
        for (double scale : scales) {
            SystemConfig cfg = ctx.cfg;
            cfg.nocModel = "contention";
            cfg.nocInjScale = scale;
            sweeps.push_back(ctx.runner.sweep(cfg, schemes,
                                              ctx.mixes, mix_of));
            char name[64];
            std::snprintf(name, sizeof(name),
                          "noc_sensitivity_x%g", scale);
            ctx.sink.sweep(name, sweeps.back());
        }

        const auto row_label = [&](std::size_t i) -> std::string {
            if (i == 0)
                return "zero-load";
            char label[32];
            std::snprintf(label, sizeof(label), "x%g",
                          scales[i - 1]);
            return label;
        };

        ctx.sink.printf("-- avg on-chip latency of LLC accesses "
                        "(cycles) --\n");
        ctx.sink.printf("%-12s", "inj-scale");
        for (const SchemeSpec &s : schemes)
            ctx.sink.printf(" %10s", s.name.c_str());
        ctx.sink.printf("\n");
        for (std::size_t i = 0; i < sweeps.size(); i++) {
            ctx.sink.printf("%-12s", row_label(i).c_str());
            for (std::size_t s = 0; s < schemes.size(); s++)
                ctx.sink.printf(" %10.2f", sweeps[i].onChipLat[s]);
            ctx.sink.printf("\n");
        }

        ctx.sink.printf("\n-- gmean weighted speedup over S-NUCA "
                        "--\n");
        ctx.sink.printf("%-12s", "inj-scale");
        for (const SchemeSpec &s : schemes)
            ctx.sink.printf(" %10s", s.name.c_str());
        ctx.sink.printf("\n");
        for (std::size_t i = 0; i < sweeps.size(); i++) {
            ctx.sink.printf("%-12s", row_label(i).c_str());
            // Degenerate mixes=0 sweeps have no speedups to average.
            for (std::size_t s = 0; s < schemes.size(); s++) {
                ctx.sink.printf(" %10.3f",
                                sweeps[i].mixes() > 0
                                    ? gmean(sweeps[i].ws[s])
                                    : 0.0);
            }
            ctx.sink.printf("\n");
        }

        // Flit-weighted mean link wait: the direct queueing delay a
        // flit sees, from the per-link accounting of the mix-0 run
        // (zero under the zero-load reference, which tracks no
        // links).
        ctx.sink.printf("\n-- flit-weighted mean link wait "
                        "(cycles, mix 0) --\n");
        ctx.sink.printf("%-12s", "inj-scale");
        for (const SchemeSpec &s : schemes)
            ctx.sink.printf(" %10s", s.name.c_str());
        ctx.sink.printf("\n");
        for (std::size_t i = 0; i < sweeps.size(); i++) {
            ctx.sink.printf("%-12s", row_label(i).c_str());
            for (std::size_t s = 0; s < schemes.size(); s++) {
                ctx.sink.printf(" %10.3f",
                                flitWeightedMeanLinkWait(
                                    sweeps[i].firstRun[s]));
            }
            ctx.sink.printf("\n");
        }
    };
    return spec;
}());

} // anonymous namespace
