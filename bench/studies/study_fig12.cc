/**
 * @file
 * Fig. 12: factor analysis of the CDCS techniques applied to Jigsaw+R
 * individually — latency-aware allocation (+L), thread placement
 * (+T), refined data placement (+D), and all three (+LTD == CDCS) —
 * on 64-app and 4-app mixes.
 *
 * Paper shape: with 64 apps capacity is scarce, so +T and +D carry
 * the gains and +L adds little; with 4 apps capacity is plentiful and
 * +L provides most of the speedup.
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

void
runFactor(StudyContext &ctx, int apps)
{
    const SweepResult sweep = ctx.runner.sweep(
        ctx.cfg, ctx.lineup(), ctx.mixes,
        [&](int m) { return MixSpec::cpu(apps, 2000 + m); });
    ctx.sink.sweep(std::string("fig12_factor_") +
                       std::to_string(apps) + "app",
                   sweep);
    ctx.sink.printf("-- %d-app mixes --\n", apps);
    writeWsSummary(ctx.sink, sweep);
    ctx.sink.printf("\n");
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig12";
    spec.title = "Fig. 12 factor analysis";
    spec.paperRef = "+L/+T/+D on Jigsaw+R";
    spec.category = "figure";
    spec.defaultMixes = 4;
    spec.lineup = {"snuca",    "jigsaw-r", "jigsaw+l",
                   "jigsaw+t", "jigsaw+d", "jigsaw+ltd"};
    spec.repeatedLineup = true; // Two sweeps (64-app and 4-app).
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        runFactor(ctx, 64);
        runFactor(ctx, 4);
    };
    return spec;
}());

} // anonymous namespace
