/**
 * @file
 * Fig. 14: mixes of 4 SPEC CPU2006-like apps on the 64-core CMP —
 * weighted-speedup distribution and traffic breakdown.
 *
 * Paper shape: with capacity plentiful, Jigsaw's greedy full-capacity
 * allocations inflate L2-LLC traffic/latency; CDCS's latency-aware
 * allocation avoids that (28% vs 17%/6% gmean WS).
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig14";
    spec.title = "Fig. 14";
    spec.paperRef = "4-app mixes on 64 cores";
    spec.category = "figure";
    spec.defaultMixes = 4;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, ctx.lineup(), ctx.mixes,
            [&](int m) { return MixSpec::cpu(4, 4000 + m); });
        ctx.sink.sweep("fig14_4app", sweep);

        ctx.sink.printf("-- weighted speedup inverse CDF --\n");
        writeInverseCdf(ctx.sink, sweep);
        ctx.sink.printf("\n");
        writeWsSummary(ctx.sink, sweep);
        ctx.sink.printf("\n-- traffic / energy --\n");
        writeBreakdowns(ctx.sink, sweep);
    };
    return spec;
}());

} // anonymous namespace
