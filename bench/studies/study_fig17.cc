/**
 * @file
 * Fig. 17: aggregate IPC of the 64-core CMP across one
 * reconfiguration under the three data-movement schemes: idealized
 * instant moves, CDCS demand moves + background invalidations, and
 * Jigsaw bulk invalidations.
 *
 * Paper shape: bulk invalidations pause the whole chip for ~100
 * Kcycles (IPC crater) and lose warm data; background invalidations
 * track instant moves closely with no pause.
 */

#include <algorithm>

#include "sim/experiment.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig17";
    spec.title = "Fig. 17";
    spec.paperRef = "IPC across one reconfiguration";
    spec.category = "figure";
    spec.defaultMixes = 1;
    spec.lineup = {"cdcs"};
    spec.configure = [](SystemConfig &cfg) {
        cfg.traceIpc = true;
        cfg.traceBinCycles = envOr("CDCS_TRACE_BIN", 25000);
    };
    spec.run = [](StudyContext &ctx) {
        ctx.header(1);
        const MixSpec mix = MixSpec::cpu(64, 7000);

        std::vector<std::pair<const char *, MoveScheme>> modes = {
            {"instant", MoveScheme::Instant},
            {"background-inv", MoveScheme::DemandBackground},
            {"bulk-inv", MoveScheme::BulkInvalidate},
        };
        std::vector<ExperimentRunner::Job> jobs;
        for (const auto &[name, moves] : modes) {
            SchemeSpec scheme = schemeByName("cdcs");
            scheme.moves = moves;
            scheme.name = name;
            jobs.push_back({ctx.cfg, scheme, mix});
        }
        const std::vector<RunResult> results =
            ctx.runner.runAll(jobs);
        std::vector<std::vector<double>> traces;
        for (std::size_t i = 0; i < results.size(); i++) {
            traces.push_back(results[i].ipcTrace);
            ctx.sink.trace(std::string("fig17_trace_") +
                               modes[i].first,
                           results[i]);
        }

        std::size_t bins = 0;
        for (const auto &t : traces)
            bins = std::max(bins, t.size());
        ctx.sink.printf("%10s %12s %16s %12s   (aggregate IPC, bin "
                        "= %llu cycles)\n",
                        "Kcycles", "instant", "background-inv",
                        "bulk-inv",
                        static_cast<unsigned long long>(
                            ctx.cfg.traceBinCycles));
        for (std::size_t b = 0; b < bins; b++) {
            ctx.sink.printf("%10.0f",
                            b * ctx.cfg.traceBinCycles / 1000.0);
            for (const auto &t : traces)
                ctx.sink.printf(" %12.2f",
                                b < t.size() ? t[b] : 0.0);
            ctx.sink.printf("\n");
        }
    };
    return spec;
}());

} // anonymous namespace
