/**
 * @file
 * Fig. 5 (design section): average memory access latency of one VC vs.
 * its capacity allocation, split into off-chip and on-chip components.
 * Off-chip falls with capacity (fewer misses), on-chip grows (data
 * spreads over more, farther banks): the total has a sweet spot, and
 * past it more capacity *hurts* — the insight behind latency-aware
 * allocation (Sec. IV-C).
 *
 * The curve is produced exactly the way the runtime sees it: a GMON
 * monitors the app's stream, and the optimistic compact-placement
 * distance (Fig. 6) prices the on-chip term.
 */

#include "mesh/mesh.hh"
#include "monitor/gmon.hh"
#include "runtime/curves.hh"
#include "sim/study.hh"
#include "workload/app_profile.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig5";
    spec.title = "Fig. 5 latency vs capacity";
    spec.paperRef = "per-access latency curve, sphinx3-like VC";
    spec.category = "figure";
    spec.defaultMixes = 1;
    spec.run = [](StudyContext &ctx) {
        Mesh mesh(ctx.cfg.meshWidth, ctx.cfg.meshHeight);
        const double tile_lines =
            static_cast<double>(ctx.cfg.bankLines);
        const std::uint64_t llc_lines =
            static_cast<std::uint64_t>(tile_lines) * mesh.numTiles();

        // Monitor a cache-friendly app with a large footprint
        // (sphinx3).
        const AppProfile &app = profileByName("sphinx3");
        Gmon gmon(64, llc_lines, 16, 2, 5);
        StreamGen gen(app.privateStream, 3);
        const auto accesses = ctx.cfg.accessesPerThreadEpoch * 8;
        for (std::uint64_t i = 0; i < accesses; i++)
            gmon.access(gen.next());

        const Curve miss = gmon.missCurve();
        LatencyModel lat;
        double mem_net = 0.0;
        for (TileId t = 0; t < mesh.numTiles(); t++)
            mem_net += mesh.avgHopsToMemCtrl(t);
        mem_net = lat.onChipRoundTrip(mem_net / mesh.numTiles());
        const double miss_cost = lat.memAccessCycles + mem_net;
        const double n = static_cast<double>(accesses);

        ctx.sink.printf("== Fig. 5: per-access latency vs capacity "
                        "(sphinx3-like VC) ==\n");
        ctx.sink.printf("%10s %12s %12s %12s\n", "MB", "off-chip",
                        "on-chip", "total");
        double best_total = 1e30;
        double best_mb = 0.0;
        for (double tiles = 0.0; tiles <= 40.0; tiles += 1.0) {
            const double x = tiles * tile_lines;
            const double offchip = miss.at(x) * miss_cost / n;
            const double onchip =
                lat.onChipRoundTrip(mesh.optimisticDistance(tiles)) +
                lat.bankAccessCycles;
            const double total = offchip + onchip;
            if (total < best_total) {
                best_total = total;
                best_mb = x * lineBytes / 1048576.0;
            }
            ctx.sink.printf("%10.2f %12.2f %12.2f %12.2f\n",
                            x * lineBytes / 1048576.0, offchip,
                            onchip, total);
        }
        ctx.sink.printf(
            "\nsweet spot at ~%.1f MB: beyond it, extra capacity "
            "adds more on-chip latency than it saves in misses\n",
            best_mb);
    };
    return spec;
}());

} // anonymous namespace
