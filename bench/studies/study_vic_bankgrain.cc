/**
 * @file
 * Sec. VI-C, "Bank-partitioned NUCA": CDCS without fine-grained
 * partitioning — four 128 KB banks per tile, whole-bank allocation
 * (Sec. IV-I) — vs. fine-grained CDCS and S-NUCA.
 *
 * Paper shape: bank-granular CDCS keeps most of the benefit (36% vs
 * 46% gmean over S-NUCA at 64 apps) but loses from coarser capacity
 * allocation.
 */

#include "common/stats.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "vic_bankgrain";
    spec.title = "Sec. VI-C bank-granular CDCS";
    spec.paperRef = "4 x 128 KB banks/tile, whole-bank allocation";
    spec.category = "ablation";
    spec.defaultMixes = 3;
    spec.lineup = {"snuca", "cdcs"};
    spec.repeatedLineup = true; // Fine vs bank-granular sweeps.
    spec.run = [](StudyContext &ctx) {
        const SystemConfig &fine_cfg = ctx.cfg;
        SystemConfig bank_cfg = fine_cfg;
        bank_cfg.banksPerTile = 4;
        bank_cfg.bankLines = 2048;
        bank_cfg.allocGranuleLines = 2048;

        writeStudyHeader(ctx.sink, ctx.spec.title.c_str(),
                         ctx.spec.paperRef.c_str(), bank_cfg,
                         ctx.mixes);

        SchemeSpec bank_spec = schemeByName("cdcs");
        bank_spec.cdcsOpts.placeGranule = 2048.0;
        bank_spec.cdcsOpts.minAllocLines = 2048.0;
        bank_spec.cdcsOpts.sizeHysteresis = 0.4;
        bank_spec.name = "CDCS-bank";

        const int apps =
            static_cast<int>(ctx.knob("apps", "CDCS_APPS", 48));
        const auto mix_of = [&](int m) {
            return MixSpec::cpu(apps, 9800 + m);
        };
        const SweepResult fine = ctx.runner.sweep(
            fine_cfg, ctx.lineup(), ctx.mixes, mix_of);
        const SweepResult bank = ctx.runner.sweep(
            bank_cfg, {schemeByName("snuca"), bank_spec}, ctx.mixes,
            mix_of);

        ctx.sink.sweep("vic_bankgrain_fine", fine);
        ctx.sink.sweep("vic_bankgrain_bank", bank);

        ctx.sink.printf("%-12s %10s\n", "scheme", "gmeanWS");
        ctx.sink.printf("%-12s %10.3f\n", "CDCS-fine",
                        gmean(fine.ws[1]));
        ctx.sink.printf("%-12s %10.3f\n", "CDCS-bank",
                        gmean(bank.ws[1]));
    };
    return spec;
}());

} // anonymous namespace
