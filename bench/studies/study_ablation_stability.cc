/**
 * @file
 * Ablation of this implementation's reconfiguration-stability layer
 * (DESIGN.md Sec. 7): size/allocation hysteresis, EWMA smoothing of
 * monitor inputs, and rendezvous-hashed VC descriptors.
 *
 * The paper reconfigures every 25 ms (~50 Mcycles), so a full-VC
 * remap re-warms within a fraction of an epoch and stability is free.
 * At laptop-scale epochs a remap can cost more than the
 * reconfiguration gains; this study quantifies how much of CDCS's
 * speedup the stability layer preserves, and what descriptor churn
 * (background invalidations + demand moves) looks like without it.
 */

#include "common/stats.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "ablation_stability";
    spec.title = "Stability ablation";
    spec.paperRef = "hysteresis + EWMA smoothing (DESIGN.md Sec. 7)";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "cdcs"};
    spec.repeatedLineup = true; // Stable vs raw sweeps, same mixes.
    spec.run = [](StudyContext &ctx) {
        ctx.header();

        SystemConfig raw_cfg = ctx.cfg;
        raw_cfg.monitorSmoothing = 1.0; // No EWMA.
        raw_cfg.moveCfg.allocHysteresis = 0.0;

        const SchemeSpec stable = schemeByName("cdcs");
        SchemeSpec raw = schemeByName("cdcs");
        raw.cdcsOpts.sizeHysteresis = 0.0;
        raw.name = "CDCS-raw";

        const auto mix_of = [](int m) {
            return MixSpec::cpu(48, 9900 + m);
        };
        const SweepResult with_stab = ctx.runner.sweep(
            ctx.cfg, {schemeByName("snuca"), stable}, ctx.mixes,
            mix_of);
        const SweepResult without = ctx.runner.sweep(
            raw_cfg, {schemeByName("snuca"), raw}, ctx.mixes, mix_of);

        ctx.sink.sweep("ablation_stability_stable", with_stab);
        ctx.sink.sweep("ablation_stability_raw", without);

        ctx.sink.printf("%-14s %10s %14s %14s\n", "variant",
                        "gmeanWS", "bg-invalidated", "demand-moves");
        ctx.sink.printf("%-14s %10.3f %14llu %14llu\n",
                        "CDCS(stable)", gmean(with_stab.ws[1]),
                        static_cast<unsigned long long>(
                            with_stab.firstRun[1].bgInvalidated),
                        static_cast<unsigned long long>(
                            with_stab.firstRun[1].demandMoves));
        ctx.sink.printf("%-14s %10.3f %14llu %14llu\n", "CDCS(raw)",
                        gmean(without.ws[1]),
                        static_cast<unsigned long long>(
                            without.firstRun[1].bgInvalidated),
                        static_cast<unsigned long long>(
                            without.firstRun[1].demandMoves));
    };
    return spec;
}());

} // anonymous namespace
