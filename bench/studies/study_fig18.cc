/**
 * @file
 * Fig. 18: weighted speedup of 64-app mixes as the reconfiguration
 * period shrinks, for bulk invalidations, background invalidations
 * and idealized instant moves.
 *
 * The paper sweeps 10M-100M cycle periods; our epochs are defined in
 * accesses per thread, so the sweep scales the epoch length (shorter
 * epoch == more frequent reconfigurations, same proportional cost).
 *
 * Paper shape: background invalidations beat bulk at every period and
 * the gap narrows as reconfigurations get rarer; instant moves bound
 * both from above.
 */

#include "common/stats.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig18";
    spec.title = "Fig. 18";
    spec.paperRef = "WS vs reconfiguration period";
    spec.category = "figure";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "cdcs"};
    spec.repeatedLineup = true; // One sweep per epoch scale.
    spec.run = [](StudyContext &ctx) {
        ctx.header();

        std::vector<std::pair<const char *, MoveScheme>> modes = {
            {"bulk-inv", MoveScheme::BulkInvalidate},
            {"background-inv", MoveScheme::DemandBackground},
            {"instant", MoveScheme::Instant},
        };

        ctx.sink.printf("%-22s %12s %16s %12s\n",
                        "epoch accesses/thread", "bulk-inv",
                        "background-inv", "instant");
        const std::uint64_t base_accesses =
            ctx.cfg.accessesPerThreadEpoch;
        for (double scale : {0.25, 0.5, 1.0, 2.0}) {
            SystemConfig cfg = ctx.cfg;
            cfg.accessesPerThreadEpoch =
                static_cast<std::uint64_t>(base_accesses * scale);
            std::vector<SchemeSpec> schemes = {schemeByName("snuca")};
            for (const auto &[name, moves] : modes) {
                SchemeSpec scheme = schemeByName("cdcs");
                scheme.moves = moves;
                scheme.name = name;
                schemes.push_back(scheme);
            }
            const SweepResult sweep = ctx.runner.sweep(
                cfg, schemes, ctx.mixes,
                [&](int m) { return MixSpec::cpu(64, 8000 + m); });
            ctx.sink.sweep(
                std::string("fig18_period_") +
                    std::to_string(cfg.accessesPerThreadEpoch),
                sweep);
            ctx.sink.printf("%-22llu %12.3f %16.3f %12.3f\n",
                            static_cast<unsigned long long>(
                                cfg.accessesPerThreadEpoch),
                            gmean(sweep.ws[1]), gmean(sweep.ws[2]),
                            gmean(sweep.ws[3]));
            ctx.sink.flush();
        }
    };
    return spec;
}());

} // anonymous namespace
