/**
 * @file
 * Zipfian skew x memory placement: how hard a skewed hot-object
 * overlay (the dynamic-traffic layer's DistCache-style popularity
 * model) hits each scheme, and how much of the induced
 * memory-controller load imbalance each placement policy recovers.
 * `d2choice` is the DistCache power-of-two-choices pin; `contention`
 * adds epoch re-pinning on measured route waits.
 *
 * Expected shape: at alpha = 0 the overlay is uniform and the
 * policies tie. As alpha grows, `interleave`'s per-controller
 * imbalance rises with the skew while `d2choice` flattens it at
 * first touch (no migrations) and `contention` chases it with
 * migrations; the flit-weighted mem-route wait follows the
 * imbalance.
 */

#include <cstdio>
#include <iterator>
#include <string>

#include "common/stats.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "skew_sweep";
    spec.title = "Zipf skew x memory placement";
    spec.paperRef =
        "Zipf alpha x placement policies, contention mesh";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per (policy, alpha).
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        const char *policies[] = {"interleave", "d2choice",
                                  "contention"};
        const double alphas[] = {0.0, 0.9, 1.4};
        // sweeps[policy][alpha]
        std::vector<std::vector<SweepResult>> sweeps(
            std::size(policies));
        for (std::size_t p = 0; p < std::size(policies); p++) {
            for (double alpha : alphas) {
                SystemConfig cfg = ctx.cfg;
                cfg.nocModel = "contention";
                cfg.memPlacement = policies[p];
                cfg.skewAlpha = alpha;
                sweeps[p].push_back(ctx.runner.sweep(
                    cfg, schemes, ctx.mixes, mix_of));
                char name[64];
                std::snprintf(name, sizeof(name),
                              "skew_sweep_%s_a%g", policies[p],
                              alpha);
                ctx.sink.sweep(name, sweeps[p].back());
            }
        }

        const auto table = [&](const char *title, auto &&value) {
            ctx.sink.printf("%s\n", title);
            ctx.sink.printf("%-10s %-12s", "alpha", "policy");
            for (const SchemeSpec &s : schemes)
                ctx.sink.printf(" %10s", s.name.c_str());
            ctx.sink.printf("\n");
            for (std::size_t i = 0; i < std::size(alphas); i++) {
                for (std::size_t p = 0; p < std::size(policies);
                     p++) {
                    char label[32];
                    std::snprintf(label, sizeof(label), "%g",
                                  alphas[i]);
                    ctx.sink.printf("%-10s %-12s", label,
                                    policies[p]);
                    for (std::size_t s = 0; s < schemes.size(); s++)
                        ctx.sink.printf(" %10.3f",
                                        value(sweeps[p][i], s));
                    ctx.sink.printf("\n");
                }
            }
        };

        table("-- gmean weighted speedup over S-NUCA --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.mixes() > 0 ? gmean(sweep.ws[s])
                                           : 0.0;
              });
        ctx.sink.printf("\n");
        table("-- mem controller load imbalance (peak/mean, "
              "mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.firstRun[s].memCtrlImbalance();
              });
        ctx.sink.printf("\n");
        table("-- flit-weighted mean mem-route wait (cycles, "
              "mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return flitWeightedMeanMemWait(sweep.firstRun[s]);
              });
        ctx.sink.printf("\n");
        table("-- off-chip latency per instruction (cycles) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.offChipLat[s];
              });
    };
    return spec;
}());

} // anonymous namespace
