/**
 * @file
 * Table 1 + Fig. 1 (Sec. II-B case study): a 36-tile CMP running
 * omnetpp x6, milc x14 and two 8-thread ilbdc instances under R-NUCA,
 * Jigsaw+Clustered, Jigsaw+Random and CDCS. Reports per-app and
 * weighted speedups over S-NUCA and renders the CDCS thread/data
 * placement map.
 *
 * Paper shape to reproduce: omnetpp gains hugely once its 2.5 MB
 * working set fits (Jigsaw/CDCS), random beats clustered for omnetpp
 * but hurts ilbdc, and CDCS gets the best of both (Table 1's WS
 * column: R-NUCA 1.08 < Jigsaw+C 1.48 ~ Jigsaw+R 1.47 < CDCS 1.56).
 */

#include "common/stats.hh"
#include "sim/study.hh"
#include "sim/system.hh"

namespace
{

using namespace cdcs;

MixSpec
caseStudyMix()
{
    std::vector<std::string> names;
    for (int i = 0; i < 6; i++)
        names.push_back("omnetpp");
    for (int i = 0; i < 14; i++)
        names.push_back("milc");
    names.push_back("ilbdc");
    names.push_back("ilbdc");
    return MixSpec::named(names, 1000);
}

/** Mean throughput ratio over the processes of one app. */
double
appSpeedup(const RunResult &run, const RunResult &base, int first,
           int count)
{
    std::vector<double> ratios;
    for (int p = first; p < first + count; p++)
        ratios.push_back(run.procThroughput[p] /
                         base.procThroughput[p]);
    return mean(ratios);
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "table1";
    spec.title = "Table 1 / Fig. 1 case study";
    spec.paperRef = "omnetpp x6 + milc x14 + ilbdc x2(8t), 36 tiles";
    spec.category = "table";
    spec.defaultMixes = 1;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.configure = [](SystemConfig &cfg) {
        cfg.meshWidth = 6;
        cfg.meshHeight = 6;
    };
    spec.run = [](StudyContext &ctx) {
        ctx.header(1);
        const MixSpec mix = caseStudyMix();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto results =
            ctx.runner.runSchemes(ctx.cfg, schemes, mix);
        const RunResult &base = results[0];

        ctx.sink.printf("%-12s %8s %8s %8s %8s\n", "scheme", "omnet",
                        "ilbdc", "milc", "WS");
        for (std::size_t s = 1; s < schemes.size(); s++) {
            const RunResult &r = results[s];
            ctx.sink.printf("%-12s %8.2f %8.2f %8.2f %8.2f\n",
                            schemes[s].name.c_str(),
                            appSpeedup(r, base, 0, 6),
                            appSpeedup(r, base, 20, 2),
                            appSpeedup(r, base, 6, 14),
                            weightedSpeedup(r, base));
        }

        ctx.sink.printf("\nFig. 1d equivalent: CDCS thread and data "
                        "placement\n");
        System cdcs_system(ctx.cfg, schemeByName("cdcs"),
                           buildMix(mix));
        cdcs_system.run();
        const ChipMap map = captureChipMap(cdcs_system);
        writeChipMap(ctx.sink, map);
        ctx.sink.chipMap("table1_chipmap", map);
    };
    return spec;
}());

} // anonymous namespace
