/**
 * @file
 * Fig. 15: mixes of eight 8-thread SPEC OMP2012-like apps (64 threads
 * total) on the 64-core CMP — weighted-speedup distribution and
 * traffic breakdown.
 *
 * Paper shape: trends reverse vs. single-threaded mixes — Jigsaw+C
 * (clustered) beats Jigsaw+R because shared-heavy processes want
 * their threads around the shared data; CDCS still wins (21% vs
 * 19%/14%/9%) because it clusters or spreads per process as needed.
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig15";
    spec.title = "Fig. 15";
    spec.paperRef = "8 x 8-thread OMP mixes";
    spec.category = "figure";
    spec.defaultMixes = 4;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, ctx.lineup(), ctx.mixes,
            [&](int m) { return MixSpec::omp(8, 5000 + m); });
        ctx.sink.sweep("fig15_multithread", sweep);

        ctx.sink.printf(
            "-- Fig. 15a: weighted speedup inverse CDF --\n");
        writeInverseCdf(ctx.sink, sweep);
        ctx.sink.printf("\n");
        writeWsSummary(ctx.sink, sweep);
        ctx.sink.printf("\n-- Fig. 15b: traffic breakdown --\n");
        writeBreakdowns(ctx.sink, sweep);
    };
    return spec;
}());

} // anonymous namespace
