/**
 * @file
 * Elasticity under tenant churn: threads depart mid-run and return
 * later (the dynamic-traffic layer's epoch-boundary churn schedule),
 * and the schemes differ in how fast they reconfigure around the
 * churn and recover per-thread throughput. Reports weighted speedup
 * per churn level, the churn events' weighted-speedup recovery
 * latency and reconfiguration latency (epochs, mean over mixes and
 * events), and the placement churn they cost; per-epoch traces land
 * as artifacts for tools/plot_elasticity.py.
 *
 * Expected shape: all schemes lose throughput at the departure and
 * regain it by the arrival; the partitioned schemes reconfigure
 * within an epoch or two of each event, and CDCS's incremental moves
 * keep its recovery at or below Jigsaw's bulk-invalidate latency.
 */

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/report.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

struct ChurnLevel
{
    const char *name;
    int threads; ///< Threads departing (then returning); 0 = none.
};

void
appendF(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

/**
 * The per-epoch churn trace, on the shared metrics-trace schema with
 * the study's own keys (churn level, event epochs) folded in as
 * extra top-level fields.
 */
std::string
traceJson(const char *level, const std::string &scheme, int down,
          int up, const RunResult &run)
{
    std::string extra;
    appendF(extra, "\"level\": \"%s\", \"events\": [%d, %d], ",
            level, down, up);
    return metricsTraceJson(scheme, run, extra);
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "elasticity";
    spec.title = "Elasticity under tenant churn";
    spec.paperRef = "churn level x schemes, epoch-boundary churn";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per churn level.
    // Churn needs room: a window before, between and after the two
    // events. --set epochs/warmup still override.
    spec.configure = [](SystemConfig &cfg) {
        cfg.epochs = 12;
        cfg.warmupEpochs = 2;
    };
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        // Event epochs from the resolved config: departure a third
        // into the measured window, arrival two thirds in.
        const int warm = ctx.cfg.warmupEpochs;
        const int total = ctx.cfg.epochs;
        const int span = total > warm ? total - warm : 0;
        int down = warm + std::max(1, span / 3);
        int up = warm + std::max(2, 2 * span / 3);
        if (up >= total)
            up = total - 1;
        if (down >= up)
            down = std::max(1, up - 1);

        const ChurnLevel levels[] = {
            {"none", 0}, {"mild", 8}, {"heavy", 24}};
        const auto churn_of = [&](const ChurnLevel &level) {
            if (level.threads == 0)
                return std::string();
            std::string churn;
            appendF(churn, "%d:-%d,%d:+%d", down, level.threads, up,
                    level.threads);
            return churn;
        };

        std::vector<SweepResult> sweeps;
        for (const ChurnLevel &level : levels) {
            SystemConfig cfg = ctx.cfg;
            cfg.churn = churn_of(level);
            sweeps.push_back(
                ctx.runner.sweep(cfg, schemes, ctx.mixes, mix_of));
            char name[64];
            std::snprintf(name, sizeof(name), "elasticity_%s",
                          level.name);
            ctx.sink.sweep(name, sweeps.back());
        }

        ctx.sink.printf("churn events: -N entering epoch %d, "
                        "+N entering epoch %d (of %d epochs, "
                        "%d warmup)\n\n",
                        down, up, total, warm);

        const auto table = [&](const char *title, std::size_t first,
                               auto &&value) {
            ctx.sink.printf("%s\n", title);
            ctx.sink.printf("%-10s", "churn");
            for (const SchemeSpec &s : schemes)
                ctx.sink.printf(" %10s", s.name.c_str());
            ctx.sink.printf("\n");
            for (std::size_t l = first; l < std::size(levels); l++) {
                ctx.sink.printf("%-10s", levels[l].name);
                for (std::size_t s = 0; s < schemes.size(); s++)
                    ctx.sink.printf(" %10.3f", value(l, s));
                ctx.sink.printf("\n");
            }
        };

        table("-- gmean weighted speedup over S-NUCA --", 0,
              [&](std::size_t l, std::size_t s) {
                  return sweeps[l].mixes() > 0
                      ? gmean(sweeps[l].ws[s])
                      : 0.0;
              });
        ctx.sink.printf("\n");

        // Per-event elasticity metrics, mean over mixes and the two
        // events. The per-mix runs were all simulated by the sweeps
        // above, so these lookups come out of the result cache.
        const auto run_of = [&](std::size_t l, std::size_t s,
                                int m) {
            SystemConfig cfg = ctx.cfg;
            cfg.churn = churn_of(levels[l]);
            return ctx.runner.run(cfg, schemes[s], mix_of(m));
        };
        const auto mean_metric = [&](std::size_t l, std::size_t s,
                                     auto &&metric) {
            double sum = 0.0;
            int n = 0;
            for (int m = 0; m < ctx.mixes; m++) {
                const RunResult run = run_of(l, s, m);
                for (int event : {down, up}) {
                    sum += metric(run, event);
                    n++;
                }
            }
            return n > 0 ? sum / n : 0.0;
        };

        table("-- WS recovery epochs after churn (mean over mixes "
              "and events; window length if never) --",
              1, [&](std::size_t l, std::size_t s) {
                  return mean_metric(
                      l, s, [&](const RunResult &run, int event) {
                          const int rec =
                              run.recoveryEpochsAfter(event);
                          if (rec >= 0)
                              return static_cast<double>(rec);
                          // Never recovered inside the window:
                          // charge the whole window.
                          const int end =
                              event < up ? up : total;
                          return static_cast<double>(end - event);
                      });
              });
        ctx.sink.printf("\n");
        table("-- reconfiguration latency after churn (epochs, mean "
              "over mixes and events) --",
              1, [&](std::size_t l, std::size_t s) {
                  return mean_metric(
                      l, s, [](const RunResult &run, int event) {
                          const int lat =
                              run.reconfigLatencyAfter(event);
                          return lat > 0
                              ? static_cast<double>(lat)
                              : 0.0;
                      });
              });
        ctx.sink.printf("\n");
        table("-- thread placement moves over the run (mix 0) --", 1,
              [&](std::size_t l, std::size_t s) {
                  double moves = 0.0;
                  for (const EpochRecord &rec :
                       sweeps[l].firstRun[s].epochTrace)
                      moves += rec.placementMoves;
                  return moves;
              });

        // Per-epoch traces (mix 0) for tools/plot_elasticity.py.
        for (std::size_t l = 1; l < std::size(levels); l++) {
            for (std::size_t s = 0; s < schemes.size(); s++) {
                char name[96];
                std::snprintf(name, sizeof(name),
                              "elasticity_trace_%s_%s",
                              levels[l].name,
                              ctx.spec.lineup[s].c_str());
                ctx.sink.artifact(
                    name,
                    traceJson(levels[l].name, schemes[s].name, down,
                              up, sweeps[l].firstRun[s]));
            }
        }
    };
    return spec;
}());

} // anonymous namespace
