/**
 * @file
 * Fig. 2: miss curves (MPKI vs. LLC capacity) of the case-study apps
 * omnetpp, milc and ilbdc, measured by streaming each profile's
 * synthetic access stream through a real LRU cache of each size.
 *
 * Paper shape: omnetpp ~85 MPKI until ~2.5 MB then a cliff; milc flat
 * (streaming); ilbdc small footprint that fits in ~0.5 MB.
 */

#include <array>

#include "cache/partitioned_bank.hh"
#include "sim/study.hh"
#include "workload/app_profile.hh"

namespace
{

using namespace cdcs;

/** MPKI of an app at one cache size (warm measurement). */
double
mpkiAt(const AppProfile &app, std::uint64_t cache_lines,
       std::uint64_t accesses)
{
    if (cache_lines == 0)
        return app.apki;
    StreamGen gen(app.privateStream, 42);
    // Pick a power-of-two set count near 16-way associativity; the
    // rounding error in effective capacity is under one way per set.
    std::uint64_t sets = 1;
    while (sets * 2 * 16 <= cache_lines)
        sets *= 2;
    const std::uint64_t ways = std::max<std::uint64_t>(
        1, cache_lines / sets);
    PartitionedBank cache(sets * ways,
                          static_cast<std::uint32_t>(ways));
    // Warm up for one full pass over max(footprint, cache).
    const std::uint64_t warm =
        std::max<std::uint64_t>(gen.footprint(), cache_lines) * 2;
    for (std::uint64_t i = 0; i < warm; i++)
        cache.access(gen.next(), 0, 0);
    std::uint64_t misses = 0;
    for (std::uint64_t i = 0; i < accesses; i++) {
        if (!cache.access(gen.next(), 0, 0).hit)
            misses++;
    }
    return app.apki * static_cast<double>(misses) / accesses;
}

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig2";
    spec.title = "Fig. 2 miss curves";
    spec.paperRef = "MPKI vs LLC MB, case-study apps";
    spec.category = "figure";
    spec.defaultMixes = 1;
    spec.run = [](StudyContext &ctx) {
        const std::uint64_t accesses =
            ctx.cfg.accessesPerThreadEpoch * 4;
        ctx.sink.printf(
            "== Fig. 2 miss curves (MPKI vs LLC MB) ==\n");
        ctx.sink.printf("%8s %10s %10s %10s\n", "MB", "omnetpp",
                        "milc", "ilbdc");

        const AppProfile &omnet = profileByName("omnetpp");
        const AppProfile &milc = profileByName("milc");
        // ilbdc's footprint is its shared stream.
        AppProfile ilbdc = profileByName("ilbdc");
        ilbdc.privateStream = ilbdc.sharedStream;

        // Each (capacity, app) measurement is independent: shard the
        // whole grid across the pool and print in order afterwards.
        const std::vector<double> mbs = {0.0, 0.25, 0.5, 0.75, 1.0,
                                         1.5, 2.0, 2.25, 2.5, 2.75,
                                         3.0, 3.5, 4.0};
        const std::vector<const AppProfile *> apps = {&omnet, &milc,
                                                      &ilbdc};
        std::vector<std::array<double, 3>> mpki(mbs.size());
        ctx.runner.forEach(
            static_cast<int>(mbs.size() * apps.size()), [&](int i) {
                const auto p =
                    static_cast<std::size_t>(i) % apps.size();
                const auto c =
                    static_cast<std::size_t>(i) / apps.size();
                const auto lines = static_cast<std::uint64_t>(
                    mbs[c] * 1024 * 1024 / lineBytes);
                mpki[c][p] = mpkiAt(*apps[p], lines, accesses);
            });
        for (std::size_t c = 0; c < mbs.size(); c++) {
            ctx.sink.printf("%8.2f %10.1f %10.1f %10.1f\n", mbs[c],
                            mpki[c][0], mpki[c][1], mpki[c][2]);
        }
    };
    return spec;
}());

} // anonymous namespace
