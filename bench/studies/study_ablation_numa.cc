/**
 * @file
 * Ablation of the NUMA-aware memory-placement extension (the future
 * work Sec. III defers; cf. the Fig. 11d remark that NUMA-aware
 * techniques would further reduce the dominant LLC-to-memory
 * traffic): first-touch page-to-controller affinity vs. the paper's
 * page-interleaved baseline, under R-NUCA and CDCS.
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "ablation_numa";
    spec.title = "NUMA-aware memory placement ablation";
    spec.paperRef = "Sec. III future work / Fig. 11d remark";
    spec.category = "ablation";
    spec.defaultMixes = 1;
    spec.lineup = {"rnuca", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        const SystemConfig &base = ctx.cfg;
        SystemConfig numa = base;
        numa.numaAwareMem = true;
        ctx.header(1);

        const MixSpec mix = MixSpec::cpu(48, 9950);
        const std::vector<const char *> tags = {
            "R-NUCA interleaved", "R-NUCA numa-aware",
            "CDCS interleaved", "CDCS numa-aware"};
        const std::vector<ExperimentRunner::Job> jobs = {
            {base, schemeByName("rnuca"), mix},
            {numa, schemeByName("rnuca"), mix},
            {base, schemeByName("cdcs"), mix},
            {numa, schemeByName("cdcs"), mix},
        };
        const auto results = ctx.runner.runAll(jobs);

        ctx.sink.printf("%-24s %14s %16s %12s\n", "config",
                        "LLCMem fh/instr", "offchip/instr",
                        "nJ/instr");
        for (std::size_t i = 0; i < jobs.size(); i++) {
            const RunResult &r = results[i];
            ctx.sink.printf(
                "%-24s %14.3f %16.3f %12.2f\n", tags[i],
                r.flitHopsPerInstr(TrafficClass::LLCToMem),
                r.offChipLatPerInstr(),
                r.totalInstrs > 0.0
                    ? 1e9 * r.energy.total() / r.totalInstrs
                    : 0.0);
        }
    };
    return spec;
}());

} // anonymous namespace
