/**
 * @file
 * Memory-controller page placement: what the pluggable placement
 * policies buy under a contended network. The paper's Fig. 11d
 * discussion leaves NUMA-aware memory placement to future work; the
 * `first-touch` policy models that extension, and `contention` pairs
 * it with an epoch rebalance that re-pins hot pages away from
 * saturated controllers, priced on the NoC's measured route waits.
 * Each policy runs the contended lineup over a sweep of injection
 * scales (mix seeds shared with the noc studies, so batched
 * invocations share runs through the result cache).
 *
 * Expected shape: `first-touch` beats `interleave` on the mem-route
 * wait by shortening LLC-to-memory routes; at saturating scales
 * (x4 and up) `contention` pulls the flit-weighted mean mem-route
 * wait below `first-touch` — hot pages migrate to cooler nearby
 * controllers — without giving up weighted speedup.
 */

#include <cstdio>
#include <iterator>
#include <string>

#include "common/stats.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "mem_placement";
    spec.title = "Memory-controller page placement";
    spec.paperRef =
        "placement policies x injection scale, contention mesh";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "rnuca", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per (policy, scale).
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        const char *policies[] = {"interleave", "first-touch",
                                  "contention"};
        const double scales[] = {1.0, 4.0, 8.0};
        // sweeps[policy][scale]
        std::vector<std::vector<SweepResult>> sweeps(
            std::size(policies));
        for (std::size_t p = 0; p < std::size(policies); p++) {
            for (double scale : scales) {
                SystemConfig cfg = ctx.cfg;
                cfg.nocModel = "contention";
                cfg.nocInjScale = scale;
                cfg.memPlacement = policies[p];
                sweeps[p].push_back(ctx.runner.sweep(
                    cfg, schemes, ctx.mixes, mix_of));
                char name[64];
                std::snprintf(name, sizeof(name),
                              "mem_placement_%s_x%g", policies[p],
                              scale);
                ctx.sink.sweep(name, sweeps[p].back());
            }
        }

        const auto table = [&](const char *title, auto &&value) {
            ctx.sink.printf("%s\n", title);
            ctx.sink.printf("%-10s %-12s", "inj-scale", "policy");
            for (const SchemeSpec &s : schemes)
                ctx.sink.printf(" %10s", s.name.c_str());
            ctx.sink.printf("\n");
            for (std::size_t i = 0; i < std::size(scales); i++) {
                for (std::size_t p = 0; p < std::size(policies);
                     p++) {
                    char label[32];
                    std::snprintf(label, sizeof(label), "x%g",
                                  scales[i]);
                    ctx.sink.printf("%-10s %-12s", label,
                                    policies[p]);
                    for (std::size_t s = 0; s < schemes.size(); s++)
                        ctx.sink.printf(" %10.3f",
                                        value(sweeps[p][i], s));
                    ctx.sink.printf("\n");
                }
            }
        };

        table("-- gmean weighted speedup over S-NUCA --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.mixes() > 0 ? gmean(sweep.ws[s])
                                           : 0.0;
              });
        ctx.sink.printf("\n");
        table("-- flit-weighted mean mem-route wait (cycles, "
              "mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return flitWeightedMeanMemWait(sweep.firstRun[s]);
              });
        ctx.sink.printf("\n");
        table("-- off-chip latency per instruction (cycles) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.offChipLat[s];
              });
        ctx.sink.printf("\n");
        table("-- pages migrated (mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return static_cast<double>(
                      sweep.firstRun[s].memMigratedPages);
              });
    };
    return spec;
}());

} // anonymous namespace
