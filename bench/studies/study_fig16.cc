/**
 * @file
 * Fig. 16: mixes of four 8-thread SPEC OMP2012-like apps (32 threads
 * on 64 cores) — weighted speedups, plus the Fig. 16b case study:
 * CDCS spreads the private-heavy mgrid across the chip while tightly
 * clustering the shared-heavy md/ilbdc/nab around their shared VCs.
 */

#include "sim/study.hh"
#include "sim/system.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig16";
    spec.title = "Fig. 16";
    spec.paperRef = "4 x 8-thread OMP mixes (32/64 cores)";
    spec.category = "figure";
    spec.defaultMixes = 4;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, ctx.lineup(), ctx.mixes,
            [&](int m) { return MixSpec::omp(4, 6000 + m); });
        ctx.sink.sweep("fig16_undercommit_mt", sweep);

        ctx.sink.printf(
            "-- Fig. 16a: weighted speedup inverse CDF --\n");
        writeInverseCdf(ctx.sink, sweep);
        ctx.sink.printf("\n");
        writeWsSummary(ctx.sink, sweep);

        ctx.sink.printf(
            "\n-- Fig. 16b case study: mgrid (private-heavy) + "
            "md/ilbdc/nab (shared-heavy) under CDCS --\n");
        const MixSpec case_mix =
            MixSpec::named({"mgrid", "md", "ilbdc", "nab"}, 6100);
        System system(ctx.cfg, schemeByName("cdcs"),
                      buildMix(case_mix));
        system.run();
        const ChipMap map = captureChipMap(system);
        writeChipMap(ctx.sink, map);
        ctx.sink.chipMap("fig16b_chipmap", map);
    };
    return spec;
}());

} // anonymous namespace
