/**
 * @file
 * NoC link-load heatmap: per-link traffic of one 64-app mix under
 * the contention-aware mesh, rendered per scheme like the Fig. 1 /
 * 16b chip maps and exported as JSON for tools/plot_noc_heatmap.py.
 *
 * Expected shape: S-NUCA spreads every VC across the whole chip, so
 * load concentrates on the mesh's center links; CDCS's compact VC
 * placement keeps traffic local and the per-link peak far lower.
 */

#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "noc_heatmap";
    spec.title = "NoC link-load heatmap";
    spec.paperRef = "per-link flits per scheme, contention mesh";
    spec.category = "ablation";
    spec.defaultMixes = 1;
    spec.lineup = {"snuca", "rnuca", "cdcs"};
    spec.repeatedLineup = true; // Shares runs with noc_sensitivity.
    spec.configure = [](SystemConfig &cfg) {
        cfg.nocModel = "contention";
    };
    spec.run = [](StudyContext &ctx) {
        ctx.header(1);
        const MixSpec mix = MixSpec::cpu(64, nocMixSeedBase);
        for (const std::string &name : ctx.spec.lineup) {
            const SchemeSpec scheme = schemeByName(name);
            const RunResult run =
                ctx.runner.run(ctx.cfg, scheme, mix);
            const NocHeatmap map = makeNocHeatmap(
                ctx.cfg.meshWidth, ctx.cfg.meshHeight, run);
            ctx.sink.printf("-- %s --\n", scheme.name.c_str());
            writeNocHeatmap(ctx.sink, map);
            ctx.sink.nocHeatmap("noc_heatmap_" + name, map);
            ctx.sink.printf("\n");
        }
    };
    return spec;
}());

} // anonymous namespace
