/**
 * @file
 * Fig. 11 (a-e): mixes of 64 SPEC CPU2006-like apps on the 64-core
 * CMP under S-NUCA, R-NUCA, Jigsaw+C, Jigsaw+R and CDCS.
 *
 *  - 11a: per-mix weighted speedup over S-NUCA (inverse CDF);
 *  - 11b: average on-chip network latency of LLC accesses;
 *  - 11c: average off-chip latency;
 *  - 11d: network traffic breakdown per instruction;
 *  - 11e: energy breakdown per instruction.
 *
 * Paper shape: CDCS > Jigsaw+R > Jigsaw+C > R-NUCA > S-NUCA in WS
 * (46/38/34/18% gmean); S-NUCA ~11x CDCS's on-chip latency and ~3x
 * its traffic; R-NUCA lowest on-chip latency but worst off-chip.
 */

#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig11";
    spec.title = "Fig. 11 (a-e)";
    spec.paperRef = "50 mixes of 64 apps in the paper";
    spec.category = "figure";
    spec.defaultMixes = 4;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const SweepResult sweep = ctx.runner.sweep(
            ctx.cfg, ctx.lineup(), ctx.mixes,
            [&](int m) { return MixSpec::cpu(64, 1000 + m); });
        ctx.sink.sweep("fig11_64app", sweep);

        ctx.sink.printf(
            "-- Fig. 11a: weighted speedup inverse CDF --\n");
        writeInverseCdf(ctx.sink, sweep);
        ctx.sink.printf("\n");
        writeWsSummary(ctx.sink, sweep);
        ctx.sink.printf("\n-- Fig. 11b-e: latency, traffic and energy "
                        "breakdowns (normalized to CDCS) --\n");
        writeBreakdowns(ctx.sink, sweep);
    };
    return spec;
}());

} // anonymous namespace
