/**
 * @file
 * Fig. 13: gmean weighted speedup with an under-committed 64-core
 * CMP: mixes of 1, 2, 4, 8, 16, 32 and 64 single-threaded apps.
 *
 * Paper shape: CDCS stays on top across the whole range; Jigsaw+C
 * collapses at low app counts (clustered capacity contention) and
 * Jigsaw+R is mediocre there because it over-allocates capacity that
 * only adds on-chip latency; latency-aware allocation matters most
 * when capacity is plentiful.
 */

#include "common/stats.hh"
#include "sim/study.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "fig13";
    spec.title = "Fig. 13 under-committed sweep";
    spec.paperRef = "1-64 apps";
    spec.category = "figure";
    spec.defaultMixes = 3;
    spec.lineup = {"snuca", "rnuca", "jigsaw-c", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per app count.
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        ctx.sink.printf("%-8s", "apps");
        for (const auto &s : schemes)
            ctx.sink.printf(" %10s", s.name.c_str());
        ctx.sink.printf("\n");

        for (int apps : {1, 2, 4, 8, 16, 32, 64}) {
            const SweepResult sweep = ctx.runner.sweep(
                ctx.cfg, schemes, ctx.mixes, [&](int m) {
                    return MixSpec::cpu(apps, 3000 + 100 * apps + m);
                });
            ctx.sink.sweep(std::string("fig13_undercommit_") +
                               std::to_string(apps) + "app",
                           sweep);
            ctx.sink.printf("%-8d", apps);
            for (std::size_t s = 0; s < schemes.size(); s++)
                ctx.sink.printf(" %10.3f", gmean(sweep.ws[s]));
            ctx.sink.printf("\n");
            ctx.sink.flush();
        }
    };
    return spec;
}());

} // anonymous namespace
