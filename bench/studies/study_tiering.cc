/**
 * @file
 * Far-memory tiering study: near-capacity ratio x tiering policy x
 * NoC injection scale under a Zipf hot-object overlay. `static`
 * freezes the hash split that seeds both policies; `hotness`
 * additionally promotes the pages the overlay concentrates accesses
 * on (and demotes cold near pages to keep the split), so its win
 * over `static` isolates the benefit of hotness-ranked migration.
 *
 * Expected shape: the LLC retains the Zipf head, so the miss stream
 * the memory tiers serve is the page-aligned thrashing band just past
 * retention (skewPageHot keeps that band skewed at page granularity).
 * Under `static`, farMemRatio of that band pays the far latency
 * forever; `hotness` promotes its sustained pages (the reuse filter
 * keeps one-shot scans out) within a few epochs, so at every ratio
 * its gmean weighted speedup rises and its far access share dips
 * below the static arm's.
 */

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>

#include "common/stats.hh"
#include "sim/study.hh"
#include "noc_studies.hh"

namespace
{

using namespace cdcs;

const StudyRegistrar registrar([] {
    StudySpec spec;
    spec.name = "tiering";
    spec.title = "Far-memory tiering";
    spec.paperRef =
        "capacity disaggregation: near ratio x tier policy";
    spec.category = "ablation";
    spec.defaultMixes = 2;
    spec.lineup = {"snuca", "jigsaw-r", "cdcs"};
    spec.repeatedLineup = true; // One sweep per grid cell.
    spec.run = [](StudyContext &ctx) {
        ctx.header();
        const std::vector<SchemeSpec> schemes = ctx.lineup();
        const auto mix_of = [](int m) {
            return MixSpec::cpu(64, nocMixSeedBase + m);
        };

        const double ratios[] = {0.25, 0.5, 0.75};
        const char *policies[] = {"static", "hotness"};
        const double inj_scales[] = {1.0, 4.0};

        struct Cell
        {
            double ratio;
            double inj;
            const char *policy;
            SweepResult sweep;
        };
        std::vector<Cell> cells;
        for (double ratio : ratios) {
            for (double inj : inj_scales) {
                for (const char *policy : policies) {
                    SystemConfig cfg = ctx.cfg;
                    cfg.nocModel = "contention";
                    cfg.nocInjScale = inj;
                    // Alpha just above the acceptance floor (1.2):
                    // a steeper skew parks nearly all overlay mass
                    // in the LLC-retained head, leaving no miss
                    // stream to re-tier; at 1.25 roughly a tenth of
                    // the overlay mass thrashes past retention as a
                    // still-Zipf page stream.
                    cfg.skewAlpha = 1.25;
                    // Most traffic goes through the overlay: the LLC
                    // retains the Zipf head, so the miss stream the
                    // tiers serve is the thrashing band past
                    // retention — the part page migration can help.
                    cfg.skewFraction = 0.8;
                    // A disaggregated pool several times DRAM
                    // latency (not the gentle default): what each
                    // mis-tiered hot page actually costs.
                    cfg.farMemLatency = 600;
                    // An overlay well past LLC capacity with a
                    // page-aligned hot-set table: the thrashing band
                    // of hot ranks misses as whole pages, so the
                    // page-level miss stream is genuinely Zipf-skewed
                    // and hotness-ranked promotion has a hot set to
                    // chase.
                    cfg.skewLines = std::uint64_t{1} << 21;
                    cfg.skewHotLines = std::uint64_t{1} << 18;
                    cfg.skewPageHot = true;
                    cfg.farMemRatio = ratio;
                    cfg.memTiering = policy;
                    cells.push_back(
                        {ratio, inj, policy,
                         ctx.runner.sweep(cfg, schemes, ctx.mixes,
                                          mix_of)});
                    char name[64];
                    std::snprintf(name, sizeof(name),
                                  "tiering_r%g_i%g_%s", ratio, inj,
                                  policy);
                    ctx.sink.sweep(name, cells.back().sweep);
                }
            }
        }

        const auto table = [&](const char *title, auto &&value) {
            ctx.sink.printf("%s\n", title);
            ctx.sink.printf("%-8s %-6s %-10s", "ratio", "inj",
                            "policy");
            for (const SchemeSpec &s : schemes)
                ctx.sink.printf(" %10s", s.name.c_str());
            ctx.sink.printf("\n");
            for (const Cell &cell : cells) {
                char ratio_s[16];
                char inj_s[16];
                std::snprintf(ratio_s, sizeof(ratio_s), "%g",
                              cell.ratio);
                std::snprintf(inj_s, sizeof(inj_s), "%g", cell.inj);
                ctx.sink.printf("%-8s %-6s %-10s", ratio_s, inj_s,
                                cell.policy);
                for (std::size_t s = 0; s < schemes.size(); s++)
                    ctx.sink.printf(" %10.3f", value(cell.sweep, s));
                ctx.sink.printf("\n");
            }
        };

        table("-- gmean weighted speedup over S-NUCA --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.mixes() > 0 ? gmean(sweep.ws[s])
                                           : 0.0;
              });
        ctx.sink.printf("\n");
        table("-- off-chip latency per instruction (cycles) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.offChipLat[s];
              });
        ctx.sink.printf("\n");
        table("-- far access share (mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return sweep.firstRun[s].farAccessShare();
              });
        ctx.sink.printf("\n");
        table("-- flit-weighted mean far-attach wait (cycles, "
              "mix 0) --",
              [](const SweepResult &sweep, std::size_t s) {
                  return flitWeightedMeanFarMemWait(
                      sweep.firstRun[s]);
              });
        for (const Cell &cell : cells) {
            if (std::string(cell.policy) != "hotness")
                continue;
            char title[96];
            std::snprintf(title, sizeof(title),
                          "\n-- tier counters, ratio %g inj %g "
                          "(hotness, mix 0) --",
                          cell.ratio, cell.inj);
            ctx.sink.printf("%s", title);
            writeTierSummary(ctx.sink, cell.sweep);
        }

        // The plot_tiering.py payload: one record per grid cell with
        // the per-scheme aggregates the curves are drawn from.
        std::string json = "{\"schema\": \"cdcs-tiering-v1\", "
                           "\"cells\": [";
        for (std::size_t c = 0; c < cells.size(); c++) {
            const Cell &cell = cells[c];
            char buf[160];
            json += c > 0 ? ", " : "";
            std::snprintf(buf, sizeof(buf),
                          "{\"ratio\": %.17g, \"inj\": %.17g, "
                          "\"policy\": \"%s\", \"schemes\": [",
                          cell.ratio, cell.inj, cell.policy);
            json += buf;
            for (std::size_t s = 0; s < schemes.size(); s++) {
                const RunResult &run = cell.sweep.firstRun[s];
                json += s > 0 ? ", " : "";
                json += "{\"name\": \"" + schemes[s].name + "\", ";
                std::snprintf(
                    buf, sizeof(buf),
                    "\"gmeanWs\": %.17g, \"offChipLat\": %.17g, "
                    "\"farShare\": %.17g, \"promotions\": %llu}",
                    cell.sweep.mixes() > 0 ? gmean(cell.sweep.ws[s])
                                           : 0.0,
                    cell.sweep.offChipLat[s], run.farAccessShare(),
                    static_cast<unsigned long long>(
                        run.tierPromotions));
                json += buf;
            }
            json += "]}";
        }
        json += "]}";
        ctx.sink.artifact("tiering_summary", json);
    };
    return spec;
}());

} // anonymous namespace
