/**
 * @file
 * Legacy entry point kept for existing scripts and CMake targets:
 * delegates to the "vic_monitors" study (bench/studies/), whose default
 * text output is byte-identical to the old hand-written harness.
 * Prefer `cdcs_studies run vic_monitors`.
 */

#include "sim/study.hh"

int
main()
{
    return cdcs::studyMain("vic_monitors");
}
