/**
 * @file
 * Sec. VI-C, "Bank-partitioned NUCA": CDCS without fine-grained
 * partitioning — four 128 KB banks per tile, whole-bank allocation
 * (Sec. IV-I) — vs. fine-grained CDCS and S-NUCA.
 *
 * Paper shape: bank-granular CDCS keeps most of the benefit (36% vs
 * 46% gmean over S-NUCA at 64 apps) but loses from coarser capacity
 * allocation.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const int mixes = benchMixes(3);
    SystemConfig fine_cfg = benchConfig();

    SystemConfig bank_cfg = fine_cfg;
    bank_cfg.banksPerTile = 4;
    bank_cfg.bankLines = 2048;
    bank_cfg.allocGranuleLines = 2048;

    printHeader("Sec. VI-C bank-granular CDCS",
                "4 x 128 KB banks/tile, whole-bank allocation",
                bank_cfg, mixes);

    SchemeSpec bank_spec = SchemeSpec::cdcs();
    bank_spec.cdcsOpts.placeGranule = 2048.0;
    bank_spec.cdcsOpts.minAllocLines = 2048.0;
    bank_spec.cdcsOpts.sizeHysteresis = 0.4;
    bank_spec.name = "CDCS-bank";

    const int apps = static_cast<int>(envOr("CDCS_APPS", 48));
    const SweepResult fine = benchRunner().sweep(
        fine_cfg, {SchemeSpec::snuca(), SchemeSpec::cdcs()}, mixes,
        [&](int m) { return MixSpec::cpu(apps, 9800 + m); });
    const SweepResult bank = benchRunner().sweep(
        bank_cfg, {SchemeSpec::snuca(), bank_spec}, mixes,
        [&](int m) { return MixSpec::cpu(apps, 9800 + m); });

    maybeExportJson(fine, "vic_bankgrain_fine");
    maybeExportJson(bank, "vic_bankgrain_bank");

    std::printf("%-12s %10s\n", "scheme", "gmeanWS");
    std::printf("%-12s %10.3f\n", "CDCS-fine", gmean(fine.ws[1]));
    std::printf("%-12s %10.3f\n", "CDCS-bank", gmean(bank.ws[1]));
    return 0;
}
