/**
 * @file
 * Legacy entry point kept for existing scripts and CMake targets:
 * delegates to the "ablation_stability" study (bench/studies/), whose default
 * text output is byte-identical to the old hand-written harness.
 * Prefer `cdcs_studies run ablation_stability`.
 */

#include "sim/study.hh"

int
main()
{
    return cdcs::studyMain("ablation_stability");
}
