/**
 * @file
 * Ablation of this implementation's reconfiguration-stability layer
 * (DESIGN.md Sec. 7): size/allocation hysteresis, EWMA smoothing of
 * monitor inputs, and rendezvous-hashed VC descriptors.
 *
 * The paper reconfigures every 25 ms (~50 Mcycles), so a full-VC
 * remap re-warms within a fraction of an epoch and stability is free.
 * At laptop-scale epochs a remap can cost more than the
 * reconfiguration gains; this harness quantifies how much of CDCS's
 * speedup the stability layer preserves, and what descriptor churn
 * (background invalidations + demand moves) looks like without it.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(2);
    printHeader("Stability ablation",
                "hysteresis + EWMA smoothing (DESIGN.md Sec. 7)", cfg,
                mixes);

    SystemConfig raw_cfg = cfg;
    raw_cfg.monitorSmoothing = 1.0;     // No EWMA.
    raw_cfg.moveCfg.allocHysteresis = 0.0;

    SchemeSpec stable = SchemeSpec::cdcs();
    SchemeSpec raw = SchemeSpec::cdcs();
    raw.cdcsOpts.sizeHysteresis = 0.0;
    raw.name = "CDCS-raw";

    const SweepResult with_stab = benchRunner().sweep(
        cfg, {SchemeSpec::snuca(), stable}, mixes,
        [&](int m) { return MixSpec::cpu(48, 9900 + m); });
    const SweepResult without = benchRunner().sweep(
        raw_cfg, {SchemeSpec::snuca(), raw}, mixes,
        [&](int m) { return MixSpec::cpu(48, 9900 + m); });

    maybeExportJson(with_stab, "ablation_stability_stable");
    maybeExportJson(without, "ablation_stability_raw");

    std::printf("%-14s %10s %14s %14s\n", "variant", "gmeanWS",
                "bg-invalidated", "demand-moves");
    std::printf("%-14s %10.3f %14llu %14llu\n", "CDCS(stable)",
                gmean(with_stab.ws[1]),
                static_cast<unsigned long long>(
                    with_stab.firstRun[1].bgInvalidated),
                static_cast<unsigned long long>(
                    with_stab.firstRun[1].demandMoves));
    std::printf("%-14s %10.3f %14llu %14llu\n", "CDCS(raw)",
                gmean(without.ws[1]),
                static_cast<unsigned long long>(
                    without.firstRun[1].bgInvalidated),
                static_cast<unsigned long long>(
                    without.firstRun[1].demandMoves));
    return 0;
}
