/**
 * @file
 * Table 3: CPU time of the CDCS reconfiguration steps (capacity
 * allocation, thread placement, data placement) for 16 threads / 16
 * cores, 16 / 64 and 64 / 64, measured with google-benchmark on
 * realistic inputs and reported in Mcycles at the paper's 2 GHz.
 *
 * Paper numbers: 0.72 / 1.46 / 6.49 Mcycles total respectively —
 * ~0.2% of system cycles at a 25 ms period.
 *
 * `cdcs_studies run table3` reports the same table from the
 * runtime's internal step timings without needing google-benchmark;
 * this binary remains for statistically rigorous measurements.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mesh/mesh.hh"
#include "nuca/policy.hh"
#include "runtime/cdcs_runtime.hh"

namespace
{

using namespace cdcs;

/** Build a realistic RuntimeInput for T threads on an NxN mesh. */
RuntimeInput
makeInput(const Mesh &mesh, int threads, std::uint64_t seed)
{
    Rng rng(seed);
    RuntimeInput in;
    in.mesh = &mesh;
    in.numBanks = mesh.numTiles();
    in.banksPerTile = 1;
    in.bankLines = 8192;
    in.allocGranule = 64;
    const int num_vcs = threads + threads / 8 + 2;
    for (int d = 0; d < num_vcs; d++) {
        Curve miss;
        const double total = rng.uniform(1e4, 1e5);
        const double knee = rng.uniform(4096.0, 65536.0);
        miss.addPoint(0.0, total);
        miss.addPoint(knee, total * rng.uniform(0.05, 0.7));
        miss.addPoint(knee * 8, total * 0.04);
        in.missCurves.push_back(miss);
    }
    for (int t = 0; t < threads; t++) {
        std::vector<double> row(num_vcs, 0.0);
        row[t % num_vcs] = rng.uniform(1e4, 1e5);
        row[num_vcs - 2] = rng.uniform(10.0, 1e3);
        row[num_vcs - 1] = rng.uniform(1.0, 50.0);
        in.access.push_back(row);
        in.threadCore.push_back(static_cast<TileId>(t));
    }
    return in;
}

void
reportSteps(benchmark::State &state, const RuntimeStepTimes &times,
            int invocations)
{
    // Convert microseconds to Mcycles at 2 GHz (2000 cycles / us).
    const double to_mcycles = 2000.0 / 1e6 / invocations;
    state.counters["alloc_Mcyc"] = times.allocUs * to_mcycles;
    state.counters["thread_Mcyc"] = times.threadPlaceUs * to_mcycles;
    state.counters["data_Mcyc"] = times.dataPlaceUs * to_mcycles;
    state.counters["total_Mcyc"] = times.totalUs() * to_mcycles;
}

void
benchReconfigure(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    const int dim = static_cast<int>(state.range(1));
    Mesh mesh(dim, dim);
    const RuntimeInput input = makeInput(mesh, threads, 7);

    CdcsRuntime runtime;
    RuntimeStepTimes sums;
    int invocations = 0;
    for (auto _ : state) {
        const RuntimeOutput out = runtime.reconfigure(input);
        benchmark::DoNotOptimize(out.alloc.data());
        sums.allocUs += out.times.allocUs;
        sums.threadPlaceUs += out.times.threadPlaceUs;
        sums.dataPlaceUs += out.times.dataPlaceUs;
        invocations++;
    }
    reportSteps(state, sums, invocations);
}

} // anonymous namespace

BENCHMARK(benchReconfigure)
    ->ArgNames({"threads", "meshdim"})
    ->Args({16, 4})     // 16 threads / 16 cores
    ->Args({16, 8})     // 16 threads / 64 cores
    ->Args({64, 8})     // 64 threads / 64 cores
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
