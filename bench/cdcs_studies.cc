/**
 * @file
 * The declarative study driver: every figure/table/ablation of the
 * evaluation registers a StudySpec (see bench/studies/), and this one
 * binary lists and runs them.
 *
 *   cdcs_studies list
 *   cdcs_studies run fig11 fig12 --set meshWidth=16 --set mixes=8
 *   cdcs_studies run all --format=json
 *
 * `--set key=value` overrides are typed and validated; the CDCS_*
 * environment knobs (EXPERIMENTS.md) remain as defaults. With the
 * default text format and default knobs, `run <study>` output is
 * byte-identical to the legacy per-figure harness it replaced.
 */

#include "sim/study.hh"

int
main(int argc, char **argv)
{
    return cdcs::studiesCliMain(argc, argv);
}
