/**
 * @file
 * Fig. 17: aggregate IPC of the 64-core CMP across one
 * reconfiguration under the three data-movement schemes: idealized
 * instant moves, CDCS demand moves + background invalidations, and
 * Jigsaw bulk invalidations.
 *
 * Paper shape: bulk invalidations pause the whole chip for ~100
 * Kcycles (IPC crater) and lose warm data; background invalidations
 * track instant moves closely with no pause.
 */

#include <algorithm>

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    SystemConfig cfg = benchConfig();
    cfg.traceIpc = true;
    cfg.traceBinCycles = envOr("CDCS_TRACE_BIN", 25000);
    printHeader("Fig. 17", "IPC across one reconfiguration", cfg, 1);

    const MixSpec mix = MixSpec::cpu(64, 7000);

    std::vector<std::pair<const char *, MoveScheme>> modes = {
        {"instant", MoveScheme::Instant},
        {"background-inv", MoveScheme::DemandBackground},
        {"bulk-inv", MoveScheme::BulkInvalidate},
    };
    std::vector<ExperimentRunner::Job> jobs;
    for (const auto &[name, moves] : modes) {
        SchemeSpec spec = SchemeSpec::cdcs();
        spec.moves = moves;
        spec.name = name;
        jobs.push_back({cfg, spec, mix});
    }
    std::vector<std::vector<double>> traces;
    for (const RunResult &r : benchRunner().runAll(jobs))
        traces.push_back(r.ipcTrace);

    std::size_t bins = 0;
    for (const auto &t : traces)
        bins = std::max(bins, t.size());
    std::printf("%10s %12s %16s %12s   (aggregate IPC, bin = %llu "
                "cycles)\n",
                "Kcycles", "instant", "background-inv", "bulk-inv",
                static_cast<unsigned long long>(cfg.traceBinCycles));
    for (std::size_t b = 0; b < bins; b++) {
        std::printf("%10.0f", b * cfg.traceBinCycles / 1000.0);
        for (const auto &t : traces)
            std::printf(" %12.2f",
                        b < t.size() ? t[b] : 0.0);
        std::printf("\n");
    }
    return 0;
}
