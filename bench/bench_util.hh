/**
 * @file
 * Shared helpers for the bench harnesses: the process-wide
 * ExperimentRunner every harness shards its runs through,
 * weighted-speedup printing (inverse CDFs, summaries, breakdowns),
 * optional JSON export of sweep results, and an ASCII chip-map
 * renderer for the Fig. 1 / Fig. 16b style placement plots.
 *
 * Every harness honors the CDCS_MIXES / CDCS_EPOCH_ACCESSES /
 * CDCS_EPOCHS / CDCS_WARMUP / CDCS_WORKERS / CDCS_JSON_DIR
 * environment knobs (see EXPERIMENTS.md) and prints its seed so
 * results are reproducible.
 */

#ifndef CDCS_BENCH_BENCH_UTIL_HH
#define CDCS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment_runner.hh"

namespace cdcs
{

/**
 * The bench harnesses' shared runner: one work-stealing pool and one
 * baseline memo for the whole process, so consecutive sweeps reuse
 * identical S-NUCA baseline runs instead of recomputing them.
 */
inline ExperimentRunner &
benchRunner()
{
    static ExperimentRunner runner;
    return runner;
}

/**
 * Write `sweep` as JSON to $CDCS_JSON_DIR/<name>.json when
 * CDCS_JSON_DIR is set (see EXPERIMENTS.md).
 */
inline void
maybeExportJson(const SweepResult &sweep, const char *name)
{
    const char *dir = std::getenv("CDCS_JSON_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    const std::string path = std::string(dir) + "/" + name + ".json";
    if (sweep.writeJson(path))
        std::printf("[json: %s]\n", path.c_str());
    else
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
}

/** Print the per-mix weighted speedups as inverse CDF rows. */
inline void
printInverseCdf(const SweepResult &sweep)
{
    if (sweep.schemes.empty() || sweep.mixes() == 0)
        return;
    std::printf("%-12s", "mix-rank");
    for (int m = 0; m < sweep.mixes(); m++)
        std::printf("  %6d", m);
    std::printf("\n");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        const auto sorted = inverseCdf(sweep.ws[s]);
        std::printf("%-12s", sweep.schemes[s].name.c_str());
        for (double w : sorted)
            std::printf("  %6.3f", w);
        std::printf("\n");
    }
}

/** Print gmean / max weighted speedups per scheme. */
inline void
printWsSummary(const SweepResult &sweep)
{
    if (sweep.mixes() == 0) {
        std::printf("(no mixes swept)\n");
        return;
    }
    std::printf("%-12s  %8s  %8s\n", "scheme", "gmeanWS", "maxWS");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        std::printf("%-12s  %8.3f  %8.3f\n",
                    sweep.schemes[s].name.c_str(), gmean(sweep.ws[s]),
                    maxOf(sweep.ws[s]));
    }
}

/** Print on-/off-chip latency and traffic/energy vs. the last scheme
 *  (the paper normalizes Figs. 11b-e to CDCS). */
inline void
printBreakdowns(const SweepResult &sweep)
{
    if (sweep.schemes.empty())
        return;
    const std::size_t ref = sweep.schemes.size() - 1;
    std::printf("\n%-12s %10s %10s %28s %10s\n", "scheme",
                "onchip/ref", "offchip/ref",
                "traffic/instr (L2LLC|LLCMem|Oth)", "energy/ref");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        std::printf(
            "%-12s %10.2f %10.2f      %6.2f | %6.2f | %6.2f %10.2f\n",
            sweep.schemes[s].name.c_str(),
            sweep.onChipLat[s] / std::max(sweep.onChipLat[ref], 1e-12),
            sweep.offChipLat[s] /
                std::max(sweep.offChipLat[ref], 1e-12),
            sweep.trafficPerInstr[s][0], sweep.trafficPerInstr[s][1],
            sweep.trafficPerInstr[s][2],
            sweep.energyPerInstr[s] /
                std::max(sweep.energyPerInstr[ref], 1e-12));
    }
    std::printf("\n%-12s %8s %8s %8s %8s %8s  (nJ/instr)\n", "scheme",
                "static", "core", "net", "llc", "mem");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        std::printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                    sweep.schemes[s].name.c_str(),
                    1e9 * sweep.energyParts[s][0],
                    1e9 * sweep.energyParts[s][1],
                    1e9 * sweep.energyParts[s][2],
                    1e9 * sweep.energyParts[s][3],
                    1e9 * sweep.energyParts[s][4]);
    }
}

/**
 * Render the Fig. 1 / Fig. 16b style chip map: per tile, the thread
 * running there (process letter + index) and the process whose data
 * dominates the tile's bank(s).
 */
inline void
printChipMap(const System &system)
{
    const Mesh &mesh = system.meshRef();
    const WorkloadMix &mix = system.workload();
    const auto &thread_core = system.threadPlacement();
    const auto *policy = system.partitionedPolicy();

    std::vector<std::string> thread_label(mesh.numTiles(), "--");
    for (ThreadId t = 0; t < mix.numThreads(); t++) {
        const ProcId p = mix.thread(t).proc;
        std::string label;
        label += static_cast<char>('A' + (p % 26));
        label += std::to_string(t % 10);
        thread_label[thread_core[t]] = label;
    }

    std::vector<std::string> data_label(mesh.numTiles(), "..");
    if (policy != nullptr) {
        const auto &alloc = policy->allocation();
        for (TileId tile = 0; tile < mesh.numTiles(); tile++) {
            double best = 0.0;
            int best_vc = -1;
            for (std::size_t d = 0; d < alloc.size(); d++) {
                double here = 0.0;
                // Sum this tile's banks.
                const std::size_t bpt =
                    alloc[d].size() / mesh.numTiles();
                for (std::size_t k = 0; k < bpt; k++)
                    here += alloc[d][tile * bpt + k];
                if (here > best) {
                    best = here;
                    best_vc = static_cast<int>(d);
                }
            }
            if (best_vc >= 0) {
                // Map VC to owning process.
                ProcId proc;
                const int threads = mix.numThreads();
                if (best_vc < threads)
                    proc = mix.thread(
                        static_cast<ThreadId>(best_vc)).proc;
                else if (best_vc < threads + mix.numProcesses())
                    proc = static_cast<ProcId>(best_vc - threads);
                else
                    proc = 255; // Global VC.
                std::string label;
                label += proc == 255
                    ? '*' : static_cast<char>('a' + (proc % 26));
                label += best_vc < threads ? 'p' : 's';
                data_label[tile] = label;
            }
        }
    }

    std::printf("thread placement (process letter + thread digit; "
                "-- idle) / dominant data (process letter: p=private "
                "s=shared)\n");
    for (int y = 0; y < mesh.height(); y++) {
        for (int x = 0; x < mesh.width(); x++)
            std::printf(" %s", thread_label[mesh.tileAt(x, y)].c_str());
        std::printf("   |");
        for (int x = 0; x < mesh.width(); x++)
            std::printf(" %s", data_label[mesh.tileAt(x, y)].c_str());
        std::printf("\n");
    }
}

/** Standard five-scheme lineup with S-NUCA first. */
inline std::vector<SchemeSpec>
standardSchemes()
{
    return {SchemeSpec::snuca(), SchemeSpec::rnuca(),
            SchemeSpec::jigsaw(InitialSched::Clustered),
            SchemeSpec::jigsaw(InitialSched::Random),
            SchemeSpec::cdcs()};
}

/** Print the reproducibility header every bench emits. */
inline void
printHeader(const char *name, const char *paper_ref,
            const SystemConfig &cfg, int mixes)
{
    std::printf("== %s (%s) ==\n", name, paper_ref);
    // Worker count deliberately not printed: output is identical for
    // any CDCS_WORKERS, and byte-identical logs should diff clean.
    std::printf("mesh %dx%d, %d banks/tile, %llu-line banks, "
                "%llu accesses/thread/epoch, %d epochs (%d warmup), "
                "%d mixes, seed base 1000\n\n",
                cfg.meshWidth, cfg.meshHeight, cfg.banksPerTile,
                static_cast<unsigned long long>(cfg.bankLines),
                static_cast<unsigned long long>(
                    cfg.accessesPerThreadEpoch),
                cfg.epochs, cfg.warmupEpochs, mixes);
}

} // namespace cdcs

#endif // CDCS_BENCH_BENCH_UTIL_HH
