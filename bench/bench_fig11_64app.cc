/**
 * @file
 * Fig. 11 (a-e): mixes of 64 SPEC CPU2006-like apps on the 64-core
 * CMP under S-NUCA, R-NUCA, Jigsaw+C, Jigsaw+R and CDCS.
 *
 *  - 11a: per-mix weighted speedup over S-NUCA (inverse CDF);
 *  - 11b: average on-chip network latency of LLC accesses;
 *  - 11c: average off-chip latency;
 *  - 11d: network traffic breakdown per instruction;
 *  - 11e: energy breakdown per instruction.
 *
 * Paper shape: CDCS > Jigsaw+R > Jigsaw+C > R-NUCA > S-NUCA in WS
 * (46/38/34/18% gmean); S-NUCA ~11x CDCS's on-chip latency and ~3x
 * its traffic; R-NUCA lowest on-chip latency but worst off-chip.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(4);
    printHeader("Fig. 11 (a-e)", "50 mixes of 64 apps in the paper",
                cfg, mixes);

    const SweepResult sweep =
        benchRunner().sweep(cfg, standardSchemes(), mixes, [&](int m) {
            return MixSpec::cpu(64, 1000 + m);
        });
    maybeExportJson(sweep, "fig11_64app");

    std::printf("-- Fig. 11a: weighted speedup inverse CDF --\n");
    printInverseCdf(sweep);
    std::printf("\n");
    printWsSummary(sweep);
    std::printf("\n-- Fig. 11b-e: latency, traffic and energy "
                "breakdowns (normalized to CDCS) --\n");
    printBreakdowns(sweep);
    return 0;
}
