/**
 * @file
 * Fig. 15: mixes of eight 8-thread SPEC OMP2012-like apps (64 threads
 * total) on the 64-core CMP — weighted-speedup distribution and
 * traffic breakdown.
 *
 * Paper shape: trends reverse vs. single-threaded mixes — Jigsaw+C
 * (clustered) beats Jigsaw+R because shared-heavy processes want
 * their threads around the shared data; CDCS still wins (21% vs
 * 19%/14%/9%) because it clusters or spreads per process as needed.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(4);
    printHeader("Fig. 15", "8 x 8-thread OMP mixes", cfg, mixes);

    const SweepResult sweep =
        benchRunner().sweep(cfg, standardSchemes(), mixes, [&](int m) {
            return MixSpec::omp(8, 5000 + m);
        });
    maybeExportJson(sweep, "fig15_multithread");

    std::printf("-- Fig. 15a: weighted speedup inverse CDF --\n");
    printInverseCdf(sweep);
    std::printf("\n");
    printWsSummary(sweep);
    std::printf("\n-- Fig. 15b: traffic breakdown --\n");
    printBreakdowns(sweep);
    return 0;
}
