/**
 * @file
 * Fig. 14: mixes of 4 SPEC CPU2006-like apps on the 64-core CMP —
 * weighted-speedup distribution and traffic breakdown.
 *
 * Paper shape: with capacity plentiful, Jigsaw's greedy full-capacity
 * allocations inflate L2-LLC traffic/latency; CDCS's latency-aware
 * allocation avoids that (28% vs 17%/6% gmean WS).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(4);
    printHeader("Fig. 14", "4-app mixes on 64 cores", cfg, mixes);

    const SweepResult sweep =
        benchRunner().sweep(cfg, standardSchemes(), mixes, [&](int m) {
            return MixSpec::cpu(4, 4000 + m);
        });
    maybeExportJson(sweep, "fig14_4app");

    std::printf("-- weighted speedup inverse CDF --\n");
    printInverseCdf(sweep);
    std::printf("\n");
    printWsSummary(sweep);
    std::printf("\n-- traffic / energy --\n");
    printBreakdowns(sweep);
    return 0;
}
