/**
 * @file
 * Legacy entry point kept for existing scripts and CMake targets:
 * delegates to the "fig14" study (bench/studies/), whose default
 * text output is byte-identical to the old hand-written harness.
 * Prefer `cdcs_studies run fig14`.
 */

#include "sim/study.hh"

int
main()
{
    return cdcs::studyMain("fig14");
}
