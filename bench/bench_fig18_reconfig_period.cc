/**
 * @file
 * Fig. 18: weighted speedup of 64-app mixes as the reconfiguration
 * period shrinks, for bulk invalidations, background invalidations
 * and idealized instant moves.
 *
 * The paper sweeps 10M-100M cycle periods; our epochs are defined in
 * accesses per thread, so the sweep scales the epoch length (shorter
 * epoch == more frequent reconfigurations, same proportional cost).
 *
 * Paper shape: background invalidations beat bulk at every period and
 * the gap narrows as reconfigurations get rarer; instant moves bound
 * both from above.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const int mixes = benchMixes(2);
    SystemConfig base = benchConfig();
    printHeader("Fig. 18", "WS vs reconfiguration period", base,
                mixes);

    std::vector<std::pair<const char *, MoveScheme>> modes = {
        {"bulk-inv", MoveScheme::BulkInvalidate},
        {"background-inv", MoveScheme::DemandBackground},
        {"instant", MoveScheme::Instant},
    };

    std::printf("%-22s %12s %16s %12s\n", "epoch accesses/thread",
                "bulk-inv", "background-inv", "instant");
    const std::uint64_t base_accesses = base.accessesPerThreadEpoch;
    for (double scale : {0.25, 0.5, 1.0, 2.0}) {
        SystemConfig cfg = base;
        cfg.accessesPerThreadEpoch =
            static_cast<std::uint64_t>(base_accesses * scale);
        std::vector<SchemeSpec> schemes = {SchemeSpec::snuca()};
        for (const auto &[name, moves] : modes) {
            SchemeSpec spec = SchemeSpec::cdcs();
            spec.moves = moves;
            spec.name = name;
            schemes.push_back(spec);
        }
        const SweepResult sweep =
            benchRunner().sweep(cfg, schemes, mixes, [&](int m) {
                return MixSpec::cpu(64, 8000 + m);
            });
        maybeExportJson(
            sweep, (std::string("fig18_period_") +
                    std::to_string(cfg.accessesPerThreadEpoch))
                .c_str());
        std::printf("%-22llu %12.3f %16.3f %12.3f\n",
                    static_cast<unsigned long long>(
                        cfg.accessesPerThreadEpoch),
                    gmean(sweep.ws[1]), gmean(sweep.ws[2]),
                    gmean(sweep.ws[3]));
        std::fflush(stdout);
    }
    return 0;
}
