/**
 * @file
 * Fig. 16: mixes of four 8-thread SPEC OMP2012-like apps (32 threads
 * on 64 cores) — weighted speedups, plus the Fig. 16b case study:
 * CDCS spreads the private-heavy mgrid across the chip while tightly
 * clustering the shared-heavy md/ilbdc/nab around their shared VCs.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(4);
    printHeader("Fig. 16", "4 x 8-thread OMP mixes (32/64 cores)",
                cfg, mixes);

    const SweepResult sweep =
        benchRunner().sweep(cfg, standardSchemes(), mixes, [&](int m) {
            return MixSpec::omp(4, 6000 + m);
        });
    maybeExportJson(sweep, "fig16_undercommit_mt");

    std::printf("-- Fig. 16a: weighted speedup inverse CDF --\n");
    printInverseCdf(sweep);
    std::printf("\n");
    printWsSummary(sweep);

    std::printf("\n-- Fig. 16b case study: mgrid (private-heavy) + "
                "md/ilbdc/nab (shared-heavy) under CDCS --\n");
    const MixSpec case_mix =
        MixSpec::named({"mgrid", "md", "ilbdc", "nab"}, 6100);
    System system(cfg, SchemeSpec::cdcs(), buildMix(case_mix));
    system.run();
    printChipMap(system);
    return 0;
}
