/**
 * @file
 * Sec. VI-C, "Alternative thread and data placement schemes": the
 * CDCS heuristics vs. expensive comparators — a simulated-annealing
 * thread placer (standing in for the paper's Gurobi ILP, see
 * DESIGN.md) and recursive-bisection co-placement (standing in for
 * METIS graph partitioning).
 *
 * Paper shape: SA gains ~0.6% and ILP data placement ~0.5% over the
 * CDCS heuristics; graph partitioning does not outperform CDCS (it
 * splits the chip center instead of clustering around it). The
 * comparators also cost orders of magnitude more runtime.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(2);
    printHeader("Sec. VI-C placers", "CDCS vs SA vs bisection", cfg,
                mixes);

    std::vector<SchemeSpec> schemes = {SchemeSpec::snuca(),
                                       SchemeSpec::cdcs()};
    {
        SchemeSpec sa = SchemeSpec::cdcs();
        sa.placer = PlacerKind::Annealed;
        sa.saIterations = static_cast<int>(envOr("CDCS_SA_ITERS",
                                                 5000));
        sa.name = "CDCS+SA";
        schemes.push_back(sa);
    }
    {
        SchemeSpec bisect = SchemeSpec::cdcs();
        bisect.placer = PlacerKind::Bisection;
        bisect.name = "Bisection";
        schemes.push_back(bisect);
    }

    const SweepResult sweep =
        benchRunner().sweep(cfg, schemes, mixes, [&](int m) {
            return MixSpec::cpu(32, 9500 + m);
        });
    maybeExportJson(sweep, "vic_placers");
    printWsSummary(sweep);

    std::printf("\nreconfiguration runtime (avg us per invocation, "
                "mix 0)\n%-12s %10s %10s %10s\n", "scheme", "alloc",
                "thread", "data");
    for (std::size_t s = 1; s < schemes.size(); s++) {
        const RuntimeStepTimes &t = sweep.firstRun[s].avgTimes;
        std::printf("%-12s %10.1f %10.1f %10.1f\n",
                    schemes[s].name.c_str(), t.allocUs,
                    t.threadPlaceUs, t.dataPlaceUs);
    }
    return 0;
}
