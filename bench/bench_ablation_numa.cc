/**
 * @file
 * Ablation of the NUMA-aware memory-placement extension (the future
 * work Sec. III defers; cf. the Fig. 11d remark that NUMA-aware
 * techniques would further reduce the dominant LLC-to-memory
 * traffic): first-touch page-to-controller affinity vs. the paper's
 * page-interleaved baseline, under R-NUCA and CDCS.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace cdcs;

void
runOne(const char *tag, const SystemConfig &cfg,
       const SchemeSpec &spec, const MixSpec &mix)
{
    const RunResult r = runScheme(cfg, spec, mix);
    std::printf("%-24s %14.3f %16.3f %12.2f\n", tag,
                r.flitHopsPerInstr(TrafficClass::LLCToMem),
                r.offChipLatPerInstr(),
                1e9 * r.energy.total() / r.totalInstrs);
}

} // anonymous namespace

int
main()
{
    using namespace cdcs;

    SystemConfig base = benchConfig();
    SystemConfig numa = base;
    numa.numaAwareMem = true;
    printHeader("NUMA-aware memory placement ablation",
                "Sec. III future work / Fig. 11d remark", base, 1);

    const MixSpec mix = MixSpec::cpu(48, 9950);
    std::printf("%-24s %14s %16s %12s\n", "config",
                "LLCMem fh/instr", "offchip/instr", "nJ/instr");
    runOne("R-NUCA interleaved", base, SchemeSpec::rnuca(), mix);
    runOne("R-NUCA numa-aware", numa, SchemeSpec::rnuca(), mix);
    runOne("CDCS interleaved", base, SchemeSpec::cdcs(), mix);
    runOne("CDCS numa-aware", numa, SchemeSpec::cdcs(), mix);
    return 0;
}
