/**
 * @file
 * Ablation of the NUMA-aware memory-placement extension (the future
 * work Sec. III defers; cf. the Fig. 11d remark that NUMA-aware
 * techniques would further reduce the dominant LLC-to-memory
 * traffic): first-touch page-to-controller affinity vs. the paper's
 * page-interleaved baseline, under R-NUCA and CDCS.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    SystemConfig base = benchConfig();
    SystemConfig numa = base;
    numa.numaAwareMem = true;
    printHeader("NUMA-aware memory placement ablation",
                "Sec. III future work / Fig. 11d remark", base, 1);

    const MixSpec mix = MixSpec::cpu(48, 9950);
    const std::vector<const char *> tags = {
        "R-NUCA interleaved", "R-NUCA numa-aware",
        "CDCS interleaved", "CDCS numa-aware"};
    const std::vector<ExperimentRunner::Job> jobs = {
        {base, SchemeSpec::rnuca(), mix},
        {numa, SchemeSpec::rnuca(), mix},
        {base, SchemeSpec::cdcs(), mix},
        {numa, SchemeSpec::cdcs(), mix},
    };
    const auto results = benchRunner().runAll(jobs);

    std::printf("%-24s %14s %16s %12s\n", "config",
                "LLCMem fh/instr", "offchip/instr", "nJ/instr");
    for (std::size_t i = 0; i < jobs.size(); i++) {
        const RunResult &r = results[i];
        std::printf("%-24s %14.3f %16.3f %12.2f\n", tags[i],
                    r.flitHopsPerInstr(TrafficClass::LLCToMem),
                    r.offChipLatPerInstr(),
                    r.totalInstrs > 0.0
                        ? 1e9 * r.energy.total() / r.totalInstrs
                        : 0.0);
    }
    return 0;
}
