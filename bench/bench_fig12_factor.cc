/**
 * @file
 * Fig. 12: factor analysis of the CDCS techniques applied to Jigsaw+R
 * individually — latency-aware allocation (+L), thread placement
 * (+T), refined data placement (+D), and all three (+LTD == CDCS) —
 * on 64-app and 4-app mixes.
 *
 * Paper shape: with 64 apps capacity is scarce, so +T and +D carry
 * the gains and +L adds little; with 4 apps capacity is plentiful and
 * +L provides most of the speedup.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace cdcs;

void
runFactor(const SystemConfig &cfg, int apps, int mixes)
{
    std::vector<SchemeSpec> schemes = {
        SchemeSpec::snuca(),
        SchemeSpec::factor(false, false, false), // Jigsaw+R
        SchemeSpec::factor(true, false, false),  // +L
        SchemeSpec::factor(false, true, false),  // +T
        SchemeSpec::factor(false, false, true),  // +D
        SchemeSpec::factor(true, true, true),    // +LTD
    };
    const SweepResult sweep =
        benchRunner().sweep(cfg, schemes, mixes, [&](int m) {
            return MixSpec::cpu(apps, 2000 + m);
        });
    maybeExportJson(sweep, (std::string("fig12_factor_") +
                            std::to_string(apps) + "app").c_str());
    std::printf("-- %d-app mixes --\n", apps);
    printWsSummary(sweep);
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(4);
    printHeader("Fig. 12 factor analysis", "+L/+T/+D on Jigsaw+R",
                cfg, mixes);
    runFactor(cfg, 64, mixes);
    runFactor(cfg, 4, mixes);
    return 0;
}
