/**
 * @file
 * Fig. 13: gmean weighted speedup with an under-committed 64-core
 * CMP: mixes of 1, 2, 4, 8, 16, 32 and 64 single-threaded apps.
 *
 * Paper shape: CDCS stays on top across the whole range; Jigsaw+C
 * collapses at low app counts (clustered capacity contention) and
 * Jigsaw+R is mediocre there because it over-allocates capacity that
 * only adds on-chip latency; latency-aware allocation matters most
 * when capacity is plentiful.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace cdcs;

    const SystemConfig cfg = benchConfig();
    const int mixes = benchMixes(3);
    printHeader("Fig. 13 under-committed sweep", "1-64 apps", cfg,
                mixes);

    const std::vector<SchemeSpec> schemes = standardSchemes();
    std::printf("%-8s", "apps");
    for (const auto &s : schemes)
        std::printf(" %10s", s.name.c_str());
    std::printf("\n");

    for (int apps : {1, 2, 4, 8, 16, 32, 64}) {
        const SweepResult sweep =
            benchRunner().sweep(cfg, schemes, mixes, [&](int m) {
                return MixSpec::cpu(apps, 3000 + 100 * apps + m);
            });
        maybeExportJson(sweep, (std::string("fig13_undercommit_") +
                                std::to_string(apps) + "app").c_str());
        std::printf("%-8d", apps);
        for (std::size_t s = 0; s < schemes.size(); s++)
            std::printf(" %10.3f", gmean(sweep.ws[s]));
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
