#!/usr/bin/env python3
"""Plot a NoC link-load heatmap exported by the noc_heatmap study.

Consumes the ``noc_heatmap_<scheme>.json`` artifacts that
``cdcs_studies run noc_heatmap --set jsonDir=DIR`` writes (schema:
``{"width": W, "height": H, "links": [{"src", "dst", "memCtrl",
"flits", "util", "wait"}, ...]}``) and renders each directed mesh link
as a segment colored by its flit count, with memory-attach links drawn
as squares on their edge tiles.

This is the first piece of the plotting pipeline consuming the
simulator's JSON exports; matplotlib is imported lazily so the
``--check`` mode (schema validation, used by CI) runs anywhere.

Usage:
    plot_noc_heatmap.py heatmap.json [-o out.png] [--metric util]
    plot_noc_heatmap.py --check heatmap.json...
"""

import argparse
import json
import sys

LINK_KEYS = {"src", "dst", "memCtrl", "flits", "util", "wait"}


def load_heatmap(path):
    """Parse and validate one heatmap artifact; exits on bad schema."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("width", "height", "links"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if doc["width"] <= 0 or doc["height"] <= 0:
        sys.exit(f"{path}: non-positive mesh dimensions")
    tiles = doc["width"] * doc["height"]
    for link in doc["links"]:
        missing = LINK_KEYS - link.keys()
        if missing:
            sys.exit(f"{path}: link missing keys {sorted(missing)}")
        if not 0 <= link["src"] < tiles:
            sys.exit(f"{path}: link src {link['src']} off-mesh")
        if link["memCtrl"] < 0 and not 0 <= link["dst"] < tiles:
            sys.exit(f"{path}: link dst {link['dst']} off-mesh")
        if link["flits"] < 0 or link["util"] < 0 or link["wait"] < 0:
            sys.exit(f"{path}: negative link load")
    return doc


def check(paths):
    for path in paths:
        doc = load_heatmap(path)
        mesh_links = sum(1 for l in doc["links"] if l["memCtrl"] < 0)
        mem_links = len(doc["links"]) - mesh_links
        peak = max((l["flits"] for l in doc["links"]), default=0)
        print(
            f"{path}: {doc['width']}x{doc['height']} mesh, "
            f"{mesh_links} mesh links, {mem_links} mem links, "
            f"peak {peak} flits"
        )
    print(f"{len(paths)} artifact(s) OK")


def plot(path, out, metric):
    try:
        import matplotlib
    except ImportError:
        sys.exit(
            "matplotlib is required for plotting; install it or use "
            "--check for schema validation only"
        )
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    from matplotlib.collections import LineCollection

    doc = load_heatmap(path)
    width, height = doc["width"], doc["height"]
    if not doc["links"]:
        sys.exit(
            f"{path}: no links to plot (was the run made with a "
            "link-tracking model, e.g. noc=contention?)"
        )

    segments, values = [], []
    mem_x, mem_y, mem_v = [], [], []
    for link in doc["links"]:
        value = link[metric]
        sx, sy = link["src"] % width, link["src"] // width
        if link["memCtrl"] >= 0:
            mem_x.append(sx)
            mem_y.append(sy)
            mem_v.append(value)
            continue
        dx, dy = link["dst"] % width, link["dst"] // width
        # Offset the two directions of a link so both stay visible.
        off = 0.08
        ox, oy = (dy - sy) * off, (sx - dx) * off
        segments.append(
            [(sx + ox, sy + oy), (dx + ox, dy + oy)]
        )
        values.append(value)

    fig, ax = plt.subplots(
        figsize=(1.0 + 0.8 * width, 1.0 + 0.8 * height)
    )
    vmax = max(values + mem_v) or 1
    lines = LineCollection(
        segments,
        array=values,
        cmap="inferno",
        norm=plt.Normalize(0, vmax),
        linewidths=3,
    )
    ax.add_collection(lines)
    if mem_x:
        ax.scatter(
            mem_x,
            mem_y,
            c=mem_v,
            cmap="inferno",
            vmin=0,
            vmax=vmax,
            marker="s",
            s=120,
            edgecolors="grey",
            zorder=3,
        )
    ax.scatter(
        [t % width for t in range(width * height)],
        [t // width for t in range(width * height)],
        c="lightgrey",
        s=10,
        zorder=2,
    )
    ax.set_xlim(-0.7, width - 0.3)
    ax.set_ylim(height - 0.3, -0.7)  # Row 0 on top, like the maps.
    ax.set_aspect("equal")
    ax.set_title(f"{path} ({metric})")
    fig.colorbar(lines, ax=ax, label=metric)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="heatmap JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the artifact schema and exit (no matplotlib)",
    )
    parser.add_argument(
        "-o", "--output", help="output image (default: <input>.png)"
    )
    parser.add_argument(
        "--metric",
        choices=["flits", "util", "wait"],
        default="flits",
        help="link metric to color by",
    )
    args = parser.parse_args()

    if args.check:
        check(args.artifacts)
        return
    for path in args.artifacts:
        out = args.output or path.rsplit(".", 1)[0] + ".png"
        plot(path, out, args.metric)


if __name__ == "__main__":
    main()
