#!/usr/bin/env python3
"""Plot an elasticity epoch trace exported by the elasticity study.

Consumes the ``elasticity_trace_<level>_<scheme>.json`` artifacts
that ``cdcs_studies run elasticity --set jsonDir=DIR`` writes.
These are shared-schema metrics traces (``"schema":
"cdcs-metrics-trace-v1"``, see tools/check_trace.py) with the
study's extra keys: ``{"level", "scheme", "events": [down, up],
"trace": [{"epoch", "active", "delta", "aggIpc", "moves",
"movedLines"}, ...]}``. Renders aggregate IPC and active-thread
count over
epochs, with the churn events marked. Passing several artifacts of
the same level overlays the schemes on one figure.

matplotlib is imported lazily so the ``--check`` mode (schema
validation, used by CI) runs anywhere.

Usage:
    plot_elasticity.py trace.json... [-o out.png]
    plot_elasticity.py --check trace.json...
"""

import argparse
import json
import sys

RECORD_KEYS = {"epoch", "active", "delta", "aggIpc", "moves", "movedLines"}


def load_trace(path):
    """Parse and validate one trace artifact; exits on bad schema."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("level", "scheme", "events", "trace"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if len(doc["events"]) != 2 or doc["events"][0] >= doc["events"][1]:
        sys.exit(f"{path}: events must be [down, up] with down < up")
    if not doc["trace"]:
        sys.exit(f"{path}: empty trace (was churn enabled?)")
    for i, rec in enumerate(doc["trace"]):
        missing = RECORD_KEYS - rec.keys()
        if missing:
            sys.exit(f"{path}: record {i} missing keys {sorted(missing)}")
        if rec["epoch"] != i:
            sys.exit(f"{path}: record {i} has epoch {rec['epoch']}")
        if rec["active"] <= 0:
            sys.exit(f"{path}: record {i} has no active threads")
        if rec["aggIpc"] < 0 or rec["moves"] < 0 or rec["movedLines"] < 0:
            sys.exit(f"{path}: record {i} has a negative metric")
    churn = sum(rec["delta"] for rec in doc["trace"])
    if churn != 0:
        sys.exit(f"{path}: churn deltas do not balance (sum {churn})")
    return doc


def check(paths):
    for path in paths:
        doc = load_trace(path)
        down, up = doc["events"]
        moves = sum(rec["moves"] for rec in doc["trace"])
        print(
            f"{path}: {doc['scheme']} under '{doc['level']}' churn, "
            f"{len(doc['trace'])} epochs, events at {down}/{up}, "
            f"{moves} thread moves"
        )
    print(f"{len(paths)} artifact(s) OK")


def plot(paths, out):
    try:
        import matplotlib
    except ImportError:
        sys.exit(
            "matplotlib is required for plotting; install it or use "
            "--check for schema validation only"
        )
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    docs = [load_trace(path) for path in paths]
    fig, (ax_ipc, ax_active) = plt.subplots(
        2, 1, sharex=True, figsize=(8, 6), height_ratios=[2, 1]
    )
    for doc in docs:
        epochs = [rec["epoch"] for rec in doc["trace"]]
        label = f"{doc['scheme']} ({doc['level']})"
        ax_ipc.plot(
            epochs, [rec["aggIpc"] for rec in doc["trace"]],
            marker="o", label=label,
        )
        ax_active.step(
            epochs, [rec["active"] for rec in doc["trace"]],
            where="post", label=label,
        )
    for event, name in zip(docs[0]["events"], ("depart", "arrive")):
        for ax in (ax_ipc, ax_active):
            ax.axvline(event, color="grey", linestyle="--", linewidth=1)
        ax_ipc.annotate(
            name, (event, ax_ipc.get_ylim()[1]),
            ha="center", va="bottom", fontsize=8, color="grey",
        )
    ax_ipc.set_ylabel("aggregate IPC (active threads)")
    ax_ipc.legend(fontsize=8)
    ax_active.set_ylabel("active threads")
    ax_active.set_xlabel("epoch")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="trace JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the artifact schema and exit (no matplotlib)",
    )
    parser.add_argument(
        "-o", "--output", help="output image (default: <first input>.png)"
    )
    args = parser.parse_args()

    if args.check:
        check(args.artifacts)
        return
    out = args.output or args.artifacts[0].rsplit(".", 1)[0] + ".png"
    plot(args.artifacts, out)


if __name__ == "__main__":
    main()
