#!/usr/bin/env python3
"""Plot the far-memory tiering study's summary artifact.

Consumes the ``tiering_summary.json`` artifact that ``cdcs_studies
run tiering --set jsonDir=DIR`` writes (schema ``"cdcs-tiering-v1"``):
``{"schema", "cells": [{"ratio", "inj", "policy", "schemes":
[{"name", "gmeanWs", "offChipLat", "farShare", "promotions"},
...]}, ...]}``. Renders, per injection scale, the gmean weighted
speedup and far access share vs. the far-capacity ratio, with one
curve per (tiering policy, scheme) — the static-vs-hotness gap is
the benefit of hotness-ranked migration.

matplotlib is imported lazily so the ``--check`` mode (schema
validation, used by CI) runs anywhere.

Usage:
    plot_tiering.py tiering_summary.json [-o out.png]
    plot_tiering.py --check tiering_summary.json...
"""

import argparse
import json
import sys

CELL_KEYS = {"ratio", "inj", "policy", "schemes"}
SCHEME_KEYS = {"name", "gmeanWs", "offChipLat", "farShare", "promotions"}


def load_summary(path):
    """Parse and validate one summary artifact; exits on bad schema."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "cdcs-tiering-v1":
        sys.exit(f"{path}: schema is not cdcs-tiering-v1")
    cells = doc.get("cells")
    if not cells:
        sys.exit(f"{path}: no cells")
    for i, cell in enumerate(cells):
        missing = CELL_KEYS - cell.keys()
        if missing:
            sys.exit(f"{path}: cell {i} missing keys {sorted(missing)}")
        if not 0.0 < cell["ratio"] < 1.0:
            sys.exit(f"{path}: cell {i} ratio {cell['ratio']} not in (0,1)")
        if cell["policy"] not in ("static", "hotness"):
            sys.exit(f"{path}: cell {i} unknown policy {cell['policy']!r}")
        if not cell["schemes"]:
            sys.exit(f"{path}: cell {i} has no schemes")
        for j, scheme in enumerate(cell["schemes"]):
            missing = SCHEME_KEYS - scheme.keys()
            if missing:
                sys.exit(
                    f"{path}: cell {i} scheme {j} missing keys "
                    f"{sorted(missing)}"
                )
            if not 0.0 <= scheme["farShare"] <= 1.0:
                sys.exit(
                    f"{path}: cell {i} scheme {j} farShare "
                    f"{scheme['farShare']} not in [0,1]"
                )
            if scheme["promotions"] < 0:
                sys.exit(f"{path}: cell {i} scheme {j} negative promotions")
            if cell["policy"] == "static" and scheme["promotions"] != 0:
                sys.exit(
                    f"{path}: cell {i} static policy reports "
                    f"{scheme['promotions']} promotions"
                )
    return doc


def check(paths):
    for path in paths:
        doc = load_summary(path)
        cells = doc["cells"]
        ratios = sorted({cell["ratio"] for cell in cells})
        injs = sorted({cell["inj"] for cell in cells})
        schemes = [s["name"] for s in cells[0]["schemes"]]
        print(
            f"{path}: {len(cells)} cells, ratios {ratios}, "
            f"inj scales {injs}, schemes {schemes}"
        )
    print(f"{len(paths)} artifact(s) OK")


def plot(path, out):
    try:
        import matplotlib
    except ImportError:
        sys.exit(
            "matplotlib is required for plotting; install it or use "
            "--check for schema validation only"
        )
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    doc = load_summary(path)
    cells = doc["cells"]
    injs = sorted({cell["inj"] for cell in cells})
    fig, axes = plt.subplots(
        2, len(injs), figsize=(5 * len(injs), 7), squeeze=False
    )
    for col, inj in enumerate(injs):
        ax_ws, ax_share = axes[0][col], axes[1][col]
        sub = [c for c in cells if c["inj"] == inj]
        policies = sorted({c["policy"] for c in sub})
        schemes = [s["name"] for s in sub[0]["schemes"]]
        for policy in policies:
            style = "--" if policy == "static" else "-"
            rows = sorted(
                (c for c in sub if c["policy"] == policy),
                key=lambda c: c["ratio"],
            )
            ratios = [c["ratio"] for c in rows]
            for idx, scheme in enumerate(schemes):
                ax_ws.plot(
                    ratios,
                    [c["schemes"][idx]["gmeanWs"] for c in rows],
                    style, marker="o", label=f"{scheme} ({policy})",
                )
                ax_share.plot(
                    ratios,
                    [c["schemes"][idx]["farShare"] for c in rows],
                    style, marker="o", label=f"{scheme} ({policy})",
                )
        ax_ws.set_title(f"injection scale {inj}")
        ax_ws.set_ylabel("gmean weighted speedup")
        ax_share.set_ylabel("far access share")
        ax_share.set_xlabel("far capacity ratio")
        ax_ws.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="summary JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the artifact schema and exit (no matplotlib)",
    )
    parser.add_argument(
        "-o", "--output", help="output image (default: <first input>.png)"
    )
    args = parser.parse_args()

    if args.check:
        check(args.artifacts)
        return
    if len(args.artifacts) != 1:
        sys.exit("plotting takes exactly one summary artifact")
    out = args.output or args.artifacts[0].rsplit(".", 1)[0] + ".png"
    plot(args.artifacts[0], out)


if __name__ == "__main__":
    main()
