#!/usr/bin/env python3
"""Merge and validate the shard manifests of a sharded study run.

``cdcs_studies run <study> --shard i/N --set cacheDir=DIR`` writes
``DIR/shard-<i>of<N>.json`` describing every cacheable cell the shard
saw (schema: ``{"shard": i, "shards": N, "codeVersion": "...",
"cells": [{"hash": "16-hex", "owner": j, "action": "skipped" |
"memHit" | "storeHit" | "simulated"}, ...]}``). This tool checks that
a set of manifests forms a complete, disjoint partition — every cell's
owning shard actually resolved it, owners agree with ``hash % N``, no
shard index repeats, and all shards agree on N, the code version and
the cell set — and merges them into one combined manifest.

The C++ side already recombines the results themselves
(``cdcs_studies merge`` replays the studies from the populated result
store); this is the artifact-level companion used by CI to prove the
shard partition covered everything before trusting the merged report.

Usage:
    merge_study_json.py --check shard-0of2.json shard-1of2.json
    merge_study_json.py -o merged.json shard-*.json
"""

import argparse
import json
import sys

ACTIONS = {"skipped", "memHit", "storeHit", "simulated"}
RESOLVED = ACTIONS - {"skipped"}


def load_manifest(path):
    """Parse and validate one shard manifest; exits on bad schema."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("shard", "shards", "codeVersion", "cells"):
        if key not in doc:
            sys.exit(f"{path}: missing key '{key}'")
    if not isinstance(doc["shards"], int) or doc["shards"] < 1:
        sys.exit(f"{path}: bad shard count {doc['shards']!r}")
    if (not isinstance(doc["shard"], int)
            or not 0 <= doc["shard"] < doc["shards"]):
        sys.exit(f"{path}: bad shard index {doc['shard']!r}")
    for cell in doc["cells"]:
        missing = {"hash", "owner", "action"} - cell.keys()
        if missing:
            sys.exit(f"{path}: cell missing keys {sorted(missing)}")
        try:
            value = int(cell["hash"], 16)
        except (TypeError, ValueError):
            sys.exit(f"{path}: bad cell hash {cell['hash']!r}")
        if cell["action"] not in ACTIONS:
            sys.exit(f"{path}: bad cell action {cell['action']!r}")
        if cell["owner"] != value % doc["shards"]:
            sys.exit(f"{path}: cell {cell['hash']} claims owner "
                     f"{cell['owner']}, but hash % {doc['shards']} "
                     f"is {value % doc['shards']}")
    return doc


def check_partition(paths, manifests):
    """Exit with a message unless the manifests form a complete,
    disjoint partition of one sharded run."""
    first = manifests[0]
    seen_shards = set()
    for path, doc in zip(paths, manifests):
        if doc["shards"] != first["shards"]:
            sys.exit(f"{path}: shard count {doc['shards']} != "
                     f"{first['shards']} of {paths[0]}")
        if doc["codeVersion"] != first["codeVersion"]:
            sys.exit(f"{path}: code version {doc['codeVersion']!r} "
                     f"!= {first['codeVersion']!r} of {paths[0]} "
                     "(shards from different builds cannot merge)")
        if doc["shard"] in seen_shards:
            sys.exit(f"{path}: duplicate shard index {doc['shard']}")
        seen_shards.add(doc["shard"])

    if len(seen_shards) != first["shards"]:
        missing = sorted(set(range(first["shards"])) - seen_shards)
        sys.exit(f"incomplete shard set: missing shards {missing}")

    # Every shard enumerates the same study matrix, so the cell sets
    # must agree exactly.
    cell_sets = [{c["hash"] for c in doc["cells"]}
                 for doc in manifests]
    for path, cells in zip(paths[1:], cell_sets[1:]):
        if cells != cell_sets[0]:
            extra = sorted(cells - cell_sets[0])[:3]
            missing = sorted(cell_sets[0] - cells)[:3]
            sys.exit(f"{path}: cell set differs from {paths[0]} "
                     f"(extra {extra}, missing {missing})")

    # Completeness: the owning shard resolved every one of its cells
    # (anything but "skipped"); disjointness: non-owners simulated
    # nothing.
    for path, doc in zip(paths, manifests):
        for cell in doc["cells"]:
            owned = cell["owner"] == doc["shard"]
            if owned and cell["action"] not in RESOLVED:
                sys.exit(f"{path}: owned cell {cell['hash']} was "
                         f"{cell['action']}, not resolved")
            if not owned and cell["action"] == "simulated":
                sys.exit(f"{path}: simulated cell {cell['hash']} "
                         f"owned by shard {cell['owner']} "
                         "(shards overlap)")


def merge(manifests):
    """Combine the manifests: per cell, the owner's resolution."""
    resolution = {}
    for doc in manifests:
        for cell in doc["cells"]:
            if cell["owner"] == doc["shard"]:
                resolution[cell["hash"]] = cell["action"]
    return {
        "shards": manifests[0]["shards"],
        "codeVersion": manifests[0]["codeVersion"],
        "cells": [{"hash": h,
                   "owner": int(h, 16) % manifests[0]["shards"],
                   "action": action}
                  for h, action in sorted(resolution.items())],
    }


def main():
    parser = argparse.ArgumentParser(
        description="merge/validate sharded study manifests")
    parser.add_argument("manifests", nargs="+",
                        help="shard-<i>of<N>.json manifest files")
    parser.add_argument("--check", action="store_true",
                        help="validate the partition, write nothing")
    parser.add_argument("-o", "--output",
                        help="merged manifest path (default stdout)")
    args = parser.parse_args()

    docs = [load_manifest(path) for path in args.manifests]
    check_partition(args.manifests, docs)
    if args.check:
        cells = len(docs[0]["cells"])
        print(f"ok: {len(docs)} shards, {cells} cells, complete "
              "and disjoint")
        return

    combined = json.dumps(merge(docs), indent=1)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(combined + "\n")
    else:
        print(combined)


if __name__ == "__main__":
    main()
