#!/usr/bin/env python3
"""Validate observability artifacts: Chrome traces and metrics traces.

Accepts any mix of the two artifact flavors the observability layer
(ARCHITECTURE.md "Observability") produces and sniffs each file's
kind from its JSON shape:

* **Chrome trace-event JSON** (``--set trace=FILE`` / ``CDCS_TRACE``):
  a top-level array (or ``{"traceEvents": [...]}``) of ``B``/``E``/
  ``i``/``M`` events. Checked per track (pid, tid): timestamps
  monotonically non-decreasing, begin/end events balanced and
  properly nested (matching names), instants carrying a scope.

* **Metrics trace** (``metrics_trace_*.json`` artifacts, schema
  ``cdcs-metrics-trace-v1``, exported when ``--set stats=`` selects
  registry counters): the per-epoch record stream is checked for
  contiguous epochs, non-negative metrics, and stats rows matching
  the declared column names in length.

No third-party imports, so CI can run it anywhere.

Usage:
    check_trace.py [--expect-workers N] artifact.json...
"""

import argparse
import json
import sys

METRICS_SCHEMA = "cdcs-metrics-trace-v1"
RECORD_KEYS = {"epoch", "active", "delta", "aggIpc", "moves", "movedLines"}


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def check_metrics_trace(path, doc):
    """Validate one cdcs-metrics-trace-v1 document; returns summary."""
    for key in ("scheme", "stats", "trace"):
        if key not in doc:
            fail(path, f"missing key '{key}'")
    names = doc["stats"]
    if not isinstance(names, list) or not all(
        isinstance(n, str) for n in names
    ):
        fail(path, "'stats' must be a list of column names")
    trace = doc["trace"]
    if not isinstance(trace, list):
        fail(path, "'trace' must be a list of epoch records")
    sampled = 0
    for i, rec in enumerate(trace):
        missing = RECORD_KEYS - rec.keys()
        if missing:
            fail(path, f"record {i} missing keys {sorted(missing)}")
        if rec["epoch"] != i:
            fail(path, f"record {i} has epoch {rec['epoch']}")
        if rec["aggIpc"] < 0 or rec["moves"] < 0 or rec["movedLines"] < 0:
            fail(path, f"record {i} has a negative metric")
        if "stats" in rec:
            # A sampled epoch carries one value per declared column.
            if len(rec["stats"]) != len(names):
                fail(
                    path,
                    f"record {i} has {len(rec['stats'])} stat values "
                    f"for {len(names)} columns",
                )
            if any(v < 0 for v in rec["stats"]):
                fail(path, f"record {i} has a negative stat value")
            sampled += 1
    if names and trace and sampled == 0:
        fail(path, "declares stat columns but samples no epoch")
    return (
        f"metrics trace: scheme {doc['scheme']}, {len(trace)} epochs, "
        f"{sampled} sampled, {len(names)} stat columns"
    )


def check_chrome_trace(path, events):
    """Validate a Chrome trace-event array; returns a summary line."""
    tracks = {}  # (pid, tid) -> {"last_ts", "stack", "events"}
    names = {}  # (pid, tid) -> thread name
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(path, f"event {i} missing key '{key}'")
        ph = ev["ph"]
        track = (ev["pid"], ev["tid"])
        if ph == "M":
            if ev["name"] == "thread_name":
                names[track] = ev.get("args", {}).get("name", "")
            continue
        if ph not in ("B", "E", "i"):
            fail(path, f"event {i} has unknown phase '{ph}'")
        if "ts" not in ev:
            fail(path, f"event {i} missing key 'ts'")
        state = tracks.setdefault(
            track, {"last_ts": None, "stack": [], "events": 0}
        )
        ts = float(ev["ts"])
        if state["last_ts"] is not None and ts < state["last_ts"]:
            fail(
                path,
                f"event {i}: timestamp {ts} < {state['last_ts']} "
                f"on track {track}",
            )
        state["last_ts"] = ts
        state["events"] += 1
        if ph == "B":
            state["stack"].append(ev["name"])
        elif ph == "E":
            if not state["stack"]:
                fail(path, f"event {i}: 'E' with no open span on {track}")
            opened = state["stack"].pop()
            if opened != ev["name"]:
                fail(
                    path,
                    f"event {i}: 'E' for '{ev['name']}' but innermost "
                    f"open span is '{opened}'",
                )
        elif ph == "i" and "s" not in ev:
            fail(path, f"event {i}: instant without a scope")
    for track, state in tracks.items():
        if state["stack"]:
            fail(
                path,
                f"track {track} ends with unclosed span(s) "
                f"{state['stack']}",
            )
    workers = sum(
        1 for t in tracks if names.get(t, "").startswith("worker-")
    )
    total = sum(s["events"] for s in tracks.values())
    return (
        f"chrome trace: {total} events on {len(tracks)} track(s), "
        f"{workers} worker track(s)"
    ), workers


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="trace JSON files")
    parser.add_argument(
        "--expect-workers",
        type=int,
        metavar="N",
        help="require at least N named worker tracks across the "
        "Chrome traces",
    )
    args = parser.parse_args()

    max_workers = 0
    saw_chrome = False
    for path in args.artifacts:
        with open(path, "r", encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(path, f"invalid JSON: {e}")
        if isinstance(doc, dict) and doc.get("schema") == METRICS_SCHEMA:
            summary = check_metrics_trace(path, doc)
        else:
            events = (
                doc.get("traceEvents") if isinstance(doc, dict) else doc
            )
            if not isinstance(events, list):
                fail(path, "neither a metrics trace nor a Chrome trace")
            summary, workers = check_chrome_trace(path, events)
            saw_chrome = True
            max_workers = max(max_workers, workers)
        print(f"{path}: {summary}")

    if args.expect_workers is not None:
        if not saw_chrome:
            sys.exit("--expect-workers given but no Chrome trace checked")
        if max_workers < args.expect_workers:
            sys.exit(
                f"expected >= {args.expect_workers} worker tracks, "
                f"saw {max_workers}"
            )
    print(f"{len(args.artifacts)} artifact(s) OK")


if __name__ == "__main__":
    main()
