#!/usr/bin/env python3
"""Cache-key completeness lint.

ExperimentRunner caches RunResults (in memory and, sharded, in the
persistent ResultStore) under the string ExperimentRunner::cacheKey
builds from (SystemConfig, SchemeSpec, MixSpec). A behavior knob that
is missing from that key silently serves stale results: two configs
that simulate differently collapse onto one cache cell. This lint
makes that class of bug a test failure by cross-referencing three
sources of truth:

  1. every data member of SystemConfig (src/sim/system_config.hh),
     with members of nested config structs (NocConfig,
     PartitionedNucaConfig, ...) expanded to dotted paths;
  2. every entry of configKeys[] in src/sim/overrides.cc, via the
     `c.<path> = ...` assignment in its setter, and every knobKeys[]
     entry by name;
  3. the body of ExperimentRunner::cacheKey
     (src/sim/experiment_runner.cc): `cfg.<path>` field references
     and `cfg.<method>()` calls.

Every field/override target must be referenced by cacheKey or carry
an entry in tools/lint/cache_key_allowlist.txt; every study knob must
be allowlisted (knobs never reach SystemConfig, so each one needs a
written reason why exclusion is sound). Allowlist entries are checked
both ways: an entry whose field is gone, whose field is in fact keyed,
or whose `via` method is not called (or does not read the field) is
itself an error, so the allowlist cannot go stale.

Stdlib-only; runs as a ctest case (see CMakeLists.txt) and in CI.
Exit status: 0 clean, 1 findings, 2 usage/parse error.
"""

import argparse
import os
import re
import sys

SYSTEM_CONFIG = os.path.join("src", "sim", "system_config.hh")
OVERRIDES = os.path.join("src", "sim", "overrides.cc")
RUNNER = os.path.join("src", "sim", "experiment_runner.cc")
ALLOWLIST = os.path.join("tools", "lint", "cache_key_allowlist.txt")

BUILTIN_TYPES = {
    "bool", "int", "double", "float", "char", "Cycles",
    "string", "uint8_t", "uint32_t", "uint64_t", "int32_t", "int64_t",
    "size_t",
}

MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?([A-Za-z_][\w:<>,\s]*?)\s+"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*)?;\s*(?:///<.*)?$")


def read(repo, rel):
    path = os.path.join(repo, rel)
    with open(path, encoding="utf-8") as f:
        return f.read()


def strip_comments(text):
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def struct_body(text, name):
    """Extract the brace-balanced body of `struct <name> { ... };`."""
    m = re.search(r"\bstruct\s+%s\b[^{;]*\{" % re.escape(name), text)
    if m is None:
        return None
    depth, i = 1, m.end()
    start = m.end()
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return text[start:i - 1]


def struct_fields(body):
    """(type, name) for each depth-1 data member of a struct body."""
    fields = []
    depth = 0
    for line in body.splitlines():
        if depth == 0 and "(" not in line:
            m = MEMBER_RE.match(line)
            if m:
                type_text = m.group(1).strip()
                if type_text not in ("return", "using", "typedef"):
                    fields.append((type_text, m.group(2)))
        depth += line.count("{") - line.count("}")
        depth = max(depth, 0)
    return fields


def all_headers(repo):
    out = []
    for root, _dirs, names in os.walk(os.path.join(repo, "src")):
        for name in sorted(names):
            if name.endswith(".hh"):
                out.append(os.path.join(root, name))
    return sorted(out)


def expand_nested(repo, headers_text, type_text, name, errors):
    """Expand `name` to dotted paths if its type is a known struct."""
    bare = type_text.split("<")[0].split("::")[-1].strip()
    if bare in BUILTIN_TYPES or not bare[0].isupper():
        return [name]
    for text in headers_text:
        body = struct_body(text, bare)
        if body is not None:
            fields = struct_fields(body)
            if not fields:
                errors.append(
                    f"nested struct {bare} for field '{name}' has no "
                    "parseable members")
                return [name]
            return [f"{name}.{sub}" for _t, sub in fields]
    # Enums and opaque types key as a whole (e.g. MoveScheme).
    return [name]


def parse_system_config(repo, errors):
    text = strip_comments(read(repo, SYSTEM_CONFIG))
    body = struct_body(text, "SystemConfig")
    if body is None:
        errors.append(f"struct SystemConfig not found in {SYSTEM_CONFIG}")
        return [], text
    headers_text = [strip_comments(open(h, encoding="utf-8").read())
                    for h in all_headers(repo)]
    paths = []
    for type_text, name in struct_fields(body):
        paths.extend(
            expand_nested(repo, headers_text, type_text, name, errors))
    if not paths:
        errors.append("no SystemConfig members parsed")
    return paths, text


def bracketed_table(text, name):
    m = re.search(
        r"\b%s\s*\[\s*\]\s*=\s*\{" % re.escape(name), text)
    if m is None:
        return None
    depth, i = 1, m.end()
    start = m.end()
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return text[start:i - 1]


def parse_overrides(repo, errors):
    text = strip_comments(read(repo, OVERRIDES))
    config_keys = {}
    table = bracketed_table(text, "configKeys")
    if table is None:
        errors.append(f"configKeys[] not found in {OVERRIDES}")
    else:
        # Split entries on the {"name", "type", ...} openings so each
        # setter's `c.<path> =` assignments attach to its key.
        entries = re.split(r"\{\s*\"(\w+)\"\s*,\s*\"\w+\"", table)
        for i in range(1, len(entries), 2):
            name, body = entries[i], entries[i + 1]
            targets = set(re.findall(r"\bc\.([\w.]+)\s*=", body))
            if not targets:
                errors.append(
                    f"configKeys entry '{name}' has no c.<field> "
                    "assignment (setter not parseable)")
            config_keys[name] = targets
        if not config_keys:
            errors.append("no configKeys entries parsed")
    knob_table = bracketed_table(text, "knobKeys")
    knob_keys = []
    if knob_table is None:
        errors.append(f"knobKeys[] not found in {OVERRIDES}")
    else:
        knob_keys = re.findall(r"\{\s*\"(\w+)\"", knob_table)
        if not knob_keys:
            errors.append("no knobKeys entries parsed")
    return config_keys, knob_keys


def parse_cache_key(repo, errors):
    text = strip_comments(read(repo, RUNNER))
    m = re.search(r"ExperimentRunner::cacheKey\s*\(", text)
    if m is None:
        errors.append(f"ExperimentRunner::cacheKey not found in {RUNNER}")
        return set(), set()
    tail = text[m.end():]
    body_start = tail.index("{")
    depth, i = 1, body_start + 1
    while i < len(tail) and depth > 0:
        if tail[i] == "{":
            depth += 1
        elif tail[i] == "}":
            depth -= 1
        i += 1
    body = tail[body_start:i]
    refs, methods = set(), set()
    for ref in re.finditer(r"\bcfg\.((?:\w+\.)*\w+)(\s*\()?", body):
        path, is_call = ref.group(1), ref.group(2)
        if is_call:
            parts = path.rsplit(".", 1)
            if len(parts) == 1:
                methods.add(parts[0])
            else:
                refs.add(parts[0])  # cfg.field.c_str() and the like
        else:
            refs.add(path)
    if not refs:
        errors.append("no cfg.<field> references parsed from cacheKey")
    return refs, methods


def parse_allowlist(repo, errors):
    """Returns (excluded: {entry: reason}, via: {field: method})."""
    path = os.path.join(repo, ALLOWLIST)
    excluded, via = {}, {}
    if not os.path.exists(path):
        errors.append(f"allowlist missing: {ALLOWLIST}")
        return excluded, via
    with open(path, encoding="utf-8") as f:
        for num, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            m = re.match(r"^([\w.:]+)\s+via\s+(\w+)\(\)\s*--\s*(\S.*)$",
                         line)
            if m:
                via[m.group(1)] = m.group(2)
                continue
            m = re.match(r"^([\w.:]+)\s*--\s*(\S.*)$", line)
            if m:
                excluded[m.group(1)] = m.group(2)
                continue
            errors.append(
                f"{ALLOWLIST}:{num}: unparseable entry '{line}' "
                "(want '<entry> -- <reason>' or "
                "'<field> via <method>() -- <reason>')")
    return excluded, via


def covered(path, refs):
    """A field is keyed if it or any of its sub-paths is referenced."""
    if path in refs:
        return True
    prefix = path + "."
    return any(r.startswith(prefix) for r in refs)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", required=True,
                        help="repository root")
    args = parser.parse_args()

    errors = []
    try:
        fields, config_text = parse_system_config(args.repo, errors)
        config_keys, knob_keys = parse_overrides(args.repo, errors)
        refs, methods = parse_cache_key(args.repo, errors)
        excluded, via = parse_allowlist(args.repo, errors)
    except OSError as err:
        errors.append(str(err))
    if errors:
        for e in errors:
            print(f"cache_key_lint: parse error: {e}", file=sys.stderr)
        return 2

    findings = []

    def field_ok(path):
        if covered(path, refs):
            return True
        if path in excluded:
            return True
        if path in via:
            return True
        # noc.* covered when the whole sub-struct is allowlisted.
        head = path.split(".")[0]
        return head in excluded or head in via

    # 1. Every SystemConfig field is keyed, keyed-via, or allowlisted.
    for path in fields:
        if not field_ok(path):
            findings.append(
                f"SystemConfig field '{path}' is not in "
                "ExperimentRunner::cacheKey and not allowlisted")

    # 2. Every config override's target field likewise.
    known_paths = set(fields)
    for name, targets in sorted(config_keys.items()):
        for target in sorted(targets):
            if not field_ok(target):
                findings.append(
                    f"override key '{name}' sets cfg.{target}, which "
                    "is not in cacheKey and not allowlisted")
            if target not in known_paths and \
                    target.split(".")[0] not in known_paths:
                findings.append(
                    f"override key '{name}' sets cfg.{target}, which "
                    "is not a parsed SystemConfig field (parser gap "
                    "or dead setter)")

    # 3. Every study knob has a written exclusion rationale.
    for name in knob_keys:
        if f"knob:{name}" not in excluded:
            findings.append(
                f"study knob '{name}' has no knob:{name} entry in "
                f"{ALLOWLIST} (every knob needs a written reason why "
                "it is sound to exclude from the cache key)")

    # 4. The allowlist cannot go stale.
    knob_names = set(knob_keys)
    for entry, _reason in sorted(excluded.items()):
        if entry.startswith("knob:"):
            if entry[len("knob:"):] not in knob_names:
                findings.append(
                    f"stale allowlist entry '{entry}': no such knob "
                    "in knobKeys[]")
            continue
        if entry not in known_paths:
            findings.append(
                f"stale allowlist entry '{entry}': no such "
                "SystemConfig field")
        elif covered(entry, refs):
            findings.append(
                f"stale allowlist entry '{entry}': the field IS "
                "referenced by cacheKey")

    # 5. `via` methods are really called and really read the field.
    for entry, method in sorted(via.items()):
        if entry not in known_paths:
            findings.append(
                f"stale via entry '{entry}': no such SystemConfig "
                "field")
            continue
        if method not in methods:
            findings.append(
                f"via entry '{entry}': cacheKey never calls "
                f"cfg.{method}()")
            continue
        impl = re.search(
            r"\b%s\s*\(\s*\)\s*const\s*\{(.*?)\n    \}" %
            re.escape(method), config_text, re.S)
        if impl is None or \
                not re.search(r"\b%s\b" % re.escape(entry.split('.')[0]),
                              impl.group(1)):
            findings.append(
                f"via entry '{entry}': {method}() does not read the "
                "field (alias mapping is stale)")

    for f in findings:
        print(f"cache_key_lint: {f}")
    if findings:
        print(f"cache_key_lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"cache_key_lint: {len(fields)} fields, "
          f"{len(config_keys)} override keys, {len(knob_keys)} knobs "
          "all accounted for")
    return 0


if __name__ == "__main__":
    sys.exit(main())
