#!/usr/bin/env python3
"""Fixture tests for tools/lint/determinism_lint.py.

Negative coverage: one un-annotated instance of each banned construct
(rand, random_device, time(nullptr), ::now(), unordered iteration,
uintptr_t) must each produce a finding naming its rule. Positive
coverage: the same constructs behind lint:allow escapes (same-line and
preceding-line), plus mentions inside comments and string literals,
must stay silent -- as must the real repository.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "determinism_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.normpath(os.path.join(HERE, "..", "..", ".."))


def run_lint(repo):
    return subprocess.run(
        [sys.executable, LINT, "--repo", repo],
        capture_output=True, text=True, check=False)


class DeterminismLintTest(unittest.TestCase):

    def test_seeded_violations_all_reported(self):
        res = run_lint(os.path.join(FIXTURES, "determinism_bad"))
        self.assertEqual(res.returncode, 1, res.stdout + res.stderr)
        for rule in ("rand", "random-device", "time-seed", "wallclock",
                     "unordered-iter", "ptr-order"):
            self.assertIn(f"[{rule}]", res.stdout,
                          f"rule {rule} not reported:\n{res.stdout}")
        # Exactly the six seeded findings, no double counting.
        findings = [l for l in res.stdout.splitlines()
                    if l.startswith("src/")]
        self.assertEqual(len(findings), 6, res.stdout)

    def test_allow_escapes_silence_every_rule(self):
        res = run_lint(os.path.join(FIXTURES, "determinism_good"))
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)

    def test_real_repository_is_clean(self):
        res = run_lint(REPO)
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)


if __name__ == "__main__":
    unittest.main()
