#!/usr/bin/env python3
"""Fixture tests for tools/lint/cache_key_lint.py.

Negative coverage: a mini repo tree with a seeded unkeyed behavior
knob, a knob with no rationale, and three flavors of stale allowlist
entry must each produce a finding. Positive coverage: a clean fixture
tree and the real repository must both pass.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "cache_key_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.normpath(os.path.join(HERE, "..", "..", ".."))


def run_lint(repo):
    return subprocess.run(
        [sys.executable, LINT, "--repo", repo],
        capture_output=True, text=True, check=False)


class CacheKeyLintTest(unittest.TestCase):

    def test_seeded_violations_all_reported(self):
        res = run_lint(os.path.join(FIXTURES, "cache_key_bad"))
        self.assertEqual(res.returncode, 1, res.stdout + res.stderr)
        out = res.stdout
        # The unkeyed behavior knob, both as a field and through its
        # override key.
        self.assertIn("field 'fooKnob' is not in", out)
        self.assertIn("override key 'fooKnob' sets cfg.fooKnob", out)
        # The knob with no written rationale.
        self.assertIn("study knob 'mystery' has no knob:mystery", out)
        # Stale allowlist entries, all three flavors.
        self.assertIn("stale allowlist entry 'seed'", out)
        self.assertIn("stale allowlist entry 'ghostField'", out)
        self.assertIn("cacheKey never calls cfg.effectiveMemPlacement()",
                      out)
        # No false positives on the keyed fields.
        self.assertNotIn("'meshWidth'", out)

    def test_clean_fixture_passes(self):
        res = run_lint(os.path.join(FIXTURES, "cache_key_good"))
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)

    def test_missing_allowlist_is_an_error(self):
        res = run_lint(os.path.join(FIXTURES, "determinism_bad"))
        self.assertEqual(res.returncode, 2, res.stdout + res.stderr)

    def test_real_repository_is_clean(self):
        res = run_lint(REPO)
        self.assertEqual(res.returncode, 0, res.stdout + res.stderr)


if __name__ == "__main__":
    unittest.main()
