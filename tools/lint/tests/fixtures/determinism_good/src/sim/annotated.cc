// Fixture: the same constructs as determinism_bad, every one either
// escaped with lint:allow or only mentioned in comments/strings --
// the lint must stay silent.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace fixture
{

// A comment mentioning rand() or random_device must not trigger.
const char *kDoc = "call rand() and time(nullptr) at your peril";

int
seedFromWallClock()
{
    return static_cast<int>(time(nullptr)); // lint:allow(time-seed)
}

int
legacyRand()
{
    return rand(); // lint:allow(rand)
}

unsigned
hardwareEntropy()
{
    // lint:allow(random-device): fixture exercises preceding-line allow
    std::random_device dev;
    return dev();
}

long
nowNanos()
{
    return std::chrono::steady_clock::now() // lint:allow(wallclock)
        .time_since_epoch()
        .count();
}

int
sumInMapOrder()
{
    std::unordered_map<int, int> table;
    int sum = 0;
    // lint:allow(unordered-iter): order-independent sum
    for (const auto &kv : table)
        sum += kv.second;
    return sum;
}

unsigned long
orderByAddress(const int *p)
{
    return reinterpret_cast<uintptr_t>(p); // lint:allow(ptr-order)
}

} // namespace fixture
