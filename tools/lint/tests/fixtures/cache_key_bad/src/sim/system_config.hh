// Fixture: SystemConfig with a seeded unkeyed behavior knob
// (fooKnob) and a stale `via` alias (memPlacement).
#ifndef FIXTURE_SYSTEM_CONFIG_HH
#define FIXTURE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

namespace cdcs
{

struct SystemConfig
{
    int meshWidth = 8;
    std::uint64_t seed = 42;

    /** Behavior knob the cache key forgot. */
    double fooKnob = 1.0;

    std::string memPlacement = "interleave";

    std::uint64_t
    llcLines() const
    {
        return static_cast<std::uint64_t>(meshWidth);
    }
};

} // namespace cdcs

#endif
