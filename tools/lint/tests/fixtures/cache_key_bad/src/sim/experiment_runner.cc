// Fixture: cacheKey covering meshWidth and seed only.
#include "sim/experiment_runner.hh"

namespace cdcs
{

std::string
ExperimentRunner::cacheKey(const SystemConfig &cfg,
                           const SchemeSpec &scheme,
                           const MixSpec &mix)
{
    std::string key;
    appendF(key, "cfg:%d,%llu|", cfg.meshWidth,
            static_cast<unsigned long long>(cfg.seed));
    return key;
}

} // namespace cdcs
