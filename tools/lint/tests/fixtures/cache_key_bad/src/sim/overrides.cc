// Fixture: override tables including a key for the unkeyed fooKnob
// and a study knob (mystery) with no allowlist rationale.
#include "sim/overrides.hh"

namespace cdcs
{
namespace
{

const KeyDef configKeys[] = {
    {"meshWidth", "int",
     [](SystemConfig &c, const Override &v) {
         c.meshWidth = static_cast<int>(v.i);
     }},
    {"fooKnob", "double",
     [](SystemConfig &c, const Override &v) { c.fooKnob = v.d; }},
    {"seed", "uint",
     [](SystemConfig &c, const Override &v) { c.seed = v.u; }},
};

const KeyDef knobKeys[] = {
    {"workers", "uint", nullptr},
    {"mystery", "uint", nullptr},
};

} // anonymous namespace
} // namespace cdcs
