// Fixture: cacheKey covering every behavior field.
#include "sim/experiment_runner.hh"

namespace cdcs
{

std::string
ExperimentRunner::cacheKey(const SystemConfig &cfg,
                           const SchemeSpec &scheme,
                           const MixSpec &mix)
{
    std::string key;
    appendF(key, "cfg:%d,%llu|", cfg.meshWidth,
            static_cast<unsigned long long>(cfg.seed));
    appendF(key, "memp:%s|", cfg.effectiveMemPlacement().c_str());
    return key;
}

} // namespace cdcs
