// Fixture: fully accounted-for SystemConfig (clean run).
#ifndef FIXTURE_SYSTEM_CONFIG_HH
#define FIXTURE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

namespace cdcs
{

struct SystemConfig
{
    int meshWidth = 8;
    std::uint64_t seed = 42;

    /** Reporting-only; allowlisted. */
    std::string statsFilter;

    bool numaAwareMem = false;
    std::string memPlacement = "interleave";

    std::string
    effectiveMemPlacement() const
    {
        if (memPlacement == "interleave" && numaAwareMem)
            return "first-touch";
        return memPlacement;
    }
};

} // namespace cdcs

#endif
