// Fixture: override tables matching the clean cacheKey.
#include "sim/overrides.hh"

namespace cdcs
{
namespace
{

const KeyDef configKeys[] = {
    {"meshWidth", "int",
     [](SystemConfig &c, const Override &v) {
         c.meshWidth = static_cast<int>(v.i);
     }},
    {"seed", "uint",
     [](SystemConfig &c, const Override &v) { c.seed = v.u; }},
    {"stats", "string",
     [](SystemConfig &c, const Override &v) {
         c.statsFilter = v.value;
     }},
};

const KeyDef knobKeys[] = {
    {"workers", "uint", nullptr},
};

} // anonymous namespace
} // namespace cdcs
