// Fixture: one instance of every banned nondeterminism source, none
// annotated. The determinism lint must flag all six rules.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace fixture
{

int
seedFromWallClock()
{
    return static_cast<int>(time(nullptr));
}

int
legacyRand()
{
    return rand();
}

unsigned
hardwareEntropy()
{
    std::random_device dev;
    return dev();
}

long
nowNanos()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

int
sumInMapOrder()
{
    std::unordered_map<int, int> table;
    int sum = 0;
    for (const auto &kv : table)
        sum += kv.second;
    return sum;
}

unsigned long
orderByAddress(const int *p)
{
    return reinterpret_cast<uintptr_t>(p);
}

} // namespace fixture
