#!/usr/bin/env python3
"""Determinism lint: ban nondeterminism sources in simulator code.

The simulator's contract is that a run is a pure function of its
configuration (ROADMAP: sweeps byte-diff across worker counts and
machines, and the result cache replays runs by config key). Anything
that lets wall-clock time, ASLR, or hash-map iteration order leak into
simulated results silently breaks that contract, so this lint bans the
usual sources outright in src/:

  rand            C rand()/srand() (use cdcs::Rng, seeded per run)
  random-device   std::random_device (nondeterministic seeding)
  time-seed       time(nullptr)/time(NULL)/time(0)
  wallclock       *_clock::now() / Clock::now() (wall time)
  unordered-iter  range-for over a container declared unordered_map/
                  unordered_set anywhere in src/ (iteration order is
                  unspecified and varies across libstdc++ versions)
  ptr-order       uintptr_t (pointer values depend on ASLR; ordering
                  or hashing by address is nondeterministic)

Legitimate uses (profiling, trace timestamps, order-independent
resets) are annotated in place:

    foo();  // lint:allow(wallclock)
    // lint:allow(unordered-iter): order-independent reset
    for (auto &kv : pages) ...

An allow comment covers matches of the named rule(s) on its own line
and on the immediately following line. Allows carry an implicit
justification requirement: keep the reason in the comment or directly
above it.

Stdlib-only; runs as a ctest case (see CMakeLists.txt) and in CI.
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = {
    "rand": re.compile(r"\bs?rand\s*\("),
    "random-device": re.compile(r"\brandom_device\b"),
    "time-seed": re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
    "wallclock": re.compile(r"::now\s*\("),
    "ptr-order": re.compile(r"\buintptr_t\b"),
}

ALLOW_RE = re.compile(r"lint:allow\(([a-z\-, ]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s+(\w+)\s*[;{=(]", re.S)

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*([\w.\->]+)\s*\)")

SOURCE_EXTS = (".cc", ".hh")


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments (single line).

    Block comments spanning lines are handled by the caller via a
    simple in-comment flag; this repo's style keeps them rare.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def collect_files(repo):
    files = []
    for root, _dirs, names in os.walk(os.path.join(repo, "src")):
        for name in sorted(names):
            if name.endswith(SOURCE_EXTS):
                files.append(os.path.join(root, name))
    return sorted(files)


def collect_unordered_names(paths):
    names = set()
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def allowed_rules(lines, idx):
    """Rules allowed on line idx (0-based): same line or the one above."""
    rules = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ALLOW_RE.search(lines[j])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path, repo, unordered_names, findings):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    rel = os.path.relpath(path, repo)
    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
            else:
                line = line[:start] + " " * (end + 2 - start) + \
                    line[end + 2:]
        code = strip_comments_and_strings(line)
        allows = allowed_rules(lines, idx)
        for rule, pat in RULES.items():
            if pat.search(code) and rule not in allows:
                findings.append(
                    (rel, idx + 1, rule, raw.strip()))
        if "unordered-iter" not in allows:
            for m in RANGE_FOR_RE.finditer(code):
                container = re.split(r"[.\->]+", m.group(1))[-1]
                if container in unordered_names:
                    findings.append(
                        (rel, idx + 1, "unordered-iter", raw.strip()))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", required=True,
                        help="repository root (scans <repo>/src)")
    args = parser.parse_args()

    if not os.path.isdir(os.path.join(args.repo, "src")):
        print(f"determinism_lint: no src/ under {args.repo}",
              file=sys.stderr)
        return 2

    paths = collect_files(args.repo)
    unordered_names = collect_unordered_names(paths)
    findings = []
    for path in paths:
        lint_file(path, args.repo, unordered_names, findings)

    for rel, line, rule, text in findings:
        print(f"{rel}:{line}: [{rule}] {text}")
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s); "
              "annotate legitimate uses with // lint:allow(<rule>)",
              file=sys.stderr)
        return 1
    print(f"determinism_lint: {len(paths)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
