/**
 * @file
 * Using the monitoring + allocation layers standalone: feed synthetic
 * access streams through geometric monitors (GMONs), turn the
 * measured miss curves into total-latency curves, and let Peekahead
 * divide an LLC between the applications — the software half of CDCS
 * without the full simulator.
 *
 * It demonstrates the paper's Fig. 5 insight: with on-chip latency in
 * the objective, a streaming app gets (nearly) nothing even when
 * capacity is free, and capacity can be left unused.
 */

#include <cstdio>

#include "mesh/mesh.hh"
#include "monitor/gmon.hh"
#include "runtime/curves.hh"
#include "runtime/peekahead.hh"
#include "sim/overrides.hh"
#include "workload/app_profile.hh"

int
main(int argc, char **argv)
{
    using namespace cdcs;

    // A 6x6-tile chip: 36 x 512 KB = 18 MB of LLC. Resizable from
    // the command line with the study API's typed overrides, e.g.
    //   ./build/example_capacity_allocation meshWidth=8 bankLines=4096
    SystemConfig cfg;
    cfg.meshWidth = 6;
    cfg.meshHeight = 6;
    Overrides overrides;
    std::string err;
    for (int i = 1; i < argc; i++) {
        if (!overrides.add(argv[i], &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    overrides.apply(cfg);
    Mesh mesh(cfg.meshWidth, cfg.meshHeight);
    const double tile_lines = static_cast<double>(cfg.bankLines);
    const double total_lines = tile_lines * mesh.numTiles();

    // Monitor three apps' streams with one GMON each.
    const char *names[3] = {"omnetpp", "sphinx3", "milc"};
    std::vector<Gmon> monitors;
    std::vector<double> accesses(3, 0.0);
    for (int i = 0; i < 3; i++) {
        monitors.emplace_back(
            64, static_cast<std::uint64_t>(total_lines), 16, 4,
            0x100 + i);
    }
    for (int i = 0; i < 3; i++) {
        const AppProfile &app = profileByName(names[i]);
        StreamGen gen(app.privateStream, 7 + i);
        const int n = 200000;
        for (int a = 0; a < n; a++)
            monitors[i].access(gen.next());
        accesses[i] = n;
    }

    // Miss curves -> total latency curves -> Peekahead allocation.
    LatencyModel lat;
    std::vector<Curve> costs;
    for (int i = 0; i < 3; i++) {
        costs.push_back(totalLatencyCurve(monitors[i].missCurve(),
                                          accesses[i], mesh,
                                          tile_lines, lat,
                                          /*latency_aware=*/true));
    }
    const std::vector<double> alloc =
        peekaheadAllocate(costs, total_lines, /*allow_unused=*/true);

    double used = 0.0;
    char total_label[32];
    std::snprintf(total_label, sizeof(total_label), "of %.0f MB",
                  total_lines * lineBytes / 1048576.0);
    std::printf("%-10s %14s %10s\n", "app", "allocation(MB)",
                total_label);
    for (int i = 0; i < 3; i++) {
        std::printf("%-10s %14.2f %9.1f%%\n", names[i],
                    alloc[i] * lineBytes / 1048576.0,
                    100.0 * alloc[i] / total_lines);
        used += alloc[i];
    }
    std::printf("%-10s %14.2f %9.1f%%  <- latency-aware allocation "
                "leaves this unused\n",
                "(unused)", (total_lines - used) * lineBytes / 1048576.0,
                100.0 * (total_lines - used) / total_lines);
    return 0;
}
