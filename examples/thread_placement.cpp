/**
 * @file
 * The Sec. II-B scenario as a library example: a mix of
 * capacity-hungry single-threaded apps (omnetpp) and a shared-heavy
 * multithreaded app (ilbdc), scheduled clustered vs. by CDCS.
 * Prints both placements and the resulting speedups, showing CDCS
 * spreading the omnetpp instances while clustering ilbdc's threads
 * around their shared data (Fig. 1d).
 */

#include <cstdio>

#include "sim/experiment_runner.hh"
#include "sim/scheme_registry.hh"

namespace
{

using namespace cdcs;

void
report(const char *tag, const RunResult &r, const RunResult &base)
{
    std::printf("%-22s WS=%.3f on-chip=%.1f cyc/access hit=%.2f\n",
                tag, weightedSpeedup(r, base), r.avgOnChipLatency(),
                static_cast<double>(r.llcHits) / r.llcAccesses);
}

/** Render thread placement + dominant data owner per tile. */
void
showPlacement(const SystemConfig &cfg, const SchemeSpec &spec,
              const MixSpec &mix)
{
    System system(cfg, spec, buildMix(mix));
    system.run();
    const Mesh &mesh = system.meshRef();
    const auto &cores = system.threadPlacement();
    const WorkloadMix &wl = system.workload();
    std::vector<char> label(mesh.numTiles(), '.');
    for (ThreadId t = 0; t < wl.numThreads(); t++)
        label[cores[t]] =
            static_cast<char>('A' + wl.thread(t).proc % 26);
    for (int y = 0; y < mesh.height(); y++) {
        std::printf("    ");
        for (int x = 0; x < mesh.width(); x++)
            std::printf(" %c", label[mesh.tileAt(x, y)]);
        std::printf("\n");
    }
}

} // anonymous namespace

int
main()
{
    using namespace cdcs;

    SystemConfig cfg;
    cfg.meshWidth = 6;
    cfg.meshHeight = 6;
    cfg.accessesPerThreadEpoch = 25000;
    cfg.epochs = 8;
    cfg.warmupEpochs = 4;

    // Four omnetpp instances (A-D) + one 8-thread ilbdc (E).
    const MixSpec mix = MixSpec::named(
        {"omnetpp", "omnetpp", "omnetpp", "omnetpp", "ilbdc"}, 77);

    // All four schemes run concurrently through the experiment
    // engine; identical mix seeds keep the streams comparable. The
    // lineup is named through the SchemeRegistry, like study specs.
    ExperimentRunner runner;
    const auto results = runner.runSchemes(
        cfg,
        schemesByName({"snuca", "jigsaw-c", "jigsaw-r", "cdcs"}),
        mix);
    const RunResult &snuca = results[0];
    const RunResult &jc = results[1];
    const RunResult &jr = results[2];
    const RunResult &cd = results[3];

    report("Jigsaw+Clustered", jc, snuca);
    report("Jigsaw+Random", jr, snuca);
    report("CDCS", cd, snuca);

    std::printf("\nClustered placement (threads; A-D omnetpp, E "
                "ilbdc):\n");
    showPlacement(cfg, schemeByName("jigsaw-c"), mix);
    std::printf("\nCDCS placement (spreads omnetpp, clusters "
                "ilbdc):\n");
    showPlacement(cfg, schemeByName("cdcs"), mix);
    return 0;
}
