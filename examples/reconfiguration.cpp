/**
 * @file
 * Working directly with the reconfiguration hardware layer: build a
 * partitioned-NUCA chip by hand, reconfigure it under the three move
 * schemes (Sec. IV-H), and watch where the lines go — demand moves,
 * background invalidations and bulk invalidations, without the
 * full-system driver.
 */

#include <algorithm>
#include <cstdio>

#include "nuca/partitioned_nuca.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/overrides.hh"

namespace
{

using namespace cdcs;

/** A runtime that concentrates VC 0 into a chosen tile's bank. */
class PinningRuntime : public ReconfigRuntime
{
  public:
    explicit PinningRuntime(TileId target) : targetBank(target) {}

    RuntimeOutput
    reconfigure(const RuntimeInput &input) override
    {
        RuntimeOutput out;
        out.alloc.assign(input.missCurves.size(),
                         std::vector<double>(input.numBanks, 0.0));
        for (auto &row : out.alloc)
            row[targetBank] = 2048.0;
        out.threadCore = input.threadCore;
        return out;
    }

    TileId targetBank;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace cdcs;

    // Chip geometry is overridable with the study API's typed
    // key=value parser, e.g.
    //   ./build/example_reconfiguration meshWidth=8 bankLines=4096
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    Overrides overrides;
    std::string err;
    for (int i = 1; i < argc; i++) {
        if (!overrides.add(argv[i], &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    overrides.apply(cfg);
    Mesh mesh(cfg.meshWidth, cfg.meshHeight);
    std::vector<PartitionedBank> banks;
    for (int b = 0; b < mesh.numTiles(); b++)
        banks.emplace_back(cfg.bankLines, cfg.bankWays);

    const TileId target =
        std::min<TileId>(5, static_cast<TileId>(mesh.numTiles() - 1));
    PinningRuntime runtime(target);
    PartitionedNucaConfig move_cfg;
    move_cfg.moves = MoveScheme::DemandBackground;
    move_cfg.walkDelay = 1000;
    move_cfg.walkCyclesPerSet = 100;
    std::vector<ThreadVcWiring> wiring{{0, 1, 2}};
    PartitionedNucaPolicy policy(&mesh, 1, cfg.bankLines, 512,
                                 wiring, 3, &runtime, move_cfg);

    // Touch 1000 lines under the bootstrap (spread) configuration.
    for (LineAddr a = 0; a < 1000; a++) {
        const MapResult mr = policy.map(0, 0, 0, a);
        banks[mr.bank].access(a, 0, 0);
    }
    std::printf("before reconfiguration: lines spread over %d "
                "banks\n", mesh.numTiles());

    // Reconfigure: everything now belongs in the target bank.
    RuntimeInput input;
    input.mesh = &mesh;
    input.numBanks = mesh.numTiles();
    input.banksPerTile = 1;
    input.bankLines = cfg.bankLines;
    input.missCurves.resize(3);
    input.access = {{1000.0, 0.0, 0.0}};
    input.threadCore = {0};
    policy.endEpoch(input, banks);

    // Demand moves: re-access a subset; they migrate on access.
    std::uint64_t demand_moves = 0;
    for (LineAddr a = 0; a < 200; a++) {
        const MapResult mr = policy.map(0, 0, 0, a);
        if (!banks[mr.bank].probeHit(a, 0, 0) &&
            mr.oldBank != invalidTile) {
            CacheLine moved;
            if (banks[mr.oldBank].extractForMove(a, moved)) {
                banks[mr.bank].installMoved(moved, 0);
                demand_moves++;
            }
        }
    }
    std::printf("demand moves while walking: %llu of 200 accessed "
                "lines chased into bank %d\n",
                static_cast<unsigned long long>(demand_moves),
                static_cast<int>(target));

    // The background walker cleans up everything else.
    const std::uint64_t invalidated =
        policy.advanceWalk(1000000, banks);
    std::printf("background walker invalidated %llu stale lines; "
                "shadow descriptors dropped: %s\n",
                static_cast<unsigned long long>(invalidated),
                policy.demandMovesActive() ? "no" : "yes");
    std::printf("bank %d now holds %llu lines\n",
                static_cast<int>(target),
                static_cast<unsigned long long>(
                    banks[target].totalOccupancy()));
    return 0;
}
