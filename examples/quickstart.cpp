/**
 * @file
 * Quickstart: simulate a small tiled CMP running a mix of
 * SPEC-CPU2006-like applications under S-NUCA and CDCS, and print the
 * headline numbers. This is the smallest end-to-end use of the
 * library: build a SystemConfig, pick a SchemeSpec, run, inspect
 * RunResult.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/experiment_runner.hh"

int
main()
{
    using namespace cdcs;

    // A 4x4-tile CMP with 512 KB LLC banks (an 8 MB NUCA LLC).
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.accessesPerThreadEpoch = 20000;
    cfg.epochs = 8;
    cfg.warmupEpochs = 4;

    // Eight random SPEC-CPU2006-like applications.
    const MixSpec mix = MixSpec::cpu(8, /*seed=*/123);

    std::printf("running %d apps on a %dx%d CMP under S-NUCA and "
                "CDCS...\n\n",
                mix.count, cfg.meshWidth, cfg.meshHeight);

    // Both schemes run concurrently on the experiment engine's
    // work-stealing pool (CDCS_WORKERS=1 forces serial).
    ExperimentRunner runner;
    const auto results = runner.runSchemes(
        cfg, {SchemeSpec::snuca(), SchemeSpec::cdcs()}, mix);
    const RunResult &snuca = results[0];
    const RunResult &cdcs_r = results[1];

    std::printf("%-22s %12s %12s\n", "", "S-NUCA", "CDCS");
    std::printf("%-22s %12.3f %12.3f\n", "LLC hit ratio",
                static_cast<double>(snuca.llcHits) / snuca.llcAccesses,
                static_cast<double>(cdcs_r.llcHits) /
                    cdcs_r.llcAccesses);
    std::printf("%-22s %12.1f %12.1f\n", "on-chip cycles/access",
                snuca.avgOnChipLatency(), cdcs_r.avgOnChipLatency());
    std::printf("%-22s %12.2f %12.2f\n", "energy (nJ/instr)",
                1e9 * snuca.energy.total() / snuca.totalInstrs,
                1e9 * cdcs_r.energy.total() / cdcs_r.totalInstrs);
    std::printf("%-22s %12s %12.3f\n", "weighted speedup", "1.000",
                weightedSpeedup(cdcs_r, snuca));

    std::printf("\nCDCS reconfigured %d times; average runtime "
                "%.0f us per reconfiguration\n",
                cdcs_r.reconfigs, cdcs_r.avgTimes.totalUs());
    return 0;
}
