/**
 * @file
 * Quickstart: simulate a small tiled CMP running a mix of
 * SPEC-CPU2006-like applications under S-NUCA and CDCS, and print the
 * headline numbers. This is the smallest end-to-end use of the
 * library: build a SystemConfig (optionally overridden from the
 * command line), pick schemes from the SchemeRegistry by name, run,
 * inspect RunResult.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/example_quickstart
 *   ./build/example_quickstart meshWidth=8 meshHeight=8 epochs=12
 */

#include <cstdio>

#include "sim/experiment_runner.hh"
#include "sim/overrides.hh"
#include "sim/scheme_registry.hh"

int
main(int argc, char **argv)
{
    using namespace cdcs;

    // A 4x4-tile CMP with 512 KB LLC banks (an 8 MB NUCA LLC).
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.accessesPerThreadEpoch = 20000;
    cfg.epochs = 8;
    cfg.warmupEpochs = 4;

    // Any key=value argument overrides the config, with the same
    // typed parser behind `cdcs_studies --set`.
    Overrides overrides;
    std::string err;
    for (int i = 1; i < argc; i++) {
        if (!overrides.add(argv[i], &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    overrides.apply(cfg);

    // Eight random SPEC-CPU2006-like applications.
    const MixSpec mix = MixSpec::cpu(8, /*seed=*/123);

    std::printf("running %d apps on a %dx%d CMP under S-NUCA and "
                "CDCS...\n\n",
                mix.count, cfg.meshWidth, cfg.meshHeight);

    // Both schemes run concurrently on the experiment engine's
    // work-stealing pool (CDCS_WORKERS=1 forces serial). The lineup
    // comes from the SchemeRegistry — the same names study specs use.
    ExperimentRunner runner;
    const auto results = runner.runSchemes(
        cfg, schemesByName({"snuca", "cdcs"}), mix);
    const RunResult &snuca = results[0];
    const RunResult &cdcs_r = results[1];

    std::printf("%-22s %12s %12s\n", "", "S-NUCA", "CDCS");
    std::printf("%-22s %12.3f %12.3f\n", "LLC hit ratio",
                static_cast<double>(snuca.llcHits) / snuca.llcAccesses,
                static_cast<double>(cdcs_r.llcHits) /
                    cdcs_r.llcAccesses);
    std::printf("%-22s %12.1f %12.1f\n", "on-chip cycles/access",
                snuca.avgOnChipLatency(), cdcs_r.avgOnChipLatency());
    std::printf("%-22s %12.2f %12.2f\n", "energy (nJ/instr)",
                1e9 * snuca.energy.total() / snuca.totalInstrs,
                1e9 * cdcs_r.energy.total() / cdcs_r.totalInstrs);
    std::printf("%-22s %12s %12.3f\n", "weighted speedup", "1.000",
                weightedSpeedup(cdcs_r, snuca));

    std::printf("\nCDCS reconfigured %d times; average runtime "
                "%.0f us per reconfiguration\n",
                cdcs_r.reconfigs, cdcs_r.avgTimes.totalUs());
    return 0;
}
