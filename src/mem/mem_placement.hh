/**
 * @file
 * Pluggable page-to-memory-controller placement. The access path asks
 * a MemPlacementPolicy which controller serves each line instead of
 * hard-coding the page-interleave hash, so the policy can range from
 * the paper's interleaving to first-touch NUMA placement to a
 * contention-aware rebalancer that re-pins hot pages away from
 * saturated controllers each epoch (the memory-side counterpart of
 * the Fig. 11d discussion's future work).
 *
 * The hot-path query is placementFor(core, line), a two-level
 * decision: the policy's controllerFor picks the controller (the
 * classic page-to-controller mapping), and the attached
 * MemTieringPolicy — when a far memory tier is configured — picks the
 * capacity tier behind it. With no tiering policy attached every
 * placement pins MemTier::Near and the decision collapses to the
 * legacy controller-only mapping, bit for bit. Policies keep whatever
 * page map and per-controller accounting they need. Epoch dynamics
 * run in epochUpdate, driven by the EpochController right after the
 * NoC's contention refresh, so a rebalancing policy scores
 * controllers on the same measured route waits the access path will
 * pay — and charges the migration traffic it causes back to the NoC.
 */

#ifndef CDCS_MEM_MEM_PLACEMENT_HH
#define CDCS_MEM_MEM_PLACEMENT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/mem_tier.hh"
#include "mem/mem_tiering.hh"
#include "mesh/mesh.hh"
#include "net/noc_model.hh"

namespace cdcs
{

/** Interface of a page-to-controller placement policy. */
class MemPlacementPolicy
{
  public:
    explicit MemPlacementPolicy(const Mesh &mesh) : topo(mesh) {}
    virtual ~MemPlacementPolicy() = default;

    MemPlacementPolicy(const MemPlacementPolicy &) = delete;
    MemPlacementPolicy &operator=(const MemPlacementPolicy &) = delete;

    /**
     * Registry name ("interleave", "first-touch", "d2choice",
     * "contention").
     */
    virtual const char *name() const = 0;

    /**
     * Controller serving `line` when accessed from `core`. Hot path:
     * called once per memory access; stateful policies update their
     * page map and load accounting here.
     */
    virtual int controllerFor(TileId core, LineAddr line) = 0;

    /**
     * The full two-level placement of `line`: the policy's controller
     * decision plus the attached tiering policy's residency decision.
     * With no tiering attached (no far tier configured) the tier pins
     * MemTier::Near and this is exactly controllerFor.
     */
    MemPlacement
    placementFor(TileId core, LineAddr line)
    {
        MemPlacement p;
        p.ctrl = controllerFor(core, line);
        if (tiering != nullptr)
            p.tier = tiering->onAccess(line, p.ctrl);
        return p;
    }

    /**
     * Attach the capacity-tiering policy deciding near/far residency
     * behind the controllers. Platform calls this once, at build
     * time, only when a far tier is configured; the policy outlives
     * this object's use (Platform owns both).
     */
    void attachTiering(MemTieringPolicy *t) { tiering = t; }

    /** The attached tiering policy, or nullptr (no far tier). */
    MemTieringPolicy *tieringPolicy() const { return tiering; }

    /**
     * Epoch boundary, invoked right after the NoC's contention
     * refresh with the epoch's mean active cycles. Rebalancing
     * policies re-pin pages here and charge the migration traffic to
     * `noc`; static policies ignore it.
     */
    virtual void
    epochUpdate(NocModel &noc, double elapsed_cycles)
    {
        (void)noc;
        (void)elapsed_cycles;
    }

    /** Pages re-pinned over the run (0 for static policies). */
    virtual std::uint64_t migratedPages() const { return 0; }

    /**
     * Accesses charged per controller since construction; empty for
     * policies that keep no load accounting.
     */
    virtual std::vector<std::uint64_t> controllerAccesses() const
    {
        return {};
    }

  protected:
    const Mesh &topo;

  private:
    /** Tier decider behind the controllers; nullptr = all near. */
    MemTieringPolicy *tiering = nullptr;
};

/**
 * Page-interleaved placement (the default): the Mesh's page hash,
 * byte-identical to the pre-policy-layer behavior.
 */
class InterleaveMemPlacement final : public MemPlacementPolicy
{
  public:
    using MemPlacementPolicy::MemPlacementPolicy;

    const char *name() const override { return "interleave"; }

    int
    controllerFor(TileId core, LineAddr line) override
    {
        (void)core;
        return topo.memCtrlOf(line);
    }
};

/**
 * First-touch NUMA placement: a page is pinned to the controller
 * nearest the first core that touches it (the legacy `numaAwareMem`
 * behavior, which this policy absorbs as an alias).
 */
class FirstTouchMemPlacement final : public MemPlacementPolicy
{
  public:
    using MemPlacementPolicy::MemPlacementPolicy;

    const char *name() const override { return "first-touch"; }

    int
    controllerFor(TileId core, LineAddr line) override
    {
        const std::uint64_t page = line >> pageLineShift;
        const auto [it, inserted] =
            pageCtrl.try_emplace(page, topo.nearestMemCtrl(core));
        return it->second;
    }

  private:
    /** First-touch page-to-controller map. */
    std::unordered_map<std::uint64_t, int> pageCtrl;
};

/**
 * Power-of-two-choices placement (DistCache-style, PAPERS.md): each
 * page is pinned at first touch to the lighter-loaded of two
 * independent hash candidates — the default interleave hash and a
 * second salted page hash. Per-controller load is the EWMA-blended
 * access count the policy itself observes, so under skewed traffic
 * the d2 draw statistically evens controller load without any page
 * migration (pins never change after first touch).
 */
class D2ChoiceMemPlacement final : public MemPlacementPolicy
{
  public:
    D2ChoiceMemPlacement(const Mesh &mesh, double smoothing);

    const char *name() const override { return "d2choice"; }

    int controllerFor(TileId core, LineAddr line) override;
    void epochUpdate(NocModel &noc, double elapsed_cycles) override;

    std::vector<std::uint64_t> controllerAccesses() const override
    {
        return totalAccesses;
    }

  private:
    double smoothing;
    /** First-touch page-to-controller pins. */
    std::unordered_map<std::uint64_t, int> pageCtrl;
    /** EWMA-blended accesses/epoch per controller. */
    std::vector<double> ctrlLoad;
    /** Accesses per controller this epoch. */
    std::vector<std::uint64_t> epochAccesses;
    /** Accesses per controller since construction. */
    std::vector<std::uint64_t> totalAccesses;
    bool seeded = false; ///< ctrlLoad holds at least one epoch.
};

/** Tuning parameters of the contention-aware policy. */
struct ContentionMemPlacementParams
{
    /** Cycles per mesh hop (router + link) in the distance term. */
    double hopCycles = 4.0;
    /**
     * EWMA factor blending each epoch's measured controller loads
     * into the scored loads (1.0 = raw epoch values); mirrors the
     * runtime's monitorSmoothing so the placement<->load feedback
     * loop converges for stationary workloads.
     */
    double smoothing = 0.5;
    /**
     * DRAM rows of hot pages considered for migration per epoch
     * (rowBudgetSelect groups candidates by row and spends the
     * budget in whole rows, preferring row-buffer-friendly bulk
     * moves). Each copy's flit burst crosses both controllers'
     * attach links (scaled by the injection knob like all measured
     * traffic), so a small per-epoch budget amortized over hot rows
     * wins; large budgets spend more on copies than the steering
     * recovers (measured on the mem_placement study lineup). At 4
     * pages per row this bounds an epoch at 16 pages — the magnitude
     * the pre-row-throttle flat page budget was tuned to.
     */
    int migrateRowBudget = 4;
    /** A controller is overloaded above this multiple of the mean. */
    double overloadFactor = 1.15;
    /**
     * A page only moves when the score improves by this many cycles
     * (hysteresis against churn on noise-level imbalance).
     */
    double migrateMargin = 2.0;
    /**
     * Cycles charged per unit of relative controller load
     * (load / mean) in the candidate score. The measured route waits
     * lag one epoch and saturate at the clamp, so this projection
     * term is what keeps one epoch's migrations from stampeding the
     * single coolest controller.
     */
    double loadPenalty = 4.0;
    /**
     * Epochs a migrated page sits out before it may move again.
     * Shared pages' distance anchors flap between accessors; without
     * a cooldown they ping-pong between controllers and the copy
     * traffic eats the steering gain.
     */
    int cooldownEpochs = 2;
};

/**
 * Contention-aware placement: first-touch pinning plus an epoch
 * rebalance. Every access updates per-page and per-controller load
 * counters; each epoch the policy EWMA-blends the measured loads,
 * finds overloaded controllers, and re-pins their hottest pages to
 * the controller minimizing distance + measured NoC route wait +
 * a projected relative-load penalty, charging each migrated page's
 * flit traffic (read out of the old controller, route, write into
 * the new one) to the NoC.
 */
class ContentionMemPlacement final : public MemPlacementPolicy
{
  public:
    ContentionMemPlacement(const Mesh &mesh,
                           ContentionMemPlacementParams params);

    const char *name() const override { return "contention"; }

    int controllerFor(TileId core, LineAddr line) override;
    void epochUpdate(NocModel &noc, double elapsed_cycles) override;

    std::uint64_t migratedPages() const override { return migrated; }
    std::vector<std::uint64_t> controllerAccesses() const override
    {
        return totalAccesses;
    }

  private:
    struct PageInfo
    {
        int ctrl = 0;
        /** Most recent accessor this epoch (the distance anchor). */
        TileId lastCore = 0;
        /** Accesses this epoch (cleared at each rebalance). */
        std::uint32_t epochAccesses = 0;
        /** Epoch (rebalance count) of the last migration, or -1. */
        int lastMoveEpoch = -1;
    };

    ContentionMemPlacementParams cfg;
    std::unordered_map<std::uint64_t, PageInfo> pages;
    /** EWMA-blended accesses/epoch per controller (scored loads). */
    std::vector<double> ctrlLoad;
    /** Accesses per controller this epoch. */
    std::vector<std::uint64_t> epochAccesses;
    /** Accesses per controller since construction. */
    std::vector<std::uint64_t> totalAccesses;
    std::uint64_t migrated = 0;
    bool seeded = false; ///< ctrlLoad holds at least one epoch.
    int epochCount = 0;  ///< Rebalances so far (cooldown clock).
};

} // namespace cdcs

#endif // CDCS_MEM_MEM_PLACEMENT_HH
