/**
 * @file
 * Name -> factory registry of the capacity-tiering policies, the
 * tiering counterpart of MemPlacementRegistry. Platform builds the
 * policy SystemConfig::memTiering names (only when a far tier is
 * configured); overrides.cc validates the name against the registry
 * at parse time.
 */

#ifndef CDCS_MEM_MEM_TIERING_REGISTRY_HH
#define CDCS_MEM_MEM_TIERING_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/mem_tiering.hh"

namespace cdcs
{

class MemTieringRegistry
{
  public:
    /**
     * Build the policy registered under `name` ("static",
     * "hotness"). Fatals with the known names if `name` is not
     * registered.
     */
    static std::unique_ptr<MemTieringPolicy>
    build(const std::string &name, const Mesh &mesh,
          const MemTieringParams &params);

    /** True iff `name` is a registered tiering policy. */
    static bool known(const std::string &name);

    /** Registered names, sorted. */
    static std::vector<std::string> names();
};

} // namespace cdcs

#endif // CDCS_MEM_MEM_TIERING_REGISTRY_HH
