#include "mem/mem_migration.hh"

#include <algorithm>

#include "common/types.hh"
#include "obs/stat_registry.hh"

namespace cdcs
{

namespace
{

/// Pages migrated (controller re-pins + tier moves) per epoch.
const StatId kMemMigrations = StatRegistry::counter("mem.migrations");
/// Pages promoted far -> near per epoch.
const StatId kTierPromotions =
    StatRegistry::counter("mem.tier_promotions");
/// Pages demoted near -> far per epoch.
const StatId kTierDemotions =
    StatRegistry::counter("mem.tier_demotions");

} // anonymous namespace

void
recordPageMigration(NocModel &noc, const Mesh &topo, int src_ctrl,
                    MemTier src_tier, int dst_ctrl, MemTier dst_tier,
                    std::uint64_t &migrated)
{
    const std::uint32_t page_flits =
        linesPerPage * topo.config().dataFlits();
    const TileId dst_tile = topo.memCtrlTile(dst_ctrl);
    if (src_tier == MemTier::Near) {
        noc.addMemResponse(TrafficClass::Other, src_ctrl, dst_tile,
                           page_flits);
    } else {
        noc.addFarMemResponse(TrafficClass::Other, src_ctrl, dst_tile,
                              page_flits);
    }
    if (dst_tier == MemTier::Near) {
        noc.addMemTraffic(TrafficClass::Other, dst_tile, dst_ctrl,
                          page_flits);
    } else {
        noc.addFarMemTraffic(TrafficClass::Other, dst_tile, dst_ctrl,
                             page_flits);
    }
    migrated++;
    StatRegistry::add(kMemMigrations);
    if (src_tier == MemTier::Far && dst_tier == MemTier::Near)
        StatRegistry::add(kTierPromotions);
    else if (src_tier == MemTier::Near && dst_tier == MemTier::Far)
        StatRegistry::add(kTierDemotions);
}

std::vector<std::size_t>
rowBudgetSelect(const std::vector<std::uint64_t> &pages,
                const std::vector<double> &weights, int row_budget)
{
    struct Row
    {
        std::uint64_t id = 0;
        double weight = 0.0;
        std::vector<std::size_t> members; ///< In candidate order.
    };
    // Group in candidate order; the first-seen order of rows doesn't
    // matter because the sort below orders on (weight, id) only.
    std::vector<Row> rows;
    for (std::size_t i = 0; i < pages.size(); i++) {
        const std::uint64_t row_id = dramRowOf(pages[i]);
        Row *row = nullptr;
        for (Row &r : rows) {
            if (r.id == row_id) {
                row = &r;
                break;
            }
        }
        if (row == nullptr) {
            rows.push_back(Row{row_id, 0.0, {}});
            row = &rows.back();
        }
        row->weight += weights[i];
        row->members.push_back(i);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.id < b.id;
              });
    if (rows.size() > static_cast<std::size_t>(
                          row_budget < 0 ? 0 : row_budget))
        rows.resize(static_cast<std::size_t>(
            row_budget < 0 ? 0 : row_budget));
    std::vector<std::size_t> kept;
    for (const Row &row : rows)
        kept.insert(kept.end(), row.members.begin(),
                    row.members.end());
    return kept;
}

} // namespace cdcs
