/**
 * @file
 * Memory-tier vocabulary of the two-level placement decision. The
 * access path asks the placement layer where a line lives as a
 * MemPlacement — which controller fronts it (the classic
 * page-to-controller mapping) and which capacity tier behind that
 * controller serves it (near DRAM, or the far / CXL-style pool when
 * one is configured). With no far tier every placement pins
 * MemTier::Near and the decision collapses to the legacy
 * controller-only mapping, bit for bit.
 *
 * Also defines the DRAM-row grouping the migration throttles use:
 * a row is a run of 2^dramRowShift consecutive pages, and migration
 * budgets are spent in rows, not pages, so the copy engine streams
 * whole row-buffer hits instead of scattering single-page bursts.
 */

#ifndef CDCS_MEM_MEM_TIER_HH
#define CDCS_MEM_MEM_TIER_HH

#include <cstdint>

namespace cdcs
{

/** Capacity tier behind a memory controller. */
enum class MemTier : std::uint8_t
{
    Near, ///< Local DRAM: cfg.memLatency, the near channel pool.
    Far   ///< Far pool: cfg.farMemLatency, its own channels/links.
};

/** The two-level placement decision for one line. */
struct MemPlacement
{
    /** Controller fronting the line (page-to-controller mapping). */
    int ctrl = 0;
    /** Tier behind that controller serving the line. */
    MemTier tier = MemTier::Near;
};

/**
 * Pages per DRAM row group, as a shift: 4 consecutive 4 KB pages
 * share a row buffer (a 16 KB row). Migration candidates in the same
 * row are moved together; budgets count rows.
 */
constexpr std::uint32_t dramRowShift = 2;

/** Row group of a page (pages >> dramRowShift share a row buffer). */
inline std::uint64_t
dramRowOf(std::uint64_t page)
{
    return page >> dramRowShift;
}

} // namespace cdcs

#endif // CDCS_MEM_MEM_TIER_HH
