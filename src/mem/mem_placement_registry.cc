#include "mem/mem_placement_registry.hh"

#include "common/log.hh"

namespace cdcs
{

MemPlacementRegistry::MemPlacementRegistry()
{
    add("interleave",
        [](const Mesh &mesh, const MemPlacementBuildParams &) {
            return std::make_unique<InterleaveMemPlacement>(mesh);
        });
    add("first-touch",
        [](const Mesh &mesh, const MemPlacementBuildParams &) {
            return std::make_unique<FirstTouchMemPlacement>(mesh);
        });
    add("d2choice",
        [](const Mesh &mesh, const MemPlacementBuildParams &params) {
            return std::make_unique<D2ChoiceMemPlacement>(
                mesh, params.smoothing);
        });
    add("contention",
        [](const Mesh &mesh, const MemPlacementBuildParams &params) {
            ContentionMemPlacementParams p;
            p.hopCycles = params.hopCycles;
            p.smoothing = params.smoothing;
            return std::make_unique<ContentionMemPlacement>(mesh, p);
        });
}

MemPlacementRegistry &
MemPlacementRegistry::instance()
{
    static MemPlacementRegistry registry;
    return registry;
}

void
MemPlacementRegistry::add(const std::string &name, Factory make)
{
    cdcs_assert(!name.empty(), "mem placement policy without a name");
    cdcs_assert(make != nullptr,
                "mem placement policy without a factory");
    const auto inserted = makers.emplace(name, std::move(make));
    cdcs_assert(inserted.second,
                "mem placement policy already registered");
}

bool
MemPlacementRegistry::contains(const std::string &name) const
{
    return makers.find(name) != makers.end();
}

std::vector<std::string>
MemPlacementRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(makers.size());
    for (const auto &[name, make] : makers)
        out.push_back(name); // std::map iteration is name-sorted.
    return out;
}

std::unique_ptr<MemPlacementPolicy>
MemPlacementRegistry::build(const std::string &name, const Mesh &mesh,
                            const MemPlacementBuildParams &params) const
{
    const auto it = makers.find(name);
    if (it == makers.end()) {
        std::string known;
        for (const std::string &n : names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown mem placement policy '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return it->second(mesh, params);
}

} // namespace cdcs
