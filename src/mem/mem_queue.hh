/**
 * @file
 * Memory-channel queueing model behind the access path's bandwidth
 * model (AccessPath::endChunk).
 *
 * The channels form an M/D/m station: misses arrive roughly Poisson,
 * every channel serves a fixed-size line transfer (deterministic
 * service), and the aggregate service rate is memLinesPerCycle split
 * evenly over memChannels servers. The mean wait uses the
 * Allen-Cunneen approximation, which is exact for m = 1 (M/D/1) and
 * non-increasing in the channel count at a fixed aggregate rate —
 * adding channels at the same total bandwidth reduces queueing, it
 * never inflates it.
 */

#ifndef CDCS_MEM_MEM_QUEUE_HH
#define CDCS_MEM_MEM_QUEUE_HH

#include <cmath>

namespace cdcs
{

/**
 * Mean M/D/m queueing wait (cycles) of a memory station.
 *
 * @param rho Offered utilization of the aggregate service rate,
 *        in [0, 1); callers clamp below saturation.
 * @param channels Number of channels (servers), >= 1.
 * @param lines_per_cycle Aggregate service rate over all channels.
 *
 * Allen-Cunneen: Wq ~= (Ca^2 + Cs^2) / 2 *
 * rho^(sqrt(2 (m + 1)) - 1) / (m (1 - rho)) * s, with Poisson
 * arrivals (Ca^2 = 1), deterministic service (Cs^2 = 0) and
 * per-channel service time s = m / lines_per_cycle; the m cancels,
 * leaving the exponent as the only channel-count dependence. At
 * m = 1 this is the exact M/D/1 wait s * rho / (2 (1 - rho)).
 */
inline double
memQueueWait(double rho, int channels, double lines_per_cycle)
{
    if (rho <= 0.0 || lines_per_cycle <= 0.0)
        return 0.0;
    const double m = static_cast<double>(channels < 1 ? 1 : channels);
    const double exponent = std::sqrt(2.0 * (m + 1.0)) - 1.0;
    return std::pow(rho, exponent) / (2.0 * (1.0 - rho)) /
        lines_per_cycle;
}

} // namespace cdcs

#endif // CDCS_MEM_MEM_QUEUE_HH
