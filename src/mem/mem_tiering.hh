/**
 * @file
 * Pluggable capacity-tiering policies: the second level of the
 * two-level memory placement decision. A MemPlacementPolicy answers
 * which controller fronts a page; a MemTieringPolicy answers which
 * tier behind that controller serves it — near DRAM or the far
 * (CXL-style) pool — and drives page promotion/demotion between the
 * tiers at epoch boundaries.
 *
 * The hot-path query is onAccess(line, ctrl), called once per memory
 * access by MemPlacementPolicy::placementFor when a tiering policy is
 * attached (never when the far tier is off, so the no-far-tier
 * configuration stays byte-identical to pre-tier binaries). Epoch
 * dynamics run in epochUpdate, driven by the EpochController right
 * after the mem-placement epoch update, and charge migration flits
 * through both tiers' attach links via recordPageMigration.
 *
 * Two built-ins ship:
 *  - "static": a deterministic salted-hash capacity split — a page is
 *    far iff its hash lands inside the far fraction. No migrations;
 *    the control arm of the tiering study.
 *  - "hotness": seeds new pages from the same hash split (so the
 *    cold-start behavior matches the static arm), EWMA-ranks pages by
 *    measured access counts, and each epoch swaps the hottest far
 *    rows against the coldest near rows — with a promotion-margin
 *    hysteresis, a per-page cooldown, and a DRAM-row migration budget
 *    like the contention placement policy.
 */

#ifndef CDCS_MEM_MEM_TIERING_HH
#define CDCS_MEM_MEM_TIERING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/mem_tier.hh"
#include "mesh/mesh.hh"
#include "net/noc_model.hh"

namespace cdcs
{

/** Tuning parameters of the tiering policies (from SystemConfig). */
struct MemTieringParams
{
    /**
     * Fraction of pages resident in the far tier (cfg.farMemRatio).
     * Platform only builds a tiering policy when it is positive.
     */
    double farRatio = 0.0;
    /**
     * EWMA factor blending each epoch's measured page access counts
     * into the scored hotness (cfg.monitorSmoothing, like the other
     * epoch-feedback loops).
     */
    double smoothing = 0.5;
    /**
     * A far page is only promoted over a near victim when its scored
     * hotness exceeds the victim's by this factor (hysteresis against
     * ping-pong on noise-level differences).
     */
    double promoteMargin = 2.0;
    /** Epochs a moved page sits out before it may move again. */
    int cooldownEpochs = 2;
    /**
     * DRAM rows promoted (and, symmetrically, demoted) per epoch.
     * With dramRowShift = 2 this bounds each direction at
     * rowBudget * 4 pages — though hot pages hash to scattered page
     * numbers, so in practice each budgeted row carries about one
     * page and the budget is roughly a page count. Tier moves get a
     * much larger budget than the contention policy's re-pin
     * throttle (4 rows): a capacity tier misplacing a hot page costs
     * hundreds of cycles per miss, not a few hops, so chasing the
     * hot set harder pays for itself.
     */
    int rowBudget = 64;
};

/** Interface of a capacity-tiering policy. */
class MemTieringPolicy
{
  public:
    MemTieringPolicy(const Mesh &mesh, const MemTieringParams &params);
    virtual ~MemTieringPolicy() = default;

    MemTieringPolicy(const MemTieringPolicy &) = delete;
    MemTieringPolicy &operator=(const MemTieringPolicy &) = delete;

    /** Registry name ("static", "hotness"). */
    virtual const char *name() const = 0;

    /**
     * Tier serving `line`, fronted by controller `ctrl`. Hot path:
     * called once per memory access; stateful policies update their
     * residency map and hotness accounting here.
     */
    virtual MemTier onAccess(LineAddr line, int ctrl) = 0;

    /**
     * Epoch boundary, invoked right after the mem-placement epoch
     * update. Migrating policies promote/demote pages here and charge
     * each move's flits through both tiers' attach links; the static
     * policy ignores it.
     */
    virtual void
    epochUpdate(NocModel &noc, double elapsed_cycles)
    {
        (void)noc;
        (void)elapsed_cycles;
    }

    /** Pages moved between tiers over the run (either direction). */
    virtual std::uint64_t migratedPages() const { return 0; }
    /** Pages promoted far -> near over the run. */
    virtual std::uint64_t promotions() const { return 0; }
    /** Pages demoted near -> far over the run. */
    virtual std::uint64_t demotions() const { return 0; }
    /** Pages currently resident in the far tier. */
    virtual std::uint64_t farResidentPages() const = 0;
    /** Pages the policy has seen (near + far). */
    virtual std::uint64_t trackedPages() const = 0;

  protected:
    /**
     * The deterministic salted-hash capacity split: true iff `page`'s
     * hash lands inside the far fraction. Both built-ins seed new
     * pages from this split, so the policies only diverge through
     * epoch migration — a fair comparison under identical cold
     * starts.
     */
    bool
    farBySplit(std::uint64_t page) const
    {
        // mix64 output scaled to [0, 1); the salt decorrelates the
        // split from the mesh's controller-interleave page hash.
        const double u =
            static_cast<double>(mix64(page ^ 0xFA27'11E2'D15C'0CE5ull)) *
            0x1p-64;
        return u < cfg.farRatio;
    }

    const Mesh &topo;
    MemTieringParams cfg;
};

/**
 * Static capacity split: residency is the salted page hash, nothing
 * ever moves. The far tier serves a stable farRatio sample of pages
 * regardless of how hot they are.
 */
class StaticTieringPolicy final : public MemTieringPolicy
{
  public:
    using MemTieringPolicy::MemTieringPolicy;

    const char *name() const override { return "static"; }

    MemTier
    onAccess(LineAddr line, int ctrl) override
    {
        (void)ctrl;
        const std::uint64_t page = line >> pageLineShift;
        const auto [it, inserted] =
            pages.try_emplace(page, farBySplit(page));
        if (it->second)
            farPages += inserted ? 1 : 0;
        return it->second ? MemTier::Far : MemTier::Near;
    }

    std::uint64_t farResidentPages() const override
    {
        return farPages;
    }

    std::uint64_t trackedPages() const override
    {
        return pages.size();
    }

  private:
    /** page -> resident far (tracked only for the occupancy stats). */
    std::unordered_map<std::uint64_t, bool> pages;
    std::uint64_t farPages = 0;
};

/**
 * Hotness-ranked tiering: pages seed from the hash split, every
 * access bumps the page's epoch count, and each epoch the policy
 * EWMA-blends the counts into a scored hotness and swaps the hottest
 * far rows against the coldest near rows (1:1, so the capacity split
 * holds), under the promotion margin, the per-page cooldown and the
 * DRAM-row budget. Each move's copy burst is charged through both
 * tiers' attach links via recordPageMigration.
 *
 * Promotion candidates additionally pass a reuse filter: a far page
 * qualifies only when it was accessed in both the current and the
 * previous epoch. A page streamed through once (a scan) posts a huge
 * one-epoch miss count — a full page of line fills — that would
 * otherwise outrank every genuinely hot page, and promoting it is
 * pure waste since it is never touched again. Sustained hot pages
 * miss every epoch and pass.
 */
class HotnessTieringPolicy final : public MemTieringPolicy
{
  public:
    HotnessTieringPolicy(const Mesh &mesh,
                         const MemTieringParams &params);

    const char *name() const override { return "hotness"; }

    MemTier onAccess(LineAddr line, int ctrl) override;
    void epochUpdate(NocModel &noc, double elapsed_cycles) override;

    std::uint64_t migratedPages() const override { return migrated; }
    std::uint64_t promotions() const override { return promoted; }
    std::uint64_t demotions() const override { return demoted; }

    std::uint64_t farResidentPages() const override
    {
        return farPages;
    }

    std::uint64_t trackedPages() const override
    {
        return pages.size();
    }

  private:
    struct PageInfo
    {
        MemTier tier = MemTier::Near;
        /** EWMA-blended accesses/epoch (the scored hotness). */
        double hotness = 0.0;
        /** Accesses this epoch (cleared at each epochUpdate). */
        std::uint32_t epochAccesses = 0;
        /** Accesses in the previous epoch (the reuse filter). */
        std::uint32_t prevEpochAccesses = 0;
        /** Controller fronting the page at its last access. */
        int lastCtrl = 0;
        /** Epoch (update count) of the last tier move, or -1. */
        int lastMoveEpoch = -1;
    };

    std::unordered_map<std::uint64_t, PageInfo> pages;
    std::uint64_t farPages = 0;
    std::uint64_t migrated = 0;
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    bool seeded = false; ///< Hotness holds at least one epoch.
    int epochCount = 0;  ///< Updates so far (cooldown clock).
};

} // namespace cdcs

#endif // CDCS_MEM_MEM_TIERING_HH
