/**
 * @file
 * String-keyed registry of memory placement policies, mirroring the
 * NocRegistry: the `memPlacement=` override (SystemConfig's
 * memPlacement field) names the policy, Platform builds it here, and
 * new policies register a factory instead of patching Platform.
 * "interleave" (the default page hash), "first-touch" (the legacy
 * `numaAwareMem` behavior) and "contention" are pre-registered.
 */

#ifndef CDCS_MEM_MEM_PLACEMENT_REGISTRY_HH
#define CDCS_MEM_MEM_PLACEMENT_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/mem_placement.hh"

namespace cdcs
{

/** Policy parameters a factory may consume (from SystemConfig). */
struct MemPlacementBuildParams
{
    /** Cycles per mesh hop (router + link) for distance scoring. */
    double hopCycles = 4.0;
    /** EWMA factor on measured loads (cfg.monitorSmoothing). */
    double smoothing = 0.5;
};

/** Process-wide name -> MemPlacementPolicy factory map. */
class MemPlacementRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<MemPlacementPolicy>(
        const Mesh &, const MemPlacementBuildParams &)>;

    /** The registry, with the built-in policies pre-registered. */
    static MemPlacementRegistry &instance();

    /**
     * Register a policy under a unique key (conventionally lowercase
     * CLI-friendly, e.g. "contention"). Panics on duplicates.
     */
    void add(const std::string &name, Factory make);

    bool contains(const std::string &name) const;

    /** Registered keys, sorted. */
    std::vector<std::string> names() const;

    /**
     * Build the policy registered under `name`; panics listing the
     * registered policies when nothing matches.
     */
    std::unique_ptr<MemPlacementPolicy>
    build(const std::string &name, const Mesh &mesh,
          const MemPlacementBuildParams &params) const;

  private:
    MemPlacementRegistry();

    std::map<std::string, Factory> makers;
};

} // namespace cdcs

#endif // CDCS_MEM_MEM_PLACEMENT_REGISTRY_HH
