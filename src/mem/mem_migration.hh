/**
 * @file
 * Shared page-migration machinery of the memory layers.
 *
 * recordPageMigration is the single accounting path every migration —
 * a contention-policy controller re-pin or a tiering-policy
 * promotion/demotion — goes through: it charges the page's copy
 * flits to the NoC (out of the source tier's attach link, across the
 * mesh, into the destination tier's attach link), bumps the
 * StatRegistry counters ("mem.migrations", and "mem.tier_promotions"
 * / "mem.tier_demotions" for tier moves) and the caller's migrated
 * counter in one place, so the stat, RunResult::memMigratedPages and
 * the flit charging can never drift apart.
 *
 * rowBudgetSelect is the DRAM-row-locality throttle both movers use:
 * candidates are grouped by row (mem_tier.hh), rows are ranked by
 * their summed weight, and the budget is spent in whole rows —
 * preferring row-buffer-friendly bulk moves over the same number of
 * scattered single-page copies.
 */

#ifndef CDCS_MEM_MEM_MIGRATION_HH
#define CDCS_MEM_MEM_MIGRATION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/mem_tier.hh"
#include "mesh/mesh.hh"
#include "net/noc_model.hh"

namespace cdcs
{

/**
 * Account one page's migration from (src_ctrl, src_tier) to
 * (dst_ctrl, dst_tier): the page's lines stream out of the source
 * tier's attach link, cross the mesh to the destination controller's
 * tile, and enter through the destination tier's attach link. Bumps
 * "mem.migrations" (and the tier promotion/demotion stats when the
 * tier changes) plus the caller's `migrated` counter.
 */
void recordPageMigration(NocModel &noc, const Mesh &topo,
                         int src_ctrl, MemTier src_tier,
                         int dst_ctrl, MemTier dst_tier,
                         std::uint64_t &migrated);

/**
 * Spend a migration budget in DRAM rows: group `pages` by row, rank
 * rows by summed weight (descending; row id breaks ties so the
 * selection is deterministic), and keep every candidate of the top
 * `row_budget` rows. Returns the kept indices into `pages`, ordered
 * hottest row first and, within a row, in the caller's candidate
 * order — so a caller that pre-sorts candidates hottest-first
 * processes whole rows hottest-page-first.
 */
std::vector<std::size_t>
rowBudgetSelect(const std::vector<std::uint64_t> &pages,
                const std::vector<double> &weights, int row_budget);

} // namespace cdcs

#endif // CDCS_MEM_MEM_MIGRATION_HH
