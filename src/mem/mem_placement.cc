#include "mem/mem_placement.hh"

#include <algorithm>

#include "mem/mem_migration.hh"

namespace cdcs
{

D2ChoiceMemPlacement::D2ChoiceMemPlacement(const Mesh &mesh,
                                           double smoothing_)
    : MemPlacementPolicy(mesh),
      smoothing(std::clamp(smoothing_, 0.05, 1.0))
{
    const auto ctrls = static_cast<std::size_t>(mesh.numMemCtrls());
    ctrlLoad.assign(ctrls, 0.0);
    epochAccesses.assign(ctrls, 0);
    totalAccesses.assign(ctrls, 0);
}

int
D2ChoiceMemPlacement::controllerFor(TileId core, LineAddr line)
{
    (void)core;
    const std::uint64_t page = line >> pageLineShift;
    const auto [it, inserted] = pageCtrl.try_emplace(page, 0);
    if (inserted) {
        // Two independent hash candidates; pin to the lighter one.
        // The first is the interleave hash, so with balanced load the
        // policy degenerates to interleaving.
        const int c1 = topo.memCtrlOf(line);
        const int c2 = static_cast<int>(
            mix64(page * 0x9E3779B97F4A7C15ull ^ 0xD15C'CACEull) %
            static_cast<std::uint64_t>(ctrlLoad.size()));
        const auto load = [&](int c) {
            const auto i = static_cast<std::size_t>(c);
            return ctrlLoad[i] + static_cast<double>(epochAccesses[i]);
        };
        it->second = load(c2) < load(c1) ? c2 : c1;
    }
    const auto c = static_cast<std::size_t>(it->second);
    epochAccesses[c]++;
    totalAccesses[c]++;
    return it->second;
}

void
D2ChoiceMemPlacement::epochUpdate(NocModel &noc,
                                  double elapsed_cycles)
{
    (void)noc;
    (void)elapsed_cycles;
    const double alpha = seeded ? smoothing : 1.0;
    for (std::size_t c = 0; c < ctrlLoad.size(); c++) {
        ctrlLoad[c] = alpha * static_cast<double>(epochAccesses[c]) +
            (1.0 - alpha) * ctrlLoad[c];
        epochAccesses[c] = 0;
    }
    seeded = true;
}

ContentionMemPlacement::ContentionMemPlacement(
    const Mesh &mesh, ContentionMemPlacementParams params)
    : MemPlacementPolicy(mesh), cfg(params)
{
    // monitorSmoothing is a free-range user knob; keep the blend
    // factor usable whatever it is set to.
    cfg.smoothing = std::clamp(cfg.smoothing, 0.05, 1.0);
    const auto ctrls =
        static_cast<std::size_t>(mesh.numMemCtrls());
    ctrlLoad.assign(ctrls, 0.0);
    epochAccesses.assign(ctrls, 0);
    totalAccesses.assign(ctrls, 0);
}

int
ContentionMemPlacement::controllerFor(TileId core, LineAddr line)
{
    const std::uint64_t page = line >> pageLineShift;
    const auto [it, inserted] = pages.try_emplace(page);
    PageInfo &info = it->second;
    if (inserted)
        info.ctrl = topo.nearestMemCtrl(core);
    info.lastCore = core;
    info.epochAccesses++;
    const auto c = static_cast<std::size_t>(info.ctrl);
    epochAccesses[c]++;
    totalAccesses[c]++;
    return info.ctrl;
}

void
ContentionMemPlacement::epochUpdate(NocModel &noc,
                                    double elapsed_cycles)
{
    (void)elapsed_cycles;
    const std::size_t ctrls = ctrlLoad.size();

    // Blend this epoch's measured loads into the scored loads.
    const double alpha = seeded ? cfg.smoothing : 1.0;
    double total = 0.0;
    for (std::size_t c = 0; c < ctrls; c++) {
        ctrlLoad[c] = alpha * static_cast<double>(epochAccesses[c]) +
            (1.0 - alpha) * ctrlLoad[c];
        total += ctrlLoad[c];
        epochAccesses[c] = 0;
    }
    seeded = true;

    const double mean = total / static_cast<double>(ctrls);
    if (mean <= 0.0) {
        // lint:allow(unordered-iter): order-independent reset
        for (auto &[page, info] : pages)
            info.epochAccesses = 0;
        return;
    }

    // Hottest pages currently pinned to an overloaded controller,
    // hottest first; page id breaks ties so the rebalance is
    // deterministic regardless of hash-map iteration order.
    const double overload = cfg.overloadFactor * mean;
    std::vector<std::pair<std::uint64_t, PageInfo *>> hot;
    // lint:allow(unordered-iter): result sorted below, page-id ties
    for (auto &[page, info] : pages) {
        if (info.epochAccesses > 0 &&
            ctrlLoad[static_cast<std::size_t>(info.ctrl)] > overload &&
            (info.lastMoveEpoch < 0 ||
             epochCount - info.lastMoveEpoch >= cfg.cooldownEpochs))
            hot.push_back({page, &info});
    }
    std::sort(hot.begin(), hot.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->epochAccesses !=
                      b.second->epochAccesses)
                      return a.second->epochAccesses >
                          b.second->epochAccesses;
                  return a.first < b.first;
              });

    // Spend the migration budget in DRAM rows, not pages: rank rows
    // by their summed hotness and keep whole rows, so the copy engine
    // streams row-buffer hits instead of scattered single pages.
    {
        std::vector<std::uint64_t> cand_pages;
        std::vector<double> cand_weights;
        cand_pages.reserve(hot.size());
        cand_weights.reserve(hot.size());
        for (const auto &[page, info] : hot) {
            cand_pages.push_back(page);
            cand_weights.push_back(
                static_cast<double>(info->epochAccesses));
        }
        const std::vector<std::size_t> kept = rowBudgetSelect(
            cand_pages, cand_weights, cfg.migrateRowBudget);
        std::vector<std::pair<std::uint64_t, PageInfo *>> selected;
        selected.reserve(kept.size());
        for (const std::size_t i : kept)
            selected.push_back(hot[i]);
        hot = std::move(selected);
    }

    const double ctrl_flits =
        static_cast<double>(topo.config().ctrlFlits());
    const double data_flits =
        static_cast<double>(topo.config().dataFlits());
    const double msg_flits = ctrl_flits + data_flits;
    for (const auto &[page, info] : hot) {
        const TileId anchor = info->lastCore;
        // Per-flit cost of serving the page's accesses from
        // controller c: zero-load distance, the measured route waits
        // (blended over the request/response directions by their
        // flit shares, like the runtime's cost oracle), and the
        // relative-load projection. Everything but the projection is
        // a cost the access path actually pays.
        const auto route_wait = [&](int c) {
            return (ctrl_flits * noc.memPathWait(anchor, c) +
                    data_flits * noc.memResponsePathWait(c, anchor)) /
                msg_flits;
        };
        const auto score = [&](int c) {
            return cfg.hopCycles *
                static_cast<double>(topo.hopsToCtrl(anchor, c)) +
                route_wait(c) +
                cfg.loadPenalty *
                ctrlLoad[static_cast<std::size_t>(c)] / mean;
        };
        int best = info->ctrl;
        double best_score = score(best);
        for (std::size_t c = 0; c < ctrls; c++) {
            const double s = score(static_cast<int>(c));
            if (s < best_score) {
                best_score = s;
                best = static_cast<int>(c);
            }
        }
        // Move only when the score gain clears the hysteresis margin
        // AND some of it is measured congestion relief: count
        // imbalance alone (e.g. under a zero-load network) is not
        // worth the copy traffic.
        if (best == info->ctrl ||
            score(info->ctrl) - best_score < cfg.migrateMargin ||
            route_wait(info->ctrl) <= route_wait(best))
            continue;

        // Shift the page's load to the destination before scoring
        // the next candidate, so one epoch's migrations spread over
        // controllers instead of stampeding the single best one. The
        // blend weighted this epoch's counts by alpha, so the shift
        // must too (and never below zero), or a hot page could drive
        // the vacated controller's scored load negative.
        const double load =
            alpha * static_cast<double>(info->epochAccesses);
        auto &src_load = ctrlLoad[static_cast<std::size_t>(info->ctrl)];
        src_load = std::max(0.0, src_load - load);
        ctrlLoad[static_cast<std::size_t>(best)] += load;

        recordPageMigration(noc, topo, info->ctrl, MemTier::Near,
                            best, MemTier::Near, migrated);
        info->ctrl = best;
        info->lastMoveEpoch = epochCount;
    }

    epochCount++;
    // lint:allow(unordered-iter): order-independent reset
    for (auto &[page, info] : pages)
        info.epochAccesses = 0;
}

} // namespace cdcs
