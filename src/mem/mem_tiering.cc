#include "mem/mem_tiering.hh"

#include <algorithm>
#include <cstddef>

#include "mem/mem_migration.hh"

namespace cdcs
{

MemTieringPolicy::MemTieringPolicy(const Mesh &mesh,
                                   const MemTieringParams &params)
    : topo(mesh), cfg(params)
{
}

HotnessTieringPolicy::HotnessTieringPolicy(
    const Mesh &mesh, const MemTieringParams &params)
    : MemTieringPolicy(mesh, params)
{
}

MemTier
HotnessTieringPolicy::onAccess(LineAddr line, int ctrl)
{
    const std::uint64_t page = line >> pageLineShift;
    auto [it, inserted] = pages.try_emplace(page);
    PageInfo &info = it->second;
    if (inserted) {
        // Seed from the same hash split as the static policy: both
        // arms of the tiering study start from identical residency
        // and only diverge through epoch migration.
        info.tier = farBySplit(page) ? MemTier::Far : MemTier::Near;
        if (info.tier == MemTier::Far)
            farPages++;
    }
    info.epochAccesses++;
    info.lastCtrl = ctrl;
    return info.tier;
}

void
HotnessTieringPolicy::epochUpdate(NocModel &noc,
                                  double elapsed_cycles)
{
    (void)elapsed_cycles;
    epochCount++;

    struct Candidate
    {
        std::uint64_t page = 0;
        double hotness = 0.0;
        PageInfo *info = nullptr;
    };
    std::vector<Candidate> far_hot;  ///< Promotion candidates.
    std::vector<Candidate> near_cold; ///< Demotion victims.

    const double alpha = seeded ? cfg.smoothing : 1.0;
    // Candidates are sorted below with a page-id tiebreak before any
    // order-sensitive use.
    // lint:allow(unordered-iter): result sorted below, page-id ties
    for (auto &[page, info] : pages) {
        info.hotness =
            alpha * static_cast<double>(info.epochAccesses) +
            (1.0 - alpha) * info.hotness;
        // The reuse filter: accessed both this epoch and last epoch.
        // One-shot scan pages post a full page of line fills in one
        // epoch and never return; promoting them is pure waste.
        const bool reused =
            info.epochAccesses > 0 && info.prevEpochAccesses > 0;
        info.prevEpochAccesses = info.epochAccesses;
        info.epochAccesses = 0;
        const bool cooled =
            info.lastMoveEpoch < 0 ||
            epochCount - info.lastMoveEpoch > cfg.cooldownEpochs;
        if (!cooled)
            continue;
        if (info.tier == MemTier::Far) {
            if (reused)
                far_hot.push_back({page, info.hotness, &info});
        } else {
            near_cold.push_back({page, info.hotness, &info});
        }
    }
    seeded = true;
    if (far_hot.empty() || near_cold.empty())
        return;

    const auto hotter = [](const Candidate &a, const Candidate &b) {
        if (a.hotness != b.hotness)
            return a.hotness > b.hotness;
        return a.page < b.page;
    };
    const auto colder = [](const Candidate &a, const Candidate &b) {
        if (a.hotness != b.hotness)
            return a.hotness < b.hotness;
        return a.page < b.page;
    };
    std::sort(far_hot.begin(), far_hot.end(), hotter);
    std::sort(near_cold.begin(), near_cold.end(), colder);

    // Hysteresis: pair the hottest far page against the coldest near
    // victim and only swap while the far page clearly dominates. The
    // first failing pair ends the scan — later pairs are even closer.
    std::size_t swappable = 0;
    const std::size_t pairs =
        std::min(far_hot.size(), near_cold.size());
    while (swappable < pairs &&
           far_hot[swappable].hotness >
               cfg.promoteMargin * near_cold[swappable].hotness &&
           far_hot[swappable].hotness > 0.0) {
        swappable++;
    }
    if (swappable == 0)
        return;
    far_hot.resize(swappable);
    near_cold.resize(swappable);

    // Spend the migration budget in DRAM rows on each side: hottest
    // far rows first, coldest near rows first (negated weights flip
    // rowBudgetSelect's descending rank).
    std::vector<std::uint64_t> ppages, dpages;
    std::vector<double> pweights, dweights;
    for (const Candidate &c : far_hot) {
        ppages.push_back(c.page);
        pweights.push_back(c.hotness);
    }
    for (const Candidate &c : near_cold) {
        dpages.push_back(c.page);
        dweights.push_back(-c.hotness);
    }
    const std::vector<std::size_t> promo =
        rowBudgetSelect(ppages, pweights, cfg.rowBudget);
    const std::vector<std::size_t> demo =
        rowBudgetSelect(dpages, dweights, cfg.rowBudget);

    // 1:1 swaps keep the far-resident count at the hash-seeded
    // equilibrium; each page move streams through both tiers' attach
    // links at the page's own fronting controller.
    const std::size_t moves = std::min(promo.size(), demo.size());
    for (std::size_t i = 0; i < moves; i++) {
        PageInfo &up = *far_hot[promo[i]].info;
        PageInfo &down = *near_cold[demo[i]].info;
        recordPageMigration(noc, topo, up.lastCtrl, MemTier::Far,
                            up.lastCtrl, MemTier::Near, migrated);
        recordPageMigration(noc, topo, down.lastCtrl, MemTier::Near,
                            down.lastCtrl, MemTier::Far, migrated);
        up.tier = MemTier::Near;
        down.tier = MemTier::Far;
        up.lastMoveEpoch = epochCount;
        down.lastMoveEpoch = epochCount;
        promoted++;
        demoted++;
    }
}

} // namespace cdcs
