#include "mem/mem_tiering_registry.hh"

#include <functional>
#include <map>

#include "common/log.hh"

namespace cdcs
{

namespace
{

using Factory = std::function<std::unique_ptr<MemTieringPolicy>(
    const Mesh &, const MemTieringParams &)>;

const std::map<std::string, Factory> &
makers()
{
    static const std::map<std::string, Factory> registry = {
        {"static",
         [](const Mesh &mesh, const MemTieringParams &params) {
             return std::make_unique<StaticTieringPolicy>(mesh,
                                                          params);
         }},
        {"hotness",
         [](const Mesh &mesh, const MemTieringParams &params) {
             return std::make_unique<HotnessTieringPolicy>(mesh,
                                                           params);
         }},
    };
    return registry;
}

} // anonymous namespace

std::unique_ptr<MemTieringPolicy>
MemTieringRegistry::build(const std::string &name, const Mesh &mesh,
                          const MemTieringParams &params)
{
    const auto it = makers().find(name);
    if (it == makers().end()) {
        std::string known;
        for (const std::string &n : names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown mem tiering policy '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return it->second(mesh, params);
}

bool
MemTieringRegistry::known(const std::string &name)
{
    return makers().find(name) != makers().end();
}

std::vector<std::string>
MemTieringRegistry::names()
{
    std::vector<std::string> out;
    out.reserve(makers().size());
    for (const auto &[name, make] : makers())
        out.push_back(name); // std::map iteration is name-sorted.
    return out;
}

} // namespace cdcs
