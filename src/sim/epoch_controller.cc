#include "sim/epoch_controller.hh"

#include <algorithm>
#include <string>

#include "common/profile.hh"
#include "obs/trace.hh"

namespace cdcs
{

namespace
{

// Reconfiguration-pipeline stats (registered at static init so any
// `stats=` filter can select them before the first run starts).
const StatId kRuntimeReconfigs =
    StatRegistry::counter("runtime.reconfigs");
const StatId kRuntimePlaceMoves =
    StatRegistry::counter("runtime.place_moves");
const StatId kRuntimeMovedLines =
    StatRegistry::counter("runtime.moved_lines");

} // anonymous namespace

EpochController::EpochController(const SystemConfig &config,
                                 Platform &plat, AccessPath &access,
                                 WorkloadMix &workload,
                                 std::vector<TileId> &thread_core,
                                 RunStats &run_stats)
    : cfg(config), platform(plat), path(access), mix(workload),
      threadCore(thread_core), stats(run_stats)
{
    instrOffset.assign(mix.numThreads(), 0.0);
    cycleOffset.assign(mix.numThreads(), 0.0);
    if (cfg.statsEnabled()) {
        statSel = StatRegistry::select(cfg.statsFilter);
        statNames.reserve(statSel.size());
        for (StatId id : statSel)
            statNames.push_back(StatRegistry::name(id));
    }
}

RuntimeInput
EpochController::gatherRuntimeInput()
{
    RuntimeInput in;
    in.mesh = &platform.mesh;
    in.numBanks = platform.numBanks();
    in.banksPerTile = cfg.banksPerTile;
    in.bankLines = cfg.bankLines;
    in.allocGranule =
        static_cast<std::uint64_t>(cfg.allocGranuleLines);
    if (!platform.monitors.empty()) {
        in.missCurves.reserve(platform.monitors.size());
        for (const auto &mon : platform.monitors)
            in.missCurves.push_back(mon->missCurve());
    }
    in.access = path.accessMatrix;

    // Blend with the EWMA of previous epochs: the runtime's inputs
    // are sampled and noisy, and placement stability depends on them
    // converging for stationary workloads.
    const double alpha = cfg.monitorSmoothing;
    if (alpha < 1.0) {
        if (smoothedAccess.empty()) {
            smoothedAccess = in.access;
            smoothedCurves = in.missCurves;
        } else {
            for (std::size_t t = 0; t < in.access.size(); t++) {
                for (std::size_t d = 0; d < in.access[t].size(); d++) {
                    smoothedAccess[t][d] = alpha * in.access[t][d] +
                        (1.0 - alpha) * smoothedAccess[t][d];
                }
            }
            for (std::size_t d = 0; d < in.missCurves.size(); d++) {
                // Same monitor geometry each epoch: identical x grid.
                Curve blended;
                const auto &cur = in.missCurves[d].samples();
                const auto &old_curve = smoothedCurves[d].samples();
                for (std::size_t i = 0; i < cur.size(); i++) {
                    const double prev_y = i < old_curve.size()
                        ? old_curve[i].y : cur[i].y;
                    blended.addPoint(cur[i].x,
                                     alpha * cur[i].y +
                                         (1.0 - alpha) * prev_y);
                }
                smoothedCurves[d] = blended;
            }
            in.access = smoothedAccess;
            in.missCurves = smoothedCurves;
        }
    }
    in.threadCore = threadCore;
    in.hopCycles = static_cast<double>(cfg.noc.routerCycles +
                                       cfg.noc.linkCycles);
    in.bankAccessCycles = static_cast<double>(cfg.bankLatency);
    in.memAccessCycles = static_cast<double>(cfg.memLatency);

    // Placement cost oracle: snapshot the network model's current
    // per-route waits, EWMA-damped like the other runtime inputs
    // (placement feeds back into the waits it is priced on). The
    // wait snapshot is damped at half the monitor smoothing: with
    // request/response legs split over directed links each direction
    // carries half the flits, so per-epoch utilization estimates are
    // noisier than the monitor inputs, and the thread- and
    // data-placement steps react to the same signal — measured, the
    // loop oscillates at the monitor alpha and converges at half.
    // placementCost=zero-load pins the flat hop arithmetic instead —
    // the contention studies' control arm.
    placementCost = cfg.placementCost == "zero-load"
        ? PlacementCostModel(platform.mesh, in.hopCycles)
        : PlacementCostModel::fromNoc(*platform.noc, in.hopCycles,
                                      &placementCost,
                                      0.5 * cfg.monitorSmoothing);
    in.costModel = &placementCost;
    return in;
}

void
EpochController::applyDirective(const EpochDirective &directive)
{
    if (!directive.reconfigured)
        return;
    StatRegistry::add(kRuntimeReconfigs);
    StatRegistry::add(kRuntimeMovedLines,
                      directive.movedLines +
                          directive.invalidatedLines);
    stats.reconfigs++;
    stats.timeSums.allocUs += directive.times.allocUs;
    stats.timeSums.threadPlaceUs += directive.times.threadPlaceUs;
    stats.timeSums.dataPlaceUs += directive.times.dataPlaceUs;
    stats.instantMoved += directive.movedLines;
    stats.bulkInvalidated += directive.invalidatedLines;
    lastMovedLines = directive.movedLines + directive.invalidatedLines;
    if (!directive.newThreadCore.empty()) {
        const int moves_before = lastPlacementMoves;
        for (std::size_t t = 0;
             t < directive.newThreadCore.size() &&
             t < threadCore.size();
             t++) {
            if (directive.newThreadCore[t] != threadCore[t])
                lastPlacementMoves++;
        }
        StatRegistry::add(
            kRuntimePlaceMoves,
            static_cast<std::uint64_t>(lastPlacementMoves -
                                       moves_before));
        threadCore = directive.newThreadCore;
    }
    if (directive.pauseCycles > 0) {
        for (ThreadId t = 0;
             t < static_cast<ThreadId>(path.clocks.size()); t++) {
            // Departed tenants' frozen clocks don't pay reconfig
            // pauses (all threads active on the static path).
            if (!mix.threadActive(t))
                continue;
            path.clocks[t].addPause(
                static_cast<double>(directive.pauseCycles));
        }
        stats.pausedCycles += directive.pauseCycles;
    }
}

int
EpochController::applyChurn(int epoch)
{
    TrafficSchedule *traffic = mix.traffic();
    if (traffic == nullptr)
        return 0;
    std::vector<int> active_ids;
    for (ThreadId t = 0; t < mix.numThreads(); t++) {
        if (mix.threadActive(t))
            active_ids.push_back(t);
    }
    const ChurnActions acts = traffic->actionsAt(epoch, active_ids);
    for (int t : acts.depart) {
        mix.setThreadActive(static_cast<ThreadId>(t), false);
        // Free the departing tenant's demand: its access row zeroes
        // out, so the next reconfiguration sees no footprint behind
        // its VCs and the allocator reclaims their capacity.
        std::fill(path.accessMatrix[static_cast<std::size_t>(t)]
                      .begin(),
                  path.accessMatrix[static_cast<std::size_t>(t)]
                      .end(),
                  0.0);
    }
    for (int t : acts.arrive)
        mix.setThreadActive(static_cast<ThreadId>(t), true);
    const int delta = static_cast<int>(acts.arrive.size()) -
        static_cast<int>(acts.depart.size());
    if (delta != 0) {
        // Drop the EWMA history: blending the new tenant set's
        // monitors with the old one's would damp exactly the signal
        // the post-churn reconfigurations need. Arrivals need no
        // explicit spin-up — their per-VC monitors exist for the
        // whole run and fill with counts from the next epoch on,
        // entering the next placement round automatically.
        smoothedCurves.clear();
        smoothedAccess.clear();
    }
    return delta;
}

void
EpochController::runEpochs()
{
    const int num_threads = mix.numThreads();
    TrafficSchedule *traffic = mix.traffic();
    // The epoch trace is recorded for dynamic traffic (as always) and
    // whenever a `stats=` selection wants per-epoch registry deltas.
    const bool stats_on = !statSel.empty();
    const bool record = traffic != nullptr || stats_on;
    if (stats_on)
        statBase = StatRegistry::localSnapshot();
    for (int epoch = 0; epoch < cfg.epochs; epoch++) {
        if (Tracer::enabled())
            Tracer::instant("epoch " + std::to_string(epoch));
        int churn_delta = 0;
        if (traffic != nullptr) {
            churn_delta = applyChurn(epoch);
            traffic->epochBoundary(epoch);
        }
        if (record) {
            lastPlacementMoves = 0;
            lastMovedLines = 0;
            epochStartInstr.resize(
                static_cast<std::size_t>(num_threads));
            epochStartCycles.resize(
                static_cast<std::size_t>(num_threads));
            for (ThreadId t = 0; t < num_threads; t++) {
                epochStartInstr[t] = path.clocks[t].instructions();
                epochStartCycles[t] = path.clocks[t].cycleCount();
            }
        }
        if (epoch == cfg.warmupEpochs) {
            // Warmup boundary: reset measured statistics, keep all
            // microarchitectural state warm (including the NoC's
            // contention estimate).
            stats = RunStats{};
            platform.noc->clearTraffic();
            for (int t = 0; t < num_threads; t++) {
                instrOffset[t] = path.clocks[t].instructions();
                cycleOffset[t] = path.clocks[t].cycleCount();
            }
        }

        std::uint64_t issued = 0;
        {
            // Timing only: the access phase (NoC wait queries nest
            // inside it and are reported as a share of it).
            ProfTimer access_timer(ProfPhase::Access);
            while (issued < cfg.accessesPerThreadEpoch) {
                const auto n = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(
                        cfg.chunkAccesses,
                        cfg.accessesPerThreadEpoch - issued));
                const double before = path.meanActiveCycles();
                path.beginChunk();
                for (ThreadId t = 0; t < num_threads; t++) {
                    if (traffic != nullptr && !mix.threadActive(t))
                        continue;
                    for (std::uint32_t i = 0; i < n; i++)
                        path.issueAccess(t);
                }
                issued += n;
                const double after = path.meanActiveCycles();
                path.endChunk(before, after);

                const double elapsed =
                    std::max(0.0, after - reconfigStartMean);
                stats.bgInvalidated += platform.policy->advanceWalk(
                    static_cast<Cycles>(elapsed), platform.banks);
            }
        }

        if (epoch + 1 < cfg.epochs) {
            // Timing only: the epoch-boundary runtime (NoC refresh,
            // monitor gathering, the CDCS reconfiguration solve).
            ProfTimer reconfig_timer(ProfPhase::Reconfig);
            // Refresh the network model's contention state from this
            // epoch's measured link loads (no-op for zero-load),
            // then let the memory placement policy rebalance pages
            // on the fresh waits (no-op for the static policies).
            const double epoch_mean = path.meanActiveCycles();
            // Clamped: churn can move the active-thread mean
            // backwards (the mean is over active threads only).
            const double noc_elapsed =
                std::max(0.0, epoch_mean - nocEpochStartMean);
            platform.noc->epochUpdate(noc_elapsed);
            platform.memPlacement->epochUpdate(*platform.noc,
                                               noc_elapsed);
            // Tier migration rides the same boundary, right after
            // the controller rebalance, so promotions see the page
            // pins the placement policy just settled on; each move's
            // flits are charged through both tiers' attach links.
            if (platform.tiering != nullptr) {
                platform.tiering->epochUpdate(*platform.noc,
                                              noc_elapsed);
            }
            nocEpochStartMean = epoch_mean;

            RuntimeInput input = gatherRuntimeInput();
            const EpochDirective directive =
                platform.policy->endEpoch(input, platform.banks);
            applyDirective(directive);
            for (auto &mon : platform.monitors)
                mon->clearCounters();
            for (auto &row : path.accessMatrix)
                std::fill(row.begin(), row.end(), 0.0);
            reconfigStartMean = path.meanActiveCycles();
        }

        if (record) {
            EpochRecord rec;
            rec.epoch = epoch;
            rec.activeThreads = mix.numActiveThreads();
            rec.churnDelta = churn_delta;
            double d_instr = 0.0, d_cycles = 0.0;
            int n_active = 0;
            for (ThreadId t = 0; t < num_threads; t++) {
                if (!mix.threadActive(t))
                    continue;
                d_instr +=
                    path.clocks[t].instructions() - epochStartInstr[t];
                d_cycles +=
                    path.clocks[t].cycleCount() - epochStartCycles[t];
                n_active++;
            }
            if (n_active > 0 && d_cycles > 0.0)
                rec.aggIpc = d_instr / (d_cycles / n_active);
            rec.placementMoves = lastPlacementMoves;
            rec.movedLines = lastMovedLines;
            if (stats_on &&
                epoch % cfg.statsEvery == cfg.statsEvery - 1) {
                // Deltas of this thread's shard since the previous
                // sampled epoch: everything this run bumped, nothing
                // a concurrently-simulating worker did.
                const auto snap = StatRegistry::localSnapshot();
                rec.stats.reserve(statSel.size());
                for (StatId id : statSel)
                    rec.stats.push_back(snap[id] - statBase[id]);
                statBase = snap;
            }
            trace.push_back(rec);
        }
    }
}

RunResult
EpochController::assemble() const
{
    const int num_threads = mix.numThreads();
    RunResult res;
    res.threadInstrs.resize(num_threads);
    res.threadCycles.resize(num_threads);
    res.threadIpc.resize(num_threads);
    for (int t = 0; t < num_threads; t++) {
        res.threadInstrs[t] =
            path.clocks[t].instructions() - instrOffset[t];
        res.threadCycles[t] =
            path.clocks[t].cycleCount() - cycleOffset[t];
        res.threadIpc[t] = res.threadCycles[t] > 0.0
            ? res.threadInstrs[t] / res.threadCycles[t] : 0.0;
        res.totalInstrs += res.threadInstrs[t];
        res.wallCycles = std::max(res.wallCycles, res.threadCycles[t]);
    }
    for (ProcId p = 0; p < mix.numProcesses(); p++) {
        const ProcessCtx &proc = mix.process(p);
        double instrs = 0.0, max_cycles = 0.0;
        for (ThreadId t : proc.threads) {
            instrs += res.threadInstrs[t];
            max_cycles = std::max(max_cycles, res.threadCycles[t]);
        }
        res.procThroughput.push_back(
            max_cycles > 0.0 ? instrs / max_cycles : 0.0);
    }

    res.llcAccesses = stats.llcAccesses;
    res.llcHits = stats.llcHits;
    res.demandMoves = stats.demandMoves;
    res.moveProbes = stats.moveProbes;
    res.memAccesses = stats.memAccesses;
    res.farMemAccesses = stats.farMemAccesses;
    res.instantMoved = stats.instantMoved;
    res.bulkInvalidated = stats.bulkInvalidated;
    res.bgInvalidated = stats.bgInvalidated;
    res.pausedCycles = stats.pausedCycles;
    res.reconfigs = stats.reconfigs;
    if (stats.reconfigs > 0) {
        res.avgTimes.allocUs =
            stats.timeSums.allocUs / stats.reconfigs;
        res.avgTimes.threadPlaceUs =
            stats.timeSums.threadPlaceUs / stats.reconfigs;
        res.avgTimes.dataPlaceUs =
            stats.timeSums.dataPlaceUs / stats.reconfigs;
    }
    res.onChipLatSum = stats.onChipLatSum;
    res.offChipLatSum = stats.offChipLatSum;
    res.farOffChipLatSum = stats.farOffChipLatSum;
    for (std::size_t c = 0; c < res.trafficFlitHops.size(); c++) {
        res.trafficFlitHops[c] =
            platform.noc->trafficFlitHops(static_cast<TrafficClass>(c));
    }
    res.nocLinks = platform.noc->linkStats();
    res.memMigratedPages = platform.memPlacement->migratedPages();
    if (platform.tiering != nullptr) {
        res.memMigratedPages += platform.tiering->migratedPages();
        res.tierPromotions = platform.tiering->promotions();
        res.tierDemotions = platform.tiering->demotions();
        res.farResidentPages = platform.tiering->farResidentPages();
        res.tieredPages = platform.tiering->trackedPages();
    }

    // Static energy accrues over the mean per-thread runtime: in the
    // fixed-work methodology threads retire their work at different
    // times and finished cores clock-gate.
    double mean_cycles = 0.0;
    for (double c : res.threadCycles)
        mean_cycles += c;
    if (!res.threadCycles.empty())
        mean_cycles /= static_cast<double>(res.threadCycles.size());
    const EnergyModel energy_model;
    res.energy = energy_model.evaluate(
        res.totalInstrs,
        static_cast<double>(res.llcAccesses + res.moveProbes),
        static_cast<double>(platform.noc->totalFlitHops()),
        static_cast<double>(res.memAccesses), mean_cycles);

    res.memCtrlAccesses = stats.memCtrlAccesses;
    res.memCtrlAccesses.resize(
        static_cast<std::size_t>(platform.mesh.numMemCtrls()), 0);
    res.epochTrace = trace;
    res.statNames = statNames;

    if (cfg.traceIpc) {
        res.ipcBinCycles = cfg.traceBinCycles;
        res.ipcTrace.reserve(path.ipcBins.size());
        for (double instrs : path.ipcBins)
            res.ipcTrace.push_back(instrs / cfg.traceBinCycles);
    }
    return res;
}

} // namespace cdcs
