/**
 * @file
 * Derived elasticity metrics over the dynamic-traffic epoch trace:
 * how long after a churn event the system takes to recover its
 * per-thread throughput and to stop re-placing threads, plus the
 * per-controller memory load imbalance the skew studies report.
 */

#include "sim/run_result.hh"

#include <algorithm>

namespace cdcs
{

namespace
{

/**
 * The trace window a churn event is judged in: [event, next churn
 * event or end of trace). Returns indices into `trace`; first == -1
 * when the event epoch is not in the trace.
 */
std::pair<int, int>
eventWindow(const std::vector<EpochRecord> &trace, int event_epoch)
{
    int first = -1;
    int last = -1;
    for (std::size_t i = 0; i < trace.size(); i++) {
        const EpochRecord &rec = trace[i];
        if (rec.epoch < event_epoch)
            continue;
        if (first < 0 && rec.epoch == event_epoch)
            first = static_cast<int>(i);
        if (first < 0)
            break; // Event epoch absent from the trace.
        if (rec.epoch > event_epoch && rec.churnDelta != 0)
            break; // Next churn event starts a new window.
        last = static_cast<int>(i);
    }
    return {first, last};
}

} // namespace

double
RunResult::memCtrlImbalance() const
{
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (std::uint64_t n : memCtrlAccesses) {
        total += n;
        peak = std::max(peak, n);
    }
    if (total == 0 || memCtrlAccesses.empty())
        return 0.0;
    const double mean_load = static_cast<double>(total) /
        static_cast<double>(memCtrlAccesses.size());
    return static_cast<double>(peak) / mean_load;
}

double
RunResult::perThreadIpc(int epoch) const
{
    for (const EpochRecord &rec : epochTrace) {
        if (rec.epoch == epoch) {
            return rec.activeThreads > 0
                ? rec.aggIpc / rec.activeThreads
                : 0.0;
        }
    }
    return 0.0;
}

int
RunResult::recoveryEpochsAfter(int event_epoch,
                               double threshold) const
{
    const auto [first, last] = eventWindow(epochTrace, event_epoch);
    if (first < 0)
        return -1;
    const EpochRecord &settled =
        epochTrace[static_cast<std::size_t>(last)];
    const double target = settled.activeThreads > 0
        ? settled.aggIpc / settled.activeThreads
        : 0.0;
    if (target <= 0.0)
        return -1;
    for (int i = first; i <= last; i++) {
        const EpochRecord &rec =
            epochTrace[static_cast<std::size_t>(i)];
        const double ipc = rec.activeThreads > 0
            ? rec.aggIpc / rec.activeThreads
            : 0.0;
        if (ipc >= threshold * target)
            return rec.epoch - event_epoch;
    }
    return -1;
}

int
RunResult::reconfigLatencyAfter(int event_epoch) const
{
    const auto [first, last] = eventWindow(epochTrace, event_epoch);
    if (first < 0)
        return -1;
    int latency = 0;
    for (int i = first; i <= last; i++) {
        const EpochRecord &rec =
            epochTrace[static_cast<std::size_t>(i)];
        if (rec.placementMoves > 0)
            latency = rec.epoch - event_epoch + 1;
    }
    return latency;
}

std::vector<int>
RunResult::churnEpochs() const
{
    std::vector<int> epochs;
    for (const EpochRecord &rec : epochTrace) {
        if (rec.churnDelta != 0)
            epochs.push_back(rec.epoch);
    }
    return epochs;
}

} // namespace cdcs
