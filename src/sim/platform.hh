/**
 * @file
 * Platform construction layer: builds the simulated hardware for one
 * run — the mesh NoC, the partitioned LLC banks, the per-VC monitors,
 * the reconfiguration runtime and the NUCA policy — plus the initial
 * (static) thread schedule. Pure construction; the per-access and
 * per-epoch dynamics live in AccessPath and EpochController.
 */

#ifndef CDCS_SIM_PLATFORM_HH
#define CDCS_SIM_PLATFORM_HH

#include <memory>
#include <vector>

#include "cache/partitioned_bank.hh"
#include "mem/mem_placement.hh"
#include "mem/mem_tiering.hh"
#include "mesh/mesh.hh"
#include "monitor/sampled_monitor.hh"
#include "net/noc_model.hh"
#include "nuca/policy.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/system_config.hh"

namespace cdcs
{

class WorkloadMix;

/** The hardware of one simulated system. */
class Platform
{
  public:
    /**
     * Build the platform for `spec` running `mix` (the mix is only
     * inspected for thread/VC wiring; the platform keeps no reference
     * to it).
     */
    Platform(const SystemConfig &cfg, const SchemeSpec &spec,
             const WorkloadMix &mix);

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    int
    numBanks() const
    {
        return static_cast<int>(banks.size());
    }

    Mesh mesh;
    /// Network model (cfg.nocModel via the NocRegistry); owns the
    /// run's traffic counters and any contention state.
    std::unique_ptr<NocModel> noc;
    /// Page-to-controller placement (cfg.effectiveMemPlacement() via
    /// the MemPlacementRegistry); owns the page map and any
    /// per-controller load accounting.
    std::unique_ptr<MemPlacementPolicy> memPlacement;
    /// Capacity-tiering policy (cfg.memTiering via the
    /// MemTieringRegistry), attached to memPlacement; nullptr when no
    /// far tier is configured (cfg.hasFarTier() == false).
    std::unique_ptr<MemTieringPolicy> tiering;
    std::vector<PartitionedBank> banks;
    /// Per-VC monitors; empty for schemes that don't want them.
    std::vector<std::unique_ptr<SampledMonitor>> monitors;
    /// Owning pointer; referenced by `policy` when partitioned.
    std::unique_ptr<ReconfigRuntime> runtime;
    std::unique_ptr<NucaPolicy> policy;
    /// Thread-to-core map from the initial (static) scheduler.
    std::vector<TileId> initialPlacement;
};

} // namespace cdcs

#endif // CDCS_SIM_PLATFORM_HH
