/**
 * @file
 * Per-event energy model standing in for McPAT 1.1 at 22 nm + Micron
 * DDR3L (Sec. V): a constants table applied to event counts. Only the
 * relative composition matters for the Fig. 11e breakdown; constants
 * are typical published values for a Silvermont-class 64-core CMP and
 * are documented in EXPERIMENTS.md.
 */

#ifndef CDCS_SIM_ENERGY_HH
#define CDCS_SIM_ENERGY_HH

#include <cstdint>

namespace cdcs
{

/** Energy totals by component, in joules. */
struct EnergyBreakdown
{
    double staticE = 0.0;   ///< Chip + DRAM static/leakage.
    double core = 0.0;      ///< Core dynamic (incl. L1/L2).
    double net = 0.0;       ///< NoC dynamic.
    double llc = 0.0;       ///< LLC bank accesses + monitors.
    double mem = 0.0;       ///< DRAM dynamic.

    double
    total() const
    {
        return staticE + core + net + llc + mem;
    }
};

/** Energy constants and evaluation. */
struct EnergyModel
{
    double coreDynPerInstr = 0.18e-9;   ///< J per instruction.
    double llcPerAccess = 0.45e-9;      ///< J per bank access.
    double nocPerFlitHop = 0.06e-9;     ///< J per flit-hop.
    double memPerAccess = 22.0e-9;      ///< J per 64 B DRAM access.
    double staticChipWatts = 22.0;
    double staticDramWatts = 8.0;
    double frequencyHz = 2.0e9;

    /**
     * Evaluate the breakdown from event counts.
     *
     * @param instrs Instructions retired.
     * @param llc_accesses LLC bank lookups (incl. move probes).
     * @param flit_hops NoC flit-hops.
     * @param mem_accesses DRAM line transfers.
     * @param wall_cycles Longest per-thread cycle count.
     */
    EnergyBreakdown
    evaluate(double instrs, double llc_accesses, double flit_hops,
             double mem_accesses, double wall_cycles) const
    {
        EnergyBreakdown e;
        e.core = coreDynPerInstr * instrs;
        e.llc = llcPerAccess * llc_accesses;
        e.net = nocPerFlitHop * flit_hops;
        e.mem = memPerAccess * mem_accesses;
        e.staticE = (staticChipWatts + staticDramWatts) *
            (wall_cycles / frequencyHz);
        return e;
    }
};

} // namespace cdcs

#endif // CDCS_SIM_ENERGY_HH
