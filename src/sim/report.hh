/**
 * @file
 * Output layer of the study API. A ReportSink receives everything a
 * study produces — the free-form text stream the legacy harnesses
 * printed, plus structured artifacts (sweeps, per-run IPC traces,
 * chip maps) — so one study body can render as plain text
 * (byte-identical to the legacy benches), a JSON document, or CSV
 * summary rows, and can export per-run artifacts as JSON files.
 *
 * The write* helpers are the old bench_util.hh printers, rendering
 * through a sink with the exact legacy formats.
 */

#ifndef CDCS_SIM_REPORT_HH
#define CDCS_SIM_REPORT_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment_runner.hh"

namespace cdcs
{

class System;
struct StudySpec;

/**
 * A captured Fig. 1 / Fig. 16b style placement map: per tile, the
 * thread running there and the process whose data dominates the
 * tile's bank(s).
 */
struct ChipMap
{
    int width = 0;
    int height = 0;
    std::vector<std::string> threadLabel; ///< Per tile; "--" idle.
    std::vector<std::string> dataLabel;   ///< Per tile; ".." none.

    std::string toJson() const;
};

/** Capture the placement map of a finished run. */
ChipMap captureChipMap(const System &system);

/**
 * A captured link-load heatmap: the per-link NoC traffic of one run
 * under a link-tracking network model (noc=contention), rendered like
 * the chip maps and exported for tools/plot_noc_heatmap.py.
 */
struct NocHeatmap
{
    int width = 0;
    int height = 0;
    std::vector<NocLinkStat> links;

    std::string toJson() const;
};

/** Build the heatmap of a finished run (empty under zero-load). */
NocHeatmap makeNocHeatmap(int width, int height, const RunResult &run);

/**
 * Per-study wall time and phase breakdown, gathered from the phase
 * profiler (`--set timing=1` / CDCS_TIMING). Phase times are summed
 * across worker threads, so their total can exceed the wall time on
 * parallel runs; nocQuerySec nests inside accessSec.
 */
struct StudyTiming
{
    double wallSec = 0.0;
    double accessSec = 0.0;    ///< The access path (issueAccess).
    double nocQuerySec = 0.0;  ///< NoC wait queries (inside access).
    double reconfigSec = 0.0;  ///< Epoch-boundary runtime reconfig.
    double cacheIoSec = 0.0;   ///< Persistent result-store I/O.

    // Work-stealing pool counters over the same window (all zero on
    // serial runs, where the pool never spawns workers).
    std::uint64_t poolSteals = 0;   ///< Cross-deque task takes.
    std::uint64_t poolWakeups = 0;  ///< Submissions that woke sleepers.
    double poolIdleSec = 0.0;       ///< Worker time parked on the cv.
};

/** Where study output goes; default implementations discard. */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;

    /** Free-form preformatted text (the legacy printf stream). */
    virtual void text(std::string_view s) { (void)s; }

    /** printf-style convenience wrapper over text(). */
    void printf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    virtual void flush() {}

    virtual void beginStudy(const StudySpec &spec) { (void)spec; }
    virtual void endStudy(const StudySpec &spec) { (void)spec; }
    /** Emitted once per run batch/document (sink lifetime). */
    virtual void finish() {}

    /**
     * A completed scheme x mix sweep. Non-virtual template method:
     * dispatches to the sink's onSweep() rendering, then auto-exports
     * a metrics_trace_* artifact for every scheme whose mix-0 run
     * sampled registry stats (`stats=` active), so every sink flavor
     * gets the metrics traces without reimplementing the export.
     */
    void sweep(const std::string &name, const SweepResult &result);

    /** A per-run IPC trace (Fig. 17). */
    virtual void
    trace(const std::string &name, const RunResult &run)
    {
        (void)name;
        (void)run;
    }

    /** A captured placement map (Fig. 1 / Fig. 16b). */
    virtual void
    chipMap(const std::string &name, const ChipMap &map)
    {
        (void)name;
        (void)map;
    }

    /** A captured link-load heatmap (noc_heatmap). */
    virtual void
    nocHeatmap(const std::string &name, const NocHeatmap &map)
    {
        (void)name;
        (void)map;
    }

    /**
     * A free-form structured artifact: `json` must be a complete
     * JSON value. Text/CSV sinks export it as a <name>.json file
     * (when a json_dir is configured); the JSON sink embeds it in
     * the document. For study-specific payloads (e.g. the
     * elasticity study's churn traces) that don't fit the typed
     * channels above.
     */
    virtual void
    artifact(const std::string &name, const std::string &json)
    {
        (void)name;
        (void)json;
    }

    /**
     * A study's phase-timing footer (emitted by runStudy only under
     * `--set timing=1`). The default implementation renders the text
     * footer through text(), so text-flavored sinks inherit it.
     */
    virtual void timing(const std::string &study,
                        const StudyTiming &t);

  protected:
    /** Sink-specific sweep rendering (see sweep()). */
    virtual void
    onSweep(const std::string &name, const SweepResult &result)
    {
        (void)name;
        (void)result;
    }
};

/**
 * Text rendering to a FILE*, byte-identical to the legacy benches.
 * When `json_dir` is non-empty, structured artifacts additionally
 * land there as <name>.json files with a "[json: path]" marker line
 * (the old CDCS_JSON_DIR behavior, now covering traces and chip maps
 * too).
 */
class TextReportSink : public ReportSink
{
  public:
    explicit TextReportSink(std::FILE *out = stdout,
                            std::string json_dir = "");

    void text(std::string_view s) override;
    void flush() override;
    void onSweep(const std::string &name,
                 const SweepResult &result) override;
    void trace(const std::string &name,
               const RunResult &run) override;
    void chipMap(const std::string &name,
                 const ChipMap &map) override;
    void nocHeatmap(const std::string &name,
                    const NocHeatmap &map) override;
    void artifact(const std::string &name,
                  const std::string &json) override;

  private:
    void exportArtifact(const std::string &name,
                        const std::string &json);

    std::FILE *out;
    std::string jsonDir;
};

/** Text capture into a string (tests, golden comparisons). */
class StringReportSink : public ReportSink
{
  public:
    void text(std::string_view s) override { captured += s; }
    const std::string &str() const { return captured; }
    void clear() { captured.clear(); }

  private:
    std::string captured;
};

/**
 * One JSON document per batch: studies with their sweeps, traces and
 * chip maps; the free-form text stream is dropped. Written to `out`
 * by finish(). A non-empty `json_dir` additionally writes each
 * artifact as a <name>.json file (silently: stdout carries the
 * document).
 */
class JsonReportSink : public ReportSink
{
  public:
    explicit JsonReportSink(std::FILE *out = stdout,
                            std::string json_dir = "");

    void beginStudy(const StudySpec &spec) override;
    void onSweep(const std::string &name,
                 const SweepResult &result) override;
    void trace(const std::string &name,
               const RunResult &run) override;
    void chipMap(const std::string &name,
                 const ChipMap &map) override;
    void nocHeatmap(const std::string &name,
                    const NocHeatmap &map) override;
    void artifact(const std::string &name,
                  const std::string &json) override;
    void timing(const std::string &study,
                const StudyTiming &t) override;
    void finish() override;

  private:
    std::FILE *out;
    std::string jsonDir;
    std::string doc;
    bool anyStudy = false;
    bool anyArtifact = false;
};

/**
 * CSV summary rows, one per (sweep, scheme): gmean/max weighted
 * speedup plus the latency/traffic/energy aggregates. The free-form
 * text stream is dropped; a non-empty `json_dir` still exports every
 * structured artifact as a <name>.json file.
 */
class CsvReportSink : public ReportSink
{
  public:
    explicit CsvReportSink(std::FILE *out = stdout,
                           std::string json_dir = "");

    void beginStudy(const StudySpec &spec) override;
    void onSweep(const std::string &name,
                 const SweepResult &result) override;
    void trace(const std::string &name,
               const RunResult &run) override;
    void chipMap(const std::string &name,
                 const ChipMap &map) override;
    void nocHeatmap(const std::string &name,
                    const NocHeatmap &map) override;
    void artifact(const std::string &name,
                  const std::string &json) override;
    /** CSV rows carry no timing; the footer is dropped. */
    void
    timing(const std::string &study, const StudyTiming &t) override
    {
        (void)study;
        (void)t;
    }
    void finish() override;

  private:
    std::FILE *out;
    std::string jsonDir;
    std::string currentStudy;
    bool wroteHeader = false;
};

/** Serialize a per-run IPC trace (Fig. 17) as JSON. */
std::string traceToJson(const std::string &name, const RunResult &run);

/**
 * Serialize a run's per-epoch metrics trace (schema
 * "cdcs-metrics-trace-v1"): the EpochRecord stream plus the sampled
 * StatRegistry columns (when the run had a `stats=` selection).
 * `extra_fields` is injected verbatim after the scheme field — a
 * study can add its own top-level keys (e.g. the elasticity study's
 * churn-event epochs) as `"key": value, ` pairs.
 */
std::string metricsTraceJson(const std::string &scheme,
                             const RunResult &run,
                             const std::string &extra_fields = "");

// ------------------------------------------------------------------
// The legacy bench_util.hh printers, rendering through a sink.

/** The per-mix weighted speedups as inverse CDF rows. */
void writeInverseCdf(ReportSink &sink, const SweepResult &sweep);

/** gmean / max weighted speedups per scheme. */
void writeWsSummary(ReportSink &sink, const SweepResult &sweep);

/**
 * Per-scheme far-memory tier counters (mix-0 exemplar runs): far
 * access share, resident far pages, promotions/demotions. Prints
 * nothing when no scheme ran with a far tier, so studies can call it
 * unconditionally without perturbing tier-less output.
 */
void writeTierSummary(ReportSink &sink, const SweepResult &sweep);

/** On-/off-chip latency and traffic/energy vs. the last scheme. */
void writeBreakdowns(ReportSink &sink, const SweepResult &sweep);

/** The ASCII chip-map rendering (Fig. 1 / Fig. 16b). */
void writeChipMap(ReportSink &sink, const ChipMap &map);

/**
 * The ASCII link-load rendering: per-tile outgoing load as % of the
 * hottest tile, plus the hottest individual links.
 */
void writeNocHeatmap(ReportSink &sink, const NocHeatmap &map);

/** The reproducibility header every study emits. */
void writeStudyHeader(ReportSink &sink, const char *title,
                      const char *paper_ref, const SystemConfig &cfg,
                      int mixes);

} // namespace cdcs

#endif // CDCS_SIM_REPORT_HH
