/**
 * @file
 * String-keyed registry of the NUCA schemes under test, so studies
 * and the `cdcs_studies` CLI can name their lineups declaratively
 * ("snuca", "jigsaw-r", "cdcs", "jigsaw+ltd", ...) instead of
 * hand-wiring SchemeSpec factories. Lookup also resolves a built
 * spec's display name ("S-NUCA", "Jigsaw+R"), so serialized results
 * round-trip back to specs.
 */

#ifndef CDCS_SIM_SCHEME_REGISTRY_HH
#define CDCS_SIM_SCHEME_REGISTRY_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/system_config.hh"

namespace cdcs
{

/** Process-wide name -> SchemeSpec factory map. */
class SchemeRegistry
{
  public:
    /** The registry, with the built-in schemes pre-registered. */
    static SchemeRegistry &instance();

    /**
     * Register a scheme under a unique key (conventionally lowercase
     * CLI-friendly, e.g. "cdcs-bank"). Panics on duplicates.
     */
    void add(const std::string &name,
             std::function<SchemeSpec()> make);

    /**
     * Build the scheme registered under `name`; falls back to
     * matching registered specs' display names. Returns false when
     * nothing matches.
     */
    bool build(const std::string &name, SchemeSpec *out) const;

    bool contains(const std::string &name) const;

    /** Registered keys, sorted. */
    std::vector<std::string> names() const;

  private:
    SchemeRegistry();

    std::map<std::string, std::function<SchemeSpec()>> makers;
};

/** Build by name or panic listing the registered schemes. */
SchemeSpec schemeByName(const std::string &name);

/** Build a lineup by name, preserving order. */
std::vector<SchemeSpec>
schemesByName(const std::vector<std::string> &names);

} // namespace cdcs

#endif // CDCS_SIM_SCHEME_REGISTRY_HH
