#include "sim/overrides.hh"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/log.hh"
#include "mem/mem_placement_registry.hh"
#include "mem/mem_tiering_registry.hh"
#include "net/noc_registry.hh"
#include "workload/traffic.hh"

namespace cdcs
{

namespace
{

bool
parseBool(const std::string &text, bool *out)
{
    if (text == "1" || text == "true" || text == "yes" ||
        text == "on") {
        *out = true;
        return true;
    }
    if (text == "0" || text == "false" || text == "no" ||
        text == "off") {
        *out = false;
        return true;
    }
    return false;
}

/**
 * Parse `entry.value` into the slot `type` selects. Strict: no
 * leading whitespace or stray suffixes (strtoull would otherwise
 * skip whitespace and wrap "-5" to 2^64-5).
 */
bool
parseInto(Override &entry, const char *type)
{
    const std::string &text = entry.value;
    const std::string t = type;
    if (t == "string")
        return true;
    if (text.empty())
        return false;
    const char first = text[0];
    char *end = nullptr;
    if (t == "int") {
        if (!std::isdigit(static_cast<unsigned char>(first)) &&
            first != '-')
            return false;
        entry.i = std::strtoll(text.c_str(), &end, 10);
        return *end == '\0';
    }
    if (t == "uint") {
        if (!std::isdigit(static_cast<unsigned char>(first)))
            return false;
        entry.u = std::strtoull(text.c_str(), &end, 10);
        return *end == '\0';
    }
    if (t == "double") {
        if (!std::isdigit(static_cast<unsigned char>(first)) &&
            first != '-' && first != '+' && first != '.')
            return false;
        entry.d = std::strtod(text.c_str(), &end);
        return *end == '\0';
    }
    if (t == "bool") {
        if (!parseBool(text, &entry.b))
            return false;
        entry.u = entry.b ? 1 : 0;
        return true;
    }
    return false;
}

struct KeyDef
{
    const char *name;
    const char *type;
    /** Null for study knobs (consumed via Overrides::knob). */
    void (*set)(SystemConfig &, const Override &);
    /** Minimum accepted value for int/uint keys. */
    long long min = 0;
};

/**
 * Every overridable SystemConfig field. Key names match the struct
 * fields (EXPERIMENTS.md documents the few renames: epochAccesses,
 * warmup).
 */
const KeyDef configKeys[] = {
    {"meshWidth", "int",
     [](SystemConfig &c, const Override &v) {
         c.meshWidth = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"meshHeight", "int",
     [](SystemConfig &c, const Override &v) {
         c.meshHeight = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"banksPerTile", "int",
     [](SystemConfig &c, const Override &v) {
         c.banksPerTile = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"bankLines", "uint",
     [](SystemConfig &c, const Override &v) { c.bankLines = v.u; },
     /*min=*/1},
    {"bankWays", "uint",
     [](SystemConfig &c, const Override &v) {
         c.bankWays = static_cast<std::uint32_t>(v.u);
     },
     /*min=*/1},
    {"bankLatency", "uint",
     [](SystemConfig &c, const Override &v) { c.bankLatency = v.u; }},
    {"memLatency", "uint",
     [](SystemConfig &c, const Override &v) { c.memLatency = v.u; }},
    {"routerCycles", "uint",
     [](SystemConfig &c, const Override &v) {
         c.noc.routerCycles = v.u;
     }},
    {"linkCycles", "uint",
     [](SystemConfig &c, const Override &v) {
         c.noc.linkCycles = v.u;
     }},
    {"modelMemBandwidth", "bool",
     [](SystemConfig &c, const Override &v) {
         c.modelMemBandwidth = v.b;
     }},
    {"memLinesPerCycle", "double",
     [](SystemConfig &c, const Override &v) {
         c.memLinesPerCycle = v.d;
     }},
    {"memChannels", "int",
     [](SystemConfig &c, const Override &v) {
         c.memChannels = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"numaAwareMem", "bool",
     [](SystemConfig &c, const Override &v) {
         c.numaAwareMem = v.b;
     }},
    {"memPlacement", "string",
     [](SystemConfig &c, const Override &v) {
         c.memPlacement = v.value;
     }},
    {"farMemRatio", "double",
     [](SystemConfig &c, const Override &v) { c.farMemRatio = v.d; }},
    {"farMemLatency", "uint",
     [](SystemConfig &c, const Override &v) {
         c.farMemLatency = v.u;
     }},
    {"farMemChannels", "int",
     [](SystemConfig &c, const Override &v) {
         c.farMemChannels = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"farMemLinesPerCycle", "double",
     [](SystemConfig &c, const Override &v) {
         c.farMemLinesPerCycle = v.d;
     }},
    {"memTiering", "string",
     [](SystemConfig &c, const Override &v) {
         c.memTiering = v.value;
     }},
    {"noc", "string",
     [](SystemConfig &c, const Override &v) {
         c.nocModel = v.value;
     }},
    {"nocInjScale", "double",
     [](SystemConfig &c, const Override &v) {
         c.nocInjScale = v.d;
     }},
    {"nocMaxUtil", "double",
     [](SystemConfig &c, const Override &v) {
         c.nocMaxUtil = v.d;
     }},
    {"placementCost", "string",
     [](SystemConfig &c, const Override &v) {
         c.placementCost = v.value;
     }},
    {"skewAlpha", "double",
     [](SystemConfig &c, const Override &v) { c.skewAlpha = v.d; }},
    {"skewFraction", "double",
     [](SystemConfig &c, const Override &v) {
         c.skewFraction = v.d;
     }},
    {"skewLines", "uint",
     [](SystemConfig &c, const Override &v) { c.skewLines = v.u; },
     /*min=*/1},
    {"skewHotLines", "uint",
     [](SystemConfig &c, const Override &v) {
         c.skewHotLines = v.u;
     },
     /*min=*/1},
    {"skewPageHot", "bool",
     [](SystemConfig &c, const Override &v) {
         c.skewPageHot = v.b;
     }},
    {"skewDriftEpochs", "int",
     [](SystemConfig &c, const Override &v) {
         c.skewDriftEpochs = static_cast<int>(v.i);
     }},
    {"skewDriftFraction", "double",
     [](SystemConfig &c, const Override &v) {
         c.skewDriftFraction = v.d;
     }},
    {"churn", "string",
     [](SystemConfig &c, const Override &v) { c.churn = v.value; }},
    {"epochAccesses", "uint",
     [](SystemConfig &c, const Override &v) {
         c.accessesPerThreadEpoch = v.u;
     }},
    {"epochs", "int",
     [](SystemConfig &c, const Override &v) {
         c.epochs = static_cast<int>(v.i);
     }},
    {"warmup", "int",
     [](SystemConfig &c, const Override &v) {
         c.warmupEpochs = static_cast<int>(v.i);
     }},
    {"chunkAccesses", "uint",
     [](SystemConfig &c, const Override &v) {
         c.chunkAccesses = static_cast<std::uint32_t>(v.u);
     },
     /*min=*/1},
    {"traceIpc", "bool",
     [](SystemConfig &c, const Override &v) { c.traceIpc = v.b; }},
    {"traceBinCycles", "uint",
     [](SystemConfig &c, const Override &v) {
         c.traceBinCycles = v.u;
     },
     /*min=*/1},
    {"seed", "uint",
     [](SystemConfig &c, const Override &v) { c.seed = v.u; }},
    {"stats", "string",
     [](SystemConfig &c, const Override &v) {
         c.statsFilter = v.value;
     }},
    {"statsEvery", "int",
     [](SystemConfig &c, const Override &v) {
         c.statsEvery = static_cast<int>(v.i);
     },
     /*min=*/1},
    {"allocGranuleLines", "double",
     [](SystemConfig &c, const Override &v) {
         c.allocGranuleLines = v.d;
     }},
    {"monitorSmoothing", "double",
     [](SystemConfig &c, const Override &v) {
         c.monitorSmoothing = v.d;
     }},
    {"allocHysteresis", "double",
     [](SystemConfig &c, const Override &v) {
         c.moveCfg.allocHysteresis = v.d;
     }},
    {"walkDelay", "uint",
     [](SystemConfig &c, const Override &v) {
         c.moveCfg.walkDelay = v.u;
     }},
    {"walkCyclesPerSet", "uint",
     [](SystemConfig &c, const Override &v) {
         c.moveCfg.walkCyclesPerSet = v.u;
     }},
    {"bulkCyclesPerSet", "uint",
     [](SystemConfig &c, const Override &v) {
         c.moveCfg.bulkCyclesPerSet = v.u;
     }},
};

/** Study-level knobs (read by runStudy / study bodies via knob()). */
const KeyDef knobKeys[] = {
    {"mixes", "uint", nullptr},       // CDCS_MIXES
    {"workers", "uint", nullptr},     // CDCS_WORKERS
    {"apps", "uint", nullptr},        // CDCS_APPS
    {"saIters", "uint", nullptr},     // CDCS_SA_ITERS
    {"table3Iters", "uint", nullptr}, // CDCS_TABLE3_ITERS
    {"cache", "bool", nullptr},       // CDCS_CACHE
    {"cacheBudget", "uint", nullptr}, // CDCS_CACHE_BUDGET
    {"cacheDir", "string", nullptr},  // CDCS_CACHE_DIR
    {"cacheStats", "bool", nullptr},  // CDCS_CACHE_STATS
    {"timing", "bool", nullptr},      // CDCS_TIMING
    {"trace", "string", nullptr},     // CDCS_TRACE
    {"jsonDir", "string", nullptr},   // CDCS_JSON_DIR
};

const KeyDef *
findKey(const std::string &name)
{
    for (const KeyDef &k : configKeys) {
        if (name == k.name)
            return &k;
    }
    for (const KeyDef &k : knobKeys) {
        if (name == k.name)
            return &k;
    }
    return nullptr;
}

} // anonymous namespace

bool
Overrides::add(const std::string &kv, std::string *err)
{
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (err != nullptr)
            *err = "malformed override '" + kv +
                "' (expected key=value)";
        return false;
    }
    Override entry{kv.substr(0, eq), kv.substr(eq + 1)};
    const KeyDef *def = findKey(entry.key);
    if (def == nullptr) {
        if (err != nullptr)
            *err = "unknown override key '" + entry.key + "'";
        return false;
    }
    if (!parseInto(entry, def->type)) {
        if (err != nullptr)
            *err = "bad value '" + entry.value + "' for " +
                entry.key + " (expected " + def->type + ")";
        return false;
    }
    const std::string t = def->type;
    if ((t == "int" && entry.i < def->min) ||
        (t == "uint" &&
         entry.u < static_cast<std::uint64_t>(def->min))) {
        if (err != nullptr)
            *err = "bad value '" + entry.value + "' for " +
                entry.key + " (minimum " +
                std::to_string(def->min) + ")";
        return false;
    }
    // Keys with constraints the KeyDef table can't express.
    if (entry.key == "noc" &&
        !NocRegistry::instance().contains(entry.value)) {
        if (err != nullptr) {
            *err = "unknown noc model '" + entry.value +
                "' (registered:";
            for (const std::string &n :
                 NocRegistry::instance().names())
                *err += " " + n;
            *err += ")";
        }
        return false;
    }
    if (entry.key == "memPlacement" &&
        !MemPlacementRegistry::instance().contains(entry.value)) {
        if (err != nullptr) {
            *err = "unknown mem placement policy '" + entry.value +
                "' (registered:";
            for (const std::string &n :
                 MemPlacementRegistry::instance().names())
                *err += " " + n;
            *err += ")";
        }
        return false;
    }
    if (entry.key == "memTiering" &&
        !MemTieringRegistry::known(entry.value)) {
        if (err != nullptr) {
            *err = "unknown mem tiering policy '" + entry.value +
                "' (registered:";
            for (const std::string &n : MemTieringRegistry::names())
                *err += " " + n;
            *err += ")";
        }
        return false;
    }
    if ((entry.key == "farMemRatio" &&
         (entry.d < 0.0 || entry.d >= 1.0)) ||
        (entry.key == "farMemLinesPerCycle" && entry.d <= 0.0)) {
        if (err != nullptr)
            *err = "bad value '" + entry.value + "' for " +
                entry.key + " (out of range)";
        return false;
    }
    if (entry.key == "placementCost" && entry.value != "noc" &&
        entry.value != "zero-load") {
        if (err != nullptr)
            *err = "unknown placement cost oracle '" + entry.value +
                "' (expected noc or zero-load)";
        return false;
    }
    if ((entry.key == "nocInjScale" && entry.d <= 0.0) ||
        (entry.key == "nocMaxUtil" &&
         (entry.d <= 0.0 || entry.d >= 1.0))) {
        if (err != nullptr)
            *err = "bad value '" + entry.value + "' for " +
                entry.key + " (out of range)";
        return false;
    }
    if ((entry.key == "skewAlpha" && entry.d < 0.0) ||
        (entry.key == "skewFraction" &&
         (entry.d < 0.0 || entry.d > 1.0)) ||
        (entry.key == "skewDriftFraction" &&
         (entry.d <= 0.0 || entry.d > 1.0))) {
        if (err != nullptr)
            *err = "bad value '" + entry.value + "' for " +
                entry.key + " (out of range)";
        return false;
    }
    if (entry.key == "churn" &&
        !TrafficSchedule::parseChurn(entry.value, nullptr, err)) {
        return false;
    }
    entries.push_back(std::move(entry));
    return true;
}

void
Overrides::apply(SystemConfig &cfg) const
{
    for (const Override &entry : entries) {
        const KeyDef *def = findKey(entry.key);
        cdcs_assert(def != nullptr, "unvalidated override entry");
        if (def->set != nullptr)
            def->set(cfg, entry);
    }
}

const std::string *
Overrides::find(const std::string &key) const
{
    const std::string *found = nullptr;
    for (const Override &entry : entries) {
        if (entry.key == key)
            found = &entry.value; // Last one wins.
    }
    return found;
}

std::uint64_t
Overrides::knob(const char *key, const char *env,
                std::uint64_t fallback) const
{
    const Override *found = nullptr;
    for (const Override &entry : entries) {
        if (entry.key == key)
            found = &entry; // Last one wins.
    }
    if (found != nullptr)
        return found->u; // Bool entries normalized to 0/1 by add().
    if (env != nullptr) {
        const char *value = std::getenv(env);
        if (value != nullptr && *value != '\0')
            return std::strtoull(value, nullptr, 10);
    }
    return fallback;
}

std::string
Overrides::strKnob(const char *key, const char *env,
                   const std::string &fallback) const
{
    if (const std::string *value = find(key))
        return *value;
    if (env != nullptr) {
        const char *value = std::getenv(env);
        if (value != nullptr && *value != '\0')
            return value;
    }
    return fallback;
}

std::vector<std::pair<std::string, std::string>>
Overrides::knownKeys()
{
    std::vector<std::pair<std::string, std::string>> keys;
    for (const KeyDef &k : configKeys)
        keys.emplace_back(k.name, k.type);
    for (const KeyDef &k : knobKeys)
        keys.emplace_back(k.name, k.type);
    return keys;
}

} // namespace cdcs
