#include "sim/experiment.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/stats.hh"

namespace cdcs
{

WorkloadMix
buildMix(const MixSpec &spec)
{
    switch (spec.kind) {
      case MixSpec::Kind::Cpu:
        return WorkloadMix::randomCpuMix(spec.count, spec.seed);
      case MixSpec::Kind::Omp:
        return WorkloadMix::randomOmpMix(spec.count, spec.seed);
      case MixSpec::Kind::Named:
        return WorkloadMix::fromNames(spec.names, spec.seed);
    }
    panic("unknown mix kind");
}

RunResult
runScheme(const SystemConfig &cfg, const SchemeSpec &scheme,
          const MixSpec &mix)
{
    System system(cfg, scheme, buildMix(mix));
    return system.run();
}

double
weightedSpeedup(const RunResult &run, const RunResult &baseline)
{
    cdcs_assert(run.procThroughput.size() ==
                    baseline.procThroughput.size(),
                "weighted speedup needs matching mixes");
    std::vector<double> ratios;
    for (std::size_t p = 0; p < run.procThroughput.size(); p++) {
        if (baseline.procThroughput[p] > 0.0) {
            ratios.push_back(run.procThroughput[p] /
                             baseline.procThroughput[p]);
        }
    }
    // Mid-run departures can zero every process's baseline
    // throughput (an all-departed mix under heavy churn). Such a
    // cell is unmeasurable, not broken: score it a neutral 1.0 so
    // the study-level gmean over mixes stays finite.
    if (ratios.empty())
        return 1.0;
    return mean(ratios);
}

std::vector<RunResult>
runSchemes(const SystemConfig &cfg,
           const std::vector<SchemeSpec> &schemes, const MixSpec &mix)
{
    std::vector<RunResult> results(schemes.size());
    for (std::size_t i = 0; i < schemes.size(); i++)
        results[i] = runScheme(cfg, schemes[i], mix);
    return results;
}

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

SystemConfig
benchConfig()
{
    SystemConfig cfg;
    cfg.accessesPerThreadEpoch = envOr("CDCS_EPOCH_ACCESSES", 40000);
    cfg.epochs = static_cast<int>(envOr("CDCS_EPOCHS", 8));
    cfg.warmupEpochs = static_cast<int>(envOr("CDCS_WARMUP", 4));
    return cfg;
}

} // namespace cdcs
