#include "sim/study.hh"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/json.hh"
#include "common/log.hh"
#include "sim/experiment.hh"

namespace cdcs
{

std::vector<SchemeSpec>
StudyContext::lineup() const
{
    return schemesByName(spec.lineup);
}

std::uint64_t
StudyContext::knob(const char *key, const char *env,
                   std::uint64_t fallback) const
{
    return overrides.knob(key, env, fallback);
}

void
StudyContext::header(int mixes_shown) const
{
    writeStudyHeader(sink, spec.title.c_str(), spec.paperRef.c_str(),
                     cfg, mixes_shown);
}

StudyRegistry &
StudyRegistry::instance()
{
    static StudyRegistry registry;
    return registry;
}

void
StudyRegistry::add(StudySpec spec)
{
    cdcs_assert(!spec.name.empty(), "study without a name");
    cdcs_assert(spec.run != nullptr, "study without a body");
    const std::string name = spec.name;
    const auto inserted = studies.emplace(name, std::move(spec));
    cdcs_assert(inserted.second, "study already registered");
}

const StudySpec *
StudyRegistry::find(const std::string &name) const
{
    const auto it = studies.find(name);
    return it == studies.end() ? nullptr : &it->second;
}

std::vector<const StudySpec *>
StudyRegistry::all() const
{
    std::vector<const StudySpec *> out;
    out.reserve(studies.size());
    for (const auto &[name, spec] : studies)
        out.push_back(&spec); // std::map iteration is name-sorted.
    return out;
}

StudyRegistrar::StudyRegistrar(StudySpec spec)
{
    StudyRegistry::instance().add(std::move(spec));
}

ExperimentRunner::Options
runnerOptions(const Overrides &overrides, bool default_cache)
{
    ExperimentRunner::Options opts;
    opts.workers = static_cast<unsigned>(
        overrides.knob("workers", "CDCS_WORKERS", 0));
    opts.cacheResults =
        overrides.knob("cache", "CDCS_CACHE",
                       default_cache ? 1 : 0) != 0;
    opts.cacheBudget = static_cast<std::size_t>(
        overrides.knob("cacheBudget", "CDCS_CACHE_BUDGET", 1024));
    return opts;
}

int
runStudy(const StudySpec &spec, const Overrides &overrides,
         ExperimentRunner &runner, ReportSink &sink)
{
    // Precedence: defaults < CDCS_* env < spec.configure < --set.
    SystemConfig cfg = benchConfig();
    if (spec.configure)
        spec.configure(cfg);
    overrides.apply(cfg);
    const int mixes = static_cast<int>(overrides.knob(
        "mixes", "CDCS_MIXES",
        static_cast<std::uint64_t>(spec.defaultMixes)));

    StudyContext ctx(spec, cfg, mixes, runner, sink, overrides);
    const ExperimentRunner::CacheStats before = runner.cacheStats();
    sink.beginStudy(spec);
    spec.run(ctx);
    if (runner.options().cacheResults) {
        // The runner (and cache) is shared across the studies of one
        // invocation; report this study's delta, not the lifetime
        // totals. A study that got no hits stays silent, so the
        // cache-by-default for repeated-lineup studies cannot change
        // default text output.
        const ExperimentRunner::CacheStats now = runner.cacheStats();
        if (now.hits > before.hits) {
            sink.printf(
                "[cache: %llu hits, %llu misses, %llu "
                "evictions, %llu entries]\n",
                static_cast<unsigned long long>(now.hits -
                                                before.hits),
                static_cast<unsigned long long>(now.misses -
                                                before.misses),
                static_cast<unsigned long long>(now.evictions -
                                                before.evictions),
                static_cast<unsigned long long>(now.entries));
        }
    }
    sink.endStudy(spec);
    sink.flush();
    return 0;
}

int
studyMain(const char *name)
{
    const StudySpec *spec = StudyRegistry::instance().find(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "unknown study '%s'\n", name);
        return 1;
    }
    const Overrides none;
    ExperimentRunner runner(
        runnerOptions(none, spec->repeatedLineup));
    TextReportSink sink(
        stdout, none.strKnob("jsonDir", "CDCS_JSON_DIR", ""));
    const int rc = runStudy(*spec, none, runner, sink);
    sink.finish();
    return rc;
}

namespace
{

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: cdcs_studies <command> [options]\n"
        "\n"
        "commands:\n"
        "  list [--format=text|json]\n"
        "      enumerate the registered studies\n"
        "  run <study>...|all [--set key=value]... "
        "[--format=text|json|csv]\n"
        "      run studies; text output is byte-identical to the\n"
        "      legacy bench harnesses under default knobs\n"
        "\n"
        "overrides (--set, also settable via CDCS_* env knobs):\n");
    for (const auto &[key, type] : Overrides::knownKeys())
        std::fprintf(out, "  %-20s %s\n", key.c_str(), type.c_str());
    return out == stderr ? 2 : 0;
}

int
listStudies(const std::string &format)
{
    const auto all = StudyRegistry::instance().all();
    if (format == "json") {
        std::string doc = "[\n";
        for (std::size_t i = 0; i < all.size(); i++) {
            const StudySpec &s = *all[i];
            doc += "  {\"name\": " + jsonString(s.name) +
                ", \"category\": " + jsonString(s.category) +
                ", \"title\": " + jsonString(s.title) +
                ", \"paperRef\": " + jsonString(s.paperRef) +
                ", \"defaultMixes\": " +
                std::to_string(s.defaultMixes) + ", \"lineup\": [";
            for (std::size_t l = 0; l < s.lineup.size(); l++) {
                doc += l > 0 ? "," : "";
                doc += jsonString(s.lineup[l]);
            }
            doc += i + 1 < all.size() ? "]},\n" : "]}\n";
        }
        doc += "]\n";
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return 0;
    }
    if (format != "text") {
        std::fprintf(stderr, "unknown list format '%s'\n",
                     format.c_str());
        return 2;
    }
    std::printf("%-22s %-9s %s\n", "study", "category",
                "title (paper ref)");
    for (const StudySpec *s : all) {
        std::printf("%-22s %-9s %s (%s)\n", s->name.c_str(),
                    s->category.c_str(), s->title.c_str(),
                    s->paperRef.c_str());
    }
    return 0;
}

} // anonymous namespace

int
studiesCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(stderr);
    const std::string &cmd = args[0];
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);

    Overrides overrides;
    std::string format = "text";
    std::vector<std::string> names;
    for (std::size_t i = 1; i < args.size(); i++) {
        const std::string &arg = args[i];
        std::string err;
        if (arg == "--set" || arg == "--format") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                return 2;
            }
            if (arg == "--format") {
                format = args[++i];
            } else if (!overrides.add(args[++i], &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--set=", 0) == 0) {
            if (!overrides.add(arg.substr(6), &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(stderr);
        } else {
            names.push_back(arg);
        }
    }

    if (cmd == "list") {
        if (!names.empty() || !overrides.empty()) {
            std::fprintf(stderr, "list takes only --format\n");
            return 2;
        }
        return listStudies(format);
    }
    if (cmd != "run") {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return usage(stderr);
    }
    if (names.empty()) {
        std::fprintf(stderr, "run needs at least one study name "
                             "(or 'all')\n");
        return 2;
    }

    StudyRegistry &registry = StudyRegistry::instance();
    std::vector<const StudySpec *> specs;
    if (names.size() == 1 && names[0] == "all") {
        specs = registry.all();
    } else {
        for (const std::string &name : names) {
            const StudySpec *spec = registry.find(name);
            if (spec == nullptr) {
                std::fprintf(stderr,
                             "unknown study '%s' (try 'cdcs_studies "
                             "list')\n",
                             name.c_str());
                return 2;
            }
            specs.push_back(spec);
        }
    }

    const std::string json_dir =
        overrides.strKnob("jsonDir", "CDCS_JSON_DIR", "");
    std::unique_ptr<ReportSink> sink;
    if (format == "text") {
        sink = std::make_unique<TextReportSink>(stdout, json_dir);
    } else if (format == "json") {
        sink = std::make_unique<JsonReportSink>(stdout, json_dir);
    } else if (format == "csv") {
        sink = std::make_unique<CsvReportSink>(stdout, json_dir);
    } else {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
    }

    // Repeated-lineup studies opt the shared runner into the result
    // cache unless the user said otherwise.
    bool any_repeated = false;
    for (const StudySpec *spec : specs)
        any_repeated = any_repeated || spec->repeatedLineup;
    ExperimentRunner runner(runnerOptions(overrides, any_repeated));
    int rc = 0;
    for (const StudySpec *spec : specs)
        rc |= runStudy(*spec, overrides, runner, *sink);
    sink->finish();
    return rc;
}

} // namespace cdcs
