#include "sim/study.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/json.hh"
#include "common/log.hh"
#include "common/profile.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"

namespace cdcs
{

std::vector<SchemeSpec>
StudyContext::lineup() const
{
    return schemesByName(spec.lineup);
}

std::uint64_t
StudyContext::knob(const char *key, const char *env,
                   std::uint64_t fallback) const
{
    return overrides.knob(key, env, fallback);
}

void
StudyContext::header(int mixes_shown) const
{
    writeStudyHeader(sink, spec.title.c_str(), spec.paperRef.c_str(),
                     cfg, mixes_shown);
}

StudyRegistry &
StudyRegistry::instance()
{
    static StudyRegistry registry;
    return registry;
}

void
StudyRegistry::add(StudySpec spec)
{
    cdcs_assert(!spec.name.empty(), "study without a name");
    cdcs_assert(spec.run != nullptr, "study without a body");
    const std::string name = spec.name;
    const auto inserted = studies.emplace(name, std::move(spec));
    cdcs_assert(inserted.second, "study already registered");
}

const StudySpec *
StudyRegistry::find(const std::string &name) const
{
    const auto it = studies.find(name);
    return it == studies.end() ? nullptr : &it->second;
}

std::vector<const StudySpec *>
StudyRegistry::all() const
{
    std::vector<const StudySpec *> out;
    out.reserve(studies.size());
    for (const auto &[name, spec] : studies)
        out.push_back(&spec); // std::map iteration is name-sorted.
    return out;
}

StudyRegistrar::StudyRegistrar(StudySpec spec)
{
    StudyRegistry::instance().add(std::move(spec));
}

ExperimentRunner::Options
runnerOptions(const Overrides &overrides, bool default_cache)
{
    ExperimentRunner::Options opts;
    opts.workers = static_cast<unsigned>(
        overrides.knob("workers", "CDCS_WORKERS", 0));
    opts.cacheDir =
        overrides.strKnob("cacheDir", "CDCS_CACHE_DIR", "");
    // A persistent store is only useful when runs go through the
    // cache, so cacheDir= implies cache=1 (an explicit --set cache=0
    // still wins).
    opts.cacheResults =
        overrides.knob("cache", "CDCS_CACHE",
                       default_cache || !opts.cacheDir.empty()
                           ? 1 : 0) != 0;
    opts.cacheBudget = static_cast<std::size_t>(
        overrides.knob("cacheBudget", "CDCS_CACHE_BUDGET", 1024));
    return opts;
}

int
runStudy(const StudySpec &spec, const Overrides &overrides,
         ExperimentRunner &runner, ReportSink &sink)
{
    // Precedence: defaults < CDCS_* env < spec.configure < --set.
    SystemConfig cfg = benchConfig();
    if (spec.configure)
        spec.configure(cfg);
    overrides.apply(cfg);
    const int mixes = static_cast<int>(overrides.knob(
        "mixes", "CDCS_MIXES",
        static_cast<std::uint64_t>(spec.defaultMixes)));

    StudyContext ctx(spec, cfg, mixes, runner, sink, overrides);
    const ExperimentRunner::CacheStats before = runner.cacheStats();
    const bool timing_on =
        overrides.knob("timing", "CDCS_TIMING", 0) != 0;
    if (timing_on)
        Profiler::setEnabled(true);
    // Turn counting on before any run starts; each run resolves its
    // own `stats=` selection from its config. Left on once enabled (a
    // later study in the same batch may still be sampling).
    if (cfg.statsEnabled())
        StatRegistry::setEnabled(true);
    const WorkStealingPool &pool = runner.taskPool();
    const std::uint64_t steals_before = pool.stealCount();
    const std::uint64_t wakeups_before = pool.wakeupCount();
    const std::uint64_t idle_before = pool.idleNanos();
    const Profiler::Snapshot prof_before = Profiler::snapshot();
    // lint:allow(wallclock): wall-time footer, reporting-only
    const auto wall_before = std::chrono::steady_clock::now();
    sink.beginStudy(spec);
    if (Tracer::enabled())
        Tracer::instant("study " + spec.name);
    spec.run(ctx);
    if (runner.options().cacheResults) {
        // The runner (and cache) is shared across the studies of one
        // invocation; report this study's delta, not the lifetime
        // totals. A study that got no hits stays silent, so the
        // cache-by-default for repeated-lineup studies cannot change
        // default text output.
        const ExperimentRunner::CacheStats now = runner.cacheStats();
        if (now.hits > before.hits) {
            sink.printf(
                "[cache: %llu hits, %llu misses, %llu "
                "evictions, %llu entries]\n",
                static_cast<unsigned long long>(now.hits -
                                                before.hits),
                static_cast<unsigned long long>(now.misses -
                                                before.misses),
                static_cast<unsigned long long>(now.evictions -
                                                before.evictions),
                static_cast<unsigned long long>(now.entries));
        }
    }
    {
        // Persistent-tier footer: only ever printed when a store is
        // attached (cacheDir is set, a non-default knob), so default
        // text output stays byte-identical; `--set cacheStats=0`
        // silences it for byte-diff runs that do use a store.
        const ExperimentRunner::CacheStats now = runner.cacheStats();
        const std::uint64_t delta =
            (now.storeHits - before.storeHits) +
            (now.storeMisses - before.storeMisses) +
            (now.storeEvictions - before.storeEvictions) +
            (now.storeCorrupt - before.storeCorrupt) +
            (now.shardSkipped - before.shardSkipped);
        if (now.persistent && delta > 0 &&
            overrides.knob("cacheStats", "CDCS_CACHE_STATS", 1) !=
                0) {
            sink.printf(
                "[store: %llu hits, %llu misses, %llu evictions, "
                "%llu corrupt, %llu skipped]\n",
                static_cast<unsigned long long>(now.storeHits -
                                                before.storeHits),
                static_cast<unsigned long long>(now.storeMisses -
                                                before.storeMisses),
                static_cast<unsigned long long>(
                    now.storeEvictions - before.storeEvictions),
                static_cast<unsigned long long>(now.storeCorrupt -
                                                before.storeCorrupt),
                static_cast<unsigned long long>(now.shardSkipped -
                                                before.shardSkipped));
        }
    }
    if (timing_on) {
        const std::chrono::duration<double> wall = // lint:allow(wallclock)
            std::chrono::steady_clock::now() - wall_before;
        const Profiler::Snapshot d =
            Profiler::snapshot().since(prof_before);
        StudyTiming t;
        t.wallSec = wall.count();
        t.accessSec = 1e-9 * static_cast<double>(
            d[ProfPhase::Access]);
        t.nocQuerySec = 1e-9 * static_cast<double>(
            d[ProfPhase::NocQuery]);
        t.reconfigSec = 1e-9 * static_cast<double>(
            d[ProfPhase::Reconfig]);
        t.cacheIoSec = 1e-9 * static_cast<double>(
            d[ProfPhase::CacheIo]);
        t.poolSteals = pool.stealCount() - steals_before;
        t.poolWakeups = pool.wakeupCount() - wakeups_before;
        t.poolIdleSec = 1e-9 * static_cast<double>(
            pool.idleNanos() - idle_before);
        sink.timing(spec.name, t);
    }
    sink.endStudy(spec);
    sink.flush();
    return 0;
}

int
studyMain(const char *name)
{
    const StudySpec *spec = StudyRegistry::instance().find(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "unknown study '%s'\n", name);
        return 1;
    }
    const Overrides none;
    ExperimentRunner runner(
        runnerOptions(none, spec->repeatedLineup));
    TextReportSink sink(
        stdout, none.strKnob("jsonDir", "CDCS_JSON_DIR", ""));
    const std::string trace_path =
        none.strKnob("trace", "CDCS_TRACE", "");
    if (!trace_path.empty())
        Tracer::open(trace_path);
    int rc = runStudy(*spec, none, runner, sink);
    sink.finish();
    if (!Tracer::close())
        rc |= 1;
    return rc;
}

namespace
{

int
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: cdcs_studies <command> [options]\n"
        "\n"
        "commands:\n"
        "  list [--format=text|json]\n"
        "      enumerate the registered studies\n"
        "  run <study>...|all [--set key=value]... "
        "[--format=text|json|csv]\n"
        "      [--shard i/N]\n"
        "      run studies; text output is byte-identical to the\n"
        "      legacy bench harnesses under default knobs.\n"
        "      --shard i/N simulates only the cells whose content\n"
        "      hash maps to shard i (requires cacheDir; the shard's\n"
        "      own report is partial — use merge) and writes\n"
        "      <cacheDir>/shard-<i>of<N>.json\n"
        "  merge <study>...|all [--set key=value]... "
        "[--format=text|json|csv]\n"
        "      recombine sharded runs: replay the studies from the\n"
        "      populated result store (requires cacheDir); output is\n"
        "      byte-identical to an unsharded run\n"
        "\n"
        "overrides (--set, also settable via CDCS_* env knobs):\n");
    for (const auto &[key, type] : Overrides::knownKeys())
        std::fprintf(out, "  %-20s %s\n", key.c_str(), type.c_str());
    return out == stderr ? 2 : 0;
}

int
listStudies(const std::string &format)
{
    const auto all = StudyRegistry::instance().all();
    if (format == "json") {
        std::string doc = "[\n";
        for (std::size_t i = 0; i < all.size(); i++) {
            const StudySpec &s = *all[i];
            doc += "  {\"name\": " + jsonString(s.name) +
                ", \"category\": " + jsonString(s.category) +
                ", \"title\": " + jsonString(s.title) +
                ", \"paperRef\": " + jsonString(s.paperRef) +
                ", \"defaultMixes\": " +
                std::to_string(s.defaultMixes) + ", \"lineup\": [";
            for (std::size_t l = 0; l < s.lineup.size(); l++) {
                doc += l > 0 ? "," : "";
                doc += jsonString(s.lineup[l]);
            }
            doc += i + 1 < all.size() ? "]},\n" : "]}\n";
        }
        doc += "]\n";
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return 0;
    }
    if (format != "text") {
        std::fprintf(stderr, "unknown list format '%s'\n",
                     format.c_str());
        return 2;
    }
    std::printf("%-22s %-9s %s\n", "study", "category",
                "title (paper ref)");
    for (const StudySpec *s : all) {
        std::printf("%-22s %-9s %s (%s)\n", s->name.c_str(),
                    s->category.c_str(), s->title.c_str(),
                    s->paperRef.c_str());
    }
    return 0;
}

} // anonymous namespace

int
studiesCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(stderr);
    const std::string &cmd = args[0];
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);

    Overrides overrides;
    std::string format = "text";
    std::vector<std::string> names;
    int shard_index = 0;
    int shard_count = 1;
    bool sharded = false;
    const auto parse_shard = [&](const std::string &val) {
        char extra = '\0';
        if (std::sscanf(val.c_str(), "%d/%d%c", &shard_index,
                        &shard_count, &extra) != 2 ||
            shard_count < 1 || shard_index < 0 ||
            shard_index >= shard_count) {
            std::fprintf(stderr,
                         "bad --shard '%s' (expected i/N with "
                         "0 <= i < N)\n",
                         val.c_str());
            return false;
        }
        sharded = true;
        return true;
    };
    for (std::size_t i = 1; i < args.size(); i++) {
        const std::string &arg = args[i];
        std::string err;
        if (arg == "--set" || arg == "--format" ||
            arg == "--shard") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                return 2;
            }
            if (arg == "--format") {
                format = args[++i];
            } else if (arg == "--shard") {
                if (!parse_shard(args[++i]))
                    return 2;
            } else if (!overrides.add(args[++i], &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--set=", 0) == 0) {
            if (!overrides.add(arg.substr(6), &err)) {
                std::fprintf(stderr, "%s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
        } else if (arg.rfind("--shard=", 0) == 0) {
            if (!parse_shard(arg.substr(8)))
                return 2;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(stderr);
        } else {
            names.push_back(arg);
        }
    }

    if (cmd == "list") {
        if (!names.empty() || !overrides.empty() || sharded) {
            std::fprintf(stderr, "list takes only --format\n");
            return 2;
        }
        return listStudies(format);
    }
    const bool merge = cmd == "merge";
    if (cmd != "run" && !merge) {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return usage(stderr);
    }
    if (names.empty()) {
        std::fprintf(stderr, "%s needs at least one study name "
                             "(or 'all')\n", cmd.c_str());
        return 2;
    }
    if (merge && sharded) {
        std::fprintf(stderr,
                     "--shard applies to run, not merge\n");
        return 2;
    }

    StudyRegistry &registry = StudyRegistry::instance();
    std::vector<const StudySpec *> specs;
    if (names.size() == 1 && names[0] == "all") {
        specs = registry.all();
    } else {
        for (const std::string &name : names) {
            const StudySpec *spec = registry.find(name);
            if (spec == nullptr) {
                std::fprintf(stderr,
                             "unknown study '%s' (try 'cdcs_studies "
                             "list')\n",
                             name.c_str());
                return 2;
            }
            specs.push_back(spec);
        }
    }

    const std::string json_dir =
        overrides.strKnob("jsonDir", "CDCS_JSON_DIR", "");
    std::unique_ptr<ReportSink> sink;
    if (format == "text") {
        sink = std::make_unique<TextReportSink>(stdout, json_dir);
    } else if (format == "json") {
        sink = std::make_unique<JsonReportSink>(stdout, json_dir);
    } else if (format == "csv") {
        sink = std::make_unique<CsvReportSink>(stdout, json_dir);
    } else {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
    }

    // Repeated-lineup studies opt the shared runner into the result
    // cache unless the user said otherwise.
    bool any_repeated = false;
    for (const StudySpec *spec : specs)
        any_repeated = any_repeated || spec->repeatedLineup;
    ExperimentRunner::Options ropts =
        runnerOptions(overrides, any_repeated);
    if (sharded || merge) {
        if (ropts.cacheDir.empty()) {
            std::fprintf(stderr,
                         "%s requires a result store: --set "
                         "cacheDir=DIR (or CDCS_CACHE_DIR)\n",
                         merge ? "merge" : "--shard");
            return 2;
        }
        if (!ropts.cacheResults) {
            std::fprintf(stderr,
                         "%s requires the result cache (remove "
                         "cache=0)\n",
                         merge ? "merge" : "--shard");
            return 2;
        }
        if (sharded) {
            ropts.shardIndex = shard_index;
            ropts.shardCount = shard_count;
        }
    }
    ExperimentRunner runner(ropts);
    const std::string trace_path =
        overrides.strKnob("trace", "CDCS_TRACE", "");
    if (!trace_path.empty())
        Tracer::open(trace_path);
    int rc = 0;
    for (const StudySpec *spec : specs)
        rc |= runStudy(*spec, overrides, runner, *sink);
    sink->finish();
    // One trace file per invocation, covering every study run.
    if (!Tracer::close())
        rc |= 1;
    if (sharded) {
        char suffix[64];
        std::snprintf(suffix, sizeof(suffix),
                      "/shard-%dof%d.json", shard_index,
                      shard_count);
        const std::string manifest = ropts.cacheDir + suffix;
        if (runner.writeShardManifest(manifest)) {
            std::fprintf(stderr, "[shard %d/%d: manifest %s]\n",
                         shard_index, shard_count,
                         manifest.c_str());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         manifest.c_str());
            rc |= 1;
        }
    }
    return rc;
}

} // namespace cdcs
