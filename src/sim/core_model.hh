/**
 * @file
 * Analytic core timing model for the lean 2-way OOO cores of Table 2.
 * A thread's cycle count is
 *
 *   cycles = instructions * cpiExe + sum(access latency) / mlp
 *
 * where cpiExe is the CPI with a perfect LLC (including L1/L2 hit
 * time) and mlp is the effective memory-level parallelism: the average
 * number of outstanding LLC/memory accesses whose latencies overlap.
 * This folds the OOO core's latency tolerance into one per-app
 * parameter (see DESIGN.md for the substitution rationale).
 */

#ifndef CDCS_SIM_CORE_MODEL_HH
#define CDCS_SIM_CORE_MODEL_HH

#include "common/types.hh"

namespace cdcs
{

/** Running performance state of one thread. */
class CoreClock
{
  public:
    /**
     * @param cpi_exe Base CPI.
     * @param mlp_factor Latency-overlap divisor.
     */
    CoreClock(double cpi_exe = 1.0, double mlp_factor = 3.0)
        : cpiExe(cpi_exe), mlp(mlp_factor)
    {
    }

    /**
     * Account one LLC access and the instructions leading up to it.
     *
     * @param instr Instructions retired since the previous access.
     * @param access_latency_cycles End-to-end latency of the access.
     */
    void
    addAccess(double instr, double access_latency_cycles)
    {
        instrs += instr;
        cycles += instr * cpiExe + access_latency_cycles / mlp;
    }

    /** Stall the core (e.g., bulk-invalidation pause). */
    void addPause(double pause_cycles) { cycles += pause_cycles; }

    double instructions() const { return instrs; }
    double cycleCount() const { return cycles; }

    double
    ipc() const
    {
        return cycles > 0.0 ? instrs / cycles : 0.0;
    }

  private:
    double cpiExe;
    double mlp;
    double instrs = 0.0;
    double cycles = 0.0;
};

} // namespace cdcs

#endif // CDCS_SIM_CORE_MODEL_HH
