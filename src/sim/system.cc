#include "sim/system.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hh"
#include "monitor/gmon.hh"
#include "monitor/umon.hh"
#include "nuca/rnuca.hh"
#include "nuca/snuca.hh"
#include "runtime/anneal.hh"
#include "runtime/bisect.hh"
#include "runtime/jigsaw_runtime.hh"
#include "runtime/schedulers.hh"

namespace cdcs
{

SchemeSpec
SchemeSpec::snuca()
{
    SchemeSpec spec;
    spec.name = "S-NUCA";
    spec.kind = SchemeKind::SNuca;
    return spec;
}

SchemeSpec
SchemeSpec::rnuca()
{
    SchemeSpec spec;
    spec.name = "R-NUCA";
    spec.kind = SchemeKind::RNuca;
    return spec;
}

SchemeSpec
SchemeSpec::jigsaw(InitialSched sched)
{
    SchemeSpec spec;
    spec.name = sched == InitialSched::Random ? "Jigsaw+R" : "Jigsaw+C";
    spec.kind = SchemeKind::Partitioned;
    spec.cdcsOpts.latencyAwareAlloc = false;
    spec.cdcsOpts.placeThreads = false;
    spec.cdcsOpts.refineTrades = false;
    spec.moves = MoveScheme::BulkInvalidate;
    spec.sched = sched;
    return spec;
}

SchemeSpec
SchemeSpec::cdcs()
{
    SchemeSpec spec;
    spec.name = "CDCS";
    spec.kind = SchemeKind::Partitioned;
    return spec;
}

SchemeSpec
SchemeSpec::factor(bool l, bool t, bool d)
{
    SchemeSpec spec = jigsaw(InitialSched::Random);
    spec.cdcsOpts.latencyAwareAlloc = l;
    spec.cdcsOpts.placeThreads = t;
    spec.cdcsOpts.refineTrades = d;
    spec.name = "Jigsaw+R";
    if (l || t || d) {
        spec.name = "+";
        if (l)
            spec.name += "L";
        if (t)
            spec.name += "T";
        if (d)
            spec.name += "D";
    }
    if (l && t && d) {
        spec.name = "CDCS(+LTD)";
        spec.moves = MoveScheme::DemandBackground;
    }
    return spec;
}

System::System(const SystemConfig &config, const SchemeSpec &scheme,
               WorkloadMix workload)
    : cfg(config), spec(scheme),
      mesh(config.meshWidth, config.meshHeight, config.noc,
           config.memChannels),
      mix(std::move(workload)), rng(mix64(config.seed ^ 0x5E5E))
{
    const int num_banks = mesh.numTiles() * cfg.banksPerTile;
    cdcs_assert(mix.numThreads() <= mesh.numTiles(),
                "mix has more threads than cores");

    banks.reserve(num_banks);
    for (int b = 0; b < num_banks; b++) {
        banks.emplace_back(cfg.bankLines, cfg.bankWays,
                           mix64(cfg.seed ^ (0xBA2B + b)));
    }

    // Initial thread scheduling.
    std::vector<ProcId> thread_proc;
    for (ThreadId t = 0; t < mix.numThreads(); t++)
        thread_proc.push_back(mix.thread(t).proc);
    if (spec.sched == InitialSched::Random)
        threadCore = randomSchedule(mix.numThreads(), mesh.numTiles(),
                                    rng);
    else
        threadCore = clusteredSchedule(thread_proc, mesh.numTiles());

    // Policy + runtime.
    switch (spec.kind) {
      case SchemeKind::SNuca:
        nucaPolicy = std::make_unique<SNucaPolicy>(num_banks);
        break;
      case SchemeKind::RNuca:
        nucaPolicy = std::make_unique<RNucaPolicy>(&mesh,
                                                   cfg.banksPerTile);
        break;
      case SchemeKind::Partitioned: {
        switch (spec.placer) {
          case PlacerKind::Heuristic:
            runtime = std::make_unique<CdcsRuntime>(spec.cdcsOpts);
            break;
          case PlacerKind::Annealed:
            runtime = std::make_unique<AnnealingRuntime>(
                spec.cdcsOpts, spec.saIterations, cfg.seed ^ 0x5A5A);
            break;
          case PlacerKind::Bisection:
            runtime = std::make_unique<BisectRuntime>(spec.cdcsOpts);
            break;
        }
        std::vector<ThreadVcWiring> wiring;
        for (ThreadId t = 0; t < mix.numThreads(); t++) {
            const ThreadCtx &thr = mix.thread(t);
            wiring.push_back({thr.privateVc, thr.processVc,
                              thr.globalVc});
        }
        PartitionedNucaConfig move_cfg = cfg.moveCfg;
        move_cfg.moves = spec.moves;
        nucaPolicy = std::make_unique<PartitionedNucaPolicy>(
            &mesh, cfg.banksPerTile, cfg.bankLines,
            static_cast<std::uint32_t>(cfg.bankLines / cfg.bankWays),
            std::move(wiring), mix.numVcs(), runtime.get(), move_cfg);
        break;
      }
    }

    // Monitors (partitioned schemes only).
    if (nucaPolicy->wantsMonitors()) {
        for (int d = 0; d < mix.numVcs(); d++) {
            if (spec.monitor == MonitorKind::Gmon) {
                monitors.push_back(std::make_unique<Gmon>(
                    spec.monitorWays, cfg.llcLines(), spec.monitorSets,
                    spec.monitorSampleShift,
                    mix64(cfg.seed ^ (0x60D + d))));
            } else {
                monitors.push_back(std::make_unique<Umon>(
                    spec.monitorWays, cfg.llcLines(), spec.monitorSets,
                    mix64(cfg.seed ^ (0x60D + d))));
            }
        }
    }

    clocks.reserve(mix.numThreads());
    for (ThreadId t = 0; t < mix.numThreads(); t++) {
        const ThreadCtx &thr = mix.thread(t);
        clocks.emplace_back(thr.cpiExe, thr.mlp);
    }
    accessMatrix.assign(mix.numThreads(),
                        std::vector<double>(mix.numVcs(), 0.0));
    instrOffset.assign(mix.numThreads(), 0.0);
    cycleOffset.assign(mix.numThreads(), 0.0);
}

const PartitionedNucaPolicy *
System::partitionedPolicy() const
{
    return dynamic_cast<const PartitionedNucaPolicy *>(nucaPolicy.get());
}

double
System::meanActiveCycles() const
{
    if (clocks.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreClock &clock : clocks)
        sum += clock.cycleCount();
    return sum / static_cast<double>(clocks.size());
}

RuntimeInput
System::gatherRuntimeInput()
{
    RuntimeInput in;
    in.mesh = &mesh;
    in.numBanks = mesh.numTiles() * cfg.banksPerTile;
    in.banksPerTile = cfg.banksPerTile;
    in.bankLines = cfg.bankLines;
    in.allocGranule =
        static_cast<std::uint64_t>(cfg.allocGranuleLines);
    if (!monitors.empty()) {
        in.missCurves.reserve(monitors.size());
        for (const auto &mon : monitors)
            in.missCurves.push_back(mon->missCurve());
    }
    in.access = accessMatrix;

    // Blend with the EWMA of previous epochs: the runtime's inputs
    // are sampled and noisy, and placement stability depends on them
    // converging for stationary workloads.
    const double alpha = cfg.monitorSmoothing;
    if (alpha < 1.0) {
        if (smoothedAccess.empty()) {
            smoothedAccess = in.access;
            smoothedCurves = in.missCurves;
        } else {
            for (std::size_t t = 0; t < in.access.size(); t++) {
                for (std::size_t d = 0; d < in.access[t].size(); d++) {
                    smoothedAccess[t][d] = alpha * in.access[t][d] +
                        (1.0 - alpha) * smoothedAccess[t][d];
                }
            }
            for (std::size_t d = 0; d < in.missCurves.size(); d++) {
                // Same monitor geometry each epoch: identical x grid.
                Curve blended;
                const auto &cur = in.missCurves[d].samples();
                const auto &old_curve = smoothedCurves[d].samples();
                for (std::size_t i = 0; i < cur.size(); i++) {
                    const double prev_y = i < old_curve.size()
                        ? old_curve[i].y : cur[i].y;
                    blended.addPoint(cur[i].x,
                                     alpha * cur[i].y +
                                         (1.0 - alpha) * prev_y);
                }
                smoothedCurves[d] = blended;
            }
            in.access = smoothedAccess;
            in.missCurves = smoothedCurves;
        }
    }
    in.threadCore = threadCore;
    in.hopCycles = static_cast<double>(cfg.noc.routerCycles +
                                       cfg.noc.linkCycles);
    in.bankAccessCycles = static_cast<double>(cfg.bankLatency);
    in.memAccessCycles = static_cast<double>(cfg.memLatency);
    return in;
}

void
System::applyDirective(const EpochDirective &directive)
{
    if (!directive.reconfigured)
        return;
    stats.reconfigs++;
    stats.timeSums.allocUs += directive.times.allocUs;
    stats.timeSums.threadPlaceUs += directive.times.threadPlaceUs;
    stats.timeSums.dataPlaceUs += directive.times.dataPlaceUs;
    stats.instantMoved += directive.movedLines;
    stats.bulkInvalidated += directive.invalidatedLines;
    if (!directive.newThreadCore.empty())
        threadCore = directive.newThreadCore;
    if (directive.pauseCycles > 0) {
        for (CoreClock &clock : clocks)
            clock.addPause(static_cast<double>(directive.pauseCycles));
        stats.pausedCycles += directive.pauseCycles;
    }
}

int
System::memHops(TileId bank_tile, TileId core, LineAddr line)
{
    if (!cfg.numaAwareMem)
        return mesh.hopsToMemCtrl(bank_tile, line);
    const std::uint64_t page = line >> pageLineShift;
    const auto [it, inserted] =
        pageCtrl.try_emplace(page, mesh.nearestMemCtrl(core));
    return mesh.hopsToCtrl(bank_tile, it->second);
}

void
System::issueAccess(ThreadId t)
{
    const ThreadCtx &thr = mix.thread(t);
    const AccessSample sample = mix.nextAccess(t);
    const TileId core = threadCore[t];
    accessMatrix[t][sample.vc] += 1.0;

    if (!monitors.empty()) {
        monitors[sample.vc]->access(sample.line);
        // Monitoring traffic: roughly one control message per 64
        // accesses to the VC's fixed monitor location (Sec. IV-I).
        if ((++monitorTrafficSampleCtr & 63) == 0) {
            const TileId mon_tile =
                static_cast<TileId>(sample.vc % mesh.numTiles());
            mesh.addTraffic(TrafficClass::Other,
                            mesh.hops(core, mon_tile),
                            cfg.noc.ctrlFlits());
        }
    }

    const MapResult mr = nucaPolicy->map(t, core, sample.vc,
                                         sample.line);
    const VcId tag = nucaPolicy->partitionTag(sample.vc);
    const TileId bank_tile =
        static_cast<TileId>(mr.bank / cfg.banksPerTile);
    const int h = mesh.hops(core, bank_tile);
    const std::uint32_t ctrl = cfg.noc.ctrlFlits();
    const std::uint32_t data = cfg.noc.dataFlits();

    double lat = static_cast<double>(mesh.latency(h, ctrl)) +
        cfg.bankLatency + mesh.latency(h, data);
    double onchip = lat - cfg.bankLatency;
    double offchip = 0.0;
    mesh.addTraffic(TrafficClass::L2ToLLC, h, ctrl + data);

    stats.llcAccesses++;
    BankAccessResult fill_res;
    bool filled = false;
    if (banks[mr.bank].probeHit(sample.line, tag, core)) {
        stats.llcHits++;
    } else if (mr.oldBank != invalidTile &&
               nucaPolicy->demandMovesActive()) {
        // Demand move (Fig. 10): chase the line in its old bank.
        const TileId old_tile =
            static_cast<TileId>(mr.oldBank / cfg.banksPerTile);
        const int h2 = mesh.hops(bank_tile, old_tile);
        lat += mesh.latency(h2, ctrl) + cfg.bankLatency;
        onchip += mesh.latency(h2, ctrl);
        mesh.addTraffic(TrafficClass::Other, h2, ctrl);
        stats.moveProbes++;
        CacheLine moved;
        if (banks[mr.oldBank].extractForMove(sample.line, moved)) {
            // Old bank hit: line + coherence state move to the new
            // bank (Fig. 10a).
            lat += mesh.latency(h2, data);
            onchip += mesh.latency(h2, data);
            mesh.addTraffic(TrafficClass::Other, h2, data);
            fill_res = banks[mr.bank].installMoved(moved, tag);
            filled = true;
            stats.demandMoves++;
        } else {
            // Old bank miss: forward to memory; the response fills
            // the new home (Fig. 10b).
            const int hm = memHops(old_tile, core, sample.line);
            const int hr = memHops(bank_tile, core, sample.line);
            const double mem_leg =
                static_cast<double>(mesh.latency(hm, ctrl)) +
                cfg.memLatency + queueDelay + mesh.latency(hr, data);
            lat += mem_leg;
            offchip += mem_leg;
            mesh.addTraffic(TrafficClass::LLCToMem, hm, ctrl);
            mesh.addTraffic(TrafficClass::LLCToMem, hr, data);
            stats.memAccesses++;
            chunkMisses++;
            fill_res = banks[mr.bank].fill(sample.line, tag, core);
            filled = true;
        }
    } else {
        const int hm = memHops(bank_tile, core, sample.line);
        const double mem_leg =
            static_cast<double>(mesh.latency(hm, ctrl)) +
            cfg.memLatency + queueDelay + mesh.latency(hm, data);
        lat += mem_leg;
        offchip += mem_leg;
        mesh.addTraffic(TrafficClass::LLCToMem, hm, ctrl + data);
        stats.memAccesses++;
        chunkMisses++;
        fill_res = banks[mr.bank].fill(sample.line, tag, core);
        filled = true;
    }

    if (filled && fill_res.evicted && fill_res.evictedSharers != 0) {
        // Invalidate L2 copies of the victim (in-cache directory).
        std::uint64_t mask = fill_res.evictedSharers;
        while (mask != 0) {
            const int sharer = std::countr_zero(mask);
            mask &= mask - 1;
            if (sharer < mesh.numTiles()) {
                mesh.addTraffic(TrafficClass::Other,
                                mesh.hops(bank_tile,
                                          static_cast<TileId>(sharer)),
                                ctrl);
            }
        }
    }

    if (mr.invalidatePage) {
        // R-NUCA reclassification: flush the page from its old bank.
        int flushed = 0;
        for (std::uint32_t i = 0; i < linesPerPage; i++) {
            if (banks[mr.invalidateBank].invalidateLine(
                    mr.invalidatePageBase + i)) {
                flushed++;
            }
        }
        if (flushed > 0) {
            const TileId old_tile = static_cast<TileId>(
                mr.invalidateBank / cfg.banksPerTile);
            mesh.addTraffic(TrafficClass::Other,
                            mesh.hopsToMemCtrl(old_tile, sample.line),
                            data * flushed);
        }
    }

    stats.onChipLatSum += onchip;
    stats.offChipLatSum += offchip;
    clocks[t].addAccess(thr.instrPerAccess, lat);

    if (cfg.traceIpc) {
        const auto bin = static_cast<std::size_t>(
            clocks[t].cycleCount() / cfg.traceBinCycles);
        if (bin >= ipcBins.size())
            ipcBins.resize(bin + 1, 0.0);
        ipcBins[bin] += thr.instrPerAccess;
    }
}

RunResult
System::run()
{
    const int num_threads = mix.numThreads();
    for (int epoch = 0; epoch < cfg.epochs; epoch++) {
        if (epoch == cfg.warmupEpochs) {
            // Warmup boundary: reset measured statistics, keep all
            // microarchitectural state warm.
            stats = Stats{};
            mesh.clearTraffic();
            for (int t = 0; t < num_threads; t++) {
                instrOffset[t] = clocks[t].instructions();
                cycleOffset[t] = clocks[t].cycleCount();
            }
        }

        std::uint64_t issued = 0;
        while (issued < cfg.accessesPerThreadEpoch) {
            const auto n = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(
                    cfg.chunkAccesses,
                    cfg.accessesPerThreadEpoch - issued));
            const double before = meanActiveCycles();
            chunkMisses = 0;
            for (ThreadId t = 0; t < num_threads; t++) {
                for (std::uint32_t i = 0; i < n; i++)
                    issueAccess(t);
            }
            issued += n;
            const double after = meanActiveCycles();

            if (cfg.modelMemBandwidth) {
                const double dt = std::max(after - before, 1.0);
                const double rho = std::min(
                    0.95, (static_cast<double>(chunkMisses) / dt) /
                        cfg.memLinesPerCycle);
                const double service_cycles =
                    cfg.memChannels / cfg.memLinesPerCycle;
                queueDelay =
                    service_cycles * rho / (2.0 * (1.0 - rho));
            }

            const double elapsed =
                std::max(0.0, after - reconfigStartMean);
            stats.bgInvalidated += nucaPolicy->advanceWalk(
                static_cast<Cycles>(elapsed), banks);
        }

        if (epoch + 1 < cfg.epochs) {
            RuntimeInput input = gatherRuntimeInput();
            const EpochDirective directive =
                nucaPolicy->endEpoch(input, banks);
            applyDirective(directive);
            for (auto &mon : monitors)
                mon->clearCounters();
            for (auto &row : accessMatrix)
                std::fill(row.begin(), row.end(), 0.0);
            reconfigStartMean = meanActiveCycles();
        }
    }

    // Assemble results.
    RunResult res;
    res.threadInstrs.resize(num_threads);
    res.threadCycles.resize(num_threads);
    res.threadIpc.resize(num_threads);
    for (int t = 0; t < num_threads; t++) {
        res.threadInstrs[t] = clocks[t].instructions() - instrOffset[t];
        res.threadCycles[t] = clocks[t].cycleCount() - cycleOffset[t];
        res.threadIpc[t] = res.threadCycles[t] > 0.0
            ? res.threadInstrs[t] / res.threadCycles[t] : 0.0;
        res.totalInstrs += res.threadInstrs[t];
        res.wallCycles = std::max(res.wallCycles, res.threadCycles[t]);
    }
    for (ProcId p = 0; p < mix.numProcesses(); p++) {
        const ProcessCtx &proc = mix.process(p);
        double instrs = 0.0, max_cycles = 0.0;
        for (ThreadId t : proc.threads) {
            instrs += res.threadInstrs[t];
            max_cycles = std::max(max_cycles, res.threadCycles[t]);
        }
        res.procThroughput.push_back(
            max_cycles > 0.0 ? instrs / max_cycles : 0.0);
    }

    res.llcAccesses = stats.llcAccesses;
    res.llcHits = stats.llcHits;
    res.demandMoves = stats.demandMoves;
    res.moveProbes = stats.moveProbes;
    res.memAccesses = stats.memAccesses;
    res.instantMoved = stats.instantMoved;
    res.bulkInvalidated = stats.bulkInvalidated;
    res.bgInvalidated = stats.bgInvalidated;
    res.pausedCycles = stats.pausedCycles;
    res.reconfigs = stats.reconfigs;
    if (stats.reconfigs > 0) {
        res.avgTimes.allocUs =
            stats.timeSums.allocUs / stats.reconfigs;
        res.avgTimes.threadPlaceUs =
            stats.timeSums.threadPlaceUs / stats.reconfigs;
        res.avgTimes.dataPlaceUs =
            stats.timeSums.dataPlaceUs / stats.reconfigs;
    }
    res.onChipLatSum = stats.onChipLatSum;
    res.offChipLatSum = stats.offChipLatSum;
    for (std::size_t c = 0; c < res.trafficFlitHops.size(); c++) {
        res.trafficFlitHops[c] =
            mesh.trafficFlitHops(static_cast<TrafficClass>(c));
    }

    // Static energy accrues over the mean per-thread runtime: in the
    // fixed-work methodology threads retire their work at different
    // times and finished cores clock-gate.
    double mean_cycles = 0.0;
    for (double c : res.threadCycles)
        mean_cycles += c;
    if (!res.threadCycles.empty())
        mean_cycles /= static_cast<double>(res.threadCycles.size());
    const EnergyModel energy_model;
    res.energy = energy_model.evaluate(
        res.totalInstrs,
        static_cast<double>(res.llcAccesses + res.moveProbes),
        static_cast<double>(mesh.totalFlitHops()),
        static_cast<double>(res.memAccesses), mean_cycles);

    if (cfg.traceIpc) {
        res.ipcBinCycles = cfg.traceBinCycles;
        res.ipcTrace.reserve(ipcBins.size());
        for (double instrs : ipcBins)
            res.ipcTrace.push_back(instrs / cfg.traceBinCycles);
    }
    return res;
}

} // namespace cdcs
