#include "sim/system.hh"

namespace cdcs
{

SchemeSpec
SchemeSpec::snuca()
{
    SchemeSpec spec;
    spec.name = "S-NUCA";
    spec.kind = SchemeKind::SNuca;
    return spec;
}

SchemeSpec
SchemeSpec::rnuca()
{
    SchemeSpec spec;
    spec.name = "R-NUCA";
    spec.kind = SchemeKind::RNuca;
    return spec;
}

SchemeSpec
SchemeSpec::jigsaw(InitialSched sched)
{
    SchemeSpec spec;
    spec.name = sched == InitialSched::Random ? "Jigsaw+R" : "Jigsaw+C";
    spec.kind = SchemeKind::Partitioned;
    spec.cdcsOpts.latencyAwareAlloc = false;
    spec.cdcsOpts.placeThreads = false;
    spec.cdcsOpts.refineTrades = false;
    spec.moves = MoveScheme::BulkInvalidate;
    spec.sched = sched;
    return spec;
}

SchemeSpec
SchemeSpec::cdcs()
{
    SchemeSpec spec;
    spec.name = "CDCS";
    spec.kind = SchemeKind::Partitioned;
    return spec;
}

SchemeSpec
SchemeSpec::factor(bool l, bool t, bool d)
{
    SchemeSpec spec = jigsaw(InitialSched::Random);
    spec.cdcsOpts.latencyAwareAlloc = l;
    spec.cdcsOpts.placeThreads = t;
    spec.cdcsOpts.refineTrades = d;
    spec.name = "Jigsaw+R";
    if (l || t || d) {
        // Built in a local first: repeated assign-then-append on the
        // member trips GCC 12's -Wrestrict false positive.
        std::string name = "+";
        if (l)
            name += "L";
        if (t)
            name += "T";
        if (d)
            name += "D";
        spec.name = std::move(name);
    }
    if (l && t && d) {
        spec.name = "CDCS(+LTD)";
        spec.moves = MoveScheme::DemandBackground;
    }
    return spec;
}

System::System(const SystemConfig &config, const SchemeSpec &scheme,
               WorkloadMix workload)
    : cfg(config), spec(scheme), mix(std::move(workload)),
      platform(cfg, spec, mix), stats(),
      threadCore(platform.initialPlacement),
      path(cfg, platform, mix, threadCore, stats),
      controller(cfg, platform, path, mix, threadCore, stats)
{
    if (cfg.dynamicTraffic()) {
        TrafficConfig traffic;
        traffic.skewAlpha = cfg.skewAlpha;
        traffic.skewFraction = cfg.skewFraction;
        traffic.skewLines = cfg.skewLines;
        traffic.skewHotLines = cfg.skewHotLines;
        traffic.skewPageHot = cfg.skewPageHot;
        traffic.skewDriftEpochs = cfg.skewDriftEpochs;
        traffic.skewDriftFraction = cfg.skewDriftFraction;
        traffic.churn = cfg.churn;
        traffic.seed = cfg.seed;
        mix.attachTraffic(traffic);
    }
}

const PartitionedNucaPolicy *
System::partitionedPolicy() const
{
    return dynamic_cast<const PartitionedNucaPolicy *>(
        platform.policy.get());
}

RunResult
System::run()
{
    controller.runEpochs();
    return controller.assemble();
}

} // namespace cdcs
