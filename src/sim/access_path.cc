#include "sim/access_path.hh"

#include <algorithm>
#include <bit>

#include "common/profile.hh"
#include "mem/mem_queue.hh"
#include "obs/stat_registry.hh"

namespace cdcs
{

namespace
{

/// Memory accesses served by the far tier.
const StatId kMemFarAccesses =
    StatRegistry::counter("mem.far_accesses");

/**
 * Timing-only wrapper: charge a cluster of NoC latency queries to the
 * NocQuery profiler phase (reported as a share of the access phase it
 * nests inside). A single relaxed atomic load when timing is off.
 */
template <typename Fn>
double
timedNocQuery(Fn &&fn)
{
    ProfTimer timer(ProfPhase::NocQuery);
    return fn();
}

} // namespace

AccessPath::AccessPath(const SystemConfig &config, Platform &plat,
                       WorkloadMix &workload,
                       std::vector<TileId> &thread_core,
                       RunStats &run_stats)
    : cfg(config), platform(plat), mix(workload),
      threadCore(thread_core), stats(run_stats)
{
    clocks.reserve(mix.numThreads());
    for (ThreadId t = 0; t < mix.numThreads(); t++) {
        const ThreadCtx &thr = mix.thread(t);
        clocks.emplace_back(thr.cpiExe, thr.mlp);
    }
    accessMatrix.assign(mix.numThreads(),
                        std::vector<double>(mix.numVcs(), 0.0));
}

double
AccessPath::meanActiveCycles() const
{
    // Departed tenants' clocks freeze at their departure value;
    // averaging them in would drag the epoch-elapsed estimates the
    // NoC and memory models derive from this mean. With every thread
    // active the sum runs over the same clocks in the same order, so
    // the static-traffic arithmetic is unchanged bit for bit.
    double sum = 0.0;
    int active = 0;
    for (std::size_t t = 0; t < clocks.size(); t++) {
        if (!mix.threadActive(static_cast<ThreadId>(t)))
            continue;
        sum += clocks[t].cycleCount();
        active++;
    }
    return active > 0 ? sum / static_cast<double>(active) : 0.0;
}

void
AccessPath::beginChunk()
{
    chunkMisses = 0;
    chunkFarMisses = 0;
}

void
AccessPath::endChunk(double before, double after)
{
    if (!cfg.modelMemBandwidth)
        return;
    const double dt = std::max(after - before, 1.0);
    const double rho = std::min(
        0.95, (static_cast<double>(chunkMisses) / dt) /
            cfg.memLinesPerCycle);
    queueDelay = memQueueWait(rho, cfg.memChannels,
                              cfg.memLinesPerCycle);
    if (cfg.hasFarTier()) {
        const double far_rho = std::min(
            0.95, (static_cast<double>(chunkFarMisses) / dt) /
                cfg.farMemLinesPerCycle);
        farQueueDelay = memQueueWait(far_rho, cfg.farMemChannels,
                                     cfg.farMemLinesPerCycle);
    }
}

MemPlacement
AccessPath::memPlaceFor(TileId core, LineAddr line)
{
    return platform.memPlacement->placementFor(core, line);
}

void
AccessPath::noteMemAccess(int ctrl)
{
    // Lazily sized: the stats object is reset wholesale at the
    // warmup boundary, which empties the vector.
    if (stats.memCtrlAccesses.size() <=
        static_cast<std::size_t>(ctrl)) {
        stats.memCtrlAccesses.resize(
            static_cast<std::size_t>(platform.mesh.numMemCtrls()), 0);
    }
    stats.memCtrlAccesses[static_cast<std::size_t>(ctrl)]++;
}

void
AccessPath::issueAccess(ThreadId t)
{
    const Mesh &mesh = platform.mesh;
    NocModel &noc = *platform.noc;
    auto &banks = platform.banks;
    NucaPolicy &policy = *platform.policy;

    const ThreadCtx &thr = mix.thread(t);
    const AccessSample sample = mix.nextAccess(t);
    const TileId core = threadCore[t];
    accessMatrix[t][sample.vc] += 1.0;

    if (!platform.monitors.empty()) {
        platform.monitors[sample.vc]->access(sample.line);
        // Monitoring traffic: roughly one control message per 64
        // accesses to the VC's fixed monitor location (Sec. IV-I).
        if ((++monitorTrafficSampleCtr & 63) == 0) {
            const TileId mon_tile =
                static_cast<TileId>(sample.vc % mesh.numTiles());
            noc.addTraffic(TrafficClass::Other, core, mon_tile,
                           cfg.noc.ctrlFlits());
        }
    }

    const MapResult mr = policy.map(t, core, sample.vc, sample.line);
    const VcId tag = policy.partitionTag(sample.vc);
    const TileId bank_tile =
        static_cast<TileId>(mr.bank / cfg.banksPerTile);
    const std::uint32_t ctrl = cfg.noc.ctrlFlits();
    const std::uint32_t data = cfg.noc.dataFlits();

    // Request leg core -> bank, data response bank -> core: the NoC's
    // links are directed, so the two legs are charged (and priced)
    // separately. Zero-load latency and hop counts are symmetric, so
    // this only redistributes per-link load, never per-class totals.
    double lat = timedNocQuery([&] {
        return noc.latency(core, bank_tile, ctrl) +
            cfg.bankLatency + noc.latency(bank_tile, core, data);
    });
    double onchip = lat - cfg.bankLatency;
    double offchip = 0.0;
    noc.addTraffic(TrafficClass::L2ToLLC, core, bank_tile, ctrl);
    noc.addTraffic(TrafficClass::L2ToLLC, bank_tile, core, data);

    stats.llcAccesses++;
    BankAccessResult fill_res;
    bool filled = false;
    if (banks[mr.bank].probeHit(sample.line, tag, core)) {
        stats.llcHits++;
    } else if (mr.oldBank != invalidTile &&
               policy.demandMovesActive()) {
        // Demand move (Fig. 10): chase the line in its old bank.
        const TileId old_tile =
            static_cast<TileId>(mr.oldBank / cfg.banksPerTile);
        const double probe_lat = timedNocQuery([&] {
            return noc.latency(bank_tile, old_tile, ctrl);
        });
        lat += probe_lat + cfg.bankLatency;
        onchip += probe_lat;
        noc.addTraffic(TrafficClass::Other, bank_tile, old_tile,
                       ctrl);
        stats.moveProbes++;
        CacheLine moved;
        if (banks[mr.oldBank].extractForMove(sample.line, moved)) {
            // Old bank hit: line + coherence state move to the new
            // bank (Fig. 10a) — the data leg travels old -> new.
            const double move_lat = timedNocQuery([&] {
                return noc.latency(old_tile, bank_tile, data);
            });
            lat += move_lat;
            onchip += move_lat;
            noc.addTraffic(TrafficClass::Other, old_tile, bank_tile,
                           data);
            fill_res = banks[mr.bank].installMoved(moved, tag);
            filled = true;
            stats.demandMoves++;
        } else {
            // Old bank miss: forward to memory; the response fills
            // the new home (Fig. 10b).
            const MemPlacement mp = memPlaceFor(core, sample.line);
            const int mc = mp.ctrl;
            const bool far = mp.tier == MemTier::Far;
            const double mem_leg = timedNocQuery([&] {
                if (far) {
                    return noc.farMemLatency(old_tile, mc, ctrl) +
                        cfg.farMemLatency + farQueueDelay +
                        noc.farMemResponseLatency(mc, bank_tile,
                                                  data);
                }
                return noc.memLatency(old_tile, mc, ctrl) +
                    cfg.memLatency + queueDelay +
                    noc.memResponseLatency(mc, bank_tile, data);
            });
            lat += mem_leg;
            offchip += mem_leg;
            if (far) {
                noc.addFarMemTraffic(TrafficClass::LLCToMem,
                                     old_tile, mc, ctrl);
                noc.addFarMemResponse(TrafficClass::LLCToMem, mc,
                                      bank_tile, data);
                stats.farMemAccesses++;
                stats.farOffChipLatSum += mem_leg;
                StatRegistry::add(kMemFarAccesses);
                chunkFarMisses++;
            } else {
                noc.addMemTraffic(TrafficClass::LLCToMem, old_tile,
                                  mc, ctrl);
                noc.addMemResponse(TrafficClass::LLCToMem, mc,
                                   bank_tile, data);
                chunkMisses++;
            }
            stats.memAccesses++;
            noteMemAccess(mc);
            fill_res = banks[mr.bank].fill(sample.line, tag, core);
            filled = true;
        }
    } else {
        const MemPlacement mp = memPlaceFor(core, sample.line);
        const int mc = mp.ctrl;
        const bool far = mp.tier == MemTier::Far;
        const double mem_leg = timedNocQuery([&] {
            if (far) {
                return noc.farMemLatency(bank_tile, mc, ctrl) +
                    cfg.farMemLatency + farQueueDelay +
                    noc.farMemResponseLatency(mc, bank_tile, data);
            }
            return noc.memLatency(bank_tile, mc, ctrl) +
                cfg.memLatency + queueDelay +
                noc.memResponseLatency(mc, bank_tile, data);
        });
        lat += mem_leg;
        offchip += mem_leg;
        if (far) {
            noc.addFarMemTraffic(TrafficClass::LLCToMem, bank_tile,
                                 mc, ctrl);
            noc.addFarMemResponse(TrafficClass::LLCToMem, mc,
                                  bank_tile, data);
            stats.farMemAccesses++;
            stats.farOffChipLatSum += mem_leg;
            StatRegistry::add(kMemFarAccesses);
            chunkFarMisses++;
        } else {
            noc.addMemTraffic(TrafficClass::LLCToMem, bank_tile, mc,
                              ctrl);
            noc.addMemResponse(TrafficClass::LLCToMem, mc, bank_tile,
                               data);
            chunkMisses++;
        }
        stats.memAccesses++;
        noteMemAccess(mc);
        fill_res = banks[mr.bank].fill(sample.line, tag, core);
        filled = true;
    }

    if (filled && fill_res.evicted && fill_res.evictedSharers != 0) {
        // Invalidate L2 copies of the victim (in-cache directory).
        std::uint64_t mask = fill_res.evictedSharers;
        while (mask != 0) {
            const int sharer = std::countr_zero(mask);
            mask &= mask - 1;
            if (sharer < mesh.numTiles()) {
                noc.addTraffic(TrafficClass::Other, bank_tile,
                               static_cast<TileId>(sharer), ctrl);
            }
        }
    }

    if (mr.invalidatePage) {
        // R-NUCA reclassification: flush the page from its old bank.
        int flushed = 0;
        for (std::uint32_t i = 0; i < linesPerPage; i++) {
            if (banks[mr.invalidateBank].invalidateLine(
                    mr.invalidatePageBase + i)) {
                flushed++;
            }
        }
        if (flushed > 0) {
            const TileId old_tile = static_cast<TileId>(
                mr.invalidateBank / cfg.banksPerTile);
            // Flushes write back via the page-interleaved home
            // controller, even under numaAwareMem (matches the
            // legacy accounting).
            noc.addMemTraffic(TrafficClass::Other, old_tile,
                              mesh.memCtrlOf(sample.line),
                              data * flushed);
        }
    }

    stats.onChipLatSum += onchip;
    stats.offChipLatSum += offchip;
    clocks[t].addAccess(thr.instrPerAccess, lat);

    if (cfg.traceIpc) {
        const auto bin = static_cast<std::size_t>(
            clocks[t].cycleCount() / cfg.traceBinCycles);
        if (bin >= ipcBins.size())
            ipcBins.resize(bin + 1, 0.0);
        ipcBins[bin] += thr.instrPerAccess;
    }
}

} // namespace cdcs
