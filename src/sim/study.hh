/**
 * @file
 * The declarative study API: a StudySpec describes one experiment of
 * the paper's evaluation matrix (name, paper reference, config
 * tweaks, scheme lineup by registered name, a body that drives the
 * shared ExperimentRunner and renders through a ReportSink), and a
 * process-wide StudyRegistry lets one `cdcs_studies` CLI enumerate
 * and run all of them with typed `--set key=value` overrides.
 *
 * Adding a scenario is a data change: register a StudySpec (see
 * bench/studies/) and it shows up in `cdcs_studies list` — no new
 * binary, no hand-rolled env parsing, no copied printers.
 */

#ifndef CDCS_SIM_STUDY_HH
#define CDCS_SIM_STUDY_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment_runner.hh"
#include "sim/overrides.hh"
#include "sim/report.hh"
#include "sim/scheme_registry.hh"

namespace cdcs
{

class StudyContext;

/** Declarative description of one study. */
struct StudySpec
{
    /** Registry key and CLI name (e.g. "fig11"). */
    std::string name;
    /** Display title (the legacy header's first field). */
    std::string title;
    /** Paper reference shown in the header and `list`. */
    std::string paperRef;
    /** "figure", "table" or "ablation". */
    std::string category = "figure";
    /** CDCS_MIXES / `--set mixes=` fallback. */
    int defaultMixes = 4;
    /**
     * Declares that the study re-runs its lineup several times
     * (derived variants, scaling loops), so identical (cfg, scheme,
     * mix) runs can recur within one invocation. Such studies get
     * the general result cache enabled by default (`--set cache=0`
     * still wins); the cache footer is only printed when hits
     * actually occur, so default text output is unchanged.
     */
    bool repeatedLineup = false;
    /**
     * The registered base schemes the study builds from, by
     * SchemeRegistry name (what ctx.lineup() resolves). Bodies may
     * derive further variants (fig17's move schemes, vic_monitors'
     * monitor configurations), which appear only in the results.
     */
    std::vector<std::string> lineup;
    /**
     * Static config tweaks applied after the CDCS_* env defaults and
     * before `--set` overrides (e.g. Table 1's 6x6 mesh).
     */
    std::function<void(SystemConfig &)> configure;
    /** The study body. */
    std::function<void(StudyContext &)> run;
};

/** Everything a study body needs, resolved from env + overrides. */
class StudyContext
{
  public:
    StudyContext(const StudySpec &spec_, SystemConfig cfg_,
                 int mixes_, ExperimentRunner &runner_,
                 ReportSink &sink_, const Overrides &overrides_)
        : spec(spec_), cfg(std::move(cfg_)), mixes(mixes_),
          runner(runner_), sink(sink_), overrides(overrides_)
    {
    }

    const StudySpec &spec;
    SystemConfig cfg;   ///< Defaults < env < configure < --set.
    int mixes;          ///< defaultMixes < CDCS_MIXES < --set mixes.
    ExperimentRunner &runner;
    ReportSink &sink;

    /** Build spec.lineup through the SchemeRegistry. */
    std::vector<SchemeSpec> lineup() const;

    /** Study-specific knob: `--set key=` < `env` < fallback. */
    std::uint64_t knob(const char *key, const char *env,
                       std::uint64_t fallback) const;

    /** The standard reproducibility header. */
    void header() const { header(mixes); }
    void header(int mixes_shown) const;

  private:
    const Overrides &overrides;
};

/** Process-wide name -> StudySpec map. */
class StudyRegistry
{
  public:
    static StudyRegistry &instance();

    /** Register a study under its (unique) spec.name. */
    void add(StudySpec spec);

    const StudySpec *find(const std::string &name) const;

    /** All studies, name-sorted. */
    std::vector<const StudySpec *> all() const;

  private:
    std::map<std::string, StudySpec> studies;
};

/** Static registrar: `const StudyRegistrar reg(spec);` */
struct StudyRegistrar
{
    explicit StudyRegistrar(StudySpec spec);
};

/**
 * Runner options resolved from overrides/env: workers, result-cache
 * opt-in (`--set cache=1` / CDCS_CACHE) and budget. `default_cache`
 * is the fallback when neither `--set cache` nor CDCS_CACHE is given
 * (true when any study of the batch declares a repeated lineup).
 */
ExperimentRunner::Options
runnerOptions(const Overrides &overrides, bool default_cache = false);

/**
 * Run one study: resolve its config (defaults < CDCS_* env <
 * spec.configure < overrides) and mix count, run the body, and emit
 * the cache footer when the result cache is enabled. Returns 0 on
 * success.
 */
int runStudy(const StudySpec &spec, const Overrides &overrides,
             ExperimentRunner &runner, ReportSink &sink);

/**
 * Body of the thin per-figure executables: run one registered study
 * with env knobs only and text output on stdout — byte-identical to
 * the legacy hand-written harness it replaced.
 */
int studyMain(const char *name);

/** The `cdcs_studies` CLI (list / run, --set, --format). */
int studiesCliMain(int argc, char **argv);

} // namespace cdcs

#endif // CDCS_SIM_STUDY_HH
