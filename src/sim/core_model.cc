// CoreClock is header-only; this translation unit anchors the library
// target.
#include "sim/core_model.hh"
