/**
 * @file
 * The parallel experiment engine behind every figure sweep: shards
 * individual (scheme, mix) runs — not just mixes — across a
 * work-stealing pool, memoizes the shared S-NUCA baseline, and
 * aggregates per-scheme weighted speedups, latency, traffic and
 * energy into a structured SweepResult with optional JSON export.
 *
 * Determinism: every run is a pure function of (SystemConfig,
 * SchemeSpec, MixSpec) — all RNG streams are derived from the config
 * and mix seeds, never from scheduling order — and aggregation
 * iterates results in a fixed order, so a sweep produces bit-identical
 * output whether it runs serially (CDCS_WORKERS=1) or on all cores.
 */

#ifndef CDCS_SIM_EXPERIMENT_RUNNER_HH
#define CDCS_SIM_EXPERIMENT_RUNNER_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/task_pool.hh"
#include "sim/experiment.hh"
#include "sim/result_store.hh"

namespace cdcs
{

/** Per-scheme results of a scheme x mix sweep. */
struct SweepResult
{
    std::vector<SchemeSpec> schemes;
    /// ws[s][m]: weighted speedup of scheme s on mix m vs. scheme 0.
    std::vector<std::vector<double>> ws;
    /// Per-scheme aggregates over mixes.
    std::vector<RunResult> firstRun;    ///< Scheme results on mix 0.
    std::vector<double> onChipLat;      ///< Mean avg on-chip latency.
    std::vector<double> offChipLat;     ///< Mean off-chip lat/instr.
    std::vector<std::array<double, 3>> trafficPerInstr;
    std::vector<double> energyPerInstr;
    std::vector<std::array<double, 5>> energyParts;

    int
    mixes() const
    {
        return ws.empty() ? 0 : static_cast<int>(ws[0].size());
    }

    /** Serialize schemes + per-mix/per-scheme aggregates as JSON. */
    std::string toJson() const;

    /** Write toJson() to `path`; returns false on I/O failure. */
    bool writeJson(const std::string &path) const;
};

/**
 * Parallel (scheme, mix) experiment runner. One instance owns a
 * work-stealing pool and a baseline memo; reuse it across sweeps so
 * identical baseline runs are shared.
 */
class ExperimentRunner
{
  public:
    struct Options
    {
        /**
         * Worker threads; 0 honors CDCS_WORKERS and falls back to the
         * hardware thread count. 1 forces serial in-order execution
         * (the determinism-check mode).
         */
        unsigned workers = 0;

        /** Share identical S-NUCA baseline runs across sweeps. */
        bool memoizeBaseline = true;

        /**
         * Opt-in general (cfg, scheme, mix) result cache: any
         * identical run repeated within the runner's lifetime (the
         * same study run twice, lineups sharing runs under one
         * config) is served from the cache, not just S-NUCA
         * baselines. Studies with disjoint seeds/configs get no
         * reuse — the footer's hit counter shows what it bought.
         */
        bool cacheResults = false;

        /** Max cached entries; FIFO eviction beyond the budget. */
        std::size_t cacheBudget = 1024;

        /**
         * Persistent cache tier: directory of the on-disk result
         * store shared across processes (`--set cacheDir=` /
         * CDCS_CACHE_DIR). Empty disables the tier. Cacheable runs
         * missing in memory are looked up here before simulating,
         * and every simulated cacheable run is written back.
         */
        std::string cacheDir;

        /**
         * Deterministic sweep sharding: this invocation only
         * simulates jobs whose salted content hash satisfies
         * `hash % shardCount == shardIndex`. Non-owned jobs are
         * served from the cache tiers when possible and otherwise
         * skipped (returning a zero RunResult), so a shard's own
         * report output is meaningless — `cdcs_studies merge`
         * recombines the shards' stores into the real report.
         * Requires cacheDir.
         */
        int shardIndex = 0;
        int shardCount = 1;
    };

    /** Result-cache counters (monotonic over the runner's life). */
    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;

        /** Persistent-tier mirror (all zero without a store). */
        bool persistent = false;  ///< Store attached and usable.
        std::uint64_t storeHits = 0;
        std::uint64_t storeMisses = 0;
        std::uint64_t storeEvictions = 0; ///< Stale records replaced.
        std::uint64_t storeCorrupt = 0;   ///< Records skipped.
        std::uint64_t shardSkipped = 0;   ///< Jobs left to other shards.
    };

    /** One unit of schedulable work. */
    struct Job
    {
        SystemConfig cfg;
        SchemeSpec scheme;
        MixSpec mix;
    };

    ExperimentRunner() : ExperimentRunner(Options{}) {}
    explicit ExperimentRunner(Options options);

    /** Run one scheme on one mix (memoized if an S-NUCA baseline). */
    RunResult run(const SystemConfig &cfg, const SchemeSpec &scheme,
                  const MixSpec &mix);

    /** Run every job concurrently; results in job order. */
    std::vector<RunResult> runAll(const std::vector<Job> &jobs);

    /**
     * Run several schemes on the same mix (identical workload
     * streams), in parallel over schemes; results in scheme order.
     */
    std::vector<RunResult>
    runSchemes(const SystemConfig &cfg,
               const std::vector<SchemeSpec> &schemes,
               const MixSpec &mix);

    /**
     * Run `schemes` (scheme 0 is the baseline all weighted speedups
     * are computed against) over `mixes` mixes built by `mix_of`,
     * sharding all scheme x mix pairs across the pool at once.
     */
    SweepResult sweep(const SystemConfig &cfg,
                      const std::vector<SchemeSpec> &schemes,
                      int mixes,
                      const std::function<MixSpec(int)> &mix_of);

    /** Parallel index map over [0, n) (work-stealing order). */
    void forEach(int n, const std::function<void(int)> &fn);

    unsigned workers() const { return pool.workerCount(); }

    /** The shared pool (steal/wakeup/idle counters for reporting). */
    const WorkStealingPool &taskPool() const { return pool; }

    const Options &options() const { return opts; }

    /** Snapshot of the result-cache counters. */
    CacheStats cacheStats() const;

    /** The persistent store, or nullptr when the tier is off. */
    const ResultStore *store() const { return resultStore.get(); }

    /**
     * Write the shard manifest (JSON) for a sharded invocation:
     * every cacheable cell this runner saw, with its content hash,
     * owning shard and how it was resolved ("simulated", "storeHit",
     * "memHit" or "skipped"). tools/merge_study_json.py checks a
     * shard set's manifests for completeness and disjointness.
     */
    bool writeShardManifest(const std::string &path) const;

  private:
    /**
     * Exact-match memo key: a full serialization of everything that
     * can influence a run's outcome.
     */
    static std::string cacheKey(const SystemConfig &cfg,
                                const SchemeSpec &scheme,
                                const MixSpec &mix);

    RunResult runJob(const Job &job);

    /** How a sharded runner resolved a cell (manifest categories). */
    enum class CellAction : int
    {
        Skipped = 0,
        MemHit,
        StoreHit,
        Simulated
    };

    /** Record the strongest action seen for a cell (sharded only). */
    void noteCell(std::uint64_t hash, CellAction action);

    Options opts;
    WorkStealingPool pool;
    std::unique_ptr<ResultStore> resultStore;
    mutable std::mutex cacheMu;
    /**
     * The result cache. Holds S-NUCA baselines (memoizeBaseline) and,
     * when cacheResults is on, every run; bounded by cacheBudget with
     * FIFO eviction (cacheFifo tracks insertion order).
     */
    std::unordered_map<std::string, RunResult> cache;
    std::deque<std::string> cacheFifo;
    CacheStats stats;
    /** Per-cell manifest state, hash-sorted (sharded runs only). */
    std::map<std::uint64_t, CellAction> cellActions;
};

} // namespace cdcs

#endif // CDCS_SIM_EXPERIMENT_RUNNER_HH
