/**
 * @file
 * Per-access dynamics layer: drives one LLC access end to end through
 * the platform (policy mapping, bank lookup, demand moves, memory),
 * accounts latency/traffic/stats, models the memory-bandwidth queue,
 * and keeps the first-touch NUMA page map. Owns the per-thread core
 * clocks and the per-epoch access matrix the EpochController feeds to
 * the runtime.
 */

#ifndef CDCS_SIM_ACCESS_PATH_HH
#define CDCS_SIM_ACCESS_PATH_HH

#include <vector>

#include "sim/core_model.hh"
#include "sim/platform.hh"
#include "sim/run_stats.hh"
#include "workload/mix.hh"

namespace cdcs
{

/** The hot path: issues accesses and accrues timing state. */
class AccessPath
{
  public:
    /**
     * @param threadCore Live thread-to-core map (updated between
     *        epochs by the EpochController).
     * @param stats Shared run counters (reset at warmup boundary).
     */
    AccessPath(const SystemConfig &cfg, Platform &platform,
               WorkloadMix &mix, std::vector<TileId> &threadCore,
               RunStats &stats);

    /** Issue one access of thread t through the LLC. */
    void issueAccess(ThreadId t);

    /** Start a chunk: reset the per-chunk miss counter. */
    void beginChunk();

    /**
     * End a chunk: refresh the M/D/m memory queueing delays from the
     * miss rates observed between mean active cycles `before` and
     * `after` — one queue per tier, each sized by its own channel
     * count and service rate, so far-tier pressure never inflates the
     * near queue (and vice versa).
     */
    void endChunk(double before, double after);

    /**
     * Mean active cycles over the active thread clocks (all of them
     * on the static-traffic path; departed tenants' frozen clocks
     * are excluded under churn).
     */
    double meanActiveCycles() const;

    /// Per-thread performance state.
    std::vector<CoreClock> clocks;
    /// accessMatrix[t][vc]: accesses this epoch (runtime input).
    std::vector<std::vector<double>> accessMatrix;
    /// Aggregate-instruction bins for the IPC trace (traceIpc).
    std::vector<double> ipcBins;

  private:
    /**
     * Two-level placement of `line` when accessed by `core`:
     * delegated to the platform's MemPlacementPolicy (interleave by
     * default; first-touch and contention-rebalanced policies keep
     * their own page maps), which consults the attached tiering
     * policy for near/far residency. With no far tier the tier pins
     * MemTier::Near.
     */
    MemPlacement memPlaceFor(TileId core, LineAddr line);

    /** Account one memory access against its serving controller. */
    void noteMemAccess(int ctrl);

    const SystemConfig &cfg;
    Platform &platform;
    WorkloadMix &mix;
    std::vector<TileId> &threadCore;
    RunStats &stats;

    // Memory-bandwidth queueing state, per tier. chunkMisses counts
    // near-tier misses only once a far tier is on; with no far tier
    // every miss is near and the arithmetic is the legacy one.
    double queueDelay = 0.0;
    double farQueueDelay = 0.0;
    std::uint64_t chunkMisses = 0;
    std::uint64_t chunkFarMisses = 0;

    std::uint64_t monitorTrafficSampleCtr = 0;
};

} // namespace cdcs

#endif // CDCS_SIM_ACCESS_PATH_HH
