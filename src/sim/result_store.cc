#include "sim/result_store.hh"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hh"
#include "obs/stat_registry.hh"

// CMake injects the `git describe` string for this source file only;
// builds outside a git checkout (or without the definition) degrade
// to a fixed salt that still invalidates against real versions.
#ifndef CDCS_CODE_VERSION
#define CDCS_CODE_VERSION "unknown"
#endif

namespace cdcs
{

namespace
{

constexpr std::uint32_t recordMagic = 0x43444352; // "CDCR"
// Format 4: records carry the far-memory-tier fields (per-tier
// access/latency counters, tier promotion/demotion totals, and the
// NocLinkStat far flag). Older records are rejected.
constexpr std::uint32_t recordFormat = 4;

// Store traffic stats; the record-size histogram buckets by power of
// two from 4 KiB.
const StatId kStoreHits = StatRegistry::counter("store.hits");
const StatId kStoreMisses = StatRegistry::counter("store.misses");
const StatId kStoreCorrupt = StatRegistry::counter("store.corrupt");
const StatId kStoreWrites = StatRegistry::counter("store.writes");
const StatRegistry::HistId kStoreRecordBytes =
    StatRegistry::histogram("store.record_bytes", 6, 4096);

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; i++) {
        hash ^= bytes[i];
        hash *= 0x100000001B3ull;
    }
    return hash;
}

constexpr std::uint64_t fnvOffset = 0xCBF29CE484222325ull;

/** Append-only little-endian byte writer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::string &out_) : out(out_) {}

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out += s;
    }

    void
    f64Vec(const std::vector<double> &xs)
    {
        u32(static_cast<std::uint32_t>(xs.size()));
        for (double x : xs)
            f64(x);
    }

  private:
    std::string &out;
};

/** Bounds-checked reader; every getter fails on truncation. */
class ByteReader
{
  public:
    ByteReader(const char *data_, std::size_t size_)
        : data(data_), size(size_)
    {
    }

    bool
    u32(std::uint32_t *v)
    {
        if (size - pos < 4)
            return false;
        *v = 0;
        for (int i = 0; i < 4; i++) {
            *v |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(data[pos + i]))
                << (8 * i);
        }
        pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t *v)
    {
        if (size - pos < 8)
            return false;
        *v = 0;
        for (int i = 0; i < 8; i++) {
            *v |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(data[pos + i]))
                << (8 * i);
        }
        pos += 8;
        return true;
    }

    bool
    i64(std::int64_t *v)
    {
        std::uint64_t raw;
        if (!u64(&raw))
            return false;
        *v = static_cast<std::int64_t>(raw);
        return true;
    }

    bool
    f64(double *v)
    {
        std::uint64_t raw;
        if (!u64(&raw))
            return false;
        *v = std::bit_cast<double>(raw);
        return true;
    }

    bool
    str(std::string *s)
    {
        std::uint32_t len;
        if (!u32(&len) || size - pos < len)
            return false;
        s->assign(data + pos, len);
        pos += len;
        return true;
    }

    bool
    f64Vec(std::vector<double> *xs)
    {
        std::uint32_t count;
        if (!u32(&count) || (size - pos) / 8 < count)
            return false;
        xs->resize(count);
        for (std::uint32_t i = 0; i < count; i++) {
            if (!f64(&(*xs)[i]))
                return false;
        }
        return true;
    }

    std::size_t position() const { return pos; }
    std::size_t remaining() const { return size - pos; }

  private:
    const char *data;
    std::size_t size;
    std::size_t pos = 0;
};

void
serializeResult(ByteWriter &w, const RunResult &r)
{
    w.f64Vec(r.threadInstrs);
    w.f64Vec(r.threadCycles);
    w.f64Vec(r.threadIpc);
    w.f64Vec(r.procThroughput);
    w.f64(r.totalInstrs);
    w.f64(r.wallCycles);
    w.u64(r.llcAccesses);
    w.u64(r.llcHits);
    w.u64(r.demandMoves);
    w.u64(r.moveProbes);
    w.u64(r.memAccesses);
    w.u64(r.instantMoved);
    w.u64(r.bulkInvalidated);
    w.u64(r.bgInvalidated);
    w.u64(r.pausedCycles);
    w.i64(r.reconfigs);
    w.f64(r.avgTimes.allocUs);
    w.f64(r.avgTimes.threadPlaceUs);
    w.f64(r.avgTimes.dataPlaceUs);
    w.f64(r.onChipLatSum);
    w.f64(r.offChipLatSum);
    for (std::uint64_t hops : r.trafficFlitHops)
        w.u64(hops);
    w.u32(static_cast<std::uint32_t>(r.nocLinks.size()));
    for (const NocLinkStat &link : r.nocLinks) {
        w.u32(link.src);
        w.u32(link.dst);
        w.i64(link.memCtrl);
        w.u64(link.flits);
        w.f64(link.util);
        w.f64(link.waitCycles);
        w.u32(link.far ? 1 : 0);
    }
    w.u64(r.memMigratedPages);
    w.f64(r.energy.staticE);
    w.f64(r.energy.core);
    w.f64(r.energy.net);
    w.f64(r.energy.llc);
    w.f64(r.energy.mem);
    w.f64Vec(r.ipcTrace);
    w.u64(r.ipcBinCycles);
    w.u32(static_cast<std::uint32_t>(r.memCtrlAccesses.size()));
    for (std::uint64_t n : r.memCtrlAccesses)
        w.u64(n);
    w.u32(static_cast<std::uint32_t>(r.epochTrace.size()));
    for (const EpochRecord &rec : r.epochTrace) {
        w.i64(rec.epoch);
        w.i64(rec.activeThreads);
        w.i64(rec.churnDelta);
        w.f64(rec.aggIpc);
        w.i64(rec.placementMoves);
        w.u64(rec.movedLines);
        w.u32(static_cast<std::uint32_t>(rec.stats.size()));
        for (std::uint64_t v : rec.stats)
            w.u64(v);
    }
    w.u32(static_cast<std::uint32_t>(r.statNames.size()));
    for (const std::string &name : r.statNames)
        w.str(name);
    // Far-memory tier (format 4); appended so the field order above
    // matches format 3 byte for byte up to this point.
    w.u64(r.farMemAccesses);
    w.f64(r.farOffChipLatSum);
    w.u64(r.tierPromotions);
    w.u64(r.tierDemotions);
    w.u64(r.farResidentPages);
    w.u64(r.tieredPages);
}

bool
deserializeResult(ByteReader &r, RunResult *out)
{
    std::int64_t reconfigs;
    std::uint32_t num_links;
    if (!(r.f64Vec(&out->threadInstrs) &&
          r.f64Vec(&out->threadCycles) && r.f64Vec(&out->threadIpc) &&
          r.f64Vec(&out->procThroughput) && r.f64(&out->totalInstrs) &&
          r.f64(&out->wallCycles) && r.u64(&out->llcAccesses) &&
          r.u64(&out->llcHits) && r.u64(&out->demandMoves) &&
          r.u64(&out->moveProbes) && r.u64(&out->memAccesses) &&
          r.u64(&out->instantMoved) && r.u64(&out->bulkInvalidated) &&
          r.u64(&out->bgInvalidated) && r.u64(&out->pausedCycles) &&
          r.i64(&reconfigs) && r.f64(&out->avgTimes.allocUs) &&
          r.f64(&out->avgTimes.threadPlaceUs) &&
          r.f64(&out->avgTimes.dataPlaceUs) &&
          r.f64(&out->onChipLatSum) && r.f64(&out->offChipLatSum))) {
        return false;
    }
    out->reconfigs = static_cast<int>(reconfigs);
    for (std::uint64_t &hops : out->trafficFlitHops) {
        if (!r.u64(&hops))
            return false;
    }
    if (!r.u32(&num_links))
        return false;
    out->nocLinks.resize(num_links);
    for (NocLinkStat &link : out->nocLinks) {
        std::uint32_t src, dst, far;
        std::int64_t ctrl;
        if (!(r.u32(&src) && r.u32(&dst) && r.i64(&ctrl) &&
              r.u64(&link.flits) && r.f64(&link.util) &&
              r.f64(&link.waitCycles) && r.u32(&far))) {
            return false;
        }
        link.src = static_cast<TileId>(src);
        link.dst = static_cast<TileId>(dst);
        link.memCtrl = static_cast<int>(ctrl);
        link.far = far != 0;
    }
    if (!(r.u64(&out->memMigratedPages) && r.f64(&out->energy.staticE) &&
          r.f64(&out->energy.core) && r.f64(&out->energy.net) &&
          r.f64(&out->energy.llc) && r.f64(&out->energy.mem) &&
          r.f64Vec(&out->ipcTrace) && r.u64(&out->ipcBinCycles))) {
        return false;
    }
    std::uint32_t num_ctrls;
    if (!r.u32(&num_ctrls) || r.remaining() / 8 < num_ctrls)
        return false;
    out->memCtrlAccesses.resize(num_ctrls);
    for (std::uint64_t &n : out->memCtrlAccesses) {
        if (!r.u64(&n))
            return false;
    }
    std::uint32_t num_epochs;
    if (!r.u32(&num_epochs) || r.remaining() / 48 < num_epochs)
        return false;
    out->epochTrace.resize(num_epochs);
    for (EpochRecord &rec : out->epochTrace) {
        std::int64_t epoch, active, delta, moves;
        if (!(r.i64(&epoch) && r.i64(&active) && r.i64(&delta) &&
              r.f64(&rec.aggIpc) && r.i64(&moves) &&
              r.u64(&rec.movedLines))) {
            return false;
        }
        rec.epoch = static_cast<int>(epoch);
        rec.activeThreads = static_cast<int>(active);
        rec.churnDelta = static_cast<int>(delta);
        rec.placementMoves = static_cast<int>(moves);
        std::uint32_t num_stats;
        if (!r.u32(&num_stats) || r.remaining() / 8 < num_stats)
            return false;
        rec.stats.resize(num_stats);
        for (std::uint64_t &v : rec.stats) {
            if (!r.u64(&v))
                return false;
        }
    }
    std::uint32_t num_names;
    if (!r.u32(&num_names) || r.remaining() / 4 < num_names)
        return false;
    out->statNames.resize(num_names);
    for (std::string &name : out->statNames) {
        if (!r.str(&name))
            return false;
    }
    if (!(r.u64(&out->farMemAccesses) &&
          r.f64(&out->farOffChipLatSum) &&
          r.u64(&out->tierPromotions) && r.u64(&out->tierDemotions) &&
          r.u64(&out->farResidentPages) && r.u64(&out->tieredPages))) {
        return false;
    }
    return true;
}

bool
makeDirs(const std::string &path)
{
    std::string partial;
    partial.reserve(path.size());
    for (std::size_t i = 0; i <= path.size(); i++) {
        if (i < path.size() && path[i] != '/') {
            partial.push_back(path[i]);
            continue;
        }
        if (!partial.empty() && partial != ".") {
            if (::mkdir(partial.c_str(), 0755) != 0 &&
                errno != EEXIST) {
                return false;
            }
        }
        if (i < path.size())
            partial.push_back('/');
    }
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // anonymous namespace

std::string
ResultStore::buildVersion()
{
    return CDCS_CODE_VERSION;
}

ResultStore::ResultStore(std::string dir, std::string version_)
    : root(std::move(dir)), version(std::move(version_))
{
    if (root.empty())
        return;
    if (!makeDirs(root)) {
        std::fprintf(stderr,
                     "[result-store] cannot create '%s': %s — "
                     "persistent cache disabled\n",
                     root.c_str(), std::strerror(errno));
        return;
    }
    const std::string lock_path = root + "/.lock";
    lockFd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
    if (lockFd < 0) {
        std::fprintf(stderr,
                     "[result-store] cannot open '%s': %s — "
                     "persistent cache disabled\n",
                     lock_path.c_str(), std::strerror(errno));
        return;
    }
    usable = true;
}

ResultStore::~ResultStore()
{
    if (lockFd >= 0)
        ::close(lockFd);
}

std::uint64_t
ResultStore::keyHash(const std::string &key) const
{
    // Salt with the code version (and a separator so no version/key
    // pair can alias another): a rebuild re-keys every record.
    std::uint64_t hash =
        fnv1a64(version.data(), version.size(), fnvOffset);
    hash = fnv1a64("\0", 1, hash);
    return fnv1a64(key.data(), key.size(), hash);
}

std::string
ResultStore::recordPath(std::uint64_t hash) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "/%016llx.res",
                  static_cast<unsigned long long>(hash));
    return root + name;
}

bool
ResultStore::load(const std::string &key, RunResult *out)
{
    if (!usable)
        return false;
    const std::uint64_t hash = keyHash(key);
    std::string blob;
    if (!readFile(recordPath(hash), &blob)) {
        StatRegistry::add(kStoreMisses);
        std::lock_guard<std::mutex> lock(mu);
        counters.misses++;
        return false;
    }

    const auto reject = [&](bool corrupt) {
        StatRegistry::add(corrupt ? kStoreCorrupt : kStoreMisses);
        std::lock_guard<std::mutex> lock(mu);
        (corrupt ? counters.corrupt : counters.misses)++;
        return false;
    };

    if (blob.size() < 8)
        return reject(true);
    // The trailing checksum covers everything before it.
    const std::size_t body = blob.size() - 8;
    ByteReader tail(blob.data() + body, 8);
    std::uint64_t want_sum = 0;
    tail.u64(&want_sum);
    if (fnv1a64(blob.data(), body, fnvOffset) != want_sum)
        return reject(true);

    ByteReader r(blob.data(), body);
    std::uint32_t magic, format;
    std::uint64_t stored_hash;
    std::string stored_version, stored_key;
    if (!(r.u32(&magic) && r.u32(&format) && r.u64(&stored_hash) &&
          r.str(&stored_version) && r.str(&stored_key))) {
        return reject(true);
    }
    if (magic != recordMagic || format != recordFormat ||
        stored_hash != hash) {
        return reject(true);
    }
    // A stale version or a (vanishingly unlikely) hash collision is a
    // well-formed record that simply isn't ours: a miss, not corrupt.
    if (stored_version != version || stored_key != key)
        return reject(false);
    RunResult res;
    if (!deserializeResult(r, &res) || r.remaining() != 0)
        return reject(true);

    *out = std::move(res);
    StatRegistry::add(kStoreHits);
    std::lock_guard<std::mutex> lock(mu);
    counters.hits++;
    return true;
}

bool
ResultStore::save(const std::string &key, const RunResult &result)
{
    if (!usable)
        return false;
    const std::uint64_t hash = keyHash(key);

    std::string blob;
    blob.reserve(1024);
    ByteWriter w(blob);
    w.u32(recordMagic);
    w.u32(recordFormat);
    w.u64(hash);
    w.str(version);
    w.str(key);
    serializeResult(w, result);
    w.u64(fnv1a64(blob.data(), blob.size(), fnvOffset));

    const std::string path = recordPath(hash);
    char tmp_name[64];
    std::snprintf(tmp_name, sizeof(tmp_name),
                  "/.tmp-%016llx-%ld",
                  static_cast<unsigned long long>(hash),
                  static_cast<long>(::getpid()));
    const std::string tmp = root + tmp_name;

    // Advisory writer lock: concurrent processes serialize their
    // stage-and-rename, so two writers of the same cell cannot
    // interleave tmp-file writes (the pid-suffixed names already keep
    // them apart; the lock makes the overwrite order well-defined).
    ::flock(lockFd, LOCK_EX);
    const bool existed = ::access(path.c_str(), F_OK) == 0;
    bool ok = false;
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f != nullptr) {
        ok = std::fwrite(blob.data(), 1, blob.size(), f) ==
            blob.size();
        ok = std::fclose(f) == 0 && ok;
        if (ok)
            ok = std::rename(tmp.c_str(), path.c_str()) == 0;
        if (!ok)
            ::unlink(tmp.c_str());
    }
    ::flock(lockFd, LOCK_UN);

    if (ok) {
        StatRegistry::add(kStoreWrites);
        StatRegistry::observe(kStoreRecordBytes, blob.size());
    }
    std::lock_guard<std::mutex> lock(mu);
    if (ok) {
        counters.writes++;
        if (existed)
            counters.evictions++;
    }
    return ok;
}

ResultStoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

} // namespace cdcs
