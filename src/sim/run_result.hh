/**
 * @file
 * Aggregated results of one run, reported by the System facade and
 * consumed by the experiment layers and bench harnesses.
 */

#ifndef CDCS_SIM_RUN_RESULT_HH
#define CDCS_SIM_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"
#include "net/noc_model.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/energy.hh"

namespace cdcs
{

/** Aggregated results of one run (post-warmup unless noted). */
struct RunResult
{
    std::vector<double> threadInstrs;
    std::vector<double> threadCycles;
    std::vector<double> threadIpc;
    /** Per-process throughput: sum(instrs) / max(cycles). */
    std::vector<double> procThroughput;

    double totalInstrs = 0.0;
    double wallCycles = 0.0;

    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t demandMoves = 0;
    std::uint64_t moveProbes = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t instantMoved = 0;
    std::uint64_t bulkInvalidated = 0;
    std::uint64_t bgInvalidated = 0;
    Cycles pausedCycles = 0;
    int reconfigs = 0;
    RuntimeStepTimes avgTimes;

    double onChipLatSum = 0.0;  ///< L2<->LLC network cycles.
    double offChipLatSum = 0.0; ///< Memory + LLC<->mem network cycles.

    std::array<std::uint64_t, 3> trafficFlitHops = {0, 0, 0};

    /**
     * Per-link loads (post-warmup); empty under network models that
     * don't track links (zero-load). Feeds the link-load heatmaps.
     */
    std::vector<NocLinkStat> nocLinks;

    /**
     * Pages re-pinned by the memory placement policy over the whole
     * run (warmup included; 0 for the static policies).
     */
    std::uint64_t memMigratedPages = 0;

    EnergyBreakdown energy;

    /** Aggregate-IPC trace (whole run, no warmup trim). */
    std::vector<double> ipcTrace;
    Cycles ipcBinCycles = 0;

    double
    avgOnChipLatency() const
    {
        return llcAccesses > 0 ? onChipLatSum / llcAccesses : 0.0;
    }

    double
    offChipLatPerInstr() const
    {
        return totalInstrs > 0 ? offChipLatSum / totalInstrs : 0.0;
    }

    double
    flitHopsPerInstr(TrafficClass cls) const
    {
        return totalInstrs > 0
            ? trafficFlitHops[static_cast<std::size_t>(cls)] /
                totalInstrs
            : 0.0;
    }
};

} // namespace cdcs

#endif // CDCS_SIM_RUN_RESULT_HH
