/**
 * @file
 * Aggregated results of one run, reported by the System facade and
 * consumed by the experiment layers and bench harnesses.
 */

#ifndef CDCS_SIM_RUN_RESULT_HH
#define CDCS_SIM_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"
#include "net/noc_model.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/energy.hh"

namespace cdcs
{

/**
 * One epoch of the dynamic-traffic / metrics trace. Recorded for
 * every epoch (warmup included) whenever the traffic layer is
 * attached or a `stats=` selection is active; empty otherwise.
 */
struct EpochRecord
{
    int epoch = 0;
    /** Active (non-departed) threads during this epoch. */
    int activeThreads = 0;
    /** Net arrivals (+) / departures (-) applied entering it. */
    int churnDelta = 0;
    /** Sum of instrs / mean cycles over the active threads. */
    double aggIpc = 0.0;
    /** Threads re-placed by this epoch's reconfiguration. */
    int placementMoves = 0;
    /** Lines moved or invalidated by this epoch's reconfiguration. */
    std::uint64_t movedLines = 0;
    /**
     * StatRegistry deltas since the previous sampled epoch, one per
     * RunResult::statNames entry. Empty on epochs the `statsEvery`
     * schedule skipped (and always when stats are off).
     */
    std::vector<std::uint64_t> stats;
};

/** Aggregated results of one run (post-warmup unless noted). */
struct RunResult
{
    std::vector<double> threadInstrs;
    std::vector<double> threadCycles;
    std::vector<double> threadIpc;
    /** Per-process throughput: sum(instrs) / max(cycles). */
    std::vector<double> procThroughput;

    double totalInstrs = 0.0;
    double wallCycles = 0.0;

    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t demandMoves = 0;
    std::uint64_t moveProbes = 0;
    std::uint64_t memAccesses = 0;
    /** Subset of memAccesses served by the far tier (0 = no far tier). */
    std::uint64_t farMemAccesses = 0;
    std::uint64_t instantMoved = 0;
    std::uint64_t bulkInvalidated = 0;
    std::uint64_t bgInvalidated = 0;
    Cycles pausedCycles = 0;
    int reconfigs = 0;
    RuntimeStepTimes avgTimes;

    double onChipLatSum = 0.0;  ///< L2<->LLC network cycles.
    double offChipLatSum = 0.0; ///< Memory + LLC<->mem network cycles.
    double farOffChipLatSum = 0.0; ///< Far-tier share of offChipLatSum.

    std::array<std::uint64_t, 3> trafficFlitHops = {0, 0, 0};

    /**
     * Per-link loads (post-warmup); empty under network models that
     * don't track links (zero-load). Feeds the link-load heatmaps.
     */
    std::vector<NocLinkStat> nocLinks;

    /**
     * Pages migrated over the whole run (warmup included; 0 for the
     * static policies): controller re-pins by the placement policy
     * plus tier promotions/demotions by the tiering policy.
     */
    std::uint64_t memMigratedPages = 0;

    // ---- Far-memory tiering (all 0 when no far tier is configured).
    /** Pages promoted far -> near over the run (warmup included). */
    std::uint64_t tierPromotions = 0;
    /** Pages demoted near -> far over the run (warmup included). */
    std::uint64_t tierDemotions = 0;
    /** Pages resident in the far tier at the end of the run. */
    std::uint64_t farResidentPages = 0;
    /** Pages the tiering policy tracked (near + far) at the end. */
    std::uint64_t tieredPages = 0;

    /** Share of memory accesses served by the far tier. */
    double
    farAccessShare() const
    {
        return memAccesses > 0
            ? static_cast<double>(farMemAccesses) /
                static_cast<double>(memAccesses)
            : 0.0;
    }

    EnergyBreakdown energy;

    /** Aggregate-IPC trace (whole run, no warmup trim). */
    std::vector<double> ipcTrace;
    Cycles ipcBinCycles = 0;

    /**
     * Memory accesses served per controller (post-warmup); the
     * skew_sweep study's load-imbalance signal.
     */
    std::vector<std::uint64_t> memCtrlAccesses;

    /** Per-epoch dynamic-traffic trace (whole run, no warmup trim). */
    std::vector<EpochRecord> epochTrace;

    /**
     * Names of the stats sampled into EpochRecord::stats (sorted;
     * empty when the run recorded none). Column header of the
     * metrics-trace export.
     */
    std::vector<std::string> statNames;

    /** Max/mean per-controller memory load; 0 with no accesses. */
    double memCtrlImbalance() const;

    /**
     * Per-active-thread IPC of one traced epoch (aggIpc spread over
     * the active threads); 0 when out of range or no one is active.
     */
    double perThreadIpc(int epoch) const;

    /**
     * Weighted-speedup-recovery latency after the churn event at
     * `event_epoch`: epochs until per-active-thread IPC first
     * reaches `threshold` x its settled value (the last epoch before
     * the next churn event, or the end of the run). Returns -1 when
     * the trace has no such epoch or the settled IPC is zero.
     */
    int recoveryEpochsAfter(int event_epoch,
                            double threshold = 0.95) const;

    /**
     * Reconfiguration latency after the churn event at `event_epoch`:
     * epochs (counting the event epoch) until thread placement stops
     * changing, within the same window recoveryEpochsAfter uses.
     * 0 means the placement never moved after the event; -1 when the
     * trace has no such epoch.
     */
    int reconfigLatencyAfter(int event_epoch) const;

    /** Epochs of churn (nonzero churnDelta), in trace order. */
    std::vector<int> churnEpochs() const;

    double
    avgOnChipLatency() const
    {
        return llcAccesses > 0 ? onChipLatSum / llcAccesses : 0.0;
    }

    double
    offChipLatPerInstr() const
    {
        return totalInstrs > 0 ? offChipLatSum / totalInstrs : 0.0;
    }

    double
    flitHopsPerInstr(TrafficClass cls) const
    {
        return totalInstrs > 0
            ? trafficFlitHops[static_cast<std::size_t>(cls)] /
                totalInstrs
            : 0.0;
    }
};

} // namespace cdcs

#endif // CDCS_SIM_RUN_RESULT_HH
