#include "sim/experiment_runner.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"
#include "common/profile.hh"
#include "common/stats.hh"
#include "obs/trace.hh"

namespace cdcs
{

namespace
{

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

void
appendDoubleArray(std::string &out, const std::vector<double> &xs)
{
    out += '[';
    for (std::size_t i = 0; i < xs.size(); i++)
        appendF(out, "%s%.17g", i > 0 ? "," : "", xs[i]);
    out += ']';
}

} // anonymous namespace

std::string
SweepResult::toJson() const
{
    std::string out = "{\n";
    appendF(out, "  \"mixes\": %d,\n", mixes());
    out += "  \"schemes\": [\n";
    for (std::size_t s = 0; s < schemes.size(); s++) {
        out += "    {\n";
        appendF(out, "      \"name\": \"%s\",\n",
                jsonEscape(schemes[s].name).c_str());
        out += "      \"ws\": ";
        appendDoubleArray(out, ws[s]);
        out += ",\n";
        appendF(out, "      \"gmeanWs\": %.17g,\n",
                ws[s].empty() ? 0.0 : gmean(ws[s]));
        appendF(out, "      \"onChipLat\": %.17g,\n", onChipLat[s]);
        appendF(out, "      \"offChipLat\": %.17g,\n", offChipLat[s]);
        appendF(out,
                "      \"trafficPerInstr\": [%.17g,%.17g,%.17g],\n",
                trafficPerInstr[s][0], trafficPerInstr[s][1],
                trafficPerInstr[s][2]);
        appendF(out, "      \"energyPerInstr\": %.17g,\n",
                energyPerInstr[s]);
        appendF(out,
                "      \"energyParts\": {\"static\": %.17g, "
                "\"core\": %.17g, \"net\": %.17g, \"llc\": %.17g, "
                "\"mem\": %.17g}",
                energyParts[s][0], energyParts[s][1],
                energyParts[s][2], energyParts[s][3],
                energyParts[s][4]);
        // Far-memory tiering summary, only when the run tracked
        // tiered pages (a far tier was on) so no-far-tier documents
        // keep their legacy shape.
        if (s < firstRun.size() && firstRun[s].tieredPages > 0) {
            out += ",\n";
            appendF(out,
                    "      \"farAccessShare\": %.17g,\n"
                    "      \"farResidentPages\": %" PRIu64
                    ",\n      \"tierPromotions\": %" PRIu64
                    ",\n      \"tierDemotions\": %" PRIu64 "",
                    firstRun[s].farAccessShare(),
                    firstRun[s].farResidentPages,
                    firstRun[s].tierPromotions,
                    firstRun[s].tierDemotions);
        }
        // Link-load summary, only under link-tracking noc models so
        // zero-load sweep documents keep their legacy shape.
        if (s < firstRun.size() && !firstRun[s].nocLinks.empty()) {
            std::uint64_t peak = 0;
            double max_util = 0.0;
            for (const NocLinkStat &link : firstRun[s].nocLinks) {
                peak = std::max(peak, link.flits);
                max_util = std::max(max_util, link.util);
            }
            out += ",\n";
            appendF(out,
                    "      \"nocPeakLinkFlits\": %" PRIu64
                    ",\n      \"nocMaxLinkUtil\": %.17g\n",
                    peak, max_util);
        } else {
            out += "\n";
        }
        appendF(out, "    }%s\n",
                s + 1 < schemes.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

bool
SweepResult::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

ExperimentRunner::ExperimentRunner(Options options)
    : opts(options), pool(options.workers)
{
    cdcs_assert(opts.shardCount >= 1 &&
                    opts.shardIndex >= 0 &&
                    opts.shardIndex < opts.shardCount,
                "shard index out of range");
    if (!opts.cacheDir.empty()) {
        resultStore = std::make_unique<ResultStore>(opts.cacheDir);
        if (!resultStore->ok())
            resultStore.reset();
    }
    // Sharding partitions on the store's salted content hash and is
    // only useful when shards can exchange results through a store.
    cdcs_assert(opts.shardCount == 1 || resultStore != nullptr,
                "sharded runs need a usable cacheDir");
}

std::string
ExperimentRunner::cacheKey(const SystemConfig &cfg,
                           const SchemeSpec &scheme,
                           const MixSpec &mix)
{
    std::string key;
    key.reserve(512);
    // SystemConfig.
    appendF(key,
            "cfg:%d,%d,%d,%" PRIu64 ",%u,%" PRIu64 ",%" PRIu64
            ",%" PRIu64 ",%" PRIu64 ",%u,%u,%d,%.17g,%d,%" PRIu64
            ",%d,%d,%u,%d,%" PRIu64 ",%d,%" PRIu64 ",%.17g,%.17g|",
            cfg.meshWidth, cfg.meshHeight, cfg.banksPerTile,
            cfg.bankLines, cfg.bankWays, cfg.bankLatency,
            cfg.memLatency, cfg.noc.routerCycles, cfg.noc.linkCycles,
            cfg.noc.flitBits, cfg.noc.headerBits,
            cfg.modelMemBandwidth ? 1 : 0, cfg.memLinesPerCycle,
            cfg.memChannels,
            cfg.accessesPerThreadEpoch, cfg.epochs, cfg.warmupEpochs,
            cfg.chunkAccesses, cfg.traceIpc ? 1 : 0,
            cfg.traceBinCycles, static_cast<int>(cfg.moveCfg.moves),
            cfg.seed, cfg.allocGranuleLines, cfg.monitorSmoothing);
    appendF(key,
            "mv:%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.17g|",
            cfg.moveCfg.walkCyclesPerSet, cfg.moveCfg.walkDelay,
            cfg.moveCfg.bulkCyclesPerSet, cfg.moveCfg.allocHysteresis);
    appendF(key, "noc:%s,%.17g,%.17g|", cfg.nocModel.c_str(),
            cfg.nocInjScale, cfg.nocMaxUtil);
    appendF(key, "pcost:%s|", cfg.placementCost.c_str());
    // The effective policy, so the numaAwareMem alias and an explicit
    // first-touch share entries.
    appendF(key, "memp:%s|", cfg.effectiveMemPlacement().c_str());
    // Far-memory tier (all-defaults keeps a stable section, like
    // traf: below).
    appendF(key, "tier:%.17g,%" PRIu64 ",%d,%.17g,%s|",
            cfg.farMemRatio, cfg.farMemLatency, cfg.farMemChannels,
            cfg.farMemLinesPerCycle, cfg.memTiering.c_str());
    // Dynamic traffic (all-defaults keeps a stable section, so the
    // static studies' keys still differ only where behavior does).
    appendF(key,
            "traf:%.17g,%.17g,%" PRIu64 ",%" PRIu64 ",%d,%d,%.17g,"
            "%s|",
            cfg.skewAlpha, cfg.skewFraction, cfg.skewLines,
            cfg.skewHotLines, cfg.skewPageHot ? 1 : 0,
            cfg.skewDriftEpochs, cfg.skewDriftFraction,
            cfg.churn.c_str());
    // SchemeSpec (name excluded: it is a label, not behavior).
    appendF(key,
            "spec:%d,%d,%d,%d,%u,%u,%u,%d,%d,%d,%d,%d,%.17g,%.17g,"
            "%.17g|",
            static_cast<int>(scheme.kind),
            static_cast<int>(scheme.moves),
            static_cast<int>(scheme.sched),
            static_cast<int>(scheme.monitor), scheme.monitorWays,
            scheme.monitorSets, scheme.monitorSampleShift,
            static_cast<int>(scheme.placer), scheme.saIterations,
            scheme.cdcsOpts.latencyAwareAlloc ? 1 : 0,
            scheme.cdcsOpts.placeThreads ? 1 : 0,
            scheme.cdcsOpts.refineTrades ? 1 : 0,
            scheme.cdcsOpts.minAllocLines,
            scheme.cdcsOpts.sizeHysteresis,
            scheme.cdcsOpts.placeGranule);
    // MixSpec.
    appendF(key, "mix:%d,%d,%" PRIu64,
            static_cast<int>(mix.kind), mix.count, mix.seed);
    for (const std::string &name : mix.names) {
        key += ',';
        key += name;
    }
    return key;
}

ExperimentRunner::CacheStats
ExperimentRunner::cacheStats() const
{
    std::lock_guard<std::mutex> lock(cacheMu);
    CacheStats snapshot = stats;
    snapshot.entries = cache.size();
    if (resultStore != nullptr) {
        const ResultStoreStats ss = resultStore->stats();
        snapshot.persistent = true;
        snapshot.storeHits = ss.hits;
        snapshot.storeMisses = ss.misses;
        snapshot.storeEvictions = ss.evictions;
        snapshot.storeCorrupt = ss.corrupt;
    }
    return snapshot;
}

void
ExperimentRunner::noteCell(std::uint64_t hash, CellAction action)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto [it, inserted] = cellActions.emplace(hash, action);
    if (!inserted && static_cast<int>(action) >
                         static_cast<int>(it->second)) {
        it->second = action;
    }
}

bool
ExperimentRunner::writeShardManifest(const std::string &path) const
{
    static const char *const action_names[] = {"skipped", "memHit",
                                               "storeHit",
                                               "simulated"};
    std::string doc;
    {
        std::lock_guard<std::mutex> lock(cacheMu);
        appendF(doc,
                "{\n  \"shard\": %d,\n  \"shards\": %d,\n"
                "  \"codeVersion\": %s,\n  \"cells\": [\n",
                opts.shardIndex, opts.shardCount,
                resultStore != nullptr
                    ? jsonString(resultStore->codeVersion()).c_str()
                    : "\"\"");
        // Emit cells in hash order: unordered_map iteration order
        // would make the manifest differ run to run.
        std::vector<std::pair<std::uint64_t, CellAction>> cells(
            cellActions.begin(), cellActions.end());
        std::sort(cells.begin(), cells.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        std::size_t i = 0;
        for (const auto &[hash, action] : cells) {
            appendF(doc,
                    "    {\"hash\": \"%016llx\", \"owner\": %d, "
                    "\"action\": \"%s\"}%s\n",
                    static_cast<unsigned long long>(hash),
                    static_cast<int>(hash %
                                     static_cast<std::uint64_t>(
                                         opts.shardCount)),
                    action_names[static_cast<int>(action)],
                    ++i < cells.size() ? "," : "");
        }
        doc += "  ]\n}\n";
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
}

RunResult
ExperimentRunner::runJob(const Job &job)
{
    const bool cacheable = opts.cacheResults ||
        (opts.memoizeBaseline &&
         job.scheme.kind == SchemeKind::SNuca);
    const bool sharded = opts.shardCount > 1;
    std::string key;
    std::uint64_t hash = 0;
    if (cacheable || sharded)
        key = cacheKey(job.cfg, job.scheme, job.mix);
    if (sharded)
        hash = resultStore->keyHash(key);
    if (cacheable) {
        bool hit = false;
        RunResult cached;
        {
            std::lock_guard<std::mutex> lock(cacheMu);
            const auto it = cache.find(key);
            if (it != cache.end()) {
                stats.hits++;
                hit = true;
                cached = it->second;
            } else {
                stats.misses++;
            }
        }
        if (hit) {
            if (sharded)
                noteCell(hash, CellAction::MemHit);
            return cached;
        }
    }
    // Persistent tier: another process (a previous invocation, a
    // sibling shard, a warm CI rerun) may already have this cell.
    if (cacheable && resultStore != nullptr) {
        RunResult stored;
        bool found;
        {
            ProfTimer timer(ProfPhase::CacheIo);
            found = resultStore->load(key, &stored);
        }
        if (found) {
            {
                std::lock_guard<std::mutex> lock(cacheMu);
                if (cache.emplace(key, stored).second) {
                    cacheFifo.push_back(key);
                    while (cache.size() > opts.cacheBudget) {
                        cache.erase(cacheFifo.front());
                        cacheFifo.pop_front();
                        stats.evictions++;
                    }
                }
            }
            if (sharded)
                noteCell(hash, CellAction::StoreHit);
            return stored;
        }
    }
    // Shard partition: only the owning shard simulates a cell that
    // no cache tier could serve. The zero result makes the shard's
    // own stdout meaningless by design; `merge` re-reads the fully
    // populated store to produce the real, byte-identical report.
    if (sharded &&
        hash % static_cast<std::uint64_t>(opts.shardCount) !=
            static_cast<std::uint64_t>(opts.shardIndex)) {
        noteCell(hash, CellAction::Skipped);
        std::lock_guard<std::mutex> lock(cacheMu);
        stats.shardSkipped++;
        return RunResult{};
    }
    // One span per simulated job, on whichever worker ran it; cache
    // hits deliberately emit nothing (near-zero duration, and the
    // interesting question is where simulation time goes).
    TraceSpan job_span(Tracer::enabled()
                           ? job.scheme.name + " mix" +
                               std::to_string(job.mix.seed)
                           : std::string());
    RunResult res = runScheme(job.cfg, job.scheme, job.mix);
    if (cacheable) {
        // Write-back to the persistent tier first: the in-memory
        // insert below consumes `key`.
        if (resultStore != nullptr) {
            ProfTimer timer(ProfPhase::CacheIo);
            resultStore->save(key, res);
        }
        {
            std::lock_guard<std::mutex> lock(cacheMu);
            // Two workers can race to compute the same key; the first
            // insert wins and the FIFO tracks only successful inserts.
            if (cache.emplace(key, res).second) {
                cacheFifo.push_back(std::move(key));
                while (cache.size() > opts.cacheBudget) {
                    cache.erase(cacheFifo.front());
                    cacheFifo.pop_front();
                    stats.evictions++;
                }
            }
        }
        if (sharded)
            noteCell(hash, CellAction::Simulated);
    }
    return res;
}

RunResult
ExperimentRunner::run(const SystemConfig &cfg,
                      const SchemeSpec &scheme, const MixSpec &mix)
{
    return runJob(Job{cfg, scheme, mix});
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<Job> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        tasks.push_back([this, &jobs, &results, i]() {
            results[i] = runJob(jobs[i]);
        });
    }
    pool.run(std::move(tasks));
    return results;
}

std::vector<RunResult>
ExperimentRunner::runSchemes(const SystemConfig &cfg,
                             const std::vector<SchemeSpec> &schemes,
                             const MixSpec &mix)
{
    std::vector<Job> jobs;
    jobs.reserve(schemes.size());
    for (const SchemeSpec &scheme : schemes)
        jobs.push_back(Job{cfg, scheme, mix});
    return runAll(jobs);
}

void
ExperimentRunner::forEach(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (int i = 0; i < n; i++)
        tasks.push_back([&fn, i]() { fn(i); });
    pool.run(std::move(tasks));
}

SweepResult
ExperimentRunner::sweep(const SystemConfig &cfg,
                        const std::vector<SchemeSpec> &schemes,
                        int mixes,
                        const std::function<MixSpec(int)> &mix_of)
{
    const std::size_t num_schemes = schemes.size();
    SweepResult out;
    out.schemes = schemes;
    out.ws.assign(num_schemes, std::vector<double>(mixes, 0.0));
    out.onChipLat.assign(num_schemes, 0.0);
    out.offChipLat.assign(num_schemes, 0.0);
    out.trafficPerInstr.assign(num_schemes, {0.0, 0.0, 0.0});
    out.energyPerInstr.assign(num_schemes, 0.0);
    out.energyParts.assign(num_schemes, {0, 0, 0, 0, 0});
    out.firstRun.resize(num_schemes);
    if (num_schemes == 0 || mixes <= 0)
        return out;

    // Shard every (scheme, mix) pair, not just mixes: a sweep with
    // fewer mixes than cores still saturates the machine.
    std::vector<Job> jobs;
    jobs.reserve(num_schemes * mixes);
    for (int m = 0; m < mixes; m++) {
        const MixSpec mix = mix_of(m);
        for (std::size_t s = 0; s < num_schemes; s++)
            jobs.push_back(Job{cfg, schemes[s], mix});
    }
    const std::vector<RunResult> all = runAll(jobs);

    // Deterministic aggregation order: mixes outer, schemes inner,
    // independent of which worker finished when.
    for (int m = 0; m < mixes; m++) {
        const RunResult &base = all[m * num_schemes];
        for (std::size_t s = 0; s < num_schemes; s++) {
            const RunResult &r = all[m * num_schemes + s];
            // Sharded runs leave non-owned cells as zero results
            // (empty procThroughput); a shard's own report is
            // partial by design, so aggregate them as a neutral 1.0
            // (gmean-safe) rather than assert — `merge` re-reads
            // every cell from the store for the real report.
            out.ws[s][m] = r.procThroughput.empty() ||
                    r.procThroughput.size() !=
                        base.procThroughput.size()
                ? 1.0
                : weightedSpeedup(r, base);
            out.onChipLat[s] += r.avgOnChipLatency() / mixes;
            out.offChipLat[s] += r.offChipLatPerInstr() / mixes;
            for (int c = 0; c < 3; c++) {
                out.trafficPerInstr[s][c] +=
                    r.flitHopsPerInstr(static_cast<TrafficClass>(c)) /
                    mixes;
            }
            // Zero-work runs (e.g. epochs == warmup) contribute zero
            // energy rather than NaN, mirroring avgOnChipLatency().
            if (r.totalInstrs > 0.0) {
                out.energyPerInstr[s] +=
                    r.energy.total() / r.totalInstrs / mixes;
                out.energyParts[s][0] +=
                    r.energy.staticE / r.totalInstrs / mixes;
                out.energyParts[s][1] +=
                    r.energy.core / r.totalInstrs / mixes;
                out.energyParts[s][2] +=
                    r.energy.net / r.totalInstrs / mixes;
                out.energyParts[s][3] +=
                    r.energy.llc / r.totalInstrs / mixes;
                out.energyParts[s][4] +=
                    r.energy.mem / r.totalInstrs / mixes;
            }
        }
    }
    for (std::size_t s = 0; s < num_schemes; s++)
        out.firstRun[s] = all[s];
    return out;
}

} // namespace cdcs
