/**
 * @file
 * Persistent tier of the two-tier result cache: an on-disk store of
 * serialized RunResults, keyed by a 64-bit content hash over the
 * ExperimentRunner's canonical (cfg, scheme, mix) cache key salted
 * with the code version (the CMake-injected `git describe` string).
 * Repeated sweeps across process lifetimes — warm CI reruns, sharded
 * fleet runs, `cdcs_studies merge` — pay only for cells that changed.
 *
 * One record per file (`<hash>.res` under the store directory), in a
 * compact binary format with a whole-record checksum and the full
 * uncompressed key embedded for collision verification. Writers stage
 * into a temp file and publish with an atomic rename under an
 * advisory flock, so concurrent processes sharing one store can never
 * expose a torn record; readers take no lock and simply distrust
 * anything that fails the magic/version/checksum/key checks (counted
 * as corrupt or miss, never returned).
 */

#ifndef CDCS_SIM_RESULT_STORE_HH
#define CDCS_SIM_RESULT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "sim/run_result.hh"

namespace cdcs
{

/** Monotonic counters of one store (process lifetime). */
struct ResultStoreStats
{
    std::uint64_t hits = 0;      ///< Records served from disk.
    std::uint64_t misses = 0;    ///< Absent or version-stale records.
    std::uint64_t writes = 0;    ///< Records written.
    std::uint64_t evictions = 0; ///< Stale records overwritten.
    std::uint64_t corrupt = 0;   ///< Records skipped as untrustworthy.
};

/** On-disk result store (the persistent cache tier). */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store rooted at `dir`. Records
     * are only trusted when their embedded version equals `version`
     * (default: the compiled-in code version). Check ok() before use;
     * a store that failed to set up its directory ignores all I/O.
     */
    explicit ResultStore(std::string dir,
                         std::string version = buildVersion());
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Directory and lock file usable. */
    bool ok() const { return usable; }

    const std::string &directory() const { return root; }
    const std::string &codeVersion() const { return version; }

    /**
     * The code-version salt compiled into this binary (CMake injects
     * `git describe --always --dirty` at configure time; "unknown"
     * outside a git checkout).
     */
    static std::string buildVersion();

    /**
     * Salted content hash of a canonical cache key: the record
     * filename, and the deterministic `--shard` partition basis.
     */
    std::uint64_t keyHash(const std::string &key) const;

    /**
     * Load the record for `key` into `*out`. False on miss; records
     * that are torn, checksum-broken, version-stale or hash-colliding
     * are never trusted (and the corrupt/miss counters say which).
     */
    bool load(const std::string &key, RunResult *out);

    /** Serialize and atomically publish the record for `key`. */
    bool save(const std::string &key, const RunResult &result);

    ResultStoreStats stats() const;

  private:
    std::string recordPath(std::uint64_t hash) const;

    std::string root;
    std::string version;
    bool usable = false;
    int lockFd = -1; ///< Advisory writer lock (<root>/.lock).

    mutable std::mutex mu;
    ResultStoreStats counters;
};

} // namespace cdcs

#endif // CDCS_SIM_RESULT_STORE_HH
