/**
 * @file
 * Run description types shared by every simulator layer: which NUCA
 * scheme is under test (SchemeSpec) and the simulated-platform and
 * methodology parameters (SystemConfig). Split from system.hh so the
 * Platform / AccessPath / EpochController layers and the
 * ExperimentRunner can depend on the configuration without pulling in
 * the System facade.
 */

#ifndef CDCS_SIM_SYSTEM_CONFIG_HH
#define CDCS_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "mesh/mesh.hh"
#include "nuca/partitioned_nuca.hh"
#include "runtime/cdcs_runtime.hh"

namespace cdcs
{

/** Which NUCA organization a run uses. */
enum class SchemeKind : std::uint8_t
{
    SNuca,
    RNuca,
    Partitioned
};

/** Initial (static) thread scheduler. */
enum class InitialSched : std::uint8_t
{
    Random,
    Clustered
};

/** Monitor hardware used by partitioned schemes. */
enum class MonitorKind : std::uint8_t
{
    Gmon,
    Umon
};

/** Placement engine (Sec. VI-C comparators). */
enum class PlacerKind : std::uint8_t
{
    Heuristic,      ///< CDCS/Jigsaw heuristics.
    Annealed,       ///< + simulated-annealing thread placer.
    Bisection       ///< Recursive-bisection co-placement.
};

/** Full description of one scheme under test. */
struct SchemeSpec
{
    std::string name = "cdcs";
    SchemeKind kind = SchemeKind::Partitioned;
    CdcsOptions cdcsOpts;
    MoveScheme moves = MoveScheme::DemandBackground;
    InitialSched sched = InitialSched::Random;
    MonitorKind monitor = MonitorKind::Gmon;
    std::uint32_t monitorWays = 64;
    std::uint32_t monitorSets = 16;
    /**
     * Monitor sampling: 1 in 2^shift accesses. The paper uses 6
     * (1/64) with 25 ms epochs; scaled-down epochs need denser
     * sampling to keep per-epoch sample counts comparable
     * (DESIGN.md Sec. 2).
     */
    std::uint32_t monitorSampleShift = 4;
    PlacerKind placer = PlacerKind::Heuristic;
    int saIterations = 5000;

    /** S-NUCA baseline. */
    static SchemeSpec snuca();
    /** R-NUCA. */
    static SchemeSpec rnuca();
    /** Jigsaw with a random or clustered static scheduler. */
    static SchemeSpec jigsaw(InitialSched sched);
    /** Full CDCS. */
    static SchemeSpec cdcs();
    /**
     * Factor-analysis variant on Jigsaw+R (Fig. 12): enable
     * latency-aware allocation (L), thread placement (T) and/or
     * refined data placement (D).
     */
    static SchemeSpec factor(bool l, bool t, bool d);
};

/** Simulated-platform and methodology parameters. */
struct SystemConfig
{
    int meshWidth = 8;
    int meshHeight = 8;
    int banksPerTile = 1;
    std::uint64_t bankLines = 8192;     ///< 512 KB banks.
    std::uint32_t bankWays = 16;
    Cycles bankLatency = 9;
    Cycles memLatency = 120;
    NocConfig noc;

    /**
     * Network model, by NocRegistry name: "zero-load" (the paper's
     * Table 2 analytic mesh, the default) or "contention" (per-link
     * queueing delays from measured loads).
     */
    std::string nocModel = "zero-load";
    /**
     * Contention model: injection-rate scale applied to measured
     * link utilizations (sweep load without changing the workload).
     */
    double nocInjScale = 1.0;
    /** Contention model: utilization clamp of the queueing delay. */
    double nocMaxUtil = 0.95;

    /**
     * Distance oracle the reconfiguration runtime prices placements
     * with: "noc" (default) snapshots the live network model's
     * per-route queueing waits each epoch, so placement steers VCs
     * and threads away from saturated links under `noc=contention`
     * (under the zero-load model the snapshot carries no waits and
     * reduces exactly to the flat hop arithmetic); "zero-load" forces
     * the flat hop arithmetic regardless of the network model (the
     * placement_contention study's control arm).
     */
    std::string placementCost = "noc";

    bool modelMemBandwidth = true;
    double memLinesPerCycle = 0.8;      ///< Aggregate service rate.
    int memChannels = 8;

    /**
     * NUMA-aware memory placement (the extension Sec. III leaves to
     * future work, cf. the Fig. 11d discussion): pages are served by
     * the controller nearest their first-touching thread's core
     * instead of being page-interleaved across all controllers.
     * Legacy alias for memPlacement = "first-touch".
     */
    bool numaAwareMem = false;

    /**
     * Page-to-memory-controller placement policy, by
     * MemPlacementRegistry name: "interleave" (the page hash, the
     * default), "first-touch" (pin to the first toucher's nearest
     * controller; what numaAwareMem aliases) or "contention"
     * (first-touch plus an epoch rebalance that re-pins hot pages
     * away from saturated controllers, scored on measured NoC route
     * waits and per-controller queue load).
     */
    std::string memPlacement = "interleave";

    /**
     * The policy Platform actually builds. The legacy numaAwareMem
     * alias asks for first-touch whenever memPlacement is left at
     * "interleave" (the two flags are contradictory in that
     * combination, and the alias wins); any other memPlacement value
     * takes precedence over the alias.
     */
    std::string
    effectiveMemPlacement() const
    {
        if (memPlacement == "interleave" && numaAwareMem)
            return "first-touch";
        return memPlacement;
    }

    // ---- Far-memory tier (src/mem/mem_tiering.hh). All knobs
    // default to "no far tier": with farMemRatio == 0 no tiering
    // policy is built, no far attach links are materialized and every
    // study is byte-identical to pre-tier binaries (CI byte-diffs
    // this).

    /**
     * Fraction of pages resident in the far (CXL-style) capacity
     * tier. 0 disables the far tier entirely; positive values build
     * the memTiering policy, per-tier queue state and far attach
     * links.
     */
    double farMemRatio = 0.0;
    /** Far-tier access latency (cycles; the near tier pays memLatency). */
    Cycles farMemLatency = 300;
    /** Far-tier channel count for the M/D/m queue model. */
    int farMemChannels = 4;
    /** Far-tier aggregate service rate (lines/cycle). */
    double farMemLinesPerCycle = 0.2;
    /**
     * Capacity-tiering policy, by MemTieringRegistry name: "static"
     * (a fixed hash split — residency never changes) or "hotness"
     * (EWMA hotness-ranked promotion/demotion per epoch, with
     * hysteresis, cooldown and a DRAM-row migration budget).
     */
    std::string memTiering = "static";

    /** Whether a far memory tier is configured. */
    bool
    hasFarTier() const
    {
        return farMemRatio > 0.0;
    }

    // ---- Dynamic multi-tenant traffic (src/workload/traffic.hh).
    // All knobs default off: with skewAlpha == 0 and an empty churn
    // string no TrafficSchedule is attached and every RNG draw is
    // identical to the static-traffic code path (CI byte-diffs this).

    /** Zipf skew of the hot-object overlay; 0 disables it. */
    double skewAlpha = 0.0;
    /** Share of accesses redirected to the overlay (when on). */
    double skewFraction = 0.2;
    /** Overlay footprint in lines (shared by all tenants). */
    std::uint64_t skewLines = 65536;
    /** Hottest ranks routed through the drifting hot-set table. */
    std::uint64_t skewHotLines = 1024;
    /**
     * Seat the hot-set table page-aligned (consecutive ranks fill
     * whole pages) instead of line-scattered, so page-level hotness
     * mirrors the Zipf line skew. The tiering study's workload shape.
     */
    bool skewPageHot = false;
    /** Re-seat part of the hot set every N epochs; 0 = static. */
    int skewDriftEpochs = 0;
    /** Fraction of the hot-set table re-seated per drift. */
    double skewDriftFraction = 0.25;
    /**
     * Thread churn schedule: comma-separated "epoch:-k" (k active
     * threads depart entering that epoch) and "epoch:+k" (k departed
     * threads rejoin, most recent first). Empty = no churn.
     */
    std::string churn;

    /** Whether any dynamic-traffic feature is enabled. */
    bool
    dynamicTraffic() const
    {
        return skewAlpha > 0.0 || !churn.empty();
    }

    // ---- Observability (src/obs/). Stats never affect simulated
    // results, so these knobs stay out of the runner cache key and
    // default off (CI byte-diffs the default output).

    /**
     * StatRegistry selection recorded per epoch into the metrics
     * trace: "" or "0" = off, "1"/"all" = everything, else a comma-
     * separated list of dot-hierarchical prefixes ("noc,pool").
     */
    std::string statsFilter;
    /** Record the selected stats every Nth epoch. */
    int statsEvery = 1;

    bool
    statsEnabled() const
    {
        return !statsFilter.empty() && statsFilter != "0";
    }

    std::uint64_t accessesPerThreadEpoch = 50000;
    int epochs = 6;
    int warmupEpochs = 2;
    std::uint32_t chunkAccesses = 1000;

    PartitionedNucaConfig moveCfg;

    bool traceIpc = false;
    Cycles traceBinCycles = 20000;

    std::uint64_t seed = 42;

    /** Runtime allocation granule (bankLines when partitioning off). */
    double allocGranuleLines = 64.0;

    /**
     * EWMA factor blending each epoch's monitor curves and access
     * matrix into the values fed to the runtime (1.0 = use the raw
     * epoch values). Smoothing the sampled inputs lets the runtime
     * converge to a stable configuration (see DESIGN.md Sec. 5).
     */
    double monitorSmoothing = 0.5;

    /** Total LLC lines. */
    std::uint64_t
    llcLines() const
    {
        return static_cast<std::uint64_t>(meshWidth) * meshHeight *
            banksPerTile * bankLines;
    }
};

} // namespace cdcs

#endif // CDCS_SIM_SYSTEM_CONFIG_HH
