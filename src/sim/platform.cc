#include "sim/platform.hh"

#include "common/log.hh"
#include "mem/mem_placement_registry.hh"
#include "mem/mem_tiering_registry.hh"
#include "monitor/gmon.hh"
#include "net/noc_registry.hh"
#include "monitor/umon.hh"
#include "nuca/rnuca.hh"
#include "nuca/snuca.hh"
#include "runtime/anneal.hh"
#include "runtime/bisect.hh"
#include "runtime/schedulers.hh"
#include "workload/mix.hh"

namespace cdcs
{

Platform::Platform(const SystemConfig &cfg, const SchemeSpec &spec,
                   const WorkloadMix &mix)
    : mesh(cfg.meshWidth, cfg.meshHeight, cfg.noc, cfg.memChannels)
{
    NocBuildParams noc_params;
    noc_params.injScale = cfg.nocInjScale;
    noc_params.maxUtil = cfg.nocMaxUtil;
    noc_params.farLinks = cfg.hasFarTier();
    noc = NocRegistry::instance().build(cfg.nocModel, mesh,
                                        noc_params);

    MemPlacementBuildParams mem_params;
    mem_params.hopCycles = static_cast<double>(
        cfg.noc.routerCycles + cfg.noc.linkCycles);
    mem_params.smoothing = cfg.monitorSmoothing;
    memPlacement = MemPlacementRegistry::instance().build(
        cfg.effectiveMemPlacement(), mesh, mem_params);

    if (cfg.hasFarTier()) {
        // Overrides::add validates these, but programmatic configs
        // bypass it; a bad far-tier setup must fail loudly, not
        // silently misprice the queue model.
        cdcs_assert(cfg.farMemRatio < 1.0,
                    "farMemRatio must be in [0, 1)");
        cdcs_assert(cfg.farMemChannels >= 1,
                    "farMemChannels must be at least 1");
        cdcs_assert(cfg.farMemLinesPerCycle > 0.0,
                    "farMemLinesPerCycle must be positive");
        MemTieringParams tier_params;
        tier_params.farRatio = cfg.farMemRatio;
        tier_params.smoothing = cfg.monitorSmoothing;
        tiering = MemTieringRegistry::build(cfg.memTiering, mesh,
                                            tier_params);
        memPlacement->attachTiering(tiering.get());
    }

    const int num_banks = mesh.numTiles() * cfg.banksPerTile;
    cdcs_assert(mix.numThreads() <= mesh.numTiles(),
                "mix has more threads than cores");
    // The runtime's placement cost model mirrors cfg.noc's hop timing
    // (RuntimeInput::hopCycles); the mesh the NocModel answers latency
    // queries from must agree, or placement would price a different
    // network than the access path pays.
    cdcs_assert(mesh.config().routerCycles == cfg.noc.routerCycles &&
                    mesh.config().linkCycles == cfg.noc.linkCycles,
                "mesh NoC timing diverged from SystemConfig.noc");
    // Overrides::add validates the `placementCost=` key, but configs
    // built programmatically bypass it; an unknown oracle name must
    // fail loudly here, not silently run the contention-priced arm.
    cdcs_assert(cfg.placementCost == "noc" ||
                    cfg.placementCost == "zero-load",
                "unknown placement cost oracle (expected noc or "
                "zero-load)");

    banks.reserve(num_banks);
    for (int b = 0; b < num_banks; b++) {
        banks.emplace_back(cfg.bankLines, cfg.bankWays,
                           mix64(cfg.seed ^ (0xBA2B + b)));
    }

    // Initial thread scheduling.
    std::vector<ProcId> thread_proc;
    for (ThreadId t = 0; t < mix.numThreads(); t++)
        thread_proc.push_back(mix.thread(t).proc);
    if (spec.sched == InitialSched::Random) {
        Rng sched_rng(mix64(cfg.seed ^ 0x5E5E));
        initialPlacement = randomSchedule(mix.numThreads(),
                                          mesh.numTiles(), sched_rng);
    } else {
        initialPlacement = clusteredSchedule(thread_proc,
                                             mesh.numTiles());
    }

    // Policy + runtime.
    switch (spec.kind) {
      case SchemeKind::SNuca:
        policy = std::make_unique<SNucaPolicy>(num_banks);
        break;
      case SchemeKind::RNuca:
        policy = std::make_unique<RNucaPolicy>(&mesh,
                                               cfg.banksPerTile);
        break;
      case SchemeKind::Partitioned: {
        switch (spec.placer) {
          case PlacerKind::Heuristic:
            runtime = std::make_unique<CdcsRuntime>(spec.cdcsOpts);
            break;
          case PlacerKind::Annealed:
            runtime = std::make_unique<AnnealingRuntime>(
                spec.cdcsOpts, spec.saIterations, cfg.seed ^ 0x5A5A);
            break;
          case PlacerKind::Bisection:
            runtime = std::make_unique<BisectRuntime>(spec.cdcsOpts);
            break;
        }
        std::vector<ThreadVcWiring> wiring;
        for (ThreadId t = 0; t < mix.numThreads(); t++) {
            const ThreadCtx &thr = mix.thread(t);
            wiring.push_back({thr.privateVc, thr.processVc,
                              thr.globalVc});
        }
        PartitionedNucaConfig move_cfg = cfg.moveCfg;
        move_cfg.moves = spec.moves;
        policy = std::make_unique<PartitionedNucaPolicy>(
            &mesh, cfg.banksPerTile, cfg.bankLines,
            static_cast<std::uint32_t>(cfg.bankLines / cfg.bankWays),
            std::move(wiring), mix.numVcs(), runtime.get(), move_cfg);
        break;
      }
    }

    // Monitors (partitioned schemes only).
    if (policy->wantsMonitors()) {
        for (int d = 0; d < mix.numVcs(); d++) {
            if (spec.monitor == MonitorKind::Gmon) {
                monitors.push_back(std::make_unique<Gmon>(
                    spec.monitorWays, cfg.llcLines(), spec.monitorSets,
                    spec.monitorSampleShift,
                    mix64(cfg.seed ^ (0x60D + d))));
            } else {
                monitors.push_back(std::make_unique<Umon>(
                    spec.monitorWays, cfg.llcLines(), spec.monitorSets,
                    mix64(cfg.seed ^ (0x60D + d))));
            }
        }
    }
}

} // namespace cdcs
