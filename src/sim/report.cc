#include "sim/report.hh"

#include <algorithm>
#include <cstdarg>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "sim/study.hh"
#include "sim/system.hh"

namespace cdcs
{

namespace
{

void
appendF(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

bool
writeFile(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(data.data(), 1, data.size(), f) == data.size();
    return std::fclose(f) == 0 && ok;
}

/**
 * Write one artifact as <dir>/<name>.json; no-op on an empty dir,
 * stderr note on I/O failure. Returns the path written, or "".
 */
std::string
exportArtifactFile(const std::string &dir, const std::string &name,
                   const std::string &json)
{
    if (dir.empty())
        return "";
    const std::string path = dir + "/" + name + ".json";
    if (!writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return "";
    }
    return path;
}

/** CSV field, quoted when it contains a delimiter or quote. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Scheme display name -> artifact-name fragment ("S-NUCA" ->
 * "s-nuca"): lowercase, non-alphanumerics folded to '-'. */
std::string
artifactFragment(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c >= 'A' && c <= 'Z')
            out.push_back(static_cast<char>(c - 'A' + 'a'));
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out.push_back(c);
        else
            out.push_back('-');
    }
    return out;
}

} // anonymous namespace

void
ReportSink::printf(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n < static_cast<int>(sizeof(buf))) {
        text(std::string_view(buf, n < 0 ? 0 : n));
        return;
    }
    std::vector<char> big(static_cast<std::size_t>(n) + 1);
    va_start(args, fmt);
    std::vsnprintf(big.data(), big.size(), fmt, args);
    va_end(args);
    text(std::string_view(big.data(), n));
}

void
ReportSink::sweep(const std::string &name, const SweepResult &result)
{
    onSweep(name, result);
    // Auto-export the per-epoch metrics traces (one per scheme) when
    // the sweep's runs carried a `stats=` selection. firstRun holds
    // the mix-0 results, the canonical per-run exemplar elsewhere in
    // the report layer too.
    for (std::size_t s = 0; s < result.firstRun.size(); s++) {
        if (result.firstRun[s].statNames.empty())
            continue;
        const std::string scheme = s < result.schemes.size()
            ? result.schemes[s].name : std::to_string(s);
        artifact("metrics_trace_" + name + "_" +
                     artifactFragment(scheme),
                 metricsTraceJson(scheme, result.firstRun[s]));
    }
}

void
ReportSink::timing(const std::string &study, const StudyTiming &t)
{
    (void)study; // One footer right after the study's own output.
    const auto pct = [&](double sec) {
        return t.wallSec > 0.0 ? 100.0 * sec / t.wallSec : 0.0;
    };
    const double noc_share = t.accessSec > 0.0
        ? 100.0 * t.nocQuerySec / t.accessSec : 0.0;
    printf("[timing: wall %.3f s; access %.3f s (%.1f%%), "
           "reconfig %.3f s (%.1f%%), cache-io %.3f s (%.1f%%); "
           "noc-query %.3f s (%.1f%% of access); "
           "pool %llu steals, %llu wakeups, idle %.3f s]\n",
           t.wallSec, t.accessSec, pct(t.accessSec), t.reconfigSec,
           pct(t.reconfigSec), t.cacheIoSec, pct(t.cacheIoSec),
           t.nocQuerySec, noc_share,
           static_cast<unsigned long long>(t.poolSteals),
           static_cast<unsigned long long>(t.poolWakeups),
           t.poolIdleSec);
}

// ------------------------------------------------------------------
// ChipMap

std::string
ChipMap::toJson() const
{
    std::string out = "{";
    appendF(out, "\"width\": %d, \"height\": %d, ", width, height);
    out += "\"threadLabel\": [";
    for (std::size_t t = 0; t < threadLabel.size(); t++) {
        out += t > 0 ? "," : "";
        out += jsonString(threadLabel[t]);
    }
    out += "], \"dataLabel\": [";
    for (std::size_t t = 0; t < dataLabel.size(); t++) {
        out += t > 0 ? "," : "";
        out += jsonString(dataLabel[t]);
    }
    out += "]}";
    return out;
}

ChipMap
captureChipMap(const System &system)
{
    const Mesh &mesh = system.meshRef();
    const WorkloadMix &mix = system.workload();
    const auto &thread_core = system.threadPlacement();
    const auto *policy = system.partitionedPolicy();

    ChipMap map;
    map.width = mesh.width();
    map.height = mesh.height();
    map.threadLabel.assign(mesh.numTiles(), "--");
    for (ThreadId t = 0; t < mix.numThreads(); t++) {
        const ProcId p = mix.thread(t).proc;
        std::string label;
        label += static_cast<char>('A' + (p % 26));
        label += std::to_string(t % 10);
        map.threadLabel[thread_core[t]] = label;
    }

    map.dataLabel.assign(mesh.numTiles(), "..");
    if (policy != nullptr) {
        const auto &alloc = policy->allocation();
        for (TileId tile = 0; tile < mesh.numTiles(); tile++) {
            double best = 0.0;
            int best_vc = -1;
            for (std::size_t d = 0; d < alloc.size(); d++) {
                double here = 0.0;
                // Sum this tile's banks.
                const std::size_t bpt =
                    alloc[d].size() / mesh.numTiles();
                for (std::size_t k = 0; k < bpt; k++)
                    here += alloc[d][tile * bpt + k];
                if (here > best) {
                    best = here;
                    best_vc = static_cast<int>(d);
                }
            }
            if (best_vc >= 0) {
                // Map VC to owning process.
                ProcId proc;
                const int threads = mix.numThreads();
                if (best_vc < threads)
                    proc = mix.thread(
                        static_cast<ThreadId>(best_vc)).proc;
                else if (best_vc < threads + mix.numProcesses())
                    proc = static_cast<ProcId>(best_vc - threads);
                else
                    proc = 255; // Global VC.
                std::string label;
                label += proc == 255
                    ? '*' : static_cast<char>('a' + (proc % 26));
                label += best_vc < threads ? 'p' : 's';
                map.dataLabel[tile] = label;
            }
        }
    }
    return map;
}

// ------------------------------------------------------------------
// NocHeatmap

std::string
NocHeatmap::toJson() const
{
    std::string out = "{";
    appendF(out, "\"width\": %d, \"height\": %d, ", width, height);
    out += "\"links\": [";
    for (std::size_t l = 0; l < links.size(); l++) {
        const NocLinkStat &link = links[l];
        out += l > 0 ? "," : "";
        appendF(out,
                "{\"src\": %d, \"dst\": %d, \"memCtrl\": %d, "
                "\"flits\": %llu, \"util\": %.17g, \"wait\": %.17g}",
                static_cast<int>(link.src),
                link.dst == invalidTile ? -1
                                        : static_cast<int>(link.dst),
                link.memCtrl,
                static_cast<unsigned long long>(link.flits),
                link.util, link.waitCycles);
        if (link.far) {
            // Key present only on far attach links, so tier-less
            // heatmaps stay byte-identical.
            out.pop_back();
            out += ", \"far\": true}";
        }
    }
    out += "]}";
    return out;
}

NocHeatmap
makeNocHeatmap(int width, int height, const RunResult &run)
{
    NocHeatmap map;
    map.width = width;
    map.height = height;
    map.links = run.nocLinks;
    return map;
}

std::string
traceToJson(const std::string &name, const RunResult &run)
{
    std::string out = "{";
    out += "\"name\": " + jsonString(name) + ", ";
    appendF(out, "\"binCycles\": %llu, ",
            static_cast<unsigned long long>(run.ipcBinCycles));
    out += "\"ipc\": [";
    for (std::size_t b = 0; b < run.ipcTrace.size(); b++)
        appendF(out, "%s%.17g", b > 0 ? "," : "", run.ipcTrace[b]);
    out += "]}";
    return out;
}

std::string
metricsTraceJson(const std::string &scheme, const RunResult &run,
                 const std::string &extra_fields)
{
    std::string out = "{";
    out += "\"schema\": \"cdcs-metrics-trace-v1\", ";
    out += "\"scheme\": " + jsonString(scheme) + ", ";
    out += extra_fields;
    out += "\"stats\": [";
    for (std::size_t i = 0; i < run.statNames.size(); i++) {
        out += i > 0 ? "," : "";
        out += jsonString(run.statNames[i]);
    }
    out += "], \"trace\": [";
    for (std::size_t i = 0; i < run.epochTrace.size(); i++) {
        const EpochRecord &rec = run.epochTrace[i];
        out += i > 0 ? ", " : "";
        appendF(out,
                "{\"epoch\": %d, \"active\": %d, \"delta\": %d, "
                "\"aggIpc\": %.17g, \"moves\": %d, "
                "\"movedLines\": %llu",
                rec.epoch, rec.activeThreads, rec.churnDelta,
                rec.aggIpc, rec.placementMoves,
                static_cast<unsigned long long>(rec.movedLines));
        if (!rec.stats.empty()) {
            // Absent (not empty) on epochs statsEvery skipped.
            out += ", \"stats\": [";
            for (std::size_t v = 0; v < rec.stats.size(); v++) {
                appendF(out, "%s%llu", v > 0 ? "," : "",
                        static_cast<unsigned long long>(
                            rec.stats[v]));
            }
            out += "]";
        }
        out += "}";
    }
    out += "]}";
    return out;
}

// ------------------------------------------------------------------
// TextReportSink

TextReportSink::TextReportSink(std::FILE *out_file,
                               std::string json_dir)
    : out(out_file), jsonDir(std::move(json_dir))
{
}

void
TextReportSink::text(std::string_view s)
{
    std::fwrite(s.data(), 1, s.size(), out);
}

void
TextReportSink::flush()
{
    std::fflush(out);
}

void
TextReportSink::exportArtifact(const std::string &name,
                               const std::string &json)
{
    const std::string path = exportArtifactFile(jsonDir, name, json);
    if (!path.empty())
        this->printf("[json: %s]\n", path.c_str());
}

void
TextReportSink::onSweep(const std::string &name,
                        const SweepResult &result)
{
    if (!jsonDir.empty())
        exportArtifact(name, result.toJson());
}

void
TextReportSink::trace(const std::string &name, const RunResult &run)
{
    if (!jsonDir.empty())
        exportArtifact(name, traceToJson(name, run) + "\n");
}

void
TextReportSink::chipMap(const std::string &name, const ChipMap &map)
{
    if (!jsonDir.empty())
        exportArtifact(name, map.toJson() + "\n");
}

void
TextReportSink::nocHeatmap(const std::string &name,
                           const NocHeatmap &map)
{
    if (!jsonDir.empty())
        exportArtifact(name, map.toJson() + "\n");
}

void
TextReportSink::artifact(const std::string &name,
                         const std::string &json)
{
    if (!jsonDir.empty())
        exportArtifact(name, json + "\n");
}

// ------------------------------------------------------------------
// JsonReportSink

JsonReportSink::JsonReportSink(std::FILE *out_file,
                               std::string json_dir)
    : out(out_file), jsonDir(std::move(json_dir))
{
}

void
JsonReportSink::beginStudy(const StudySpec &spec)
{
    if (anyStudy)
        doc += "\n  ]},\n";
    anyStudy = true;
    anyArtifact = false;
    doc += "  {\"name\": " + jsonString(spec.name) +
        ", \"title\": " + jsonString(spec.title) +
        ", \"paperRef\": " + jsonString(spec.paperRef) +
        ", \"category\": " + jsonString(spec.category) +
        ", \"artifacts\": [";
}

void
JsonReportSink::onSweep(const std::string &name,
                        const SweepResult &result)
{
    const std::string json = result.toJson();
    exportArtifactFile(jsonDir, name, json);
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": " + jsonString(name) +
        ", \"kind\": \"sweep\", \"data\": " + json;
    // toJson() ends with a newline; fold it before closing.
    while (!doc.empty() && doc.back() == '\n')
        doc.pop_back();
    doc += "}";
}

void
JsonReportSink::trace(const std::string &name, const RunResult &run)
{
    const std::string json = traceToJson(name, run);
    exportArtifactFile(jsonDir, name, json + "\n");
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": " + jsonString(name) +
        ", \"kind\": \"trace\", \"data\": " + json + "}";
}

void
JsonReportSink::chipMap(const std::string &name, const ChipMap &map)
{
    const std::string json = map.toJson();
    exportArtifactFile(jsonDir, name, json + "\n");
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": " + jsonString(name) +
        ", \"kind\": \"chipmap\", \"data\": " + json + "}";
}

void
JsonReportSink::nocHeatmap(const std::string &name,
                           const NocHeatmap &map)
{
    const std::string json = map.toJson();
    exportArtifactFile(jsonDir, name, json + "\n");
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": " + jsonString(name) +
        ", \"kind\": \"nocheatmap\", \"data\": " + json + "}";
}

void
JsonReportSink::artifact(const std::string &name,
                         const std::string &json)
{
    exportArtifactFile(jsonDir, name, json + "\n");
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": " + jsonString(name) +
        ", \"kind\": \"artifact\", \"data\": " + json + "}";
}

void
JsonReportSink::timing(const std::string &study,
                       const StudyTiming &t)
{
    (void)study; // Recorded inside the current study's artifacts.
    std::string json = "{";
    appendF(json,
            "\"wallSec\": %.17g, \"accessSec\": %.17g, "
            "\"nocQuerySec\": %.17g, \"reconfigSec\": %.17g, "
            "\"cacheIoSec\": %.17g, \"poolSteals\": %llu, "
            "\"poolWakeups\": %llu, \"poolIdleSec\": %.17g}",
            t.wallSec, t.accessSec, t.nocQuerySec, t.reconfigSec,
            t.cacheIoSec,
            static_cast<unsigned long long>(t.poolSteals),
            static_cast<unsigned long long>(t.poolWakeups),
            t.poolIdleSec);
    doc += anyArtifact ? ",\n" : "\n";
    anyArtifact = true;
    doc += "   {\"name\": \"timing\", \"kind\": \"timing\", "
           "\"data\": " + json + "}";
}

void
JsonReportSink::finish()
{
    std::string full = "{\"studies\": [\n";
    full += doc;
    if (anyStudy)
        full += "\n  ]}\n";
    full += "]}\n";
    std::fwrite(full.data(), 1, full.size(), out);
    std::fflush(out);
    doc.clear();
    anyStudy = false;
}

// ------------------------------------------------------------------
// CsvReportSink

CsvReportSink::CsvReportSink(std::FILE *out_file,
                             std::string json_dir)
    : out(out_file), jsonDir(std::move(json_dir))
{
}

void
CsvReportSink::beginStudy(const StudySpec &spec)
{
    currentStudy = spec.name;
}

void
CsvReportSink::trace(const std::string &name, const RunResult &run)
{
    if (!jsonDir.empty())
        exportArtifactFile(jsonDir, name,
                           traceToJson(name, run) + "\n");
}

void
CsvReportSink::chipMap(const std::string &name, const ChipMap &map)
{
    if (!jsonDir.empty())
        exportArtifactFile(jsonDir, name, map.toJson() + "\n");
}

void
CsvReportSink::nocHeatmap(const std::string &name,
                          const NocHeatmap &map)
{
    if (!jsonDir.empty())
        exportArtifactFile(jsonDir, name, map.toJson() + "\n");
}

void
CsvReportSink::artifact(const std::string &name,
                        const std::string &json)
{
    if (!jsonDir.empty())
        exportArtifactFile(jsonDir, name, json + "\n");
}

void
CsvReportSink::onSweep(const std::string &name,
                       const SweepResult &result)
{
    if (!jsonDir.empty())
        exportArtifactFile(jsonDir, name, result.toJson());
    if (!wroteHeader) {
        std::fprintf(out,
                     "study,sweep,scheme,mixes,gmeanWS,maxWS,"
                     "onChipLat,offChipLat,trafficL2LLC,"
                     "trafficLLCMem,trafficOther,energyPerInstr\n");
        wroteHeader = true;
    }
    for (std::size_t s = 0; s < result.schemes.size(); s++) {
        const bool any = result.mixes() > 0;
        std::fprintf(out,
                     "%s,%s,%s,%d,%.17g,%.17g,%.17g,%.17g,%.17g,"
                     "%.17g,%.17g,%.17g\n",
                     csvField(currentStudy).c_str(),
                     csvField(name).c_str(),
                     csvField(result.schemes[s].name).c_str(),
                     result.mixes(),
                     any ? gmean(result.ws[s]) : 0.0,
                     any ? maxOf(result.ws[s]) : 0.0,
                     result.onChipLat[s], result.offChipLat[s],
                     result.trafficPerInstr[s][0],
                     result.trafficPerInstr[s][1],
                     result.trafficPerInstr[s][2],
                     result.energyPerInstr[s]);
    }
}

void
CsvReportSink::finish()
{
    std::fflush(out);
}

// ------------------------------------------------------------------
// Legacy text renderings (exact bench_util.hh formats)

void
writeInverseCdf(ReportSink &sink, const SweepResult &sweep)
{
    if (sweep.schemes.empty() || sweep.mixes() == 0)
        return;
    sink.printf("%-12s", "mix-rank");
    for (int m = 0; m < sweep.mixes(); m++)
        sink.printf("  %6d", m);
    sink.printf("\n");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        const auto sorted = inverseCdf(sweep.ws[s]);
        sink.printf("%-12s", sweep.schemes[s].name.c_str());
        for (double w : sorted)
            sink.printf("  %6.3f", w);
        sink.printf("\n");
    }
}

void
writeWsSummary(ReportSink &sink, const SweepResult &sweep)
{
    if (sweep.mixes() == 0) {
        sink.printf("(no mixes swept)\n");
        return;
    }
    sink.printf("%-12s  %8s  %8s\n", "scheme", "gmeanWS", "maxWS");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        sink.printf("%-12s  %8.3f  %8.3f\n",
                    sweep.schemes[s].name.c_str(), gmean(sweep.ws[s]),
                    maxOf(sweep.ws[s]));
    }
}

void
writeTierSummary(ReportSink &sink, const SweepResult &sweep)
{
    bool any = false;
    for (const RunResult &run : sweep.firstRun)
        any = any || run.tieredPages > 0;
    if (!any)
        return;
    sink.printf("\n%-12s  %8s  %9s  %9s  %9s\n", "scheme",
                "farShare", "farPages", "promoted", "demoted");
    for (std::size_t s = 0; s < sweep.firstRun.size(); s++) {
        const RunResult &run = sweep.firstRun[s];
        const char *name = s < sweep.schemes.size()
            ? sweep.schemes[s].name.c_str() : "?";
        sink.printf("%-12s  %8.3f  %9llu  %9llu  %9llu\n", name,
                    run.farAccessShare(),
                    static_cast<unsigned long long>(
                        run.farResidentPages),
                    static_cast<unsigned long long>(
                        run.tierPromotions),
                    static_cast<unsigned long long>(
                        run.tierDemotions));
    }
}

void
writeBreakdowns(ReportSink &sink, const SweepResult &sweep)
{
    if (sweep.schemes.empty())
        return;
    const std::size_t ref = sweep.schemes.size() - 1;
    sink.printf("\n%-12s %10s %10s %28s %10s\n", "scheme",
                "onchip/ref", "offchip/ref",
                "traffic/instr (L2LLC|LLCMem|Oth)", "energy/ref");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        sink.printf(
            "%-12s %10.2f %10.2f      %6.2f | %6.2f | %6.2f %10.2f\n",
            sweep.schemes[s].name.c_str(),
            sweep.onChipLat[s] / std::max(sweep.onChipLat[ref], 1e-12),
            sweep.offChipLat[s] /
                std::max(sweep.offChipLat[ref], 1e-12),
            sweep.trafficPerInstr[s][0], sweep.trafficPerInstr[s][1],
            sweep.trafficPerInstr[s][2],
            sweep.energyPerInstr[s] /
                std::max(sweep.energyPerInstr[ref], 1e-12));
    }
    sink.printf("\n%-12s %8s %8s %8s %8s %8s  (nJ/instr)\n", "scheme",
                "static", "core", "net", "llc", "mem");
    for (std::size_t s = 0; s < sweep.schemes.size(); s++) {
        sink.printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                    sweep.schemes[s].name.c_str(),
                    1e9 * sweep.energyParts[s][0],
                    1e9 * sweep.energyParts[s][1],
                    1e9 * sweep.energyParts[s][2],
                    1e9 * sweep.energyParts[s][3],
                    1e9 * sweep.energyParts[s][4]);
    }
}

void
writeChipMap(ReportSink &sink, const ChipMap &map)
{
    sink.printf("thread placement (process letter + thread digit; "
                "-- idle) / dominant data (process letter: p=private "
                "s=shared)\n");
    for (int y = 0; y < map.height; y++) {
        for (int x = 0; x < map.width; x++)
            sink.printf(
                " %s", map.threadLabel[y * map.width + x].c_str());
        sink.printf("   |");
        for (int x = 0; x < map.width; x++)
            sink.printf(" %s",
                        map.dataLabel[y * map.width + x].c_str());
        sink.printf("\n");
    }
}

void
writeNocHeatmap(ReportSink &sink, const NocHeatmap &map)
{
    if (map.width <= 0 || map.height <= 0 || map.links.empty()) {
        sink.printf("(no link loads: network model tracks no "
                    "links)\n");
        return;
    }
    // Per-tile outgoing load (mesh links only), as % of the hottest
    // tile — the link-level analogue of the chip maps.
    std::vector<std::uint64_t> tile_flits(
        static_cast<std::size_t>(map.width) * map.height, 0);
    for (const NocLinkStat &link : map.links) {
        if (link.memCtrl < 0 && link.src < tile_flits.size())
            tile_flits[link.src] += link.flits;
    }
    std::uint64_t peak = 0;
    for (std::uint64_t f : tile_flits)
        peak = std::max(peak, f);
    sink.printf("link load per tile (outgoing flits, %% of hottest "
                "tile)\n");
    for (int y = 0; y < map.height; y++) {
        for (int x = 0; x < map.width; x++) {
            const std::uint64_t f =
                tile_flits[static_cast<std::size_t>(y) * map.width +
                           x];
            sink.printf(" %3d",
                        peak > 0
                            ? static_cast<int>((f * 100) / peak)
                            : 0);
        }
        sink.printf("\n");
    }

    // The hottest individual links (deterministic order: flits desc,
    // then link endpoints).
    std::vector<NocLinkStat> hottest = map.links;
    std::stable_sort(hottest.begin(), hottest.end(),
                     [](const NocLinkStat &a, const NocLinkStat &b) {
                         if (a.flits != b.flits)
                             return a.flits > b.flits;
                         if (a.src != b.src)
                             return a.src < b.src;
                         return a.dst < b.dst;
                     });
    const std::size_t shown = std::min<std::size_t>(5, hottest.size());
    sink.printf("hottest links (flits, util, wait cycles):\n");
    for (std::size_t i = 0; i < shown; i++) {
        const NocLinkStat &link = hottest[i];
        const int sx = link.src % map.width;
        const int sy = link.src / map.width;
        if (link.memCtrl >= 0) {
            sink.printf("  %s[%d]@(%d,%d)",
                        link.far ? "farmem" : "mem", link.memCtrl, sx,
                        sy);
        } else {
            sink.printf("  (%d,%d)->(%d,%d)", sx, sy,
                        link.dst % map.width, link.dst / map.width);
        }
        sink.printf("  %llu  %.3f  %.3f\n",
                    static_cast<unsigned long long>(link.flits),
                    link.util, link.waitCycles);
    }
}

void
writeStudyHeader(ReportSink &sink, const char *title,
                 const char *paper_ref, const SystemConfig &cfg,
                 int mixes)
{
    sink.printf("== %s (%s) ==\n", title, paper_ref);
    // Worker count deliberately not printed: output is identical for
    // any CDCS_WORKERS, and byte-identical logs should diff clean.
    sink.printf("mesh %dx%d, %d banks/tile, %llu-line banks, "
                "%llu accesses/thread/epoch, %d epochs (%d warmup), "
                "%d mixes, seed base 1000\n\n",
                cfg.meshWidth, cfg.meshHeight, cfg.banksPerTile,
                static_cast<unsigned long long>(cfg.bankLines),
                static_cast<unsigned long long>(
                    cfg.accessesPerThreadEpoch),
                cfg.epochs, cfg.warmupEpochs, mixes);
}

} // namespace cdcs
