/**
 * @file
 * Epoch control layer: drives the fixed-work epoch loop (Fig. 4) —
 * issue chunks through the AccessPath, gather and EWMA-smooth the
 * runtime inputs at each epoch boundary, invoke the policy's
 * reconfiguration, apply its directive (new thread placement, pauses,
 * move accounting), reset statistics at the warmup boundary, and
 * assemble the final RunResult.
 */

#ifndef CDCS_SIM_EPOCH_CONTROLLER_HH
#define CDCS_SIM_EPOCH_CONTROLLER_HH

#include <string>
#include <vector>

#include "common/curve.hh"
#include "obs/stat_registry.hh"
#include "runtime/placement_cost.hh"
#include "sim/access_path.hh"
#include "sim/platform.hh"
#include "sim/run_result.hh"
#include "sim/run_stats.hh"

namespace cdcs
{

/** Runs epochs and reconfigurations over an AccessPath. */
class EpochController
{
  public:
    EpochController(const SystemConfig &cfg, Platform &platform,
                    AccessPath &path, WorkloadMix &mix,
                    std::vector<TileId> &threadCore, RunStats &stats);

    /** Run all epochs (warmup + measured). */
    void runEpochs();

    /** Aggregate the post-warmup measurements. */
    RunResult assemble() const;

  private:
    /** Snapshot monitor curves + access matrix for the runtime. */
    RuntimeInput gatherRuntimeInput();
    /** Apply a reconfiguration directive to the live system. */
    void applyDirective(const EpochDirective &directive);
    /**
     * Apply the churn events entering `epoch` (departures free their
     * threads' demand; arrivals reactivate them) and return the net
     * thread delta. No-op (returns 0) without a traffic schedule.
     */
    int applyChurn(int epoch);

    const SystemConfig &cfg;
    Platform &platform;
    AccessPath &path;
    WorkloadMix &mix;
    std::vector<TileId> &threadCore;
    RunStats &stats;

    /// Per-thread instruction/cycle counts at the warmup boundary.
    std::vector<double> instrOffset;
    std::vector<double> cycleOffset;

    // EWMA-smoothed runtime inputs.
    std::vector<Curve> smoothedCurves;
    std::vector<std::vector<double>> smoothedAccess;

    /// Effective-distance snapshot the gathered RuntimeInput points
    /// at; rebuilt from the live NocModel at each gather (after the
    /// NoC's contention refresh, so placement prices the same waits
    /// the access path will pay).
    PlacementCostModel placementCost;

    // Reconfiguration/walk timing.
    double reconfigStartMean = 0.0;

    /// Mean active cycles at the last NoC contention refresh.
    double nocEpochStartMean = 0.0;

    // ---- Dynamic-traffic bookkeeping (inert without a schedule).

    /// Per-thread instr/cycle snapshots at each epoch's start (the
    /// epoch trace's IPC deltas).
    std::vector<double> epochStartInstr;
    std::vector<double> epochStartCycles;
    /// Thread moves / line moves of the latest reconfiguration.
    int lastPlacementMoves = 0;
    std::uint64_t lastMovedLines = 0;
    /// Whole-run per-epoch trace (assembled into the RunResult).
    std::vector<EpochRecord> trace;

    // ---- Metrics-trace bookkeeping (inert without `stats=`).

    /// Resolved `stats=` selection and its (sorted) names.
    std::vector<StatId> statSel;
    std::vector<std::string> statNames;
    /// This thread's registry shard at the last sampled epoch. The
    /// whole run executes on one worker thread, so local deltas
    /// attribute stats to this run even under a parallel sweep.
    StatRegistry::Snapshot statBase;
};

} // namespace cdcs

#endif // CDCS_SIM_EPOCH_CONTROLLER_HH
