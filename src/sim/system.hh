/**
 * @file
 * The epoch-driven system simulator: a tiled CMP (Fig. 3, Table 2)
 * with one core + one or more partitioned LLC banks per tile, an X-Y
 * mesh NoC, edge memory controllers, per-VC monitors and a pluggable
 * NUCA policy. Drives a WorkloadMix in fixed-work epochs, invoking the
 * policy's reconfiguration between epochs (Fig. 4).
 *
 * System is a thin facade over three layers (see ARCHITECTURE.md):
 *
 *  - Platform: hardware construction (mesh, banks, monitors, policy,
 *    runtime, initial thread schedule);
 *  - AccessPath: the per-access hot path (policy mapping, demand
 *    moves, memory-bandwidth queueing, NUMA page map, stats);
 *  - EpochController: the epoch loop (runtime-input gathering, EWMA
 *    smoothing, reconfiguration directives, result assembly).
 */

#ifndef CDCS_SIM_SYSTEM_HH
#define CDCS_SIM_SYSTEM_HH

#include <vector>

#include "nuca/partitioned_nuca.hh"
#include "sim/access_path.hh"
#include "sim/epoch_controller.hh"
#include "sim/platform.hh"
#include "sim/run_result.hh"
#include "sim/run_stats.hh"
#include "sim/system_config.hh"
#include "workload/mix.hh"

namespace cdcs
{

/**
 * One simulated system: builds the platform for a scheme, runs the
 * mix, and reports RunResult.
 */
class System
{
  public:
    /**
     * @param cfg Platform/methodology parameters.
     * @param spec Scheme under test.
     * @param mix Workload (moved in; rebuilt per run by callers that
     *        compare schemes, so streams are identical across runs).
     */
    System(const SystemConfig &cfg, const SchemeSpec &spec,
           WorkloadMix mix);

    /** Run all epochs and report. */
    RunResult run();

    /** Thread-to-core map (inspection; valid after construction). */
    const std::vector<TileId> &threadPlacement() const
    {
        return threadCore;
    }

    /** The policy (inspection/tests). */
    NucaPolicy &policy() { return *platform.policy; }

    /** Per-VC allocation of the last reconfiguration, if partitioned. */
    const PartitionedNucaPolicy *partitionedPolicy() const;

    const Mesh &meshRef() const { return platform.mesh; }
    const WorkloadMix &workload() const { return mix; }

  private:
    SystemConfig cfg;
    SchemeSpec spec;
    WorkloadMix mix;
    Platform platform;
    RunStats stats;
    std::vector<TileId> threadCore;
    AccessPath path;
    EpochController controller;
};

} // namespace cdcs

#endif // CDCS_SIM_SYSTEM_HH
