/**
 * @file
 * The epoch-driven system simulator: a tiled CMP (Fig. 3, Table 2)
 * with one core + one or more partitioned LLC banks per tile, an X-Y
 * mesh NoC, edge memory controllers, per-VC monitors and a pluggable
 * NUCA policy. Drives a WorkloadMix in fixed-work epochs, invoking the
 * policy's reconfiguration between epochs (Fig. 4).
 */

#ifndef CDCS_SIM_SYSTEM_HH
#define CDCS_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/partitioned_bank.hh"
#include "mesh/mesh.hh"
#include "monitor/sampled_monitor.hh"
#include "nuca/partitioned_nuca.hh"
#include "nuca/policy.hh"
#include "runtime/cdcs_runtime.hh"
#include "sim/core_model.hh"
#include "sim/energy.hh"
#include "workload/mix.hh"

namespace cdcs
{

/** Which NUCA organization a run uses. */
enum class SchemeKind : std::uint8_t
{
    SNuca,
    RNuca,
    Partitioned
};

/** Initial (static) thread scheduler. */
enum class InitialSched : std::uint8_t
{
    Random,
    Clustered
};

/** Monitor hardware used by partitioned schemes. */
enum class MonitorKind : std::uint8_t
{
    Gmon,
    Umon
};

/** Placement engine (Sec. VI-C comparators). */
enum class PlacerKind : std::uint8_t
{
    Heuristic,      ///< CDCS/Jigsaw heuristics.
    Annealed,       ///< + simulated-annealing thread placer.
    Bisection       ///< Recursive-bisection co-placement.
};

/** Full description of one scheme under test. */
struct SchemeSpec
{
    std::string name = "cdcs";
    SchemeKind kind = SchemeKind::Partitioned;
    CdcsOptions cdcsOpts;
    MoveScheme moves = MoveScheme::DemandBackground;
    InitialSched sched = InitialSched::Random;
    MonitorKind monitor = MonitorKind::Gmon;
    std::uint32_t monitorWays = 64;
    std::uint32_t monitorSets = 16;
    /**
     * Monitor sampling: 1 in 2^shift accesses. The paper uses 6
     * (1/64) with 25 ms epochs; scaled-down epochs need denser
     * sampling to keep per-epoch sample counts comparable
     * (DESIGN.md Sec. 2).
     */
    std::uint32_t monitorSampleShift = 4;
    PlacerKind placer = PlacerKind::Heuristic;
    int saIterations = 5000;

    /** S-NUCA baseline. */
    static SchemeSpec snuca();
    /** R-NUCA. */
    static SchemeSpec rnuca();
    /** Jigsaw with a random or clustered static scheduler. */
    static SchemeSpec jigsaw(InitialSched sched);
    /** Full CDCS. */
    static SchemeSpec cdcs();
    /**
     * Factor-analysis variant on Jigsaw+R (Fig. 12): enable
     * latency-aware allocation (L), thread placement (T) and/or
     * refined data placement (D).
     */
    static SchemeSpec factor(bool l, bool t, bool d);
};

/** Simulated-platform and methodology parameters. */
struct SystemConfig
{
    int meshWidth = 8;
    int meshHeight = 8;
    int banksPerTile = 1;
    std::uint64_t bankLines = 8192;     ///< 512 KB banks.
    std::uint32_t bankWays = 16;
    Cycles bankLatency = 9;
    Cycles memLatency = 120;
    NocConfig noc;

    bool modelMemBandwidth = true;
    double memLinesPerCycle = 0.8;      ///< Aggregate service rate.
    int memChannels = 8;

    /**
     * NUMA-aware memory placement (the extension Sec. III leaves to
     * future work, cf. the Fig. 11d discussion): pages are served by
     * the controller nearest their first-touching thread's core
     * instead of being page-interleaved across all controllers.
     */
    bool numaAwareMem = false;

    std::uint64_t accessesPerThreadEpoch = 50000;
    int epochs = 6;
    int warmupEpochs = 2;
    std::uint32_t chunkAccesses = 1000;

    PartitionedNucaConfig moveCfg;

    bool traceIpc = false;
    Cycles traceBinCycles = 20000;

    std::uint64_t seed = 42;

    /** Runtime allocation granule (bankLines when partitioning off). */
    double allocGranuleLines = 64.0;

    /**
     * EWMA factor blending each epoch's monitor curves and access
     * matrix into the values fed to the runtime (1.0 = use the raw
     * epoch values). Smoothing the sampled inputs lets the runtime
     * converge to a stable configuration (see DESIGN.md Sec. 5).
     */
    double monitorSmoothing = 0.5;

    /** Total LLC lines. */
    std::uint64_t
    llcLines() const
    {
        return static_cast<std::uint64_t>(meshWidth) * meshHeight *
            banksPerTile * bankLines;
    }
};

/** Aggregated results of one run (post-warmup unless noted). */
struct RunResult
{
    std::vector<double> threadInstrs;
    std::vector<double> threadCycles;
    std::vector<double> threadIpc;
    /** Per-process throughput: sum(instrs) / max(cycles). */
    std::vector<double> procThroughput;

    double totalInstrs = 0.0;
    double wallCycles = 0.0;

    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t demandMoves = 0;
    std::uint64_t moveProbes = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t instantMoved = 0;
    std::uint64_t bulkInvalidated = 0;
    std::uint64_t bgInvalidated = 0;
    Cycles pausedCycles = 0;
    int reconfigs = 0;
    RuntimeStepTimes avgTimes;

    double onChipLatSum = 0.0;  ///< L2<->LLC network cycles.
    double offChipLatSum = 0.0; ///< Memory + LLC<->mem network cycles.

    std::array<std::uint64_t, 3> trafficFlitHops = {0, 0, 0};

    EnergyBreakdown energy;

    /** Aggregate-IPC trace (whole run, no warmup trim). */
    std::vector<double> ipcTrace;
    Cycles ipcBinCycles = 0;

    double
    avgOnChipLatency() const
    {
        return llcAccesses > 0 ? onChipLatSum / llcAccesses : 0.0;
    }

    double
    offChipLatPerInstr() const
    {
        return totalInstrs > 0 ? offChipLatSum / totalInstrs : 0.0;
    }

    double
    flitHopsPerInstr(TrafficClass cls) const
    {
        return totalInstrs > 0
            ? trafficFlitHops[static_cast<std::size_t>(cls)] /
                totalInstrs
            : 0.0;
    }
};

/**
 * One simulated system: builds the platform for a scheme, runs the
 * mix, and reports RunResult.
 */
class System
{
  public:
    /**
     * @param cfg Platform/methodology parameters.
     * @param spec Scheme under test.
     * @param mix Workload (moved in; rebuilt per run by callers that
     *        compare schemes, so streams are identical across runs).
     */
    System(const SystemConfig &cfg, const SchemeSpec &spec,
           WorkloadMix mix);

    /** Run all epochs and report. */
    RunResult run();

    /** Thread-to-core map (inspection; valid after construction). */
    const std::vector<TileId> &threadPlacement() const
    {
        return threadCore;
    }

    /** The policy (inspection/tests). */
    NucaPolicy &policy() { return *nucaPolicy; }

    /** Per-VC allocation of the last reconfiguration, if partitioned. */
    const PartitionedNucaPolicy *partitionedPolicy() const;

    const Mesh &meshRef() const { return mesh; }
    const WorkloadMix &workload() const { return mix; }

  private:
    void issueAccess(ThreadId t);
    void applyDirective(const EpochDirective &directive);
    RuntimeInput gatherRuntimeInput();
    double meanActiveCycles() const;

    SystemConfig cfg;
    SchemeSpec spec;
    Mesh mesh;
    WorkloadMix mix;
    std::vector<PartitionedBank> banks;
    std::vector<std::unique_ptr<SampledMonitor>> monitors;
    std::unique_ptr<ReconfigRuntime> runtime;
    std::unique_ptr<NucaPolicy> nucaPolicy;
    Rng rng;

    std::vector<TileId> threadCore;
    std::vector<CoreClock> clocks;
    std::vector<std::vector<double>> accessMatrix;

    // Statistics (reset at the warmup boundary).
    struct Stats
    {
        std::uint64_t llcAccesses = 0;
        std::uint64_t llcHits = 0;
        std::uint64_t demandMoves = 0;
        std::uint64_t moveProbes = 0;
        std::uint64_t memAccesses = 0;
        std::uint64_t instantMoved = 0;
        std::uint64_t bulkInvalidated = 0;
        std::uint64_t bgInvalidated = 0;
        Cycles pausedCycles = 0;
        int reconfigs = 0;
        RuntimeStepTimes timeSums;
        double onChipLatSum = 0.0;
        double offChipLatSum = 0.0;
    };
    Stats stats;
    std::vector<double> instrOffset;
    std::vector<double> cycleOffset;

    // Memory-bandwidth queueing state.
    double queueDelay = 0.0;
    std::uint64_t chunkMisses = 0;

    // EWMA-smoothed runtime inputs.
    std::vector<Curve> smoothedCurves;
    std::vector<std::vector<double>> smoothedAccess;

    /** First-touch page-to-controller map (numaAwareMem). */
    std::unordered_map<std::uint64_t, int> pageCtrl;

    /** Memory hops for a line accessed via `bank_tile` by `core`. */
    int memHops(TileId bank_tile, TileId core, LineAddr line);

    // Reconfiguration/walk timing.
    double reconfigStartMean = 0.0;

    // IPC trace.
    std::vector<double> ipcBins;

    std::uint64_t monitorTrafficSampleCtr = 0;
};

} // namespace cdcs

#endif // CDCS_SIM_SYSTEM_HH
