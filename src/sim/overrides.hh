/**
 * @file
 * Typed `key=value` configuration overrides for the study API: one
 * parser behind `cdcs_studies --set` that knows every overridable
 * SystemConfig field and study knob, validates names and value types
 * up front, and resolves the default < environment < `--set`
 * precedence (the CDCS_* env knobs of EXPERIMENTS.md remain as
 * defaults for compatibility).
 */

#ifndef CDCS_SIM_OVERRIDES_HH
#define CDCS_SIM_OVERRIDES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system_config.hh"

namespace cdcs
{

/** One parsed `key=value` pair (later entries win). */
struct Override
{
    std::string key;
    std::string value; ///< Raw text (string knobs, find()).
    /**
     * Parsed once at add() time into the slot the key's type
     * selects; `u` additionally normalizes bool entries to 0/1 so
     * integer knob lookups never re-parse.
     */
    long long i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
};

/** An ordered set of `--set key=value` overrides. */
class Overrides
{
  public:
    /**
     * Parse one `key=value` string. Returns false (with a message in
     * `*err`) when the input is malformed, the key is unknown, or
     * the value does not parse as the key's type.
     */
    bool add(const std::string &kv, std::string *err);

    /**
     * Apply every SystemConfig-keyed override to `cfg` (study knobs
     * such as `mixes` are skipped; read them with knob()). Cannot
     * fail: every entry was validated and parsed by add().
     */
    void apply(SystemConfig &cfg) const;

    /** Last value set for `key`, or nullptr. */
    const std::string *find(const std::string &key) const;

    /**
     * Integer study knob with default < environment < `--set`
     * precedence: a `--set key=` value wins over the `env` variable,
     * which wins over `fallback`.
     */
    std::uint64_t knob(const char *key, const char *env,
                      std::uint64_t fallback) const;

    /** String-valued knob with the same precedence (e.g. jsonDir). */
    std::string strKnob(const char *key, const char *env,
                        const std::string &fallback) const;

    bool empty() const { return entries.empty(); }
    const std::vector<Override> &all() const { return entries; }

    /** Every recognized key with its type, for help/docs output. */
    static std::vector<std::pair<std::string, std::string>>
    knownKeys();

  private:
    std::vector<Override> entries;
};

} // namespace cdcs

#endif // CDCS_SIM_OVERRIDES_HH
