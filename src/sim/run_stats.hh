/**
 * @file
 * Measured statistics of one run, shared by the AccessPath (which
 * accounts per-access events) and the EpochController (which accounts
 * reconfiguration events and resets the counters at the warmup
 * boundary).
 */

#ifndef CDCS_SIM_RUN_STATS_HH
#define CDCS_SIM_RUN_STATS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "runtime/cdcs_runtime.hh"

namespace cdcs
{

/** Counters reset at the warmup boundary. */
struct RunStats
{
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t demandMoves = 0;
    std::uint64_t moveProbes = 0;
    std::uint64_t memAccesses = 0;
    /** Subset of memAccesses served by the far tier (0 = no far tier). */
    std::uint64_t farMemAccesses = 0;
    std::uint64_t instantMoved = 0;
    std::uint64_t bulkInvalidated = 0;
    std::uint64_t bgInvalidated = 0;
    Cycles pausedCycles = 0;
    int reconfigs = 0;
    RuntimeStepTimes timeSums;
    double onChipLatSum = 0.0;
    double offChipLatSum = 0.0;
    /** Portion of offChipLatSum paid on far-tier accesses. */
    double farOffChipLatSum = 0.0;
    /**
     * Memory accesses served per controller (lazily sized by the
     * AccessPath; empty until the first post-reset memory access).
     * The skew studies read the max/mean imbalance off it.
     */
    std::vector<std::uint64_t> memCtrlAccesses;
};

} // namespace cdcs

#endif // CDCS_SIM_RUN_STATS_HH
