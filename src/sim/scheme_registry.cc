#include "sim/scheme_registry.hh"

#include "common/log.hh"

namespace cdcs
{

SchemeRegistry::SchemeRegistry()
{
    makers.emplace("snuca", [] { return SchemeSpec::snuca(); });
    makers.emplace("rnuca", [] { return SchemeSpec::rnuca(); });
    makers.emplace("jigsaw-c", [] {
        return SchemeSpec::jigsaw(InitialSched::Clustered);
    });
    makers.emplace("jigsaw-r", [] {
        return SchemeSpec::jigsaw(InitialSched::Random);
    });
    makers.emplace("cdcs", [] { return SchemeSpec::cdcs(); });
    // The Fig. 12 factor-analysis variants on Jigsaw+R.
    makers.emplace("jigsaw+l",
                   [] { return SchemeSpec::factor(true, false, false); });
    makers.emplace("jigsaw+t",
                   [] { return SchemeSpec::factor(false, true, false); });
    makers.emplace("jigsaw+d",
                   [] { return SchemeSpec::factor(false, false, true); });
    makers.emplace("jigsaw+ltd",
                   [] { return SchemeSpec::factor(true, true, true); });
}

SchemeRegistry &
SchemeRegistry::instance()
{
    static SchemeRegistry registry;
    return registry;
}

void
SchemeRegistry::add(const std::string &name,
                    std::function<SchemeSpec()> make)
{
    const auto inserted = makers.emplace(name, std::move(make));
    cdcs_assert(inserted.second, "scheme '%s' already registered",
                name.c_str());
}

bool
SchemeRegistry::build(const std::string &name, SchemeSpec *out) const
{
    const auto it = makers.find(name);
    if (it != makers.end()) {
        *out = it->second();
        return true;
    }
    // Fall back to display names ("S-NUCA", "Jigsaw+R", "+LTD"...),
    // so names read back from results re-resolve to specs.
    for (const auto &[key, make] : makers) {
        SchemeSpec spec = make();
        if (spec.name == name) {
            *out = std::move(spec);
            return true;
        }
    }
    return false;
}

bool
SchemeRegistry::contains(const std::string &name) const
{
    SchemeSpec spec;
    return build(name, &spec);
}

std::vector<std::string>
SchemeRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(makers.size());
    for (const auto &[key, make] : makers)
        out.push_back(key);
    return out; // std::map iteration is already sorted.
}

SchemeSpec
schemeByName(const std::string &name)
{
    SchemeSpec spec;
    if (!SchemeRegistry::instance().build(name, &spec)) {
        std::string known;
        for (const std::string &k : SchemeRegistry::instance().names())
            known += known.empty() ? k : ", " + k;
        fatal("unknown scheme '%s' (registered: %s)", name.c_str(),
              known.c_str());
    }
    return spec;
}

std::vector<SchemeSpec>
schemesByName(const std::vector<std::string> &names)
{
    std::vector<SchemeSpec> out;
    out.reserve(names.size());
    for (const std::string &name : names)
        out.push_back(schemeByName(name));
    return out;
}

} // namespace cdcs
