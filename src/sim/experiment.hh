/**
 * @file
 * Experiment harness helpers shared by the bench binaries: mix
 * construction, per-scheme runs with identical workload streams,
 * weighted-speedup computation against the S-NUCA baseline, and
 * environment-variable knobs for scaling the (scaled-down) default
 * methodology up or down. Parallel scheme x mix sweeps live in
 * sim/experiment_runner.hh.
 */

#ifndef CDCS_SIM_EXPERIMENT_HH
#define CDCS_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace cdcs
{

/** How to build a workload mix. */
struct MixSpec
{
    enum class Kind
    {
        Cpu,    ///< `count` random SPEC CPU2006-like apps.
        Omp,    ///< `count` random 8-thread SPEC OMP2012-like apps.
        Named   ///< Explicit profile name list.
    };

    Kind kind = Kind::Cpu;
    int count = 64;
    std::vector<std::string> names;
    std::uint64_t seed = 1;

    static MixSpec
    cpu(int count, std::uint64_t seed)
    {
        MixSpec spec;
        spec.kind = Kind::Cpu;
        spec.count = count;
        spec.seed = seed;
        return spec;
    }

    static MixSpec
    omp(int count, std::uint64_t seed)
    {
        MixSpec spec;
        spec.kind = Kind::Omp;
        spec.count = count;
        spec.seed = seed;
        return spec;
    }

    static MixSpec
    named(std::vector<std::string> names, std::uint64_t seed)
    {
        MixSpec spec;
        spec.kind = Kind::Named;
        spec.names = std::move(names);
        spec.seed = seed;
        return spec;
    }
};

/** Instantiate the mix a MixSpec describes. */
WorkloadMix buildMix(const MixSpec &spec);

/** Run one scheme on one mix. */
RunResult runScheme(const SystemConfig &cfg, const SchemeSpec &scheme,
                    const MixSpec &mix);

/**
 * Weighted speedup of `run` over `baseline` (same mix): the mean over
 * processes of the per-process throughput ratio [Snavely & Tullsen].
 */
double weightedSpeedup(const RunResult &run, const RunResult &baseline);

/**
 * Run several schemes on the same mix (identical streams) and return
 * results in scheme order. Serial; use ExperimentRunner::runSchemes
 * to shard the runs across the pool.
 */
std::vector<RunResult> runSchemes(const SystemConfig &cfg,
                                  const std::vector<SchemeSpec> &schemes,
                                  const MixSpec &mix);

/** Integer environment knob with default (e.g., CDCS_MIXES). */
std::uint64_t envOr(const char *name, std::uint64_t fallback);

/**
 * Default scaled-down methodology configuration for the studies,
 * honoring CDCS_EPOCH_ACCESSES / CDCS_EPOCHS / CDCS_WARMUP
 * environment overrides (see EXPERIMENTS.md). `--set` overrides are
 * applied on top by runStudy (sim/study.hh); mix counts resolve
 * through Overrides::knob.
 */
SystemConfig benchConfig();

} // namespace cdcs

#endif // CDCS_SIM_EXPERIMENT_HH
