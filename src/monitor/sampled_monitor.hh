/**
 * @file
 * Shared machinery for utility monitors: a small set-associative,
 * tag-only LRU array fed by an address-sampled access stream, with an
 * optional per-way geometric survival filter.
 *
 * With survival factor gamma == 1 this is a classic UMON [Qureshi &
 * Patt, MICRO'06] in its address-sampled form; with gamma < 1 it is
 * the CDCS geometric monitor (GMON, Sec. IV-G): per-way limit
 * registers discard a growing fraction of tags as they age down the
 * LRU stack, so each way models gamma^-w times more capacity than
 * way 0.
 */

#ifndef CDCS_MONITOR_SAMPLED_MONITOR_HH
#define CDCS_MONITOR_SAMPLED_MONITOR_HH

#include <cstdint>
#include <vector>

#include "common/curve.hh"
#include "common/types.hh"

namespace cdcs
{

/**
 * Address-sampled LRU tag array with per-way geometric filtering and
 * per-way hit counters. Produces miss curves over the modeled
 * capacity range.
 */
class SampledMonitor
{
  public:
    /**
     * @param num_sets Monitor sets (power of two).
     * @param num_ways Monitor ways (LRU stack depth per set).
     * @param sample_shift Sample 1 in 2^sample_shift line addresses.
     * @param gamma Per-way survival factor (1.0 for UMON).
     * @param seed Decorrelates sampling/tag hashes between monitors.
     */
    SampledMonitor(std::uint32_t num_sets, std::uint32_t num_ways,
                   std::uint32_t sample_shift, double gamma,
                   std::uint64_t seed);

    /**
     * Observe one access. Cheap for unsampled addresses (one hash and
     * compare).
     */
    void access(LineAddr addr);

    /**
     * Miss curve over the modeled capacity range: x in cache lines,
     * y in absolute misses (scaled back up by the sampling and
     * per-way survival rates). Point (0, totalAccesses) is included.
     *
     * Ways with fewer raw hits than the noise floor contribute
     * nothing: deep GMON ways scale single tags by large gamma^-w
     * factors, so a stray hit would fabricate thousands of phantom
     * hits and destabilize the allocator.
     */
    Curve missCurve() const;

    /** Set the raw-hit noise floor used by missCurve(). */
    void setNoiseFloor(std::uint64_t floor) { noiseFloor = floor; }

    /** Capacity in lines modeled by ways [0, w]. */
    double modeledCapacity(std::uint32_t w) const;

    /** Total capacity coverage in lines. */
    double
    coverage() const
    {
        return modeledCapacity(numWays - 1);
    }

    /** Accesses observed since the last clear (sampled or not). */
    std::uint64_t totalAccesses() const { return accessCount; }

    /** Reset hit/access counters, keeping the tag state warm. */
    void clearCounters();

    /** Reset counters and tags. */
    void clearAll();

    std::uint32_t sets() const { return numSets; }
    std::uint32_t ways() const { return numWays; }

    /**
     * Choose the survival factor gamma so that a monitor with the
     * given geometry covers `target_lines` of capacity. Solved by
     * bisection on the closed-form coverage expression.
     */
    static double gammaForCoverage(std::uint32_t num_sets,
                                   std::uint32_t num_ways,
                                   std::uint32_t sample_shift,
                                   std::uint64_t target_lines);

  private:
    /** 16-bit tag hash, also used against the limit registers. */
    std::uint16_t
    tagOf(LineAddr addr) const
    {
        return static_cast<std::uint16_t>(mix64(addr ^ tagSeed) & 0xFFFF);
    }

    std::uint32_t numSets;
    std::uint32_t numWays;
    std::uint32_t sampleShift;
    double gammaFactor;
    std::uint64_t sampleSeed;
    std::uint64_t tagSeed;
    std::uint64_t indexSeed;

    /// limit[w]: a tag survives the move from way w-1 into way w if
    /// tag < limit[w]. limit[0] is unused (insertions always land).
    std::vector<std::uint16_t> limits;
    /// tags[set * numWays + way]; 0xFFFF plays "empty" (harmless: it
    /// is also a legal tag value; collisions only add noise).
    std::vector<std::uint16_t> tags;
    std::vector<bool> validBits;
    std::vector<std::uint64_t> hitCounters;
    std::uint64_t accessCount = 0;
    std::uint64_t sampledCount = 0;
    std::uint64_t noiseFloor = 2;
};

} // namespace cdcs

#endif // CDCS_MONITOR_SAMPLED_MONITOR_HH
