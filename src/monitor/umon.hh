/**
 * @file
 * Classic utility monitor (UMON): uniform sampling across ways, so W
 * ways cover modeled_lines with modeled_lines / W resolution. Used as
 * the baseline monitor CDCS's GMON is compared against (Sec. VI-C).
 */

#ifndef CDCS_MONITOR_UMON_HH
#define CDCS_MONITOR_UMON_HH

#include "monitor/sampled_monitor.hh"

namespace cdcs
{

/**
 * UMON: each way models the same amount of capacity. To model
 * `modeled_lines` with W ways, the sampling rate is chosen so that one
 * way's tags represent modeled_lines / W lines.
 */
class Umon : public SampledMonitor
{
  public:
    /**
     * @param num_ways Monitor ways; resolution is coverage / ways.
     * @param modeled_lines Capacity the monitor must cover, in lines.
     * @param num_sets Tag-array sets.
     * @param seed Hash seed.
     */
    Umon(std::uint32_t num_ways, std::uint64_t modeled_lines,
         std::uint32_t num_sets = 16, std::uint64_t seed = 0xA11CE)
        : SampledMonitor(num_sets, num_ways,
                         shiftForCoverage(num_sets, num_ways,
                                          modeled_lines),
                         1.0, seed)
    {
    }

  private:
    /**
     * Smallest power-of-two sampling ratio whose coverage reaches
     * modeled_lines: sets * 2^shift * ways >= modeled_lines.
     */
    static std::uint32_t
    shiftForCoverage(std::uint32_t num_sets, std::uint32_t num_ways,
                     std::uint64_t modeled_lines)
    {
        std::uint32_t shift = 0;
        while ((static_cast<std::uint64_t>(num_sets) << shift) * num_ways <
               modeled_lines) {
            shift++;
        }
        return shift;
    }
};

} // namespace cdcs

#endif // CDCS_MONITOR_UMON_HH
