/**
 * @file
 * Geometric monitor (GMON, Sec. IV-G): per-way limit registers decay
 * the sampling rate by gamma per way, giving fine resolution at small
 * sizes and full-LLC coverage from only 64 ways.
 */

#ifndef CDCS_MONITOR_GMON_HH
#define CDCS_MONITOR_GMON_HH

#include "monitor/sampled_monitor.hh"

namespace cdcs
{

/**
 * GMON: way w samples gamma^w of the lines way 0 samples, so way w
 * models gamma^-w times more capacity. gamma is solved so the monitor
 * covers `modeled_lines`; with the paper's geometry (1024 tags, 64
 * ways, 1/64 global sampling) covering a 32 MB LLC yields
 * gamma ~= 0.95 and way-0 resolution of 64 KB.
 */
class Gmon : public SampledMonitor
{
  public:
    /**
     * @param num_ways Monitor ways (64 in the paper).
     * @param modeled_lines Capacity to cover, in lines.
     * @param num_sets Tag-array sets (16 in the paper: 1024 tags).
     * @param sample_shift Global sampling of 1 in 2^shift accesses.
     * @param seed Hash seed.
     */
    Gmon(std::uint32_t num_ways, std::uint64_t modeled_lines,
         std::uint32_t num_sets = 16, std::uint32_t sample_shift = 6,
         std::uint64_t seed = 0x6E0)
        : SampledMonitor(num_sets, num_ways, sample_shift,
                         gammaForCoverage(num_sets, num_ways,
                                          sample_shift, modeled_lines),
                         seed)
    {
    }
};

} // namespace cdcs

#endif // CDCS_MONITOR_GMON_HH
