#include "monitor/sampled_monitor.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cdcs
{

SampledMonitor::SampledMonitor(std::uint32_t num_sets,
                               std::uint32_t num_ways,
                               std::uint32_t sample_shift, double gamma,
                               std::uint64_t seed)
    : numSets(num_sets), numWays(num_ways), sampleShift(sample_shift),
      gammaFactor(gamma),
      sampleSeed(mix64(seed ^ 0x5A11)), tagSeed(mix64(seed ^ 0x7A6)),
      indexSeed(mix64(seed ^ 0x1DE))
{
    cdcs_assert(numSets > 0 && (numSets & (numSets - 1)) == 0,
                "monitor sets must be a power of two");
    cdcs_assert(numWays > 0, "monitor needs at least one way");
    cdcs_assert(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");

    limits.resize(numWays);
    double survival = 1.0;
    for (std::uint32_t w = 0; w < numWays; w++) {
        limits[w] = static_cast<std::uint16_t>(
            std::min(65535.0, std::floor(65536.0 * survival)));
        survival *= gammaFactor;
    }
    tags.assign(static_cast<std::size_t>(numSets) * numWays, 0);
    validBits.assign(tags.size(), false);
    hitCounters.assign(numWays, 0);
}

void
SampledMonitor::access(LineAddr addr)
{
    accessCount++;
    if (sampleShift > 0 &&
        (mix64(addr ^ sampleSeed) & ((1ull << sampleShift) - 1)) != 0) {
        return;
    }
    sampledCount++;

    const std::uint16_t tag = tagOf(addr);
    const std::uint32_t set = static_cast<std::uint32_t>(
        mix64(addr ^ indexSeed) & (numSets - 1));
    std::uint16_t *set_tags = &tags[static_cast<std::size_t>(set) * numWays];
    const std::size_t base = static_cast<std::size_t>(set) * numWays;

    // Probe: LRU position == way index.
    std::uint32_t hit_way = numWays;
    for (std::uint32_t w = 0; w < numWays; w++) {
        if (validBits[base + w] && set_tags[w] == tag) {
            hit_way = w;
            break;
        }
    }
    if (hit_way < numWays) {
        hitCounters[hit_way]++;
        validBits[base + hit_way] = false;
    }

    // Chain-insert the tag at way 0; each displaced tag drops one way
    // deeper if its hash passes the destination way's limit register,
    // otherwise it is discarded and the shift terminates (Fig. 9).
    std::uint16_t carried = tag;
    for (std::uint32_t w = 0; w < numWays; w++) {
        if (!validBits[base + w]) {
            set_tags[w] = carried;
            validBits[base + w] = true;
            return;
        }
        std::swap(carried, set_tags[w]);
        if (w + 1 >= numWays)
            return; // Displaced out of the last way: evicted.
        if (carried >= limits[w + 1])
            return; // Filtered out; shift terminates.
    }
}

double
SampledMonitor::modeledCapacity(std::uint32_t w) const
{
    // Way i alone models numSets * 2^shift / gamma^i lines; return the
    // cumulative capacity through way w.
    const double base = static_cast<double>(numSets) *
        std::pow(2.0, static_cast<double>(sampleShift));
    double total = 0.0;
    double inv_gamma = 1.0;
    for (std::uint32_t i = 0; i <= w && i < numWays; i++) {
        total += base * inv_gamma;
        inv_gamma /= gammaFactor;
    }
    return total;
}

Curve
SampledMonitor::missCurve() const
{
    Curve curve;
    const double total = static_cast<double>(accessCount);
    curve.addPoint(0.0, total);

    const double sample_scale =
        std::pow(2.0, static_cast<double>(sampleShift));
    double hits_so_far = 0.0;
    double inv_gamma = 1.0;
    double capacity = 0.0;
    const double base = static_cast<double>(numSets) * sample_scale;
    double prev_y = total;
    for (std::uint32_t w = 0; w < numWays; w++) {
        if (hitCounters[w] >= noiseFloor) {
            hits_so_far += static_cast<double>(hitCounters[w]) *
                sample_scale * inv_gamma;
        }
        capacity += base * inv_gamma;
        inv_gamma /= gammaFactor;
        // Clamp for sampling noise: the curve must stay non-negative
        // and non-increasing.
        double y = std::max(0.0, total - hits_so_far);
        y = std::min(y, prev_y);
        prev_y = y;
        curve.addPoint(capacity, y);
    }
    return curve;
}

void
SampledMonitor::clearCounters()
{
    std::fill(hitCounters.begin(), hitCounters.end(), 0);
    accessCount = 0;
    sampledCount = 0;
}

void
SampledMonitor::clearAll()
{
    clearCounters();
    std::fill(validBits.begin(), validBits.end(), false);
}

double
SampledMonitor::gammaForCoverage(std::uint32_t num_sets,
                                 std::uint32_t num_ways,
                                 std::uint32_t sample_shift,
                                 std::uint64_t target_lines)
{
    const double base = static_cast<double>(num_sets) *
        std::pow(2.0, static_cast<double>(sample_shift));
    const double target = static_cast<double>(target_lines);
    auto coverage = [&](double gamma) {
        double total = 0.0;
        double inv_gamma = 1.0;
        for (std::uint32_t i = 0; i < num_ways; i++) {
            total += base * inv_gamma;
            inv_gamma /= gamma;
        }
        return total;
    };
    if (coverage(1.0) >= target)
        return 1.0;
    double lo = 0.5, hi = 1.0;
    for (int iter = 0; iter < 60; iter++) {
        const double mid = 0.5 * (lo + hi);
        if (coverage(mid) >= target)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace cdcs
