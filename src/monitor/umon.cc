// Umon is header-only (a thin configuration of SampledMonitor); this
// translation unit exists to anchor the library target.
#include "monitor/umon.hh"
