/**
 * @file
 * Static NUCA (S-NUCA): lines are spread over all banks with a fixed
 * address hash. The baseline every scheme is normalized against.
 */

#ifndef CDCS_NUCA_SNUCA_HH
#define CDCS_NUCA_SNUCA_HH

#include "nuca/policy.hh"

namespace cdcs
{

/** S-NUCA mapping policy. */
class SNucaPolicy : public NucaPolicy
{
  public:
    /**
     * @param num_banks Banks on the chip.
     * @param seed Hash seed (decorrelated from set indexing).
     */
    explicit SNucaPolicy(int num_banks, std::uint64_t seed = 0x54AC)
        : numBanks(num_banks), hashSeed(seed)
    {
    }

    MapResult
    map(ThreadId /*thread*/, TileId /*core*/, VcId /*vc*/,
        LineAddr line) override
    {
        MapResult res;
        res.bank = static_cast<TileId>(mix64(line ^ hashSeed) %
                                       static_cast<std::uint64_t>(numBanks));
        return res;
    }

  private:
    int numBanks;
    std::uint64_t hashSeed;
};

} // namespace cdcs

#endif // CDCS_NUCA_SNUCA_HH
