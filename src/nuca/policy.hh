/**
 * @file
 * The NUCA policy interface: how the system maps lines to banks, and
 * how (for partitioned schemes) the chip is reconfigured between
 * epochs. Also defines the runtime (allocation + placement algorithm)
 * interface implemented by the Jigsaw and CDCS runtimes.
 */

#ifndef CDCS_NUCA_POLICY_HH
#define CDCS_NUCA_POLICY_HH

#include <cstdint>
#include <vector>

#include "common/curve.hh"
#include "common/types.hh"
#include "mesh/mesh.hh"

namespace cdcs
{

class PlacementCostModel;

/** Bank mapping result for one access. */
struct MapResult
{
    /** Home bank under the current configuration. */
    TileId bank = invalidTile;

    /**
     * Previous home bank while a demand-move reconfiguration is in
     * flight and the line's home changed; invalidTile otherwise.
     */
    TileId oldBank = invalidTile;

    /**
     * R-NUCA page reclassification: the accessed page moved class, so
     * its lines must be flushed from `invalidateBank`.
     */
    bool invalidatePage = false;
    TileId invalidateBank = invalidTile;
    LineAddr invalidatePageBase = 0;
};

/** How lines reach their new banks on a reconfiguration (Sec. IV-H). */
enum class MoveScheme : std::uint8_t
{
    Instant,            ///< Idealized: lines teleport to new homes.
    BulkInvalidate,     ///< Jigsaw: pause cores, invalidate movers.
    DemandBackground,   ///< CDCS: demand moves + background
                        ///< invalidations.
    BackgroundMoves     ///< Sec. IV-H ablation: the background walker
                        ///< moves lines to their new banks instead of
                        ///< invalidating them (the paper found this
                        ///< performs like background invalidations
                        ///< but needs more state and a racier
                        ///< protocol).
};

/** Inputs the reconfiguration runtimes consume. */
struct RuntimeInput
{
    const Mesh *mesh = nullptr;
    int numBanks = 0;
    int banksPerTile = 1;
    std::uint64_t bankLines = 0;

    /** Allocation granularity in lines (bankLines when partitioning
     *  is unavailable, Sec. IV-I). */
    std::uint64_t allocGranule = 64;

    /** Per-VC miss curves (x: lines, y: misses per epoch). */
    std::vector<Curve> missCurves;

    /** access[t][d]: accesses of thread t to VC d this epoch. */
    std::vector<std::vector<double>> access;

    /** Current thread-to-core assignment. */
    std::vector<TileId> threadCore;

    /**
     * Effective-distance snapshot from the live network model
     * (runtime/placement_cost.hh), gathered by the EpochController
     * each epoch. Null (tests, direct runtime invocations) means the
     * zero-load hop arithmetic, which is also what a non-contended
     * snapshot computes.
     */
    const PlacementCostModel *costModel = nullptr;

    /**
     * Timing constants mirrored from the system configuration. The
     * per-hop default derives from NocConfig so it cannot silently
     * diverge from the platform's router+link timing (the config is
     * the single source of truth; Platform asserts agreement).
     */
    double hopCycles =
        static_cast<double>(NocConfig{}.routerCycles +
                            NocConfig{}.linkCycles);
    double bankAccessCycles = 9.0;
    double memAccessCycles = 120.0;
};

/** Wall-clock cost of each reconfiguration step (Table 3). */
struct RuntimeStepTimes
{
    double allocUs = 0.0;
    double threadPlaceUs = 0.0;
    double dataPlaceUs = 0.0;

    double
    totalUs() const
    {
        return allocUs + threadPlaceUs + dataPlaceUs;
    }
};

/** Outputs of a reconfiguration runtime. */
struct RuntimeOutput
{
    /** alloc[d][b]: lines of VC d placed in bank b. */
    std::vector<std::vector<double>> alloc;

    /** New thread-to-core assignment (same as input if unchanged). */
    std::vector<TileId> threadCore;

    RuntimeStepTimes times;
};

/**
 * A reconfiguration runtime: consumes monitor output and produces VC
 * allocations/placements (and possibly a new thread placement).
 */
class ReconfigRuntime
{
  public:
    virtual ~ReconfigRuntime() = default;
    virtual RuntimeOutput reconfigure(const RuntimeInput &input) = 0;
};

/** What the policy asks the system to do at an epoch boundary. */
struct EpochDirective
{
    bool reconfigured = false;

    /** Full-chip pause (bulk invalidations); zero otherwise. */
    Cycles pauseCycles = 0;

    /** New thread placement; empty when unchanged. */
    std::vector<TileId> newThreadCore;

    /** Lines relocated instantly (Instant move scheme). */
    std::uint64_t movedLines = 0;

    /** Lines invalidated at reconfiguration time (bulk scheme). */
    std::uint64_t invalidatedLines = 0;

    RuntimeStepTimes times;
};

class PartitionedBank;

/**
 * Base class for NUCA mapping policies. The system drives it with one
 * map() per LLC access and one endEpoch() per epoch boundary.
 */
class NucaPolicy
{
  public:
    virtual ~NucaPolicy() = default;

    /** Map an access to its home bank (and move-chase target). */
    virtual MapResult map(ThreadId thread, TileId core, VcId vc,
                          LineAddr line) = 0;

    /**
     * Partition tag recorded with the line in the bank array; the
     * owning VC for partitioned schemes, 0 for unpartitioned ones.
     */
    virtual VcId
    partitionTag(VcId /*vc*/) const
    {
        return 0;
    }

    /**
     * Epoch boundary: reconfigure if the policy does so. `banks` is
     * the system's bank array (for walks/moves/target updates).
     */
    virtual EpochDirective
    endEpoch(const RuntimeInput & /*input*/,
             std::vector<PartitionedBank> & /*banks*/)
    {
        return {};
    }

    /**
     * Progress the background invalidation walker to `elapsed` cycles
     * after the last reconfiguration.
     *
     * @return Lines invalidated by this step.
     */
    virtual std::uint64_t
    advanceWalk(Cycles /*elapsed*/,
                std::vector<PartitionedBank> & /*banks*/)
    {
        return 0;
    }

    /** True while demand moves should chase lines in old banks. */
    virtual bool demandMovesActive() const { return false; }

    /** True for schemes that consume monitor curves. */
    virtual bool wantsMonitors() const { return false; }
};

} // namespace cdcs

#endif // CDCS_NUCA_POLICY_HH
