// SNucaPolicy is header-only; this translation unit anchors the
// library target.
#include "nuca/snuca.hh"
