/**
 * @file
 * Reactive NUCA (R-NUCA) [Hardavellas et al., ISCA'09]: page-grained
 * classification into private, shared and instruction classes with
 * class-specialized placement:
 *
 *  - private pages live in the first-touch core's local bank;
 *  - shared data is address-interleaved across all banks;
 *  - instruction pages use rotational interleaving over a 4-bank
 *    neighborhood cluster.
 *
 * Reclassification (private -> shared on a second core's touch) is
 * expensive in shared-baseline schemes: the page's lines must be
 * flushed from the old bank, which the policy reports via the
 * MapResult directive.
 */

#ifndef CDCS_NUCA_RNUCA_HH
#define CDCS_NUCA_RNUCA_HH

#include <unordered_map>

#include "nuca/policy.hh"

namespace cdcs
{

/** R-NUCA page classes. */
enum class PageClass : std::uint8_t
{
    Private,
    Shared,
    Instruction
};

/** R-NUCA mapping policy. */
class RNucaPolicy : public NucaPolicy
{
  public:
    /**
     * @param mesh Chip topology (for rotational clusters).
     * @param banks_per_tile Banks per tile.
     * @param seed Interleaving hash seed.
     */
    RNucaPolicy(const Mesh *mesh, int banks_per_tile,
                std::uint64_t seed = 0x2DCA);

    MapResult map(ThreadId thread, TileId core, VcId vc,
                  LineAddr line) override;

    /**
     * Map an instruction-page access: rotational interleaving over
     * the 4-bank cluster around the core (indexed by line address).
     * Exposed for direct use/testing; the synthetic workloads have
     * negligible code footprints.
     */
    TileId rotationalBank(TileId core, LineAddr line) const;

    /** Class currently recorded for a page (Private if untracked). */
    PageClass classOf(LineAddr line) const;

  private:
    struct PageInfo
    {
        PageClass cls = PageClass::Private;
        TileId ownerCore = invalidTile;
    };

    const Mesh *mesh;
    int banksPerTile;
    std::uint64_t hashSeed;
    std::unordered_map<std::uint64_t, PageInfo> pageTable;

    std::uint64_t
    pageOf(LineAddr line) const
    {
        return line >> pageLineShift;
    }

    TileId
    localBank(TileId core, LineAddr line) const
    {
        // With several banks per tile, interleave within the tile.
        const auto sub = static_cast<TileId>(
            mix64(line ^ hashSeed) % banksPerTile);
        return static_cast<TileId>(core * banksPerTile + sub);
    }

    TileId
    interleavedBank(LineAddr line) const
    {
        const std::uint64_t banks =
            static_cast<std::uint64_t>(mesh->numTiles()) * banksPerTile;
        return static_cast<TileId>(mix64(line ^ (hashSeed * 3)) % banks);
    }
};

} // namespace cdcs

#endif // CDCS_NUCA_RNUCA_HH
