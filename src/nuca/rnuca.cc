#include "nuca/rnuca.hh"

namespace cdcs
{

RNucaPolicy::RNucaPolicy(const Mesh *mesh_ptr, int banks_per_tile,
                         std::uint64_t seed)
    : mesh(mesh_ptr), banksPerTile(banks_per_tile), hashSeed(seed)
{
}

MapResult
RNucaPolicy::map(ThreadId /*thread*/, TileId core, VcId /*vc*/,
                 LineAddr line)
{
    MapResult res;
    const std::uint64_t page = pageOf(line);
    auto [it, inserted] = pageTable.try_emplace(page);
    PageInfo &info = it->second;
    if (inserted) {
        // First touch: classify private to this core.
        info.cls = PageClass::Private;
        info.ownerCore = core;
    }

    switch (info.cls) {
      case PageClass::Private:
        if (info.ownerCore == core) {
            res.bank = localBank(core, line);
            return res;
        }
        // Second core touched a private page: reclassify to shared
        // and flush it from the old owner's bank (page remaps are the
        // expensive operation in shared-baseline D-NUCAs, Sec. II-A).
        res.invalidatePage = true;
        res.invalidateBank = localBank(info.ownerCore, line);
        res.invalidatePageBase = page << pageLineShift;
        info.cls = PageClass::Shared;
        info.ownerCore = invalidTile;
        [[fallthrough]];
      case PageClass::Shared:
        res.bank = interleavedBank(line);
        return res;
      case PageClass::Instruction:
        res.bank = rotationalBank(core, line);
        return res;
    }
    return res;
}

TileId
RNucaPolicy::rotationalBank(TileId core, LineAddr line) const
{
    // 4-way rotational interleaving: the cluster is the core's tile
    // plus its +x, +y and +x+y neighbors (wrapping at the mesh edge),
    // and the bank within the cluster is picked by address so that
    // neighboring cores rotate through different replicas.
    const MeshCoord c = mesh->coordOf(core);
    const int dx = static_cast<int>(mix64(line ^ hashSeed ^ 0xC0DE) & 1);
    const int dy = static_cast<int>((mix64(line ^ hashSeed ^ 0xC0DE) >> 1)
                                    & 1);
    const int x = (c.x + dx) % mesh->width();
    const int y = (c.y + dy) % mesh->height();
    const TileId tile = mesh->tileAt(x, y);
    const auto sub = static_cast<TileId>(
        mix64(line ^ (hashSeed * 7)) % banksPerTile);
    return static_cast<TileId>(tile * banksPerTile + sub);
}

PageClass
RNucaPolicy::classOf(LineAddr line) const
{
    const auto it = pageTable.find(pageOf(line));
    return it == pageTable.end() ? PageClass::Private : it->second.cls;
}

} // namespace cdcs
