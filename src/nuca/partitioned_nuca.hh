/**
 * @file
 * The partitioned-NUCA substrate shared by Jigsaw and CDCS: per-thread
 * VTBs over bank-partitioned LLC banks, descriptor-based access
 * spreading, and the three reconfiguration move schemes of Sec. IV-H
 * (instant moves, Jigsaw-style bulk invalidations, and CDCS demand
 * moves with background invalidations).
 *
 * The policy delegates the *decision* (allocation sizes, VC placement,
 * thread placement) to a ReconfigRuntime and handles the *mechanism*
 * here: building descriptors from allocations, programming bank
 * partition targets, shadow descriptors, and walking banks.
 */

#ifndef CDCS_NUCA_PARTITIONED_NUCA_HH
#define CDCS_NUCA_PARTITIONED_NUCA_HH

#include <memory>
#include <vector>

#include "cache/partitioned_bank.hh"
#include "nuca/policy.hh"
#include "virtcache/vtb.hh"

namespace cdcs
{

/** VCs a thread can access: thread-private, per-process, global. */
struct ThreadVcWiring
{
    VcId privateVc;
    VcId processVc;
    VcId globalVc;
};

/** Configuration of the partitioned-NUCA mechanism. */
struct PartitionedNucaConfig
{
    MoveScheme moves = MoveScheme::DemandBackground;

    /** Background walker: cycles per set walked (Sec. IV-H). */
    Cycles walkCyclesPerSet = 200;

    /** Background walker start delay after a reconfiguration. */
    Cycles walkDelay = 50000;

    /** Bulk invalidation walk cost per set (pause contribution). */
    Cycles bulkCyclesPerSet = 200;

    /**
     * Allocation hysteresis: a VC keeps its previous descriptor and
     * bank targets when the new allocation differs by less than this
     * fraction of its size. Suppresses descriptor churn from monitor
     * noise, which would otherwise move/invalidate whole VCs every
     * epoch for no benefit.
     */
    double allocHysteresis = 0.25;
};

/**
 * The partitioned-NUCA policy. One instance owns the mapping state of
 * the whole chip: per-thread VTBs, per-VC descriptors and, during
 * reconfigurations, the shadow descriptors and walk cursors.
 */
class PartitionedNucaPolicy : public NucaPolicy
{
  public:
    /**
     * @param mesh Topology (not owned).
     * @param banks_per_tile LLC banks per tile.
     * @param bank_lines Lines per bank.
     * @param bank_sets Sets per bank (for walk timing).
     * @param wiring Per-thread VC wiring.
     * @param num_vcs Total VC count.
     * @param runtime Reconfiguration decision-maker (not owned).
     * @param cfg Mechanism parameters.
     */
    PartitionedNucaPolicy(const Mesh *mesh, int banks_per_tile,
                          std::uint64_t bank_lines,
                          std::uint32_t bank_sets,
                          std::vector<ThreadVcWiring> wiring,
                          int num_vcs, ReconfigRuntime *runtime,
                          PartitionedNucaConfig cfg = {});

    MapResult map(ThreadId thread, TileId core, VcId vc,
                  LineAddr line) override;

    VcId
    partitionTag(VcId vc) const override
    {
        return vc;
    }

    EpochDirective endEpoch(const RuntimeInput &input,
                            std::vector<PartitionedBank> &banks) override;

    std::uint64_t advanceWalk(Cycles elapsed,
                              std::vector<PartitionedBank> &banks) override;

    bool
    demandMovesActive() const override
    {
        return walkActive;
    }

    bool wantsMonitors() const override { return true; }

    /** Current descriptor of a VC (for tests/inspection). */
    const VcDescriptor &descriptor(VcId vc) const;

    /** Current allocation matrix alloc[vc][bank] (lines). */
    const std::vector<std::vector<double>> &allocation() const
    {
        return currentAlloc;
    }

  private:
    /** Home bank of a line under the current descriptors. */
    TileId
    homeBank(VcId vc, LineAddr line) const
    {
        return descriptors[vc].bankOf(line);
    }

    /** Build descriptors + bank targets from an allocation matrix. */
    void applyAllocation(const std::vector<std::vector<double>> &alloc,
                         std::vector<PartitionedBank> &banks);

    /** Relocate every out-of-place line right now (Instant). */
    std::uint64_t
    relocateInstant(std::vector<PartitionedBank> &banks);

    /** Invalidate every out-of-place line right now (Bulk). */
    std::uint64_t
    invalidateBulk(std::vector<PartitionedBank> &banks);

    const Mesh *mesh;
    int banksPerTile;
    std::uint64_t bankLines;
    std::uint32_t bankSets;
    std::vector<ThreadVcWiring> wiring;
    int numVcs;
    ReconfigRuntime *runtime;
    PartitionedNucaConfig cfg;

    std::vector<Vtb> vtbs;                  ///< One per thread.
    std::vector<VcDescriptor> descriptors;  ///< Current, per VC.
    std::vector<std::vector<double>> currentAlloc;
    bool configured = false;

    // Background-walk state.
    bool walkActive = false;
    std::uint32_t setsWalked = 0;
};

} // namespace cdcs

#endif // CDCS_NUCA_PARTITIONED_NUCA_HH
