#include "nuca/partitioned_nuca.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace cdcs
{

PartitionedNucaPolicy::PartitionedNucaPolicy(
    const Mesh *mesh_ptr, int banks_per_tile, std::uint64_t bank_lines,
    std::uint32_t bank_sets, std::vector<ThreadVcWiring> wiring_in,
    int num_vcs, ReconfigRuntime *runtime_ptr, PartitionedNucaConfig config)
    : mesh(mesh_ptr), banksPerTile(banks_per_tile), bankLines(bank_lines),
      bankSets(bank_sets), wiring(std::move(wiring_in)), numVcs(num_vcs),
      runtime(runtime_ptr), cfg(config)
{
    cdcs_assert(runtime != nullptr, "partitioned NUCA needs a runtime");
    descriptors.resize(numVcs);

    // Before the first reconfiguration, spread every VC across all
    // banks (an S-NUCA-like bootstrap configuration: no monitor data
    // exists yet).
    const int num_banks = mesh->numTiles() * banksPerTile;
    std::vector<double> even(num_banks, 1.0);
    const VcDescriptor bootstrap = VcDescriptor::fromShares(even);
    for (auto &desc : descriptors)
        desc = bootstrap;

    vtbs.resize(wiring.size());
    for (std::size_t t = 0; t < wiring.size(); t++) {
        vtbs[t].install(wiring[t].privateVc,
                        descriptors[wiring[t].privateVc]);
        vtbs[t].install(wiring[t].processVc,
                        descriptors[wiring[t].processVc]);
        vtbs[t].install(wiring[t].globalVc,
                        descriptors[wiring[t].globalVc]);
    }

    currentAlloc.assign(numVcs, std::vector<double>(num_banks, 0.0));
}

MapResult
PartitionedNucaPolicy::map(ThreadId thread, TileId /*core*/, VcId vc,
                           LineAddr line)
{
    cdcs_assert(thread < vtbs.size(), "thread out of range");
    const VtbLookup lookup = vtbs[thread].lookup(vc, line);
    MapResult res;
    res.bank = lookup.bank;
    if (walkActive)
        res.oldBank = lookup.oldBank;
    return res;
}

void
PartitionedNucaPolicy::applyAllocation(
    const std::vector<std::vector<double>> &alloc,
    std::vector<PartitionedBank> &banks)
{
    cdcs_assert(static_cast<int>(alloc.size()) == numVcs,
                "allocation matrix has wrong VC count");
    for (int d = 0; d < numVcs; d++) {
        if (configured) {
            // Hysteresis: ignore changes smaller than a fraction of
            // the VC's size so steady-state VCs keep their data.
            double diff = 0.0, size = 0.0;
            for (std::size_t b = 0; b < alloc[d].size(); b++) {
                diff += std::abs(alloc[d][b] - currentAlloc[d][b]);
                size += alloc[d][b];
            }
            if (diff <= cfg.allocHysteresis * std::max(size, 1.0))
                continue;
            if (std::getenv("CDCS_DEBUG_RECONFIG") != nullptr) {
                std::fprintf(stderr,
                             "reconfig: vc %d remapped, size %.0f, "
                             "diff %.0f\n",
                             d, size, diff);
            }
        }
        currentAlloc[d] = alloc[d];
        descriptors[d] = VcDescriptor::fromShares(alloc[d]);
    }
    configured = true;
    // Every VC gets an explicit target in every bank (zero where it
    // has no allocation): lines stranded by a previous configuration
    // become preferred victims immediately.
    for (std::size_t b = 0; b < banks.size(); b++) {
        banks[b].clearTargets();
        for (int d = 0; d < numVcs; d++) {
            banks[b].setTarget(
                static_cast<VcId>(d),
                static_cast<std::uint64_t>(currentAlloc[d][b]));
        }
    }
}

std::uint64_t
PartitionedNucaPolicy::relocateInstant(std::vector<PartitionedBank> &banks)
{
    // Collect every out-of-place line first, then install, so a moved
    // line is never re-examined mid-walk.
    std::vector<CacheLine> movers;
    std::uint64_t extracted = 0;
    for (std::size_t b = 0; b < banks.size(); b++) {
        const auto bank_id = static_cast<TileId>(b);
        std::vector<CacheLine> local;
        const CacheArray &arr = banks[b].rawArray();
        for (std::uint32_t s = 0; s < arr.numSets(); s++) {
            for (std::uint32_t w = 0; w < arr.numWays(); w++) {
                const CacheLine &line = arr.entry(s, w);
                if (line.valid && homeBank(line.vc, line.addr) != bank_id)
                    local.push_back(line);
            }
        }
        for (const CacheLine &line : local) {
            CacheLine moved;
            if (banks[b].extractForMove(line.addr, moved)) {
                movers.push_back(moved);
                extracted++;
            }
        }
    }
    for (const CacheLine &line : movers) {
        const TileId home = homeBank(line.vc, line.addr);
        banks[home].installMoved(line, line.vc);
    }
    return extracted;
}

std::uint64_t
PartitionedNucaPolicy::invalidateBulk(std::vector<PartitionedBank> &banks)
{
    std::uint64_t invalidated = 0;
    for (std::size_t b = 0; b < banks.size(); b++) {
        const auto bank_id = static_cast<TileId>(b);
        banks[b].resetWalk();
        banks[b].walkInvalidate(
            banks[b].numSets(),
            [this, bank_id](const CacheLine &line) {
                return homeBank(line.vc, line.addr) != bank_id;
            },
            invalidated);
    }
    return invalidated;
}

EpochDirective
PartitionedNucaPolicy::endEpoch(const RuntimeInput &input,
                                std::vector<PartitionedBank> &banks)
{
    // If a previous background walk is still in flight, finish it
    // before reprogramming descriptors (reconfigurations are spaced
    // far enough apart that this only triggers in stress tests).
    if (walkActive) {
        std::uint64_t dropped = 0;
        for (std::size_t b = 0; b < banks.size(); b++) {
            const auto bank_id = static_cast<TileId>(b);
            banks[b].walkInvalidate(
                banks[b].numSets(),
                [this, bank_id](const CacheLine &line) {
                    return homeBank(line.vc, line.addr) != bank_id;
                },
                dropped);
        }
        for (auto &vtb : vtbs)
            vtb.finishReconfig();
        walkActive = false;
    }

    EpochDirective directive;
    directive.reconfigured = true;

    RuntimeOutput out = runtime->reconfigure(input);
    directive.times = out.times;
    directive.newThreadCore = out.threadCore;

    applyAllocation(out.alloc, banks);

    switch (cfg.moves) {
      case MoveScheme::Instant:
        for (std::size_t t = 0; t < vtbs.size(); t++) {
            vtbs[t].install(wiring[t].privateVc,
                            descriptors[wiring[t].privateVc]);
            vtbs[t].install(wiring[t].processVc,
                            descriptors[wiring[t].processVc]);
            vtbs[t].install(wiring[t].globalVc,
                            descriptors[wiring[t].globalVc]);
        }
        directive.movedLines = relocateInstant(banks);
        break;

      case MoveScheme::BulkInvalidate:
        for (std::size_t t = 0; t < vtbs.size(); t++) {
            vtbs[t].install(wiring[t].privateVc,
                            descriptors[wiring[t].privateVc]);
            vtbs[t].install(wiring[t].processVc,
                            descriptors[wiring[t].processVc]);
            vtbs[t].install(wiring[t].globalVc,
                            descriptors[wiring[t].globalVc]);
        }
        directive.invalidatedLines = invalidateBulk(banks);
        // All bank walkers run in parallel; cores pause for one full
        // array walk (Sec. IV-H / Sec. VI-C: ~100 Kcycles).
        directive.pauseCycles =
            static_cast<Cycles>(bankSets) * cfg.bulkCyclesPerSet;
        break;

      case MoveScheme::DemandBackground:
      case MoveScheme::BackgroundMoves:
        for (std::size_t t = 0; t < vtbs.size(); t++) {
            vtbs[t].beginReconfig(wiring[t].privateVc,
                                  descriptors[wiring[t].privateVc]);
            vtbs[t].beginReconfig(wiring[t].processVc,
                                  descriptors[wiring[t].processVc]);
            vtbs[t].beginReconfig(wiring[t].globalVc,
                                  descriptors[wiring[t].globalVc]);
        }
        for (auto &bank : banks)
            bank.resetWalk();
        walkActive = true;
        setsWalked = 0;
        break;
    }
    return directive;
}

std::uint64_t
PartitionedNucaPolicy::advanceWalk(Cycles elapsed,
                                   std::vector<PartitionedBank> &banks)
{
    if (!walkActive)
        return 0;
    if (elapsed <= cfg.walkDelay)
        return 0;
    const Cycles walking = elapsed - cfg.walkDelay;
    const auto target = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(walking / cfg.walkCyclesPerSet, bankSets));
    if (target <= setsWalked)
        return 0;
    const std::uint32_t delta = target - setsWalked;

    std::uint64_t invalidated = 0;
    if (cfg.moves == MoveScheme::BackgroundMoves) {
        // Sec. IV-H ablation: the walker sends lines to their new
        // homes instead of dropping them. Collect from every bank
        // first so a moved line is not re-examined mid-walk.
        std::vector<CacheLine> movers;
        for (std::size_t b = 0; b < banks.size(); b++) {
            const auto bank_id = static_cast<TileId>(b);
            banks[b].walkCollect(
                delta,
                [this, bank_id](const CacheLine &line) {
                    return homeBank(line.vc, line.addr) != bank_id;
                },
                movers);
        }
        for (const CacheLine &line : movers) {
            banks[homeBank(line.vc, line.addr)].installMoved(line,
                                                             line.vc);
        }
        invalidated = movers.size();
    } else {
        for (std::size_t b = 0; b < banks.size(); b++) {
            const auto bank_id = static_cast<TileId>(b);
            banks[b].walkInvalidate(
                delta,
                [this, bank_id](const CacheLine &line) {
                    return homeBank(line.vc, line.addr) != bank_id;
                },
                invalidated);
        }
    }
    setsWalked = target;
    if (setsWalked >= bankSets) {
        for (auto &vtb : vtbs)
            vtb.finishReconfig();
        walkActive = false;
    }
    return invalidated;
}

const VcDescriptor &
PartitionedNucaPolicy::descriptor(VcId vc) const
{
    cdcs_assert(vc < descriptors.size(), "VC out of range");
    return descriptors[vc];
}

} // namespace cdcs
