/**
 * @file
 * Process-wide hierarchical statistic registry behind the `--set
 * stats=<filter>` study knob. Subsystems register named counters and
 * fixed-bucket histograms once (typically from namespace-scope
 * initializers, so every stat exists before main()), then bump them
 * from hot paths. Counters are sharded per thread like the Profiler's
 * phase timers: the increment is an unsynchronized relaxed add into a
 * thread-local slot array, and collection points fold the shards.
 *
 * Disabled (the default) a bump is a single relaxed atomic load, so
 * instrumented paths pay nothing measurable and stats never influence
 * simulated results — which is why the `stats` knobs stay out of the
 * runner cache key.
 *
 * Names are dot-hierarchical ("noc.link_flits", "pool.steals"); the
 * `stats=` filter selects whole subtrees by comma-separated prefixes,
 * or everything with "1"/"all".
 */

#ifndef CDCS_OBS_STAT_REGISTRY_HH
#define CDCS_OBS_STAT_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cdcs
{

/** Index of a registered stat slot; stable for the process lifetime. */
using StatId = int;

class StatRegistry
{
  public:
    /**
     * Fixed slot budget. Registration is rare (a few dozen stats at
     * static init); a fixed array keeps the thread-local shard a flat
     * block with no growth races against concurrent bumps.
     */
    static constexpr std::size_t maxSlots = 128;

    /** A histogram is a run of consecutive counter slots. */
    struct HistId
    {
        StatId base = -1;
        int buckets = 0;
        /** Upper bound of the first bucket; doubles per bucket. */
        std::uint64_t firstBound = 1;
    };

    /** Folded (or per-thread) values of every registered slot. */
    struct Snapshot
    {
        std::array<std::uint64_t, maxSlots> v{};

        std::uint64_t
        operator[](StatId id) const
        {
            return v[static_cast<std::size_t>(id)];
        }
    };

    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on);

    /**
     * Register (or look up) the counter `name`. Idempotent: a second
     * registration of the same name returns the same id, so static
     * initializers in different translation units cannot collide.
     */
    static StatId counter(const std::string &name);

    /**
     * Register a log2-bucketed histogram: `buckets` consecutive
     * counter slots named `name.le_<bound>` (last bucket
     * `name.le_inf`), with bucket upper bounds `first_bound`,
     * `2*first_bound`, ... Selection by the `name` prefix picks up
     * every bucket.
     */
    static HistId histogram(const std::string &name, int buckets,
                            std::uint64_t first_bound);

    /** Add `n` to `id` in this thread's shard (no-op when disabled). */
    static void
    add(StatId id, std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        local().v[static_cast<std::size_t>(id)].fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Count `value` into its histogram bucket (no-op when disabled). */
    static void
    observe(const HistId &h, std::uint64_t value)
    {
        if (!enabled())
            return;
        std::uint64_t bound = h.firstBound;
        int b = 0;
        while (b < h.buckets - 1 && value > bound) {
            bound *= 2;
            b++;
        }
        local().v[static_cast<std::size_t>(h.base + b)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Number of slots registered so far. */
    static std::size_t numStats();

    /** Name of slot `id` ("" when unregistered). */
    static std::string name(StatId id);

    /** Sum every thread's shard (process-wide totals). */
    static Snapshot snapshot();

    /**
     * This thread's shard only. Each study run executes on a single
     * worker thread start to finish, so per-epoch deltas of the local
     * shard attribute stats to the right run even while other workers
     * simulate concurrently.
     */
    static Snapshot localSnapshot();

    /**
     * Resolve a `stats=` filter into slot ids, sorted by name so the
     * exported column order is deterministic. "" and "0" select
     * nothing; "1", "all", "true", "on" select everything; anything
     * else is a comma-separated list of names or dot-prefixes
     * ("noc,pool.steals" matches noc.* and pool.steals exactly).
     */
    static std::vector<StatId> select(const std::string &filter);

    /** Implementation detail, public only so the registry block in
     * stat_registry.cc can hold `Shard *` without friendship. */
    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, maxSlots> v{};
    };

  private:
    /**
     * This thread's shard, registered globally on first use and never
     * freed (snapshot() must still see counts from exited workers;
     * the leak is bounded by the thread count).
     */
    static Shard &local();

    static inline std::atomic<bool> enabledFlag{false};
};

} // namespace cdcs

#endif // CDCS_OBS_STAT_REGISTRY_HH
