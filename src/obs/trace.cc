#include "obs/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/log.hh"

namespace cdcs
{

namespace
{

using Clock = std::chrono::steady_clock;

struct Event
{
    std::uint64_t ts_ns;  // since trace open
    std::string name;
    char ph;              // 'B', 'E', or 'i'
};

struct ThreadBuf
{
    int tid = 0;
    std::string threadName;
    std::vector<Event> events;
};

struct TraceState
{
    std::mutex mu;
    std::vector<ThreadBuf *> bufs;  // never freed; bounded by threads
    std::string path;
    /**
     * Trace-start time as nanoseconds on the steady clock, atomic
     * because record() reads it without the mutex: the release store
     * of the enabled flag publishes it, but a close()/open() cycle
     * may rewrite it while a straggler thread sits between its
     * enabled() check and the read.
     */
    std::atomic<std::int64_t> startNs{0};
    int nextTid = 0;
};

// Heap-allocated and never destroyed: ThreadBufs must stay
// reachable from a static root at exit, or LeakSanitizer reports
// the (bounded, intentional) per-thread blocks as leaks.
TraceState &
state()
{
    static TraceState *s = new TraceState();
    return *s;
}

ThreadBuf &
localBuf()
{
    thread_local ThreadBuf *buf = []() {
        auto *fresh = new ThreadBuf();
        auto &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        fresh->tid = s.nextTid++;
        s.bufs.push_back(fresh);
        return fresh;
    }();
    return *buf;
}

void
record(char ph, const std::string &name)
{
    auto &s = state();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch()) // lint:allow(wallclock)
            .count();
    // Safe unlocked: open() publishes startNs via the release store
    // the caller's enabled() check acquired.
    const std::int64_t since_ns =
        now_ns - s.startNs.load(std::memory_order_relaxed);
    Event ev;
    ev.ts_ns = since_ns > 0 ? static_cast<std::uint64_t>(since_ns) : 0;
    ev.name = name;
    ev.ph = ph;
    localBuf().events.push_back(std::move(ev));
}

/** Minimal JSON string escape (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // anonymous namespace

void
Tracer::open(const std::string &path)
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (enabled())
        fatal("trace already open (%s)", s.path.c_str());
    s.path = path;
    s.startNs.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch()) // lint:allow(wallclock)
            .count(),
        std::memory_order_relaxed);
    for (ThreadBuf *buf : s.bufs)
        buf->events.clear();
    enabledFlag.store(true, std::memory_order_release);
}

bool
Tracer::close()
{
    auto &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!enabled())
        return true;
    // Workers are idle by the time the driver closes the trace (the
    // sweep barriers guarantee it), so no span is mid-flight.
    enabledFlag.store(false, std::memory_order_relaxed);

    std::FILE *f = std::fopen(s.path.c_str(), "wb");
    if (f == nullptr) {
        warn("cannot write trace file %s", s.path.c_str());
        return false;
    }
    std::fprintf(f, "[\n");
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":0,\"args\":{\"name\":\"cdcs\"}}");
    for (const ThreadBuf *buf : s.bufs) {
        if (!buf->threadName.empty()) {
            std::fprintf(
                f,
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                buf->tid, jsonEscape(buf->threadName).c_str());
        }
        for (const Event &ev : buf->events) {
            // Chrome trace ts is in microseconds; keep ns precision.
            std::fprintf(f,
                         ",\n{\"name\":\"%s\",\"ph\":\"%c\","
                         "\"ts\":%llu.%03u,\"pid\":1,\"tid\":%d",
                         jsonEscape(ev.name).c_str(), ev.ph,
                         static_cast<unsigned long long>(ev.ts_ns /
                                                         1000),
                         static_cast<unsigned>(ev.ts_ns % 1000),
                         buf->tid);
            if (ev.ph == 'i')
                std::fprintf(f, ",\"s\":\"t\"");
            std::fprintf(f, "}");
        }
    }
    std::fprintf(f, "\n]\n");
    const bool ok = std::fclose(f) == 0;
    for (ThreadBuf *buf : s.bufs)
        buf->events.clear();
    s.path.clear();
    return ok;
}

void
Tracer::nameThread(const std::string &name)
{
    auto &s = state();
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(s.mu);
    buf.threadName = name;
}

void
Tracer::begin(const std::string &name)
{
    if (enabled())
        record('B', name);
}

void
Tracer::end(const std::string &name)
{
    if (enabled())
        record('E', name);
}

void
Tracer::instant(const std::string &name)
{
    if (enabled())
        record('i', name);
}

} // namespace cdcs
