#include "obs/stat_registry.hh"

#include <algorithm>
#include <mutex>

#include "common/log.hh"

namespace cdcs
{

namespace
{

struct Registry
{
    std::mutex mu;
    std::vector<std::string> names;          // id -> name
    std::vector<StatRegistry::Shard *> shards;
};

/** Function-local static: safe to use from namespace-scope
 * initializers in other translation units regardless of link order.
 * Heap-allocated and never destroyed: worker shards outlive their
 * threads by design, and destroying the registry at exit would drop
 * the only references to them — LeakSanitizer would then report the
 * (bounded, intentional) shard blocks as leaks. */
Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

} // anonymous namespace

void
StatRegistry::setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

StatId
StatRegistry::counter(const std::string &name)
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < r.names.size(); i++) {
        if (r.names[i] == name)
            return static_cast<StatId>(i);
    }
    cdcs_assert(r.names.size() < maxSlots);
    r.names.push_back(name);
    return static_cast<StatId>(r.names.size() - 1);
}

StatRegistry::HistId
StatRegistry::histogram(const std::string &name, int buckets,
                        std::uint64_t first_bound)
{
    cdcs_assert(buckets >= 2);
    HistId h;
    h.buckets = buckets;
    h.firstBound = first_bound;
    std::uint64_t bound = first_bound;
    for (int b = 0; b < buckets; b++) {
        const std::string slot = b == buckets - 1
            ? name + ".le_inf"
            : name + ".le_" + std::to_string(bound);
        const StatId id = counter(slot);
        if (b == 0)
            h.base = id;
        else
            // Buckets must be consecutive slots (observe() indexes by
            // offset). Holds because counter() appends and histogram
            // registration is one atomic burst per name.
            cdcs_assert(id == h.base + b);
        bound *= 2;
    }
    return h;
}

std::size_t
StatRegistry::numStats()
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.names.size();
}

std::string
StatRegistry::name(StatId id)
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (id < 0 || static_cast<std::size_t>(id) >= r.names.size())
        return "";
    return r.names[static_cast<std::size_t>(id)];
}

StatRegistry::Snapshot
StatRegistry::snapshot()
{
    Snapshot snap;
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const Shard *shard : r.shards) {
        for (std::size_t i = 0; i < maxSlots; i++)
            snap.v[i] += shard->v[i].load(std::memory_order_relaxed);
    }
    return snap;
}

StatRegistry::Snapshot
StatRegistry::localSnapshot()
{
    Snapshot snap;
    const Shard &shard = local();
    for (std::size_t i = 0; i < maxSlots; i++)
        snap.v[i] = shard.v[i].load(std::memory_order_relaxed);
    return snap;
}

std::vector<StatId>
StatRegistry::select(const std::string &filter)
{
    std::vector<std::pair<std::string, StatId>> picked;
    if (filter.empty() || filter == "0")
        return {};

    const bool all = filter == "1" || filter == "all" ||
        filter == "true" || filter == "on";

    std::vector<std::string> prefixes;
    if (!all) {
        std::size_t pos = 0;
        while (pos <= filter.size()) {
            const std::size_t comma = filter.find(',', pos);
            const std::size_t end =
                comma == std::string::npos ? filter.size() : comma;
            if (end > pos)
                prefixes.push_back(filter.substr(pos, end - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    const auto matches = [&](const std::string &name) {
        if (all)
            return true;
        for (const auto &p : prefixes) {
            if (name == p)
                return true;
            if (name.size() > p.size() && name[p.size()] == '.' &&
                name.compare(0, p.size(), p) == 0)
                return true;
        }
        return false;
    };

    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < r.names.size(); i++) {
        if (matches(r.names[i]))
            picked.push_back({r.names[i], static_cast<StatId>(i)});
    }
    std::sort(picked.begin(), picked.end());

    std::vector<StatId> ids;
    ids.reserve(picked.size());
    for (const auto &[name, id] : picked)
        ids.push_back(id);
    return ids;
}

StatRegistry::Shard &
StatRegistry::local()
{
    thread_local Shard *shard = []() {
        auto *fresh = new Shard();
        auto &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(fresh);
        return fresh;
    }();
    return *shard;
}

} // namespace cdcs
