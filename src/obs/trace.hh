/**
 * @file
 * Execution tracer behind the `--set trace=<file>` study knob
 * (CDCS_TRACE). Emits Chrome trace-event JSON — duration (B/E) spans
 * for ExperimentRunner jobs, profiler phases, and result-store I/O,
 * plus instant events at epoch boundaries — tagged with a stable
 * per-thread track id, loadable in Perfetto or chrome://tracing.
 *
 * Events buffer per thread (same never-freed thread-local block
 * pattern as the Profiler) and are serialized once at close(), so
 * tracing perturbs the host only by the clock reads inside each span.
 * Disabled (the default) every hook is a single relaxed atomic load,
 * and no file is ever opened.
 */

#ifndef CDCS_OBS_TRACE_HH
#define CDCS_OBS_TRACE_HH

#include <atomic>
#include <string>

namespace cdcs
{

class Tracer
{
  public:
    static bool
    enabled()
    {
        // Acquire pairs with the release store in open(): a thread
        // that sees the flag also sees the trace start timestamp.
        return enabledFlag.load(std::memory_order_acquire);
    }

    /**
     * Start tracing into `path` (written at close()). Calling open
     * while already open is a user error (fatal).
     */
    static void open(const std::string &path);

    /**
     * Stop tracing and write the JSON file. Returns false when the
     * file could not be written. No-op (true) when never opened.
     */
    static bool close();

    /**
     * Label this thread's track ("worker-3"). Sticky across
     * open/close so pool threads can name themselves at spawn even if
     * tracing starts later.
     */
    static void nameThread(const std::string &name);

    /** Begin a duration span on this thread's track. */
    static void begin(const std::string &name);

    /** End the innermost span opened under `name`. */
    static void end(const std::string &name);

    /** A zero-duration marker (epoch boundaries). */
    static void instant(const std::string &name);

  private:
    static inline std::atomic<bool> enabledFlag{false};
};

/** RAII span: begins at construction, ends at destruction. A span
 * constructed with an empty name (or while tracing is off) is inert. */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string name_) : name(std::move(name_))
    {
        active = Tracer::enabled() && !name.empty();
        if (active)
            Tracer::begin(name);
    }

    ~TraceSpan()
    {
        if (active)
            Tracer::end(name);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name;
    bool active;
};

} // namespace cdcs

#endif // CDCS_OBS_TRACE_HH
