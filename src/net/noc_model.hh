/**
 * @file
 * Pluggable network-on-chip model interface. The simulation layers
 * (AccessPath, EpochController) talk to a NocModel instead of doing
 * Mesh latency arithmetic directly, so the network model can range
 * from the paper's zero-load analytic mesh (Table 2) to a
 * contention-aware queueing model without touching the access flow.
 *
 * A NocModel answers two hot-path queries — message latency between
 * tiles and to a memory controller — and accounts each message's
 * traffic (per-class flit-hops, and per-link flits for models that
 * track links). Contention state is refreshed only at epoch
 * boundaries (epochUpdate), never on the access path, so latency
 * queries stay table lookups along the route.
 */

#ifndef CDCS_NET_NOC_MODEL_HH
#define CDCS_NET_NOC_MODEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"

namespace cdcs
{

/** Accumulated load of one NoC link (post-warmup snapshot). */
struct NocLinkStat
{
    /** Upstream tile of the link. */
    TileId src = invalidTile;
    /** Downstream tile; invalidTile for a memory-attach link. */
    TileId dst = invalidTile;
    /** Controller index for attach links, -1 for mesh links. */
    int memCtrl = -1;
    /** Flits that traversed the link since the warmup boundary. */
    std::uint64_t flits = 0;
    /** Utilization at the last epoch update (after injection scaling). */
    double util = 0.0;
    /** Queueing wait (cycles) currently charged per traversal. */
    double waitCycles = 0.0;
    /** True for a far-tier attach link (memCtrl is the controller). */
    bool far = false;
};

/**
 * Interface of a network model: latency queries + traffic accounting
 * + epoch-boundary contention refresh + stats snapshots.
 *
 * The base class owns the per-class flit-hop counters every model
 * reports (the Fig. 11d / 14 / 15b breakdowns); per-link accounting
 * is delegated to the routeMsg/routeMemMsg hooks so zero-load models
 * pay nothing for it.
 */
class NocModel
{
  public:
    explicit NocModel(const Mesh &mesh) : topo(mesh) { flitHops.fill(0); }
    virtual ~NocModel() = default;

    NocModel(const NocModel &) = delete;
    NocModel &operator=(const NocModel &) = delete;

    /** Registry name of the model ("zero-load", "contention", ...). */
    virtual const char *name() const = 0;

    /** Latency of one message routed X-Y from src to dst. */
    virtual double latency(TileId src, TileId dst,
                           std::uint32_t payload_flits) const = 0;

    /**
     * Latency of one message between a tile and memory controller
     * `ctrl`, including the controller's attach link (the +1 hop of
     * Mesh::hopsToCtrl).
     */
    virtual double memLatency(TileId tile, int ctrl,
                              std::uint32_t payload_flits) const = 0;

    /**
     * Latency of one response from memory controller `ctrl` to a
     * tile (incl. attach). Zero-load latency is direction-symmetric,
     * so the default forwards to memLatency; contention models charge
     * the response-direction link waits instead.
     */
    virtual double
    memResponseLatency(int ctrl, TileId tile,
                       std::uint32_t payload_flits) const
    {
        return memLatency(tile, ctrl, payload_flits);
    }

    /**
     * Latency of one message between a tile and controller `ctrl`'s
     * FAR attach link. The far pool hangs off the same controller
     * tile as near DRAM, so the mesh legs are identical and only the
     * attach link differs; models without dedicated far links (and
     * zero-load models, where an uncontended attach link prices the
     * same) answer the near-tier latency.
     */
    virtual double
    farMemLatency(TileId tile, int ctrl,
                  std::uint32_t payload_flits) const
    {
        return memLatency(tile, ctrl, payload_flits);
    }

    /** Far-tier counterpart of memResponseLatency. */
    virtual double
    farMemResponseLatency(int ctrl, TileId tile,
                          std::uint32_t payload_flits) const
    {
        return memResponseLatency(ctrl, tile, payload_flits);
    }

    /** Account one tile-to-tile message of a given class. */
    void
    addTraffic(TrafficClass cls, TileId src, TileId dst,
               std::uint32_t flits)
    {
        flitHops[static_cast<std::size_t>(cls)] +=
            static_cast<std::uint64_t>(topo.hops(src, dst)) * flits;
        routeMsg(src, dst, flits);
    }

    /** Account one tile-to-memory-controller message (incl. attach). */
    void
    addMemTraffic(TrafficClass cls, TileId tile, int ctrl,
                  std::uint32_t flits)
    {
        flitHops[static_cast<std::size_t>(cls)] +=
            static_cast<std::uint64_t>(topo.hopsToCtrl(tile, ctrl)) *
            flits;
        routeMemMsg(tile, ctrl, flits);
    }

    /**
     * Account one controller-to-tile response (incl. attach). Routes
     * are X-Y symmetric in hop count, so the per-class flit-hop
     * totals match addMemTraffic; models with directed per-link
     * accounting charge the reverse-direction links instead.
     */
    void
    addMemResponse(TrafficClass cls, int ctrl, TileId tile,
                   std::uint32_t flits)
    {
        flitHops[static_cast<std::size_t>(cls)] +=
            static_cast<std::uint64_t>(topo.hopsToCtrl(tile, ctrl)) *
            flits;
        routeMemResponse(ctrl, tile, flits);
    }

    /**
     * Account one tile-to-controller message entering the FAR attach
     * link. The hop count matches the near tier (same controller
     * tile, one attach hop); only the per-link routing differs.
     */
    void
    addFarMemTraffic(TrafficClass cls, TileId tile, int ctrl,
                     std::uint32_t flits)
    {
        flitHops[static_cast<std::size_t>(cls)] +=
            static_cast<std::uint64_t>(topo.hopsToCtrl(tile, ctrl)) *
            flits;
        routeFarMemMsg(tile, ctrl, flits);
    }

    /** Far-tier counterpart of addMemResponse. */
    void
    addFarMemResponse(TrafficClass cls, int ctrl, TileId tile,
                      std::uint32_t flits)
    {
        flitHops[static_cast<std::size_t>(cls)] +=
            static_cast<std::uint64_t>(topo.hopsToCtrl(tile, ctrl)) *
            flits;
        routeFarMemResponse(ctrl, tile, flits);
    }

    /**
     * Queueing wait (cycles) currently charged on top of the
     * zero-load latency along the X-Y route src -> dst. This is the
     * query the reconfiguration runtime's PlacementCostModel snapshots
     * each epoch, so placement sees the same contention the access
     * path pays. Zero-load models answer 0.
     */
    virtual double
    pathWait(TileId src, TileId dst) const
    {
        (void)src;
        (void)dst;
        return 0.0;
    }

    /**
     * Queueing wait (cycles) on the route from a tile to memory
     * controller `ctrl`, including the attach link. Zero-load models
     * answer 0.
     */
    virtual double
    memPathWait(TileId tile, int ctrl) const
    {
        (void)tile;
        (void)ctrl;
        return 0.0;
    }

    /**
     * Queueing wait (cycles) on the response route from memory
     * controller `ctrl` back to a tile (attach link + the
     * reverse-direction mesh links). Zero-load models answer 0.
     */
    virtual double
    memResponsePathWait(int ctrl, TileId tile) const
    {
        (void)ctrl;
        (void)tile;
        return 0.0;
    }

    /**
     * Route wait to controller `ctrl`'s far attach link. Models
     * without dedicated far links answer the near-tier wait.
     */
    virtual double
    farMemPathWait(TileId tile, int ctrl) const
    {
        return memPathWait(tile, ctrl);
    }

    /** Far-tier counterpart of memResponsePathWait. */
    virtual double
    farMemResponsePathWait(int ctrl, TileId tile) const
    {
        return memResponsePathWait(ctrl, tile);
    }

    /**
     * Epoch boundary: refresh contention state from the loads
     * measured over the last `elapsed_cycles` mean active cycles.
     * Zero-load models ignore it.
     */
    virtual void epochUpdate(double elapsed_cycles)
    {
        (void)elapsed_cycles;
    }

    /** Reset traffic counters (warmup boundary). */
    virtual void clearTraffic() { flitHops.fill(0); }

    /** Accumulated flit-hops for a class. */
    std::uint64_t
    trafficFlitHops(TrafficClass cls) const
    {
        return flitHops[static_cast<std::size_t>(cls)];
    }

    /** Total accumulated flit-hops. */
    std::uint64_t
    totalFlitHops() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t f : flitHops)
            sum += f;
        return sum;
    }

    /** Per-link loads; empty for models that don't track links. */
    virtual std::vector<NocLinkStat> linkStats() const { return {}; }

    const Mesh &mesh() const { return topo; }

  protected:
    /** Per-link accounting hook for one X-Y routed message. */
    virtual void
    routeMsg(TileId src, TileId dst, std::uint32_t flits)
    {
        (void)src;
        (void)dst;
        (void)flits;
    }

    /** Per-link accounting hook for one memory leg (+ attach link). */
    virtual void
    routeMemMsg(TileId tile, int ctrl, std::uint32_t flits)
    {
        (void)tile;
        (void)ctrl;
        (void)flits;
    }

    /** Per-link hook for one memory response (attach link + route). */
    virtual void
    routeMemResponse(int ctrl, TileId tile, std::uint32_t flits)
    {
        (void)ctrl;
        (void)tile;
        (void)flits;
    }

    /**
     * Per-link hook for one far-tier memory leg. Models without
     * dedicated far links fold the traffic into the near accounting.
     */
    virtual void
    routeFarMemMsg(TileId tile, int ctrl, std::uint32_t flits)
    {
        routeMemMsg(tile, ctrl, flits);
    }

    /** Per-link hook for one far-tier memory response. */
    virtual void
    routeFarMemResponse(int ctrl, TileId tile, std::uint32_t flits)
    {
        routeMemResponse(ctrl, tile, flits);
    }

    const Mesh &topo;

  private:
    std::array<std::uint64_t,
               static_cast<std::size_t>(TrafficClass::NumClasses)>
        flitHops;
};

} // namespace cdcs

#endif // CDCS_NET_NOC_MODEL_HH
