/**
 * @file
 * Zero-load network model: a thin adapter over the Mesh's analytic
 * latency math (hops * (router + link) + serialization), exactly the
 * 3-cycle-router / 1-cycle-link mesh of the paper's Table 2. This is
 * the default model and is byte-identical to the pre-NocModel
 * simulator: it performs the same integer arithmetic the AccessPath
 * used to do against the Mesh directly.
 */

#ifndef CDCS_NET_ZERO_LOAD_NOC_HH
#define CDCS_NET_ZERO_LOAD_NOC_HH

#include "net/noc_model.hh"

namespace cdcs
{

/** The paper's zero-load mesh latency model. */
class ZeroLoadNoc final : public NocModel
{
  public:
    explicit ZeroLoadNoc(const Mesh &mesh) : NocModel(mesh) {}

    const char *name() const override { return "zero-load"; }

    double
    latency(TileId src, TileId dst,
            std::uint32_t payload_flits) const override
    {
        return static_cast<double>(
            topo.latency(topo.hops(src, dst), payload_flits));
    }

    double
    memLatency(TileId tile, int ctrl,
               std::uint32_t payload_flits) const override
    {
        return static_cast<double>(
            topo.latency(topo.hopsToCtrl(tile, ctrl), payload_flits));
    }
};

} // namespace cdcs

#endif // CDCS_NET_ZERO_LOAD_NOC_HH
