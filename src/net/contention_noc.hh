/**
 * @file
 * Contention-aware mesh network model. Every message is routed X-Y
 * over explicit directed links (four per tile, plus one attach link
 * per memory controller) with per-link flit counters; queueing delay
 * is charged per link from an M/D/1-style waiting time computed at
 * each epoch boundary from the previous epoch's measured link loads.
 *
 * The access path never simulates events: a latency query is the
 * zero-load latency plus a route-wait lookup. Since link waits only
 * change at epochUpdate, the per-route wait sums are flattened there
 * into all-pairs tables (built by extending each walk one link at a
 * time, so every entry performs the exact addition sequence of the
 * route walk — bit-identical by construction), and each hot-path
 * query is a single O(1) table read instead of an O(hops) walk. The
 * injection scale knob multiplies measured utilizations, letting
 * studies sweep load without changing the workload
 * (noc_sensitivity).
 */

#ifndef CDCS_NET_CONTENTION_NOC_HH
#define CDCS_NET_CONTENTION_NOC_HH

#include "net/noc_model.hh"

namespace cdcs
{

/** Queueing/contention mesh model with per-link accounting. */
class ContentionNoc final : public NocModel
{
  public:
    /**
     * @param inj_scale Multiplier on measured link utilization
     *        (injection-rate scaling; 1.0 models the workload as-is).
     * @param max_util Utilization clamp of the M/D/1 waiting time
     *        (keeps the wait finite as links saturate).
     * @param far_links Give each controller a second, far-tier attach
     *        link (capacity disaggregation). Off by default so the
     *        link population — and therefore every epoch update and
     *        stat — is untouched when no far tier is configured.
     */
    ContentionNoc(const Mesh &mesh, double inj_scale,
                  double max_util, bool far_links = false);

    const char *name() const override { return "contention"; }

    double latency(TileId src, TileId dst,
                   std::uint32_t payload_flits) const override;
    double memLatency(TileId tile, int ctrl,
                      std::uint32_t payload_flits) const override;
    double memResponseLatency(int ctrl, TileId tile,
                              std::uint32_t payload_flits)
        const override;
    double farMemLatency(TileId tile, int ctrl,
                         std::uint32_t payload_flits) const override;
    double farMemResponseLatency(int ctrl, TileId tile,
                                 std::uint32_t payload_flits)
        const override;

    /** Sum of link waits along the X-Y route (flattened, O(1)). */
    double pathWait(TileId src, TileId dst) const override;
    /** Route wait to a controller, including its attach link. */
    double memPathWait(TileId tile, int ctrl) const override;
    /** Response-route wait from a controller (attach + mesh legs). */
    double memResponsePathWait(int ctrl, TileId tile) const override;
    /** Route wait to a controller's far attach link (near when off). */
    double farMemPathWait(TileId tile, int ctrl) const override;
    /** Far response-route wait (near when far links are off). */
    double farMemResponsePathWait(int ctrl, TileId tile) const override;

    /**
     * Reference implementation of pathWait: the literal link-by-link
     * route walk the flattened tables must reproduce bit-for-bit.
     * Kept for tests and for auditing the flattening.
     */
    double walkPathWait(TileId src, TileId dst) const;

    void epochUpdate(double elapsed_cycles) override;
    void clearTraffic() override;

    std::vector<NocLinkStat> linkStats() const override;

    /** Number of tracked links (mesh links + mem attach links). */
    std::size_t numLinks() const { return linkFlits.size(); }

  protected:
    void routeMsg(TileId src, TileId dst,
                  std::uint32_t flits) override;
    void routeMemMsg(TileId tile, int ctrl,
                     std::uint32_t flits) override;
    void routeMemResponse(int ctrl, TileId tile,
                          std::uint32_t flits) override;
    void routeFarMemMsg(TileId tile, int ctrl,
                        std::uint32_t flits) override;
    void routeFarMemResponse(int ctrl, TileId tile,
                             std::uint32_t flits) override;

  private:
    /** Directed link leaving a tile, in routing order. */
    enum Dir : int
    {
        East = 0,
        West,
        South,
        North
    };

    /** Link index of the `dir` link leaving `tile`. */
    std::size_t
    meshLink(TileId tile, int dir) const
    {
        return static_cast<std::size_t>(tile) * 4 +
            static_cast<std::size_t>(dir);
    }

    /** Link index of controller `ctrl`'s attach link. */
    std::size_t
    attachLink(int ctrl) const
    {
        return attachBase + static_cast<std::size_t>(ctrl);
    }

    /**
     * Link index of controller `ctrl`'s far-tier attach link. Only
     * valid when far links are on (the far block sits after the near
     * attach block).
     */
    std::size_t
    farAttachLink(int ctrl) const
    {
        return attachBase +
            static_cast<std::size_t>(topo.numMemCtrls()) +
            static_cast<std::size_t>(ctrl);
    }

    /**
     * Walk the X-Y route src -> dst, applying `fn(link)` per link.
     * The route is X-first (dimension-ordered), matching the hop
     * count Mesh::hops reports.
     */
    template <typename Fn>
    void
    walkRoute(TileId src, TileId dst, Fn &&fn) const
    {
        const MeshCoord a = topo.coordOf(src);
        const MeshCoord b = topo.coordOf(dst);
        int x = a.x;
        int y = a.y;
        while (x != b.x) {
            const int dir = b.x > x ? East : West;
            fn(meshLink(topo.tileAt(x, y), dir));
            x += b.x > x ? 1 : -1;
        }
        while (y != b.y) {
            const int dir = b.y > y ? South : North;
            fn(meshLink(topo.tileAt(x, y), dir));
            y += b.y > y ? 1 : -1;
        }
    }

    /**
     * Rebuild the flattened per-epoch wait tables from linkWait.
     * Called whenever linkWait changes (construction, epochUpdate).
     * O(tiles^2 + tiles * ctrls) — off the access path.
     */
    void rebuildWaitTables();

    double injScale;
    double maxUtil;
    bool farLinks;           ///< Far attach links materialized.
    std::size_t attachBase;  ///< First attach-link index.

    // Per-link state, indexed by link id.
    std::vector<std::uint64_t> linkFlits;  ///< Since clearTraffic.
    std::vector<std::uint64_t> prevFlits;  ///< At last epochUpdate.
    std::vector<double> linkWait;          ///< Cycles per traversal.
    std::vector<double> linkUtil;          ///< Last measured (scaled).

    // Flattened per-epoch route-wait tables (rebuildWaitTables).
    std::vector<double> waitTbl;     ///< [src * tiles + dst].
    std::vector<double> memReqTbl;   ///< [tile * ctrls + ctrl].
    std::vector<double> memRespTbl;  ///< [ctrl * tiles + tile].
    std::vector<double> farReqTbl;   ///< Far legs; empty when off.
    std::vector<double> farRespTbl;  ///< Far legs; empty when off.
};

} // namespace cdcs

#endif // CDCS_NET_CONTENTION_NOC_HH
