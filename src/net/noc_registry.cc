#include "net/noc_registry.hh"

#include "common/log.hh"
#include "net/contention_noc.hh"
#include "net/zero_load_noc.hh"

namespace cdcs
{

NocRegistry::NocRegistry()
{
    add("zero-load",
        [](const Mesh &mesh, const NocBuildParams &) {
            return std::make_unique<ZeroLoadNoc>(mesh);
        });
    add("contention",
        [](const Mesh &mesh, const NocBuildParams &params) {
            return std::make_unique<ContentionNoc>(
                mesh, params.injScale, params.maxUtil,
                params.farLinks);
        });
}

NocRegistry &
NocRegistry::instance()
{
    static NocRegistry registry;
    return registry;
}

void
NocRegistry::add(const std::string &name, Factory make)
{
    cdcs_assert(!name.empty(), "noc model without a name");
    cdcs_assert(make != nullptr, "noc model without a factory");
    const auto inserted = makers.emplace(name, std::move(make));
    cdcs_assert(inserted.second, "noc model already registered");
}

bool
NocRegistry::contains(const std::string &name) const
{
    return makers.find(name) != makers.end();
}

std::vector<std::string>
NocRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(makers.size());
    for (const auto &[name, make] : makers)
        out.push_back(name); // std::map iteration is name-sorted.
    return out;
}

std::unique_ptr<NocModel>
NocRegistry::build(const std::string &name, const Mesh &mesh,
                   const NocBuildParams &params) const
{
    const auto it = makers.find(name);
    if (it == makers.end()) {
        std::string known;
        for (const std::string &n : names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown noc model '%s' (registered: %s)",
              name.c_str(), known.c_str());
    }
    return it->second(mesh, params);
}

} // namespace cdcs
