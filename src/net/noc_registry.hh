/**
 * @file
 * String-keyed registry of network models, mirroring the
 * SchemeRegistry: the `noc=` override (SystemConfig::nocModel) names
 * the model, Platform builds it here, and new models register a
 * factory instead of patching Platform. "zero-load" (the default,
 * byte-identical to the legacy Mesh arithmetic) and "contention" are
 * pre-registered.
 */

#ifndef CDCS_NET_NOC_REGISTRY_HH
#define CDCS_NET_NOC_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/noc_model.hh"

namespace cdcs
{

/** Model parameters a factory may consume (from SystemConfig). */
struct NocBuildParams
{
    /** Injection-rate scale on measured link loads (contention). */
    double injScale = 1.0;
    /** Utilization clamp of the queueing delay (contention). */
    double maxUtil = 0.95;
    /**
     * Materialize per-controller far-tier attach links (set when a
     * far memory tier is configured). Models without per-link state
     * ignore it; off keeps the link population byte-identical.
     */
    bool farLinks = false;
};

/** Process-wide name -> NocModel factory map. */
class NocRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<NocModel>(
        const Mesh &, const NocBuildParams &)>;

    /** The registry, with the built-in models pre-registered. */
    static NocRegistry &instance();

    /**
     * Register a model under a unique key (conventionally lowercase
     * CLI-friendly, e.g. "contention"). Panics on duplicates.
     */
    void add(const std::string &name, Factory make);

    bool contains(const std::string &name) const;

    /** Registered keys, sorted. */
    std::vector<std::string> names() const;

    /**
     * Build the model registered under `name`; panics listing the
     * registered models when nothing matches.
     */
    std::unique_ptr<NocModel> build(const std::string &name,
                                    const Mesh &mesh,
                                    const NocBuildParams &params) const;

  private:
    NocRegistry();

    std::map<std::string, Factory> makers;
};

} // namespace cdcs

#endif // CDCS_NET_NOC_REGISTRY_HH
