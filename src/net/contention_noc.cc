#include "net/contention_noc.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stat_registry.hh"

namespace cdcs
{

namespace
{

// Per-epoch NoC stats: flits offered across all links, and links the
// M/D/1 estimator clamped at the saturation limit.
const StatId kNocLinkFlits = StatRegistry::counter("noc.link_flits");
const StatId kNocSaturatedLinks =
    StatRegistry::counter("noc.saturated_links");

} // anonymous namespace

ContentionNoc::ContentionNoc(const Mesh &mesh, double inj_scale,
                             double max_util, bool far_links)
    : NocModel(mesh), injScale(inj_scale), maxUtil(max_util),
      farLinks(far_links),
      attachBase(static_cast<std::size_t>(mesh.numTiles()) * 4)
{
    cdcs_assert(injScale > 0.0, "injection scale must be positive");
    cdcs_assert(maxUtil > 0.0 && maxUtil < 1.0,
                "utilization clamp must be in (0, 1)");
    // Far attach links, when configured, occupy a second controller
    // block after the near attach block; with no far tier the link
    // population (and everything derived from it) is unchanged.
    const std::size_t links = attachBase +
        static_cast<std::size_t>(mesh.numMemCtrls()) *
            (farLinks ? 2 : 1);
    linkFlits.assign(links, 0);
    prevFlits.assign(links, 0);
    linkWait.assign(links, 0.0);
    linkUtil.assign(links, 0.0);
    rebuildWaitTables();
}

double
ContentionNoc::walkPathWait(TileId src, TileId dst) const
{
    double wait = 0.0;
    walkRoute(src, dst,
              [&](std::size_t link) { wait += linkWait[link]; });
    return wait;
}

double
ContentionNoc::pathWait(TileId src, TileId dst) const
{
    return waitTbl[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(topo.numTiles()) +
                   dst];
}

void
ContentionNoc::rebuildWaitTables()
{
    const std::size_t tiles =
        static_cast<std::size_t>(topo.numTiles());
    const std::size_t ctrls =
        static_cast<std::size_t>(topo.numMemCtrls());
    waitTbl.assign(tiles * tiles, 0.0);
    memReqTbl.assign(tiles * ctrls, 0.0);
    memRespTbl.assign(ctrls * tiles, 0.0);

    // All-pairs route waits, built by extending each source's walks
    // one link at a time. Floating-point addition is not associative,
    // so instead of prefix-sum differences every entry continues the
    // exact left-to-right accumulation walkPathWait performs: the
    // X leg sweeps east/west accumulating incrementally, and each Y
    // leg continues from its column's X-leg total. Every table entry
    // is therefore the same addition sequence as the walk —
    // bit-identical, not just close.
    const int w = topo.width();
    const int h = topo.height();
    for (std::size_t s = 0; s < tiles; s++) {
        double *row = &waitTbl[s * tiles];
        const MeshCoord a = topo.coordOf(static_cast<TileId>(s));
        for (int step = 0; step < 2; step++) {
            // step 0: columns east of (and at) a.x; step 1: west.
            const int dx = step == 0 ? 1 : -1;
            const int x_dir = step == 0 ? East : West;
            double x_wait = 0.0;
            for (int x = a.x; x >= 0 && x < w; x += dx) {
                if (x != a.x) {
                    // One more X hop: the link leaving the previous
                    // column's tile in this row.
                    x_wait += linkWait[meshLink(
                        topo.tileAt(x - dx, a.y), x_dir)];
                }
                row[topo.tileAt(x, a.y)] = x_wait;
                // Y legs: continue the accumulation down and up this
                // column, in the walk's south/north order.
                double y_wait = x_wait;
                for (int y = a.y + 1; y < h; y++) {
                    y_wait += linkWait[meshLink(
                        topo.tileAt(x, y - 1), South)];
                    row[topo.tileAt(x, y)] = y_wait;
                }
                y_wait = x_wait;
                for (int y = a.y - 1; y >= 0; y--) {
                    y_wait += linkWait[meshLink(
                        topo.tileAt(x, y + 1), North)];
                    row[topo.tileAt(x, y)] = y_wait;
                }
            }
        }
    }

    // Memory legs: the route wait plus (or after) the attach link, in
    // the same order the unflattened memPathWait/memResponsePathWait
    // added them.
    for (std::size_t c = 0; c < ctrls; c++) {
        const TileId ctrl_tile =
            topo.memCtrlTile(static_cast<int>(c));
        const double attach =
            linkWait[attachLink(static_cast<int>(c))];
        for (std::size_t t = 0; t < tiles; t++) {
            memReqTbl[t * ctrls + c] =
                waitTbl[t * tiles + ctrl_tile] + attach;
            memRespTbl[c * tiles + t] =
                attach + waitTbl[static_cast<std::size_t>(ctrl_tile) *
                                     tiles +
                                 t];
        }
    }

    // Far legs share the mesh route and substitute the far attach
    // link's wait for the near one.
    if (farLinks) {
        farReqTbl.assign(tiles * ctrls, 0.0);
        farRespTbl.assign(ctrls * tiles, 0.0);
        for (std::size_t c = 0; c < ctrls; c++) {
            const TileId ctrl_tile =
                topo.memCtrlTile(static_cast<int>(c));
            const double attach =
                linkWait[farAttachLink(static_cast<int>(c))];
            for (std::size_t t = 0; t < tiles; t++) {
                farReqTbl[t * ctrls + c] =
                    waitTbl[t * tiles + ctrl_tile] + attach;
                farRespTbl[c * tiles + t] = attach +
                    waitTbl[static_cast<std::size_t>(ctrl_tile) *
                                tiles +
                            t];
            }
        }
    }
}

double
ContentionNoc::latency(TileId src, TileId dst,
                       std::uint32_t payload_flits) const
{
    return static_cast<double>(
               topo.latency(topo.hops(src, dst), payload_flits)) +
        pathWait(src, dst);
}

double
ContentionNoc::memPathWait(TileId tile, int ctrl) const
{
    return memReqTbl[static_cast<std::size_t>(tile) *
                         static_cast<std::size_t>(
                             topo.numMemCtrls()) +
                     static_cast<std::size_t>(ctrl)];
}

double
ContentionNoc::memResponsePathWait(int ctrl, TileId tile) const
{
    return memRespTbl[static_cast<std::size_t>(ctrl) *
                          static_cast<std::size_t>(topo.numTiles()) +
                      tile];
}

double
ContentionNoc::farMemPathWait(TileId tile, int ctrl) const
{
    if (!farLinks)
        return memPathWait(tile, ctrl);
    return farReqTbl[static_cast<std::size_t>(tile) *
                         static_cast<std::size_t>(
                             topo.numMemCtrls()) +
                     static_cast<std::size_t>(ctrl)];
}

double
ContentionNoc::farMemResponsePathWait(int ctrl, TileId tile) const
{
    if (!farLinks)
        return memResponsePathWait(ctrl, tile);
    return farRespTbl[static_cast<std::size_t>(ctrl) *
                          static_cast<std::size_t>(topo.numTiles()) +
                      tile];
}

double
ContentionNoc::memLatency(TileId tile, int ctrl,
                          std::uint32_t payload_flits) const
{
    return static_cast<double>(
               topo.latency(topo.hopsToCtrl(tile, ctrl),
                            payload_flits)) +
        memPathWait(tile, ctrl);
}

double
ContentionNoc::memResponseLatency(int ctrl, TileId tile,
                                  std::uint32_t payload_flits) const
{
    // Response direction: attach link, then the X-Y route from the
    // controller's tile — the links routeMemResponse charges.
    return static_cast<double>(
               topo.latency(topo.hopsToCtrl(tile, ctrl),
                            payload_flits)) +
        memResponsePathWait(ctrl, tile);
}

double
ContentionNoc::farMemLatency(TileId tile, int ctrl,
                             std::uint32_t payload_flits) const
{
    return static_cast<double>(
               topo.latency(topo.hopsToCtrl(tile, ctrl),
                            payload_flits)) +
        farMemPathWait(tile, ctrl);
}

double
ContentionNoc::farMemResponseLatency(int ctrl, TileId tile,
                                     std::uint32_t payload_flits)
    const
{
    return static_cast<double>(
               topo.latency(topo.hopsToCtrl(tile, ctrl),
                            payload_flits)) +
        farMemResponsePathWait(ctrl, tile);
}

void
ContentionNoc::routeMsg(TileId src, TileId dst, std::uint32_t flits)
{
    walkRoute(src, dst,
              [&](std::size_t link) { linkFlits[link] += flits; });
}

void
ContentionNoc::routeMemMsg(TileId tile, int ctrl,
                           std::uint32_t flits)
{
    routeMsg(tile, topo.memCtrlTile(ctrl), flits);
    linkFlits[attachLink(ctrl)] += flits;
}

void
ContentionNoc::routeMemResponse(int ctrl, TileId tile,
                                std::uint32_t flits)
{
    // The attach link models the controller port and carries both
    // directions; the mesh legs of the response use the
    // reverse-direction links of the request route.
    linkFlits[attachLink(ctrl)] += flits;
    routeMsg(topo.memCtrlTile(ctrl), tile, flits);
}

void
ContentionNoc::routeFarMemMsg(TileId tile, int ctrl,
                              std::uint32_t flits)
{
    if (!farLinks) {
        routeMemMsg(tile, ctrl, flits);
        return;
    }
    routeMsg(tile, topo.memCtrlTile(ctrl), flits);
    linkFlits[farAttachLink(ctrl)] += flits;
}

void
ContentionNoc::routeFarMemResponse(int ctrl, TileId tile,
                                   std::uint32_t flits)
{
    if (!farLinks) {
        routeMemResponse(ctrl, tile, flits);
        return;
    }
    linkFlits[farAttachLink(ctrl)] += flits;
    routeMsg(topo.memCtrlTile(ctrl), tile, flits);
}

void
ContentionNoc::epochUpdate(double elapsed_cycles)
{
    const double cycles = std::max(elapsed_cycles, 1.0);
    const double service =
        static_cast<double>(topo.config().linkCycles);
    std::uint64_t epoch_flits = 0;
    std::uint64_t saturated = 0;
    for (std::size_t l = 0; l < linkFlits.size(); l++) {
        epoch_flits += linkFlits[l] - prevFlits[l];
        const double delta = static_cast<double>(
            linkFlits[l] - prevFlits[l]);
        prevFlits[l] = linkFlits[l];
        // Link bandwidth is one flit per linkCycles: utilization is
        // offered flits/cycle times the per-flit service time, scaled
        // by the injection-rate knob and clamped below saturation.
        const double rho = std::min(
            maxUtil, injScale * (delta / cycles) * service);
        // M/D/1 mean waiting time with deterministic service.
        linkWait[l] = service * rho / (2.0 * (1.0 - rho));
        linkUtil[l] = rho;
        if (rho >= maxUtil)
            saturated++;
    }
    StatRegistry::add(kNocLinkFlits, epoch_flits);
    StatRegistry::add(kNocSaturatedLinks, saturated);
    // Waits changed: reflatten the route-wait tables once, so every
    // access-path query until the next epoch stays a table read.
    rebuildWaitTables();
}

void
ContentionNoc::clearTraffic()
{
    NocModel::clearTraffic();
    // Reset the counters but keep the wait/utilization tables: at the
    // warmup boundary the contention estimate from the last warmup
    // epoch is the best predictor for the first measured epoch.
    std::fill(linkFlits.begin(), linkFlits.end(), 0);
    std::fill(prevFlits.begin(), prevFlits.end(), 0);
}

std::vector<NocLinkStat>
ContentionNoc::linkStats() const
{
    std::vector<NocLinkStat> out;
    out.reserve(linkFlits.size());
    const int w = topo.width();
    const int h = topo.height();
    for (TileId t = 0; t < topo.numTiles(); t++) {
        const MeshCoord c = topo.coordOf(t);
        const int nx[4] = {c.x + 1, c.x - 1, c.x, c.x};
        const int ny[4] = {c.y, c.y, c.y + 1, c.y - 1};
        for (int dir = 0; dir < 4; dir++) {
            if (nx[dir] < 0 || nx[dir] >= w || ny[dir] < 0 ||
                ny[dir] >= h) {
                continue; // Off-mesh: link doesn't exist.
            }
            NocLinkStat stat;
            stat.src = t;
            stat.dst = topo.tileAt(nx[dir], ny[dir]);
            const std::size_t link = meshLink(t, dir);
            stat.flits = linkFlits[link];
            stat.util = linkUtil[link];
            stat.waitCycles = linkWait[link];
            out.push_back(stat);
        }
    }
    for (int ctrl = 0; ctrl < topo.numMemCtrls(); ctrl++) {
        NocLinkStat stat;
        stat.src = topo.memCtrlTile(ctrl);
        stat.dst = invalidTile;
        stat.memCtrl = ctrl;
        const std::size_t link = attachLink(ctrl);
        stat.flits = linkFlits[link];
        stat.util = linkUtil[link];
        stat.waitCycles = linkWait[link];
        out.push_back(stat);
    }
    if (farLinks) {
        for (int ctrl = 0; ctrl < topo.numMemCtrls(); ctrl++) {
            NocLinkStat stat;
            stat.src = topo.memCtrlTile(ctrl);
            stat.dst = invalidTile;
            stat.memCtrl = ctrl;
            stat.far = true;
            const std::size_t link = farAttachLink(ctrl);
            stat.flits = linkFlits[link];
            stat.util = linkUtil[link];
            stat.waitCycles = linkWait[link];
            out.push_back(stat);
        }
    }
    return out;
}

} // namespace cdcs
