/**
 * @file
 * Synthetic address-stream generators. Each application's post-L2
 * (LLC) access stream is a weighted mixture of simple patterns whose
 * LRU miss curves are well understood:
 *
 *  - Scan: cyclic sequential sweep. Under LRU it misses on every
 *    access until the allocation covers the footprint, then hits on
 *    every access: a capacity cliff (omnet, xalancbmk, streaming apps
 *    with footprints beyond the LLC).
 *  - Uniform: uniform random over the footprint; hit ratio grows
 *    linearly with allocated capacity.
 *  - Zipf: skewed reuse; concave, diminishing-returns miss curves
 *    (most cache-friendly SPEC apps).
 *
 * Mixtures of these reproduce the miss-curve shapes in Fig. 2 and the
 * UCP/Jigsaw workload taxonomies (thrashing / fitting / friendly /
 * streaming) through the real simulated cache, which is what the
 * monitors observe and the runtimes optimize.
 */

#ifndef CDCS_WORKLOAD_GENERATOR_HH
#define CDCS_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace cdcs
{

/** Base address pattern of one stream component. */
enum class PatternKind : std::uint8_t
{
    Scan,       ///< Cyclic sequential sweep of the footprint.
    Uniform,    ///< Uniform random within the footprint.
    Zipf        ///< Zipf(alpha)-distributed reuse over the footprint.
};

/** One component of a stream mixture. */
struct StreamComponent
{
    double weight;                  ///< Relative access share.
    PatternKind kind;
    std::uint64_t footprintLines;   ///< Component footprint, in lines.
    double alpha = 0.0;             ///< Zipf skew (Zipf only).
};

/** A stream specification: a mixture of components. */
using StreamSpec = std::vector<StreamComponent>;

/** Total footprint of a spec, in lines. */
std::uint64_t streamFootprint(const StreamSpec &spec);

/**
 * Stateful generator for a StreamSpec. Components occupy disjoint
 * sub-ranges of [0, footprint); next() returns a line offset within
 * that range. The caller maps offsets into a VC's address region.
 */
class StreamGen
{
  public:
    /**
     * @param spec Mixture specification (weights need not sum to 1).
     * @param seed Seed for this stream's private RNG.
     */
    StreamGen(const StreamSpec &spec, std::uint64_t seed);

    /** Next line offset in [0, footprint()). */
    std::uint64_t next();

    /** Footprint in lines across all components. */
    std::uint64_t footprint() const { return totalFootprint; }

  private:
    struct Component
    {
        double cumWeight;       ///< Cumulative, normalized weight.
        PatternKind kind;
        std::uint64_t base;     ///< First line of the sub-range.
        std::uint64_t lines;    ///< Sub-range length.
        std::uint64_t cursor;   ///< Scan position.
        std::unique_ptr<ZipfSampler> zipf;
    };

    Rng rng;
    std::vector<Component> components;
    std::uint64_t totalFootprint;
};

} // namespace cdcs

#endif // CDCS_WORKLOAD_GENERATOR_HH
