/**
 * @file
 * Workload mixes: collections of single- and multi-threaded processes
 * wired to virtual caches the way CDCS's OS runtime defines them
 * (Sec. III): one thread-private VC per thread, one per-process VC,
 * and one global VC shared by everything.
 */

#ifndef CDCS_WORKLOAD_MIX_HH
#define CDCS_WORKLOAD_MIX_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/app_profile.hh"
#include "workload/traffic.hh"

namespace cdcs
{

/** The outcome of drawing one access from a thread's stream. */
struct AccessSample
{
    VcId vc;
    LineAddr line;
};

/** Per-thread runtime state. */
struct ThreadCtx
{
    ThreadId id;
    ProcId proc;
    VcId privateVc;
    VcId processVc;
    VcId globalVc;
    double instrPerAccess;          ///< 1000 / apki.
    double cpiExe;
    double mlp;
    double sharedFraction;
    std::unique_ptr<StreamGen> privateGen;
};

/** Per-process runtime state. */
struct ProcessCtx
{
    ProcId id;
    const AppProfile *profile;
    VcId processVc;
    std::vector<ThreadId> threads;
    /// Shared stream; one instance per process, drawn from by all of
    /// its threads (this is what creates actual line sharing).
    std::unique_ptr<StreamGen> sharedGen;
};

/**
 * A workload mix: processes, threads, and the VC address-space layout.
 *
 * VC ids: [0, T) thread-private, [T, T+P) per-process, T+P global.
 * Line addresses embed the VC id in the high bits, so distinct VCs
 * occupy disjoint address regions.
 */
class WorkloadMix
{
  public:
    /** Build a mix from profiles (one process per profile entry). */
    WorkloadMix(const std::vector<const AppProfile *> &apps,
                std::uint64_t seed);

    /**
     * Random mix of `count` single-threaded SPEC CPU2006-like apps
     * (sampled with replacement, as in the paper's 1-64 app mixes).
     */
    static WorkloadMix randomCpuMix(int count, std::uint64_t seed);

    /** Random mix of `count` 8-thread SPEC OMP2012-like apps. */
    static WorkloadMix randomOmpMix(int count, std::uint64_t seed);

    /** Mix from a list of profile names (repeats allowed). */
    static WorkloadMix fromNames(const std::vector<std::string> &names,
                                 std::uint64_t seed);

    int numThreads() const { return static_cast<int>(threads.size()); }
    int numProcesses() const { return static_cast<int>(procs.size()); }
    int numVcs() const { return numThreads() + numProcesses() + 1; }
    VcId globalVc() const { return static_cast<VcId>(numVcs() - 1); }

    ThreadCtx &thread(ThreadId t) { return threads[t]; }
    const ThreadCtx &thread(ThreadId t) const { return threads[t]; }
    ProcessCtx &process(ProcId p) { return procs[p]; }
    const ProcessCtx &process(ProcId p) const { return procs[p]; }

    /** Draw the next access of thread t. */
    AccessSample nextAccess(ThreadId t);

    /**
     * Attach the dynamic-traffic layer (Zipf hot-object overlay +
     * churn schedule). Without an attached schedule the mix behaves
     * — draw for draw — like the static code path.
     */
    void attachTraffic(const TrafficConfig &config);

    /** The attached traffic schedule, or nullptr (static traffic). */
    TrafficSchedule *traffic() { return trafficSched.get(); }
    const TrafficSchedule *traffic() const
    {
        return trafficSched.get();
    }

    /**
     * Tenant-churn active flags. All threads start active; the
     * EpochController toggles them at churn boundaries. Inactive
     * threads issue no accesses and their clocks freeze.
     */
    bool
    threadActive(ThreadId t) const
    {
        return activeFlags[static_cast<std::size_t>(t)] != 0;
    }

    void
    setThreadActive(ThreadId t, bool active)
    {
        activeFlags[static_cast<std::size_t>(t)] = active ? 1 : 0;
    }

    int
    numActiveThreads() const
    {
        int n = 0;
        for (char f : activeFlags)
            n += f != 0 ? 1 : 0;
        return n;
    }

    /** Map a VC-relative line offset into the global address space. */
    static LineAddr
    lineIn(VcId vc, std::uint64_t offset)
    {
        return (static_cast<LineAddr>(vc) << 40) | offset;
    }

    /** Extract the VC id from a global line address. */
    static VcId
    vcOfLine(LineAddr line)
    {
        return static_cast<VcId>(line >> 40);
    }

  private:
    std::vector<ProcessCtx> procs;
    std::vector<ThreadCtx> threads;
    Rng rng;
    /// Small region all processes occasionally touch (global VC).
    static constexpr std::uint64_t globalLines = 4096;
    static constexpr double globalFraction = 0.003;
    std::unique_ptr<StreamGen> globalGen;
    /// Dynamic-traffic layer; null on the static code path.
    std::unique_ptr<TrafficSchedule> trafficSched;
    /// Per-thread churn flags (1 = active); all 1 without churn.
    std::vector<char> activeFlags;
};

} // namespace cdcs

#endif // CDCS_WORKLOAD_MIX_HH
