/**
 * @file
 * Dynamic multi-tenant traffic: the TrafficSchedule layers two
 * production-shaped behaviors over a static WorkloadMix.
 *
 * (1) A Zipfian hot-object overlay: a configurable share of every
 * thread's accesses is redirected to a skewed popularity distribution
 * over a shared footprint (the global VC), modeling millions of users
 * hammering few hot objects. The rank-to-line mapping of the hottest
 * ranks goes through an explicit, seeded hot-set table that *drifts*:
 * every few epochs a fraction of the entries is re-seated at fresh
 * lines, so the hot working set moves under the placement loop the
 * way trending keys move in a serving fleet (DistCache's skew model,
 * PAPERS.md).
 *
 * (2) Epoch-boundary thread churn: a declarative schedule
 * ("5:-8,8:+8" — 8 threads depart entering epoch 5, 8 rejoin entering
 * epoch 8) drives tenant arrivals and departures. Departing threads
 * are chosen by a seeded draw; arrivals reactivate the most recently
 * departed threads (LIFO), so a depart/arrive pair models the same
 * tenants leaving and coming back.
 *
 * Everything is seeded and deterministic: two runs with the same
 * (SystemConfig, MixSpec) see identical drift and identical churn,
 * regardless of worker count or scheme, so schemes remain comparable
 * under dynamic traffic. With both features off (skewAlpha == 0 and
 * an empty churn string) no TrafficSchedule is attached at all and
 * the simulator's behavior — including every RNG draw — is
 * byte-identical to the static-traffic code path.
 */

#ifndef CDCS_WORKLOAD_TRAFFIC_HH
#define CDCS_WORKLOAD_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace cdcs
{

/** The dynamic-traffic knobs (mirrored from SystemConfig). */
struct TrafficConfig
{
    /** Zipf skew of the hot-object overlay; 0 disables it. */
    double skewAlpha = 0.0;
    /** Share of every thread's accesses redirected to the overlay. */
    double skewFraction = 0.2;
    /** Overlay footprint (lines) the Zipf ranks map over. */
    std::uint64_t skewLines = 65536;
    /** Ranks routed through the drifting hot-set table. */
    std::uint64_t skewHotLines = 1024;
    /**
     * Seat the hot-set table page-aligned: each run of linesPerPage
     * consecutive ranks fills one (hashed) page instead of scattering
     * line by line, so page-level popularity mirrors the Zipf line
     * skew. Off by default (line-scattered seats, the historical
     * layout); the far-memory tiering study turns it on so page
     * migration has a hot set to chase.
     */
    bool skewPageHot = false;
    /** Re-seat part of the hot set every this many epochs; 0 never. */
    int skewDriftEpochs = 0;
    /** Fraction of the hot-set table re-seated per drift. */
    double skewDriftFraction = 0.25;
    /** Churn schedule ("epoch:+k" / "epoch:-k", comma-separated). */
    std::string churn;
    /** Seed every schedule stream derives from (cfg.seed). */
    std::uint64_t seed = 42;
};

/** One churn event: `delta` threads join (+) or depart (-). */
struct ChurnEvent
{
    int epoch = 0;
    int delta = 0;
};

/** Thread ids to deactivate/reactivate at one epoch boundary. */
struct ChurnActions
{
    std::vector<int> depart;
    std::vector<int> arrive;
};

/** The drifting-hot-set + churn schedule of one run. */
class TrafficSchedule
{
  public:
    explicit TrafficSchedule(const TrafficConfig &config);

    /**
     * Parse a churn schedule string: comma-separated "epoch:+k" /
     * "epoch:-k" events with epoch >= 1 and k >= 1 (epoch 0 is the
     * initial configuration, not churn). An empty string is a valid
     * empty schedule. Events are kept in epoch order (stable for
     * equal epochs). Returns false with a message in `err` on any
     * malformed event.
     */
    static bool parseChurn(const std::string &spec,
                           std::vector<ChurnEvent> *out,
                           std::string *err = nullptr);

    const TrafficConfig &config() const { return cfg; }

    bool skewEnabled() const { return cfg.skewAlpha > 0.0; }
    double hotFraction() const { return cfg.skewFraction; }

    /**
     * Draw one overlay line offset in [0, skewLines): a Zipf rank
     * from the caller's rng, mapped through the hot-set table (hot
     * ranks) or a static salted hash (the tail).
     */
    std::uint64_t nextHotLine(Rng &rng);

    /**
     * Epoch boundary hook: when a drift is due, re-seat
     * skewDriftFraction of the hot-set table at fresh lines (drawn
     * from the schedule's private stream). Returns true when a drift
     * happened.
     */
    bool epochBoundary(int epoch);

    /** Hot-set entries re-seated so far (drift progress). */
    std::uint64_t driftedEntries() const { return drifted; }

    /** The parsed churn schedule, epoch-ordered. */
    const std::vector<ChurnEvent> &churnEvents() const
    {
        return events;
    }

    /**
     * Resolve the churn events scheduled at `epoch` against the
     * currently active thread ids (ascending): departures are drawn
     * from the schedule's private stream among the active set,
     * arrivals reactivate the most recently departed threads first.
     * Events are consumed in schedule order; a departure event larger
     * than the active set empties it, an arrival event larger than
     * the departed stack drains it.
     */
    ChurnActions actionsAt(int epoch,
                           const std::vector<int> &active_ids);

  private:
    TrafficConfig cfg;
    /** rank -> line for the hottest ranks; drifts over epochs. */
    std::vector<std::uint64_t> hotLine;
    ZipfSampler zipf;
    /** Private stream for drift re-seats and departure draws. */
    Rng scheduleRng;
    std::vector<ChurnEvent> events;
    /** Threads departed and not yet returned (LIFO arrival order). */
    std::vector<int> departedStack;
    std::size_t driftCursor = 0;
    std::uint64_t drifted = 0;
};

} // namespace cdcs

#endif // CDCS_WORKLOAD_TRAFFIC_HH
