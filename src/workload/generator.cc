#include "workload/generator.hh"

#include "common/log.hh"

namespace cdcs
{

std::uint64_t
streamFootprint(const StreamSpec &spec)
{
    std::uint64_t total = 0;
    for (const auto &c : spec)
        total += c.footprintLines;
    return total;
}

StreamGen::StreamGen(const StreamSpec &spec, std::uint64_t seed)
    : rng(seed), totalFootprint(0)
{
    cdcs_assert(!spec.empty(), "stream spec must have components");
    double weight_sum = 0.0;
    for (const auto &c : spec) {
        cdcs_assert(c.weight > 0.0 && c.footprintLines > 0,
                    "stream components need positive weight/footprint");
        weight_sum += c.weight;
    }
    double cum = 0.0;
    for (const auto &c : spec) {
        cum += c.weight / weight_sum;
        Component comp;
        comp.cumWeight = cum;
        comp.kind = c.kind;
        comp.base = totalFootprint;
        comp.lines = c.footprintLines;
        comp.cursor = 0;
        if (c.kind == PatternKind::Zipf)
            comp.zipf = std::make_unique<ZipfSampler>(c.footprintLines,
                                                      c.alpha);
        components.push_back(std::move(comp));
        totalFootprint += c.footprintLines;
    }
    components.back().cumWeight = 1.0; // Guard against rounding.
}

std::uint64_t
StreamGen::next()
{
    const double r = rng.uniform();
    for (auto &comp : components) {
        if (r <= comp.cumWeight) {
            std::uint64_t offset;
            switch (comp.kind) {
              case PatternKind::Scan:
                offset = comp.cursor;
                comp.cursor = (comp.cursor + 1) % comp.lines;
                break;
              case PatternKind::Uniform:
                offset = rng.below(comp.lines);
                break;
              case PatternKind::Zipf:
                // Scatter the Zipf ranks across the range so that hot
                // lines are not physically clustered in one page.
                offset = mix64(comp.zipf->sample(rng)) % comp.lines;
                break;
              default:
                panic("unknown pattern kind");
            }
            return comp.base + offset;
        }
    }
    panic("mixture weights did not cover [0, 1]");
}

} // namespace cdcs
