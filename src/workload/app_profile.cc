#include "workload/app_profile.hh"

#include "common/log.hh"

namespace cdcs
{

namespace
{

/** Footprint helper: kilobytes to cache lines. */
constexpr std::uint64_t
kb(std::uint64_t kilobytes)
{
    return kilobytes * 1024 / lineBytes;
}

/** Footprint helper: megabytes to cache lines. */
constexpr std::uint64_t
mb(std::uint64_t megabytes)
{
    return kb(megabytes * 1024);
}

/**
 * Build a profile from the four scalar knobs plus the private stream;
 * the OMP-only fields (threads, sharedFraction, sharedStream) keep
 * their single-thread defaults and are assigned where needed.
 */
AppProfile
profile(const char *name, double apki, double cpi_exe, double mlp,
        StreamSpec stream)
{
    AppProfile app;
    app.name = name;
    app.apki = apki;
    app.cpiExe = cpi_exe;
    app.mlp = mlp;
    app.privateStream = std::move(stream);
    return app;
}

/**
 * The SPEC CPU2006 profile table. Intensities (apki: LLC accesses ==
 * L2 misses per kilo-instruction) and miss-curve shapes follow Fig. 2
 * and the published UCP/Jigsaw characterizations; see DESIGN.md.
 *
 * Taxonomy used below:
 *  - cliff apps (omnetpp, xalancbmk): scan-dominated, all-miss until
 *    the footprint fits, then near-all-hit;
 *  - streaming (milc, libquantum, lbm, leslie3d, GemsFDTD, bwaves):
 *    footprints far beyond the LLC, insensitive to allocation;
 *  - fitting (bzip2, cactusADM, calculix): small footprints that fit
 *    in about a bank;
 *  - friendly (gcc, mcf, zeusmp, astar, sphinx3): concave Zipf-style
 *    miss curves with diminishing returns.
 */
std::vector<AppProfile>
makeSpecCpu2006()
{
    std::vector<AppProfile> apps;

    apps.push_back(profile("bzip2", 9.0, 0.9, 2.5,
                           {{0.3, PatternKind::Uniform, kb(128)},
                            {0.7, PatternKind::Zipf, mb(1), 0.4}}));
    apps.push_back(profile("gcc", 7.0, 1.0, 2.0,
                           {{0.4, PatternKind::Zipf, kb(256), 0.8},
                            {0.6, PatternKind::Zipf, mb(2), 0.3}}));
    apps.push_back(profile("bwaves", 16.0, 0.8, 5.0,
                           {{0.9, PatternKind::Scan, mb(16)},
                            {0.1, PatternKind::Uniform, kb(256)}}));
    apps.push_back(profile("mcf", 55.0, 1.1, 2.2,
                           {{0.25, PatternKind::Zipf, kb(512), 0.7},
                            {0.75, PatternKind::Zipf, mb(12), 0.3}}));
    apps.push_back(profile("milc", 20.0, 0.9, 5.0,
                           {{0.97, PatternKind::Scan, mb(48)},
                            {0.03, PatternKind::Uniform, kb(64)}}));
    apps.push_back(profile("zeusmp", 9.0, 0.9, 3.0,
                           {{0.5, PatternKind::Uniform, mb(4)},
                            {0.5, PatternKind::Zipf, kb(512), 0.6}}));
    apps.push_back(profile("cactusADM", 7.0, 1.0, 3.0,
                           {{0.8, PatternKind::Uniform, kb(1536)},
                            {0.2, PatternKind::Uniform, kb(128)}}));
    apps.push_back(profile("leslie3d", 14.0, 0.85, 4.5,
                           {{0.92, PatternKind::Scan, mb(24)},
                            {0.08, PatternKind::Uniform, kb(256)}}));
    apps.push_back(profile("calculix", 6.0, 0.8, 2.5,
                           {{0.7, PatternKind::Zipf, kb(384), 0.6},
                            {0.3, PatternKind::Uniform, kb(64)}}));
    apps.push_back(profile("GemsFDTD", 17.0, 0.9, 4.5,
                           {{0.9, PatternKind::Scan, mb(20)},
                            {0.1, PatternKind::Uniform, kb(512)}}));
    apps.push_back(profile("libquantum", 24.0, 0.75, 6.0,
                           {{1.0, PatternKind::Scan, mb(32)}}));
    apps.push_back(profile("lbm", 19.0, 0.8, 5.5,
                           {{0.95, PatternKind::Scan, mb(28)},
                            {0.05, PatternKind::Uniform, kb(128)}}));
    apps.push_back(profile("astar", 10.0, 1.05, 1.8,
                           {{0.45, PatternKind::Zipf, kb(256), 0.8},
                            {0.55, PatternKind::Zipf, mb(2), 0.35}}));
    apps.push_back(profile("omnetpp", 95.0, 0.8, 4.0,
                           {{0.88, PatternKind::Scan, kb(2560)},
                            {0.12, PatternKind::Uniform, kb(96)}}));
    apps.push_back(profile("sphinx3", 13.0, 0.95, 2.8,
                           {{0.35, PatternKind::Zipf, kb(512), 0.7},
                            {0.65, PatternKind::Zipf, mb(8), 0.45}}));
    apps.push_back(profile("xalancbmk", 23.0, 1.0, 2.2,
                           {{0.8, PatternKind::Scan, mb(4)},
                            {0.2, PatternKind::Zipf, kb(256), 0.7}}));
    return apps;
}

/**
 * SPEC OMP2012-like 8-thread profiles. sharedFraction steers accesses
 * to the per-process VC: shared-heavy apps (ilbdc, md, nab, fma3d)
 * want their threads clustered around the shared data, private-heavy
 * ones (mgrid, swim) want them spread (Sec. VI-B, Fig. 16b).
 */
std::vector<AppProfile>
makeSpecOmp2012()
{
    std::vector<AppProfile> apps;

    AppProfile ilbdc = profile("ilbdc", 16.0, 0.9, 2.5,
                               {{1.0, PatternKind::Uniform, kb(64)}});
    ilbdc.threads = 8;
    ilbdc.sharedFraction = 0.85;
    ilbdc.sharedStream = {{1.0, PatternKind::Uniform, kb(512)}};
    apps.push_back(ilbdc);

    AppProfile md = profile("md", 5.0, 0.9, 2.0,
                            {{1.0, PatternKind::Uniform, kb(32)}});
    md.threads = 8;
    md.sharedFraction = 0.9;
    md.sharedStream = {{0.6, PatternKind::Zipf, mb(1), 0.6},
                       {0.4, PatternKind::Uniform, kb(128)}};
    apps.push_back(md);

    AppProfile nab = profile("nab", 8.0, 1.0, 2.5,
                             {{1.0, PatternKind::Uniform, kb(64)}});
    nab.threads = 8;
    nab.sharedFraction = 0.8;
    nab.sharedStream = {{1.0, PatternKind::Zipf, mb(2), 0.5}};
    apps.push_back(nab);

    AppProfile mgrid = profile("mgrid", 22.0, 0.85, 3.5,
                               {{0.85, PatternKind::Scan, kb(1536)},
                                {0.15, PatternKind::Uniform, kb(128)}});
    mgrid.threads = 8;
    mgrid.sharedFraction = 0.08;
    mgrid.sharedStream = {{1.0, PatternKind::Uniform, kb(256)}};
    apps.push_back(mgrid);

    AppProfile applu = profile("applu331", 12.0, 0.9, 3.0,
                               {{0.7, PatternKind::Uniform, mb(1)},
                                {0.3, PatternKind::Zipf, kb(128), 0.8}});
    applu.threads = 8;
    applu.sharedFraction = 0.3;
    applu.sharedStream = {{1.0, PatternKind::Uniform, mb(1)}};
    apps.push_back(applu);

    AppProfile swim = profile("swim", 24.0, 0.8, 5.0,
                              {{1.0, PatternKind::Scan, mb(6)}});
    swim.threads = 8;
    swim.sharedFraction = 0.15;
    swim.sharedStream = {{1.0, PatternKind::Uniform, kb(512)}};
    apps.push_back(swim);

    AppProfile fma3d = profile("fma3d", 10.0, 1.0, 2.5,
                               {{1.0, PatternKind::Uniform, kb(256)}});
    fma3d.threads = 8;
    fma3d.sharedFraction = 0.6;
    fma3d.sharedStream = {{1.0, PatternKind::Zipf, mb(4), 0.4}};
    apps.push_back(fma3d);

    AppProfile bt = profile("bt331", 14.0, 0.9, 3.0,
                            {{0.8, PatternKind::Zipf, mb(2), 0.35},
                             {0.2, PatternKind::Uniform, kb(128)}});
    bt.threads = 8;
    bt.sharedFraction = 0.35;
    bt.sharedStream = {{1.0, PatternKind::Uniform, mb(1)}};
    apps.push_back(bt);

    return apps;
}

} // anonymous namespace

const std::vector<AppProfile> &
specCpu2006()
{
    static const std::vector<AppProfile> apps = makeSpecCpu2006();
    return apps;
}

const std::vector<AppProfile> &
specOmp2012()
{
    static const std::vector<AppProfile> apps = makeSpecOmp2012();
    return apps;
}

const AppProfile &
profileByName(const std::string &name)
{
    for (const auto &app : specCpu2006()) {
        if (app.name == name)
            return app;
    }
    for (const auto &app : specOmp2012()) {
        if (app.name == name)
            return app;
    }
    fatal("unknown application profile '%s'", name.c_str());
}

} // namespace cdcs
