#include "workload/mix.hh"

#include "common/log.hh"
#include "workload/traffic.hh"

namespace cdcs
{

WorkloadMix::WorkloadMix(const std::vector<const AppProfile *> &apps,
                         std::uint64_t seed)
    : rng(mix64(seed ^ 0x311C5))
{
    cdcs_assert(!apps.empty(), "mix needs at least one app");

    int total_threads = 0;
    for (const AppProfile *app : apps)
        total_threads += app->threads;

    const VcId first_proc_vc = static_cast<VcId>(total_threads);
    const VcId global_vc =
        static_cast<VcId>(total_threads + apps.size());

    ThreadId next_thread = 0;
    std::uint64_t salt = seed;
    for (std::size_t p = 0; p < apps.size(); p++) {
        const AppProfile *app = apps[p];
        ProcessCtx proc;
        proc.id = static_cast<ProcId>(p);
        proc.profile = app;
        proc.processVc = static_cast<VcId>(first_proc_vc + p);
        if (!app->sharedStream.empty()) {
            proc.sharedGen = std::make_unique<StreamGen>(
                app->sharedStream, mix64(salt ^ (0xABCD + p)));
        }
        for (int i = 0; i < app->threads; i++) {
            ThreadCtx thr;
            thr.id = next_thread;
            thr.proc = proc.id;
            thr.privateVc = next_thread;
            thr.processVc = proc.processVc;
            thr.globalVc = global_vc;
            cdcs_assert(app->apki > 0.0, "profile needs positive apki");
            thr.instrPerAccess = 1000.0 / app->apki;
            thr.cpiExe = app->cpiExe;
            thr.mlp = app->mlp;
            thr.sharedFraction =
                app->sharedStream.empty() ? 0.0 : app->sharedFraction;
            thr.privateGen = std::make_unique<StreamGen>(
                app->privateStream,
                mix64(salt ^ (0x7EAD + next_thread * 0x9E37)));
            proc.threads.push_back(next_thread);
            threads.push_back(std::move(thr));
            next_thread++;
        }
        procs.push_back(std::move(proc));
    }

    globalGen = std::make_unique<StreamGen>(
        StreamSpec{{1.0, PatternKind::Uniform, globalLines}},
        mix64(seed ^ 0x610BA1));
    activeFlags.assign(threads.size(), 1);
}

void
WorkloadMix::attachTraffic(const TrafficConfig &config)
{
    trafficSched = std::make_unique<TrafficSchedule>(config);
}

WorkloadMix
WorkloadMix::randomCpuMix(int count, std::uint64_t seed)
{
    Rng pick(mix64(seed ^ 0xC9A));
    const auto &lib = specCpu2006();
    std::vector<const AppProfile *> apps;
    for (int i = 0; i < count; i++)
        apps.push_back(&lib[pick.below(lib.size())]);
    return WorkloadMix(apps, seed);
}

WorkloadMix
WorkloadMix::randomOmpMix(int count, std::uint64_t seed)
{
    Rng pick(mix64(seed ^ 0x0E2));
    const auto &lib = specOmp2012();
    std::vector<const AppProfile *> apps;
    for (int i = 0; i < count; i++)
        apps.push_back(&lib[pick.below(lib.size())]);
    return WorkloadMix(apps, seed);
}

WorkloadMix
WorkloadMix::fromNames(const std::vector<std::string> &names,
                       std::uint64_t seed)
{
    std::vector<const AppProfile *> apps;
    for (const auto &name : names)
        apps.push_back(&profileByName(name));
    return WorkloadMix(apps, seed);
}

AccessSample
WorkloadMix::nextAccess(ThreadId t)
{
    ThreadCtx &thr = threads[t];
    const double r = rng.uniform();
    if (trafficSched != nullptr && trafficSched->skewEnabled() &&
        r < trafficSched->hotFraction()) {
        // Hot-object overlay: a skewed draw over a footprint every
        // tenant shares (the global VC), offset past the uniform
        // global region so the two stay disjoint.
        return {thr.globalVc,
                lineIn(thr.globalVc,
                       globalLines + trafficSched->nextHotLine(rng))};
    }
    if (r < globalFraction) {
        return {thr.globalVc, lineIn(thr.globalVc, globalGen->next())};
    }
    if (r < globalFraction + thr.sharedFraction) {
        ProcessCtx &proc = procs[thr.proc];
        return {thr.processVc,
                lineIn(thr.processVc, proc.sharedGen->next())};
    }
    return {thr.privateVc, lineIn(thr.privateVc, thr.privateGen->next())};
}

} // namespace cdcs
