/**
 * @file
 * Application profiles: synthetic stand-ins for the SPEC CPU2006 and
 * SPEC OMP2012 applications the paper evaluates (see DESIGN.md for the
 * substitution rationale). A profile fixes the LLC access intensity,
 * the core-timing parameters, and the address-stream mixture whose
 * simulated miss curve matches the published shape for that app.
 */

#ifndef CDCS_WORKLOAD_APP_PROFILE_HH
#define CDCS_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace cdcs
{

/** Static description of one application. */
struct AppProfile
{
    std::string name;

    /** LLC accesses (== L2 misses) per kilo-instruction. */
    double apki = 10.0;

    /** Core CPI with a perfect LLC (includes L1/L2 hit time). */
    double cpiExe = 1.0;

    /**
     * Effective memory-level parallelism: the average number of
     * outstanding LLC/memory accesses whose latency overlaps. Stall
     * cycles are charged as access latency divided by this factor.
     */
    double mlp = 3.0;

    /** Per-thread private-data stream. */
    StreamSpec privateStream;

    /** Threads per process (1 for SPEC CPU). */
    int threads = 1;

    /** Fraction of accesses that go to the per-process shared VC. */
    double sharedFraction = 0.0;

    /** Shared-data stream (multithreaded profiles only). */
    StreamSpec sharedStream;
};

/** The 16 memory-intensive SPEC CPU2006-like profiles (Sec. V). */
const std::vector<AppProfile> &specCpu2006();

/** The SPEC OMP2012-like 8-thread profiles (Sec. V). */
const std::vector<AppProfile> &specOmp2012();

/** Look up a profile by name in both libraries. Fatal if unknown. */
const AppProfile &profileByName(const std::string &name);

} // namespace cdcs

#endif // CDCS_WORKLOAD_APP_PROFILE_HH
