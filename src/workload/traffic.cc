#include "workload/traffic.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"

namespace cdcs
{

namespace
{

/** Salts of the schedule's derived streams (arbitrary, fixed). */
constexpr std::uint64_t hotSeatSalt = 0x4807'5E7;
constexpr std::uint64_t tailSalt = 0x7A11'D157;
constexpr std::uint64_t scheduleSalt = 0x5C8E'D01E;

} // namespace

TrafficSchedule::TrafficSchedule(const TrafficConfig &config)
    : cfg(config),
      zipf(std::max<std::uint64_t>(1, config.skewLines),
           config.skewAlpha),
      scheduleRng(mix64(config.seed ^ scheduleSalt))
{
    cdcs_assert(cfg.skewLines > 0, "overlay needs a footprint");
    std::string err;
    if (!parseChurn(cfg.churn, &events, &err))
        fatal("%s", err.c_str());
    // The hot-set table covers the hottest ranks (at most the whole
    // footprint); the initial seats are a pure function of the seed,
    // so every scheme sees the same hot lines.
    const std::uint64_t table =
        std::min(cfg.skewHotLines, cfg.skewLines);
    hotLine.resize(static_cast<std::size_t>(table));
    // Page-aligned seating hashes once per linesPerPage-rank block so
    // consecutive ranks fill whole pages; pages with no full block
    // left (a footprint under one page) degenerate to page 0. Drift
    // re-seats single ranks either way, so alignment erodes under
    // drift — the tiering study that relies on it doesn't drift.
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, cfg.skewLines >> pageLineShift);
    for (std::size_t r = 0; r < hotLine.size(); r++) {
        if (cfg.skewPageHot) {
            const std::uint64_t block = r >> pageLineShift;
            const std::uint64_t page =
                mix64(cfg.seed ^
                      (hotSeatSalt + block * 0x9E3779B97F4A7C15ull)) %
                pages;
            hotLine[r] = page * linesPerPage +
                (r & (linesPerPage - 1));
        } else {
            hotLine[r] =
                mix64(cfg.seed ^
                      (hotSeatSalt + r * 0x9E3779B97F4A7C15ull)) %
                cfg.skewLines;
        }
    }
}

bool
TrafficSchedule::parseChurn(const std::string &spec,
                            std::vector<ChurnEvent> *out,
                            std::string *err)
{
    std::vector<ChurnEvent> parsed;
    const auto fail = [&](const std::string &what) {
        if (err != nullptr)
            *err = "bad churn schedule '" + spec + "': " + what;
        return false;
    };
    if (!spec.empty() && spec.back() == ',')
        return fail("trailing comma");
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 2 > item.size()) {
            return fail("expected epoch:+k or epoch:-k, got '" +
                        item + "'");
        }
        const char sign = item[colon + 1];
        if (sign != '+' && sign != '-')
            return fail("count in '" + item + "' needs a +/- sign");
        char *end = nullptr;
        const long long epoch =
            std::strtoll(item.c_str(), &end, 10);
        if (end != item.c_str() + colon || epoch < 1)
            return fail("epoch in '" + item + "' must be >= 1");
        const char *count_str = item.c_str() + colon + 2;
        const long long count = std::strtoll(count_str, &end, 10);
        if (*count_str == '\0' || *end != '\0' || count < 1)
            return fail("count in '" + item + "' must be >= 1");
        parsed.push_back({static_cast<int>(epoch),
                          sign == '-' ? -static_cast<int>(count)
                                      : static_cast<int>(count)});
    }
    std::stable_sort(parsed.begin(), parsed.end(),
                     [](const ChurnEvent &a, const ChurnEvent &b) {
                         return a.epoch < b.epoch;
                     });
    if (out != nullptr)
        *out = std::move(parsed);
    return true;
}

std::uint64_t
TrafficSchedule::nextHotLine(Rng &rng)
{
    const std::uint64_t rank = zipf.sample(rng);
    if (rank < hotLine.size())
        return hotLine[static_cast<std::size_t>(rank)];
    // The cold tail keeps static seats: a salted hash scatters the
    // ranks over the footprint so the tail doesn't alias the paper's
    // sequential layouts.
    return mix64(rank * 0x9E3779B97F4A7C15ull ^ tailSalt) %
        cfg.skewLines;
}

bool
TrafficSchedule::epochBoundary(int epoch)
{
    if (cfg.skewDriftEpochs <= 0 || !skewEnabled() || epoch <= 0 ||
        epoch % cfg.skewDriftEpochs != 0 || hotLine.empty()) {
        return false;
    }
    // Re-seat a rotating window of the table: hot objects cool off
    // and fresh ones trend, but most of the hot set survives each
    // drift (partial turnover, not a wholesale reshuffle).
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.skewDriftFraction *
                                    static_cast<double>(
                                        hotLine.size())));
    for (std::size_t i = 0; i < n; i++) {
        hotLine[driftCursor] = scheduleRng.below(cfg.skewLines);
        driftCursor = (driftCursor + 1) % hotLine.size();
        drifted++;
    }
    return true;
}

ChurnActions
TrafficSchedule::actionsAt(int epoch,
                           const std::vector<int> &active_ids)
{
    ChurnActions out;
    std::vector<int> active = active_ids;
    for (const ChurnEvent &ev : events) {
        if (ev.epoch != epoch)
            continue;
        if (ev.delta < 0) {
            for (int k = 0; k < -ev.delta && !active.empty(); k++) {
                const auto idx = static_cast<std::size_t>(
                    scheduleRng.below(active.size()));
                const int t = active[idx];
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(idx));
                departedStack.push_back(t);
                out.depart.push_back(t);
            }
        } else {
            for (int k = 0; k < ev.delta && !departedStack.empty();
                 k++) {
                const int t = departedStack.back();
                departedStack.pop_back();
                active.push_back(t);
                out.arrive.push_back(t);
            }
        }
    }
    return out;
}

} // namespace cdcs
