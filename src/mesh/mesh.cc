#include "mesh/mesh.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cdcs
{

Mesh::Mesh(int width, int height, NocConfig cfg, int num_mem_ctrls)
    : meshWidth(width), meshHeight(height), nocConfig(cfg)
{
    cdcs_assert(width > 0 && height > 0, "mesh dimensions must be positive");

    // Attach memory controllers to edge tiles, spread over the four
    // sides like the target CMP (Fig. 3): positions at roughly 1/3 and
    // 2/3 along each edge.
    int ctrls = num_mem_ctrls > 0 ? num_mem_ctrls : (width >= 4 ? 8 : 4);
    ctrls = std::max(4, (ctrls / 4) * 4);
    const int per_side = ctrls / 4;
    auto edge_pos = [](int extent, int k, int of) {
        // k-th of `of` positions along an edge of `extent` tiles.
        return ((2 * k + 1) * extent) / (2 * of);
    };
    // On small meshes the computed corner positions of two edges can
    // coincide (e.g. 4x4 with 8 controllers puts the bottom and right
    // k=1 controllers both on tile (3,3)); stacking two controllers
    // on one tile silently halves the spread the interleave hash
    // assumes. Slide a colliding controller along its own edge to the
    // nearest free tile (preferring the higher position first, so
    // collision-free layouts — including the default 8x8 — keep their
    // exact historical tiles).
    auto take_edge_tile = [this](int px, int py, bool vary_x) {
        auto taken = [this](TileId t) {
            return std::find(memCtrlTiles.begin(), memCtrlTiles.end(),
                             t) != memCtrlTiles.end();
        };
        const int extent = vary_x ? meshWidth : meshHeight;
        const int pos = vary_x ? px : py;
        for (int d = 0; d < extent; d++) {
            for (const int sign : {1, -1}) {
                const int cand = pos + sign * d;
                if (cand < 0 || cand >= extent)
                    continue;
                const TileId t = vary_x ? tileAt(cand, py)
                                        : tileAt(px, cand);
                if (!taken(t)) {
                    memCtrlTiles.push_back(t);
                    return;
                }
                if (d == 0)
                    break; // +0 and -0 are the same candidate.
            }
        }
        // This edge is full (tiny mesh): take the first free
        // perimeter tile in row-major order, so the pick stays
        // deterministic.
        for (int y = 0; y < meshHeight; y++) {
            for (int x = 0; x < meshWidth; x++) {
                if (x != 0 && x != meshWidth - 1 && y != 0 &&
                    y != meshHeight - 1)
                    continue; // Interior tile.
                const TileId t = tileAt(x, y);
                if (!taken(t)) {
                    memCtrlTiles.push_back(t);
                    return;
                }
            }
        }
        // More controllers than perimeter tiles: stack on the
        // requested tile like the pre-dedup layout did.
        memCtrlTiles.push_back(vary_x ? tileAt(pos, py)
                                      : tileAt(px, pos));
    };
    for (int k = 0; k < per_side; k++) {
        const int px = edge_pos(width, k, per_side);
        const int py = edge_pos(height, k, per_side);
        take_edge_tile(px, 0, /*vary_x=*/true);           // top
        take_edge_tile(px, height - 1, /*vary_x=*/true);  // bottom
        take_edge_tile(0, py, /*vary_x=*/false);          // left
        take_edge_tile(width - 1, py, /*vary_x=*/false);  // right
    }

    // Precompute distance-sorted tile lists for every origin.
    sortedTiles.resize(numTiles());
    for (TileId from = 0; from < numTiles(); from++) {
        auto &list = sortedTiles[from];
        list.resize(numTiles());
        for (TileId t = 0; t < numTiles(); t++)
            list[t] = t;
        std::stable_sort(list.begin(), list.end(),
                         [this, from](TileId a, TileId b) {
                             return hops(from, a) < hops(from, b);
                         });
    }

    // Optimistic compact placement around the chip's center point:
    // sort tiles by euclidean-ish (manhattan) distance from center and
    // build prefix-average distances.
    const double cx = (width - 1) / 2.0;
    const double cy = (height - 1) / 2.0;
    std::vector<std::pair<double, TileId>> by_center;
    for (TileId t = 0; t < numTiles(); t++) {
        const MeshCoord c = coordOf(t);
        const double d = std::abs(c.x - cx) + std::abs(c.y - cy);
        by_center.push_back({d, t});
    }
    std::stable_sort(by_center.begin(), by_center.end());
    centerDistPrefix.resize(numTiles() + 1);
    centerDistPrefix[0] = 0.0;
    for (int i = 0; i < numTiles(); i++)
        centerDistPrefix[i + 1] = centerDistPrefix[i] + by_center[i].first;
}

double
Mesh::distanceToPoint(TileId tile, double x, double y) const
{
    const MeshCoord c = coordOf(tile);
    return std::abs(c.x - x) + std::abs(c.y - y);
}

int
Mesh::memCtrlOf(LineAddr line) const
{
    const std::uint64_t page = line >> pageLineShift;
    return static_cast<int>(mix64(page * 0x51ED2700 + 17) %
                            memCtrlTiles.size());
}

int
Mesh::hopsToMemCtrl(TileId tile, LineAddr line) const
{
    return hopsToCtrl(tile, memCtrlOf(line));
}

double
Mesh::avgHopsToMemCtrl(TileId tile) const
{
    double sum = 0.0;
    for (TileId ctrl_tile : memCtrlTiles)
        sum += hops(tile, ctrl_tile) + 1;
    return sum / static_cast<double>(memCtrlTiles.size());
}

int
Mesh::nearestMemCtrl(TileId tile) const
{
    int best = 0;
    int best_hops = hops(tile, memCtrlTiles[0]);
    for (std::size_t c = 1; c < memCtrlTiles.size(); c++) {
        const int h = hops(tile, memCtrlTiles[c]);
        if (h < best_hops) {
            best_hops = h;
            best = static_cast<int>(c);
        }
    }
    return best;
}

const std::vector<TileId> &
Mesh::tilesByDistance(TileId from) const
{
    cdcs_assert(from < sortedTiles.size(), "tile out of range");
    return sortedTiles[from];
}

double
Mesh::optimisticDistance(double banks) const
{
    if (banks <= 0.0)
        return 0.0;
    const double capped = std::min(banks,
                                   static_cast<double>(numTiles()));
    const int whole = static_cast<int>(capped);
    double sum = centerDistPrefix[whole];
    if (whole < numTiles()) {
        const double frac = capped - whole;
        sum += frac *
            (centerDistPrefix[whole + 1] - centerDistPrefix[whole]);
    }
    return sum / capped;
}

} // namespace cdcs
