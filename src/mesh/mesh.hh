/**
 * @file
 * Mesh network-on-chip model: topology, X-Y routing distances, memory
 * controller attachment, message latency and flit-level traffic
 * accounting.
 *
 * The model is analytic rather than flit-accurate: latency is
 * hops * (router + link) plus payload serialization, which matches the
 * zero-load latency of the 3-cycle-router / 1-cycle-link mesh in the
 * paper (Table 2). The Mesh is pure topology + latency math; traffic
 * accounting (per-class flit-hops, per-link loads) lives in the
 * pluggable network models under src/net/.
 */

#ifndef CDCS_MESH_MESH_HH
#define CDCS_MESH_MESH_HH

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace cdcs
{

/** Traffic classes reported by the paper's breakdowns. */
enum class TrafficClass : std::uint8_t
{
    L2ToLLC,    ///< Core/L2 to LLC-bank requests and responses.
    LLCToMem,   ///< LLC-bank to memory-controller traffic.
    Other,      ///< Moves, invalidations, monitoring.
    NumClasses
};

/** Tile coordinate on the mesh. */
struct MeshCoord
{
    int x;
    int y;
};

/** Static NoC latency/width parameters. */
struct NocConfig
{
    Cycles routerCycles = 3;    ///< Pipelined router traversal.
    Cycles linkCycles = 1;      ///< Link traversal.
    std::uint32_t flitBits = 128;
    std::uint32_t headerBits = 64;

    /** Flits of a control (address-only) message. */
    std::uint32_t ctrlFlits() const { return 1; }

    /** Flits of a data message carrying one cache line. */
    std::uint32_t
    dataFlits() const
    {
        const std::uint32_t bits = headerBits + lineBytes * 8;
        return (bits + flitBits - 1) / flitBits;
    }
};

/**
 * A width x height mesh of tiles with memory controllers attached to
 * edge tiles (two per side, like the target CMP in Fig. 3).
 *
 * All queries are const and cheap (distances are precomputed).
 */
class Mesh
{
  public:
    /**
     * @param width Tiles per row.
     * @param height Tiles per column.
     * @param cfg Latency and width parameters.
     * @param num_mem_ctrls Number of edge memory controllers
     *        (rounded down to a multiple of 4; 0 lets the model place
     *        8 controllers, or 4 on meshes narrower than 4 tiles).
     */
    Mesh(int width, int height, NocConfig cfg = NocConfig{},
         int num_mem_ctrls = 0);

    int width() const { return meshWidth; }
    int height() const { return meshHeight; }
    int numTiles() const { return meshWidth * meshHeight; }
    int numMemCtrls() const { return static_cast<int>(memCtrlTiles.size()); }
    const NocConfig &config() const { return nocConfig; }

    /** Coordinate of a tile id. */
    MeshCoord
    coordOf(TileId tile) const
    {
        return {tile % meshWidth, tile / meshWidth};
    }

    /** Tile id of a coordinate. @pre coordinate on the mesh. */
    TileId
    tileAt(int x, int y) const
    {
        return static_cast<TileId>(y * meshWidth + x);
    }

    /** X-Y routing hop count between two tiles. */
    int
    hops(TileId a, TileId b) const
    {
        const MeshCoord ca = coordOf(a);
        const MeshCoord cb = coordOf(b);
        return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
    }

    /** Fractional distance between a tile and an (x, y) point. */
    double distanceToPoint(TileId tile, double x, double y) const;

    /**
     * Hop count from a tile to the memory controller owning an
     * address (addresses are page-interleaved across controllers).
     * Includes the one hop from the edge tile onto the controller.
     */
    int hopsToMemCtrl(TileId tile, LineAddr line) const;

    /**
     * Controller index owning an address under the page-interleaved
     * mapping (the interleaving behind hopsToMemCtrl).
     */
    int memCtrlOf(LineAddr line) const;

    /** Mean over controllers of hopsToMemCtrl from this tile. */
    double avgHopsToMemCtrl(TileId tile) const;

    /** Edge tile the i-th memory controller is attached to. */
    TileId
    memCtrlTile(int i) const
    {
        return memCtrlTiles[static_cast<std::size_t>(i)];
    }

    /**
     * Controller index nearest to a tile (NUMA-aware page placement,
     * the extension Sec. III defers to future work).
     */
    int nearestMemCtrl(TileId tile) const;

    /** Hops from a tile to a specific controller (incl. attach). */
    int
    hopsToCtrl(TileId tile, int ctrl) const
    {
        return hops(tile, memCtrlTiles[static_cast<std::size_t>(ctrl)])
            + 1;
    }

    /** Zero-load latency of a message traversing h hops. */
    Cycles
    latency(int h, std::uint32_t payload_flits) const
    {
        // A message always carries at least one (header) flit; a
        // zero-flit payload would wrap `payload_flits - 1` to a huge
        // Cycles value, so clamp the serialization term defensively.
        cdcs_assert(payload_flits > 0,
                    "message must carry at least one flit");
        const Cycles serialization =
            payload_flits > 0 ? payload_flits - 1 : 0;
        if (h == 0)
            return serialization;
        const Cycles per_hop = nocConfig.routerCycles + nocConfig.linkCycles;
        return static_cast<Cycles>(h) * per_hop + serialization;
    }

    /**
     * Tiles sorted by distance from a given tile; used for compact
     * footprint construction by the placement algorithms.
     */
    const std::vector<TileId> &tilesByDistance(TileId from) const;

    /**
     * Average hop distance from the chip's center point to the
     * nearest `banks` tiles (fractional): the optimistic compact
     * placement distance of Fig. 6, used by latency-aware allocation.
     */
    double optimisticDistance(double banks) const;

  private:
    int meshWidth;
    int meshHeight;
    NocConfig nocConfig;
    std::vector<TileId> memCtrlTiles;
    /// tilesByDistance cache, indexed by origin tile.
    std::vector<std::vector<TileId>> sortedTiles;
    /// Prefix-averaged distances from chip center (index = #banks).
    std::vector<double> centerDistPrefix;
};

} // namespace cdcs

#endif // CDCS_MESH_MESH_HH
