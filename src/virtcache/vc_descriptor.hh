/**
 * @file
 * Virtual cache (VC) descriptors: the N-bucket bank arrays the VTB
 * uses to spread a VC's accesses across its bank partitions in
 * proportion to their capacities (Sec. III, Fig. 3).
 */

#ifndef CDCS_VIRTCACHE_VC_DESCRIPTOR_HH
#define CDCS_VIRTCACHE_VC_DESCRIPTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cdcs
{

/** Buckets per VC descriptor (N = 64 in the paper). */
constexpr std::uint32_t vcBuckets = 64;

/**
 * A VC descriptor: an array of N bank ids. An address hashes to a
 * bucket; the bucket names the bank (and, implicitly, the bank
 * partition belonging to this VC) that caches the line. Assigning k of
 * N buckets to a bank steers k/N of the VC's accesses there, which
 * makes a set of bank partitions behave like a single cache of their
 * aggregate size.
 */
class VcDescriptor
{
  public:
    VcDescriptor() { banks.fill(invalidTile); }

    /** Bank for a line address. @pre descriptor is non-empty. */
    TileId
    bankOf(LineAddr addr) const
    {
        return banks[bucketOf(addr)];
    }

    /** Bucket index for a line address. */
    static std::uint32_t
    bucketOf(LineAddr addr)
    {
        return static_cast<std::uint32_t>(
            mix64(addr ^ 0xB0C4E75) & (vcBuckets - 1));
    }

    /** Bank stored in a bucket. */
    TileId bucket(std::uint32_t i) const { return banks[i]; }

    /** Set one bucket. */
    void setBucket(std::uint32_t i, TileId bank) { banks[i] = bank; }

    /** True if any bucket maps to a bank. */
    bool
    valid() const
    {
        for (TileId b : banks) {
            if (b != invalidTile)
                return true;
        }
        return false;
    }

    bool
    operator==(const VcDescriptor &other) const
    {
        return banks == other.banks;
    }

    /**
     * Build a descriptor from per-bank capacity shares using
     * largest-remainder apportionment, so bucket counts are
     * proportional to shares and all N buckets are assigned.
     *
     * Banks with tiny shares may receive zero buckets: the hardware
     * has finite (N-bucket) steering resolution, and the runtime's
     * placement granularity respects that.
     *
     * @param shares shares[b] = lines of this VC placed in bank b.
     * @return Descriptor; if all shares are zero every bucket maps to
     *         the first bank (a VC must always map somewhere).
     */
    static VcDescriptor fromShares(const std::vector<double> &shares);

  private:
    std::array<TileId, vcBuckets> banks;
};

} // namespace cdcs

#endif // CDCS_VIRTCACHE_VC_DESCRIPTOR_HH
