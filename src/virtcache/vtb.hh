/**
 * @file
 * Virtual-cache translation buffer (VTB): the per-core, 3-entry
 * associative table that maps (VC id, line address) to the LLC bank on
 * every L2 miss (Fig. 3). Each entry holds a current descriptor and a
 * shadow descriptor; while a reconfiguration is in flight the shadow
 * gives the line's previous location so misses can chase it with a
 * demand move (Sec. IV-H).
 */

#ifndef CDCS_VIRTCACHE_VTB_HH
#define CDCS_VIRTCACHE_VTB_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "virtcache/vc_descriptor.hh"

namespace cdcs
{

/** Result of a VTB lookup. */
struct VtbLookup
{
    TileId bank = invalidTile;      ///< Current home bank.
    TileId oldBank = invalidTile;   ///< Previous home (shadow), or
                                    ///< invalidTile when identical /
                                    ///< no reconfiguration in flight.
};

/**
 * Per-core VTB. Threads access exactly three VCs (thread-private,
 * per-process, global), so the table has three entries; a lookup for
 * any other VC is a protection violation (panic, standing in for the
 * exception the hardware would raise).
 */
class Vtb
{
  public:
    static constexpr std::uint32_t numEntries = 3;

    Vtb() { vcIds.fill(invalidVc); }

    /**
     * Install or replace the entry for a VC.
     *
     * @param vc VC id (tag).
     * @param desc Current descriptor (copied).
     */
    void install(VcId vc, const VcDescriptor &desc);

    /**
     * Start a reconfiguration for one VC: the current descriptor is
     * copied to the shadow slot and replaced by `next`. Lookups then
     * report both locations until finishReconfig().
     */
    void beginReconfig(VcId vc, const VcDescriptor &next);

    /** Drop all shadow descriptors (background walk finished). */
    void finishReconfig();

    /** True while any entry still has an active shadow. */
    bool reconfigActive() const { return shadowsActive; }

    /**
     * Translate an access.
     * @param vc VC id; must be one of the three installed VCs.
     * @param addr Line address.
     */
    VtbLookup lookup(VcId vc, LineAddr addr) const;

    /** Descriptor currently installed for a VC (must be present). */
    const VcDescriptor &descriptor(VcId vc) const;

  private:
    std::uint32_t indexOf(VcId vc) const;

    std::array<VcId, numEntries> vcIds;
    std::array<VcDescriptor, numEntries> current;
    std::array<VcDescriptor, numEntries> shadow;
    std::array<bool, numEntries> shadowValid = {false, false, false};
    bool shadowsActive = false;
};

} // namespace cdcs

#endif // CDCS_VIRTCACHE_VTB_HH
