#include "virtcache/vc_descriptor.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace cdcs
{

VcDescriptor
VcDescriptor::fromShares(const std::vector<double> &shares)
{
    VcDescriptor desc;
    double total = 0.0;
    for (double s : shares)
        total += s;
    if (total <= 0.0) {
        for (std::uint32_t i = 0; i < vcBuckets; i++)
            desc.setBucket(i, 0);
        return desc;
    }

    // Weighted rendezvous (highest-random-weight) assignment: bucket
    // i goes to the bank maximizing share_b / -ln(u(i, b)) with u a
    // per-(bucket, bank) hash in (0, 1). Two properties matter here:
    //
    //  - proportionality: each bank receives buckets in proportion to
    //    its share in expectation, so the ganged partitions behave
    //    like one cache of their aggregate size (Sec. III);
    //  - stability: when a reconfiguration changes shares, only the
    //    buckets whose winning bank changed move. Contiguous range
    //    assignment would shift most buckets on any change, and every
    //    shifted bucket turns into demand moves and background
    //    invalidations (Sec. IV-H).
    for (std::uint32_t i = 0; i < vcBuckets; i++) {
        TileId best_bank = 0;
        double best_score = -1.0;
        for (std::size_t b = 0; b < shares.size(); b++) {
            if (shares[b] <= 0.0)
                continue;
            const std::uint64_t h =
                mix64((static_cast<std::uint64_t>(i) << 32) ^
                      (b * 0x9E3779B97F4A7C15ull) ^ 0xD15C);
            // u in (0, 1]; -ln(u) is an Exp(1) draw.
            const double u =
                (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
            const double score = shares[b] / -std::log(u);
            if (score > best_score) {
                best_score = score;
                best_bank = static_cast<TileId>(b);
            }
        }
        desc.setBucket(i, best_bank);
    }
    return desc;
}

} // namespace cdcs
