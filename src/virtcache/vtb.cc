#include "virtcache/vtb.hh"

#include "common/log.hh"

namespace cdcs
{

std::uint32_t
Vtb::indexOf(VcId vc) const
{
    for (std::uint32_t i = 0; i < numEntries; i++) {
        if (vcIds[i] == vc)
            return i;
    }
    panic("VTB miss for VC %u: thread accessed an unmapped VC", vc);
}

void
Vtb::install(VcId vc, const VcDescriptor &desc)
{
    // Replace an existing entry for this VC, else take a free slot.
    for (std::uint32_t i = 0; i < numEntries; i++) {
        if (vcIds[i] == vc) {
            current[i] = desc;
            shadowValid[i] = false;
            return;
        }
    }
    for (std::uint32_t i = 0; i < numEntries; i++) {
        if (vcIds[i] == invalidVc) {
            vcIds[i] = vc;
            current[i] = desc;
            shadowValid[i] = false;
            return;
        }
    }
    panic("VTB full: threads may access at most %u VCs", numEntries);
}

void
Vtb::beginReconfig(VcId vc, const VcDescriptor &next)
{
    const std::uint32_t i = indexOf(vc);
    shadow[i] = current[i];
    shadowValid[i] = true;
    current[i] = next;
    shadowsActive = true;
}

void
Vtb::finishReconfig()
{
    shadowValid.fill(false);
    shadowsActive = false;
}

VtbLookup
Vtb::lookup(VcId vc, LineAddr addr) const
{
    const std::uint32_t i = indexOf(vc);
    VtbLookup res;
    res.bank = current[i].bankOf(addr);
    if (shadowValid[i]) {
        const TileId old_bank = shadow[i].bankOf(addr);
        if (old_bank != res.bank)
            res.oldBank = old_bank;
    }
    return res;
}

const VcDescriptor &
Vtb::descriptor(VcId vc) const
{
    return current[indexOf(vc)];
}

} // namespace cdcs
