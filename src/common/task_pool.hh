/**
 * @file
 * A work-stealing thread pool over lock-free Chase-Lev deques. run()
 * distributes a batch round-robin across per-worker deques (pushes
 * serialized by a submit mutex, so the submitter side is the deques'
 * single "owner"); workers drain them with lock-free steals — their
 * own share first, then victims' — so a batch of unevenly-sized tasks
 * (e.g. S-NUCA vs. CDCS runs) keeps every core busy until the batch
 * drains, with no lock on the execution path.
 *
 * Sleeping workers are woken only when the idle count is nonzero
 * (never a broadcast to a fully-busy pool), and wakeupCount() exposes
 * how often that happened so tests can pin the no-idle-no-wakeup
 * contract.
 *
 * Tasks must not throw. Nested run() calls from inside a worker
 * execute inline (serially) instead of deadlocking the pool.
 */

#ifndef CDCS_COMMON_TASK_POOL_HH
#define CDCS_COMMON_TASK_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/chase_lev.hh"

namespace cdcs
{

/** Work-stealing pool with persistent workers. */
class WorkStealingPool
{
  public:
    /**
     * @param workers Worker-thread count; 0 picks defaultWorkers().
     *        A 1-worker pool runs everything inline on the caller
     *        (deterministic serial mode).
     */
    explicit WorkStealingPool(unsigned workers = 0);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Run a batch of tasks; blocks until every task completed. */
    void run(std::vector<std::function<void()>> tasks);

    unsigned workerCount() const { return numWorkers; }

    /** Workers currently parked on the sleep cv (racy, for tests). */
    unsigned
    idleWorkers() const
    {
        return idleCount.load();
    }

    /** Tasks enqueued but not yet claimed (racy, for tests). */
    std::uint64_t
    queuedTasks() const
    {
        return queued.load();
    }

    /**
     * How many submissions woke sleeping workers. A submit while
     * every worker is busy must not bump this (the broadcast-on-
     * every-submit regression the counter exists to pin).
     */
    std::uint64_t
    wakeupCount() const
    {
        return wakeups.load();
    }

    /** Tasks a worker took from another worker's deque. */
    std::uint64_t
    stealCount() const
    {
        return steals.load();
    }

    /** Total nanoseconds workers spent parked on the sleep cv. */
    std::uint64_t
    idleNanos() const
    {
        return idleNs.load();
    }

    /**
     * CDCS_WORKERS environment override, else the hardware thread
     * count (CDCS_WORKERS=1 forces serial execution everywhere).
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop(unsigned self);
    /** Steal own share or a victim's; false when nothing runnable. */
    bool runOneTask(unsigned self);

    unsigned numWorkers;
    std::vector<std::unique_ptr<ChaseLevDeque>> deques;
    std::vector<std::thread> threads;

    /**
     * Serializes submitters: Chase-Lev bottoms have a single owner,
     * and here the owner is "whoever is inside run()" — workers never
     * push (nested run() executes inline), they only steal.
     */
    std::mutex submitMu;

    std::mutex sleepMu;
    std::condition_variable workCv;  ///< Wakes idle workers.
    std::condition_variable doneCv;  ///< Wakes a blocked run().
    std::atomic<std::uint64_t> queued{0};    ///< Tasks in deques.
    std::atomic<std::uint64_t> pending{0};   ///< Unfinished tasks.
    std::atomic<unsigned> idleCount{0};      ///< Parked workers.
    std::atomic<std::uint64_t> wakeups{0};   ///< Submit-side notifies.
    std::atomic<std::uint64_t> steals{0};    ///< Cross-deque takes.
    std::atomic<std::uint64_t> idleNs{0};    ///< Parked wall time.
    std::atomic<bool> stopping{false};
    std::atomic<unsigned> nextQueue{0};      ///< Round-robin cursor.
};

} // namespace cdcs

#endif // CDCS_COMMON_TASK_POOL_HH
