/**
 * @file
 * A small work-stealing thread pool. Each worker owns a deque: it
 * pops its own work LIFO (cache-warm) and steals FIFO from victims
 * when empty, so a batch of unevenly-sized tasks (e.g. S-NUCA vs.
 * CDCS runs) keeps every core busy until the batch drains.
 *
 * Tasks must not throw. Nested run() calls from inside a worker
 * execute inline (serially) instead of deadlocking the pool.
 */

#ifndef CDCS_COMMON_TASK_POOL_HH
#define CDCS_COMMON_TASK_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cdcs
{

/** Work-stealing pool with persistent workers. */
class WorkStealingPool
{
  public:
    /**
     * @param workers Worker-thread count; 0 picks defaultWorkers().
     *        A 1-worker pool runs everything inline on the caller
     *        (deterministic serial mode).
     */
    explicit WorkStealingPool(unsigned workers = 0);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Run a batch of tasks; blocks until every task completed. */
    void run(std::vector<std::function<void()>> tasks);

    unsigned workerCount() const { return numWorkers; }

    /**
     * CDCS_WORKERS environment override, else the hardware thread
     * count (CDCS_WORKERS=1 forces serial execution everywhere).
     */
    static unsigned defaultWorkers();

  private:
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    /** Pop own work or steal; returns false when nothing runnable. */
    bool runOneTask(unsigned self);

    unsigned numWorkers;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> threads;

    std::mutex sleepMu;
    std::condition_variable workCv;  ///< Wakes idle workers.
    std::condition_variable doneCv;  ///< Wakes a blocked run().
    std::atomic<std::uint64_t> queued{0};    ///< Tasks in deques.
    std::atomic<std::uint64_t> pending{0};   ///< Unfinished tasks.
    std::atomic<bool> stopping{false};
    std::atomic<unsigned> nextQueue{0};      ///< Round-robin cursor.
};

} // namespace cdcs

#endif // CDCS_COMMON_TASK_POOL_HH
