/**
 * @file
 * A Chase-Lev work-stealing deque [Chase & Lev, SPAA'05] with the C11
 * memory orderings of Le et al. (PPoPP'13, "Correct and Efficient
 * Work-Stealing for Weak Memory Models"). One owner pushes and takes
 * at the bottom without locks; any number of thieves steal from the
 * top with a single CAS. Elements are raw task pointers — the deque
 * never owns what it stores, so the element lifetime is the caller's
 * contract (WorkStealingPool keeps its batch vector alive until every
 * task completed).
 *
 * The circular array grows on demand; retired arrays are kept until
 * destruction because a concurrent thief may still be reading the old
 * buffer (the classic Chase-Lev reclamation problem, solved here by
 * retention — growth is geometric, so the waste is bounded by 2x the
 * peak footprint).
 *
 * TSan builds (CDCS_TSAN, set by CDCS_SANITIZE=thread): ThreadSanitizer
 * does not model standalone std::atomic_thread_fence — its
 * happens-before machinery tracks only per-access orderings — so the
 * Le-et-al fence-based publication reads as a race between the
 * submitter's writes to the task object and the thief that runs it.
 * Under CDCS_TSAN each fence point is replaced by an
 * equivalent-or-stronger per-access ordering (release store /
 * seq_cst accesses on `bottom` and `top`), which TSan understands and
 * which is correct on every platform — just marginally slower on
 * weakly-ordered hardware, which is why the fence variant remains the
 * default. The two variants are semantically interchangeable; the
 * concurrency tests and the TSan CI job run against the CDCS_TSAN
 * flavor, the byte-diff guards pin the default flavor.
 */

#ifndef CDCS_COMMON_CHASE_LEV_HH
#define CDCS_COMMON_CHASE_LEV_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace cdcs
{

/** Lock-free single-owner, multi-thief deque of task pointers. */
class ChaseLevDeque
{
  public:
    using Task = std::function<void()>;

    explicit ChaseLevDeque(std::int64_t initial_capacity = 64)
    {
        rings.push_back(std::make_unique<Ring>(initial_capacity));
        ring.store(rings.back().get(), std::memory_order_relaxed);
    }

    ChaseLevDeque(const ChaseLevDeque &) = delete;
    ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

    /** Owner only: push one task at the bottom. */
    void
    push(Task *task)
    {
        const std::int64_t b = bottom.load(std::memory_order_relaxed);
        const std::int64_t t = top.load(std::memory_order_acquire);
        Ring *r = ring.load(std::memory_order_relaxed);
        if (b - t > r->capacity - 1)
            r = grow(r, t, b);
        r->put(b, task);
        // Publish the slot before the new bottom becomes visible to
        // thieves.
#ifdef CDCS_TSAN
        bottom.store(b + 1, std::memory_order_release);
#else
        std::atomic_thread_fence(std::memory_order_release);
        bottom.store(b + 1, std::memory_order_relaxed);
#endif
    }

    /**
     * Owner only: pop the newest task (LIFO). Returns nullptr when
     * the deque is empty or a thief won the race for the last task.
     */
    Task *
    take()
    {
        const std::int64_t b =
            bottom.load(std::memory_order_relaxed) - 1;
        Ring *r = ring.load(std::memory_order_relaxed);
        // The store to bottom must be ordered before the load of top
        // (the Dekker pattern racing against steal()).
#ifdef CDCS_TSAN
        bottom.store(b, std::memory_order_seq_cst);
        std::int64_t t = top.load(std::memory_order_seq_cst);
#else
        bottom.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top.load(std::memory_order_relaxed);
#endif
        Task *task = nullptr;
        if (t <= b) {
            task = r->get(b);
            if (t == b) {
                // Last element: race thieves for it.
                if (!top.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed)) {
                    task = nullptr;
                }
                bottom.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom.store(b + 1, std::memory_order_relaxed);
        }
        return task;
    }

    /**
     * Any thread: steal the oldest task (FIFO). Returns nullptr when
     * the deque looks empty or another thief won the CAS — callers
     * treat both as "try elsewhere" (the pool re-checks its global
     * queued counter before sleeping, so a lost race never strands a
     * task).
     */
    Task *
    steal()
    {
        // Order the load of top before the load of bottom (pairs with
        // the fence in take()).
#ifdef CDCS_TSAN
        std::int64_t t = top.load(std::memory_order_seq_cst);
        const std::int64_t b =
            bottom.load(std::memory_order_seq_cst);
#else
        std::int64_t t = top.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b =
            bottom.load(std::memory_order_acquire);
#endif
        if (t >= b)
            return nullptr;
        Ring *r = ring.load(std::memory_order_acquire);
        Task *task = r->get(t);
        if (!top.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed)) {
            return nullptr;
        }
        return task;
    }

    /** Approximate (racy) emptiness, for tests and diagnostics. */
    bool
    empty() const
    {
        return top.load(std::memory_order_acquire) >=
            bottom.load(std::memory_order_acquire);
    }

  private:
    /** Power-of-two circular array of task-pointer slots. */
    struct Ring
    {
        explicit Ring(std::int64_t cap)
            : capacity(cap), mask(cap - 1),
              slots(std::make_unique<std::atomic<Task *>[]>(
                  static_cast<std::size_t>(cap)))
        {
        }

        Task *
        get(std::int64_t i) const
        {
            return slots[static_cast<std::size_t>(i & mask)].load(
                std::memory_order_relaxed);
        }

        void
        put(std::int64_t i, Task *task)
        {
            slots[static_cast<std::size_t>(i & mask)].store(
                task, std::memory_order_relaxed);
        }

        std::int64_t capacity;
        std::int64_t mask;
        std::unique_ptr<std::atomic<Task *>[]> slots;
    };

    /** Owner only: double the ring, copying the live [t, b) window. */
    Ring *
    grow(Ring *old, std::int64_t t, std::int64_t b)
    {
        rings.push_back(std::make_unique<Ring>(old->capacity * 2));
        Ring *bigger = rings.back().get();
        for (std::int64_t i = t; i < b; i++)
            bigger->put(i, old->get(i));
        ring.store(bigger, std::memory_order_release);
        return bigger;
    }

    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::atomic<Ring *> ring{nullptr};
    /** Every ring ever allocated (owner-only; see file comment). */
    std::vector<std::unique_ptr<Ring>> rings;
};

} // namespace cdcs

#endif // CDCS_COMMON_CHASE_LEV_HH
