/**
 * @file
 * Logging and error-reporting helpers, following the gem5 conventions:
 * panic() for internal invariant violations (aborts), fatal() for user
 * errors (clean exit), warn()/inform() for status messages.
 */

#ifndef CDCS_COMMON_LOG_HH
#define CDCS_COMMON_LOG_HH

#include <cstdarg>

namespace cdcs
{

/**
 * Report an internal error that should never happen and abort. Use for
 * simulator bugs, not for user mistakes.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Warn about suspicious but non-fatal conditions.
 *
 * @param fmt printf-style format string.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print an informational status message.
 *
 * @param fmt printf-style format string.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Tag this thread's log lines with a worker id ("warn[w3]: ...").
 * Pool workers call this at spawn so parallel-sweep diagnostics stay
 * attributable; pass a negative id to clear. Thread-local.
 */
void setLogWorker(int worker);

/**
 * Assert-like helper used on hot paths; compiled in all build types
 * because simulation correctness depends on these invariants.
 */
#define cdcs_assert(cond, ...)                                         \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::cdcs::panic("assertion '%s' failed at %s:%d", #cond,     \
                          __FILE__, __LINE__);                         \
        }                                                              \
    } while (0)

} // namespace cdcs

#endif // CDCS_COMMON_LOG_HH
