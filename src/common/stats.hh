/**
 * @file
 * Small statistical helpers for aggregating experiment results.
 */

#ifndef CDCS_COMMON_STATS_HH
#define CDCS_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/log.hh"

namespace cdcs
{

/** Arithmetic mean. @pre xs non-empty. */
inline double
mean(const std::vector<double> &xs)
{
    cdcs_assert(!xs.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Geometric mean. @pre xs non-empty, all positive. */
inline double
gmean(const std::vector<double> &xs)
{
    cdcs_assert(!xs.empty(), "gmean of empty vector");
    double logsum = 0.0;
    for (double x : xs) {
        cdcs_assert(x > 0.0, "gmean requires positive values");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

/** Maximum element. @pre xs non-empty. */
inline double
maxOf(const std::vector<double> &xs)
{
    cdcs_assert(!xs.empty(), "max of empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

/** Minimum element. @pre xs non-empty. */
inline double
minOf(const std::vector<double> &xs)
{
    cdcs_assert(!xs.empty(), "min of empty vector");
    return *std::min_element(xs.begin(), xs.end());
}

/**
 * Quantize a positive value into a logarithmic bucket (~10% wide by
 * default). Reconfiguration runtimes sort VCs/threads by noisy
 * monitored quantities; bucketing plus an id tie-break makes those
 * orderings stable across epochs, which keeps placements — and thus
 * VC descriptors — at a fixed point when the workload is stationary.
 */
inline long
logBucket(double x, double ratio = 1.1)
{
    if (x <= 0.0)
        return std::numeric_limits<long>::min();
    return std::lround(std::log(x) / std::log(ratio));
}

/**
 * Values sorted in descending order: the paper plots per-mix speedups
 * as inverse CDFs (Figs. 11a, 14, 15a, 16a).
 */
inline std::vector<double>
inverseCdf(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end(), std::greater<double>());
    return xs;
}

} // namespace cdcs

#endif // CDCS_COMMON_STATS_HH
