#include "common/task_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"

namespace cdcs
{

namespace
{

/// Set while a pool worker (or an inline run()) is executing tasks;
/// nested run() calls then execute inline instead of blocking on the
/// pool they are running inside of.
thread_local bool inside_pool = false;

// Registry mirrors of the pool's native counters, so `stats=pool`
// lands them in the per-epoch metrics trace alongside everything else.
const StatId kPoolSteals = StatRegistry::counter("pool.steals");
const StatId kPoolWakeups = StatRegistry::counter("pool.wakeups");
const StatId kPoolIdleNs = StatRegistry::counter("pool.idle_ns");

} // anonymous namespace

unsigned
WorkStealingPool::defaultWorkers()
{
    const char *env = std::getenv("CDCS_WORKERS");
    if (env != nullptr && *env != '\0') {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n > 0)
            return n;
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

WorkStealingPool::WorkStealingPool(unsigned workers)
    : numWorkers(workers > 0 ? workers : defaultWorkers())
{
    if (numWorkers <= 1)
        return;
    deques.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; w++)
        deques.push_back(std::make_unique<ChaseLevDeque>());
    threads.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; w++)
        threads.emplace_back([this, w]() { workerLoop(w); });
}

WorkStealingPool::~WorkStealingPool()
{
    if (threads.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(sleepMu);
        stopping.store(true);
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
WorkStealingPool::runOneTask(unsigned self)
{
    // Drain the own share first (FIFO, like every steal: Chase-Lev
    // thieves take the oldest task, spreading the big, early-
    // submitted work items), then sweep the victims. A steal() that
    // loses a CAS race reports nullptr like an empty deque; that is
    // fine, because the worker re-checks `queued` before sleeping.
    ChaseLevDeque::Task *task = nullptr;
    for (unsigned i = 0; i < numWorkers && task == nullptr; i++) {
        task = deques[(self + i) % numWorkers]->steal();
        if (task != nullptr && i > 0) {
            // Found in a victim's deque, not the own share.
            steals.fetch_add(1);
            StatRegistry::add(kPoolSteals);
        }
    }
    if (task == nullptr)
        return false;

    queued.fetch_sub(1);
    (*task)();
    if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(sleepMu);
        doneCv.notify_all();
    }
    return true;
}

void
WorkStealingPool::workerLoop(unsigned self)
{
    inside_pool = true;
    setLogWorker(static_cast<int>(self));
    Tracer::nameThread("worker-" + std::to_string(self));
    while (true) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepMu);
        // Publish idleness before re-checking for work: paired with
        // the submitter's queued-then-idle order (both seq_cst), a
        // worker either sees the new tasks in its predicate or is
        // counted idle and gets a notify.
        idleCount.fetch_add(1);
        const auto park = std::chrono::steady_clock::now(); // lint:allow(wallclock)
        workCv.wait(lock, [this]() {
            return stopping.load() || queued.load() > 0;
        });
        // lint:allow(wallclock): idle-time stat, reporting-only
        const auto parked = std::chrono::steady_clock::now() - park;
        const auto parked_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                parked)
                .count());
        idleNs.fetch_add(parked_ns);
        StatRegistry::add(kPoolIdleNs, parked_ns);
        idleCount.fetch_sub(1);
        if (stopping.load())
            return;
    }
}

void
WorkStealingPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    // Serial pool, or a nested call from inside a worker: execute
    // inline. Inline nested execution keeps the outer task's worker
    // busy and cannot deadlock.
    if (threads.empty() || inside_pool) {
        const bool was_inside = inside_pool;
        inside_pool = true;
        for (auto &task : tasks)
            task();
        inside_pool = was_inside;
        return;
    }

    pending.fetch_add(tasks.size());
    {
        // One owner at a time per deque bottom: submitters serialize
        // here, workers only steal. `queued` is raised before the
        // pushes so a worker that steals early never underflows it;
        // a worker that wakes early at worst spins on its predicate
        // until the push lands.
        std::lock_guard<std::mutex> lock(submitMu);
        queued.fetch_add(tasks.size());
        for (auto &task : tasks) {
            const unsigned w = nextQueue.fetch_add(1) % numWorkers;
            deques[w]->push(&task);
        }
    }
    // Wake sleepers only if there are any: a submit into a fully-busy
    // pool stays notification-free (running workers sweep the deques
    // before parking). The seq_cst queued increment above is ordered
    // before this idle load; a worker increments idleCount before its
    // predicate reads queued, so either it sees the tasks or we see
    // it idle here.
    const unsigned idle = idleCount.load();
    if (idle > 0) {
        wakeups.fetch_add(1);
        StatRegistry::add(kPoolWakeups);
        {
            // Empty critical section: a worker between its idle
            // increment and its sleep holds sleepMu, so this
            // acquisition orders the notify after it is actually
            // waiting.
            std::lock_guard<std::mutex> lock(sleepMu);
        }
        if (tasks.size() == 1 || idle == 1)
            workCv.notify_one();
        else
            workCv.notify_all();
    }

    std::unique_lock<std::mutex> lock(sleepMu);
    doneCv.wait(lock, [this]() { return pending.load() == 0; });

    // The batch vector owns the task objects the deques pointed into;
    // it dies only now, after every pointer was consumed.
}

} // namespace cdcs
