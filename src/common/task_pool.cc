#include "common/task_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace cdcs
{

namespace
{

/// Set while a pool worker (or an inline run()) is executing tasks;
/// nested run() calls then execute inline instead of blocking on the
/// pool they are running inside of.
thread_local bool inside_pool = false;

} // anonymous namespace

unsigned
WorkStealingPool::defaultWorkers()
{
    const char *env = std::getenv("CDCS_WORKERS");
    if (env != nullptr && *env != '\0') {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n > 0)
            return n;
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

WorkStealingPool::WorkStealingPool(unsigned workers)
    : numWorkers(workers > 0 ? workers : defaultWorkers())
{
    if (numWorkers <= 1)
        return;
    queues.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; w++)
        queues.push_back(std::make_unique<WorkerQueue>());
    threads.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; w++)
        threads.emplace_back([this, w]() { workerLoop(w); });
}

WorkStealingPool::~WorkStealingPool()
{
    if (threads.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(sleepMu);
        stopping.store(true);
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
WorkStealingPool::runOneTask(unsigned self)
{
    std::function<void()> task;

    // Own deque first, newest task (LIFO keeps caches warm)...
    {
        WorkerQueue &own = *queues[self];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
            queued.fetch_sub(1);
        }
    }
    // ...then steal the oldest task from a victim (FIFO spreads the
    // big, early-submitted work items across thieves).
    if (!task) {
        for (unsigned i = 1; i < numWorkers && !task; i++) {
            WorkerQueue &victim = *queues[(self + i) % numWorkers];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
                queued.fetch_sub(1);
            }
        }
    }
    if (!task)
        return false;

    task();
    if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(sleepMu);
        doneCv.notify_all();
    }
    return true;
}

void
WorkStealingPool::workerLoop(unsigned self)
{
    inside_pool = true;
    while (true) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepMu);
        workCv.wait(lock, [this]() {
            return stopping.load() || queued.load() > 0;
        });
        if (stopping.load())
            return;
    }
}

void
WorkStealingPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    // Serial pool, or a nested call from inside a worker: execute
    // inline. Inline nested execution keeps the outer task's worker
    // busy and cannot deadlock.
    if (threads.empty() || inside_pool) {
        const bool was_inside = inside_pool;
        inside_pool = true;
        for (auto &task : tasks)
            task();
        inside_pool = was_inside;
        return;
    }

    pending.fetch_add(tasks.size());
    // Round-robin across worker deques so stealing starts from a
    // balanced distribution. `queued` is bumped under the same queue
    // lock as the push, so a concurrent pop always sees a matching
    // increment.
    for (auto &task : tasks) {
        const unsigned w = nextQueue.fetch_add(1) % numWorkers;
        WorkerQueue &queue = *queues[w];
        std::lock_guard<std::mutex> lock(queue.mu);
        queue.tasks.push_back(std::move(task));
        queued.fetch_add(1);
    }
    {
        // Empty critical section: a worker between its predicate
        // check and its sleep holds sleepMu, so this acquisition
        // orders the notify after it is actually waiting.
        std::lock_guard<std::mutex> lock(sleepMu);
    }
    workCv.notify_all();

    std::unique_lock<std::mutex> lock(sleepMu);
    doneCv.wait(lock, [this]() { return pending.load() == 0; });
}

} // namespace cdcs
