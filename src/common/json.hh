/**
 * @file
 * Minimal JSON string helpers shared by the result-export paths
 * (SweepResult::toJson, the report sinks, chip-map/trace artifacts).
 */

#ifndef CDCS_COMMON_JSON_HH
#define CDCS_COMMON_JSON_HH

#include <cstdio>
#include <string>
#include <string_view>

namespace cdcs
{

/**
 * Escape a string for embedding inside a JSON string literal:
 * quotes, backslashes and every control character (RFC 8259), so
 * registry-named schemes like `jigsaw+L"T"` cannot produce invalid
 * documents.
 */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    return out;
}

/** `"escaped"` — a complete JSON string literal. */
inline std::string
jsonString(std::string_view s)
{
    std::string out = jsonEscape(s);
    out.insert(out.begin(), '"');
    out.push_back('"');
    return out;
}

} // namespace cdcs

#endif // CDCS_COMMON_JSON_HH
