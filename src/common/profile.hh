/**
 * @file
 * Lightweight phase profiler behind the `--set timing=1` study knob.
 * Worker threads accumulate wall time into thread-local counters, one
 * per coarse simulator phase (access path, NoC wait queries, runtime
 * reconfiguration, result-cache I/O), and runStudy snapshots the
 * process-wide sums around each study to print the timing footer.
 *
 * Disabled (the default) the scoped timer is a single relaxed atomic
 * load, so the hot path pays nothing measurable; timings therefore
 * never influence simulated results, only reporting. NocQuery time is
 * nested inside Access time (the access path issues the queries), so
 * the footer reports it as a share of the access phase.
 */

#ifndef CDCS_COMMON_PROFILE_HH
#define CDCS_COMMON_PROFILE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/trace.hh"

namespace cdcs
{

/** Coarse simulator phases the timing footer breaks down. */
enum class ProfPhase : int
{
    Access = 0,  ///< AccessPath chunk execution (includes NocQuery).
    NocQuery,    ///< NoC latency/wait queries on the access path.
    Reconfig,    ///< Epoch-boundary runtime reconfiguration.
    CacheIo,     ///< Persistent result-store reads/writes.
    NumPhases
};

/** Stable phase label, used by the footer and the execution tracer. */
constexpr const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::Access:
        return "access";
      case ProfPhase::NocQuery:
        return "noc-query";
      case ProfPhase::Reconfig:
        return "reconfig";
      case ProfPhase::CacheIo:
        return "cache-io";
      default:
        return "?";
    }
}

/**
 * Phases coarse enough to trace as spans. NocQuery fires per cache
 * access — millions of times per epoch — so it stays timer-only; the
 * others fire at most once per epoch per run.
 */
constexpr bool
profPhaseTraceable(ProfPhase phase)
{
    return phase != ProfPhase::NocQuery;
}

/** Process-wide phase-time accumulator (thread-local counters). */
class Profiler
{
  public:
    static constexpr std::size_t numPhases =
        static_cast<std::size_t>(ProfPhase::NumPhases);

    /** Accumulated nanoseconds per phase, summed over all threads. */
    struct Snapshot
    {
        std::array<std::uint64_t, numPhases> ns{};

        std::uint64_t
        operator[](ProfPhase phase) const
        {
            return ns[static_cast<std::size_t>(phase)];
        }

        /** Per-phase difference vs. an earlier snapshot. */
        Snapshot
        since(const Snapshot &earlier) const
        {
            Snapshot delta;
            for (std::size_t p = 0; p < numPhases; p++)
                delta.ns[p] = ns[p] - earlier.ns[p];
            return delta;
        }
    };

    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabledFlag.store(on, std::memory_order_relaxed);
    }

    /** Add `ns` nanoseconds to this thread's counter for `phase`. */
    static void
    add(ProfPhase phase, std::uint64_t ns)
    {
        local().ns[static_cast<std::size_t>(phase)].fetch_add(
            ns, std::memory_order_relaxed);
    }

    /** Sum the counters of every thread that ever recorded time. */
    static Snapshot
    snapshot()
    {
        Snapshot snap;
        std::lock_guard<std::mutex> lock(registryMu());
        for (const Counters *block : registry()) {
            for (std::size_t p = 0; p < numPhases; p++) {
                snap.ns[p] += block->ns[p].load(
                    std::memory_order_relaxed);
            }
        }
        return snap;
    }

  private:
    struct Counters
    {
        std::array<std::atomic<std::uint64_t>, numPhases> ns{};
    };

    /**
     * This thread's counter block, registered globally on first use.
     * Blocks are intentionally never freed: snapshot() must still see
     * the time recorded by pool workers that have since exited, and
     * the leak is bounded by the thread count.
     */
    static Counters &
    local()
    {
        thread_local Counters *block = []() {
            auto *fresh = new Counters();
            std::lock_guard<std::mutex> lock(registryMu());
            registry().push_back(fresh);
            return fresh;
        }();
        return *block;
    }

    static std::mutex &
    registryMu()
    {
        static std::mutex mu;
        return mu;
    }

    // Heap-allocated and never destroyed: if the vector were a
    // plain static it would be destroyed at exit and drop the only
    // references to the counter blocks, which LeakSanitizer would
    // then report as leaks.
    static std::vector<Counters *> &
    registry()
    {
        static auto *blocks = new std::vector<Counters *>();
        return *blocks;
    }

    static inline std::atomic<bool> enabledFlag{false};
};

/**
 * Scoped timer charging its lifetime to one phase (when the profiler
 * is enabled) and, for coarse phases, emitting a tracer span (when a
 * trace file is open). Both default off to two relaxed loads.
 */
class ProfTimer
{
  public:
    explicit ProfTimer(ProfPhase phase_)
        : phase(phase_), active(Profiler::enabled()),
          tracing(profPhaseTraceable(phase_) && Tracer::enabled())
    {
        if (active)
            start = std::chrono::steady_clock::now(); // lint:allow(wallclock)
        if (tracing)
            Tracer::begin(profPhaseName(phase_));
    }

    ~ProfTimer()
    {
        if (tracing)
            Tracer::end(profPhaseName(phase));
        if (!active)
            return;
        const auto elapsed = // lint:allow(wallclock)
            std::chrono::steady_clock::now() - start;
        Profiler::add(
            phase,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count()));
    }

    ProfTimer(const ProfTimer &) = delete;
    ProfTimer &operator=(const ProfTimer &) = delete;

  private:
    ProfPhase phase;
    bool active;
    bool tracing;
    std::chrono::steady_clock::time_point start;
};

} // namespace cdcs

#endif // CDCS_COMMON_PROFILE_HH
