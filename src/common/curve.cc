#include "common/curve.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/log.hh"

namespace cdcs
{

Curve::Curve(std::vector<CurvePoint> pts)
    : points(std::move(pts))
{
    for (std::size_t i = 1; i < points.size(); i++) {
        cdcs_assert(points[i - 1].x < points[i].x,
                    "curve x values must be strictly ascending");
    }
}

void
Curve::addPoint(double x, double y)
{
    if (!points.empty()) {
        cdcs_assert(x >= points.back().x, "curve points must ascend in x");
        if (x == points.back().x) {
            points.back().y = y;
            return;
        }
    }
    points.push_back({x, y});
}

double
Curve::maxX() const
{
    return points.empty() ? 0.0 : points.back().x;
}

double
Curve::at(double x) const
{
    cdcs_assert(!points.empty(), "evaluating empty curve");
    if (x <= points.front().x)
        return points.front().y;
    if (x >= points.back().x)
        return points.back().y;
    // Binary search for the segment containing x.
    const auto it = std::upper_bound(
        points.begin(), points.end(), x,
        [](double v, const CurvePoint &p) { return v < p.x; });
    const CurvePoint &hi = *it;
    const CurvePoint &lo = *(it - 1);
    const double t = (x - lo.x) / (hi.x - lo.x);
    return lo.y + t * (hi.y - lo.y);
}

Curve
Curve::convexHull() const
{
    Curve hull;
    if (points.size() <= 2) {
        hull.points = points;
        return hull;
    }
    // Monotone-chain lower hull over points already sorted by x.
    std::vector<CurvePoint> stack;
    for (const CurvePoint &p : points) {
        while (stack.size() >= 2) {
            const CurvePoint &a = stack[stack.size() - 2];
            const CurvePoint &b = stack[stack.size() - 1];
            // Remove b if it lies on or above segment a->p.
            const double cross =
                (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
            if (cross <= 0.0)
                stack.pop_back();
            else
                break;
        }
        stack.push_back(p);
    }
    hull.points = std::move(stack);
    return hull;
}

Curve
Curve::plus(const Curve &other) const
{
    if (points.empty())
        return other;
    if (other.points.empty())
        return *this;
    std::set<double> xs;
    for (const auto &p : points)
        xs.insert(p.x);
    for (const auto &p : other.points)
        xs.insert(p.x);
    Curve out;
    for (double x : xs)
        out.addPoint(x, at(x) + other.at(x));
    return out;
}

Curve
Curve::scaled(double factor) const
{
    Curve out;
    for (const auto &p : points)
        out.addPoint(p.x, p.y * factor);
    return out;
}

bool
Curve::isNonIncreasing(double tol) const
{
    for (std::size_t i = 1; i < points.size(); i++) {
        if (points[i].y > points[i - 1].y + tol)
            return false;
    }
    return true;
}

} // namespace cdcs
