/**
 * @file
 * Fundamental types and constants shared by all CDCS subsystems.
 */

#ifndef CDCS_COMMON_TYPES_HH
#define CDCS_COMMON_TYPES_HH

#include <cstdint>

namespace cdcs
{

/** Byte address in a process' simulated address space. */
using Addr = std::uint64_t;

/** Cache-line address: byte address >> lineShift. */
using LineAddr = std::uint64_t;

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Virtual cache identifier (a share, in Jigsaw terminology). */
using VcId = std::uint16_t;

/** Sentinel for "no virtual cache". */
constexpr VcId invalidVc = 0xFFFF;

/** Tile / bank / core identifier in the tiled CMP. */
using TileId = std::uint16_t;

/** Sentinel for "no tile". */
constexpr TileId invalidTile = 0xFFFF;

/** Thread identifier within a workload mix. */
using ThreadId = std::uint16_t;

/** Process identifier within a workload mix. */
using ProcId = std::uint16_t;

/** Cache line size in bytes (fixed across the hierarchy). */
constexpr std::uint32_t lineBytes = 64;

/** log2(lineBytes). */
constexpr std::uint32_t lineShift = 6;

/** Page size used by the virtual-memory mapping layers. */
constexpr std::uint32_t pageBytes = 4096;

/** Lines per page. */
constexpr std::uint32_t linesPerPage = pageBytes / lineBytes;

/** log2(linesPerPage). */
constexpr std::uint32_t pageLineShift = 6;

/** Convert a capacity in bytes to cache lines (rounding down). */
constexpr std::uint64_t
bytesToLines(std::uint64_t bytes)
{
    return bytes / lineBytes;
}

/** Convert a capacity in cache lines to bytes. */
constexpr std::uint64_t
linesToBytes(std::uint64_t lines)
{
    return lines * lineBytes;
}

/**
 * Finalizer of splitmix64: a strong 64-bit mixing function. Used to hash
 * line addresses for bank-bucket selection, set indexing and monitor
 * sampling so that the three uses are decorrelated by seeding.
 *
 * @param x Value to mix.
 * @return Mixed value, uniformly distributed for distinct inputs.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace cdcs

#endif // CDCS_COMMON_TYPES_HH
