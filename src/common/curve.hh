/**
 * @file
 * Piecewise-linear curves: the common representation for miss curves
 * (misses vs. allocated capacity) and total-latency curves used by the
 * allocation and placement algorithms.
 */

#ifndef CDCS_COMMON_CURVE_HH
#define CDCS_COMMON_CURVE_HH

#include <cstddef>
#include <vector>

namespace cdcs
{

/** A single (x, y) sample of a curve. */
struct CurvePoint
{
    double x;
    double y;
};

/**
 * A piecewise-linear function y(x) defined by samples with strictly
 * ascending x. Between samples the curve interpolates linearly; outside
 * the sampled range it clamps to the first/last value.
 *
 * Miss curves are monotonically non-increasing; total-latency curves
 * (miss latency + on-chip latency) are generally U-shaped.
 */
class Curve
{
  public:
    Curve() = default;

    /** Construct from a point list. @pre xs strictly ascending. */
    explicit Curve(std::vector<CurvePoint> pts);

    /**
     * Append a sample. @pre x greater than the last sample's x
     * (equal x replaces the last sample's y).
     */
    void addPoint(double x, double y);

    /** Number of samples. */
    std::size_t size() const { return points.size(); }

    /** True if the curve has no samples. */
    bool empty() const { return points.empty(); }

    /** Access the i-th sample. */
    const CurvePoint &operator[](std::size_t i) const { return points[i]; }

    /** All samples, ascending in x. */
    const std::vector<CurvePoint> &samples() const { return points; }

    /** Largest sampled x (0 if empty). */
    double maxX() const;

    /**
     * Evaluate the curve at x with linear interpolation, clamping
     * outside the sampled domain.
     */
    double at(double x) const;

    /**
     * Lower convex hull of the samples: the largest convex function
     * below all samples. Used to extract diminishing-returns segments
     * for the Peekahead allocator; for a convex curve this is the
     * curve itself.
     */
    Curve convexHull() const;

    /**
     * Pointwise sum with another curve; the result is sampled at the
     * union of both curves' x positions.
     */
    Curve plus(const Curve &other) const;

    /** Pointwise scale of y by a constant factor. */
    Curve scaled(double factor) const;

    /**
     * True if y never increases along the curve (within tolerance).
     * Miss curves must satisfy this.
     */
    bool isNonIncreasing(double tol = 1e-9) const;

  private:
    std::vector<CurvePoint> points;
};

} // namespace cdcs

#endif // CDCS_COMMON_CURVE_HH
