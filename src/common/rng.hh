/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * mix sampling, random thread schedulers, annealers) draws from seeded
 * Rng instances so that every experiment is exactly reproducible.
 */

#ifndef CDCS_COMMON_RNG_HH
#define CDCS_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/types.hh"

namespace cdcs
{

/**
 * xoshiro256** generator. Small, fast and statistically strong; good
 * enough for workload synthesis and stochastic search.
 */
class Rng
{
  public:
    /**
     * Construct from a 64-bit seed; the state is expanded with
     * splitmix64 so that nearby seeds give independent streams.
     */
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ull;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation; the tiny
        // modulo bias of the simple variant is irrelevant here, but
        // the multiply-shift is also faster than '%'.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * Sampler for a (truncated) Zipf distribution over [0, n): item i is
 * drawn with probability proportional to 1 / (i + 1)^alpha.
 *
 * Uses rejection-inversion (Hormann & Derflinger), which is O(1) per
 * sample and needs no per-item tables, so footprints of hundreds of
 * thousands of lines cost nothing to set up.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (footprint).
     * @param alpha Skew parameter; alpha == 0 degenerates to uniform.
     */
    ZipfSampler(std::uint64_t n, double alpha)
        : numItems(n), skew(alpha)
    {
        hIntegralX1 = hIntegral(1.5) - 1.0;
        hIntegralNum = hIntegral(static_cast<double>(numItems) + 0.5);
        sCache = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
    }

    /** Draw one item index in [0, n). */
    std::uint64_t
    sample(Rng &rng)
    {
        if (skew <= 0.0)
            return rng.below(numItems);
        while (true) {
            const double u = hIntegralNum +
                rng.uniform() * (hIntegralX1 - hIntegralNum);
            const double x = hIntegralInverse(u);
            std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
            if (k < 1)
                k = 1;
            else if (k > numItems)
                k = numItems;
            const double kd = static_cast<double>(k);
            if (kd - x <= sCache ||
                u >= hIntegral(kd + 0.5) - h(kd)) {
                return k - 1;
            }
        }
    }

  private:
    double
    h(double x) const
    {
        return std::exp(-skew * std::log(x));
    }

    double
    hIntegral(double x) const
    {
        const double logx = std::log(x);
        return helper2((1.0 - skew) * logx) * logx;
    }

    double
    hIntegralInverse(double x) const
    {
        double t = x * (1.0 - skew);
        if (t < -1.0)
            t = -1.0;
        return std::exp(helper1(t) * x);
    }

    /** (exp(x) - 1) / x, stable near 0. */
    static double
    helper2(double x)
    {
        if (std::fabs(x) > 1e-8)
            return std::expm1(x) / x;
        return 1.0 + x * 0.5 * (1.0 + x / 3.0);
    }

    /** log1p(x) / x, stable near 0. */
    static double
    helper1(double x)
    {
        if (std::fabs(x) > 1e-8)
            return std::log1p(x) / x;
        return 1.0 - x * (0.5 - x / 3.0);
    }

    std::uint64_t numItems;
    double skew;
    double hIntegralX1;
    double hIntegralNum;
    double sCache;
};

} // namespace cdcs

#endif // CDCS_COMMON_RNG_HH
