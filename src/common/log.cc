#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace cdcs
{

namespace
{

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace cdcs
