#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cdcs
{

namespace
{

thread_local int logWorker = -1;

std::mutex &
logMu()
{
    static std::mutex mu;
    return mu;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    // Format into a local buffer first, then emit the whole line in
    // one mutex-guarded write: concurrent pool workers must not
    // interleave fragments of each other's diagnostics.
    char msg[4096];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    std::lock_guard<std::mutex> lock(logMu());
    if (logWorker >= 0)
        std::fprintf(stderr, "%s[w%d]: %s\n", tag, logWorker, msg);
    else
        std::fprintf(stderr, "%s: %s\n", tag, msg);
}

} // anonymous namespace

void
setLogWorker(int worker)
{
    logWorker = worker;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace cdcs
