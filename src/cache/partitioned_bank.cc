#include "cache/partitioned_bank.hh"

#include <limits>

#include "common/log.hh"

namespace cdcs
{

PartitionedBank::PartitionedBank(std::uint64_t num_lines,
                                 std::uint32_t num_ways,
                                 std::uint64_t hash_seed)
    : array(static_cast<std::uint32_t>(num_lines / num_ways), num_ways,
            hash_seed)
{
    cdcs_assert(num_lines % num_ways == 0,
                "bank lines must be a multiple of associativity");
}

void
PartitionedBank::growTables(VcId vc)
{
    if (vc >= vcOccupancy.size()) {
        vcOccupancy.resize(vc + 1, 0);
        vcTarget.resize(vc + 1, unmanagedTarget);
    }
}

std::uint32_t
PartitionedBank::pickVictim(std::uint32_t set, VcId /*vc*/)
{
    // Victim priority: (1) LRU line of an over-budget VC — including
    // the inserting VC itself once it exceeds its own target, which is
    // what keeps unallocated capacity unused (Sec. IV-C); (2) an
    // invalid way (partitions still growing toward their targets);
    // (3) the set's global LRU (set-level skew with all VCs at
    // target).
    std::uint32_t over_budget_way = array.numWays();
    std::uint64_t over_budget_lru = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t invalid_way = array.numWays();
    std::uint32_t global_way = 0;
    std::uint64_t global_lru = std::numeric_limits<std::uint64_t>::max();

    for (std::uint32_t w = 0; w < array.numWays(); w++) {
        const CacheLine &line = array.entry(set, w);
        if (!line.valid) {
            if (invalid_way == array.numWays())
                invalid_way = w;
            continue;
        }
        if (line.lruStamp < global_lru) {
            global_lru = line.lruStamp;
            global_way = w;
        }
        const std::uint64_t occ =
            line.vc < vcOccupancy.size() ? vcOccupancy[line.vc] : 0;
        const std::uint64_t tgt = line.vc < vcTarget.size()
            ? vcTarget[line.vc] : unmanagedTarget;
        if (occ > tgt && line.lruStamp < over_budget_lru) {
            over_budget_lru = line.lruStamp;
            over_budget_way = w;
        }
    }
    if (over_budget_way < array.numWays())
        return over_budget_way;
    if (invalid_way < array.numWays())
        return invalid_way;
    return global_way;
}

void
PartitionedBank::noteEviction(const CacheLine &line)
{
    cdcs_assert(line.vc < vcOccupancy.size() && vcOccupancy[line.vc] > 0,
                "eviction from VC with zero occupancy");
    vcOccupancy[line.vc]--;
    totalValid--;
}

bool
PartitionedBank::probeHit(LineAddr addr, VcId vc, TileId core)
{
    CacheLine *line = array.probe(addr);
    if (line == nullptr)
        return false;
    cdcs_assert(line->vc == vc, "line owned by a different VC");
    line->sharers |= 1ull << (core % 64);
    return true;
}

std::uint32_t
PartitionedBank::pickOwnVictim(std::uint32_t set, VcId vc) const
{
    std::uint32_t own_way = array.numWays();
    std::uint64_t own_lru = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t w = 0; w < array.numWays(); w++) {
        const CacheLine &line = array.entry(set, w);
        if (line.valid && line.vc == vc && line.lruStamp < own_lru) {
            own_lru = line.lruStamp;
            own_way = w;
        }
    }
    return own_way;
}

bool
PartitionedBank::atTarget(VcId vc) const
{
    if (vc >= vcTarget.size() || vcTarget[vc] == unmanagedTarget)
        return false;
    return vcOccupancy[vc] >= vcTarget[vc];
}

BankAccessResult
PartitionedBank::insertLine(LineAddr addr, VcId vc,
                            std::uint64_t sharers)
{
    growTables(vc);
    BankAccessResult res;
    const std::uint32_t set = array.setOf(addr);

    std::uint32_t way;
    if (atTarget(vc)) {
        // Vantage churn containment: a partition at its target can
        // only replace its own lines; if it owns none in this set,
        // the fill is dropped rather than displacing another VC.
        way = pickOwnVictim(set, vc);
        if (way >= array.numWays()) {
            res.bypassed = true;
            return res;
        }
    } else {
        way = pickVictim(set, vc);
    }

    CacheLine &victim = array.entry(set, way);
    if (victim.valid) {
        res.evicted = true;
        res.evictedAddr = victim.addr;
        res.evictedVc = victim.vc;
        res.evictedSharers = victim.sharers;
        noteEviction(victim);
    }
    CacheLine &filled = array.install(addr, vc, way);
    filled.sharers = sharers;
    vcOccupancy[vc]++;
    totalValid++;
    return res;
}

BankAccessResult
PartitionedBank::fill(LineAddr addr, VcId vc, TileId core)
{
    return insertLine(addr, vc, 1ull << (core % 64));
}

BankAccessResult
PartitionedBank::access(LineAddr addr, VcId vc, TileId core)
{
    if (probeHit(addr, vc, core)) {
        BankAccessResult res;
        res.hit = true;
        return res;
    }
    return fill(addr, vc, core);
}

bool
PartitionedBank::extractForMove(LineAddr addr, CacheLine &out)
{
    CacheLine *line = array.probe(addr);
    if (line == nullptr)
        return false;
    out = *line;
    noteEviction(*line);
    line->valid = false;
    return true;
}

BankAccessResult
PartitionedBank::installMoved(const CacheLine &moved, VcId vc)
{
    BankAccessResult res = insertLine(moved.addr, vc, moved.sharers);
    if (res.bypassed) {
        // The moved line was dropped at its destination; report its
        // sharers so the caller can account the L2 invalidations.
        res.evictedAddr = moved.addr;
        res.evictedVc = moved.vc;
        res.evictedSharers = moved.sharers;
    }
    return res;
}

bool
PartitionedBank::invalidateLine(LineAddr addr)
{
    CacheLine *line = array.probe(addr);
    if (line == nullptr)
        return false;
    noteEviction(*line);
    line->valid = false;
    return true;
}

void
PartitionedBank::setTarget(VcId vc, std::uint64_t target_lines)
{
    growTables(vc);
    vcTarget[vc] = target_lines;
}

void
PartitionedBank::clearTargets()
{
    for (auto &t : vcTarget)
        t = unmanagedTarget;
}

std::uint64_t
PartitionedBank::occupancy(VcId vc) const
{
    return vc < vcOccupancy.size() ? vcOccupancy[vc] : 0;
}

std::uint64_t
PartitionedBank::target(VcId vc) const
{
    return vc < vcTarget.size() ? vcTarget[vc] : unmanagedTarget;
}

bool
PartitionedBank::walkInvalidate(std::uint32_t num_sets,
                                const std::function<bool(const CacheLine &)>
                                    &should_go,
                                std::uint64_t &invalidated)
{
    for (std::uint32_t i = 0; i < num_sets; i++) {
        if (walkCursor >= array.numSets()) {
            walkCursor = 0;
            return true;
        }
        for (std::uint32_t w = 0; w < array.numWays(); w++) {
            CacheLine &line = array.entry(walkCursor, w);
            if (line.valid && should_go(line)) {
                noteEviction(line);
                line.valid = false;
                invalidated++;
            }
        }
        walkCursor++;
    }
    if (walkCursor >= array.numSets()) {
        walkCursor = 0;
        return true;
    }
    return false;
}

bool
PartitionedBank::walkCollect(std::uint32_t num_sets,
                             const std::function<bool(const CacheLine &)>
                                 &should_go,
                             std::vector<CacheLine> &out)
{
    for (std::uint32_t i = 0; i < num_sets; i++) {
        if (walkCursor >= array.numSets()) {
            walkCursor = 0;
            return true;
        }
        for (std::uint32_t w = 0; w < array.numWays(); w++) {
            CacheLine &line = array.entry(walkCursor, w);
            if (line.valid && should_go(line)) {
                out.push_back(line);
                noteEviction(line);
                line.valid = false;
            }
        }
        walkCursor++;
    }
    if (walkCursor >= array.numSets()) {
        walkCursor = 0;
        return true;
    }
    return false;
}

void
PartitionedBank::invalidateAll()
{
    array.invalidateAll();
    for (auto &occ : vcOccupancy)
        occ = 0;
    totalValid = 0;
    walkCursor = 0;
}

} // namespace cdcs
