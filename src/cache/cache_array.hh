/**
 * @file
 * Set-associative tag array with LRU replacement and per-line metadata
 * (owning virtual cache, sharer bitmask). The base building block for
 * LLC banks.
 */

#ifndef CDCS_CACHE_CACHE_ARRAY_HH
#define CDCS_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cdcs
{

/** One tag-array entry. */
struct CacheLine
{
    LineAddr addr = 0;          ///< Full line address (simulation only).
    VcId vc = invalidVc;        ///< Owning virtual cache / partition.
    std::uint64_t sharers = 0;  ///< Bitmask of cores with an L2 copy.
    std::uint64_t lruStamp = 0; ///< Global timestamp for LRU.
    bool valid = false;
};

/**
 * A sets x ways tag array. Victim selection policy lives in the caller
 * (PartitionedBank); this class only provides probe/insert/invalidate
 * and set iteration primitives.
 */
class CacheArray
{
  public:
    /**
     * @param num_sets Number of sets (power of two).
     * @param num_ways Associativity.
     * @param hash_seed Seed decorrelating the set-index hash from the
     *        hashes used elsewhere (bank selection, monitors).
     */
    CacheArray(std::uint32_t num_sets, std::uint32_t num_ways,
               std::uint64_t hash_seed = 0xC0FFEE);

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint64_t numLines() const { return lines.size(); }

    /** Set index for a line address. */
    std::uint32_t
    setOf(LineAddr addr) const
    {
        return static_cast<std::uint32_t>(mix64(addr ^ seed) & (sets - 1));
    }

    /**
     * Look up a line. Updates LRU on hit.
     * @return Pointer to the line, or nullptr on miss.
     */
    CacheLine *probe(LineAddr addr);

    /** Look up without touching replacement state. */
    const CacheLine *peek(LineAddr addr) const;

    /** Entry (valid or not) at (set, way). */
    CacheLine &entry(std::uint32_t set, std::uint32_t way);
    const CacheLine &entry(std::uint32_t set, std::uint32_t way) const;

    /**
     * Install a line into a given way of its set, overwriting whatever
     * is there. The caller must have chosen the victim beforehand.
     * @return Reference to the installed line.
     */
    CacheLine &install(LineAddr addr, VcId vc, std::uint32_t way);

    /**
     * Invalidate a line if present.
     * @return True if the line was present and valid.
     */
    bool invalidate(LineAddr addr);

    /** Invalidate every line in the array. */
    void invalidateAll();

    /** Count of currently valid lines. */
    std::uint64_t numValid() const;

    /** Advance and return the global LRU clock. */
    std::uint64_t touch() { return ++lruClock; }

  private:
    std::uint32_t sets;
    std::uint32_t ways;
    std::uint64_t seed;
    std::uint64_t lruClock = 0;
    std::vector<CacheLine> lines;
};

} // namespace cdcs

#endif // CDCS_CACHE_CACHE_ARRAY_HH
