/**
 * @file
 * An LLC bank whose capacity is divided among virtual caches at
 * cache-line granularity, in the spirit of Vantage partitioning.
 *
 * Each virtual cache (VC) mapped to the bank has a capacity target; the
 * bank tracks per-VC occupancy and, on insertion, preferentially evicts
 * the LRU candidate belonging to an over-budget VC. This reproduces
 * Vantage's steady-state behaviour (actual occupancies track targets at
 * line granularity, partitions shrink smoothly when targets drop)
 * without modeling its aperture/demotion machinery; the substitution is
 * documented in DESIGN.md.
 *
 * Capacity left unallocated (sum of targets below bank size) is simply
 * never filled: a VC inserting beyond its target becomes the preferred
 * victim itself, so stale ways decay instead of being reused. This is
 * what lets CDCS "leave capacity unused" when extra capacity would hurt
 * on-chip latency (Sec. IV-C).
 */

#ifndef CDCS_CACHE_PARTITIONED_BANK_HH
#define CDCS_CACHE_PARTITIONED_BANK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache_array.hh"
#include "common/types.hh"

namespace cdcs
{

/** Result of a bank access. */
struct BankAccessResult
{
    bool hit = false;
    /// Valid line was evicted to make room (miss fills only).
    bool evicted = false;
    /// The fill was dropped: the VC is at its target and owns no
    /// replaceable line in the set (Vantage churn containment — an
    /// over-budget partition can only victimize itself).
    bool bypassed = false;
    /// Evicted line's metadata (valid when evicted is true).
    LineAddr evictedAddr = 0;
    VcId evictedVc = invalidVc;
    std::uint64_t evictedSharers = 0;
};

/**
 * Partitioned LLC bank. VC ids index the per-VC occupancy/target
 * tables, which are sized up on demand; hardware would cap partitions
 * per bank (64 in the paper), which the reconfiguration runtime
 * respects when building placements.
 */
class PartitionedBank
{
  public:
    /**
     * Target value meaning "unmanaged": the VC is never treated as
     * over-budget. This is the default for VCs that have not been
     * given an explicit target (unpartitioned schemes like S-NUCA and
     * R-NUCA, and the bootstrap configuration before the first
     * reconfiguration), making the bank behave as a plain LRU cache.
     */
    static constexpr std::uint64_t unmanagedTarget =
        ~std::uint64_t{0};

    /**
     * @param num_lines Bank capacity in lines.
     * @param num_ways Associativity.
     * @param hash_seed Set-index hash seed.
     */
    PartitionedBank(std::uint64_t num_lines, std::uint32_t num_ways,
                    std::uint64_t hash_seed = 0xBA4C0DE);

    std::uint64_t numLines() const { return array.numLines(); }
    std::uint32_t numSets() const { return array.numSets(); }
    std::uint32_t numWays() const { return array.numWays(); }

    /**
     * Probe for a line; on a hit, update LRU and record the core as a
     * sharer. Does not fill on a miss (the move protocol may need to
     * chase the line in its old bank first).
     *
     * @return True on hit.
     */
    bool probeHit(LineAddr addr, VcId vc, TileId core);

    /**
     * Fill a line after a miss (from memory). Picks a victim per the
     * partitioning policy and may evict.
     *
     * @param addr Line address.
     * @param vc Virtual cache the line belongs to.
     * @param core Requesting core (recorded as a sharer).
     * @return Eviction information.
     */
    BankAccessResult fill(LineAddr addr, VcId vc, TileId core);

    /**
     * Convenience probe-then-fill access (tests and simple callers).
     * @return Hit/miss and eviction information.
     */
    BankAccessResult access(LineAddr addr, VcId vc, TileId core);

    /**
     * Probe without filling; used by the demand-move protocol to check
     * the old bank. On hit the line is invalidated and its metadata
     * returned (it moves to the new bank).
     *
     * @return True and metadata if the line was present.
     */
    bool extractForMove(LineAddr addr, CacheLine &out);

    /**
     * Install a line that migrated from another bank (demand move),
     * preserving its sharer set. May evict.
     */
    BankAccessResult installMoved(const CacheLine &moved, VcId vc);

    /** Invalidate one line if present. @return True if it was valid. */
    bool invalidateLine(LineAddr addr);

    /** Set the capacity target (in lines) of a VC. */
    void setTarget(VcId vc, std::uint64_t target_lines);

    /** Clear all targets (start of a reconfiguration). */
    void clearTargets();

    /** Current occupancy of a VC in this bank, in lines. */
    std::uint64_t occupancy(VcId vc) const;

    /** Current target of a VC in this bank, in lines. */
    std::uint64_t target(VcId vc) const;

    /** Total valid lines in the bank. */
    std::uint64_t totalOccupancy() const { return totalValid; }

    /**
     * Walk `num_sets` sets starting at the internal walk cursor and
     * invalidate every line for which `should_go` returns true. Models
     * the background/bulk invalidation walkers.
     *
     * @param num_sets Sets to examine in this step.
     * @param should_go Predicate deciding if a line must leave.
     * @param invalidated Incremented per invalidated line.
     * @return True when the cursor wrapped (walk complete).
     */
    bool walkInvalidate(std::uint32_t num_sets,
                        const std::function<bool(const CacheLine &)>
                            &should_go,
                        std::uint64_t &invalidated);

    /**
     * Like walkInvalidate, but extracts matching lines into `out`
     * (with their metadata) instead of dropping them, so the caller
     * can reinstall them elsewhere (background moves, Sec. IV-H).
     *
     * @return True when the cursor wrapped (walk complete).
     */
    bool walkCollect(std::uint32_t num_sets,
                     const std::function<bool(const CacheLine &)>
                         &should_go,
                     std::vector<CacheLine> &out);

    /** Reset the walk cursor to set 0. */
    void resetWalk() { walkCursor = 0; }

    /** Invalidate all lines (used by tests and full resets). */
    void invalidateAll();

    /** Direct read-only access for tests and debugging tools. */
    const CacheArray &rawArray() const { return array; }

  private:
    /** Ensure per-VC tables can index vc. */
    void growTables(VcId vc);

    /**
     * Pick a victim way in `set` for an insertion by `vc`:
     * 1. LRU among lines of over-budget VCs (occupancy > target);
     * 2. any invalid way;
     * 3. global LRU of the set.
     */
    std::uint32_t pickVictim(std::uint32_t set, VcId vc);

    /** LRU way holding one of `vc`'s own lines (numWays if none). */
    std::uint32_t pickOwnVictim(std::uint32_t set, VcId vc) const;

    /** True when the VC is managed and at/over its target. */
    bool atTarget(VcId vc) const;

    /** Shared insert path for fills and moved-in lines. */
    BankAccessResult insertLine(LineAddr addr, VcId vc,
                                std::uint64_t sharers);

    /** Bookkeeping for removing a valid line. */
    void noteEviction(const CacheLine &line);

    CacheArray array;
    std::vector<std::uint64_t> vcOccupancy;
    std::vector<std::uint64_t> vcTarget;
    std::uint64_t totalValid = 0;
    std::uint32_t walkCursor = 0;
};

} // namespace cdcs

#endif // CDCS_CACHE_PARTITIONED_BANK_HH
