#include "cache/cache_array.hh"

#include "common/log.hh"

namespace cdcs
{

CacheArray::CacheArray(std::uint32_t num_sets, std::uint32_t num_ways,
                       std::uint64_t hash_seed)
    : sets(num_sets), ways(num_ways), seed(hash_seed)
{
    cdcs_assert(sets > 0 && (sets & (sets - 1)) == 0,
                "set count must be a power of two");
    cdcs_assert(ways > 0, "associativity must be positive");
    lines.resize(static_cast<std::size_t>(sets) * ways);
}

CacheLine *
CacheArray::probe(LineAddr addr)
{
    const std::uint32_t set = setOf(addr);
    CacheLine *base = &lines[static_cast<std::size_t>(set) * ways];
    for (std::uint32_t w = 0; w < ways; w++) {
        CacheLine &line = base[w];
        if (line.valid && line.addr == addr) {
            line.lruStamp = touch();
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
CacheArray::peek(LineAddr addr) const
{
    const std::uint32_t set = setOf(addr);
    const CacheLine *base = &lines[static_cast<std::size_t>(set) * ways];
    for (std::uint32_t w = 0; w < ways; w++) {
        const CacheLine &line = base[w];
        if (line.valid && line.addr == addr)
            return &line;
    }
    return nullptr;
}

CacheLine &
CacheArray::entry(std::uint32_t set, std::uint32_t way)
{
    return lines[static_cast<std::size_t>(set) * ways + way];
}

const CacheLine &
CacheArray::entry(std::uint32_t set, std::uint32_t way) const
{
    return lines[static_cast<std::size_t>(set) * ways + way];
}

CacheLine &
CacheArray::install(LineAddr addr, VcId vc, std::uint32_t way)
{
    const std::uint32_t set = setOf(addr);
    CacheLine &line = entry(set, way);
    line.addr = addr;
    line.vc = vc;
    line.sharers = 0;
    line.valid = true;
    line.lruStamp = touch();
    return line;
}

bool
CacheArray::invalidate(LineAddr addr)
{
    const std::uint32_t set = setOf(addr);
    CacheLine *base = &lines[static_cast<std::size_t>(set) * ways];
    for (std::uint32_t w = 0; w < ways; w++) {
        CacheLine &line = base[w];
        if (line.valid && line.addr == addr) {
            line.valid = false;
            return true;
        }
    }
    return false;
}

void
CacheArray::invalidateAll()
{
    for (CacheLine &line : lines)
        line.valid = false;
}

std::uint64_t
CacheArray::numValid() const
{
    std::uint64_t count = 0;
    for (const CacheLine &line : lines)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace cdcs
