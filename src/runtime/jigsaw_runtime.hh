/**
 * @file
 * The Jigsaw runtime [Beckmann & Sanchez, PACT'13]: the baseline CDCS
 * is built on. It sizes VCs from miss curves alone (latency-oblivious
 * Peekahead), places data greedily around the current (fixed) thread
 * positions, and never places threads. Expressed as a configuration of
 * the CDCS machinery with every CDCS technique disabled.
 */

#ifndef CDCS_RUNTIME_JIGSAW_RUNTIME_HH
#define CDCS_RUNTIME_JIGSAW_RUNTIME_HH

#include "runtime/cdcs_runtime.hh"

namespace cdcs
{

/** Jigsaw: miss-curve allocation + greedy placement, threads pinned. */
class JigsawRuntime : public CdcsRuntime
{
  public:
    JigsawRuntime() : CdcsRuntime(jigsawOptions()) {}

  private:
    static CdcsOptions
    jigsawOptions()
    {
        CdcsOptions opts;
        opts.latencyAwareAlloc = false;
        opts.placeThreads = false;
        opts.refineTrades = false;
        return opts;
    }
};

} // namespace cdcs

#endif // CDCS_RUNTIME_JIGSAW_RUNTIME_HH
