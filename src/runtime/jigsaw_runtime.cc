// JigsawRuntime is header-only (a configuration of CdcsRuntime); this
// translation unit anchors the library target.
#include "runtime/jigsaw_runtime.hh"
