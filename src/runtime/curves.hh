/**
 * @file
 * Construction of the total-latency curves that drive latency-aware
 * capacity allocation (Sec. IV-C): off-chip latency from the monitor
 * miss curve plus an *optimistic* on-chip latency term obtained by
 * compactly placing the allocation around the chip's center (Fig. 6).
 */

#ifndef CDCS_RUNTIME_CURVES_HH
#define CDCS_RUNTIME_CURVES_HH

#include "common/curve.hh"
#include "mesh/mesh.hh"
#include "runtime/placement_cost.hh"

namespace cdcs
{

/** Latency constants used to turn misses/accesses into cycles. */
struct LatencyModel
{
    /** Router + link, one direction (default mirrors NocConfig: the
     *  config is the single source of truth for hop timing). */
    double hopCycles =
        static_cast<double>(NocConfig{}.routerCycles +
                            NocConfig{}.linkCycles);
    double bankAccessCycles = 9.0;
    double memAccessCycles = 120.0;

    /** Round-trip network cycles for an access spanning `d` hops. */
    double
    onChipRoundTrip(double d) const
    {
        return 2.0 * hopCycles * d;
    }
};

/**
 * Total memory latency curve for one VC (Eq. 1 + Eq. 2 under the
 * optimistic compact placement): for allocation s,
 *
 *   L(s) = misses(s) * (mem + avg-mem-net) +
 *          accesses  * (bank + round-trip(optimisticDistance(s)))
 *
 * @param miss_curve Monitor miss curve (x lines, y misses/epoch).
 * @param accesses VC accesses this epoch.
 * @param mesh Topology (for optimistic distances).
 * @param tile_capacity_lines LLC lines per tile.
 * @param lat Latency constants.
 * @param latency_aware When false, only the off-chip term is used
 *        (Jigsaw-style, miss-curve-driven allocation).
 * @param cost Effective-distance oracle; null (or a non-contended
 *        snapshot) reproduces the zero-load Mesh arithmetic exactly.
 */
Curve totalLatencyCurve(const Curve &miss_curve, double accesses,
                        const Mesh &mesh, double tile_capacity_lines,
                        const LatencyModel &lat, bool latency_aware,
                        const PlacementCostModel *cost = nullptr);

} // namespace cdcs

#endif // CDCS_RUNTIME_CURVES_HH
