/**
 * @file
 * Recursive-bisection co-placement: the graph-partitioning comparator
 * of Sec. VI-C (the paper uses METIS). Threads and their VC capacity
 * are recursively split across halves of the chip, minimizing the
 * access weight that crosses each cut. The paper observes this family
 * always splits around the chip center and cannot cluster one app at
 * the center, losing ~2.5% network latency vs. CDCS — the bench
 * harness reproduces that comparison.
 */

#ifndef CDCS_RUNTIME_BISECT_HH
#define CDCS_RUNTIME_BISECT_HH

#include "runtime/cdcs_runtime.hh"

namespace cdcs
{

/**
 * A runtime that allocates like CDCS (latency-aware Peekahead) but
 * places threads and data by recursive bisection.
 */
class BisectRuntime : public CdcsRuntime
{
  public:
    explicit BisectRuntime(CdcsOptions opts = {}) : CdcsRuntime(opts) {}

    RuntimeOutput reconfigure(const RuntimeInput &input) override;
};

} // namespace cdcs

#endif // CDCS_RUNTIME_BISECT_HH
