#include "runtime/schedulers.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace cdcs
{

std::vector<TileId>
randomSchedule(int num_threads, int num_cores, Rng &rng)
{
    cdcs_assert(num_threads <= num_cores, "more threads than cores");
    std::vector<TileId> cores(num_cores);
    std::iota(cores.begin(), cores.end(), 0);
    // Fisher-Yates partial shuffle.
    for (int i = 0; i < num_threads; i++) {
        const auto j =
            i + static_cast<int>(rng.below(num_cores - i));
        std::swap(cores[i], cores[j]);
    }
    cores.resize(num_threads);
    return cores;
}

std::vector<TileId>
clusteredSchedule(const std::vector<ProcId> &thread_proc, int num_cores)
{
    cdcs_assert(static_cast<int>(thread_proc.size()) <= num_cores,
                "more threads than cores");
    // Stable-sort threads by process, then assign consecutive cores.
    std::vector<std::size_t> order(thread_proc.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return thread_proc[a] < thread_proc[b];
                     });
    std::vector<TileId> assignment(thread_proc.size());
    TileId next = 0;
    for (std::size_t t : order)
        assignment[t] = next++;
    return assignment;
}

} // namespace cdcs
