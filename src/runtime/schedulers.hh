/**
 * @file
 * Initial thread schedulers: the fixed policies CDCS's dynamic thread
 * placement is compared against (Sec. II-B, Sec. VI). Random spreads
 * capacity contention blindly; clustered packs each process's threads
 * onto contiguous tiles (good for shared-heavy multithreaded apps,
 * pathological for capacity-hungry single-threaded mixes).
 */

#ifndef CDCS_RUNTIME_SCHEDULERS_HH
#define CDCS_RUNTIME_SCHEDULERS_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace cdcs
{

/** Random placement: threads pinned to a random sample of cores. */
std::vector<TileId> randomSchedule(int num_threads, int num_cores,
                                   Rng &rng);

/**
 * Clustered placement: processes occupy consecutive cores in row-major
 * order (the Jigsaw+C configuration).
 *
 * @param thread_proc thread_proc[t]: process of thread t.
 * @param num_cores Cores available.
 */
std::vector<TileId> clusteredSchedule(const std::vector<ProcId>
                                          &thread_proc,
                                      int num_cores);

} // namespace cdcs

#endif // CDCS_RUNTIME_SCHEDULERS_HH
