/**
 * @file
 * The placement cost oracle: a per-epoch snapshot of the NoC's
 * *effective* distances consumed by the reconfiguration runtime
 * (Sec. IV). The paper prices every hop at a flat hopCycles, which is
 * exact under the zero-load mesh but blind to congestion; with a
 * contention-aware network model the runtime should steer VCs and
 * threads away from saturated links, the extension Jigsaw/CDCS argue
 * for and the ROADMAP tracked as open.
 *
 * The oracle answers the same four distance queries the CDCS steps
 * used to compute from raw Mesh arithmetic — tile-pair distance,
 * distance to a fractional point, mean memory-network distance, and
 * the optimistic compact-placement distance — in *hop-equivalent*
 * units: zero-load hops plus the NoC's measured per-route queueing
 * wait divided by hopCycles. Under a model that reports no waits
 * (ZeroLoadNoc, or ContentionNoc before the first epoch update) every
 * query falls through to the exact legacy Mesh expression, so the
 * default configuration stays byte-identical to the pre-oracle
 * simulator.
 */

#ifndef CDCS_RUNTIME_PLACEMENT_COST_HH
#define CDCS_RUNTIME_PLACEMENT_COST_HH

#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"

namespace cdcs
{

class NocModel;

/** Effective-distance snapshot for one reconfiguration. */
class PlacementCostModel
{
  public:
    /** Invalid (unqueried) model; assign before use. */
    PlacementCostModel() = default;

    /** Zero-wait oracle: every query is the plain Mesh arithmetic. */
    PlacementCostModel(const Mesh &mesh, double hop_cycles)
        : topo(&mesh), hopCycles(hop_cycles)
    {
    }

    /**
     * Snapshot the NoC's current per-route waits (NocModel::pathWait
     * / memPathWait, as refreshed by the last epochUpdate). If every
     * wait is zero the snapshot degenerates to the zero-wait oracle.
     *
     * `prev`/`alpha` EWMA-blend the raw waits with the previous
     * epoch's snapshot (alpha = weight of the new measurement, like
     * SystemConfig::monitorSmoothing): placement feeds back into the
     * waits it is priced on, and the loop only converges if the
     * signal is damped the same way the monitor inputs are. The
     * blended waits are then quantized to quarter-hops, so noise
     * defers to the placement pipeline's deterministic tie-breaks.
     */
    static PlacementCostModel fromNoc(const NocModel &noc,
                                      double hop_cycles,
                                      const PlacementCostModel *prev =
                                          nullptr,
                                      double alpha = 1.0);

    bool valid() const { return topo != nullptr; }

    /** True when any route carries a nonzero queueing wait. */
    bool contended() const { return contendedWaits; }

    /** Per-hop cycles the wait terms are normalized by. */
    double hopCost() const { return hopCycles; }

    /** Effective tile-pair distance (hops + wait/hopCycles). */
    double
    tileDist(TileId a, TileId b) const
    {
        const double d = topo->hops(a, b);
        if (!contendedWaits)
            return d;
        return d + pairWaitHops[static_cast<std::size_t>(a) *
                                    static_cast<std::size_t>(
                                        topo->numTiles()) +
                                static_cast<std::size_t>(b)];
    }

    /**
     * Effective distance from a tile to a fractional (x, y) point:
     * the geometric distance plus the wait on the route to the tile
     * nearest the point (centers of mass / anchors are tile-scale
     * aggregates, so the nearest tile's route is the representative
     * congestion sample).
     */
    double
    distanceToPoint(TileId tile, double x, double y) const
    {
        const double d = topo->distanceToPoint(tile, x, y);
        if (!contendedWaits)
            return d;
        return d + pairWaitHops[static_cast<std::size_t>(tile) *
                                    static_cast<std::size_t>(
                                        topo->numTiles()) +
                                static_cast<std::size_t>(
                                    nearestTile(x, y))];
    }

    /**
     * Mean effective memory-network distance from a tile (over the
     * page-interleaved controllers, attach links included).
     */
    double
    avgMemDist(TileId tile) const
    {
        const double d = topo->avgHopsToMemCtrl(tile);
        if (!contendedWaits)
            return d;
        return d + memWaitHops[static_cast<std::size_t>(tile)];
    }

    /**
     * Optimistic compact-placement distance (Fig. 6), inflated by the
     * chip's flit-weighted mean per-hop wait: the optimistic placement
     * has no location yet, so the chip-wide average congestion is the
     * only consistent estimate.
     */
    double
    optimisticDistance(double banks) const
    {
        const double d = topo->optimisticDistance(banks);
        if (!contendedWaits)
            return d;
        return d * (1.0 + meanWaitPerHop);
    }

    const Mesh &mesh() const { return *topo; }

  private:
    /** Tile nearest a fractional point (round + clamp). */
    TileId nearestTile(double x, double y) const;

    const Mesh *topo = nullptr;
    double hopCycles = 1.0;
    bool contendedWaits = false;
    /** Quantized pathWait(a, b) / hopCycles, indexed
     *  a * numTiles + b; what the distance queries consume. */
    std::vector<double> pairWaitHops;
    /** Quantized mean over controllers of memPathWait / hopCycles,
     *  per tile. */
    std::vector<double> memWaitHops;
    /** Quantized flit-weighted mean link wait / hopCycles. */
    double meanWaitPerHop = 0.0;

    // Unquantized (EWMA-blended) waits, kept only so the next
    // epoch's snapshot can blend against them.
    std::vector<double> rawPairWaitHops;
    std::vector<double> rawMemWaitHops;
    double rawMeanWaitPerHop = 0.0;
};

} // namespace cdcs

#endif // CDCS_RUNTIME_PLACEMENT_COST_HH
