#include "runtime/optimistic_placer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/stats.hh"

namespace cdcs
{

OptimisticPlacement
optimisticPlace(const std::vector<double> &sizes, const Mesh &mesh,
                double tile_capacity_lines,
                const std::vector<double> &prefer_x,
                const std::vector<double> &prefer_y,
                const PlacementCostModel *cost)
{
    // Effective distances: zero-load hops unless a contended cost
    // oracle is supplied (then footprint spread and anchor affinity
    // are charged the measured route waits as extra hops).
    const auto tile_dist = [&](TileId a, TileId b) {
        return cost != nullptr
            ? cost->tileDist(a, b)
            : static_cast<double>(mesh.hops(a, b));
    };
    const auto point_dist = [&](TileId t, double x, double y) {
        return cost != nullptr ? cost->distanceToPoint(t, x, y)
                               : mesh.distanceToPoint(t, x, y);
    };
    const std::size_t num_vcs = sizes.size();
    const int num_tiles = mesh.numTiles();
    OptimisticPlacement out;
    out.comX.assign(num_vcs, (mesh.width() - 1) / 2.0);
    out.comY.assign(num_vcs, (mesh.height() - 1) / 2.0);

    // Largest VCs first: they cause the most contention (Sec. IV-D).
    std::vector<std::size_t> order(num_vcs);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return logBucket(sizes[a]) >
                             logBucket(sizes[b]);
                     });

    std::vector<double> claimed(num_tiles, 0.0);
    for (std::size_t d : order) {
        if (sizes[d] <= 0.0)
            continue;
        const double tiles_needed = sizes[d] / tile_capacity_lines;
        const int whole = static_cast<int>(std::floor(tiles_needed));
        const double frac = tiles_needed - whole;
        const int footprint =
            std::min(num_tiles, whole + (frac > 0.0 ? 1 : 0));

        // Find the center tile with the least claimed capacity under
        // the VC's compact footprint. Ties (e.g., an empty chip for
        // the first VC) break toward the most compact footprint, so
        // large VCs gravitate to the chip center (Sec. VI-C notes
        // CDCS often clusters one app around the center).
        TileId best_tile = 0;
        double best_contention = std::numeric_limits<double>::max();
        double best_affinity = std::numeric_limits<double>::max();
        double best_spread = std::numeric_limits<double>::max();
        double best_centrality = std::numeric_limits<double>::max();
        const double chip_cx = (mesh.width() - 1) / 2.0;
        const double chip_cy = (mesh.height() - 1) / 2.0;
        const double px = d < prefer_x.size() ? prefer_x[d] : chip_cx;
        const double py = d < prefer_y.size() ? prefer_y[d] : chip_cy;
        // Contention is quantized to quarter-tiles so that noise-level
        // differences defer to the anchor-affinity tie-break.
        const double quantum = tile_capacity_lines / 4.0;
        for (TileId center = 0; center < num_tiles; center++) {
            const auto &near = mesh.tilesByDistance(center);
            double contention = 0.0;
            double spread = 0.0;
            for (int i = 0; i < footprint; i++) {
                contention += claimed[near[i]];
                spread += tile_dist(center, near[i]);
            }
            contention = std::floor(contention / quantum);
            const double affinity = point_dist(center, px, py);
            const double centrality =
                mesh.distanceToPoint(center, chip_cx, chip_cy);
            const bool better = contention < best_contention ||
                (contention == best_contention &&
                 (affinity < best_affinity ||
                  (affinity == best_affinity &&
                   (spread < best_spread ||
                    (spread == best_spread &&
                     centrality < best_centrality)))));
            if (better) {
                best_contention = contention;
                best_affinity = affinity;
                best_spread = spread;
                best_centrality = centrality;
                best_tile = center;
            }
        }

        // Claim the footprint (capacity constraints relaxed) and
        // record the claimed-weighted center of mass.
        const auto &near = mesh.tilesByDistance(best_tile);
        double remaining = tiles_needed;
        double cx = 0.0, cy = 0.0, weight = 0.0;
        for (int i = 0; i < footprint && remaining > 0.0; i++) {
            const double share = std::min(1.0, remaining);
            claimed[near[i]] += share * tile_capacity_lines;
            const MeshCoord c = mesh.coordOf(near[i]);
            cx += share * c.x;
            cy += share * c.y;
            weight += share;
            remaining -= share;
        }
        if (weight > 0.0) {
            out.comX[d] = cx / weight;
            out.comY[d] = cy / weight;
        }
    }
    return out;
}

} // namespace cdcs
