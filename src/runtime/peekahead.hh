/**
 * @file
 * Peekahead capacity allocation [Jigsaw, PACT'13]: an efficient, exact
 * implementation of UCP's Lookahead over the convex hulls of the
 * per-VC curves. Because allocating along a curve's lower convex hull
 * always takes the step with the best claimed marginal utility,
 * greedily draining a priority queue of hull segments reproduces
 * Lookahead's allocation in O(S log D) instead of O(S^2).
 *
 * With total-latency curves (Sec. IV-C) the hull can turn upward:
 * segments with non-negative slope never reduce latency, so when
 * `allow_unused` is set the allocator stops there and leaves the
 * remaining capacity unallocated ("it is sometimes better to leave
 * cache capacity unused").
 */

#ifndef CDCS_RUNTIME_PEEKAHEAD_HH
#define CDCS_RUNTIME_PEEKAHEAD_HH

#include <vector>

#include "common/curve.hh"

namespace cdcs
{

/**
 * Allocate capacity among VCs to minimize the summed curve values.
 *
 * @param curves Per-VC cost curves (lower is better; x in lines).
 * @param total_capacity Capacity budget in lines.
 * @param allow_unused Stop at non-negative marginal cost (CDCS) or
 *        keep allocating any capacity with non-positive marginal cost
 *        until the budget is gone (Jigsaw never benefits from holding
 *        capacity back because miss curves are monotone).
 * @param granule Round allocations down to multiples of this many
 *        lines (bank granularity for non-partitioned NUCA).
 * @return Per-VC allocations in lines; sum <= total_capacity.
 */
std::vector<double> peekaheadAllocate(const std::vector<Curve> &curves,
                                      double total_capacity,
                                      bool allow_unused,
                                      double granule = 1.0);

} // namespace cdcs

#endif // CDCS_RUNTIME_PEEKAHEAD_HH
