#include "runtime/thread_placer.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/stats.hh"

#include "common/log.hh"

namespace cdcs
{

std::vector<TileId>
placeThreads(const OptimisticPlacement &placement,
             const std::vector<std::vector<double>> &access,
             const std::vector<double> &sizes, const Mesh &mesh,
             const std::vector<TileId> &current,
             const PlacementCostModel *cost_model)
{
    const std::size_t num_threads = access.size();
    const std::size_t num_vcs = sizes.size();
    cdcs_assert(num_threads <= static_cast<std::size_t>(mesh.numTiles()),
                "more threads than cores");

    // Effective distance to a VC's center of mass: zero-load unless a
    // contended cost oracle is supplied (then routes through
    // saturated links price their measured waits as extra hops).
    const auto point_dist = [&](TileId core, double x, double y) {
        return cost_model != nullptr
            ? cost_model->distanceToPoint(core, x, y)
            : mesh.distanceToPoint(core, x, y);
    };

    // Order threads by descending intensity-capacity product.
    std::vector<double> priority(num_threads, 0.0);
    for (std::size_t t = 0; t < num_threads; t++) {
        for (std::size_t d = 0; d < num_vcs; d++)
            priority[t] += access[t][d] * sizes[d];
    }
    std::vector<std::size_t> order(num_threads);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return logBucket(priority[a]) >
                             logBucket(priority[b]);
                     });

    std::vector<TileId> assignment(num_threads, invalidTile);
    std::vector<bool> taken(mesh.numTiles(), false);
    for (std::size_t t : order) {
        TileId best_core = invalidTile;
        double best_cost = std::numeric_limits<double>::max();
        for (TileId core = 0; core < mesh.numTiles(); core++) {
            if (taken[core])
                continue;
            double cost = 0.0;
            for (std::size_t d = 0; d < num_vcs; d++) {
                if (access[t][d] <= 0.0)
                    continue;
                cost += access[t][d] *
                    point_dist(core, placement.comX[d],
                               placement.comY[d]);
            }
            // Hysteresis: keep the thread's current core unless the
            // move wins by a few percent; placements (and therefore
            // VC descriptors) must not churn on monitor noise. The
            // discount cannot break exact ties (0.95 * 0 is still 0,
            // so an idle thread's cost ties at zero on every free
            // core), so ties break toward the current core
            // explicitly.
            const bool is_current =
                t < current.size() && current[t] == core;
            if (is_current)
                cost *= 0.95;
            if (cost < best_cost || (is_current && cost == best_cost)) {
                best_cost = cost;
                best_core = core;
            }
        }
        cdcs_assert(best_core != invalidTile, "no free core found");
        assignment[t] = best_core;
        taken[best_core] = true;
    }

    // Migration guard: moving threads is never free (their data is
    // placed around them and must follow). Keep the current placement
    // unless the new one wins by a few percent of modeled on-chip
    // cost.
    if (current.size() == num_threads) {
        auto total_cost = [&](const std::vector<TileId> &cores) {
            double cost = 0.0;
            for (std::size_t t = 0; t < num_threads; t++) {
                for (std::size_t d = 0; d < num_vcs; d++) {
                    if (access[t][d] <= 0.0)
                        continue;
                    cost += access[t][d] *
                        point_dist(cores[t], placement.comX[d],
                                   placement.comY[d]);
                }
            }
            return cost;
        };
        const double new_cost = total_cost(assignment);
        const double old_cost = total_cost(current);
        if (new_cost > 0.97 * old_cost)
            return current;
    }
    return assignment;
}

} // namespace cdcs
