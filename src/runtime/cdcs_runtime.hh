/**
 * @file
 * The CDCS reconfiguration runtime (Sec. IV, Fig. 4): the OS-level
 * procedure invoked every epoch that turns monitor miss curves into a
 * joint thread-and-data placement via four steps:
 *
 *   1. latency-aware capacity allocation (Peekahead over
 *      total-latency curves, Sec. IV-C);
 *   2. optimistic contention-aware VC placement (Sec. IV-D);
 *   3. thread placement at data centers of mass (Sec. IV-E);
 *   4. refined VC placement with capacity trading (Sec. IV-F).
 *
 * The steps are individually switchable to support the paper's factor
 * analysis (Fig. 12: +L, +T, +D, +LTD) and to express Jigsaw (all
 * off) as a configuration of the same machinery.
 */

#ifndef CDCS_RUNTIME_CDCS_RUNTIME_HH
#define CDCS_RUNTIME_CDCS_RUNTIME_HH

#include "nuca/policy.hh"
#include "runtime/curves.hh"
#include "runtime/refined_placer.hh"

namespace cdcs
{

/** Which CDCS techniques are enabled on top of the Jigsaw baseline. */
struct CdcsOptions
{
    /** Step 1 uses total-latency curves instead of miss curves. */
    bool latencyAwareAlloc = true;

    /** Steps 2-3: optimistic placement + thread placement. */
    bool placeThreads = true;

    /** Step 4 runs the trading pass after greedy placement. */
    bool refineTrades = true;

    /** Minimum lines granted to any VC with traffic. */
    double minAllocLines = 64.0;

    /**
     * Size hysteresis: keep a VC's previous size when the newly
     * computed one differs by less than this fraction. Allocation is
     * driven by sampled (noisy) miss curves; without hysteresis the
     * whole placement pipeline reshuffles every epoch and the moved
     * data costs far more than the capacity imprecision.
     */
    double sizeHysteresis = 0.15;

    /** Placement granule in lines. */
    double placeGranule = 256.0;
};

/** The CDCS runtime. */
class CdcsRuntime : public ReconfigRuntime
{
  public:
    explicit CdcsRuntime(CdcsOptions opts = {}) : options(opts) {}

    RuntimeOutput reconfigure(const RuntimeInput &input) override;

    const CdcsOptions &opts() const { return options; }

  protected:
    /**
     * Step 1: capacity allocation. Exposed to subclasses so the
     * Sec. VI-C comparators can reuse it and replace placement.
     * Stateful: applies size hysteresis against the previous epoch.
     */
    std::vector<double> allocate(const RuntimeInput &input);

    /** Expand a per-tile allocation into per-bank rows. */
    static std::vector<std::vector<double>>
    tilesToBanks(const std::vector<std::vector<double>> &tile_alloc,
                 int banks_per_tile, std::uint64_t bank_lines);

    CdcsOptions options;

  private:
    /** Previous epoch's sizes (for hysteresis). */
    std::vector<double> prevSizes;
};

} // namespace cdcs

#endif // CDCS_RUNTIME_CDCS_RUNTIME_HH
