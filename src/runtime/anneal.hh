/**
 * @file
 * Simulated-annealing comparators (Sec. VI-C): expensive stochastic
 * search over thread placements and data placements, standing in for
 * the paper's Gurobi ILP formulation (see DESIGN.md). The paper's
 * point — the cheap CDCS heuristics come within ~1% of these — is what
 * the bench harness checks.
 */

#ifndef CDCS_RUNTIME_ANNEAL_HH
#define CDCS_RUNTIME_ANNEAL_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "mesh/mesh.hh"
#include "runtime/cdcs_runtime.hh"

namespace cdcs
{

/**
 * Anneal a thread placement against the Eq. 2 on-chip cost, keeping
 * the data placement fixed.
 *
 * @param alloc alloc[d][tile] lines.
 * @param sizes Per-VC total lines.
 * @param access access[t][d] accesses.
 * @param start Initial assignment.
 * @param mesh Topology.
 * @param iterations Swap proposals (the paper uses 5000).
 * @param rng RNG.
 * @return Improved thread placement.
 */
std::vector<TileId>
annealThreads(const std::vector<std::vector<double>> &alloc,
              const std::vector<double> &sizes,
              const std::vector<std::vector<double>> &access,
              std::vector<TileId> start, const Mesh &mesh,
              int iterations, Rng &rng);

/**
 * Anneal a data placement (granule swaps between tiles) against
 * Eq. 2, keeping threads fixed. The ILP-data-placement stand-in.
 *
 * @param granule Lines moved per proposal.
 */
std::vector<std::vector<double>>
annealData(std::vector<std::vector<double>> alloc,
           const std::vector<double> &sizes,
           const std::vector<std::vector<double>> &access,
           const std::vector<TileId> &thread_core, const Mesh &mesh,
           double tile_capacity_lines, double granule, int iterations,
           Rng &rng);

/**
 * A CDCS runtime whose thread placement is post-processed by
 * simulated annealing (the Sec. VI-C "SA thread placer").
 */
class AnnealingRuntime : public CdcsRuntime
{
  public:
    AnnealingRuntime(CdcsOptions opts, int iterations,
                     std::uint64_t seed)
        : CdcsRuntime(opts), saIterations(iterations), rng(seed)
    {
    }

    RuntimeOutput reconfigure(const RuntimeInput &input) override;

  private:
    int saIterations;
    Rng rng;
};

} // namespace cdcs

#endif // CDCS_RUNTIME_ANNEAL_HH
