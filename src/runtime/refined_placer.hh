/**
 * @file
 * Refined VC placement (Sec. IV-F): with thread locations known, first
 * greedily round-robin VCs into the banks closest to their accessors
 * (Jigsaw's placement), then run CDCS's bounded trading pass: each VC
 * spirals outward from its center of mass, collecting desirable banks
 * and offering capacity trades that reduce summed access latency
 * (Fig. 8). A trade between VC1 at bank b1 and VC2 at bank b2 is
 * accepted when
 *
 *   (A1/S1) (D(1,b2) - D(1,b1)) + (A2/S2) (D(2,b1) - D(2,b2)) < 0
 *
 * where D(i,b) is VC i's access-weighted distance to bank b.
 */

#ifndef CDCS_RUNTIME_REFINED_PLACER_HH
#define CDCS_RUNTIME_REFINED_PLACER_HH

#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"
#include "runtime/placement_cost.hh"

namespace cdcs
{

/** Tunables for the refined placer. */
struct RefinedPlacerConfig
{
    /** Placement granule in lines. */
    double granule = 256.0;

    /** Run the trading pass (CDCS) or stop after greedy (Jigsaw). */
    bool trades = true;

    /**
     * Minimum per-line gain (in hops, scaled by the participants'
     * intensities) a trade must achieve. Marginal trades are noise:
     * accepting them reshuffles placements between epochs, and every
     * reshuffle costs moves/invalidations.
     */
    double tradeThresholdHops = 0.05;
};

/** Access-weighted per-VC accessor positions. */
struct VcAnchors
{
    std::vector<double> x;
    std::vector<double> y;
    std::vector<double> totalAccess;
};

/**
 * Compute each VC's anchor: the access-weighted center of its
 * accessing cores, quantized to quarter-tiles for epoch-to-epoch
 * stability. VCs without accesses anchor at the chip center.
 */
VcAnchors computeVcAnchors(const std::vector<std::vector<double>>
                               &access,
                           const std::vector<TileId> &thread_core,
                           const Mesh &mesh, std::size_t num_vcs);

/**
 * Place VC capacity into tiles.
 *
 * @param sizes Per-VC allocation in lines.
 * @param access access[t][d] accesses of thread t to VC d.
 * @param thread_core Thread-to-core assignment.
 * @param mesh Topology.
 * @param tile_capacity_lines LLC lines per tile.
 * @param cfg Tunables.
 * @param cost Effective-distance oracle: the per-VC tile distances
 *        that drive visit order, greedy fill and trades are computed
 *        in effective hops (zero-load hops + measured route waits).
 *        Null (or a non-contended snapshot) is the zero-load
 *        arithmetic.
 * @return alloc[d][tile] lines (callers split tiles into banks).
 */
std::vector<std::vector<double>>
refinePlace(const std::vector<double> &sizes,
            const std::vector<std::vector<double>> &access,
            const std::vector<TileId> &thread_core, const Mesh &mesh,
            double tile_capacity_lines,
            const RefinedPlacerConfig &cfg = {},
            const PlacementCostModel *cost = nullptr);

/**
 * Estimated total on-chip latency (hop-weighted accesses, Eq. 2) of an
 * allocation; the objective the trading pass reduces. Also used by the
 * annealing/bisection comparators (Sec. VI-C).
 */
double onChipCost(const std::vector<std::vector<double>> &alloc,
                  const std::vector<double> &sizes,
                  const std::vector<std::vector<double>> &access,
                  const std::vector<TileId> &thread_core,
                  const Mesh &mesh);

} // namespace cdcs

#endif // CDCS_RUNTIME_REFINED_PLACER_HH
