#include "runtime/peekahead.hh"

#include <cmath>
#include <queue>

#include "common/log.hh"

namespace cdcs
{

namespace
{

/** One pending hull segment of one VC's cost curve. */
struct Segment
{
    double slope;       ///< Cost change per line (negative = good).
    std::size_t vc;
    std::size_t nextIdx;///< Hull point index this segment ends at.
    double fromX;
    double toX;

    bool
    operator>(const Segment &other) const
    {
        return slope > other.slope;
    }
};

} // anonymous namespace

std::vector<double>
peekaheadAllocate(const std::vector<Curve> &curves, double total_capacity,
                  bool /*allow_unused*/, double granule)
{
    const std::size_t num_vcs = curves.size();
    std::vector<double> alloc(num_vcs, 0.0);
    std::vector<Curve> hulls;
    hulls.reserve(num_vcs);
    for (const Curve &c : curves)
        hulls.push_back(c.convexHull());

    std::priority_queue<Segment, std::vector<Segment>,
                        std::greater<Segment>> queue;
    auto push_next = [&](std::size_t vc, std::size_t idx) {
        const Curve &hull = hulls[vc];
        if (idx + 1 >= hull.size())
            return;
        const CurvePoint &a = hull[idx];
        const CurvePoint &b = hull[idx + 1];
        queue.push({(b.y - a.y) / (b.x - a.x), vc, idx + 1, a.x, b.x});
    };
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (!hulls[d].empty())
            push_next(d, 0);
    }

    double remaining = total_capacity;
    while (remaining > 0.0 && !queue.empty()) {
        const Segment seg = queue.top();
        queue.pop();
        if (seg.slope >= 0.0)
            break;
        const double want = seg.toX - seg.fromX;
        const double take = std::min(want, remaining);
        alloc[seg.vc] += take;
        remaining -= take;
        if (take >= want)
            push_next(seg.vc, seg.nextIdx);
    }

    // Note: with allow_unused == false the caller distributes the
    // zero-utility leftover itself (deterministically, after size
    // hysteresis); handing it out here would wobble with curve noise.
    if (granule > 1.0) {
        for (double &a : alloc)
            a = std::floor(a / granule) * granule;
    }
    return alloc;
}

} // namespace cdcs
