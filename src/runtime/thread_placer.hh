/**
 * @file
 * Thread placement (Sec. IV-E): place each thread as close as possible
 * to the access-weighted center of mass of the VCs it touches, in
 * descending intensity-capacity order (threads that access large VCs
 * intensively are placed first: low on-chip latency matters most to
 * them and their data is hardest to move).
 */

#ifndef CDCS_RUNTIME_THREAD_PLACER_HH
#define CDCS_RUNTIME_THREAD_PLACER_HH

#include <vector>

#include "common/types.hh"
#include "mesh/mesh.hh"
#include "runtime/optimistic_placer.hh"
#include "runtime/placement_cost.hh"

namespace cdcs
{

/**
 * Place threads onto cores.
 *
 * @param placement Optimistic per-VC centers of mass (Sec. IV-D).
 * @param access access[t][d]: accesses of thread t to VC d.
 * @param sizes Per-VC allocation in lines.
 * @param mesh Topology (one core per tile).
 * @param current Current thread-to-core map (used as a mild
 *        tie-breaking hysteresis to avoid pointless migrations; exact
 *        ties — e.g. idle threads, whose cost is zero everywhere —
 *        break toward the current core so they never churn).
 * @param cost Effective-distance oracle: core costs are charged the
 *        measured route waits toward each VC's center of mass. Null
 *        (or a non-contended snapshot) is the zero-load arithmetic.
 * @return New thread-to-core assignment (a permutation into cores).
 */
std::vector<TileId> placeThreads(const OptimisticPlacement &placement,
                                 const std::vector<std::vector<double>>
                                     &access,
                                 const std::vector<double> &sizes,
                                 const Mesh &mesh,
                                 const std::vector<TileId> &current,
                                 const PlacementCostModel *cost =
                                     nullptr);

} // namespace cdcs

#endif // CDCS_RUNTIME_THREAD_PLACER_HH
