#include "runtime/placement_cost.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "net/noc_model.hh"

namespace cdcs
{

TileId
PlacementCostModel::nearestTile(double x, double y) const
{
    const int tx = std::clamp(
        static_cast<int>(std::lround(x)), 0, topo->width() - 1);
    const int ty = std::clamp(
        static_cast<int>(std::lround(y)), 0, topo->height() - 1);
    return topo->tileAt(tx, ty);
}

namespace
{

/**
 * Wait quantum in hop units. The placement pipeline's epoch-to-epoch
 * stability rests on exact ties resolved by deterministic tie-breaks
 * (anchor affinity, footprint compactness, current-core hysteresis);
 * continuous wait values would break every such tie and let
 * noise-level wait differences reshuffle placements each epoch.
 * Quantizing to quarter-hops (the same granularity as the anchor and
 * contention quanta) keeps near-idle routes indistinguishable from
 * zero-load while genuine saturation — M/D/1 waits of whole hops —
 * still steers placement.
 */
constexpr double waitQuantumHops = 0.25;

double
quantizeWait(double wait_hops)
{
    return std::floor(wait_hops / waitQuantumHops) * waitQuantumHops;
}

} // anonymous namespace

PlacementCostModel
PlacementCostModel::fromNoc(const NocModel &noc, double hop_cycles,
                            const PlacementCostModel *prev,
                            double alpha)
{
    cdcs_assert(hop_cycles > 0.0, "hop cycles must be positive");
    const Mesh &mesh = noc.mesh();
    PlacementCostModel cost(mesh, hop_cycles);

    // An access charges its control flit on the request route and
    // its data flits on the response route (the NoC's links are
    // directed), so the per-flit wait of a (src, dst) pair blends
    // both directions by their flit shares.
    const double ctrl_flits =
        static_cast<double>(mesh.config().ctrlFlits());
    const double data_flits =
        static_cast<double>(mesh.config().dataFlits());
    const double msg_flits = ctrl_flits + data_flits;

    const auto num_tiles = static_cast<std::size_t>(mesh.numTiles());
    std::vector<double> pair_waits(num_tiles * num_tiles, 0.0);
    for (TileId a = 0; a < mesh.numTiles(); a++) {
        for (TileId b = 0; b < mesh.numTiles(); b++) {
            pair_waits[static_cast<std::size_t>(a) * num_tiles +
                       static_cast<std::size_t>(b)] =
                (ctrl_flits * noc.pathWait(a, b) +
                 data_flits * noc.pathWait(b, a)) /
                (msg_flits * hop_cycles);
        }
    }

    std::vector<double> mem_waits(num_tiles, 0.0);
    const int ctrls = mesh.numMemCtrls();
    for (TileId t = 0; t < mesh.numTiles(); t++) {
        double sum = 0.0;
        for (int c = 0; c < ctrls; c++) {
            sum += (ctrl_flits * noc.memPathWait(t, c) +
                    data_flits * noc.memResponsePathWait(c, t)) /
                msg_flits;
        }
        mem_waits[static_cast<std::size_t>(t)] =
            sum / (hop_cycles * static_cast<double>(ctrls));
    }

    // Flit-weighted mean *mesh*-link wait: what the average flit pays
    // per traversed on-chip link, the chip-wide congestion scalar the
    // optimistic compact-footprint distance is inflated by. Memory
    // attach links are excluded — their (often clamped) waits are
    // charged through avgMemDist's mem-route term, not through the
    // on-chip spread of an allocation.
    double wait_flits = 0.0;
    double flits = 0.0;
    for (const NocLinkStat &link : noc.linkStats()) {
        if (link.memCtrl >= 0)
            continue;
        wait_flits +=
            link.waitCycles * static_cast<double>(link.flits);
        flits += static_cast<double>(link.flits);
    }
    double mean_wait =
        flits > 0.0 ? wait_flits / (flits * hop_cycles) : 0.0;

    // EWMA against the previous snapshot's raw waits: damp the
    // placement <-> contention feedback loop before quantization.
    if (prev != nullptr && alpha < 1.0 &&
        prev->rawPairWaitHops.size() == pair_waits.size() &&
        prev->rawMemWaitHops.size() == mem_waits.size()) {
        for (std::size_t i = 0; i < pair_waits.size(); i++) {
            pair_waits[i] = alpha * pair_waits[i] +
                (1.0 - alpha) * prev->rawPairWaitHops[i];
        }
        for (std::size_t i = 0; i < mem_waits.size(); i++) {
            mem_waits[i] = alpha * mem_waits[i] +
                (1.0 - alpha) * prev->rawMemWaitHops[i];
        }
        mean_wait = alpha * mean_wait +
            (1.0 - alpha) * prev->rawMeanWaitPerHop;
    }

    cost.rawPairWaitHops = std::move(pair_waits);
    cost.rawMemWaitHops = std::move(mem_waits);
    cost.rawMeanWaitPerHop = mean_wait;

    // Quantize into the query tables; if every wait quantizes to
    // zero the snapshot stays a zero-wait oracle (pure Mesh
    // arithmetic), which keeps near-idle networks byte-identical to
    // the zero-load model.
    bool any = false;
    std::vector<double> q_pair(cost.rawPairWaitHops.size(), 0.0);
    for (std::size_t i = 0; i < q_pair.size(); i++) {
        q_pair[i] = quantizeWait(cost.rawPairWaitHops[i]);
        any = any || q_pair[i] > 0.0;
    }
    std::vector<double> q_mem(cost.rawMemWaitHops.size(), 0.0);
    for (std::size_t i = 0; i < q_mem.size(); i++) {
        q_mem[i] = quantizeWait(cost.rawMemWaitHops[i]);
        any = any || q_mem[i] > 0.0;
    }
    if (!any)
        return cost;

    cost.contendedWaits = true;
    cost.pairWaitHops = std::move(q_pair);
    cost.memWaitHops = std::move(q_mem);
    cost.meanWaitPerHop = quantizeWait(mean_wait);
    return cost;
}

} // namespace cdcs
