#include "runtime/refined_placer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.hh"

#include "common/log.hh"

namespace cdcs
{

VcAnchors
computeVcAnchors(const std::vector<std::vector<double>> &access,
                 const std::vector<TileId> &thread_core,
                 const Mesh &mesh, std::size_t num_vcs)
{
    VcAnchors anchors;
    anchors.x.assign(num_vcs, (mesh.width() - 1) / 2.0);
    anchors.y.assign(num_vcs, (mesh.height() - 1) / 2.0);
    anchors.totalAccess.assign(num_vcs, 0.0);
    std::vector<double> wx(num_vcs, 0.0), wy(num_vcs, 0.0);
    for (std::size_t t = 0; t < access.size(); t++) {
        const MeshCoord c = mesh.coordOf(thread_core[t]);
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double a = access[t][d];
            if (a <= 0.0)
                continue;
            wx[d] += a * c.x;
            wy[d] += a * c.y;
            anchors.totalAccess[d] += a;
        }
    }
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (anchors.totalAccess[d] > 0.0) {
            // Quantize anchors to quarter-tiles: the visit order must
            // not flip between equidistant tiles on monitor noise.
            anchors.x[d] = std::round(4.0 * wx[d] /
                                      anchors.totalAccess[d]) / 4.0;
            anchors.y[d] = std::round(4.0 * wy[d] /
                                      anchors.totalAccess[d]) / 4.0;
        }
    }
    return anchors;
}

namespace
{

/** dist[d][tile]: access-weighted effective hops from VC d's
 *  accessors (zero-load hops unless a contended cost oracle is
 *  supplied). */
std::vector<std::vector<double>>
computeVcDistances(const std::vector<std::vector<double>> &access,
                   const std::vector<TileId> &thread_core,
                   const Mesh &mesh, std::size_t num_vcs,
                   const std::vector<double> &total_access,
                   const PlacementCostModel *cost)
{
    const auto tile_dist = [&](TileId a, TileId b) {
        return cost != nullptr
            ? cost->tileDist(a, b)
            : static_cast<double>(mesh.hops(a, b));
    };
    std::vector<std::vector<double>> dist(
        num_vcs, std::vector<double>(mesh.numTiles(), 0.0));
    for (std::size_t t = 0; t < access.size(); t++) {
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double a = access[t][d];
            if (a <= 0.0)
                continue;
            for (TileId b = 0; b < mesh.numTiles(); b++)
                dist[d][b] += a * tile_dist(thread_core[t], b);
        }
    }
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (total_access[d] > 0.0) {
            for (TileId b = 0; b < mesh.numTiles(); b++)
                dist[d][b] /= total_access[d];
        }
    }
    return dist;
}

} // anonymous namespace

std::vector<std::vector<double>>
refinePlace(const std::vector<double> &sizes,
            const std::vector<std::vector<double>> &access,
            const std::vector<TileId> &thread_core, const Mesh &mesh,
            double tile_capacity_lines, const RefinedPlacerConfig &cfg,
            const PlacementCostModel *cost)
{
    const std::size_t num_vcs = sizes.size();
    const int num_tiles = mesh.numTiles();

    const VcAnchors anchors =
        computeVcAnchors(access, thread_core, mesh, num_vcs);
    const std::vector<double> &total_access = anchors.totalAccess;
    const auto dist =
        computeVcDistances(access, thread_core, mesh, num_vcs,
                           total_access, cost);

    // Per-VC tile visit order: ascending distance from the anchor.
    std::vector<std::vector<TileId>> visit(num_vcs);
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (sizes[d] <= 0.0)
            continue;
        visit[d].resize(num_tiles);
        std::iota(visit[d].begin(), visit[d].end(), 0);
        std::stable_sort(visit[d].begin(), visit[d].end(),
                         [&](TileId a, TileId b) {
                             return dist[d][a] < dist[d][b];
                         });
    }

    // VC processing order: descending access intensity per line, so
    // latency-critical VCs get the closest capacity first.
    std::vector<std::size_t> order;
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (sizes[d] > 0.0)
            order.push_back(d);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return logBucket(total_access[a] / sizes[a]) >
                             logBucket(total_access[b] / sizes[b]);
                     });

    // --- Greedy round-robin placement (Jigsaw, Sec. IV-F) ---
    std::vector<std::vector<double>> alloc(
        num_vcs, std::vector<double>(num_tiles, 0.0));
    std::vector<double> free(num_tiles, tile_capacity_lines);
    std::vector<double> remaining(sizes);
    std::vector<int> cursor(num_vcs, 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t d : order) {
            if (remaining[d] <= 0.0)
                continue;
            // Advance past exhausted tiles (free only decreases).
            while (cursor[d] < num_tiles &&
                   free[visit[d][cursor[d]]] <= 0.0) {
                cursor[d]++;
            }
            if (cursor[d] >= num_tiles) {
                // Chip full: the remainder is unplaceable; drop it
                // (the allocator never over-commits, so this guards
                // against rounding noise only).
                remaining[d] = 0.0;
                continue;
            }
            const TileId tile = visit[d][cursor[d]];
            const double take =
                std::min({cfg.granule, remaining[d], free[tile]});
            alloc[d][tile] += take;
            free[tile] -= take;
            remaining[d] -= take;
            progress = true;
        }
    }

    if (!cfg.trades)
        return alloc;

    // --- Bounded trading pass (CDCS, Sec. IV-F, Fig. 8) ---
    constexpr double eps = 1e-9;
    for (std::size_t d : order) {
        if (sizes[d] <= 0.0 || total_access[d] <= 0.0)
            continue;
        const double intensity_d = total_access[d] / sizes[d];
        double seen = 0.0;
        std::vector<TileId> desirable;
        for (int i = 0; i < num_tiles && seen + eps < sizes[d]; i++) {
            const TileId b1 = visit[d][i];
            if (alloc[d][b1] < tile_capacity_lines - eps)
                desirable.push_back(b1);
            if (alloc[d][b1] <= 0.0)
                continue;
            seen += alloc[d][b1];

            // Try to move data at b1 into closer desirable tiles.
            for (const TileId b2 : desirable) {
                if (alloc[d][b1] <= 0.0)
                    break;
                if (b2 == b1 || dist[d][b2] >= dist[d][b1])
                    continue;

                // Free space first: a move with no counterparty.
                if (free[b2] > 0.0 &&
                    dist[d][b1] - dist[d][b2] >
                        cfg.tradeThresholdHops) {
                    const double q = std::min(alloc[d][b1], free[b2]);
                    alloc[d][b1] -= q;
                    alloc[d][b2] += q;
                    free[b2] -= q;
                    free[b1] += q;
                    if (alloc[d][b1] <= 0.0)
                        break;
                }

                // Offer trades to VCs resident in b2. Trades must
                // clear a minimum-gain threshold: marginal swaps are
                // monitor noise and would churn placements.
                for (std::size_t e = 0; e < num_vcs; e++) {
                    if (e == d || alloc[e][b2] <= 0.0)
                        continue;
                    if (alloc[d][b1] <= 0.0)
                        break;
                    const double intensity_e = sizes[e] > 0.0
                        ? total_access[e] / sizes[e] : 0.0;
                    const double delta =
                        intensity_d * (dist[d][b2] - dist[d][b1]) +
                        intensity_e * (dist[e][b1] - dist[e][b2]);
                    const double threshold = -cfg.tradeThresholdHops *
                        (intensity_d + intensity_e);
                    if (delta < threshold) {
                        const double q =
                            std::min(alloc[d][b1], alloc[e][b2]);
                        alloc[d][b1] -= q;
                        alloc[d][b2] += q;
                        alloc[e][b2] -= q;
                        alloc[e][b1] += q;
                    }
                }
            }
        }
    }
    return alloc;
}

double
onChipCost(const std::vector<std::vector<double>> &alloc,
           const std::vector<double> & /*sizes*/,
           const std::vector<std::vector<double>> &access,
           const std::vector<TileId> &thread_core, const Mesh &mesh)
{
    // Eq. 2: accesses from thread t to tile b are proportional to the
    // share of VC capacity in b.
    double cost = 0.0;
    for (std::size_t d = 0; d < alloc.size(); d++) {
        double placed = 0.0;
        for (double a : alloc[d])
            placed += a;
        if (placed <= 0.0)
            continue;
        for (std::size_t t = 0; t < access.size(); t++) {
            const double at = access[t][d];
            if (at <= 0.0)
                continue;
            for (TileId b = 0; b < mesh.numTiles(); b++) {
                if (alloc[d][b] <= 0.0)
                    continue;
                cost += at * (alloc[d][b] / placed) *
                    mesh.hops(thread_core[t], b);
            }
        }
    }
    return cost;
}

} // namespace cdcs
