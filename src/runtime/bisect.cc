#include "runtime/bisect.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace cdcs
{

namespace
{

/** A rectangular tile region. */
struct Region
{
    int x0, y0, x1, y1; // Half-open: [x0, x1) x [y0, y1).

    int tiles() const { return (x1 - x0) * (y1 - y0); }
};

struct BisectState
{
    const Mesh *mesh = nullptr;
    double tileCapacity = 0.0;
    const std::vector<std::vector<double>> *access = nullptr;
    std::vector<TileId> threadCore;
    std::vector<std::vector<double>> alloc; // [vc][tile]
};

/**
 * Cut cost of a thread bipartition: VCs whose accesses straddle both
 * halves pay the smaller side's access weight.
 */
double
cutCost(const std::vector<std::size_t> &threads,
        const std::vector<bool> &in_a,
        const std::vector<std::vector<double>> &access,
        std::size_t num_vcs)
{
    std::vector<double> acc_a(num_vcs, 0.0), acc_b(num_vcs, 0.0);
    for (std::size_t i = 0; i < threads.size(); i++) {
        const auto &row = access[threads[i]];
        for (std::size_t d = 0; d < num_vcs; d++) {
            if (in_a[i])
                acc_a[d] += row[d];
            else
                acc_b[d] += row[d];
        }
    }
    double cut = 0.0;
    for (std::size_t d = 0; d < num_vcs; d++)
        cut += std::min(acc_a[d], acc_b[d]);
    return cut;
}

void
bisect(BisectState &state, const Region &region,
       std::vector<std::size_t> threads, std::vector<double> vc_cap)
{
    const std::size_t num_vcs = vc_cap.size();
    if (region.tiles() == 1) {
        const TileId tile =
            state.mesh->tileAt(region.x0, region.y0);
        cdcs_assert(threads.size() <= 1, "leaf region over-committed");
        for (std::size_t t : threads)
            state.threadCore[t] = tile;
        double used = 0.0;
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double take = std::min(vc_cap[d],
                                         state.tileCapacity - used);
            if (take <= 0.0)
                continue;
            state.alloc[d][tile] += take;
            used += take;
        }
        return;
    }

    // Split the longer dimension.
    Region a = region, b = region;
    if (region.x1 - region.x0 >= region.y1 - region.y0) {
        const int mid = (region.x0 + region.x1) / 2;
        a.x1 = mid;
        b.x0 = mid;
    } else {
        const int mid = (region.y0 + region.y1) / 2;
        a.y1 = mid;
        b.y0 = mid;
    }

    // --- Partition threads: proportional counts, min-cut refined ---
    const int want_a = std::clamp(
        static_cast<int>(std::lround(
            static_cast<double>(threads.size()) * a.tiles() /
            region.tiles())),
        static_cast<int>(threads.size()) - b.tiles(),
        std::min(a.tiles(), static_cast<int>(threads.size())));

    // Initial split: group threads by their dominant VC so sharers
    // start on the same side.
    std::stable_sort(threads.begin(), threads.end(),
                     [&](std::size_t ta, std::size_t tb) {
                         const auto &ra = (*state.access)[ta];
                         const auto &rb = (*state.access)[tb];
                         const auto da = std::max_element(ra.begin(),
                                                          ra.end()) -
                             ra.begin();
                         const auto db = std::max_element(rb.begin(),
                                                          rb.end()) -
                             rb.begin();
                         return da < db;
                     });
    std::vector<bool> in_a(threads.size(), false);
    for (int i = 0; i < want_a; i++)
        in_a[i] = true;

    // Kernighan-Lin-style improvement: best pairwise swaps.
    bool improved = !threads.empty();
    int passes = 0;
    while (improved && passes < 4) {
        improved = false;
        passes++;
        double best = cutCost(threads, in_a, *state.access, num_vcs);
        for (std::size_t i = 0; i < threads.size(); i++) {
            for (std::size_t j = i + 1; j < threads.size(); j++) {
                if (in_a[i] == in_a[j])
                    continue;
                in_a[i] = !in_a[i];
                in_a[j] = !in_a[j];
                const double cost =
                    cutCost(threads, in_a, *state.access, num_vcs);
                if (cost + 1e-12 < best) {
                    best = cost;
                    improved = true;
                } else {
                    in_a[i] = !in_a[i];
                    in_a[j] = !in_a[j];
                }
            }
        }
    }

    std::vector<std::size_t> threads_a, threads_b;
    std::vector<double> acc_a(num_vcs, 0.0), acc_b(num_vcs, 0.0);
    for (std::size_t i = 0; i < threads.size(); i++) {
        const auto &row = (*state.access)[threads[i]];
        if (in_a[i]) {
            threads_a.push_back(threads[i]);
            for (std::size_t d = 0; d < num_vcs; d++)
                acc_a[d] += row[d];
        } else {
            threads_b.push_back(threads[i]);
            for (std::size_t d = 0; d < num_vcs; d++)
                acc_b[d] += row[d];
        }
    }

    // --- Split VC capacity by access share, capped to fit ---
    const double cap_a = a.tiles() * state.tileCapacity;
    const double cap_b = b.tiles() * state.tileCapacity;
    std::vector<double> cap_va(num_vcs, 0.0), cap_vb(num_vcs, 0.0);
    double tot_a = 0.0, tot_b = 0.0;
    for (std::size_t d = 0; d < num_vcs; d++) {
        const double acc = acc_a[d] + acc_b[d];
        const double frac_a = acc > 0.0
            ? acc_a[d] / acc
            : static_cast<double>(a.tiles()) / region.tiles();
        cap_va[d] = vc_cap[d] * frac_a;
        cap_vb[d] = vc_cap[d] - cap_va[d];
        tot_a += cap_va[d];
        tot_b += cap_vb[d];
    }
    // Rebalance overflow toward the other half.
    auto rebalance = [&](std::vector<double> &from,
                         std::vector<double> &to, double cap_from,
                         double tot_from) {
        if (tot_from <= cap_from)
            return;
        const double scale = cap_from / tot_from;
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double spill = from[d] * (1.0 - scale);
            from[d] -= spill;
            to[d] += spill;
        }
    };
    rebalance(cap_va, cap_vb, cap_a, tot_a);
    rebalance(cap_vb, cap_va, cap_b, tot_b);

    bisect(state, a, std::move(threads_a), std::move(cap_va));
    bisect(state, b, std::move(threads_b), std::move(cap_vb));
}

} // anonymous namespace

RuntimeOutput
BisectRuntime::reconfigure(const RuntimeInput &input)
{
    RuntimeOutput out;
    const std::vector<double> sizes = allocate(input);

    BisectState state;
    state.mesh = input.mesh;
    state.tileCapacity =
        static_cast<double>(input.bankLines) * input.banksPerTile;
    state.access = &input.access;
    state.threadCore.assign(input.threadCore.size(), 0);
    state.alloc.assign(sizes.size(),
                       std::vector<double>(input.mesh->numTiles(), 0.0));

    std::vector<std::size_t> threads(input.threadCore.size());
    std::iota(threads.begin(), threads.end(), 0);
    const Region whole{0, 0, input.mesh->width(), input.mesh->height()};
    bisect(state, whole, std::move(threads), sizes);

    out.alloc = tilesToBanks(state.alloc, input.banksPerTile,
                             input.bankLines);
    out.threadCore = std::move(state.threadCore);
    return out;
}

} // namespace cdcs
