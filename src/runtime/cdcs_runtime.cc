#include "runtime/cdcs_runtime.hh"

#include <chrono>
#include <cmath>

#include "common/log.hh"
#include "runtime/optimistic_placer.hh"
#include "runtime/refined_placer.hh"
#include "runtime/peekahead.hh"
#include "runtime/thread_placer.hh"

namespace cdcs
{

namespace
{

double
microsSince(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now(); // lint:allow(wallclock)
    return std::chrono::duration<double, std::micro>(now - start).count();
}

} // anonymous namespace

std::vector<double>
CdcsRuntime::allocate(const RuntimeInput &input)
{
    const std::size_t num_vcs = input.missCurves.size();
    const double tile_capacity =
        static_cast<double>(input.bankLines) * input.banksPerTile;
    const double total_capacity =
        tile_capacity * input.mesh->numTiles();

    // Per-VC accesses this epoch.
    std::vector<double> vc_access(num_vcs, 0.0);
    for (const auto &row : input.access) {
        for (std::size_t d = 0; d < num_vcs; d++)
            vc_access[d] += row[d];
    }

    LatencyModel lat;
    lat.hopCycles = input.hopCycles;
    lat.bankAccessCycles = input.bankAccessCycles;
    lat.memAccessCycles = input.memAccessCycles;

    std::vector<Curve> cost;
    cost.reserve(num_vcs);
    for (std::size_t d = 0; d < num_vcs; d++) {
        cost.push_back(totalLatencyCurve(
            input.missCurves[d], vc_access[d], *input.mesh,
            tile_capacity, lat, options.latencyAwareAlloc,
            input.costModel));
    }

    // Reserve a small floor for every active VC so its data maps
    // somewhere sensible even when the allocator grants it nothing
    // (e.g., streaming apps like milc get "near-zero" capacity).
    double floor_total = 0.0;
    std::vector<double> floors(num_vcs, 0.0);
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (vc_access[d] > 0.0) {
            floors[d] = options.minAllocLines;
            floor_total += floors[d];
        }
    }

    // Allocate only capacity with real marginal utility first; the
    // zero-utility leftover (Jigsaw mode) is distributed after size
    // hysteresis so it cannot wobble with curve noise.
    std::vector<double> sizes = peekaheadAllocate(
        cost, total_capacity - floor_total,
        /*allow_unused=*/true, input.allocGranule);
    for (std::size_t d = 0; d < num_vcs; d++)
        sizes[d] += floors[d];

    if (!options.latencyAwareAlloc) {
        // Jigsaw mode: hand out the remaining capacity proportionally
        // to the utility-driven sizes. Deterministic, so it cannot
        // churn placements on its own; unlike CDCS, Jigsaw never
        // holds capacity back (Sec. IV-C).
        double used = 0.0;
        for (double s : sizes)
            used += s;
        const double leftover = total_capacity - used;
        if (leftover > 0.0 && used > 0.0) {
            const double scale = leftover / used;
            for (double &s : sizes)
                s += s * scale;
        }
    }

    // Size hysteresis: monitored curves are noisy; a VC keeps its
    // previous size unless the change is material. This is what lets
    // the downstream (deterministic) placement reach a fixed point.
    if (prevSizes.size() == sizes.size()) {
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double prev = prevSizes[d];
            if (std::abs(sizes[d] - prev) <=
                options.sizeHysteresis * std::max(prev, 1.0)) {
                sizes[d] = prev;
            }
        }
    }
    prevSizes = sizes;
    return sizes;
}

std::vector<std::vector<double>>
CdcsRuntime::tilesToBanks(const std::vector<std::vector<double>>
                              &tile_alloc,
                          int banks_per_tile, std::uint64_t bank_lines)
{
    if (banks_per_tile == 1)
        return tile_alloc;
    const std::size_t num_vcs = tile_alloc.size();
    const std::size_t num_tiles =
        num_vcs > 0 ? tile_alloc[0].size() : 0;
    std::vector<std::vector<double>> bank_alloc(
        num_vcs, std::vector<double>(num_tiles * banks_per_tile, 0.0));

    // Per tile, pack VCs into the tile's banks first-fit; with
    // bank-granular allocation each VC share is a whole multiple of
    // the bank size, so the packing is exact.
    for (std::size_t tile = 0; tile < num_tiles; tile++) {
        std::vector<double> bank_free(
            banks_per_tile, static_cast<double>(bank_lines));
        for (std::size_t d = 0; d < num_vcs; d++) {
            double rest = tile_alloc[d][tile];
            for (int k = 0; k < banks_per_tile && rest > 0.0; k++) {
                const double take = std::min(rest, bank_free[k]);
                if (take <= 0.0)
                    continue;
                bank_alloc[d][tile * banks_per_tile + k] += take;
                bank_free[k] -= take;
                rest -= take;
            }
        }
    }
    return bank_alloc;
}

RuntimeOutput
CdcsRuntime::reconfigure(const RuntimeInput &input)
{
    RuntimeOutput out;

    // Step 1: latency-aware capacity allocation.
    auto t0 = std::chrono::steady_clock::now(); // lint:allow(wallclock)
    const std::vector<double> sizes = allocate(input);
    out.times.allocUs = microsSince(t0);

    const double tile_capacity =
        static_cast<double>(input.bankLines) * input.banksPerTile;

    // Steps 2 + 3: optimistic placement informs thread placement.
    t0 = std::chrono::steady_clock::now(); // lint:allow(wallclock)
    std::vector<TileId> cores = input.threadCore;
    if (options.placeThreads) {
        // Anchor the optimistic placement to the VCs' current
        // accessor positions: with a stationary workload, placements
        // (and thus descriptors) reach a fixed point instead of
        // rotating among equivalent layouts every epoch.
        const VcAnchors anchors = computeVcAnchors(
            input.access, input.threadCore, *input.mesh, sizes.size());
        const OptimisticPlacement optimistic =
            optimisticPlace(sizes, *input.mesh, tile_capacity,
                            anchors.x, anchors.y, input.costModel);
        cores = placeThreads(optimistic, input.access, sizes,
                             *input.mesh, input.threadCore,
                             input.costModel);
    }
    out.times.threadPlaceUs = microsSince(t0);

    // Step 4: refined placement (greedy + optional trades).
    t0 = std::chrono::steady_clock::now(); // lint:allow(wallclock)
    RefinedPlacerConfig place_cfg;
    place_cfg.granule = std::max<double>(options.placeGranule,
                                         input.allocGranule);
    place_cfg.trades = options.refineTrades;
    const auto tile_alloc =
        refinePlace(sizes, input.access, cores, *input.mesh,
                    tile_capacity, place_cfg, input.costModel);
    out.times.dataPlaceUs = microsSince(t0);

    out.alloc = tilesToBanks(tile_alloc, input.banksPerTile,
                             input.bankLines);
    out.threadCore = std::move(cores);
    return out;
}

} // namespace cdcs
