#include "runtime/anneal.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "runtime/refined_placer.hh"

namespace cdcs
{

std::vector<TileId>
annealThreads(const std::vector<std::vector<double>> &alloc,
              const std::vector<double> &sizes,
              const std::vector<std::vector<double>> &access,
              std::vector<TileId> start, const Mesh &mesh,
              int iterations, Rng &rng)
{
    const std::size_t num_threads = start.size();
    if (num_threads < 2 || iterations <= 0)
        return start;

    // Per-thread cost against a fixed data placement decomposes, so
    // evaluate proposals incrementally: cost(t, core) = sum over VCs
    // of alpha_{t,b} * D(core, b) (Eq. 2).
    const int num_tiles = mesh.numTiles();
    auto thread_cost = [&](std::size_t t, TileId core) {
        double cost = 0.0;
        for (std::size_t d = 0; d < alloc.size(); d++) {
            const double at = access[t][d];
            if (at <= 0.0 || sizes[d] <= 0.0)
                continue;
            double placed = 0.0;
            for (double a : alloc[d])
                placed += a;
            if (placed <= 0.0)
                continue;
            for (TileId b = 0; b < num_tiles; b++) {
                if (alloc[d][b] > 0.0) {
                    cost += at * (alloc[d][b] / placed) *
                        mesh.hops(core, b);
                }
            }
        }
        return cost;
    };

    // Occupancy map: thread on each core (or none).
    std::vector<int> coreThread(num_tiles, -1);
    for (std::size_t t = 0; t < num_threads; t++)
        coreThread[start[t]] = static_cast<int>(t);

    double temp = 0.0;
    {
        // Initial temperature: a few percent of the mean thread cost.
        double total = 0.0;
        for (std::size_t t = 0; t < num_threads; t++)
            total += thread_cost(t, start[t]);
        temp = 0.05 * total / static_cast<double>(num_threads) + 1e-9;
    }
    const double cooling =
        std::pow(1e-3, 1.0 / static_cast<double>(iterations));

    for (int it = 0; it < iterations; it++) {
        const auto t = static_cast<std::size_t>(rng.below(num_threads));
        const auto target = static_cast<TileId>(rng.below(num_tiles));
        const TileId from = start[t];
        if (target == from)
            continue;
        const int other = coreThread[target];
        double delta = thread_cost(t, target) - thread_cost(t, from);
        if (other >= 0) {
            delta += thread_cost(other, from) -
                thread_cost(other, target);
        }
        if (delta < 0.0 || rng.uniform() < std::exp(-delta / temp)) {
            start[t] = target;
            coreThread[from] = other;
            coreThread[target] = static_cast<int>(t);
            if (other >= 0)
                start[other] = from;
        }
        temp *= cooling;
    }
    return start;
}

std::vector<std::vector<double>>
annealData(std::vector<std::vector<double>> alloc,
           const std::vector<double> &sizes,
           const std::vector<std::vector<double>> &access,
           const std::vector<TileId> &thread_core, const Mesh &mesh,
           double /*tile_capacity_lines*/, double granule,
           int iterations, Rng &rng)
{
    const std::size_t num_vcs = alloc.size();
    if (num_vcs == 0 || iterations <= 0)
        return alloc;
    const int num_tiles = mesh.numTiles();

    // Access-weighted per-VC tile distances (see refined placer).
    std::vector<double> total_access(num_vcs, 0.0);
    std::vector<std::vector<double>> dist(
        num_vcs, std::vector<double>(num_tiles, 0.0));
    for (std::size_t t = 0; t < access.size(); t++) {
        for (std::size_t d = 0; d < num_vcs; d++) {
            const double a = access[t][d];
            if (a <= 0.0)
                continue;
            total_access[d] += a;
            for (TileId b = 0; b < num_tiles; b++)
                dist[d][b] += a * mesh.hops(thread_core[t], b);
        }
    }
    for (std::size_t d = 0; d < num_vcs; d++) {
        if (total_access[d] > 0.0) {
            for (TileId b = 0; b < num_tiles; b++)
                dist[d][b] /= total_access[d];
        }
    }

    double temp = 1.0;
    const double cooling =
        std::pow(1e-4, 1.0 / static_cast<double>(iterations));
    for (int it = 0; it < iterations; it++) {
        const auto d = static_cast<std::size_t>(rng.below(num_vcs));
        const auto e = static_cast<std::size_t>(rng.below(num_vcs));
        const auto b1 = static_cast<TileId>(rng.below(num_tiles));
        const auto b2 = static_cast<TileId>(rng.below(num_tiles));
        temp *= cooling;
        if (d == e || b1 == b2)
            continue;
        if (alloc[d][b1] <= 0.0 || alloc[e][b2] <= 0.0)
            continue;
        const double q =
            std::min({granule, alloc[d][b1], alloc[e][b2]});
        const double int_d =
            sizes[d] > 0.0 ? total_access[d] / sizes[d] : 0.0;
        const double int_e =
            sizes[e] > 0.0 ? total_access[e] / sizes[e] : 0.0;
        const double delta = q *
            (int_d * (dist[d][b2] - dist[d][b1]) +
             int_e * (dist[e][b1] - dist[e][b2]));
        if (delta < 0.0 || rng.uniform() < std::exp(-delta / temp)) {
            alloc[d][b1] -= q;
            alloc[d][b2] += q;
            alloc[e][b2] -= q;
            alloc[e][b1] += q;
        }
    }
    return alloc;
}

RuntimeOutput
AnnealingRuntime::reconfigure(const RuntimeInput &input)
{
    RuntimeOutput out = CdcsRuntime::reconfigure(input);

    // Post-process the thread placement with SA against the produced
    // data placement, then re-run refined placement for the (possibly)
    // new thread locations.
    std::vector<double> sizes(out.alloc.size(), 0.0);
    for (std::size_t d = 0; d < out.alloc.size(); d++) {
        for (double a : out.alloc[d])
            sizes[d] += a;
    }

    // Collapse banks back to tiles for the cost model.
    const int bpt = input.banksPerTile;
    std::vector<std::vector<double>> tile_alloc(
        out.alloc.size(),
        std::vector<double>(input.mesh->numTiles(), 0.0));
    for (std::size_t d = 0; d < out.alloc.size(); d++) {
        for (std::size_t b = 0; b < out.alloc[d].size(); b++)
            tile_alloc[d][b / bpt] += out.alloc[d][b];
    }

    out.threadCore = annealThreads(tile_alloc, sizes, input.access,
                                   out.threadCore, *input.mesh,
                                   saIterations, rng);

    RefinedPlacerConfig place_cfg;
    place_cfg.granule = std::max<double>(options.placeGranule,
                                         input.allocGranule);
    place_cfg.trades = options.refineTrades;
    const double tile_capacity =
        static_cast<double>(input.bankLines) * input.banksPerTile;
    const auto refined =
        refinePlace(sizes, input.access, out.threadCore, *input.mesh,
                    tile_capacity, place_cfg, input.costModel);
    out.alloc = tilesToBanks(refined, input.banksPerTile,
                             input.bankLines);
    return out;
}

} // namespace cdcs
