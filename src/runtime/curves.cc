#include "runtime/curves.hh"

#include <set>

namespace cdcs
{

Curve
totalLatencyCurve(const Curve &miss_curve, double accesses,
                  const Mesh &mesh, double tile_capacity_lines,
                  const LatencyModel &lat, bool latency_aware)
{
    // Average memory-network distance is placement-independent in the
    // page-interleaved controller scheme (Sec. III): use the chip-wide
    // mean.
    double mem_net = 0.0;
    for (TileId t = 0; t < mesh.numTiles(); t++)
        mem_net += mesh.avgHopsToMemCtrl(t);
    mem_net = lat.onChipRoundTrip(mem_net / mesh.numTiles());
    const double miss_cost = lat.memAccessCycles + mem_net;

    // Sample at the miss curve's points plus tile-capacity boundaries
    // so the on-chip term is resolved even where misses are flat.
    std::set<double> xs;
    for (const auto &p : miss_curve.samples())
        xs.insert(p.x);
    if (latency_aware) {
        const double max_x = miss_curve.maxX();
        for (double x = tile_capacity_lines; x <= max_x;
             x += tile_capacity_lines) {
            xs.insert(x);
        }
    }

    Curve out;
    for (double x : xs) {
        const double misses = miss_curve.at(x);
        // Allocation-independent terms (bank access latency) are
        // omitted: they shift every curve by a constant and cannot
        // change the allocation.
        double y = misses * miss_cost;
        if (latency_aware) {
            const double dist =
                mesh.optimisticDistance(x / tile_capacity_lines);
            y += accesses * lat.onChipRoundTrip(dist);
        }
        out.addPoint(x, y);
    }
    return out;
}

} // namespace cdcs
