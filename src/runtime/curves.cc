#include "runtime/curves.hh"

#include <set>

namespace cdcs
{

Curve
totalLatencyCurve(const Curve &miss_curve, double accesses,
                  const Mesh &mesh, double tile_capacity_lines,
                  const LatencyModel &lat, bool latency_aware,
                  const PlacementCostModel *cost)
{
    // Average memory-network distance is placement-independent in the
    // page-interleaved controller scheme (Sec. III): use the chip-wide
    // mean. Under a contended cost oracle each tile's term includes
    // the measured route waits to the controllers.
    double mem_net = 0.0;
    for (TileId t = 0; t < mesh.numTiles(); t++) {
        mem_net += cost != nullptr ? cost->avgMemDist(t)
                                   : mesh.avgHopsToMemCtrl(t);
    }
    mem_net = lat.onChipRoundTrip(mem_net / mesh.numTiles());
    const double miss_cost = lat.memAccessCycles + mem_net;

    // Sample at the miss curve's points plus tile-capacity boundaries
    // so the on-chip term is resolved even where misses are flat.
    std::set<double> xs;
    for (const auto &p : miss_curve.samples())
        xs.insert(p.x);
    if (latency_aware) {
        // Boundaries as integer multiples: accumulating `x +=
        // tile_capacity_lines` drifts for fractional capacities and
        // can skip the last boundary at max_x.
        const double max_x = miss_curve.maxX();
        for (double k = 1.0;; k += 1.0) {
            const double x = k * tile_capacity_lines;
            if (x > max_x)
                break;
            xs.insert(x);
        }
    }

    Curve out;
    for (double x : xs) {
        const double misses = miss_curve.at(x);
        // Allocation-independent terms (bank access latency) are
        // omitted: they shift every curve by a constant and cannot
        // change the allocation.
        double y = misses * miss_cost;
        if (latency_aware) {
            const double banks = x / tile_capacity_lines;
            const double dist = cost != nullptr
                ? cost->optimisticDistance(banks)
                : mesh.optimisticDistance(banks);
            y += accesses * lat.onChipRoundTrip(dist);
        }
        out.addPoint(x, y);
    }
    return out;
}

} // namespace cdcs
