/**
 * @file
 * Optimistic contention-aware VC placement (Sec. IV-D): a coarse
 * chip-wide picture of where data should go, computed before thread
 * placement. Large VCs are placed first; each picks the tile whose
 * compact footprint overlaps the least already-claimed capacity
 * (capacity constraints are relaxed: claims may exceed a tile).
 */

#ifndef CDCS_RUNTIME_OPTIMISTIC_PLACER_HH
#define CDCS_RUNTIME_OPTIMISTIC_PLACER_HH

#include <vector>

#include "mesh/mesh.hh"
#include "runtime/placement_cost.hh"

namespace cdcs
{

/** Result: per-VC center of mass (fractional tile coordinates). */
struct OptimisticPlacement
{
    std::vector<double> comX;
    std::vector<double> comY;
};

/**
 * Place VCs optimistically.
 *
 * Candidate centers are ranked by (quantized) claimed-capacity
 * contention; ties break toward the VC's preferred anchor (its
 * current accessors' position) so that placements stay put across
 * epochs when nothing material changed, then toward compact and
 * central footprints.
 *
 * @param sizes Per-VC allocation in lines.
 * @param mesh Topology.
 * @param tile_capacity_lines LLC lines per tile.
 * @param prefer_x Per-VC preferred x anchor (empty: chip center).
 * @param prefer_y Per-VC preferred y anchor (empty: chip center).
 * @param cost Effective-distance oracle: footprint spread and anchor
 *        affinity are scored in effective hops, steering VCs away
 *        from saturated regions. Null (or a non-contended snapshot)
 *        is the zero-load hop arithmetic.
 * @return Per-VC centers of mass.
 */
OptimisticPlacement optimisticPlace(const std::vector<double> &sizes,
                                    const Mesh &mesh,
                                    double tile_capacity_lines,
                                    const std::vector<double> &prefer_x =
                                        {},
                                    const std::vector<double> &prefer_y =
                                        {},
                                    const PlacementCostModel *cost =
                                        nullptr);

} // namespace cdcs

#endif // CDCS_RUNTIME_OPTIMISTIC_PLACER_HH
