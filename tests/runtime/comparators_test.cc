/**
 * @file
 * Tests for the Sec. VI-C comparators (simulated annealing, recursive
 * bisection) and the CDCS runtime orchestration, including the paper's
 * core quality claim: the cheap heuristics are within a few percent of
 * expensive search.
 */

#include <gtest/gtest.h>

#include "runtime/anneal.hh"
#include "runtime/bisect.hh"
#include "runtime/jigsaw_runtime.hh"
#include "runtime/refined_placer.hh"

namespace cdcs
{
namespace
{

constexpr double tileCap = 8192.0;

/** Synthetic runtime input: `n` threads with private cliff VCs. */
RuntimeInput
makeInput(const Mesh &mesh, int threads, double footprint_lines,
          double apki_scale = 1.0)
{
    RuntimeInput in;
    in.mesh = &mesh;
    in.numBanks = mesh.numTiles();
    in.banksPerTile = 1;
    in.bankLines = static_cast<std::uint64_t>(tileCap);
    in.allocGranule = 64;
    const int num_vcs = threads + 2; // privates + process + global.
    for (int d = 0; d < num_vcs; d++) {
        Curve miss;
        if (d < threads) {
            miss.addPoint(0.0, 50000.0 * apki_scale);
            miss.addPoint(footprint_lines * 0.95,
                          45000.0 * apki_scale);
            miss.addPoint(footprint_lines, 500.0 * apki_scale);
            miss.addPoint(footprint_lines * 8, 400.0 * apki_scale);
        } else {
            miss.addPoint(0.0, 100.0);
            miss.addPoint(footprint_lines * 8, 100.0);
        }
        in.missCurves.push_back(miss);
    }
    for (int t = 0; t < threads; t++) {
        std::vector<double> row(num_vcs, 0.0);
        row[t] = 60000.0 * apki_scale;
        row[num_vcs - 2] = 10.0;
        row[num_vcs - 1] = 5.0;
        in.access.push_back(row);
        in.threadCore.push_back(static_cast<TileId>(t)); // Clustered.
    }
    return in;
}

double
totalCost(const RuntimeOutput &out, const RuntimeInput &in)
{
    std::vector<double> sizes(out.alloc.size(), 0.0);
    for (std::size_t d = 0; d < out.alloc.size(); d++) {
        for (double a : out.alloc[d])
            sizes[d] += a;
    }
    return onChipCost(out.alloc, sizes, in.access, out.threadCore,
                      *in.mesh);
}

TEST(CdcsRuntimeTest, ProducesValidAllocation)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 3 * tileCap);
    CdcsRuntime runtime;
    const RuntimeOutput out = runtime.reconfigure(in);
    ASSERT_EQ(out.alloc.size(), in.missCurves.size());
    std::vector<double> tile_use(mesh.numTiles(), 0.0);
    for (const auto &row : out.alloc) {
        for (std::size_t b = 0; b < row.size(); b++) {
            EXPECT_GE(row[b], 0.0);
            tile_use[b] += row[b];
        }
    }
    for (double use : tile_use)
        EXPECT_LE(use, tileCap + 1e-6);
    // Cliff VCs should receive their working sets.
    for (int t = 0; t < 8; t++) {
        double size = 0.0;
        for (double a : out.alloc[t])
            size += a;
        EXPECT_GT(size, 2.5 * tileCap);
    }
}

TEST(CdcsRuntimeTest, SpreadsClusteredThreads)
{
    // 8 capacity-hungry threads clustered in a corner: CDCS should
    // spread them out (Sec. II-B case study).
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 3 * tileCap);
    CdcsRuntime runtime;
    const RuntimeOutput out = runtime.reconfigure(in);
    double pairwise = 0.0;
    int pairs = 0;
    for (int a = 0; a < 8; a++) {
        for (int b = a + 1; b < 8; b++) {
            pairwise += mesh.hops(out.threadCore[a], out.threadCore[b]);
            pairs++;
        }
    }
    double before = 0.0;
    for (int a = 0; a < 8; a++) {
        for (int b = a + 1; b < 8; b++)
            before += mesh.hops(in.threadCore[a], in.threadCore[b]);
    }
    EXPECT_GT(pairwise / pairs, before / pairs);
}

TEST(CdcsRuntimeTest, BeatsJigsawOnContendedInput)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 3 * tileCap);
    CdcsRuntime cdcs_rt;
    JigsawRuntime jigsaw_rt;
    const RuntimeOutput cdcs_out = cdcs_rt.reconfigure(in);
    const RuntimeOutput jigsaw_out = jigsaw_rt.reconfigure(in);
    EXPECT_LT(totalCost(cdcs_out, in), totalCost(jigsaw_out, in));
    // Jigsaw never moves threads.
    EXPECT_EQ(jigsaw_out.threadCore, in.threadCore);
}

TEST(CdcsRuntimeTest, ReportsStepTimes)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 2 * tileCap);
    CdcsRuntime runtime;
    const RuntimeOutput out = runtime.reconfigure(in);
    EXPECT_GT(out.times.allocUs, 0.0);
    EXPECT_GT(out.times.threadPlaceUs, 0.0);
    EXPECT_GT(out.times.dataPlaceUs, 0.0);
}

TEST(AnnealTest, ThreadAnnealingNeverWorsens)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 3 * tileCap);
    CdcsRuntime runtime;
    const RuntimeOutput out = runtime.reconfigure(in);

    std::vector<double> sizes(out.alloc.size(), 0.0);
    for (std::size_t d = 0; d < out.alloc.size(); d++) {
        for (double a : out.alloc[d])
            sizes[d] += a;
    }
    const double before = onChipCost(out.alloc, sizes, in.access,
                                     out.threadCore, mesh);
    Rng rng(3);
    const auto annealed =
        annealThreads(out.alloc, sizes, in.access, out.threadCore,
                      mesh, 3000, rng);
    const double after =
        onChipCost(out.alloc, sizes, in.access, annealed, mesh);
    // SA is a comparator: it should be at most marginally better
    // than the heuristic (the paper reports ~0.6%); in particular it
    // must not find dramatic wins.
    EXPECT_LE(after, before * 1.001 + 1e-6);
    EXPECT_GT(after, before * 0.80);
}

TEST(AnnealTest, AnnealingRuntimeCloseToHeuristic)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 12, 2 * tileCap);
    CdcsRuntime heuristic;
    AnnealingRuntime annealed(CdcsOptions{}, 2000, 99);
    const double h = totalCost(heuristic.reconfigure(in), in);
    const double a = totalCost(annealed.reconfigure(in), in);
    // Within a few percent of each other (Sec. VI-C).
    EXPECT_NEAR(a / h, 1.0, 0.15);
}

TEST(BisectTest, ProducesValidPlacement)
{
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 8, 2 * tileCap);
    BisectRuntime runtime;
    const RuntimeOutput out = runtime.reconfigure(in);
    // Threads on distinct cores.
    std::vector<bool> used(mesh.numTiles(), false);
    for (TileId c : out.threadCore) {
        EXPECT_LT(c, mesh.numTiles());
        EXPECT_FALSE(used[c]);
        used[c] = true;
    }
    // Capacity within tile bounds.
    std::vector<double> tile_use(mesh.numTiles(), 0.0);
    for (const auto &row : out.alloc) {
        for (std::size_t b = 0; b < row.size(); b++)
            tile_use[b] += row[b];
    }
    for (double use : tile_use)
        EXPECT_LE(use, tileCap + 1.0);
}

TEST(BisectTest, CdcsAtLeastMatchesBisection)
{
    // The paper: graph partitioning does not outperform CDCS.
    Mesh mesh(6, 6);
    RuntimeInput in = makeInput(mesh, 10, 2.5 * tileCap);
    CdcsRuntime cdcs_rt;
    BisectRuntime bisect_rt;
    const double c = totalCost(cdcs_rt.reconfigure(in), in);
    const double b = totalCost(bisect_rt.reconfigure(in), in);
    EXPECT_LE(c, b * 1.05);
}

} // anonymous namespace
} // namespace cdcs
