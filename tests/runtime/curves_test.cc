/**
 * @file
 * Tests for total-latency curve construction (Sec. IV-C / Fig. 5).
 */

#include <gtest/gtest.h>

#include "runtime/curves.hh"

namespace cdcs
{
namespace
{

Curve
cliffMissCurve(double total, double cliff_x)
{
    Curve c;
    c.addPoint(0.0, total);
    c.addPoint(cliff_x, total * 0.95);
    c.addPoint(cliff_x * 1.05, total * 0.02);
    c.addPoint(cliff_x * 30.0, total * 0.02);
    return c;
}

TEST(LatencyCurveTest, MissOnlyModeIsScaledMissCurve)
{
    Mesh mesh(8, 8);
    LatencyModel lat;
    Curve miss = cliffMissCurve(1000.0, 8192.0);
    const Curve total =
        totalLatencyCurve(miss, 5000.0, mesh, 8192.0, lat, false);
    // Monotone non-increasing: no on-chip term.
    EXPECT_TRUE(total.isNonIncreasing(1e-6));
    // Off-chip cost dominates: ratio between endpoints tracks misses.
    EXPECT_GT(total.at(0.0), total.at(32768.0) * 10.0);
}

TEST(LatencyCurveTest, LatencyAwareCurveHasSweetSpot)
{
    // Fig. 5: off-chip falls, on-chip grows; the total is U-shaped
    // for a VC whose misses stop improving. Accesses must be in the
    // same ballpark as misses (a cliff app misses most accesses below
    // the fit).
    Mesh mesh(8, 8);
    LatencyModel lat;
    Curve miss = cliffMissCurve(1000.0, 8192.0);
    const Curve total =
        totalLatencyCurve(miss, 1100.0, mesh, 8192.0, lat, true);
    const double at_fit = total.at(9000.0);
    const double at_huge = total.at(8192.0 * 40);
    EXPECT_LT(at_fit, total.at(0.0));
    EXPECT_LT(at_fit, at_huge); // Going far beyond the fit hurts.
}

TEST(LatencyCurveTest, StreamingAppGainsNothing)
{
    // Flat miss curve (milc): any allocation only adds on-chip
    // latency, so the curve is minimized at (near) zero.
    Mesh mesh(8, 8);
    LatencyModel lat;
    Curve miss;
    miss.addPoint(0.0, 500.0);
    miss.addPoint(8192.0 * 64, 500.0);
    const Curve total =
        totalLatencyCurve(miss, 20000.0, mesh, 8192.0, lat, true);
    double best_x = 0.0;
    double best_y = total.at(0.0);
    for (const auto &p : total.samples()) {
        if (p.y < best_y) {
            best_y = p.y;
            best_x = p.x;
        }
    }
    EXPECT_LT(best_x, 8192.0);
}

TEST(LatencyCurveTest, HigherIntensityShiftsSweetSpotSmaller)
{
    Mesh mesh(8, 8);
    LatencyModel lat;
    // Gradually-improving misses.
    Curve miss;
    for (double x = 0.0; x <= 8192.0 * 32; x += 8192.0)
        miss.addPoint(x, 2000.0 / (1.0 + x / 8192.0));

    auto sweet_spot = [&](double accesses) {
        const Curve total = totalLatencyCurve(miss, accesses, mesh,
                                              8192.0, lat, true);
        double bx = 0.0, by = total.at(0.0);
        for (const auto &p : total.samples()) {
            if (p.y < by) {
                by = p.y;
                bx = p.x;
            }
        }
        return bx;
    };
    // More accesses -> on-chip latency matters more -> smaller
    // latency-optimal allocation.
    EXPECT_LE(sweet_spot(3.0e6), sweet_spot(1.0e4));
}

} // anonymous namespace
} // namespace cdcs
