/**
 * @file
 * Tests for the reconfiguration-stability layer (DESIGN.md Sec. 6):
 * the runtime pipeline must reach a fixed point on stationary inputs,
 * size hysteresis must absorb noise without masking real change, and
 * the data annealer (ILP stand-in) must respect conservation.
 */

#include <gtest/gtest.h>

#include "runtime/anneal.hh"
#include "runtime/jigsaw_runtime.hh"
#include "runtime/refined_placer.hh"

namespace cdcs
{
namespace
{

constexpr double tileCap = 8192.0;

RuntimeInput
stationaryInput(const Mesh &mesh, int threads, double jitter,
                std::uint64_t seed)
{
    Rng rng(seed);
    RuntimeInput in;
    in.mesh = &mesh;
    in.numBanks = mesh.numTiles();
    in.banksPerTile = 1;
    in.bankLines = static_cast<std::uint64_t>(tileCap);
    in.allocGranule = 64;
    const int num_vcs = threads + 2;
    for (int d = 0; d < num_vcs; d++) {
        Curve miss;
        const double noise = 1.0 + rng.uniform(-jitter, jitter);
        if (d < threads) {
            miss.addPoint(0.0, 40000.0 * noise);
            miss.addPoint(2.5 * tileCap, 38000.0 * noise);
            miss.addPoint(2.7 * tileCap, 800.0 * noise);
            miss.addPoint(20.0 * tileCap, 700.0 * noise);
        } else {
            miss.addPoint(0.0, 50.0);
            miss.addPoint(20.0 * tileCap, 50.0);
        }
        in.missCurves.push_back(miss);
    }
    for (int t = 0; t < threads; t++) {
        std::vector<double> row(num_vcs, 0.0);
        row[t] = 50000.0 * (1.0 + rng.uniform(-jitter, jitter));
        row[num_vcs - 2] = 10.0;
        row[num_vcs - 1] = 2.0;
        in.access.push_back(row);
        in.threadCore.push_back(static_cast<TileId>(t));
    }
    return in;
}

TEST(StabilityTest, PipelineReachesFixedPointOnNoisyInputs)
{
    // Feed the runtime slightly-jittered versions of the same
    // stationary workload: after the first reconfiguration, outputs
    // must stop changing (sizes via hysteresis, placement via the
    // deterministic quantized pipeline).
    Mesh mesh(6, 6);
    CdcsRuntime runtime;
    RuntimeOutput prev;
    int changed_epochs = 0;
    for (int epoch = 0; epoch < 6; epoch++) {
        const RuntimeInput in =
            stationaryInput(mesh, 6, 0.04, 100 + epoch);
        RuntimeOutput out = runtime.reconfigure(in);
        if (epoch > 0) {
            double diff = 0.0;
            for (std::size_t d = 0; d < out.alloc.size(); d++) {
                for (std::size_t b = 0; b < out.alloc[d].size(); b++)
                    diff += std::abs(out.alloc[d][b] -
                                     prev.alloc[d][b]);
            }
            if (diff > 1024.0)
                changed_epochs++;
        }
        prev = std::move(out);
    }
    // At most the first post-bootstrap step may still be settling.
    EXPECT_LE(changed_epochs, 1);
}

TEST(StabilityTest, SizeHysteresisStillTracksRealChange)
{
    // A genuine 2x working-set growth must not be masked.
    Mesh mesh(6, 6);
    CdcsRuntime runtime;
    RuntimeInput small = stationaryInput(mesh, 4, 0.0, 1);
    const RuntimeOutput before = runtime.reconfigure(small);

    RuntimeInput big = small;
    for (int d = 0; d < 4; d++) {
        Curve miss;
        miss.addPoint(0.0, 40000.0);
        miss.addPoint(5.0 * tileCap, 38000.0);
        miss.addPoint(5.4 * tileCap, 800.0);
        miss.addPoint(20.0 * tileCap, 700.0);
        big.missCurves[d] = miss;
    }
    const RuntimeOutput after = runtime.reconfigure(big);
    double size_before = 0.0, size_after = 0.0;
    for (double a : before.alloc[0])
        size_before += a;
    for (double a : after.alloc[0])
        size_after += a;
    // The cliff moved from ~2.6 to ~5.4 tiles; the new allocation
    // must track it (well beyond any hysteresis band).
    EXPECT_GT(size_after, 1.3 * size_before);
}

TEST(StabilityTest, AnnealDataConservesCapacity)
{
    Mesh mesh(4, 4);
    const int num_vcs = 4;
    std::vector<double> sizes(num_vcs, 2.0 * tileCap);
    std::vector<std::vector<double>> access;
    std::vector<TileId> cores;
    for (int t = 0; t < num_vcs; t++) {
        std::vector<double> row(num_vcs, 0.0);
        row[t] = 1000.0;
        access.push_back(row);
        cores.push_back(static_cast<TileId>(t));
    }
    auto alloc = refinePlace(sizes, access, cores, mesh, tileCap, {});

    std::vector<double> tile_before(mesh.numTiles(), 0.0);
    for (const auto &row : alloc) {
        for (TileId b = 0; b < mesh.numTiles(); b++)
            tile_before[b] += row[b];
    }

    Rng rng(3);
    const auto annealed = annealData(alloc, sizes, access, cores,
                                     mesh, tileCap, 256.0, 2000, rng);
    for (std::size_t d = 0; d < annealed.size(); d++) {
        double total = 0.0;
        for (double a : annealed[d]) {
            EXPECT_GE(a, -1e-9);
            total += a;
        }
        EXPECT_NEAR(total, sizes[d], 1e-6);
    }
    std::vector<double> tile_after(mesh.numTiles(), 0.0);
    for (const auto &row : annealed) {
        for (TileId b = 0; b < mesh.numTiles(); b++)
            tile_after[b] += row[b];
    }
    for (TileId b = 0; b < mesh.numTiles(); b++)
        EXPECT_NEAR(tile_after[b], tile_before[b], 1e-6);
}

TEST(StabilityTest, TradeThresholdSuppressesMarginalSwaps)
{
    // With a huge threshold the trading pass must change nothing
    // relative to greedy.
    Mesh mesh(4, 4);
    std::vector<double> sizes{4.0 * tileCap, 4.0 * tileCap};
    std::vector<std::vector<double>> access{{900.0, 0.0},
                                            {0.0, 1000.0}};
    std::vector<TileId> cores{0, 15};
    RefinedPlacerConfig greedy;
    greedy.trades = false;
    RefinedPlacerConfig guarded;
    guarded.trades = true;
    guarded.tradeThresholdHops = 1e9;
    const auto a = refinePlace(sizes, access, cores, mesh, tileCap,
                               greedy);
    const auto b = refinePlace(sizes, access, cores, mesh, tileCap,
                               guarded);
    for (std::size_t d = 0; d < a.size(); d++) {
        for (TileId t = 0; t < mesh.numTiles(); t++)
            EXPECT_DOUBLE_EQ(a[d][t], b[d][t]);
    }
}

TEST(StabilityTest, JigsawAllocatesAllCapacityDeterministically)
{
    // Jigsaw hands out the full LLC; two runs with identical inputs
    // must produce identical allocations.
    Mesh mesh(6, 6);
    JigsawRuntime r1, r2;
    const RuntimeInput in = stationaryInput(mesh, 8, 0.0, 9);
    const RuntimeOutput a = r1.reconfigure(in);
    const RuntimeOutput b = r2.reconfigure(in);
    double total = 0.0;
    for (std::size_t d = 0; d < a.alloc.size(); d++) {
        for (std::size_t bk = 0; bk < a.alloc[d].size(); bk++) {
            EXPECT_DOUBLE_EQ(a.alloc[d][bk], b.alloc[d][bk]);
            total += a.alloc[d][bk];
        }
    }
    // All (or nearly all, modulo granule rounding) capacity is out.
    EXPECT_GT(total, 0.95 * tileCap * mesh.numTiles());
}

} // anonymous namespace
} // namespace cdcs
