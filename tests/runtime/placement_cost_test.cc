/**
 * @file
 * Tests for the placement cost oracle (runtime/placement_cost.hh):
 * the zero-load oracle must reproduce the legacy Mesh arithmetic
 * exactly on every query, and the contention oracle must price
 * measured link waits monotonically in the injected load while
 * quantization keeps noise-level waits invisible.
 */

#include <gtest/gtest.h>

#include "net/contention_noc.hh"
#include "net/zero_load_noc.hh"
#include "runtime/placement_cost.hh"

namespace cdcs
{
namespace
{

/** Drive identical traffic into a ContentionNoc and refresh it. */
void
loadRoute(ContentionNoc &noc, TileId src, TileId dst,
          std::uint32_t flits, int messages, double elapsed)
{
    for (int i = 0; i < messages; i++)
        noc.addTraffic(TrafficClass::L2ToLLC, src, dst, flits);
    noc.epochUpdate(elapsed);
}

TEST(PlacementCostTest, ZeroLoadOracleEqualsMeshArithmetic)
{
    // The acceptance contract of the refactor: under the zero-load
    // model every oracle query is the exact legacy expression, on
    // every tile pair, so consumers produce byte-identical results.
    Mesh mesh(8, 8);
    ZeroLoadNoc noc(mesh);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    ASSERT_TRUE(cost.valid());
    EXPECT_FALSE(cost.contended());
    for (TileId a = 0; a < mesh.numTiles(); a++) {
        for (TileId b = 0; b < mesh.numTiles(); b++) {
            EXPECT_EQ(cost.tileDist(a, b),
                      static_cast<double>(mesh.hops(a, b)));
        }
        EXPECT_EQ(cost.avgMemDist(a), mesh.avgHopsToMemCtrl(a));
        for (double x = 0.0; x < 8.0; x += 0.25) {
            for (double y = 0.0; y < 8.0; y += 1.75) {
                EXPECT_EQ(cost.distanceToPoint(a, x, y),
                          mesh.distanceToPoint(a, x, y));
            }
        }
    }
    for (double banks = 0.0; banks <= 64.0; banks += 0.5)
        EXPECT_EQ(cost.optimisticDistance(banks),
                  mesh.optimisticDistance(banks));
}

TEST(PlacementCostTest, UnloadedContentionNocIsZeroWait)
{
    // Before any traffic (or after an idle epoch) the contention
    // model reports no waits, and the oracle degenerates to the
    // zero-load arithmetic.
    Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    noc.epochUpdate(10000.0);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    EXPECT_FALSE(cost.contended());
    EXPECT_EQ(cost.tileDist(0, 15),
              static_cast<double>(mesh.hops(0, 15)));
}

TEST(PlacementCostTest, ContendedRouteCostsMoreThanHops)
{
    Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    // Saturate the row-0 route: near-clamp utilization on its links.
    loadRoute(noc, mesh.tileAt(0, 0), mesh.tileAt(3, 0),
              /*flits=*/4, /*messages=*/4000, /*elapsed=*/4000.0);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    ASSERT_TRUE(cost.contended());
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(3, 0);
    EXPECT_GT(cost.tileDist(src, dst),
              static_cast<double>(mesh.hops(src, dst)));
    // A route through quiet links is undisturbed.
    EXPECT_EQ(cost.tileDist(mesh.tileAt(0, 3), mesh.tileAt(3, 3)),
              static_cast<double>(mesh.hops(mesh.tileAt(0, 3),
                                            mesh.tileAt(3, 3))));
}

TEST(PlacementCostTest, EffectiveDistanceMonotoneInInjectedLoad)
{
    // Same measured traffic, increasing injection scale: the
    // effective distance of the loaded route never decreases and
    // eventually strictly exceeds the zero-load hops.
    Mesh mesh(4, 4);
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(3, 0);
    double prev = 0.0;
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
        ContentionNoc noc(mesh, scale, 0.95);
        loadRoute(noc, src, dst, /*flits=*/2, /*messages=*/1000,
                  /*elapsed=*/8000.0);
        const PlacementCostModel cost =
            PlacementCostModel::fromNoc(noc, 4.0);
        const double dist = cost.tileDist(src, dst);
        EXPECT_GE(dist, prev);
        prev = dist;
    }
    EXPECT_GT(prev, static_cast<double>(mesh.hops(src, dst)));
}

TEST(PlacementCostTest, QuantizationSuppressesNoiseWaits)
{
    // A lightly loaded link (utilization a few percent) yields a
    // sub-quantum wait; the oracle must treat it as zero-load so the
    // placement tie-breaks stay in charge.
    Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    loadRoute(noc, mesh.tileAt(0, 0), mesh.tileAt(3, 0),
              /*flits=*/1, /*messages=*/100, /*elapsed=*/10000.0);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    EXPECT_FALSE(cost.contended());
}

TEST(PlacementCostTest, EwmaBlendDampsWaitSwings)
{
    Mesh mesh(4, 4);
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(3, 0);

    ContentionNoc loaded(mesh, 1.0, 0.95);
    loadRoute(loaded, src, dst, /*flits=*/4, /*messages=*/4000,
              /*elapsed=*/4000.0);
    const PlacementCostModel hot =
        PlacementCostModel::fromNoc(loaded, 4.0);
    const double hot_dist = hot.tileDist(src, dst);

    // The next epoch measures an idle network; with alpha = 0.5 the
    // blended oracle still charges about half the previous wait
    // instead of snapping to zero.
    ContentionNoc idle(mesh, 1.0, 0.95);
    idle.epochUpdate(4000.0);
    const PlacementCostModel blended =
        PlacementCostModel::fromNoc(idle, 4.0, &hot, 0.5);
    const double hops = mesh.hops(src, dst);
    EXPECT_GT(blended.tileDist(src, dst), hops);
    EXPECT_LT(blended.tileDist(src, dst), hot_dist);

    // alpha = 1.0 (no smoothing) snaps to the fresh measurement.
    const PlacementCostModel unsmoothed =
        PlacementCostModel::fromNoc(idle, 4.0, &hot, 1.0);
    EXPECT_EQ(unsmoothed.tileDist(src, dst), hops);
}

TEST(PlacementCostTest, DistanceToPointChargesAnchorRoute)
{
    // distanceToPoint charges the wait of the route to the tile
    // nearest the point: a thread looking toward a center of mass
    // behind saturated links sees the inflated distance.
    Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    loadRoute(noc, mesh.tileAt(0, 0), mesh.tileAt(3, 0),
              /*flits=*/4, /*messages=*/4000, /*elapsed=*/4000.0);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    ASSERT_TRUE(cost.contended());
    const TileId src = mesh.tileAt(0, 0);
    EXPECT_GT(cost.distanceToPoint(src, 3.1, 0.2),
              mesh.distanceToPoint(src, 3.1, 0.2));
    // Quiet row: geometric distance only.
    const TileId quiet = mesh.tileAt(0, 3);
    EXPECT_EQ(cost.distanceToPoint(quiet, 3.1, 2.9),
              mesh.distanceToPoint(quiet, 3.1, 2.9));
}

} // anonymous namespace
} // namespace cdcs
