/**
 * @file
 * Tests for Peekahead allocation: optimality on convex inputs (checked
 * against exhaustive search), cliff handling via hulls, the
 * leave-capacity-unused behaviour, and granularity rounding.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/peekahead.hh"

namespace cdcs
{
namespace
{

/** Brute-force optimal allocation over a grid (small inputs only). */
double
bestCost(const std::vector<Curve> &curves, double capacity, double step)
{
    // Recursive exhaustive search.
    std::function<double(std::size_t, double)> rec =
        [&](std::size_t i, double left) -> double {
        if (i == curves.size())
            return 0.0;
        double best = std::numeric_limits<double>::max();
        for (double a = 0.0; a <= left + 1e-9; a += step) {
            best = std::min(best,
                            curves[i].at(a) + rec(i + 1, left - a));
        }
        return best;
    };
    return rec(0, capacity);
}

double
costOf(const std::vector<Curve> &curves, const std::vector<double> &alloc)
{
    double total = 0.0;
    for (std::size_t i = 0; i < curves.size(); i++)
        total += curves[i].at(alloc[i]);
    return total;
}

Curve
convexCurve(double start, double rate, double max_x)
{
    // Exponential-decay-ish convex curve sampled at integer points.
    Curve c;
    for (double x = 0.0; x <= max_x; x += 1.0)
        c.addPoint(x, start / (1.0 + rate * x));
    return c;
}

TEST(PeekaheadTest, SingleVcTakesWhatHelps)
{
    Curve c;
    c.addPoint(0.0, 100.0);
    c.addPoint(10.0, 0.0);
    const auto alloc = peekaheadAllocate({c}, 20.0, true);
    EXPECT_DOUBLE_EQ(alloc[0], 10.0); // Beyond 10, slope is 0.
}

TEST(PeekaheadTest, PrefersSteeperCurve)
{
    Curve steep, shallow;
    steep.addPoint(0.0, 100.0);
    steep.addPoint(10.0, 0.0);
    shallow.addPoint(0.0, 100.0);
    shallow.addPoint(10.0, 90.0);
    const auto alloc = peekaheadAllocate({steep, shallow}, 10.0, true);
    EXPECT_DOUBLE_EQ(alloc[0], 10.0);
    EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

TEST(PeekaheadTest, CliffCurvesAllocateAllOrNothing)
{
    // Two omnet-like cliffs: with capacity for only one, Lookahead
    // gives the whole cliff to one VC instead of splitting.
    Curve cliff1, cliff2;
    cliff1.addPoint(0.0, 100.0);
    cliff1.addPoint(9.0, 99.0);
    cliff1.addPoint(10.0, 1.0);
    cliff2.addPoint(0.0, 100.0);
    cliff2.addPoint(9.0, 99.0);
    cliff2.addPoint(10.0, 1.0);
    const auto alloc = peekaheadAllocate({cliff1, cliff2}, 10.0, true);
    const double big = std::max(alloc[0], alloc[1]);
    const double small = std::min(alloc[0], alloc[1]);
    EXPECT_DOUBLE_EQ(big, 10.0);
    EXPECT_DOUBLE_EQ(small, 0.0);
}

TEST(PeekaheadTest, LeavesCapacityUnusedOnUpturn)
{
    // Total-latency curve that turns upward (on-chip latency beats
    // miss reduction): allocation must stop at the sweet spot.
    Curve u;
    u.addPoint(0.0, 100.0);
    u.addPoint(5.0, 20.0);
    u.addPoint(10.0, 60.0);
    const auto alloc = peekaheadAllocate({u}, 10.0, true);
    EXPECT_DOUBLE_EQ(alloc[0], 5.0);
}

TEST(PeekaheadTest, JigsawModeConsumesFlatCurves)
{
    // With allow_unused=false, capacity keeps flowing into flat
    // (zero-slope) regions rather than stopping.
    Curve flat;
    flat.addPoint(0.0, 50.0);
    flat.addPoint(4.0, 10.0);
    flat.addPoint(20.0, 10.0);
    const auto alloc = peekaheadAllocate({flat}, 12.0, false);
    EXPECT_GE(alloc[0], 4.0);
}

TEST(PeekaheadTest, CapacityConserved)
{
    std::vector<Curve> curves;
    for (int i = 0; i < 8; i++)
        curves.push_back(convexCurve(100.0 * (i + 1), 0.5, 50.0));
    const auto alloc = peekaheadAllocate(curves, 100.0, true);
    double sum = 0.0;
    for (double a : alloc) {
        EXPECT_GE(a, 0.0);
        sum += a;
    }
    EXPECT_LE(sum, 100.0 + 1e-9);
}

TEST(PeekaheadTest, MatchesExhaustiveOnConvexInputs)
{
    std::vector<Curve> curves{convexCurve(100.0, 0.8, 12.0),
                              convexCurve(60.0, 0.3, 12.0),
                              convexCurve(200.0, 1.5, 12.0)};
    const auto alloc = peekaheadAllocate(curves, 12.0, false);
    const double greedy_cost = costOf(curves, alloc);
    const double optimal = bestCost(curves, 12.0, 1.0);
    EXPECT_NEAR(greedy_cost, optimal, optimal * 0.02 + 1e-9);
}

TEST(PeekaheadTest, GranuleRoundsDown)
{
    Curve c;
    c.addPoint(0.0, 100.0);
    c.addPoint(10.0, 0.0);
    const auto alloc = peekaheadAllocate({c}, 10.0, true, 4.0);
    EXPECT_DOUBLE_EQ(alloc[0], 8.0);
}

/** Property sweep over random convex instances vs. exhaustive. */
class PeekaheadProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PeekaheadProperty, NearOptimalOnRandomConvexInstances)
{
    Rng rng(GetParam());
    std::vector<Curve> curves;
    const int num_vcs = 3;
    for (int i = 0; i < num_vcs; i++) {
        curves.push_back(convexCurve(rng.uniform(50.0, 300.0),
                                     rng.uniform(0.2, 2.0), 10.0));
    }
    const double capacity = 10.0;
    const auto alloc =
        peekaheadAllocate(curves, capacity, false);
    const double greedy_cost = costOf(curves, alloc);
    const double optimal = bestCost(curves, capacity, 1.0);
    // Greedy over hulls is optimal up to grid resolution.
    EXPECT_LE(greedy_cost, optimal + optimal * 0.02 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeekaheadProperty,
                         ::testing::Range(1, 9));

} // anonymous namespace
} // namespace cdcs
