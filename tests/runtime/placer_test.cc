/**
 * @file
 * Tests for the three placement stages: optimistic contention-aware VC
 * placement, thread placement, and refined placement with trades.
 */

#include <gtest/gtest.h>

#include "net/contention_noc.hh"
#include "runtime/optimistic_placer.hh"
#include "runtime/refined_placer.hh"
#include "runtime/thread_placer.hh"

namespace cdcs
{
namespace
{

constexpr double tileCap = 8192.0;

TEST(OptimisticPlacerTest, TwoBigVcsAvoidEachOther)
{
    Mesh mesh(6, 6);
    // Two VCs of ~9 tiles each: their centers must separate.
    std::vector<double> sizes{9 * tileCap, 9 * tileCap};
    const OptimisticPlacement p = optimisticPlace(sizes, mesh, tileCap);
    const double dist = std::abs(p.comX[0] - p.comX[1]) +
        std::abs(p.comY[0] - p.comY[1]);
    EXPECT_GT(dist, 1.5);
}

TEST(OptimisticPlacerTest, SmallVcBarelyMatters)
{
    Mesh mesh(6, 6);
    std::vector<double> sizes{tileCap / 64, 9 * tileCap};
    const OptimisticPlacement p = optimisticPlace(sizes, mesh, tileCap);
    // The big VC is placed first; the compactness tie-break lands it
    // near the chip center.
    EXPECT_NEAR(p.comX[1], 2.5, 1.1);
    EXPECT_NEAR(p.comY[1], 2.5, 1.1);
}

TEST(OptimisticPlacerTest, ComsStayOnChip)
{
    Mesh mesh(8, 8);
    std::vector<double> sizes;
    for (int i = 0; i < 20; i++)
        sizes.push_back((i % 5) * tileCap);
    const OptimisticPlacement p = optimisticPlace(sizes, mesh, tileCap);
    for (std::size_t d = 0; d < sizes.size(); d++) {
        EXPECT_GE(p.comX[d], 0.0);
        EXPECT_LE(p.comX[d], 7.0);
        EXPECT_GE(p.comY[d], 0.0);
        EXPECT_LE(p.comY[d], 7.0);
    }
}

TEST(ThreadPlacerTest, ThreadMovesToItsData)
{
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {3.0};
    p.comY = {3.0};
    std::vector<std::vector<double>> access{{1000.0}};
    std::vector<double> sizes{tileCap};
    const auto cores = placeThreads(p, access, sizes, mesh, {0});
    EXPECT_EQ(cores[0], mesh.tileAt(3, 3));
}

TEST(ThreadPlacerTest, AssignmentIsInjective)
{
    Mesh mesh(4, 4);
    const int threads = 16;
    OptimisticPlacement p;
    std::vector<std::vector<double>> access;
    std::vector<double> sizes;
    for (int t = 0; t < threads; t++) {
        p.comX.push_back(1.5);
        p.comY.push_back(1.5);
        sizes.push_back(tileCap);
        std::vector<double> row(threads, 0.0);
        row[t] = 100.0;
        access.push_back(row);
    }
    const auto cores = placeThreads(p, access, sizes, mesh,
                                    std::vector<TileId>(threads, 0));
    std::vector<bool> used(mesh.numTiles(), false);
    for (TileId c : cores) {
        EXPECT_FALSE(used[c]);
        used[c] = true;
    }
}

TEST(ThreadPlacerTest, IntensityCapacityOrderWins)
{
    // Two threads want the same core; the one with the higher
    // intensity-capacity product gets it.
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {0.0, 0.0};
    p.comY = {0.0, 0.0};
    std::vector<std::vector<double>> access{{1000.0, 0.0},
                                            {0.0, 10.0}};
    std::vector<double> sizes{8 * tileCap, 8 * tileCap};
    const auto cores = placeThreads(p, access, sizes, mesh, {5, 5});
    EXPECT_EQ(cores[0], mesh.tileAt(0, 0));
    EXPECT_NE(cores[1], mesh.tileAt(0, 0));
}

TEST(ThreadPlacerTest, HysteresisKeepsEquivalentPlacement)
{
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {1.5};
    p.comY = {1.5};
    std::vector<std::vector<double>> access{{10.0}};
    std::vector<double> sizes{tileCap};
    // Current core 5 = (1,1) is among the distance-optimal cores;
    // hysteresis must keep the thread there.
    const auto cores = placeThreads(p, access, sizes, mesh, {5});
    EXPECT_EQ(cores[0], 5);
}

TEST(ThreadPlacerTest, IdleThreadsKeepTheirCores)
{
    // Regression: a zero-traffic thread costs 0.0 on every free core,
    // and the multiplicative hysteresis (cost *= 0.95) cannot win the
    // strict less-than comparison at zero — idle threads used to
    // churn to the lowest free core id every epoch. Ties must break
    // toward the current core.
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {1.5};
    p.comY = {1.5};
    std::vector<std::vector<double>> access{{0.0}, {0.0}, {0.0}};
    std::vector<double> sizes{tileCap};
    const std::vector<TileId> current{9, 14, 3};
    const auto cores = placeThreads(p, access, sizes, mesh, current);
    EXPECT_EQ(cores, current);
}

TEST(ThreadPlacerTest, IdleThreadAmongActiveOnesStaysPut)
{
    // One active thread placed first, idle threads keep their cores
    // (none of which the active thread wants).
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {0.0};
    p.comY = {0.0};
    std::vector<std::vector<double>> access{{0.0}, {1000.0}, {0.0}};
    std::vector<double> sizes{4 * tileCap};
    const std::vector<TileId> current{10, 0, 7};
    const auto cores = placeThreads(p, access, sizes, mesh, current);
    EXPECT_EQ(cores[0], 10);
    EXPECT_EQ(cores[2], 7);
}

TEST(ThreadPlacerTest, ZeroWaitOracleMatchesMeshChoice)
{
    // A zero-wait oracle must not change any placement decision.
    Mesh mesh(4, 4);
    const PlacementCostModel cost(mesh, 4.0);
    OptimisticPlacement p;
    p.comX = {3.0, 0.5};
    p.comY = {3.0, 2.5};
    std::vector<std::vector<double>> access{{1000.0, 0.0},
                                            {10.0, 500.0}};
    std::vector<double> sizes{tileCap, 2 * tileCap};
    const std::vector<TileId> current{0, 5};
    const auto baseline =
        placeThreads(p, access, sizes, mesh, current, nullptr);
    const auto oracle =
        placeThreads(p, access, sizes, mesh, current, &cost);
    EXPECT_EQ(baseline, oracle);
}

TEST(ThreadPlacerTest, ContendedRouteRepelsThread)
{
    // Two threads want the data at (1,1): the heavy one takes the
    // center tile, and the light one must choose among the
    // equidistant neighbors. When the south link of (1,0) is
    // saturated, every candidate routing through it inflates, so the
    // thread lands on the quiet (0,1) core instead of the
    // lowest-id (1,0).
    Mesh mesh(4, 4);
    OptimisticPlacement p;
    p.comX = {1.0};
    p.comY = {1.0};
    std::vector<std::vector<double>> access{{100000.0}, {1000.0}};
    std::vector<double> sizes{tileCap};
    const std::vector<TileId> current{15, 14};

    const auto baseline =
        placeThreads(p, access, sizes, mesh, current, nullptr);
    EXPECT_EQ(baseline[0], mesh.tileAt(1, 1));
    EXPECT_EQ(baseline[1], mesh.tileAt(1, 0));

    ContentionNoc noc(mesh, 1.0, 0.95);
    for (int i = 0; i < 4000; i++) {
        noc.addTraffic(TrafficClass::L2ToLLC, mesh.tileAt(1, 0),
                       mesh.tileAt(1, 1), 4);
    }
    noc.epochUpdate(4000.0);
    const PlacementCostModel cost =
        PlacementCostModel::fromNoc(noc, 4.0);
    ASSERT_TRUE(cost.contended());
    const auto steered =
        placeThreads(p, access, sizes, mesh, current, &cost);
    EXPECT_EQ(steered[0], mesh.tileAt(1, 1));
    EXPECT_EQ(steered[1], mesh.tileAt(0, 1));
}

TEST(RefinedPlacerTest, GreedyFillsNearestTiles)
{
    Mesh mesh(4, 4);
    std::vector<double> sizes{2 * tileCap};
    std::vector<std::vector<double>> access{{1000.0}};
    std::vector<TileId> cores{mesh.tileAt(0, 0)};
    RefinedPlacerConfig cfg;
    cfg.trades = false;
    const auto alloc =
        refinePlace(sizes, access, cores, mesh, tileCap, cfg);
    // All capacity within 1 hop of the accessor.
    double near = 0.0;
    for (TileId b = 0; b < mesh.numTiles(); b++) {
        if (mesh.hops(cores[0], b) <= 1)
            near += alloc[0][b];
    }
    EXPECT_NEAR(near, 2 * tileCap, 1.0);
}

TEST(RefinedPlacerTest, CapacityConservedAndNonNegative)
{
    Mesh mesh(4, 4);
    std::vector<double> sizes{3 * tileCap, 5 * tileCap, 0.5 * tileCap};
    std::vector<std::vector<double>> access{
        {100.0, 0.0, 0.0}, {0.0, 400.0, 0.0}, {0.0, 0.0, 50.0}};
    std::vector<TileId> cores{0, 5, 15};
    const auto alloc =
        refinePlace(sizes, access, cores, mesh, tileCap, {});
    std::vector<double> tile_use(mesh.numTiles(), 0.0);
    for (std::size_t d = 0; d < sizes.size(); d++) {
        double placed = 0.0;
        for (TileId b = 0; b < mesh.numTiles(); b++) {
            EXPECT_GE(alloc[d][b], 0.0);
            placed += alloc[d][b];
            tile_use[b] += alloc[d][b];
        }
        EXPECT_NEAR(placed, sizes[d], 1.0);
    }
    for (double use : tile_use)
        EXPECT_LE(use, tileCap + 1e-6);
}

TEST(RefinedPlacerTest, TradesNeverWorsenOnChipCost)
{
    Mesh mesh(6, 6);
    // Heavy contention: several VCs anchored in one corner.
    std::vector<double> sizes;
    std::vector<std::vector<double>> access;
    std::vector<TileId> cores;
    const int n = 6;
    for (int i = 0; i < n; i++) {
        sizes.push_back(4 * tileCap);
        std::vector<double> row(n, 0.0);
        row[i] = 100.0 * (i + 1);
        access.push_back(row);
        cores.push_back(static_cast<TileId>(i)); // Clustered corner.
    }
    RefinedPlacerConfig greedy_cfg;
    greedy_cfg.trades = false;
    const auto greedy =
        refinePlace(sizes, access, cores, mesh, tileCap, greedy_cfg);
    RefinedPlacerConfig trade_cfg;
    trade_cfg.trades = true;
    const auto traded =
        refinePlace(sizes, access, cores, mesh, tileCap, trade_cfg);
    EXPECT_LE(onChipCost(traded, sizes, access, cores, mesh),
              onChipCost(greedy, sizes, access, cores, mesh) + 1e-6);
}

TEST(RefinedPlacerTest, IntenseVcGetsCloserData)
{
    Mesh mesh(4, 4);
    // Two VCs anchored at the same core, one 10x more intense; it
    // should end up with lower weighted distance.
    std::vector<double> sizes{2 * tileCap, 2 * tileCap};
    std::vector<std::vector<double>> access{{1000.0, 100.0}};
    std::vector<TileId> cores{0};
    const auto alloc =
        refinePlace(sizes, access, cores, mesh, tileCap, {});
    auto weighted_dist = [&](int d) {
        double sum = 0.0, w = 0.0;
        for (TileId b = 0; b < mesh.numTiles(); b++) {
            sum += alloc[d][b] * mesh.hops(0, b);
            w += alloc[d][b];
        }
        return sum / w;
    };
    EXPECT_LE(weighted_dist(0), weighted_dist(1) + 1e-9);
}

} // anonymous namespace
} // namespace cdcs
