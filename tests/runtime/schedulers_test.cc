/**
 * @file
 * Tests for the static thread schedulers.
 */

#include <set>

#include <gtest/gtest.h>

#include "runtime/schedulers.hh"

namespace cdcs
{
namespace
{

TEST(SchedulersTest, RandomAssignsDistinctCores)
{
    Rng rng(1);
    const auto cores = randomSchedule(16, 64, rng);
    ASSERT_EQ(cores.size(), 16u);
    std::set<TileId> unique(cores.begin(), cores.end());
    EXPECT_EQ(unique.size(), 16u);
    for (TileId c : cores)
        EXPECT_LT(c, 64);
}

TEST(SchedulersTest, RandomIsSeedDeterministic)
{
    Rng a(7), b(7);
    EXPECT_EQ(randomSchedule(8, 16, a), randomSchedule(8, 16, b));
}

TEST(SchedulersTest, RandomActuallySpreads)
{
    // Over many seeds, every core must be used sometimes.
    std::set<TileId> seen;
    for (int seed = 0; seed < 100; seed++) {
        Rng rng(seed);
        for (TileId c : randomSchedule(4, 16, rng))
            seen.insert(c);
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(SchedulersTest, ClusteredKeepsProcessesContiguous)
{
    // Two processes with 4 threads each.
    std::vector<ProcId> procs{0, 0, 0, 0, 1, 1, 1, 1};
    const auto cores = clusteredSchedule(procs, 16);
    ASSERT_EQ(cores.size(), 8u);
    // Threads of process 0 occupy cores 0..3, process 1 cores 4..7.
    for (int t = 0; t < 4; t++)
        EXPECT_LT(cores[t], 4);
    for (int t = 4; t < 8; t++) {
        EXPECT_GE(cores[t], 4);
        EXPECT_LT(cores[t], 8);
    }
}

TEST(SchedulersTest, ClusteredHandlesInterleavedThreadIds)
{
    std::vector<ProcId> procs{1, 0, 1, 0};
    const auto cores = clusteredSchedule(procs, 8);
    // Process 0's threads (ids 1, 3) come first.
    EXPECT_LT(cores[1], 2);
    EXPECT_LT(cores[3], 2);
    EXPECT_GE(cores[0], 2);
    EXPECT_GE(cores[2], 2);
}

} // anonymous namespace
} // namespace cdcs
