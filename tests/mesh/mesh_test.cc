/**
 * @file
 * Tests for the mesh NoC model: distances, memory-controller hops,
 * latency, traffic accounting and the optimistic-placement distances.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "mesh/mesh.hh"

namespace cdcs
{
namespace
{

TEST(MeshTest, CoordRoundTrip)
{
    Mesh mesh(8, 8);
    for (TileId t = 0; t < mesh.numTiles(); t++) {
        const MeshCoord c = mesh.coordOf(t);
        EXPECT_EQ(mesh.tileAt(c.x, c.y), t);
    }
}

TEST(MeshTest, HopsAreManhattan)
{
    Mesh mesh(8, 8);
    EXPECT_EQ(mesh.hops(mesh.tileAt(0, 0), mesh.tileAt(7, 7)), 14);
    EXPECT_EQ(mesh.hops(mesh.tileAt(3, 4), mesh.tileAt(3, 4)), 0);
    EXPECT_EQ(mesh.hops(mesh.tileAt(2, 1), mesh.tileAt(5, 1)), 3);
}

TEST(MeshTest, HopsAreSymmetric)
{
    Mesh mesh(6, 6);
    for (TileId a = 0; a < mesh.numTiles(); a += 5) {
        for (TileId b = 0; b < mesh.numTiles(); b += 3)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
}

TEST(MeshTest, EightMemCtrlsOnEdges)
{
    Mesh mesh(8, 8);
    EXPECT_EQ(mesh.numMemCtrls(), 8);
}

TEST(MeshTest, DefaultEightByEightCtrlLayoutUnchanged)
{
    // The corner-collision fix must not move any controller of the
    // default (collision-free) target CMP: two per side at 1/3 and
    // 2/3, in top/bottom/left/right registration order.
    Mesh mesh(8, 8);
    ASSERT_EQ(mesh.numMemCtrls(), 8);
    const TileId expected[] = {
        mesh.tileAt(2, 0), mesh.tileAt(2, 7), mesh.tileAt(0, 2),
        mesh.tileAt(7, 2), mesh.tileAt(6, 0), mesh.tileAt(6, 7),
        mesh.tileAt(0, 6), mesh.tileAt(7, 6),
    };
    for (int c = 0; c < 8; c++)
        EXPECT_EQ(mesh.memCtrlTile(c), expected[c]) << c;
}

TEST(MeshTest, SmallMeshCtrlTilesAreDistinct)
{
    // 4x4 with 8 controllers used to stack the bottom and right k=1
    // controllers on tile (3,3); corner collisions now slide along
    // the edge. Check a range of shapes for duplicate tiles.
    // Every shape keeps ctrls <= perimeter tiles, so distinct
    // placement is feasible.
    const int shapes[][3] = {
        {4, 4, 8}, {4, 4, 12}, {5, 4, 8}, {6, 6, 8},
        {8, 8, 8}, {8, 8, 16}, {3, 3, 4}, {8, 4, 12},
    };
    for (const auto &[w, h, ctrls] : shapes) {
        Mesh mesh(w, h, NocConfig{}, ctrls);
        std::vector<TileId> tiles;
        for (int c = 0; c < mesh.numMemCtrls(); c++) {
            const TileId t = mesh.memCtrlTile(c);
            EXPECT_EQ(std::count(tiles.begin(), tiles.end(), t), 0)
                << w << "x" << h << "/" << ctrls << " ctrl " << c;
            tiles.push_back(t);
            // Still an edge tile.
            const MeshCoord coord = mesh.coordOf(t);
            EXPECT_TRUE(coord.x == 0 || coord.x == w - 1 ||
                        coord.y == 0 || coord.y == h - 1);
        }
    }
}

TEST(MeshTest, TinyMeshFallsBackToStackingWhenPerimeterFull)
{
    // 2x2 has a 4-tile perimeter; 8 controllers cannot be distinct,
    // but construction must still succeed (the pre-dedup behavior).
    Mesh mesh(2, 2, NocConfig{}, 8);
    EXPECT_EQ(mesh.numMemCtrls(), 8);
}

TEST(MeshTest, MemCtrlHopsIncludeAttachLink)
{
    Mesh mesh(8, 8);
    // Any tile is at least 1 hop from a controller (the attach link).
    for (TileId t = 0; t < mesh.numTiles(); t++)
        EXPECT_GE(mesh.hopsToMemCtrl(t, 0x12345), 1);
}

TEST(MeshTest, MemCtrlInterleavingIsPageGranular)
{
    Mesh mesh(8, 8);
    // All lines of one page go to the same controller.
    const LineAddr base = 0xABC00;
    const int h0 = mesh.hopsToMemCtrl(0, base & ~std::uint64_t{63});
    for (std::uint32_t i = 0; i < linesPerPage; i++) {
        EXPECT_EQ(mesh.hopsToMemCtrl(0, (base & ~std::uint64_t{63}) + i),
                  h0);
    }
}

TEST(MeshTest, ZeroLoadLatency)
{
    Mesh mesh(8, 8);
    // 3-cycle routers + 1-cycle links: h hops cost 4h, plus
    // serialization of payload flits.
    EXPECT_EQ(mesh.latency(5, 1), 20u);
    EXPECT_EQ(mesh.latency(5, 5), 24u);
    EXPECT_EQ(mesh.latency(0, 5), 4u);
}

TEST(MeshTest, LatencyRejectsZeroFlitMessages)
{
    Mesh mesh(8, 8);
    // A 1-flit message has no serialization term...
    EXPECT_EQ(mesh.latency(3, 1), 12u);
    // ...and an (invalid) 0-flit message must not wrap
    // `payload_flits - 1` around to a huge Cycles value.
    EXPECT_DEATH(mesh.latency(3, 0), "payload_flits > 0");
    EXPECT_DEATH(mesh.latency(0, 0), "payload_flits > 0");
}

TEST(MeshTest, DataMessageIsFiveFlits)
{
    NocConfig noc;
    // 64-byte line + header over 128-bit flits.
    EXPECT_EQ(noc.dataFlits(), 5u);
    EXPECT_EQ(noc.ctrlFlits(), 1u);
}

TEST(MeshTest, TilesByDistanceSorted)
{
    Mesh mesh(6, 6);
    for (TileId from = 0; from < mesh.numTiles(); from += 7) {
        const auto &order = mesh.tilesByDistance(from);
        ASSERT_EQ(order.size(), static_cast<std::size_t>(36));
        EXPECT_EQ(order[0], from);
        for (std::size_t i = 1; i < order.size(); i++) {
            EXPECT_LE(mesh.hops(from, order[i - 1]),
                      mesh.hops(from, order[i]));
        }
    }
}

TEST(MeshTest, OptimisticDistanceGrowsWithFootprint)
{
    Mesh mesh(8, 8);
    double prev = mesh.optimisticDistance(1.0);
    EXPECT_GE(prev, 0.0);
    for (double banks = 2.0; banks <= 64.0; banks += 1.0) {
        const double d = mesh.optimisticDistance(banks);
        EXPECT_GE(d + 1e-12, prev);
        prev = d;
    }
}

TEST(MeshTest, OptimisticDistanceMatchesPaperExample)
{
    // Fig. 6: an 8.2-bank VC compactly placed on a 6x6 mesh has an
    // average distance of about 1.27 hops.
    Mesh mesh(6, 6);
    EXPECT_NEAR(mesh.optimisticDistance(8.2), 1.27, 0.35);
}

TEST(MeshTest, DistanceToPointFractional)
{
    Mesh mesh(4, 4);
    EXPECT_DOUBLE_EQ(mesh.distanceToPoint(mesh.tileAt(0, 0), 1.5, 1.5),
                     3.0);
}

} // anonymous namespace
} // namespace cdcs
