/**
 * @file
 * Tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace cdcs
{
namespace
{

TEST(CacheArrayTest, ProbeMissOnEmpty)
{
    CacheArray array(64, 8);
    EXPECT_EQ(array.probe(0x123), nullptr);
    EXPECT_EQ(array.numValid(), 0u);
}

TEST(CacheArrayTest, InstallThenHit)
{
    CacheArray array(64, 8);
    const LineAddr addr = 0xBEEF;
    const std::uint32_t set = array.setOf(addr);
    array.install(addr, 3, 0);
    CacheLine *line = array.probe(addr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->vc, 3);
    EXPECT_TRUE(line->valid);
    EXPECT_EQ(array.setOf(line->addr), set);
    EXPECT_EQ(array.numValid(), 1u);
}

TEST(CacheArrayTest, InvalidateRemovesLine)
{
    CacheArray array(64, 8);
    array.install(0x42, 0, 0);
    EXPECT_TRUE(array.invalidate(0x42));
    EXPECT_EQ(array.probe(0x42), nullptr);
    EXPECT_FALSE(array.invalidate(0x42));
}

TEST(CacheArrayTest, LruStampAdvancesOnHit)
{
    CacheArray array(64, 8);
    array.install(0x1, 0, 0);
    const std::uint64_t stamp0 = array.peek(0x1)->lruStamp;
    array.probe(0x1);
    EXPECT_GT(array.peek(0x1)->lruStamp, stamp0);
}

TEST(CacheArrayTest, PeekDoesNotTouchLru)
{
    CacheArray array(64, 8);
    array.install(0x1, 0, 0);
    const std::uint64_t stamp0 = array.peek(0x1)->lruStamp;
    array.peek(0x1);
    EXPECT_EQ(array.peek(0x1)->lruStamp, stamp0);
}

TEST(CacheArrayTest, SetIndexIsStable)
{
    CacheArray array(128, 4);
    for (LineAddr a = 0; a < 1000; a++)
        EXPECT_EQ(array.setOf(a), array.setOf(a));
}

TEST(CacheArrayTest, SetHashSpreadsAddresses)
{
    CacheArray array(128, 4);
    std::vector<int> counts(128, 0);
    for (LineAddr a = 0; a < 128 * 64; a++)
        counts[array.setOf(a)]++;
    for (int c : counts) {
        EXPECT_GT(c, 16);
        EXPECT_LT(c, 192);
    }
}

TEST(CacheArrayTest, InvalidateAll)
{
    CacheArray array(64, 4);
    for (LineAddr a = 0; a < 100; a++)
        array.install(a, 0, a % 4);
    array.invalidateAll();
    EXPECT_EQ(array.numValid(), 0u);
}

} // anonymous namespace
} // namespace cdcs
