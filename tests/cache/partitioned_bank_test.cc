/**
 * @file
 * Tests for the Vantage-style partitioned bank: occupancy tracking,
 * target enforcement, victim selection, move/invalidate primitives and
 * conservation invariants (property-style sweeps via TEST_P).
 */

#include <gtest/gtest.h>

#include "cache/partitioned_bank.hh"
#include "common/rng.hh"

namespace cdcs
{
namespace
{

TEST(PartitionedBankTest, MissThenHit)
{
    PartitionedBank bank(1024, 16);
    const auto first = bank.access(0x10, 1, 0);
    EXPECT_FALSE(first.hit);
    const auto second = bank.access(0x10, 1, 0);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(bank.occupancy(1), 1u);
    EXPECT_EQ(bank.totalOccupancy(), 1u);
}

TEST(PartitionedBankTest, SharersAccumulate)
{
    PartitionedBank bank(1024, 16);
    bank.access(0x10, 1, 2);
    bank.access(0x10, 1, 5);
    CacheLine moved;
    ASSERT_TRUE(bank.extractForMove(0x10, moved));
    EXPECT_EQ(moved.sharers, (1ull << 2) | (1ull << 5));
}

TEST(PartitionedBankTest, TargetsEnforcedUnderContention)
{
    // Two VCs stream into one bank; VC 0 is entitled to 3/4, VC 1 to
    // 1/4. After warmup, occupancies should track targets closely.
    PartitionedBank bank(4096, 16);
    bank.setTarget(0, 3072);
    bank.setTarget(1, 1024);
    Rng rng(42);
    for (int i = 0; i < 200000; i++) {
        const VcId vc = rng.chance(0.5) ? 0 : 1;
        // Footprints far exceed targets so both VCs always insert.
        const LineAddr addr = (static_cast<LineAddr>(vc) << 32) |
            rng.below(65536);
        bank.access(addr, vc, 0);
    }
    EXPECT_NEAR(static_cast<double>(bank.occupancy(0)), 3072.0,
                3072.0 * 0.12);
    EXPECT_NEAR(static_cast<double>(bank.occupancy(1)), 1024.0,
                1024.0 * 0.25);
}

TEST(PartitionedBankTest, UnallocatedCapacityStaysUnused)
{
    // One VC with a small target: the bank must not fill beyond it
    // (plus set-level slack), modeling CDCS leaving capacity unused.
    PartitionedBank bank(4096, 16);
    bank.setTarget(7, 512);
    Rng rng(7);
    for (int i = 0; i < 100000; i++)
        bank.access(rng.below(1u << 20), 7, 0);
    EXPECT_LT(bank.totalOccupancy(), 1024u);
    EXPECT_GT(bank.totalOccupancy(), 256u);
}

TEST(PartitionedBankTest, ShrinkingTargetEvictsOverBudgetVc)
{
    PartitionedBank bank(2048, 16);
    bank.setTarget(0, 2048);
    for (LineAddr a = 0; a < 1500; a++)
        bank.access(a, 0, 0);
    const std::uint64_t before = bank.occupancy(0);
    EXPECT_GT(before, 1000u);

    // Shrink VC 0, grow VC 1; VC 1's insertions should displace VC 0.
    bank.setTarget(0, 256);
    bank.setTarget(1, 1792);
    for (LineAddr a = 0; a < 3000; a++)
        bank.access((1ull << 32) | a, 1, 0);
    EXPECT_LT(bank.occupancy(0), before);
    EXPECT_GT(bank.occupancy(1), 1000u);
}

TEST(PartitionedBankTest, ExtractForMoveInvalidates)
{
    PartitionedBank bank(1024, 16);
    bank.access(0x99, 2, 1);
    CacheLine moved;
    ASSERT_TRUE(bank.extractForMove(0x99, moved));
    EXPECT_EQ(moved.addr, 0x99u);
    EXPECT_EQ(moved.vc, 2);
    EXPECT_EQ(bank.occupancy(2), 0u);
    EXPECT_FALSE(bank.extractForMove(0x99, moved));
}

TEST(PartitionedBankTest, InstallMovedPreservesSharers)
{
    PartitionedBank src(1024, 16);
    PartitionedBank dst(1024, 16);
    src.access(0x7, 3, 4);
    src.access(0x7, 3, 9);
    CacheLine moved;
    ASSERT_TRUE(src.extractForMove(0x7, moved));
    dst.installMoved(moved, 3);
    EXPECT_TRUE(dst.probeHit(0x7, 3, 4));
    CacheLine again;
    ASSERT_TRUE(dst.extractForMove(0x7, again));
    EXPECT_EQ(again.sharers & ((1ull << 4) | (1ull << 9)),
              (1ull << 4) | (1ull << 9));
}

TEST(PartitionedBankTest, WalkInvalidateFiltersByPredicate)
{
    PartitionedBank bank(1024, 16);
    for (LineAddr a = 0; a < 500; a++)
        bank.access(a, a % 2, 0);
    std::uint64_t invalidated = 0;
    bank.resetWalk();
    const bool done = bank.walkInvalidate(
        bank.numSets(),
        [](const CacheLine &line) { return line.vc == 1; },
        invalidated);
    EXPECT_TRUE(done);
    EXPECT_EQ(invalidated, bank.numLines() ? 250u : 0u);
    EXPECT_EQ(bank.occupancy(1), 0u);
    EXPECT_EQ(bank.occupancy(0), 250u);
}

TEST(PartitionedBankTest, WalkIsIncremental)
{
    PartitionedBank bank(1024, 16);
    for (LineAddr a = 0; a < 600; a++)
        bank.access(a, 0, 0);
    std::uint64_t invalidated = 0;
    bank.resetWalk();
    bool done = bank.walkInvalidate(
        bank.numSets() / 2,
        [](const CacheLine &) { return true; }, invalidated);
    EXPECT_FALSE(done);
    EXPECT_GT(invalidated, 0u);
    EXPECT_LT(invalidated, 600u);
    done = bank.walkInvalidate(
        bank.numSets(), [](const CacheLine &) { return true; },
        invalidated);
    EXPECT_TRUE(done);
    EXPECT_EQ(bank.totalOccupancy(), 0u);
}

/** Property sweep: occupancy bookkeeping is exactly conserved. */
class BankConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(BankConservation, OccupancySumsMatchValidLines)
{
    const int seed = GetParam();
    PartitionedBank bank(2048, 16);
    Rng rng(seed);
    const int num_vcs = 5;
    for (int d = 0; d < num_vcs; d++)
        bank.setTarget(d, 2048 / num_vcs);
    for (int i = 0; i < 50000; i++) {
        const auto vc = static_cast<VcId>(rng.below(num_vcs));
        const LineAddr addr =
            (static_cast<LineAddr>(vc) << 32) | rng.below(4096);
        bank.access(addr, vc, static_cast<TileId>(rng.below(8)));
        if (rng.chance(0.01)) {
            CacheLine moved;
            bank.extractForMove(addr, moved);
        }
        if (rng.chance(0.005))
            bank.invalidateLine(addr);
    }
    std::uint64_t occ_sum = 0;
    for (int d = 0; d < num_vcs; d++)
        occ_sum += bank.occupancy(d);
    EXPECT_EQ(occ_sum, bank.totalOccupancy());
    EXPECT_EQ(occ_sum, bank.rawArray().numValid());
    EXPECT_LE(occ_sum, bank.numLines());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankConservation,
                         ::testing::Values(1, 2, 3, 11, 29));

} // anonymous namespace
} // namespace cdcs
