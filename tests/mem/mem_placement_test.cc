/**
 * @file
 * Tests for the pluggable memory placement layer: registry
 * round-trip and rejection, interleave parity with the legacy page
 * hash, first-touch identity with the legacy numaAwareMem runs, the
 * M/D/m memory queue's monotonicity in the channel count, and the
 * contention policy steering hot pages off a saturated controller.
 */

#include <gtest/gtest.h>

#include <limits>

#include "mem/mem_placement.hh"
#include "mem/mem_placement_registry.hh"
#include "mem/mem_queue.hh"
#include "net/contention_noc.hh"
#include "sim/experiment.hh"
#include "sim/overrides.hh"

namespace cdcs
{
namespace
{

TEST(MemPlacementRegistryTest, BuiltInPoliciesRegistered)
{
    MemPlacementRegistry &registry = MemPlacementRegistry::instance();
    EXPECT_TRUE(registry.contains("interleave"));
    EXPECT_TRUE(registry.contains("first-touch"));
    EXPECT_TRUE(registry.contains("contention"));
    EXPECT_FALSE(registry.contains("no-such-policy"));

    const Mesh mesh(4, 4);
    const MemPlacementBuildParams params;
    for (const char *name :
         {"interleave", "first-touch", "contention"}) {
        const auto policy = registry.build(name, mesh, params);
        EXPECT_STREQ(policy->name(), name);
    }
    const auto names = registry.names();
    ASSERT_GE(names.size(), 3u);
    for (std::size_t i = 1; i < names.size(); i++)
        EXPECT_LT(names[i - 1], names[i]);
}

TEST(MemPlacementRegistryTest, OverrideRejectsUnknownPolicy)
{
    Overrides ov;
    std::string err;
    EXPECT_TRUE(ov.add("memPlacement=contention", &err)) << err;
    EXPECT_FALSE(ov.add("memPlacement=no-such-policy", &err));
    EXPECT_NE(err.find("no-such-policy"), std::string::npos);
    // The error lists the registered policies.
    EXPECT_NE(err.find("interleave"), std::string::npos);

    SystemConfig cfg;
    ov.apply(cfg);
    EXPECT_EQ(cfg.memPlacement, "contention");
}

TEST(MemPlacementTest, InterleaveMatchesLegacyPageHash)
{
    const Mesh mesh(8, 8);
    InterleaveMemPlacement policy(mesh);
    for (LineAddr line = 0; line < 100000; line += 977)
        EXPECT_EQ(policy.controllerFor(0, line), mesh.memCtrlOf(line));
}

TEST(MemPlacementTest, FirstTouchPinsToFirstToucherNearestCtrl)
{
    const Mesh mesh(8, 8);
    FirstTouchMemPlacement policy(mesh);
    const TileId near_corner = mesh.tileAt(0, 0);
    const TileId far_corner = mesh.tileAt(7, 7);
    const LineAddr line = 0x1234 << pageLineShift;
    const int first = policy.controllerFor(near_corner, line);
    EXPECT_EQ(first, mesh.nearestMemCtrl(near_corner));
    // Later touches from elsewhere (even other lines of the page)
    // keep the pin.
    EXPECT_EQ(policy.controllerFor(far_corner, line + 3), first);
}

TEST(MemPlacementTest, NumaAwareMemAliasesFirstTouch)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.effectiveMemPlacement(), "interleave");
    cfg.numaAwareMem = true;
    EXPECT_EQ(cfg.effectiveMemPlacement(), "first-touch");
    // An explicit policy wins over the legacy alias.
    cfg.memPlacement = "contention";
    EXPECT_EQ(cfg.effectiveMemPlacement(), "contention");
}

/** Fields that must agree between two runs byte-for-byte. */
void
expectRunsIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.totalInstrs, b.totalInstrs);
    EXPECT_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.onChipLatSum, b.onChipLatSum);
    EXPECT_EQ(a.offChipLatSum, b.offChipLatSum);
    for (std::size_t c = 0; c < a.trafficFlitHops.size(); c++)
        EXPECT_EQ(a.trafficFlitHops[c], b.trafficFlitHops[c]);
    ASSERT_EQ(a.threadCycles.size(), b.threadCycles.size());
    for (std::size_t t = 0; t < a.threadCycles.size(); t++)
        EXPECT_EQ(a.threadCycles[t], b.threadCycles[t]);
}

TEST(MemPlacementTest, FirstTouchIdenticalToLegacyNumaAwareMem)
{
    // The first-touch policy absorbs numaAwareMem: a run naming the
    // policy must be bit-identical to a run using the legacy flag.
    SystemConfig numa;
    numa.meshWidth = 6;
    numa.meshHeight = 6;
    numa.accessesPerThreadEpoch = 5000;
    numa.epochs = 4;
    numa.warmupEpochs = 2;
    numa.numaAwareMem = true;
    SystemConfig named = numa;
    named.numaAwareMem = false;
    named.memPlacement = "first-touch";

    const MixSpec mix = MixSpec::cpu(8, 37);
    expectRunsIdentical(runScheme(numa, SchemeSpec::cdcs(), mix),
                        runScheme(named, SchemeSpec::cdcs(), mix));
    expectRunsIdentical(runScheme(numa, SchemeSpec::rnuca(), mix),
                        runScheme(named, SchemeSpec::rnuca(), mix));
}

TEST(MemQueueTest, MatchesMd1AtOneChannel)
{
    // m = 1 must be the exact M/D/1 wait s * rho / (2 (1 - rho)).
    for (double rho : {0.1, 0.5, 0.9}) {
        const double s = 1.0 / 0.8;
        EXPECT_NEAR(memQueueWait(rho, 1, 0.8),
                    s * rho / (2.0 * (1.0 - rho)), 1e-12);
    }
}

TEST(MemQueueTest, WaitNonIncreasingInChannelCount)
{
    // At a fixed aggregate service rate, adding channels must never
    // inflate the queueing delay (the bug this model replaced scaled
    // the wait linearly with the channel count).
    for (double rho : {0.05, 0.3, 0.6, 0.95}) {
        double prev = memQueueWait(rho, 1, 0.8);
        for (int m : {2, 4, 8, 16, 64}) {
            const double wait = memQueueWait(rho, m, 0.8);
            EXPECT_LE(wait, prev + 1e-12) << "rho " << rho << " m "
                                          << m;
            prev = wait;
        }
    }
}

TEST(MemQueueTest, WaitMonotoneInLoad)
{
    for (int m : {1, 8}) {
        double prev = 0.0;
        for (double rho = 0.0; rho < 0.96; rho += 0.05) {
            const double wait = memQueueWait(rho, m, 0.8);
            EXPECT_GE(wait, prev);
            prev = wait;
        }
    }
}

TEST(MemQueueTest, QueueContributionNonIncreasingInChannels)
{
    // End to end: at a fixed aggregate rate, a run with more memory
    // channels must not pay a larger queueing delay. memChannels
    // also sets the controller count (routes change), so isolate the
    // queue's contribution as the off-chip latency delta between a
    // bandwidth-modeled run and the same run with the queue off.
    SystemConfig base;
    base.meshWidth = 6;
    base.meshHeight = 6;
    base.accessesPerThreadEpoch = 5000;
    base.epochs = 3;
    base.warmupEpochs = 1;
    const MixSpec mix = MixSpec::cpu(8, 11);
    double prev = std::numeric_limits<double>::max();
    for (int channels : {4, 8, 16}) {
        SystemConfig on = base;
        on.memChannels = channels;
        SystemConfig off = on;
        off.modelMemBandwidth = false;
        const RunResult with_queue =
            runScheme(on, SchemeSpec::snuca(), mix);
        const RunResult no_queue =
            runScheme(off, SchemeSpec::snuca(), mix);
        EXPECT_EQ(with_queue.memAccesses, no_queue.memAccesses);
        const double queued =
            with_queue.offChipLatSum - no_queue.offChipLatSum;
        EXPECT_GE(queued, 0.0) << channels;
        EXPECT_LE(queued, prev) << channels;
        prev = queued;
    }
}

TEST(ContentionMemPlacementTest, QuietRunBehavesLikeFirstTouch)
{
    // With balanced controller loads (no controller past the
    // overload threshold) the contention policy never migrates, so
    // it is exactly first-touch.
    const Mesh mesh(8, 8);
    ContentionMemPlacementParams params;
    ContentionMemPlacement policy(mesh, params);
    FirstTouchMemPlacement reference(mesh);
    for (TileId core = 0; core < mesh.numTiles(); core++) {
        const LineAddr line = static_cast<LineAddr>(core)
            << pageLineShift;
        EXPECT_EQ(policy.controllerFor(core, line),
                  reference.controllerFor(core, line));
    }
    ContentionNoc noc(mesh, 1.0, 0.95);
    noc.epochUpdate(10000.0);
    policy.epochUpdate(noc, 10000.0);
    EXPECT_EQ(policy.migratedPages(), 0u);
}

TEST(ContentionMemPlacementTest, SteersPagesOffSaturatedController)
{
    // All threads cluster in the top-left corner: first-touch pins
    // every page to the corner's nearest controller. Saturate that
    // controller's attach link; the rebalance must re-pin hot pages
    // to other controllers and say so in the accounting.
    const Mesh mesh(8, 8);
    ContentionMemPlacementParams params;
    params.hopCycles = 4.0;
    ContentionMemPlacement policy(mesh, params);
    ContentionNoc noc(mesh, 1.0, 0.95);

    const TileId corner = mesh.tileAt(0, 0);
    const int hot_ctrl = mesh.nearestMemCtrl(corner);
    const std::uint32_t pages = 64;
    const auto touch = [&] {
        for (std::uint32_t p = 0; p < pages; p++) {
            const LineAddr line = static_cast<LineAddr>(p)
                << pageLineShift;
            const int ctrl = policy.controllerFor(corner, line);
            // Model the access's attach traffic so the NoC measures
            // the load the policy causes.
            noc.addMemTraffic(TrafficClass::LLCToMem,
                              corner, ctrl, 6 * 40);
        }
    };

    touch();
    for (std::uint32_t p = 0; p < pages; p++) {
        EXPECT_EQ(policy.controllerFor(
                      corner, static_cast<LineAddr>(p)
                          << pageLineShift),
                  hot_ctrl);
    }

    // Several epochs of saturated load on the pinned controller.
    std::uint64_t migrated = 0;
    for (int epoch = 0; epoch < 4; epoch++) {
        touch();
        noc.epochUpdate(2000.0);
        policy.epochUpdate(noc, 2000.0);
        migrated = policy.migratedPages();
    }
    EXPECT_GT(migrated, 0u);

    // The hot controller kept some pages but lost hot ones; every
    // migrated page must live on a different controller now.
    const std::vector<std::uint64_t> loads =
        policy.controllerAccesses();
    std::uint64_t off_hot = 0;
    for (std::uint32_t p = 0; p < pages; p++) {
        const int ctrl = policy.controllerFor(
            corner, static_cast<LineAddr>(p) << pageLineShift);
        off_hot += ctrl != hot_ctrl ? 1 : 0;
    }
    EXPECT_GT(off_hot, 0u);
    EXPECT_LT(off_hot, pages); // Not a stampede either.
    EXPECT_EQ(loads.size(),
              static_cast<std::size_t>(mesh.numMemCtrls()));
}

TEST(ContentionMemPlacementTest, RelievesMemRouteWaitAtScale)
{
    // The mem_placement study's acceptance shape, at the study's
    // default run length: under a contended mesh at x4 injection the
    // contention policy migrates hot pages and pulls the
    // flit-weighted mean mem-route (attach-link) wait below
    // first-touch, without hurting throughput.
    SystemConfig cfg;
    cfg.accessesPerThreadEpoch = 40000;
    cfg.epochs = 8;
    cfg.warmupEpochs = 4;
    cfg.nocModel = "contention";
    cfg.nocInjScale = 4.0;
    const MixSpec mix = MixSpec::cpu(64, 11000);

    const auto mem_wait = [](const RunResult &run) {
        double wait_flits = 0.0, flits = 0.0;
        for (const NocLinkStat &link : run.nocLinks) {
            if (link.memCtrl < 0)
                continue;
            wait_flits +=
                link.waitCycles * static_cast<double>(link.flits);
            flits += static_cast<double>(link.flits);
        }
        return flits > 0.0 ? wait_flits / flits : 0.0;
    };
    const auto throughput = [](const RunResult &run) {
        double sum = 0.0;
        for (double t : run.procThroughput)
            sum += t;
        return sum;
    };

    SystemConfig ft = cfg;
    ft.memPlacement = "first-touch";
    SystemConfig ct = cfg;
    ct.memPlacement = "contention";
    const RunResult first_touch =
        runScheme(ft, SchemeSpec::jigsaw(InitialSched::Random), mix);
    const RunResult contention =
        runScheme(ct, SchemeSpec::jigsaw(InitialSched::Random), mix);

    EXPECT_EQ(first_touch.memMigratedPages, 0u);
    EXPECT_GT(contention.memMigratedPages, 0u);
    EXPECT_GT(mem_wait(first_touch), 0.0);
    EXPECT_LT(mem_wait(contention), mem_wait(first_touch) * 0.999);
    EXPECT_GE(throughput(contention),
              throughput(first_touch) * 0.995);
}

TEST(ContentionMemPlacementTest, RebalanceIsDeterministic)
{
    // Two identical policy+noc histories produce identical page
    // maps (the study's worker-count determinism rests on this).
    const Mesh mesh(6, 6);
    const auto run_history = [&mesh] {
        ContentionMemPlacement policy(
            mesh, ContentionMemPlacementParams{});
        ContentionNoc noc(mesh, 4.0, 0.95);
        std::vector<int> map;
        for (int epoch = 0; epoch < 3; epoch++) {
            for (std::uint32_t p = 0; p < 40; p++) {
                const TileId core =
                    static_cast<TileId>((p * 7) % 4);
                const LineAddr line = static_cast<LineAddr>(p)
                    << pageLineShift;
                const int ctrl = policy.controllerFor(core, line);
                noc.addMemTraffic(TrafficClass::LLCToMem, core,
                                  ctrl, 200);
            }
            noc.epochUpdate(1000.0);
            policy.epochUpdate(noc, 1000.0);
        }
        for (std::uint32_t p = 0; p < 40; p++) {
            map.push_back(policy.controllerFor(
                static_cast<TileId>((p * 7) % 4),
                static_cast<LineAddr>(p) << pageLineShift));
        }
        return map;
    };
    EXPECT_EQ(run_history(), run_history());
}

} // anonymous namespace
} // namespace cdcs
