/**
 * @file
 * Tests for the far-memory tiering layer: registry round-trip and
 * override validation, legacy placement bit-identity through the
 * two-level placementFor, the no-far-tier off state matching the
 * default run byte-for-byte, the DRAM-row migration throttle, the
 * hotness policy's hysteresis/cooldown/budget determinism, per-tier
 * M/D/m queue isolation, and serial-vs-parallel sweep identity for a
 * tiering configuration.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/mem_migration.hh"
#include "mem/mem_placement.hh"
#include "mem/mem_placement_registry.hh"
#include "mem/mem_tiering.hh"
#include "mem/mem_tiering_registry.hh"
#include "net/contention_noc.hh"
#include "sim/experiment.hh"
#include "sim/experiment_runner.hh"
#include "sim/overrides.hh"

namespace cdcs
{
namespace
{

TEST(MemTieringRegistryTest, BuiltInPoliciesRegistered)
{
    EXPECT_TRUE(MemTieringRegistry::known("static"));
    EXPECT_TRUE(MemTieringRegistry::known("hotness"));
    EXPECT_FALSE(MemTieringRegistry::known("no-such-policy"));

    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.5;
    for (const char *name : {"static", "hotness"}) {
        const auto policy =
            MemTieringRegistry::build(name, mesh, params);
        EXPECT_STREQ(policy->name(), name);
    }
    const auto names = MemTieringRegistry::names();
    ASSERT_GE(names.size(), 2u);
    for (std::size_t i = 1; i < names.size(); i++)
        EXPECT_LT(names[i - 1], names[i]);
}

TEST(MemTieringOverridesTest, ValidatesTierKnobs)
{
    Overrides ov;
    std::string err;
    EXPECT_TRUE(ov.add("farMemRatio=0.5", &err)) << err;
    EXPECT_TRUE(ov.add("memTiering=hotness", &err)) << err;
    EXPECT_TRUE(ov.add("farMemLatency=500", &err)) << err;
    EXPECT_TRUE(ov.add("farMemChannels=2", &err)) << err;
    EXPECT_TRUE(ov.add("farMemLinesPerCycle=0.1", &err)) << err;

    // farMemRatio must stay in [0, 1): 1.0 would leave no near tier.
    EXPECT_FALSE(ov.add("farMemRatio=1.0", &err));
    EXPECT_FALSE(ov.add("farMemRatio=-0.1", &err));
    EXPECT_FALSE(ov.add("farMemLinesPerCycle=0", &err));
    EXPECT_FALSE(ov.add("farMemChannels=0", &err));

    // An unknown tiering policy is rejected with the registry listed.
    EXPECT_FALSE(ov.add("memTiering=no-such-policy", &err));
    EXPECT_NE(err.find("no-such-policy"), std::string::npos);
    EXPECT_NE(err.find("hotness"), std::string::npos);

    SystemConfig cfg;
    ov.apply(cfg);
    EXPECT_EQ(cfg.farMemRatio, 0.5);
    EXPECT_EQ(cfg.memTiering, "hotness");
    EXPECT_EQ(cfg.farMemLatency, 500u);
    EXPECT_TRUE(cfg.hasFarTier());
}

TEST(MemTieringTest, LegacyPoliciesPinNearWithoutTiering)
{
    // With no tiering policy attached (the no-far-tier state), the
    // two-level placementFor must be the controller decision alone:
    // same controller as controllerFor, tier pinned to Near.
    const Mesh mesh(8, 8);
    MemPlacementRegistry &registry = MemPlacementRegistry::instance();
    const MemPlacementBuildParams params;
    for (const char *name :
         {"interleave", "first-touch", "contention"}) {
        const auto policy = registry.build(name, mesh, params);
        ASSERT_EQ(policy->tieringPolicy(), nullptr);
        for (LineAddr line = 0; line < 200000; line += 1009) {
            const TileId core =
                static_cast<TileId>(line % mesh.numTiles());
            const MemPlacement mp = policy->placementFor(core, line);
            EXPECT_EQ(mp.ctrl, policy->controllerFor(core, line));
            EXPECT_EQ(mp.tier, MemTier::Near);
        }
    }
}

TEST(MemTieringTest, StaticSplitTracksConfiguredRatio)
{
    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.25;
    StaticTieringPolicy policy(mesh, params);
    const std::uint64_t total = 20000;
    std::uint64_t far = 0;
    for (std::uint64_t p = 0; p < total; p++) {
        const LineAddr line = static_cast<LineAddr>(p)
            << pageLineShift;
        far += policy.onAccess(line, 0) == MemTier::Far ? 1 : 0;
    }
    EXPECT_EQ(policy.trackedPages(), total);
    EXPECT_EQ(policy.farResidentPages(), far);
    const double share = static_cast<double>(far) / total;
    EXPECT_NEAR(share, params.farRatio, 0.02);

    // Residency is a pure page property: re-touching never moves it.
    StaticTieringPolicy again(mesh, params);
    for (std::uint64_t p = 0; p < 100; p++) {
        const LineAddr line = static_cast<LineAddr>(p)
            << pageLineShift;
        EXPECT_EQ(policy.onAccess(line, 1), again.onAccess(line, 2));
    }
    EXPECT_EQ(policy.migratedPages(), 0u);
}

TEST(RowBudgetSelectTest, SpendsBudgetInWholeRows)
{
    // Rows (shift 2): {0,1} -> row 0, {4,6} -> row 1, {8} -> row 2.
    const std::vector<std::uint64_t> pages = {0, 4, 8, 1, 6};
    const std::vector<double> weights = {1.0, 5.0, 3.0, 2.0, 5.0};
    // Row weights: row 0 = 3, row 1 = 10, row 2 = 3; budget 2 keeps
    // rows 1 and 0 (the row-id tiebreak drops row 2) whole, members
    // in candidate order within each row.
    const auto kept = rowBudgetSelect(pages, weights, 2);
    ASSERT_EQ(kept.size(), 4u);
    EXPECT_EQ(kept[0], 1u); // page 4 (row 1)
    EXPECT_EQ(kept[1], 4u); // page 6 (row 1)
    EXPECT_EQ(kept[2], 0u); // page 0 (row 0, id-tiebreak over row 2)
    EXPECT_EQ(kept[3], 3u); // page 1 (row 0)

    // A large budget keeps everything; a zero/negative one, nothing.
    EXPECT_EQ(rowBudgetSelect(pages, weights, 100).size(), 5u);
    EXPECT_TRUE(rowBudgetSelect(pages, weights, 0).empty());
    EXPECT_TRUE(rowBudgetSelect(pages, weights, -3).empty());
}

/** Touch page `p` through the policy `n` times from controller 0. */
void
touch(MemTieringPolicy &policy, std::uint64_t page, int n)
{
    for (int i = 0; i < n; i++)
        policy.onAccess(static_cast<LineAddr>(page) << pageLineShift,
                        0);
}

/** First `count` pages (by id) the split seeds into `tier`. */
std::vector<std::uint64_t>
seededPages(const Mesh &mesh, const MemTieringParams &params,
            MemTier tier, std::size_t count)
{
    StaticTieringPolicy probe(mesh, params);
    std::vector<std::uint64_t> out;
    for (std::uint64_t p = 0; out.size() < count && p < 100000; p++) {
        const MemTier got = probe.onAccess(
            static_cast<LineAddr>(p) << pageLineShift, 0);
        if (got == tier)
            out.push_back(p);
    }
    return out;
}

TEST(HotnessTieringTest, PromotesHotFarPagesUnderMarginAndBudget)
{
    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.5;
    params.promoteMargin = 2.0;
    params.cooldownEpochs = 1;
    params.rowBudget = 1;
    HotnessTieringPolicy policy(mesh, params);
    ContentionNoc noc(mesh, 1.0, 0.95, /*far_links=*/true);

    const auto far_seed = seededPages(mesh, params, MemTier::Far, 8);
    const auto near_seed =
        seededPages(mesh, params, MemTier::Near, 8);
    ASSERT_EQ(far_seed.size(), 8u);
    ASSERT_EQ(near_seed.size(), 8u);

    // Hot far pages, cold (but tracked) near pages — touched in two
    // consecutive epochs so the far pages pass the reuse filter.
    for (int epoch = 0; epoch < 2; epoch++) {
        for (std::uint64_t p : far_seed)
            touch(policy, p, 20);
        for (std::uint64_t p : near_seed)
            touch(policy, p, 1);
        policy.epochUpdate(noc, 1000.0);
    }

    // 20 > 2.0 * 1 clears the margin, so promotions happen — but the
    // one-row budget bounds each direction at one DRAM row's worth of
    // pages (4 with dramRowShift = 2).
    EXPECT_GT(policy.promotions(), 0u);
    EXPECT_EQ(policy.promotions(), policy.demotions());
    EXPECT_LE(policy.promotions(), std::uint64_t{1} << dramRowShift);
    EXPECT_EQ(policy.migratedPages(),
              policy.promotions() + policy.demotions());
    // 1:1 swaps hold the far-resident count at the seeded split.
    EXPECT_EQ(policy.farResidentPages(), far_seed.size());
}

TEST(HotnessTieringTest, MarginBlocksNoiseLevelPromotions)
{
    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.5;
    params.promoteMargin = 2.0;
    HotnessTieringPolicy policy(mesh, params);
    ContentionNoc noc(mesh, 1.0, 0.95, /*far_links=*/true);

    // Far pages only modestly hotter than the near ones: 10 accesses
    // vs 8 does not clear the 2x hysteresis margin, so nothing moves
    // even though the far pages pass the reuse filter (two touched
    // epochs).
    for (int epoch = 0; epoch < 2; epoch++) {
        for (std::uint64_t p :
             seededPages(mesh, params, MemTier::Far, 4))
            touch(policy, p, 10);
        for (std::uint64_t p :
             seededPages(mesh, params, MemTier::Near, 4))
            touch(policy, p, 8);
        policy.epochUpdate(noc, 1000.0);
    }
    EXPECT_EQ(policy.migratedPages(), 0u);
}

TEST(HotnessTieringTest, CooldownStopsPingPong)
{
    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.5;
    params.promoteMargin = 2.0;
    params.cooldownEpochs = 2;
    params.rowBudget = 8;
    HotnessTieringPolicy policy(mesh, params);
    ContentionNoc noc(mesh, 1.0, 0.95, /*far_links=*/true);

    const auto far_seed = seededPages(mesh, params, MemTier::Far, 2);
    const auto near_seed =
        seededPages(mesh, params, MemTier::Near, 2);
    // Two hot epochs: the far pages pass the reuse filter on the
    // second update and get promoted.
    for (int epoch = 0; epoch < 2; epoch++) {
        for (std::uint64_t p : far_seed)
            touch(policy, p, 50);
        for (std::uint64_t p : near_seed)
            touch(policy, p, 1);
        policy.epochUpdate(noc, 1000.0);
    }
    const std::uint64_t moved = policy.migratedPages();
    EXPECT_GT(moved, 0u);

    // Reversed heat next epoch: the just-moved pages are inside the
    // cooldown window, so they must sit the swap out.
    for (std::uint64_t p : far_seed)
        touch(policy, p, 1);
    for (std::uint64_t p : near_seed)
        touch(policy, p, 50);
    policy.epochUpdate(noc, 1000.0);
    EXPECT_EQ(policy.migratedPages(), moved);
}

TEST(HotnessTieringTest, ReuseFilterBlocksOneShotScans)
{
    const Mesh mesh(4, 4);
    MemTieringParams params;
    params.farRatio = 0.5;
    params.promoteMargin = 2.0;
    params.cooldownEpochs = 1;
    params.rowBudget = 8;
    HotnessTieringPolicy policy(mesh, params);
    ContentionNoc noc(mesh, 1.0, 0.95, /*far_links=*/true);

    const auto far_seed = seededPages(mesh, params, MemTier::Far, 2);
    const auto near_seed =
        seededPages(mesh, params, MemTier::Near, 2);
    const std::uint64_t sustained = far_seed[0];
    const std::uint64_t scan = far_seed[1];

    // Epoch 1: a one-shot scan fills a whole far page (a miss burst
    // far above any sustained page) next to a modestly hot far page.
    touch(policy, sustained, 6);
    touch(policy, scan, 64);
    for (std::uint64_t p : near_seed)
        touch(policy, p, 1);
    policy.epochUpdate(noc, 1000.0);
    EXPECT_EQ(policy.promotions(), 0u); // Nothing passes reuse yet.

    // Epoch 2: the scan never returns, the sustained page does. Only
    // the sustained page qualifies — without the reuse filter the
    // scan's burst (EWMA 32 vs 6) would outrank it for the budget.
    touch(policy, sustained, 6);
    for (std::uint64_t p : near_seed)
        touch(policy, p, 1);
    policy.epochUpdate(noc, 1000.0);
    EXPECT_EQ(policy.promotions(), 1u);
    EXPECT_EQ(policy.onAccess(static_cast<LineAddr>(sustained)
                                  << pageLineShift,
                              0),
              MemTier::Near);
    EXPECT_EQ(policy.onAccess(static_cast<LineAddr>(scan)
                                  << pageLineShift,
                              0),
              MemTier::Far);
}

TEST(HotnessTieringTest, EpochDynamicsAreDeterministic)
{
    const Mesh mesh(4, 4);
    const auto run_history = [&mesh] {
        MemTieringParams params;
        params.farRatio = 0.5;
        params.cooldownEpochs = 1;
        params.rowBudget = 2;
        HotnessTieringPolicy policy(mesh, params);
        ContentionNoc noc(mesh, 1.0, 0.95, /*far_links=*/true);
        for (int epoch = 0; epoch < 4; epoch++) {
            for (std::uint64_t p = 0; p < 64; p++)
                touch(policy, p,
                      static_cast<int>((p * 13 + epoch * 7) % 31));
            noc.epochUpdate(1000.0);
            policy.epochUpdate(noc, 1000.0);
        }
        std::vector<int> tiers;
        for (std::uint64_t p = 0; p < 64; p++) {
            tiers.push_back(static_cast<int>(policy.onAccess(
                static_cast<LineAddr>(p) << pageLineShift, 0)));
        }
        tiers.push_back(static_cast<int>(policy.migratedPages()));
        return tiers;
    };
    EXPECT_EQ(run_history(), run_history());
}

/** Fields that must agree between two runs byte-for-byte. */
void
expectRunsIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.totalInstrs, b.totalInstrs);
    EXPECT_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.farMemAccesses, b.farMemAccesses);
    EXPECT_EQ(a.onChipLatSum, b.onChipLatSum);
    EXPECT_EQ(a.offChipLatSum, b.offChipLatSum);
    EXPECT_EQ(a.farOffChipLatSum, b.farOffChipLatSum);
    EXPECT_EQ(a.memMigratedPages, b.memMigratedPages);
    EXPECT_EQ(a.tierPromotions, b.tierPromotions);
    EXPECT_EQ(a.tieredPages, b.tieredPages);
    for (std::size_t c = 0; c < a.trafficFlitHops.size(); c++)
        EXPECT_EQ(a.trafficFlitHops[c], b.trafficFlitHops[c]);
    ASSERT_EQ(a.threadCycles.size(), b.threadCycles.size());
    for (std::size_t t = 0; t < a.threadCycles.size(); t++)
        EXPECT_EQ(a.threadCycles[t], b.threadCycles[t]);
}

TEST(MemTieringTest, OffStateMatchesDefaultBitForBit)
{
    // farMemRatio = 0 must be the pre-tier simulator: no tiering
    // policy is built, so every other far knob (latency, channels,
    // the policy name) is inert and the run is bit-identical to the
    // untouched default config.
    SystemConfig base;
    base.meshWidth = 6;
    base.meshHeight = 6;
    base.accessesPerThreadEpoch = 5000;
    base.epochs = 4;
    base.warmupEpochs = 2;
    base.nocModel = "contention";

    SystemConfig off = base;
    off.farMemRatio = 0.0;
    off.memTiering = "hotness";
    off.farMemLatency = 999;
    off.farMemChannels = 1;
    off.farMemLinesPerCycle = 0.01;
    ASSERT_FALSE(off.hasFarTier());

    const MixSpec mix = MixSpec::cpu(8, 41);
    for (const SchemeSpec &scheme :
         {SchemeSpec::snuca(), SchemeSpec::cdcs()}) {
        const RunResult a = runScheme(base, scheme, mix);
        const RunResult b = runScheme(off, scheme, mix);
        expectRunsIdentical(a, b);
        EXPECT_EQ(a.farMemAccesses, 0u);
        EXPECT_EQ(a.tieredPages, 0u);
        EXPECT_EQ(a.farOffChipLatSum, 0.0);
    }
}

TEST(MemTieringTest, FarTierServesConfiguredShare)
{
    SystemConfig cfg;
    cfg.meshWidth = 6;
    cfg.meshHeight = 6;
    cfg.accessesPerThreadEpoch = 5000;
    cfg.epochs = 4;
    cfg.warmupEpochs = 2;
    cfg.farMemRatio = 0.5;
    cfg.memTiering = "static";

    const RunResult run =
        runScheme(cfg, SchemeSpec::snuca(), MixSpec::cpu(8, 43));
    EXPECT_GT(run.memAccesses, 0u);
    EXPECT_GT(run.farMemAccesses, 0u);
    EXPECT_LT(run.farMemAccesses, run.memAccesses);
    EXPECT_GT(run.tieredPages, 0u);
    EXPECT_GT(run.farResidentPages, 0u);
    EXPECT_GT(run.farOffChipLatSum, 0.0);
    EXPECT_LT(run.farOffChipLatSum, run.offChipLatSum);
    // The page-hash split puts roughly farMemRatio of accesses far
    // under a uniform workload.
    EXPECT_NEAR(run.farAccessShare(), cfg.farMemRatio, 0.15);
}

TEST(MemTieringTest, PerTierQueuesAreIsolated)
{
    // The far tier's M/D/m queue and serial latency are charged to
    // far accesses only: stretching the far latency must leave the
    // access counts and the on-chip path untouched (S-NUCA has no
    // latency feedback into its access stream) while the off-chip
    // total strictly grows by at least the serial-latency delta.
    SystemConfig slow;
    slow.meshWidth = 6;
    slow.meshHeight = 6;
    slow.accessesPerThreadEpoch = 5000;
    slow.epochs = 3;
    slow.warmupEpochs = 1;
    slow.farMemRatio = 0.5;
    slow.memTiering = "static";
    slow.farMemLatency = 600;
    SystemConfig fast = slow;
    fast.farMemLatency = 300;

    const MixSpec mix = MixSpec::cpu(8, 47);
    const RunResult a = runScheme(fast, SchemeSpec::snuca(), mix);
    const RunResult b = runScheme(slow, SchemeSpec::snuca(), mix);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.farMemAccesses, b.farMemAccesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.onChipLatSum, b.onChipLatSum);
    EXPECT_GT(a.farMemAccesses, 0u);
    EXPECT_GT(b.offChipLatSum, a.offChipLatSum);
    EXPECT_GT(b.farOffChipLatSum, a.farOffChipLatSum);

    // More far channels (same per-line rate) can only shrink the far
    // queue's contribution.
    SystemConfig wide = fast;
    wide.farMemChannels = 16;
    const RunResult c = runScheme(wide, SchemeSpec::snuca(), mix);
    EXPECT_EQ(c.farMemAccesses, a.farMemAccesses);
    EXPECT_LE(c.offChipLatSum, a.offChipLatSum);
}

TEST(MemTieringTest, TieringSweepSerialParallelIdentical)
{
    SystemConfig cfg;
    cfg.meshWidth = 6;
    cfg.meshHeight = 6;
    cfg.accessesPerThreadEpoch = 3000;
    cfg.epochs = 3;
    cfg.warmupEpochs = 1;
    cfg.nocModel = "contention";
    cfg.skewAlpha = 1.4;
    cfg.skewFraction = 0.5;
    cfg.farMemRatio = 0.5;
    cfg.memTiering = "hotness";

    const auto mix_of = [](int m) { return MixSpec::cpu(8, 600 + m); };
    const std::vector<SchemeSpec> schemes = {SchemeSpec::snuca(),
                                             SchemeSpec::cdcs()};
    ExperimentRunner::Options serial_opts;
    serial_opts.workers = 1;
    ExperimentRunner::Options parallel_opts;
    parallel_opts.workers = 4;
    ExperimentRunner serial(serial_opts);
    ExperimentRunner parallel(parallel_opts);

    const SweepResult a = serial.sweep(cfg, schemes, 3, mix_of);
    const SweepResult b = parallel.sweep(cfg, schemes, 3, mix_of);
    ASSERT_EQ(a.firstRun.size(), b.firstRun.size());
    for (std::size_t s = 0; s < a.firstRun.size(); s++) {
        expectRunsIdentical(a.firstRun[s], b.firstRun[s]);
        EXPECT_EQ(a.firstRun[s].tierDemotions,
                  b.firstRun[s].tierDemotions);
        EXPECT_EQ(a.firstRun[s].farResidentPages,
                  b.firstRun[s].farResidentPages);
    }
    ASSERT_EQ(a.ws.size(), b.ws.size());
    for (std::size_t s = 0; s < a.ws.size(); s++) {
        ASSERT_EQ(a.ws[s].size(), b.ws[s].size());
        for (std::size_t m = 0; m < a.ws[s].size(); m++)
            EXPECT_EQ(a.ws[s][m], b.ws[s][m]);
    }
}

} // anonymous namespace
} // namespace cdcs
