/**
 * @file
 * Tests for the stat registry behind `--set stats=`: idempotent
 * registration across translation units, the disabled default
 * recording nothing, per-thread sharding folded by snapshot() while
 * localSnapshot() isolates the calling thread, log2 histogram
 * bucketing, and the `stats=` filter grammar (prefix subtrees, exact
 * names, all/none, name-sorted column order).
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stat_registry.hh"

namespace cdcs
{
namespace
{

TEST(StatRegistryTest, RegistrationIsIdempotent)
{
    const StatId a = StatRegistry::counter("test.idem");
    const StatId b = StatRegistry::counter("test.idem");
    EXPECT_EQ(a, b);
    EXPECT_EQ(StatRegistry::name(a), "test.idem");
    const StatId c = StatRegistry::counter("test.idem2");
    EXPECT_NE(a, c);
}

TEST(StatRegistryTest, DisabledAddsRecordNothing)
{
    const StatId id = StatRegistry::counter("test.disabled");
    StatRegistry::setEnabled(false);
    StatRegistry::add(id, 100);
    EXPECT_EQ(StatRegistry::snapshot()[id], 0u);
}

TEST(StatRegistryTest, SnapshotFoldsShardsAcrossThreads)
{
    const StatId id = StatRegistry::counter("test.folded");
    const std::uint64_t before = StatRegistry::snapshot()[id];
    StatRegistry::setEnabled(true);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([id] {
            for (int i = 0; i < 1000; i++)
                StatRegistry::add(id);
        });
    }
    for (auto &t : threads)
        t.join();
    StatRegistry::setEnabled(false);
    EXPECT_EQ(StatRegistry::snapshot()[id] - before, 4000u);
}

TEST(StatRegistryTest, LocalSnapshotIsolatesTheCallingThread)
{
    const StatId id = StatRegistry::counter("test.local");
    const std::uint64_t before = StatRegistry::localSnapshot()[id];
    StatRegistry::setEnabled(true);
    StatRegistry::add(id, 7);
    // Another thread's bumps must not leak into this thread's shard.
    std::thread other([id] { StatRegistry::add(id, 1000); });
    other.join();
    StatRegistry::setEnabled(false);
    EXPECT_EQ(StatRegistry::localSnapshot()[id] - before, 7u);
}

TEST(StatRegistryTest, HistogramBucketsByLog2Bound)
{
    const auto h = StatRegistry::histogram("test.hist", 4, 10);
    ASSERT_EQ(h.buckets, 4);
    EXPECT_EQ(StatRegistry::name(h.base), "test.hist.le_10");
    EXPECT_EQ(StatRegistry::name(h.base + 1), "test.hist.le_20");
    EXPECT_EQ(StatRegistry::name(h.base + 2), "test.hist.le_40");
    EXPECT_EQ(StatRegistry::name(h.base + 3), "test.hist.le_inf");

    StatRegistry::setEnabled(true);
    StatRegistry::observe(h, 0);   // le_10
    StatRegistry::observe(h, 10);  // le_10 (inclusive bound)
    StatRegistry::observe(h, 11);  // le_20
    StatRegistry::observe(h, 40);  // le_40
    StatRegistry::observe(h, 41);  // le_inf (overflow bucket)
    StatRegistry::observe(h, 1u << 30);
    StatRegistry::setEnabled(false);

    const auto snap = StatRegistry::localSnapshot();
    EXPECT_EQ(snap[h.base], 2u);
    EXPECT_EQ(snap[h.base + 1], 1u);
    EXPECT_EQ(snap[h.base + 2], 1u);
    EXPECT_EQ(snap[h.base + 3], 2u);
}

TEST(StatRegistryTest, SelectFilterGrammar)
{
    const StatId ax = StatRegistry::counter("sel.a.x");
    const StatId ay = StatRegistry::counter("sel.a.y");
    const StatId b = StatRegistry::counter("sel.b");
    StatRegistry::counter("selx.other"); // Prefix must not match this.

    EXPECT_TRUE(StatRegistry::select("").empty());
    EXPECT_TRUE(StatRegistry::select("0").empty());

    const auto all = StatRegistry::select("all");
    EXPECT_EQ(all.size(), StatRegistry::numStats());
    EXPECT_EQ(StatRegistry::select("1").size(), all.size());

    // A dot-prefix selects the subtree; an exact name just itself.
    const auto sub = StatRegistry::select("sel.a");
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub[0], ax); // Sorted by name.
    EXPECT_EQ(sub[1], ay);

    const auto mixed = StatRegistry::select("sel.b,sel.a.y");
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_EQ(mixed[0], ay);
    EXPECT_EQ(mixed[1], b);

    // "sel" subtree, but never the unrelated "selx" sibling.
    const auto tree = StatRegistry::select("sel");
    EXPECT_EQ(tree.size(), 3u);
}

} // anonymous namespace
} // namespace cdcs
