/**
 * @file
 * Tests for the Chrome-trace execution tracer behind `--set trace=`:
 * hooks are inert while closed, an open/span/instant/close cycle
 * writes parseable JSON with balanced B/E pairs and thread-name
 * metadata, and close() reports file-write failure.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.hh"

namespace cdcs
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countOf(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle);
         pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        n++;
    return n;
}

TEST(TracerTest, InertWhileClosed)
{
    ASSERT_FALSE(Tracer::enabled());
    // None of these may crash or open a file.
    Tracer::begin("x");
    Tracer::end("x");
    Tracer::instant("y");
    { TraceSpan span("z"); }
    EXPECT_TRUE(Tracer::close()); // Never opened: trivially ok.
}

TEST(TracerTest, WritesBalancedChromeTraceJson)
{
    const std::string path = ::testing::TempDir() + "trace_test.json";
    Tracer::open(path);
    ASSERT_TRUE(Tracer::enabled());
    Tracer::nameThread("test-main");
    {
        TraceSpan outer("outer");
        {
            TraceSpan inner("inner");
            Tracer::instant("mark");
        }
    }
    ASSERT_TRUE(Tracer::close());
    EXPECT_FALSE(Tracer::enabled());

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    // Array document with balanced begin/end pairs, the instant, and
    // the sticky thread-name metadata.
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(countOf(text, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countOf(text, "\"ph\":\"E\""), 2u);
    EXPECT_EQ(countOf(text, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(countOf(text, "\"name\":\"outer\""), 2u);
    EXPECT_EQ(countOf(text, "\"name\":\"mark\""), 1u);
    EXPECT_GE(countOf(text, "\"test-main\""), 1u);
    std::remove(path.c_str());
}

TEST(TracerTest, CloseReportsUnwritablePath)
{
    Tracer::open("/nonexistent-dir/trace.json");
    Tracer::instant("x");
    EXPECT_FALSE(Tracer::close());
    EXPECT_FALSE(Tracer::enabled());
}

} // anonymous namespace
} // namespace cdcs
