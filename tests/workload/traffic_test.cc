/**
 * @file
 * Tests for the dynamic-traffic layer: churn schedule parsing, the
 * seeded hot-set drift, churn resolution (departure draws, LIFO
 * arrivals), and the WorkloadMix overlay's byte-identity contract
 * when the layer is disabled.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "workload/mix.hh"
#include "workload/traffic.hh"

namespace cdcs
{
namespace
{

TEST(ChurnParseTest, ValidSchedules)
{
    std::vector<ChurnEvent> events;
    EXPECT_TRUE(TrafficSchedule::parseChurn("", &events));
    EXPECT_TRUE(events.empty());

    EXPECT_TRUE(TrafficSchedule::parseChurn("5:-8", &events));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].epoch, 5);
    EXPECT_EQ(events[0].delta, -8);

    EXPECT_TRUE(
        TrafficSchedule::parseChurn("8:+4,5:-8,5:+2", &events));
    ASSERT_EQ(events.size(), 3u);
    // Epoch-sorted, stable for equal epochs.
    EXPECT_EQ(events[0].epoch, 5);
    EXPECT_EQ(events[0].delta, -8);
    EXPECT_EQ(events[1].epoch, 5);
    EXPECT_EQ(events[1].delta, 2);
    EXPECT_EQ(events[2].epoch, 8);
    EXPECT_EQ(events[2].delta, 4);
}

TEST(ChurnParseTest, MalformedSchedulesRejected)
{
    std::string err;
    for (const char *bad :
         {"5", "5:", ":-8", "5:-0", "0:-8", "-1:+2", "5:-8,",
          "5:8", "a:-8", "5:-b", "5 : -8"}) {
        std::vector<ChurnEvent> events;
        EXPECT_FALSE(
            TrafficSchedule::parseChurn(bad, &events, &err))
            << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(TrafficScheduleTest, SkewDisabledAtAlphaZero)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 0.0;
    TrafficSchedule sched(cfg);
    EXPECT_FALSE(sched.skewEnabled());
}

TEST(TrafficScheduleTest, HotLinesSeededAndInRange)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 1.0;
    cfg.skewLines = 4096;
    cfg.skewHotLines = 64;
    TrafficSchedule a(cfg), b(cfg);
    Rng ra(1), rb(1);
    for (int i = 0; i < 1000; i++) {
        const std::uint64_t line = a.nextHotLine(ra);
        EXPECT_LT(line, cfg.skewLines);
        EXPECT_EQ(line, b.nextHotLine(rb)); // Same seed, same stream.
    }
}

TEST(TrafficScheduleTest, PageHotSeatsWholePages)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 1.0;
    cfg.skewLines = 4096;
    cfg.skewHotLines = 256;
    cfg.skewPageHot = true;
    TrafficSchedule sched(cfg);
    // Consecutive ranks within a linesPerPage block land in the same
    // page at their in-block offset; distinct blocks land in more
    // than one page (4 blocks over a 64-page footprint).
    Rng rng(7);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t line = sched.nextHotLine(rng);
        EXPECT_LT(line, cfg.skewLines);
        pages.insert(line >> pageLineShift);
    }
    // The hottest block dominates, but the table spans 4 blocks and
    // the cold tail still scatters: expect several distinct pages.
    EXPECT_GT(pages.size(), 2u);

    // The default (line-scattered) layout is untouched by the knob's
    // existence: same seed, knob off, matches a pre-knob-style seat.
    TrafficConfig off = cfg;
    off.skewPageHot = false;
    TrafficSchedule plain(off);
    Rng ra(3), rb(3);
    bool aligned_differs = false;
    for (int i = 0; i < 500; i++) {
        if (sched.nextHotLine(ra) != plain.nextHotLine(rb))
            aligned_differs = true;
    }
    EXPECT_TRUE(aligned_differs);
}

TEST(TrafficScheduleTest, DifferentSeedsDifferentHotSets)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 1.2;
    TrafficConfig other = cfg;
    other.seed = cfg.seed + 1;
    TrafficSchedule a(cfg), b(other);
    Rng ra(1), rb(1);
    int differs = 0;
    for (int i = 0; i < 200; i++) {
        if (a.nextHotLine(ra) != b.nextHotLine(rb))
            differs++;
    }
    EXPECT_GT(differs, 0);
}

TEST(TrafficScheduleTest, DriftReseatsOnSchedule)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 1.0;
    cfg.skewHotLines = 100;
    cfg.skewDriftEpochs = 2;
    cfg.skewDriftFraction = 0.25;
    TrafficSchedule sched(cfg);
    EXPECT_FALSE(sched.epochBoundary(0)); // Epoch 0 never drifts.
    EXPECT_FALSE(sched.epochBoundary(1));
    EXPECT_EQ(sched.driftedEntries(), 0u);
    EXPECT_TRUE(sched.epochBoundary(2));
    EXPECT_EQ(sched.driftedEntries(), 25u);
    EXPECT_FALSE(sched.epochBoundary(3));
    EXPECT_TRUE(sched.epochBoundary(4));
    EXPECT_EQ(sched.driftedEntries(), 50u);
}

TEST(TrafficScheduleTest, NoDriftWhenDisabled)
{
    TrafficConfig cfg;
    cfg.skewAlpha = 1.0;
    cfg.skewDriftEpochs = 0;
    TrafficSchedule sched(cfg);
    for (int e = 0; e < 10; e++)
        EXPECT_FALSE(sched.epochBoundary(e));
}

TEST(TrafficScheduleTest, ChurnActionsDepartThenReturnLifo)
{
    TrafficConfig cfg;
    cfg.churn = "3:-2,5:-1,7:+3";
    TrafficSchedule sched(cfg);
    std::vector<int> active = {0, 1, 2, 3};

    EXPECT_TRUE(sched.actionsAt(1, active).depart.empty());

    const ChurnActions down = sched.actionsAt(3, active);
    EXPECT_EQ(down.depart.size(), 2u);
    EXPECT_TRUE(down.arrive.empty());
    for (int t : down.depart) {
        EXPECT_GE(t, 0);
        EXPECT_LE(t, 3);
        active.erase(std::find(active.begin(), active.end(), t));
    }

    const ChurnActions down2 = sched.actionsAt(5, active);
    ASSERT_EQ(down2.depart.size(), 1u);
    active.erase(
        std::find(active.begin(), active.end(), down2.depart[0]));

    // All three departed threads return, most recent first.
    const ChurnActions back = sched.actionsAt(7, active);
    ASSERT_EQ(back.arrive.size(), 3u);
    EXPECT_EQ(back.arrive[0], down2.depart[0]);
}

TEST(TrafficScheduleTest, ChurnOverdrawClamps)
{
    TrafficConfig cfg;
    cfg.churn = "2:-10,4:+10";
    TrafficSchedule sched(cfg);
    std::vector<int> active = {4, 7};
    const ChurnActions down = sched.actionsAt(2, active);
    EXPECT_EQ(down.depart.size(), 2u); // Can't exceed the active set.
    const ChurnActions up = sched.actionsAt(4, {});
    EXPECT_EQ(up.arrive.size(), 2u); // Can't exceed the departed stack.
}

TEST(TrafficScheduleTest, ChurnDrawsAreSeedStable)
{
    TrafficConfig cfg;
    cfg.churn = "2:-4";
    TrafficSchedule a(cfg), b(cfg);
    const std::vector<int> active = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(a.actionsAt(2, active).depart,
              b.actionsAt(2, active).depart);
}

TEST(WorkloadMixTrafficTest, NoScheduleWithoutAttach)
{
    WorkloadMix mix = WorkloadMix::fromNames({"milc", "omnetpp"}, 7);
    EXPECT_EQ(mix.traffic(), nullptr);
    EXPECT_EQ(mix.numActiveThreads(), mix.numThreads());
}

TEST(WorkloadMixTrafficTest, SkewOverlayRedirectsToGlobalVc)
{
    WorkloadMix mix = WorkloadMix::fromNames({"milc", "omnetpp"}, 7);
    TrafficConfig cfg;
    cfg.skewAlpha = 1.0;
    cfg.skewFraction = 1.0; // Every access goes to the overlay.
    mix.attachTraffic(cfg);
    ASSERT_NE(mix.traffic(), nullptr);
    for (int i = 0; i < 200; i++) {
        const AccessSample sample = mix.nextAccess(0);
        EXPECT_EQ(sample.vc, mix.thread(0).globalVc);
    }
}

TEST(WorkloadMixTrafficTest, ActiveFlagsToggle)
{
    WorkloadMix mix = WorkloadMix::fromNames({"milc", "omnetpp"}, 7);
    EXPECT_TRUE(mix.threadActive(0));
    mix.setThreadActive(0, false);
    EXPECT_FALSE(mix.threadActive(0));
    EXPECT_EQ(mix.numActiveThreads(), mix.numThreads() - 1);
    mix.setThreadActive(0, true);
    EXPECT_EQ(mix.numActiveThreads(), mix.numThreads());
}

} // anonymous namespace
} // namespace cdcs
