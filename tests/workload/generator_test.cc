/**
 * @file
 * Tests for the synthetic stream generators: footprints, component
 * layout, and the LRU miss-curve shapes each pattern is designed to
 * produce (validated through a real simulated cache).
 */

#include <unordered_set>

#include <gtest/gtest.h>

#include "cache/partitioned_bank.hh"
#include "workload/generator.hh"

namespace cdcs
{
namespace
{

/** Miss ratio of a stream through an LRU cache of `lines` capacity. */
double
missRatio(StreamGen &gen, std::uint64_t lines, int accesses)
{
    PartitionedBank cache(lines, 16);
    cache.setTarget(0, lines);
    int misses = 0;
    for (int i = 0; i < accesses; i++) {
        if (!cache.access(gen.next(), 0, 0).hit)
            misses++;
    }
    return static_cast<double>(misses) / accesses;
}

TEST(StreamGenTest, FootprintIsComponentSum)
{
    StreamSpec spec{{0.5, PatternKind::Scan, 1000},
                    {0.5, PatternKind::Uniform, 500}};
    StreamGen gen(spec, 1);
    EXPECT_EQ(gen.footprint(), 1500u);
    EXPECT_EQ(streamFootprint(spec), 1500u);
}

TEST(StreamGenTest, OffsetsStayInFootprint)
{
    StreamSpec spec{{1.0, PatternKind::Zipf, 2048, 0.8}};
    StreamGen gen(spec, 2);
    for (int i = 0; i < 20000; i++)
        EXPECT_LT(gen.next(), 2048u);
}

TEST(StreamGenTest, ScanVisitsEveryLine)
{
    StreamSpec spec{{1.0, PatternKind::Scan, 333}};
    StreamGen gen(spec, 3);
    std::unordered_set<std::uint64_t> seen;
    for (int i = 0; i < 333; i++)
        seen.insert(gen.next());
    EXPECT_EQ(seen.size(), 333u);
}

TEST(StreamGenTest, DeterministicForSeed)
{
    StreamSpec spec{{0.7, PatternKind::Uniform, 4096},
                    {0.3, PatternKind::Zipf, 1024, 0.6}};
    StreamGen a(spec, 42), b(spec, 42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(StreamGenTest, ScanProducesCapacityCliff)
{
    // LRU + cyclic scan: ~100% misses below the footprint, ~100% hits
    // above it. This is the omnetpp/xalancbmk cliff of Fig. 2.
    const std::uint64_t footprint = 4096;
    StreamSpec spec{{1.0, PatternKind::Scan, footprint}};

    StreamGen small(spec, 7);
    EXPECT_GT(missRatio(small, footprint / 2, 40000), 0.95);

    StreamGen large(spec, 7);
    EXPECT_LT(missRatio(large, footprint * 2, 40000), 0.2);
}

TEST(StreamGenTest, UniformMissRatioScalesLinearly)
{
    const std::uint64_t footprint = 8192;
    StreamSpec spec{{1.0, PatternKind::Uniform, footprint}};
    StreamGen gen(spec, 11);
    const double ratio = missRatio(gen, footprint / 2, 200000);
    EXPECT_NEAR(ratio, 0.5, 0.12);
}

TEST(StreamGenTest, ZipfHasDiminishingReturns)
{
    const std::uint64_t footprint = 32768;
    StreamSpec spec{{1.0, PatternKind::Zipf, footprint, 0.9}};
    StreamGen g1(spec, 13);
    const double small_cache = missRatio(g1, footprint / 16, 200000);
    StreamGen g2(spec, 13);
    const double big_cache = missRatio(g2, footprint / 2, 200000);
    // A small cache already captures the hot head.
    EXPECT_LT(small_cache, 0.75);
    EXPECT_LT(big_cache, small_cache);
}

TEST(StreamGenTest, MixtureRespectsWeights)
{
    // 80% to the first (scan) component, 20% to the second.
    StreamSpec spec{{0.8, PatternKind::Scan, 1000},
                    {0.2, PatternKind::Uniform, 1000}};
    StreamGen gen(spec, 17);
    int first = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        if (gen.next() < 1000)
            first++;
    }
    EXPECT_NEAR(static_cast<double>(first) / n, 0.8, 0.02);
}

} // anonymous namespace
} // namespace cdcs
