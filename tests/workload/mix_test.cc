/**
 * @file
 * Tests for workload mixes: VC layout, per-thread wiring, shared
 * streams, and the profile library.
 */

#include <gtest/gtest.h>

#include "workload/mix.hh"

namespace cdcs
{
namespace
{

TEST(AppProfileTest, LibraryHasSixteenCpuApps)
{
    EXPECT_EQ(specCpu2006().size(), 16u);
}

TEST(AppProfileTest, OmpAppsHaveEightThreads)
{
    for (const auto &app : specOmp2012()) {
        EXPECT_EQ(app.threads, 8) << app.name;
        EXPECT_FALSE(app.sharedStream.empty()) << app.name;
    }
}

TEST(AppProfileTest, LookupByName)
{
    EXPECT_EQ(profileByName("omnetpp").name, "omnetpp");
    EXPECT_EQ(profileByName("ilbdc").threads, 8);
}

TEST(AppProfileTest, OmnetppIsCliffAppAt2p5Mb)
{
    const AppProfile &omnet = profileByName("omnetpp");
    // Dominant scan component with a ~2.5 MB footprint (Fig. 2).
    std::uint64_t scan_lines = 0;
    for (const auto &c : omnet.privateStream) {
        if (c.kind == PatternKind::Scan)
            scan_lines += c.footprintLines;
    }
    EXPECT_NEAR(static_cast<double>(linesToBytes(scan_lines)),
                2.5 * 1024 * 1024, 0.2 * 1024 * 1024);
}

TEST(WorkloadMixTest, VcLayout)
{
    // 2 single-threaded + 1 eight-threaded process: 10 threads,
    // 13 processes+global VCs total.
    WorkloadMix mix = WorkloadMix::fromNames(
        {"milc", "omnetpp", "ilbdc"}, 99);
    EXPECT_EQ(mix.numThreads(), 10);
    EXPECT_EQ(mix.numProcesses(), 3);
    EXPECT_EQ(mix.numVcs(), 14);
    EXPECT_EQ(mix.globalVc(), 13);
    EXPECT_EQ(mix.thread(0).privateVc, 0);
    EXPECT_EQ(mix.thread(9).privateVc, 9);
    EXPECT_EQ(mix.thread(0).processVc, 10);
    EXPECT_EQ(mix.thread(9).processVc, 12);
}

TEST(WorkloadMixTest, LineAddressesEmbedVcDisjointly)
{
    const LineAddr a = WorkloadMix::lineIn(3, 0x123);
    const LineAddr b = WorkloadMix::lineIn(4, 0x123);
    EXPECT_NE(a, b);
    EXPECT_EQ(WorkloadMix::vcOfLine(a), 3);
    EXPECT_EQ(WorkloadMix::vcOfLine(b), 4);
}

TEST(WorkloadMixTest, SingleThreadedAccessesPrivateVc)
{
    WorkloadMix mix = WorkloadMix::fromNames({"milc"}, 5);
    int global = 0;
    for (int i = 0; i < 10000; i++) {
        const AccessSample s = mix.nextAccess(0);
        if (s.vc == mix.globalVc())
            global++;
        else
            EXPECT_EQ(s.vc, mix.thread(0).privateVc);
    }
    EXPECT_LT(global, 200); // ~0.3% global traffic.
}

TEST(WorkloadMixTest, SharedFractionRoughlyHonored)
{
    WorkloadMix mix = WorkloadMix::fromNames({"ilbdc"}, 5);
    const double expected = profileByName("ilbdc").sharedFraction;
    int shared = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        if (mix.nextAccess(0).vc == mix.thread(0).processVc)
            shared++;
    }
    EXPECT_NEAR(static_cast<double>(shared) / n, expected, 0.03);
}

TEST(WorkloadMixTest, ThreadsShareProcessLines)
{
    // Two threads of one OMP process must draw from the same shared
    // region (same VC id and overlapping offsets).
    WorkloadMix mix = WorkloadMix::fromNames({"ilbdc"}, 6);
    std::uint64_t seen0 = 0, seen1 = 0;
    for (int i = 0; i < 20000; i++) {
        const AccessSample s0 = mix.nextAccess(0);
        const AccessSample s1 = mix.nextAccess(1);
        if (s0.vc == mix.thread(0).processVc)
            seen0++;
        if (s1.vc == mix.thread(1).processVc)
            seen1++;
        if (s0.vc == s1.vc && s0.vc == mix.thread(0).processVc) {
            EXPECT_EQ(WorkloadMix::vcOfLine(s0.line),
                      WorkloadMix::vcOfLine(s1.line));
        }
    }
    EXPECT_GT(seen0, 10000u);
    EXPECT_GT(seen1, 10000u);
}

TEST(WorkloadMixTest, RandomMixesAreReproducible)
{
    WorkloadMix a = WorkloadMix::randomCpuMix(8, 123);
    WorkloadMix b = WorkloadMix::randomCpuMix(8, 123);
    ASSERT_EQ(a.numThreads(), b.numThreads());
    for (int i = 0; i < 1000; i++) {
        const AccessSample sa = a.nextAccess(0);
        const AccessSample sb = b.nextAccess(0);
        EXPECT_EQ(sa.vc, sb.vc);
        EXPECT_EQ(sa.line, sb.line);
    }
}

TEST(WorkloadMixTest, RandomOmpMixHasEightThreadsPerApp)
{
    WorkloadMix mix = WorkloadMix::randomOmpMix(4, 7);
    EXPECT_EQ(mix.numThreads(), 32);
    EXPECT_EQ(mix.numProcesses(), 4);
}

} // anonymous namespace
} // namespace cdcs
