/**
 * @file
 * Parameterized sweep over every application profile in the library:
 * each must construct, generate in-range offsets, honor its shared
 * fraction, and carry sane timing parameters. Catches profile-table
 * regressions (all 24 profiles, one test instance each).
 */

#include <gtest/gtest.h>

#include "workload/mix.hh"

namespace cdcs
{
namespace
{

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &app : specCpu2006())
        names.push_back(app.name);
    for (const auto &app : specOmp2012())
        names.push_back(app.name);
    return names;
}

class ProfileSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileSweep, ParametersAreSane)
{
    const AppProfile &app = profileByName(GetParam());
    EXPECT_GT(app.apki, 0.0);
    EXPECT_LT(app.apki, 200.0);
    EXPECT_GT(app.cpiExe, 0.2);
    EXPECT_LT(app.cpiExe, 3.0);
    EXPECT_GE(app.mlp, 1.0);
    EXPECT_LE(app.mlp, 8.0);
    EXPECT_GE(app.threads, 1);
    EXPECT_FALSE(app.privateStream.empty());
    if (app.threads > 1) {
        EXPECT_FALSE(app.sharedStream.empty());
        EXPECT_GE(app.sharedFraction, 0.0);
        EXPECT_LE(app.sharedFraction, 1.0);
    }
}

TEST_P(ProfileSweep, GeneratorStaysInFootprint)
{
    const AppProfile &app = profileByName(GetParam());
    StreamGen gen(app.privateStream, 11);
    for (int i = 0; i < 5000; i++)
        EXPECT_LT(gen.next(), gen.footprint());
}

TEST_P(ProfileSweep, SingleProcessMixRuns)
{
    WorkloadMix mix = WorkloadMix::fromNames({GetParam()}, 5);
    EXPECT_EQ(mix.numProcesses(), 1);
    const AppProfile &app = profileByName(GetParam());
    EXPECT_EQ(mix.numThreads(), app.threads);
    for (int i = 0; i < 2000; i++) {
        const AccessSample s =
            mix.nextAccess(static_cast<ThreadId>(i % app.threads));
        EXPECT_LT(s.vc, mix.numVcs());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileSweep,
    ::testing::ValuesIn(allProfileNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // anonymous namespace
} // namespace cdcs
