/**
 * @file
 * Tests for UMON and GMON: miss-curve extraction, coverage, geometric
 * scaling, and accuracy against analytically known workloads. These
 * also validate the Sec. VI-C claim that a 64-way GMON matches much
 * larger UMONs over the small-size region both cover.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "monitor/gmon.hh"
#include "monitor/umon.hh"

namespace cdcs
{
namespace
{

constexpr std::uint64_t llc32MbLines = 512 * 1024; // 32 MB in lines.

TEST(GmonTest, CoverageReachesTarget)
{
    Gmon gmon(64, llc32MbLines);
    EXPECT_GE(gmon.coverage(), static_cast<double>(llc32MbLines) * 0.99);
}

TEST(GmonTest, PaperGeometryYieldsGammaNear095)
{
    // 1024 tags, 64 ways, 1/64 sampling covering 32 MB: the paper
    // reports gamma ~= 0.95.
    const double gamma = SampledMonitor::gammaForCoverage(
        16, 64, 6, llc32MbLines);
    EXPECT_NEAR(gamma, 0.95, 0.015);
}

TEST(GmonTest, FirstWayModels64KB)
{
    Gmon gmon(64, llc32MbLines);
    // Way 0 models sets * 2^shift = 16 * 64 = 1024 lines = 64 KB.
    EXPECT_NEAR(gmon.modeledCapacity(0), 1024.0, 1e-9);
}

TEST(GmonTest, ModeledCapacityGrowsGeometrically)
{
    Gmon gmon(64, llc32MbLines);
    // Per-way capacity grows by ~26x from way 0 to way 63 (Sec. IV-G).
    const double way0 = gmon.modeledCapacity(0);
    const double way63 =
        gmon.modeledCapacity(63) - gmon.modeledCapacity(62);
    EXPECT_GT(way63 / way0, 15.0);
    EXPECT_LT(way63 / way0, 40.0);
}

TEST(UmonTest, UniformWaysCoverTarget)
{
    Umon umon(64, llc32MbLines);
    EXPECT_GE(umon.coverage(), static_cast<double>(llc32MbLines));
    // Uniform resolution: each way models the same capacity.
    const double way0 = umon.modeledCapacity(0);
    const double way1 = umon.modeledCapacity(1) - umon.modeledCapacity(0);
    EXPECT_DOUBLE_EQ(way0, way1);
}

TEST(MonitorTest, MissCurveStartsAtTotalAccesses)
{
    Gmon gmon(64, llc32MbLines);
    Rng rng(1);
    for (int i = 0; i < 100000; i++)
        gmon.access(rng.below(1u << 22));
    const Curve curve = gmon.missCurve();
    EXPECT_DOUBLE_EQ(curve.at(0.0), 100000.0);
    EXPECT_TRUE(curve.isNonIncreasing());
}

TEST(MonitorTest, StreamingWorkloadShowsNoReuse)
{
    // A pure scan over a footprint far beyond coverage: no hits at any
    // modeled capacity (cold misses only).
    Gmon gmon(64, llc32MbLines);
    for (LineAddr a = 0; a < 4 * llc32MbLines; a++)
        gmon.access(a);
    const Curve curve = gmon.missCurve();
    const double total = curve.at(0.0);
    // Even at full coverage the miss count stays near the total: the
    // scan's reuse distance exceeds the modeled capacity.
    EXPECT_GT(curve.at(gmon.coverage() * 0.5), 0.55 * total);
}

TEST(MonitorTest, SmallWorkingSetHitsAtSmallCapacity)
{
    // Uniform reuse over 512 lines: almost all accesses hit within
    // the first monitored capacities. A denser sampling rate (1/4) is
    // used because a 1/64-sampled monitor only tracks a handful of
    // distinct lines of such a tiny footprint (high variance).
    Gmon gmon(64, llc32MbLines, 16, /*sample_shift=*/2);
    Rng rng(3);
    for (int i = 0; i < 200000; i++)
        gmon.access(rng.below(512));
    const Curve curve = gmon.missCurve();
    const double total = curve.at(0.0);
    // At 8K lines of modeled capacity the working set fits easily.
    EXPECT_LT(curve.at(8192.0), 0.15 * total);
}

TEST(MonitorTest, UniformWorkingSetCurveIsRoughlyLinear)
{
    // Uniform random over F lines under LRU gives a miss ratio of
    // about (1 - s/F) at allocation s.
    const std::uint64_t footprint = 16384;
    Umon umon(256, 4 * footprint, 64);
    Rng rng(5);
    const int accesses = 2000000;
    for (int i = 0; i < accesses; i++)
        umon.access(rng.below(footprint));
    const Curve curve = umon.missCurve();
    const double total = curve.at(0.0);
    const double at_half =
        curve.at(static_cast<double>(footprint) / 2.0) / total;
    EXPECT_NEAR(at_half, 0.5, 0.15);
}

TEST(MonitorTest, GmonMatchesUmonOnSharedRange)
{
    // Sec. VI-C: 64-way GMONs track much larger UMONs. Compare the
    // two on a Zipf workload over the capacities both model.
    const std::uint64_t modeled = 256 * 1024;
    Gmon gmon(64, modeled, 16, 4, 0x11);
    Umon umon(512, modeled, 16, 0x22);
    Rng rng(7);
    ZipfSampler zipf(200000, 0.7);
    for (int i = 0; i < 3000000; i++) {
        const LineAddr a = mix64(zipf.sample(rng)) % 200000;
        gmon.access(a);
        umon.access(a);
    }
    const Curve gc = gmon.missCurve();
    const Curve uc = umon.missCurve();
    const double total = gc.at(0.0);
    for (double frac : {0.05, 0.1, 0.25, 0.5, 0.9}) {
        const double x = frac * modeled;
        EXPECT_NEAR(gc.at(x) / total, uc.at(x) / total, 0.08)
            << "capacity fraction " << frac;
    }
}

TEST(MonitorTest, ClearCountersKeepsTags)
{
    Gmon gmon(64, llc32MbLines, 16, /*sample_shift=*/2);
    Rng rng(9);
    for (int i = 0; i < 50000; i++)
        gmon.access(rng.below(256));
    gmon.clearCounters();
    EXPECT_EQ(gmon.totalAccesses(), 0u);
    // Warm tags: immediately hits again after clearing.
    for (int i = 0; i < 50000; i++)
        gmon.access(rng.below(256));
    const Curve curve = gmon.missCurve();
    EXPECT_LT(curve.at(4096.0), 0.2 * curve.at(0.0));
}

/** Property sweep: curves are valid for many workload shapes. */
class MonitorProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(MonitorProperty, CurvesAreMonotoneAndBounded)
{
    const double alpha = GetParam();
    Gmon gmon(64, llc32MbLines);
    Rng rng(17);
    ZipfSampler zipf(100000, alpha);
    for (int i = 0; i < 500000; i++)
        gmon.access(mix64(zipf.sample(rng)) % 100000);
    const Curve curve = gmon.missCurve();
    EXPECT_TRUE(curve.isNonIncreasing());
    for (const auto &p : curve.samples()) {
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, curve.at(0.0) + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(ZipfAlphas, MonitorProperty,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9, 1.2));

} // anonymous namespace
} // namespace cdcs
