/**
 * @file
 * Tests for the Chase-Lev deque and the work-stealing pool built on
 * it: owner LIFO / thief FIFO order, growth past the initial ring,
 * exactly-once delivery under concurrent thieves, inline nested
 * run(), and the idle-gated wakeup contract (a submit while every
 * worker is busy must not notify anyone — the broadcast-on-every-
 * submit throughput regression this suite exists to pin).
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/chase_lev.hh"
#include "common/task_pool.hh"

namespace cdcs
{
namespace
{

using Task = ChaseLevDeque::Task;

TEST(ChaseLevDequeTest, OwnerTakesLifoThievesStealFifo)
{
    ChaseLevDeque deque;
    std::vector<Task> tasks(6, [] {});
    for (auto &t : tasks)
        deque.push(&t);

    // A thief sees the oldest entries first.
    EXPECT_EQ(deque.steal(), &tasks[0]);
    EXPECT_EQ(deque.steal(), &tasks[1]);
    // The owner pops the newest.
    EXPECT_EQ(deque.take(), &tasks[5]);
    EXPECT_EQ(deque.take(), &tasks[4]);
    EXPECT_EQ(deque.steal(), &tasks[2]);
    EXPECT_EQ(deque.take(), &tasks[3]);
    EXPECT_TRUE(deque.empty());
    EXPECT_EQ(deque.take(), nullptr);
    EXPECT_EQ(deque.steal(), nullptr);
}

TEST(ChaseLevDequeTest, GrowsPastInitialCapacityPreservingOrder)
{
    ChaseLevDeque deque(/*initial_capacity=*/4);
    std::vector<Task> tasks(200, [] {});
    // Interleave pushes with a few steals so the live window doesn't
    // start at index 0 when the ring grows.
    for (int i = 0; i < 8; i++)
        deque.push(&tasks[static_cast<std::size_t>(i)]);
    EXPECT_EQ(deque.steal(), &tasks[0]);
    EXPECT_EQ(deque.steal(), &tasks[1]);
    for (std::size_t i = 8; i < tasks.size(); i++)
        deque.push(&tasks[i]);
    for (std::size_t i = 2; i < tasks.size(); i++)
        EXPECT_EQ(deque.steal(), &tasks[i]);
    EXPECT_TRUE(deque.empty());
}

TEST(ChaseLevDequeTest, ConcurrentThievesClaimEachTaskExactlyOnce)
{
    constexpr int numTasks = 20000;
    constexpr int numThieves = 3;
    ChaseLevDeque deque(/*initial_capacity=*/8);
    std::vector<Task> tasks(numTasks, [] {});
    std::vector<std::atomic<int>> claims(numTasks);
    for (auto &c : claims)
        c.store(0);

    std::atomic<bool> done{false};
    std::atomic<int> claimed{0};
    const auto claim = [&](Task *task) {
        claims[static_cast<std::size_t>(task - tasks.data())]
            .fetch_add(1);
        claimed.fetch_add(1);
    };

    std::vector<std::thread> thieves;
    for (int i = 0; i < numThieves; i++) {
        thieves.emplace_back([&] {
            while (!done.load()) {
                if (Task *t = deque.steal())
                    claim(t);
            }
            // Final drain so nothing is stranded at shutdown.
            while (Task *t = deque.steal())
                claim(t);
        });
    }

    // The owner pushes everything, taking a share back as it goes
    // (the mixed push/take/steal pattern of a real pool).
    for (int i = 0; i < numTasks; i++) {
        deque.push(&tasks[static_cast<std::size_t>(i)]);
        if ((i & 7) == 0) {
            if (Task *t = deque.take())
                claim(t);
        }
    }
    while (Task *t = deque.take())
        claim(t);
    done.store(true);
    for (auto &t : thieves)
        t.join();

    EXPECT_EQ(claimed.load(), numTasks);
    for (int i = 0; i < numTasks; i++)
        EXPECT_EQ(claims[static_cast<std::size_t>(i)].load(), 1)
            << "task " << i;
}

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce)
{
    for (unsigned workers : {1u, 4u}) {
        WorkStealingPool pool(workers);
        constexpr int n = 500;
        std::vector<std::atomic<int>> ran(n);
        for (auto &r : ran)
            r.store(0);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (int i = 0; i < n; i++) {
            tasks.push_back([&ran, i] {
                ran[static_cast<std::size_t>(i)].fetch_add(1);
            });
        }
        pool.run(std::move(tasks));
        for (int i = 0; i < n; i++)
            EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1);
    }
}

TEST(TaskPoolTest, SerialAndParallelProduceIdenticalResults)
{
    // The pool only schedules: with results keyed by task index, a
    // 1-worker (inline) pool and a wide pool must fill identical
    // output — the contract the deterministic sweeps build on.
    const auto fill = [](WorkStealingPool &pool,
                         std::vector<double> &out) {
        std::vector<std::function<void()>> tasks;
        for (std::size_t i = 0; i < out.size(); i++) {
            tasks.push_back([&out, i] {
                double x = static_cast<double>(i) + 1.0;
                for (int k = 0; k < 50; k++)
                    x = x * 1.0000001 + 0.5;
                out[i] = x;
            });
        }
        pool.run(std::move(tasks));
    };
    std::vector<double> serial(400, 0.0), parallel(400, 0.0);
    WorkStealingPool one(1), eight(8);
    fill(one, serial);
    fill(eight, parallel);
    EXPECT_EQ(serial, parallel);
}

TEST(TaskPoolTest, NestedRunExecutesInlineWithoutDeadlock)
{
    WorkStealingPool pool(2);
    std::atomic<int> inner{0};
    std::vector<std::function<void()>> outer;
    for (int i = 0; i < 4; i++) {
        outer.push_back([&] {
            std::vector<std::function<void()>> nested;
            for (int j = 0; j < 8; j++)
                nested.push_back([&] { inner.fetch_add(1); });
            pool.run(std::move(nested));
        });
    }
    pool.run(std::move(outer));
    EXPECT_EQ(inner.load(), 32);
}

TEST(TaskPoolTest, StressFourThievesTwentyThousandTasks)
{
    // Sanitizer stress (the TSan CI job runs this under
    // CDCS_SANITIZE=thread): 4 worker threads hammering the
    // Chase-Lev deques with 20k tiny tasks submitted in uneven
    // batches, so push/take/steal interleavings — including the
    // last-task CAS races — are exercised densely. Functional
    // assertion: exactly-once execution and a correct sum.
    constexpr int numTasks = 20000;
    WorkStealingPool pool(4);
    std::vector<std::atomic<int>> ran(numTasks);
    for (auto &r : ran)
        r.store(0);
    std::atomic<long long> sum{0};

    int next = 0;
    int batch_size = 1;
    while (next < numTasks) {
        std::vector<std::function<void()>> batch;
        const int end = std::min(numTasks, next + batch_size);
        batch.reserve(static_cast<std::size_t>(end - next));
        for (int i = next; i < end; i++) {
            batch.push_back([&ran, &sum, i] {
                ran[static_cast<std::size_t>(i)].fetch_add(1);
                sum.fetch_add(i);
            });
        }
        pool.run(std::move(batch));
        next = end;
        // Uneven batches: singletons through ~4k-task storms.
        batch_size = batch_size >= 4096 ? 1 : batch_size * 4;
    }

    long long expected = 0;
    for (int i = 0; i < numTasks; i++) {
        EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
            << "task " << i;
        expected += i;
    }
    EXPECT_EQ(sum.load(), expected);
    EXPECT_GT(pool.stealCount(), 0u);
}

TEST(TaskPoolTest, SubmitToBusyPoolDoesNotWakeAnyone)
{
    // The broadcast-on-every-submit regression: wakeupCount() must
    // stay flat across submissions made while every worker is busy,
    // keeping the submit path notification-free under full load.
    WorkStealingPool pool(2);
    ASSERT_EQ(pool.workerCount(), 2u);

    std::mutex mu;
    std::condition_variable cv;
    int blocked = 0;
    bool release = false;
    std::vector<std::function<void()>> blockers;
    for (int i = 0; i < 2; i++) {
        blockers.push_back([&] {
            std::unique_lock<std::mutex> lock(mu);
            blocked++;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        });
    }

    std::thread first([&] { pool.run(std::move(blockers)); });
    {
        // Both workers are provably busy (inside a blocker task).
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return blocked == 2; });
    }
    ASSERT_EQ(pool.idleWorkers(), 0u);
    const std::uint64_t wakeups_before = pool.wakeupCount();

    // Submit several batches into the busy pool from other threads
    // (run() blocks until its batch drains, so each needs one).
    constexpr int extraBatches = 5;
    std::atomic<int> extraRan{0};
    std::vector<std::thread> submitters;
    for (int b = 0; b < extraBatches; b++) {
        submitters.emplace_back([&] {
            std::vector<std::function<void()>> batch;
            for (int i = 0; i < 4; i++)
                batch.push_back([&] { extraRan.fetch_add(1); });
            pool.run(std::move(batch));
        });
    }
    // Wait until every batch has actually been enqueued: the tasks
    // stay queued behind the blockers, and with no idle worker none
    // of those submissions may have notified.
    while (pool.queuedTasks() <
           static_cast<std::uint64_t>(4 * extraBatches)) {
        std::this_thread::yield();
    }
    EXPECT_EQ(pool.idleWorkers(), 0u);
    EXPECT_EQ(pool.wakeupCount(), wakeups_before);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    first.join();
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(extraRan.load(), 4 * extraBatches);
}

} // anonymous namespace
} // namespace cdcs
