/**
 * @file
 * Tests for the deterministic RNG and the Zipf sampler.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace cdcs
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, UniformCoversUnitInterval)
{
    Rng rng(9);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; i++) {
        const double u = rng.uniform();
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int buckets = 8;
    std::vector<int> counts(buckets, 0);
    constexpr int draws = 80000;
    for (int i = 0; i < draws; i++)
        counts[rng.below(buckets)]++;
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform)
{
    Rng rng(3);
    ZipfSampler zipf(1000, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; i++)
        counts[zipf.sample(rng) / 100]++;
    for (int c : counts) {
        EXPECT_GT(c, 4000);
        EXPECT_LT(c, 6000);
    }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks)
{
    Rng rng(5);
    ZipfSampler zipf(100000, 0.9);
    std::uint64_t head = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; i++) {
        if (zipf.sample(rng) < 1000)
            head++;
    }
    // With alpha=0.9, the first 1% of ranks draws far more than 1%.
    EXPECT_GT(head, total / 10);
}

TEST(ZipfSamplerTest, StaysInRange)
{
    Rng rng(13);
    ZipfSampler zipf(50, 1.2);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.sample(rng), 50u);
}

} // anonymous namespace
} // namespace cdcs
