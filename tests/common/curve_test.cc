/**
 * @file
 * Unit tests for the piecewise-linear Curve type: interpolation,
 * convex hulls, pointwise arithmetic, and monotonicity checks.
 */

#include <gtest/gtest.h>

#include "common/curve.hh"

namespace cdcs
{
namespace
{

TEST(CurveTest, InterpolatesLinearly)
{
    Curve c;
    c.addPoint(0.0, 100.0);
    c.addPoint(10.0, 0.0);
    EXPECT_DOUBLE_EQ(c.at(0.0), 100.0);
    EXPECT_DOUBLE_EQ(c.at(5.0), 50.0);
    EXPECT_DOUBLE_EQ(c.at(10.0), 0.0);
}

TEST(CurveTest, ClampsOutsideDomain)
{
    Curve c;
    c.addPoint(1.0, 10.0);
    c.addPoint(2.0, 4.0);
    EXPECT_DOUBLE_EQ(c.at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(c.at(100.0), 4.0);
}

TEST(CurveTest, EqualXReplacesLastPoint)
{
    Curve c;
    c.addPoint(0.0, 5.0);
    c.addPoint(1.0, 3.0);
    c.addPoint(1.0, 2.0);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.at(1.0), 2.0);
}

TEST(CurveTest, ConvexHullOfConvexCurveIsIdentity)
{
    Curve c;
    c.addPoint(0.0, 100.0);
    c.addPoint(1.0, 50.0);
    c.addPoint(2.0, 25.0);
    c.addPoint(3.0, 15.0);
    const Curve hull = c.convexHull();
    EXPECT_EQ(hull.size(), c.size());
    for (std::size_t i = 0; i < c.size(); i++)
        EXPECT_DOUBLE_EQ(hull[i].y, c[i].y);
}

TEST(CurveTest, ConvexHullRemovesCliffShoulder)
{
    // A cliff-shaped miss curve: flat until the working set fits,
    // then a cliff. The hull bridges the flat region.
    Curve c;
    c.addPoint(0.0, 100.0);
    c.addPoint(1.0, 99.0);
    c.addPoint(2.0, 98.0);
    c.addPoint(3.0, 5.0);
    const Curve hull = c.convexHull();
    // Interior points above the chord from (0,100) to (3,5) must go.
    EXPECT_EQ(hull.size(), 2u);
    EXPECT_DOUBLE_EQ(hull[0].y, 100.0);
    EXPECT_DOUBLE_EQ(hull[1].y, 5.0);
}

TEST(CurveTest, ConvexHullIsBelowOriginal)
{
    Curve c;
    c.addPoint(0.0, 50.0);
    c.addPoint(1.0, 48.0);
    c.addPoint(2.0, 10.0);
    c.addPoint(3.0, 9.0);
    c.addPoint(4.0, 0.0);
    const Curve hull = c.convexHull();
    for (double x = 0.0; x <= 4.0; x += 0.25)
        EXPECT_LE(hull.at(x), c.at(x) + 1e-9);
}

TEST(CurveTest, PlusSamplesUnionOfXs)
{
    Curve a;
    a.addPoint(0.0, 10.0);
    a.addPoint(4.0, 2.0);
    Curve b;
    b.addPoint(0.0, 1.0);
    b.addPoint(2.0, 1.0);
    const Curve sum = a.plus(b);
    EXPECT_DOUBLE_EQ(sum.at(0.0), 11.0);
    EXPECT_DOUBLE_EQ(sum.at(2.0), 7.0);
    EXPECT_DOUBLE_EQ(sum.at(4.0), 3.0);
}

TEST(CurveTest, ScaledMultipliesY)
{
    Curve a;
    a.addPoint(0.0, 3.0);
    a.addPoint(1.0, 1.0);
    const Curve s = a.scaled(2.0);
    EXPECT_DOUBLE_EQ(s.at(0.0), 6.0);
    EXPECT_DOUBLE_EQ(s.at(1.0), 2.0);
}

TEST(CurveTest, NonIncreasingDetection)
{
    Curve down;
    down.addPoint(0.0, 5.0);
    down.addPoint(1.0, 5.0);
    down.addPoint(2.0, 1.0);
    EXPECT_TRUE(down.isNonIncreasing());

    Curve up;
    up.addPoint(0.0, 1.0);
    up.addPoint(1.0, 2.0);
    EXPECT_FALSE(up.isNonIncreasing());
}

} // anonymous namespace
} // namespace cdcs
