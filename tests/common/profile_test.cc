/**
 * @file
 * Tests for the phase profiler behind `--set timing=1`: the disabled
 * default records nothing, scoped timers charge their phase, NocQuery
 * time nests inside Access time (both phases accumulate), snapshots
 * sum over every thread that ever recorded, and since() deltas window
 * the monotonic counters.
 */

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/profile.hh"

namespace cdcs
{
namespace
{

using namespace std::chrono_literals;

/** Burn a small, measurable amount of wall time. */
void
spin(std::chrono::steady_clock::duration d)
{
    const auto until = std::chrono::steady_clock::now() + d;
    while (std::chrono::steady_clock::now() < until) {
    }
}

TEST(ProfilerTest, DisabledTimersRecordNothing)
{
    Profiler::setEnabled(false);
    const Profiler::Snapshot before = Profiler::snapshot();
    {
        ProfTimer timer(ProfPhase::Access);
        spin(1ms);
    }
    const auto delta = Profiler::snapshot().since(before);
    EXPECT_EQ(delta[ProfPhase::Access], 0u);
    EXPECT_EQ(delta[ProfPhase::NocQuery], 0u);
}

TEST(ProfilerTest, NestedNocQueryChargesBothPhases)
{
    Profiler::setEnabled(true);
    const Profiler::Snapshot before = Profiler::snapshot();
    {
        ProfTimer access(ProfPhase::Access);
        {
            ProfTimer query(ProfPhase::NocQuery);
            spin(2ms);
        }
        spin(1ms);
    }
    Profiler::setEnabled(false);
    const auto delta = Profiler::snapshot().since(before);
    // The query nests inside the access span, so access time covers
    // it: access >= query >= the inner spin.
    EXPECT_GE(delta[ProfPhase::NocQuery], 1'000'000u);
    EXPECT_GE(delta[ProfPhase::Access], delta[ProfPhase::NocQuery]);
    EXPECT_EQ(delta[ProfPhase::Reconfig], 0u);
}

TEST(ProfilerTest, SnapshotSumsOverThreads)
{
    Profiler::setEnabled(true);
    const Profiler::Snapshot before = Profiler::snapshot();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([] {
            ProfTimer timer(ProfPhase::Reconfig);
            spin(2ms);
        });
    }
    for (auto &t : threads)
        t.join();
    Profiler::setEnabled(false);
    const auto delta = Profiler::snapshot().since(before);
    // Four threads each charged >= 2 ms; the sum sees all of them
    // even though the recording threads have exited.
    EXPECT_GE(delta[ProfPhase::Reconfig], 4u * 2'000'000u);
}

TEST(ProfilerTest, SinceWindowsTheMonotonicCounters)
{
    Profiler::setEnabled(true);
    {
        ProfTimer timer(ProfPhase::CacheIo);
        spin(1ms);
    }
    const Profiler::Snapshot mid = Profiler::snapshot();
    {
        ProfTimer timer(ProfPhase::CacheIo);
        spin(2ms);
    }
    Profiler::setEnabled(false);
    const auto delta = Profiler::snapshot().since(mid);
    // Only the second timer lands in the window.
    EXPECT_GE(delta[ProfPhase::CacheIo], 2'000'000u);
    EXPECT_GE(mid[ProfPhase::CacheIo], 1'000'000u);
}

} // anonymous namespace
} // namespace cdcs
