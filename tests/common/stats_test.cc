/**
 * @file
 * Tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace cdcs
{
namespace
{

TEST(StatsTest, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, GmeanOfEqualValues)
{
    EXPECT_NEAR(gmean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsTest, GmeanBelowMean)
{
    const std::vector<double> xs{1.0, 4.0};
    EXPECT_NEAR(gmean(xs), 2.0, 1e-12);
    EXPECT_LT(gmean(xs), mean(xs));
}

TEST(StatsTest, MinMax)
{
    const std::vector<double> xs{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 3.0);
}

TEST(StatsTest, InverseCdfSortsDescending)
{
    const auto sorted = inverseCdf({1.0, 3.0, 2.0});
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_DOUBLE_EQ(sorted[0], 3.0);
    EXPECT_DOUBLE_EQ(sorted[1], 2.0);
    EXPECT_DOUBLE_EQ(sorted[2], 1.0);
}

} // anonymous namespace
} // namespace cdcs
