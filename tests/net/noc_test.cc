/**
 * @file
 * Tests for the pluggable NoC layer: zero-load parity with the legacy
 * Mesh arithmetic, contention-model monotonicity and clamping,
 * per-link accounting conservation (link flits sum to flit-hops), and
 * the model registry.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "net/contention_noc.hh"
#include "net/noc_registry.hh"
#include "net/zero_load_noc.hh"

namespace cdcs
{
namespace
{

TEST(ZeroLoadNocTest, LatencyMatchesLegacyMeshArithmetic)
{
    const Mesh mesh(6, 6);
    const ZeroLoadNoc noc(mesh);
    for (TileId a = 0; a < mesh.numTiles(); a++) {
        for (TileId b = 0; b < mesh.numTiles(); b++) {
            for (std::uint32_t flits : {1u, 5u}) {
                EXPECT_EQ(noc.latency(a, b, flits),
                          static_cast<double>(mesh.latency(
                              mesh.hops(a, b), flits)));
            }
        }
    }
}

TEST(ZeroLoadNocTest, MemLatencyMatchesLegacyMeshArithmetic)
{
    const Mesh mesh(8, 8);
    const ZeroLoadNoc noc(mesh);
    for (TileId t = 0; t < mesh.numTiles(); t++) {
        for (int c = 0; c < mesh.numMemCtrls(); c++) {
            EXPECT_EQ(noc.memLatency(t, c, 5),
                      static_cast<double>(mesh.latency(
                          mesh.hopsToCtrl(t, c), 5)));
        }
    }
}

TEST(ZeroLoadNocTest, TrafficAccountingMatchesMeshCounters)
{
    const Mesh mesh(4, 4);
    ZeroLoadNoc noc(mesh);
    const TileId a = mesh.tileAt(0, 0);
    const TileId b = mesh.tileAt(3, 0); // 3 hops.
    noc.addTraffic(TrafficClass::L2ToLLC, a, b, 5);
    noc.addMemTraffic(TrafficClass::LLCToMem, a, 2, 1);
    EXPECT_EQ(noc.trafficFlitHops(TrafficClass::L2ToLLC), 15u);
    EXPECT_EQ(noc.trafficFlitHops(TrafficClass::LLCToMem),
              static_cast<std::uint64_t>(mesh.hopsToCtrl(a, 2)));
    EXPECT_EQ(noc.totalFlitHops(),
              15u + static_cast<std::uint64_t>(mesh.hopsToCtrl(a, 2)));
    noc.clearTraffic();
    EXPECT_EQ(noc.totalFlitHops(), 0u);
    EXPECT_TRUE(noc.linkStats().empty());
}

TEST(ContentionNocTest, ZeroTrafficMatchesZeroLoad)
{
    const Mesh mesh(6, 6);
    const ZeroLoadNoc zero(mesh);
    ContentionNoc cont(mesh, 1.0, 0.95);
    cont.epochUpdate(1e6);
    for (TileId a = 0; a < mesh.numTiles(); a += 5) {
        for (TileId b = 0; b < mesh.numTiles(); b += 3) {
            EXPECT_DOUBLE_EQ(cont.latency(a, b, 5),
                             zero.latency(a, b, 5));
        }
    }
}

TEST(ContentionNocTest, LinkAccountingConservesFlitHops)
{
    const Mesh mesh(6, 6);
    ContentionNoc noc(mesh, 1.0, 0.95);
    Rng rng(123);
    for (int i = 0; i < 2000; i++) {
        const auto a = static_cast<TileId>(
            rng.next() % mesh.numTiles());
        const auto b = static_cast<TileId>(
            rng.next() % mesh.numTiles());
        const auto flits =
            static_cast<std::uint32_t>(1 + rng.next() % 5);
        if (i % 3 == 0) {
            const int ctrl = static_cast<int>(
                rng.next() % mesh.numMemCtrls());
            noc.addMemTraffic(TrafficClass::LLCToMem, a, ctrl,
                              flits);
        } else {
            noc.addTraffic(TrafficClass::L2ToLLC, a, b, flits);
        }
    }
    std::uint64_t link_sum = 0;
    for (const NocLinkStat &link : noc.linkStats())
        link_sum += link.flits;
    EXPECT_EQ(link_sum, noc.totalFlitHops());
}

TEST(ContentionNocTest, RequestAndResponseChargeOppositeLinks)
{
    // A request/response pair split into two directed calls loads
    // the forward and reverse links separately; the old single-call
    // accounting left reverse links idle and double-counted forward.
    const Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    const TileId a = mesh.tileAt(0, 1);
    const TileId b = mesh.tileAt(3, 1);
    noc.addTraffic(TrafficClass::L2ToLLC, a, b, 1);  // Request.
    noc.addTraffic(TrafficClass::L2ToLLC, b, a, 5);  // Response.

    std::uint64_t east = 0, west = 0;
    for (const NocLinkStat &link : noc.linkStats()) {
        if (link.memCtrl >= 0 || link.flits == 0)
            continue;
        const MeshCoord s = mesh.coordOf(link.src);
        const MeshCoord d = mesh.coordOf(link.dst);
        if (d.x > s.x)
            east += link.flits;
        else if (d.x < s.x)
            west += link.flits;
    }
    EXPECT_EQ(east, 3u);  // 1 ctrl flit x 3 hops.
    EXPECT_EQ(west, 15u); // 5 data flits x 3 hops.
    // Per-class totals still see the symmetric sum.
    EXPECT_EQ(noc.trafficFlitHops(TrafficClass::L2ToLLC), 18u);
}

TEST(ContentionNocTest, MemResponseChargesReverseRouteAndAttach)
{
    const Mesh mesh(6, 6);
    ContentionNoc noc(mesh, 1.0, 0.95);
    const int ctrl = 0;
    const TileId ctrl_tile = mesh.memCtrlTile(ctrl);
    const TileId far = mesh.tileAt(5, 5);
    noc.addMemTraffic(TrafficClass::LLCToMem, far, ctrl, 1);
    noc.addMemResponse(TrafficClass::LLCToMem, ctrl, far, 5);

    // Flit-hop totals are direction-symmetric.
    const auto hops =
        static_cast<std::uint64_t>(mesh.hopsToCtrl(far, ctrl));
    EXPECT_EQ(noc.trafficFlitHops(TrafficClass::LLCToMem),
              hops * 6);
    // The attach link carries both directions; mesh links split.
    std::uint64_t attach = 0, from_ctrl = 0, to_ctrl = 0;
    for (const NocLinkStat &link : noc.linkStats()) {
        if (link.memCtrl == ctrl)
            attach = link.flits;
        else if (link.src == ctrl_tile && link.flits > 0)
            from_ctrl += link.flits;
        else if (link.dst == ctrl_tile && link.flits > 0)
            to_ctrl += link.flits;
    }
    EXPECT_EQ(attach, 6u);
    EXPECT_EQ(from_ctrl, 5u); // First hop of the response route.
    EXPECT_EQ(to_ctrl, 1u);   // Last hop of the request route.
    // Conservation: per-direction link flits sum to flit-hops.
    std::uint64_t link_sum = 0;
    for (const NocLinkStat &link : noc.linkStats())
        link_sum += link.flits;
    EXPECT_EQ(link_sum, noc.totalFlitHops());
}

TEST(ContentionNocTest, ResponseLatencyReadsResponseDirectionWaits)
{
    // Load only the response direction of a memory route: the
    // response latency must see the wait, the request latency must
    // not (beyond the shared attach link).
    const Mesh mesh(6, 6);
    ContentionNoc noc(mesh, 1.0, 0.95);
    const int ctrl = 0;
    const TileId ctrl_tile = mesh.memCtrlTile(ctrl);
    const TileId far = mesh.tileAt(5, 5);
    // Saturate the mesh route leaving the controller tile, not the
    // attach link.
    noc.addTraffic(TrafficClass::Other, ctrl_tile, far, 50000);
    noc.epochUpdate(10000.0);

    EXPECT_GT(noc.memResponsePathWait(ctrl, far), 0.0);
    EXPECT_EQ(noc.memPathWait(far, ctrl), 0.0);
    EXPECT_EQ(noc.memLatency(far, ctrl, 1),
              static_cast<double>(
                  mesh.latency(mesh.hopsToCtrl(far, ctrl), 1)));
    EXPECT_EQ(noc.memResponseLatency(ctrl, far, 5),
              static_cast<double>(
                  mesh.latency(mesh.hopsToCtrl(far, ctrl), 5)) +
                  noc.memResponsePathWait(ctrl, far));
}

TEST(ZeroLoadNocTest, MemResponseLatencyIsSymmetric)
{
    // The default memResponseLatency forwards to memLatency: under
    // zero load the response leg costs exactly the request leg.
    const Mesh mesh(6, 6);
    const ZeroLoadNoc noc(mesh);
    for (TileId t = 0; t < mesh.numTiles(); t += 5) {
        for (int c = 0; c < mesh.numMemCtrls(); c++) {
            EXPECT_EQ(noc.memResponseLatency(c, t, 5),
                      noc.memLatency(t, c, 5));
        }
    }
}

TEST(ContentionNocTest, WaitMonotonicInLoad)
{
    const Mesh mesh(8, 8);
    const TileId src = mesh.tileAt(0, 3);
    const TileId dst = mesh.tileAt(7, 3);
    double prev = 0.0;
    for (std::uint32_t load : {0u, 100u, 1000u, 10000u, 100000u}) {
        ContentionNoc noc(mesh, 1.0, 0.95);
        if (load > 0)
            noc.addTraffic(TrafficClass::L2ToLLC, src, dst, load);
        noc.epochUpdate(10000.0);
        const double lat = noc.latency(src, dst, 1);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
}

TEST(ContentionNocTest, WaitMonotonicInInjectionScale)
{
    const Mesh mesh(8, 8);
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(7, 7);
    double prev = 0.0;
    for (double scale : {1.0, 2.0, 4.0, 8.0, 64.0}) {
        ContentionNoc noc(mesh, scale, 0.95);
        noc.addTraffic(TrafficClass::L2ToLLC, src, dst, 500);
        noc.epochUpdate(10000.0);
        const double lat = noc.latency(src, dst, 5);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
}

TEST(ContentionNocTest, UtilizationClampBoundsTheWait)
{
    const Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.9);
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(1, 0);
    // Offered load far beyond link bandwidth.
    noc.addTraffic(TrafficClass::L2ToLLC, src, dst, 1000000);
    noc.epochUpdate(10.0);
    for (const NocLinkStat &link : noc.linkStats()) {
        EXPECT_LE(link.util, 0.9 + 1e-12);
        // M/D/1 at the clamp: S * rho / (2 (1 - rho)) = 4.5 cycles.
        EXPECT_LE(link.waitCycles, 4.5 + 1e-12);
    }
    EXPECT_LE(noc.latency(src, dst, 1) -
                  static_cast<double>(mesh.latency(1, 1)),
              4.5 + 1e-12);
}

TEST(ContentionNocTest, ClearTrafficKeepsTheContentionEstimate)
{
    const Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    const TileId src = mesh.tileAt(0, 0);
    const TileId dst = mesh.tileAt(3, 0);
    noc.addTraffic(TrafficClass::L2ToLLC, src, dst, 5000);
    noc.epochUpdate(1000.0);
    const double loaded = noc.latency(src, dst, 1);
    EXPECT_GT(loaded,
              static_cast<double>(
                  mesh.latency(mesh.hops(src, dst), 1)));

    noc.clearTraffic();
    EXPECT_EQ(noc.totalFlitHops(), 0u);
    // Counters reset, wait table preserved (warmup boundary).
    EXPECT_DOUBLE_EQ(noc.latency(src, dst, 1), loaded);
    // The next epoch sees no traffic and relaxes back to zero-load.
    noc.epochUpdate(1000.0);
    EXPECT_DOUBLE_EQ(noc.latency(src, dst, 1),
                     static_cast<double>(
                         mesh.latency(mesh.hops(src, dst), 1)));
}

TEST(ZeroLoadNocTest, PathWaitQueriesAnswerZero)
{
    // The placement cost oracle's query: the zero-load model answers
    // 0 everywhere, which is what keeps the default runtime cost
    // model byte-identical to the legacy hop arithmetic.
    const Mesh mesh(6, 6);
    const ZeroLoadNoc noc(mesh);
    for (TileId a = 0; a < mesh.numTiles(); a++) {
        for (TileId b = 0; b < mesh.numTiles(); b++)
            EXPECT_EQ(noc.pathWait(a, b), 0.0);
        for (int c = 0; c < mesh.numMemCtrls(); c++)
            EXPECT_EQ(noc.memPathWait(a, c), 0.0);
    }
}

TEST(ContentionNocTest, LatencyDecomposesIntoZeroLoadPlusPathWait)
{
    // pathWait/memPathWait expose exactly the contention surcharge
    // the latency queries charge: latency == Mesh zero-load + wait.
    const Mesh mesh(6, 6);
    ContentionNoc noc(mesh, 2.0, 0.95);
    Rng rng(99);
    for (int i = 0; i < 3000; i++) {
        const auto a = static_cast<TileId>(
            rng.next() % mesh.numTiles());
        const auto b = static_cast<TileId>(
            rng.next() % mesh.numTiles());
        if (i % 4 == 0) {
            noc.addMemTraffic(
                TrafficClass::LLCToMem, a,
                static_cast<int>(rng.next() % mesh.numMemCtrls()),
                5);
        } else {
            noc.addTraffic(TrafficClass::L2ToLLC, a, b, 5);
        }
    }
    noc.epochUpdate(5000.0);
    for (TileId a = 0; a < mesh.numTiles(); a += 2) {
        for (TileId b = 1; b < mesh.numTiles(); b += 3) {
            EXPECT_DOUBLE_EQ(
                noc.latency(a, b, 5),
                static_cast<double>(
                    mesh.latency(mesh.hops(a, b), 5)) +
                    noc.pathWait(a, b));
        }
        for (int c = 0; c < mesh.numMemCtrls(); c++) {
            EXPECT_DOUBLE_EQ(
                noc.memLatency(a, c, 5),
                static_cast<double>(
                    mesh.latency(mesh.hopsToCtrl(a, c), 5)) +
                    noc.memPathWait(a, c));
        }
    }
}

TEST(ContentionNocTest, FlattenedWaitsMatchRouteWalkBitForBit)
{
    // The flattened per-epoch tables must reproduce the literal
    // link-by-link route walk bit-for-bit (EXPECT_EQ, not NEAR) on
    // randomized meshes under randomized traffic: any FP reassociation
    // in the flattening would silently shift every downstream study.
    Rng rng(2024);
    const int dims[][2] = {{2, 2}, {4, 4}, {6, 6}, {5, 3}, {3, 7}};
    for (const auto &dim : dims) {
        const Mesh mesh(dim[0], dim[1]);
        ContentionNoc noc(mesh, 1.0, 0.95);
        const int tiles = mesh.numTiles();
        // Random traffic over all classes and both mem directions.
        for (int i = 0; i < 40 * tiles; i++) {
            const auto src =
                static_cast<TileId>(rng.below(tiles));
            const auto dst =
                static_cast<TileId>(rng.below(tiles));
            const auto flits =
                static_cast<std::uint32_t>(1 + rng.below(8));
            noc.addTraffic(TrafficClass::L2ToLLC, src, dst, flits);
            const int ctrl = static_cast<int>(
                rng.below(mesh.numMemCtrls()));
            noc.addMemTraffic(TrafficClass::LLCToMem, src, ctrl,
                              flits);
            noc.addMemResponse(TrafficClass::LLCToMem, ctrl, dst,
                               flits);
        }
        noc.epochUpdate(1000.0 + rng.uniform(0.0, 500.0));

        for (TileId a = 0; a < tiles; a++) {
            for (TileId b = 0; b < tiles; b++)
                EXPECT_EQ(noc.pathWait(a, b), noc.walkPathWait(a, b));
        }
        // Mem legs: the reference is the walk plus/then the attach
        // wait, in the directions the unflattened queries added them.
        for (int c = 0; c < mesh.numMemCtrls(); c++) {
            const TileId ct = mesh.memCtrlTile(c);
            // The attach wait is observable as the mem-path extra on
            // the controller's own tile (zero-length mesh route).
            const double attach = noc.memPathWait(ct, c);
            EXPECT_EQ(noc.walkPathWait(ct, ct), 0.0);
            for (TileId t = 0; t < tiles; t++) {
                EXPECT_EQ(noc.memPathWait(t, c),
                          noc.walkPathWait(t, ct) + attach);
                EXPECT_EQ(noc.memResponsePathWait(c, t),
                          attach + noc.walkPathWait(ct, t));
            }
        }
    }
}

TEST(ContentionNocTest, FlattenedWaitsTrackEveryEpochUpdate)
{
    // Tables must refresh on every epochUpdate, including after
    // clearTraffic (which keeps the waits).
    const Mesh mesh(4, 4);
    ContentionNoc noc(mesh, 1.0, 0.95);
    Rng rng(7);
    for (int epoch = 0; epoch < 4; epoch++) {
        for (int i = 0; i < 200; i++) {
            noc.addTraffic(
                TrafficClass::Other,
                static_cast<TileId>(rng.below(mesh.numTiles())),
                static_cast<TileId>(rng.below(mesh.numTiles())),
                1 + static_cast<std::uint32_t>(rng.below(4)));
        }
        noc.epochUpdate(500.0);
        if (epoch == 1)
            noc.clearTraffic();
        for (TileId a = 0; a < mesh.numTiles(); a++) {
            for (TileId b = 0; b < mesh.numTiles(); b++)
                EXPECT_EQ(noc.pathWait(a, b), noc.walkPathWait(a, b));
        }
    }
}

TEST(NocRegistryTest, BuiltInModelsRegistered)
{
    NocRegistry &registry = NocRegistry::instance();
    EXPECT_TRUE(registry.contains("zero-load"));
    EXPECT_TRUE(registry.contains("contention"));
    EXPECT_FALSE(registry.contains("no-such-model"));

    const Mesh mesh(4, 4);
    NocBuildParams params;
    params.injScale = 2.0;
    const auto zero = registry.build("zero-load", mesh, params);
    EXPECT_STREQ(zero->name(), "zero-load");
    const auto cont = registry.build("contention", mesh, params);
    EXPECT_STREQ(cont->name(), "contention");
    // Names are sorted and include both built-ins.
    const auto names = registry.names();
    ASSERT_GE(names.size(), 2u);
    for (std::size_t i = 1; i < names.size(); i++)
        EXPECT_LT(names[i - 1], names[i]);
}

} // anonymous namespace
} // namespace cdcs
