/**
 * @file
 * Tests for the VTB: 3-entry associativity, shadow descriptors during
 * reconfigurations, and old/new bank reporting.
 */

#include <gtest/gtest.h>

#include "virtcache/vtb.hh"

namespace cdcs
{
namespace
{

VcDescriptor
singleBank(TileId bank, int num_banks)
{
    std::vector<double> shares(num_banks, 0.0);
    shares[bank] = 1.0;
    return VcDescriptor::fromShares(shares);
}

TEST(VtbTest, InstallAndLookup)
{
    Vtb vtb;
    vtb.install(5, singleBank(3, 8));
    const VtbLookup res = vtb.lookup(5, 0x1234);
    EXPECT_EQ(res.bank, 3);
    EXPECT_EQ(res.oldBank, invalidTile);
}

TEST(VtbTest, HoldsThreeVcs)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    vtb.install(2, singleBank(1, 4));
    vtb.install(3, singleBank(2, 4));
    EXPECT_EQ(vtb.lookup(1, 0x1).bank, 0);
    EXPECT_EQ(vtb.lookup(2, 0x1).bank, 1);
    EXPECT_EQ(vtb.lookup(3, 0x1).bank, 2);
}

TEST(VtbTest, LookupUnknownVcPanics)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    EXPECT_DEATH(vtb.lookup(9, 0x1), "VTB miss");
}

TEST(VtbTest, FourthVcPanics)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    vtb.install(2, singleBank(0, 4));
    vtb.install(3, singleBank(0, 4));
    EXPECT_DEATH(vtb.install(4, singleBank(0, 4)), "VTB full");
}

TEST(VtbTest, ReinstallReplacesDescriptor)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    vtb.install(1, singleBank(2, 4));
    EXPECT_EQ(vtb.lookup(1, 0x7).bank, 2);
}

TEST(VtbTest, ShadowReportsOldBankOnlyWhenDifferent)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    vtb.beginReconfig(1, singleBank(3, 4));
    EXPECT_TRUE(vtb.reconfigActive());
    const VtbLookup res = vtb.lookup(1, 0xABC);
    EXPECT_EQ(res.bank, 3);
    EXPECT_EQ(res.oldBank, 0);
}

TEST(VtbTest, ShadowSilentWhenHomeUnchanged)
{
    Vtb vtb;
    vtb.install(1, singleBank(2, 4));
    vtb.beginReconfig(1, singleBank(2, 4));
    const VtbLookup res = vtb.lookup(1, 0xABC);
    EXPECT_EQ(res.bank, 2);
    EXPECT_EQ(res.oldBank, invalidTile);
}

TEST(VtbTest, FinishReconfigDropsShadows)
{
    Vtb vtb;
    vtb.install(1, singleBank(0, 4));
    vtb.beginReconfig(1, singleBank(3, 4));
    vtb.finishReconfig();
    EXPECT_FALSE(vtb.reconfigActive());
    const VtbLookup res = vtb.lookup(1, 0xABC);
    EXPECT_EQ(res.bank, 3);
    EXPECT_EQ(res.oldBank, invalidTile);
}

TEST(VtbTest, PerBucketOldBankTracking)
{
    // A reconfiguration that only moves part of a VC: addresses whose
    // bucket keeps its bank must not report an old bank.
    std::vector<double> before(4, 0.0);
    before[0] = 1.0;
    before[1] = 1.0;
    std::vector<double> after(4, 0.0);
    after[0] = 1.0;
    after[2] = 1.0;
    const VcDescriptor desc_before = VcDescriptor::fromShares(before);
    const VcDescriptor desc_after = VcDescriptor::fromShares(after);
    Vtb vtb;
    vtb.install(1, desc_before);
    vtb.beginReconfig(1, desc_after);
    int moved = 0, stayed = 0;
    for (LineAddr a = 0; a < 4096; a++) {
        const VtbLookup res = vtb.lookup(1, a);
        EXPECT_EQ(res.bank, desc_after.bankOf(a));
        if (res.oldBank != invalidTile) {
            moved++;
            EXPECT_EQ(res.oldBank, desc_before.bankOf(a));
            EXPECT_NE(res.oldBank, res.bank);
        } else {
            stayed++;
            EXPECT_EQ(desc_before.bankOf(a), desc_after.bankOf(a));
        }
    }
    EXPECT_GT(moved, 1000);
    EXPECT_GT(stayed, 1000);
}

} // anonymous namespace
} // namespace cdcs
