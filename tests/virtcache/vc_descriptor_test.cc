/**
 * @file
 * Tests for VC descriptors: bucket apportionment proportional to bank
 * shares (the property that makes ganged partitions behave like one
 * cache of their aggregate size).
 */

#include <map>

#include <gtest/gtest.h>

#include "virtcache/vc_descriptor.hh"

namespace cdcs
{
namespace
{

std::map<TileId, int>
bucketCounts(const VcDescriptor &desc)
{
    std::map<TileId, int> counts;
    for (std::uint32_t i = 0; i < vcBuckets; i++)
        counts[desc.bucket(i)]++;
    return counts;
}

TEST(VcDescriptorTest, PaperExampleOneQuarterThreeQuarters)
{
    // Sec. III: bank A with 1 MB and bank B with 3 MB should get
    // roughly 16 and 48 of the 64 buckets (the rendezvous assignment
    // is proportional in expectation; see fromShares).
    std::vector<double> shares{16384.0, 49152.0};
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    const auto counts = bucketCounts(desc);
    EXPECT_NEAR(counts.at(0), 16, 9);
    EXPECT_NEAR(counts.at(1), 48, 9);
    EXPECT_EQ(counts.at(0) + counts.at(1), 64);
}

TEST(VcDescriptorTest, AllBucketsAssigned)
{
    std::vector<double> shares{1.0, 2.0, 3.0, 5.0};
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    for (std::uint32_t i = 0; i < vcBuckets; i++)
        EXPECT_NE(desc.bucket(i), invalidTile);
}

TEST(VcDescriptorTest, ZeroSharesFallBackToBankZero)
{
    std::vector<double> shares(8, 0.0);
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    for (std::uint32_t i = 0; i < vcBuckets; i++)
        EXPECT_EQ(desc.bucket(i), 0);
}

TEST(VcDescriptorTest, SingleBankTakesAllBuckets)
{
    std::vector<double> shares{0.0, 0.0, 123.0};
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    const auto counts = bucketCounts(desc);
    EXPECT_EQ(counts.at(2), static_cast<int>(vcBuckets));
}

TEST(VcDescriptorTest, ApportionmentIsRoughlyProportional)
{
    std::vector<double> shares{100.0, 200.0, 300.0, 400.0};
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    const auto counts = bucketCounts(desc);
    const double total = 1000.0;
    for (const auto &[bank, count] : counts) {
        const double ideal = shares[bank] / total * vcBuckets;
        EXPECT_NEAR(count, ideal, 8.0) << "bank " << bank;
    }
}

TEST(VcDescriptorTest, HashSpreadsAccessesProportionally)
{
    // Feed many addresses: access share per bank must track the
    // bucket share.
    std::vector<double> shares{1024.0, 3072.0};
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    int to_b = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        if (desc.bankOf(static_cast<LineAddr>(i) * 97 + 13) == 1)
            to_b++;
    }
    EXPECT_NEAR(static_cast<double>(to_b) / n, 0.75, 0.08);
}

TEST(VcDescriptorTest, MoreBanksThanBucketsDegradesGracefully)
{
    // 128 equal shares with 64 buckets: only 64 banks can receive a
    // bucket, but the descriptor must remain valid and near-balanced.
    std::vector<double> shares(128, 10.0);
    const VcDescriptor desc = VcDescriptor::fromShares(shares);
    const auto counts = bucketCounts(desc);
    EXPECT_LE(counts.size(), static_cast<std::size_t>(vcBuckets));
    for (const auto &[bank, count] : counts) {
        EXPECT_GE(count, 1);
        EXPECT_LE(count, 4);
    }
}

TEST(VcDescriptorTest, SmallShareChangesMoveFewBuckets)
{
    // The property the rendezvous assignment buys: growing one bank's
    // share slightly must relocate only a few buckets. Every moved
    // bucket costs demand moves / background invalidations at the
    // next reconfiguration.
    std::vector<double> before(16, 1000.0);
    std::vector<double> after = before;
    after[5] = 1200.0;
    const VcDescriptor a = VcDescriptor::fromShares(before);
    const VcDescriptor b = VcDescriptor::fromShares(after);
    int movedBuckets = 0;
    for (std::uint32_t i = 0; i < vcBuckets; i++) {
        if (a.bucket(i) != b.bucket(i))
            movedBuckets++;
    }
    EXPECT_LE(movedBuckets, 6);
}

TEST(VcDescriptorTest, GrowthOnlyStealsProportionally)
{
    // Doubling the total share by adding new banks must leave about
    // half of the original buckets untouched.
    std::vector<double> before{1000.0, 1000.0, 0.0, 0.0};
    std::vector<double> after{1000.0, 1000.0, 1000.0, 1000.0};
    const VcDescriptor a = VcDescriptor::fromShares(before);
    const VcDescriptor b = VcDescriptor::fromShares(after);
    int kept = 0;
    for (std::uint32_t i = 0; i < vcBuckets; i++) {
        if (a.bucket(i) == b.bucket(i))
            kept++;
    }
    EXPECT_GE(kept, 20); // ~32 expected.
}

TEST(VcDescriptorTest, EqualityComparesBuckets)
{
    std::vector<double> shares{1.0, 1.0};
    EXPECT_TRUE(VcDescriptor::fromShares(shares) ==
                VcDescriptor::fromShares(shares));
    std::vector<double> other{1.0, 3.0};
    EXPECT_FALSE(VcDescriptor::fromShares(shares) ==
                 VcDescriptor::fromShares(other));
}

} // anonymous namespace
} // namespace cdcs
