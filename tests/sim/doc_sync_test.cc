/**
 * @file
 * Doc-sync lint: every `--set` key the Overrides parser recognizes
 * must be documented in EXPERIMENTS.md (as `key` in backticks), so
 * new knobs cannot land without their docs. Built with
 * CDCS_REPO_ROOT pointing at the source tree.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "sim/overrides.hh"

#ifndef CDCS_REPO_ROOT
#define CDCS_REPO_ROOT "."
#endif

namespace cdcs
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return "";
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(DocSyncTest, EveryOverrideKeyDocumentedInExperimentsMd)
{
    const std::string doc =
        readFile(std::string(CDCS_REPO_ROOT) + "/EXPERIMENTS.md");
    ASSERT_FALSE(doc.empty())
        << "EXPERIMENTS.md not found under " << CDCS_REPO_ROOT;
    for (const auto &[key, type] : Overrides::knownKeys()) {
        EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
            << "--set key '" << key << "' (" << type
            << ") is missing from EXPERIMENTS.md";
    }
}

TEST(DocSyncTest, KnownKeysAreUniqueAndTyped)
{
    const auto keys = Overrides::knownKeys();
    ASSERT_FALSE(keys.empty());
    for (std::size_t i = 0; i < keys.size(); i++) {
        EXPECT_FALSE(keys[i].first.empty());
        EXPECT_FALSE(keys[i].second.empty()) << keys[i].first;
        for (std::size_t j = i + 1; j < keys.size(); j++)
            EXPECT_NE(keys[i].first, keys[j].first);
    }
}

} // anonymous namespace
} // namespace cdcs
