/**
 * @file
 * End-to-end tests of the dynamic-traffic subsystem: churn runs stay
 * deterministic across worker counts and repeats, the epoch trace
 * records churn and recovery, the new knobs key the result cache,
 * and weighted speedup degrades gracefully when churn empties a mix.
 */

#include <gtest/gtest.h>

#include "sim/experiment_runner.hh"
#include "sim/system.hh"

namespace cdcs
{
namespace
{

SystemConfig
churnConfig()
{
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.bankLines = 2048;
    cfg.accessesPerThreadEpoch = 4000;
    cfg.epochs = 8;
    cfg.warmupEpochs = 2;
    cfg.churn = "4:-2,6:+2";
    return cfg;
}

bool
sameRun(const RunResult &a, const RunResult &b)
{
    if (a.threadIpc != b.threadIpc ||
        a.llcAccesses != b.llcAccesses ||
        a.memAccesses != b.memAccesses ||
        a.memCtrlAccesses != b.memCtrlAccesses ||
        a.epochTrace.size() != b.epochTrace.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.epochTrace.size(); i++) {
        const EpochRecord &ra = a.epochTrace[i];
        const EpochRecord &rb = b.epochTrace[i];
        if (ra.epoch != rb.epoch ||
            ra.activeThreads != rb.activeThreads ||
            ra.churnDelta != rb.churnDelta ||
            ra.aggIpc != rb.aggIpc ||
            ra.placementMoves != rb.placementMoves ||
            ra.movedLines != rb.movedLines) {
            return false;
        }
    }
    return true;
}

TEST(ElasticityTest, ChurnTraceRecordsDeparturesAndArrivals)
{
    const SystemConfig cfg = churnConfig();
    System system(cfg, SchemeSpec::cdcs(), buildMix(MixSpec::cpu(8, 21)));
    const RunResult res = system.run();

    ASSERT_EQ(res.epochTrace.size(),
              static_cast<std::size_t>(cfg.epochs));
    EXPECT_EQ(res.epochTrace[0].activeThreads, 8);
    // -2 entering epoch 4, +2 entering epoch 6.
    EXPECT_EQ(res.epochTrace[4].churnDelta, -2);
    EXPECT_EQ(res.epochTrace[4].activeThreads, 6);
    EXPECT_EQ(res.epochTrace[5].activeThreads, 6);
    EXPECT_EQ(res.epochTrace[6].churnDelta, 2);
    EXPECT_EQ(res.epochTrace[6].activeThreads, 8);
    EXPECT_EQ(res.churnEpochs(), (std::vector<int>{4, 6}));
    for (const EpochRecord &rec : res.epochTrace)
        EXPECT_GT(rec.aggIpc, 0.0);

    // Per-controller accounting covers the post-warmup accesses.
    ASSERT_FALSE(res.memCtrlAccesses.empty());
    std::uint64_t total = 0;
    for (std::uint64_t n : res.memCtrlAccesses)
        total += n;
    EXPECT_EQ(total, res.memAccesses);

    // The elasticity metrics resolve on this trace.
    EXPECT_GE(res.recoveryEpochsAfter(4), -1);
    EXPECT_GE(res.reconfigLatencyAfter(4), 0);
    EXPECT_GE(res.reconfigLatencyAfter(3), 0); // In-trace epoch.
}

TEST(ElasticityTest, StaticPathKeepsTraceEmpty)
{
    SystemConfig cfg = churnConfig();
    cfg.churn.clear();
    ASSERT_FALSE(cfg.dynamicTraffic());
    System system(cfg, SchemeSpec::cdcs(), buildMix(MixSpec::cpu(8, 21)));
    const RunResult res = system.run();
    EXPECT_TRUE(res.epochTrace.empty());
    EXPECT_EQ(res.recoveryEpochsAfter(4), -1);
}

TEST(ElasticityTest, ChurnRunsAreSeedStable)
{
    const SystemConfig cfg = churnConfig();
    const MixSpec mix = MixSpec::cpu(8, 33);
    System a(cfg, SchemeSpec::cdcs(), buildMix(mix));
    System b(cfg, SchemeSpec::cdcs(), buildMix(mix));
    EXPECT_TRUE(sameRun(a.run(), b.run()));
}

TEST(ElasticityTest, ChurnSweepIdenticalSerialAndParallel)
{
    SystemConfig cfg = churnConfig();
    cfg.skewAlpha = 0.8; // Skew + churn together.
    const std::vector<SchemeSpec> schemes = {
        SchemeSpec::snuca(), SchemeSpec::cdcs()};
    const auto mix_of = [](int m) {
        return MixSpec::cpu(8, 40 + static_cast<std::uint64_t>(m));
    };

    ExperimentRunner::Options serial;
    serial.workers = 1;
    ExperimentRunner::Options parallel;
    parallel.workers = 4;
    const SweepResult a =
        ExperimentRunner(serial).sweep(cfg, schemes, 2, mix_of);
    const SweepResult b =
        ExperimentRunner(parallel).sweep(cfg, schemes, 2, mix_of);

    ASSERT_EQ(a.ws.size(), b.ws.size());
    for (std::size_t s = 0; s < a.ws.size(); s++) {
        EXPECT_EQ(a.ws[s], b.ws[s]);
        EXPECT_TRUE(sameRun(a.firstRun[s], b.firstRun[s]));
    }
}

TEST(ElasticityTest, TrafficKnobsKeyTheResultCache)
{
    ExperimentRunner::Options opts;
    opts.workers = 1;
    opts.cacheResults = true;
    ExperimentRunner runner(opts);

    SystemConfig cfg = churnConfig();
    const MixSpec mix = MixSpec::cpu(4, 55);
    const SchemeSpec scheme = SchemeSpec::cdcs();

    runner.run(cfg, scheme, mix);
    cfg.skewAlpha = 1.1; // Different knob, different cell.
    runner.run(cfg, scheme, mix);
    cfg.churn = "4:-1";
    runner.run(cfg, scheme, mix);
    cfg.churn.clear();
    cfg.skewAlpha = 0.0;
    cfg.skewDriftEpochs = 2;
    cfg.skewDriftFraction = 0.5;
    runner.run(cfg, scheme, mix);
    EXPECT_EQ(runner.cacheStats().entries, 4u);

    // An exact repeat hits instead of adding a cell.
    runner.run(cfg, scheme, mix);
    EXPECT_EQ(runner.cacheStats().entries, 4u);
    EXPECT_GE(runner.cacheStats().hits, 1u);
}

TEST(ElasticityTest, WeightedSpeedupNeutralOnEmptyBaseline)
{
    RunResult run, baseline;
    run.procThroughput = {1.0, 2.0};
    baseline.procThroughput = {0.0, 0.0}; // All departed mid-run.
    EXPECT_DOUBLE_EQ(weightedSpeedup(run, baseline), 1.0);

    // Partially measurable mixes still use the live processes.
    baseline.procThroughput = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(weightedSpeedup(run, baseline), 2.0);
}

} // anonymous namespace
} // namespace cdcs
